(** Inter-process communication capsule, after Tock's [ipc] driver
    (driver {!driver_num}).

    Services register under their process name; clients discover a service
    by writing its NUL-terminated name into an allowed read-only buffer,
    then exchange notification upcalls and share their allowed read-write
    buffer with the peer. All cross-process reach goes through
    driver-scoped handles from the kernel services — the capsule can only
    touch what each process explicitly allowed to {e this} driver.

    Commands: 0 register (returns own pid); 1 discover (returns service
    pid); 2/3 notify service/client (peer upcall, arg = caller pid);
    4 read byte of peer's shared buffer ([arg2] = offset); 5 write byte
    ([arg2] = [offset << 8 | byte]). *)

val driver_num : int
val capsule : unit -> Ticktock.Capsule_intf.t
