lib/capsules/ipc.ml: Capsule_intf Char List Range String Ticktock Userland
