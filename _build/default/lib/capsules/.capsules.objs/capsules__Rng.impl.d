lib/capsules/rng.ml: Capsule_intf Range Ticktock Userland Word32
