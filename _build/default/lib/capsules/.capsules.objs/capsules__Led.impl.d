lib/capsules/led.ml: Capsule_intf List Mpu_hw Ticktock Userland
