lib/capsules/virtual_alarm.ml: Capsule_intf List Ticktock Userland
