lib/capsules/button.ml: Array Capsule_intf Hashtbl List Mpu_hw Ticktock Userland
