lib/capsules/console.ml: Capsule_intf Mpu_hw Range Ticktock Userland
