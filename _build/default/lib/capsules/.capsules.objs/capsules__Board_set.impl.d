lib/capsules/board_set.ml: Button Console Ipc Led Mpu_hw Process_console Rng Virtual_alarm
