lib/capsules/board_set.mli: Mpu_hw Ticktock
