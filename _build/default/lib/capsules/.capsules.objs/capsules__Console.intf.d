lib/capsules/console.mli: Mpu_hw Ticktock
