lib/capsules/process_console.mli: Mpu_hw Ticktock
