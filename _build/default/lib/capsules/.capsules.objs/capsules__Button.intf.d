lib/capsules/button.mli: Mpu_hw Ticktock
