lib/capsules/ipc.mli: Ticktock
