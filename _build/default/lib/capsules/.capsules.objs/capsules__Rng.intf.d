lib/capsules/rng.mli: Ticktock
