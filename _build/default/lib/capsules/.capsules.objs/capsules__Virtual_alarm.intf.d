lib/capsules/virtual_alarm.mli: Ticktock
