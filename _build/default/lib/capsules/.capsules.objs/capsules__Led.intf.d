lib/capsules/led.mli: Mpu_hw Ticktock
