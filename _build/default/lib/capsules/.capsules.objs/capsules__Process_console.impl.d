lib/capsules/process_console.ml: Buffer Capsule_intf Char Mpu_hw Printf String Ticktock
