(** A UART-backed console capsule (driver {!driver_num}).

    Transmit: the process allows a read-only buffer and commands
    [1, len]; the capsule pulls bytes through the mediated handle (every
    address validated against the allowed buffer), pushes them to the UART
    with a polling driver, and schedules the write-done upcall (id 1, arg =
    bytes written). Receive: command [2, len] drains the UART RX FIFO into
    the allowed read-write buffer; returns the count. *)

val driver_num : int
val capsule : Mpu_hw.Uart.t -> Ticktock.Capsule_intf.t
