(** LED capsule over a GPIO bank (Tock's [led] driver, number 6 here).

    Commands: 0 = number of LEDs; 1 = on; 2 = off; 3 = toggle, each taking
    the LED index in [arg1]. *)

open Ticktock

let driver_num = 6

let capsule ?(pins = [ 0; 1; 2; 3 ]) gpio =
  List.iter (fun p -> Mpu_hw.Gpio.set_direction gpio p Mpu_hw.Gpio.Output) pins;
  let led n = List.nth_opt pins n in
  let command _ph ~cmd ~arg1 ~arg2 =
    ignore arg2;
    if cmd = 0 then List.length pins
    else
      match led arg1 with
      | None -> Userland.failure
      | Some pin ->
        if cmd = 1 then begin
          Mpu_hw.Gpio.write gpio pin true;
          Userland.success
        end
        else if cmd = 2 then begin
          Mpu_hw.Gpio.write gpio pin false;
          Userland.success
        end
        else if cmd = 3 then begin
          Mpu_hw.Gpio.toggle gpio pin;
          Userland.success
        end
        else Userland.failure
  in
  { (Capsule_intf.stub ~driver_num ~name:"led") with Capsule_intf.cap_command = command }
