(** RNG capsule (driver {!driver_num}).

    Command [1, n] fills [n] bytes of the allowed read-write buffer from a
    deterministic xorshift32 stream (seeded per board for reproducible
    runs) and schedules the completion upcall with the count. *)

val driver_num : int
val capsule : ?seed:int -> unit -> Ticktock.Capsule_intf.t
