(** The process console — Tock's interactive kernel shell over UART.

    The bottom half drains the UART RX FIFO; newline-terminated commands
    ([ps], [uptime], [help]) get their responses written back through the
    transmitter. Purely a kernel-side diagnostic surface; registered as a
    driver only to receive kernel services and scheduler ticks. *)

val driver_num : int
val capsule : Mpu_hw.Uart.t -> Ticktock.Capsule_intf.t
