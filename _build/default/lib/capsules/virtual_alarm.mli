(** A virtualized alarm capsule — Tock's [MuxAlarm] pattern.

    One underlying time source (the kernel tick) is multiplexed into any
    number of per-process alarms; each process keeps at most one
    outstanding alarm. Upcalls fire from the capsule's bottom half
    ([cap_tick]), never from the command top half.

    Driver number {!driver_num}. Commands: 0 = driver check; 1 = set alarm
    in [arg1] ticks (returns the absolute deadline, also the upcall
    argument); 2 = read the current time; 3 = cancel. *)

val driver_num : int

type state

val capsule : unit -> Ticktock.Capsule_intf.t * state
(** The capsule plus its observable state (for tests). *)

val make : unit -> Ticktock.Capsule_intf.t

val outstanding : state -> int
(** Alarms currently queued. *)

val fired : state -> int
(** Upcalls delivered so far. *)
