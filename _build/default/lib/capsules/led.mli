(** LED capsule over a GPIO bank (driver {!driver_num}).

    Commands: 0 = number of LEDs; 1 = on; 2 = off; 3 = toggle, each taking
    the LED index in [arg1]. *)

val driver_num : int

val capsule : ?pins:int list -> Mpu_hw.Gpio.t -> Ticktock.Capsule_intf.t
(** [pins] maps LED indices to GPIO pins (default [0..3]); they are
    switched to outputs at creation. *)
