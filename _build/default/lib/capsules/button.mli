(** Button capsule over GPIO inputs with edge-triggered upcalls (driver
    {!driver_num}).

    Commands: 0 = number of buttons; 1 = read level of button [arg1];
    2 = enable interrupts for button [arg1]; 3 = disable. The bottom half
    polls the pins each tick and schedules an upcall
    (arg = [index * 2 + level]) to every subscribed process on a change. *)

val driver_num : int
val capsule : ?pins:int list -> Mpu_hw.Gpio.t -> Ticktock.Capsule_intf.t
