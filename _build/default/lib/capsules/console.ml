(** A UART-backed console capsule.

    Transmit: the process allows a read-only buffer and commands a write of
    [len] bytes; the capsule pulls the bytes through the mediated handle
    (every address validated against the allowed buffer) and pushes them to
    the UART device with a polling driver, then schedules the write-done
    upcall. Receive: with an allowed read-write buffer, a read command
    drains the UART RX FIFO into process memory.

    Driver number 5 (the builtin lightweight console keeps 1). *)

open Ticktock

let driver_num = 5

let capsule uart =
  let command (ph : Capsule_intf.process_handle) ~cmd ~arg1 ~arg2 =
    ignore arg2;
    if cmd = 0 then Userland.success
    else if cmd = 1 then begin
      (* write [arg1] bytes from the allowed-ro buffer *)
      match ph.Capsule_intf.ph_allowed_ro () with
      | None -> Userland.failure
      | Some buf ->
        let len = min arg1 (Range.size buf) in
        let wrote = ref 0 in
        (try
           for i = 0 to len - 1 do
             match ph.Capsule_intf.ph_read_byte (Range.start buf + i) with
             | Ok b ->
               Mpu_hw.Uart.write_byte_blocking uart b;
               incr wrote
             | Error _ -> raise Exit
           done
         with Exit -> ());
        ph.Capsule_intf.ph_schedule_upcall ~upcall_id:1 ~arg:!wrote;
        !wrote
    end
    else if cmd = 2 then begin
      (* read up to [arg1] bytes from the RX FIFO into the rw buffer *)
      match ph.Capsule_intf.ph_allowed_rw () with
      | None -> Userland.failure
      | Some buf ->
        let len = min arg1 (Range.size buf) in
        let got = ref 0 in
        (try
           while !got < len && Mpu_hw.Uart.rx_available uart do
             match Mpu_hw.Uart.read_byte uart with
             | Some b -> (
               match ph.Capsule_intf.ph_write_byte (Range.start buf + !got) b with
               | Ok () -> incr got
               | Error _ -> raise Exit)
             | None -> raise Exit
           done
         with Exit -> ());
        !got
    end
    else Userland.failure
  in
  let tick ~now = Mpu_hw.Uart.step uart (max (now land 0xf) 1) in
  { (Capsule_intf.stub ~driver_num ~name:"uart-console") with
    Capsule_intf.cap_command = command;
    cap_tick = tick;
  }
