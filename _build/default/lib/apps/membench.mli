(** The §6.2 memory-usage microbenchmark: an application that grows its
    memory one byte at a time (through real sbrk syscalls) until the kernel
    refuses, and the harness reporting the total/app/grant/unused
    breakdown. *)

open Ticktock

val grow_script : unit -> int App_dsl.t

type result = {
  kernel : string;
  stats : Instance.mem_stats;
}

val run :
  ?min_ram:int ->
  ?heap_headroom:int ->
  ?grant_reserve:int ->
  Instance.t ->
  (result, Kerror.t) Stdlib.result

val pp_row : Format.formatter -> result -> unit
