(** The §6.2 memory-usage microbenchmark.

    "We wrote an application which incrementally grows its memory by 1 byte
    until failure" — this is that application, plus the harness that reports
    the total / app / grant / unused breakdown for any kernel instance. The
    paper's observation to reproduce: TickTock's total allocation is
    smaller than Tock's (it does not round the whole block to a power of
    two), at the cost of a slightly larger unused fraction; configuring
    TickTock with padding brings the two within bytes of each other. *)

open Ticktock

let grow_script () =
  let open App_dsl in
  (* Touch a couple of drivers so the grant region is realistically
     populated, then grow one byte at a time until the kernel refuses. *)
  let* _ = subscribe ~driver:0 ~upcall_id:0 in
  let* _ = command ~driver:2 ~cmd:1 () in
  let rec grow grown =
    let* r = sbrk 1 in
    if r = Userland.failure then return (grown land 0xff) else grow (grown + 1)
  in
  grow 0

type result = {
  kernel : string;
  stats : Instance.mem_stats;
}

let run ?(min_ram = 2048) ?(heap_headroom = 3072) ?(grant_reserve = 1024) (k : Instance.t) =
  let program = App_dsl.to_program (grow_script ()) in
  match
    k.Instance.load ~name:"grow" ~payload:"grow-until-failure" ~program ~min_ram
      ~grant_reserve ~heap_headroom
  with
  | Error e -> Error e
  | Ok pid -> (
    k.Instance.run ~max_ticks:20_000;
    match k.Instance.proc_mem_stats pid with
    | Some stats -> Ok { kernel = k.Instance.kernel_name; stats }
    | None -> Error Kerror.No_such_process)

let pp_row ppf { kernel; stats } =
  Format.fprintf ppf "%-28s total=%5d app=%5d grant=%5d unused=%4d (%.2f%% unused)" kernel
    stats.Instance.total stats.Instance.app stats.Instance.grant stats.Instance.unused
    (100.0 *. float_of_int stats.Instance.unused /. float_of_int stats.Instance.total)
