(** A tiny scripting monad for writing untrusted applications.

    Userland programs are resumable closures ({!Ticktock.Userland.program});
    writing them directly as state machines is tedious. [script] is a free
    monad over actions: [perform] yields an action and resumes with its
    result, so app code reads like straight-line C while still executing one
    action per kernel-mediated step. [to_program] compiles a script into the
    closure form the kernel consumes. *)

open Ticktock

type 'a t =
  | Done of 'a
  | Act of Userland.action * (Word32.t -> 'a t)

let return x = Done x

let rec bind m f =
  match m with
  | Done x -> f x
  | Act (a, k) -> Act (a, fun r -> bind (k r) f)

let ( let* ) = bind
let map f m = bind m (fun x -> return (f x))

let perform a = Act (a, fun r -> Done r)

(* --- convenience wrappers --- *)

let load8 a = perform (Userland.Load8 a)
let store8 a v = perform (Userland.Store8 (a, v))
let load32 a = perform (Userland.Load32 a)
let store32 a v = perform (Userland.Store32 (a, v))
let compute n = perform (Userland.Compute n)

let print s =
  let* _ = perform (Userland.Print s) in
  return ()

let printf fmt = Format.kasprintf print fmt
let syscall c = perform (Userland.Syscall c)
let yield = syscall Userland.Yield

let command ~driver ~cmd ?(arg1 = 0) ?(arg2 = 0) () =
  syscall (Userland.Command { driver; cmd; arg1; arg2 })

let subscribe ~driver ~upcall_id = syscall (Userland.Subscribe { driver; upcall_id })
let allow_ro ~driver ~addr ~len = syscall (Userland.Allow_ro { driver; addr; len })
let allow_rw ~driver ~addr ~len = syscall (Userland.Allow_rw { driver; addr; len })
let memop ~op ?(arg = 0) () = syscall (Userland.Memop { op; arg })
let brk addr = memop ~op:Userland.memop_brk ~arg:addr ()
let sbrk delta = memop ~op:Userland.memop_sbrk ~arg:(Word32.of_int delta) ()
let memory_start = memop ~op:Userland.memop_memory_start ()
let memory_end = memop ~op:Userland.memop_memory_end ()
let flash_start = memop ~op:Userland.memop_flash_start ()
let flash_end = memop ~op:Userland.memop_flash_end ()
let grant_begins = memop ~op:Userland.memop_grant_begins ()

let rec iter_list f = function
  | [] -> return ()
  | x :: rest ->
    let* () = f x in
    iter_list f rest

let rec repeat n body =
  if n <= 0 then return ()
  else
    let* () = body () in
    repeat (n - 1) body

(* --- tiny libc over the action stream --- *)

(** Write a string into process memory at [dst]. *)
let write_string dst s =
  iter_list
    (fun (i, c) ->
      let* _ = store8 (dst + i) (Char.code c) in
      return ())
    (List.mapi (fun i c -> (i, c)) (List.init (String.length s) (String.get s)))

(** Write a NUL-terminated string (the IPC discovery convention). *)
let write_cstring dst s =
  let* () = write_string dst s in
  let* _ = store8 (dst + String.length s) 0 in
  return ()

(** Read [len] bytes back out of process memory. *)
let read_string src len =
  let rec go i acc =
    if i >= len then return acc
    else
      let* b = load8 (src + i) in
      go (i + 1) (acc ^ String.make 1 (Char.chr (b land 0xff)))
  in
  go 0 ""

(** Read up to [max_len] bytes, stopping at the first NUL. *)
let read_cstring src max_len =
  let rec go i acc =
    if i >= max_len then return acc
    else
      let* b = load8 (src + i) in
      if b = 0 then return acc else go (i + 1) (acc ^ String.make 1 (Char.chr (b land 0xff)))
  in
  go 0 ""

(** Byte-wise copy within process memory. *)
let memcpy ~dst ~src len =
  let rec go i =
    if i >= len then return ()
    else
      let* b = load8 (src + i) in
      let* _ = store8 (dst + i) b in
      go (i + 1)
  in
  go 0

(** Fill [len] bytes at [dst] with [byte]. *)
let memset dst byte len =
  let rec go i =
    if i >= len then return ()
    else
      let* _ = store8 (dst + i) byte in
      go (i + 1)
  in
  go 0

(** Compile a script to the kernel's program representation. When the script
    finishes with value [code], the program issues [Exit code] forever. *)
let to_program (script : int t) : Userland.program =
  let state = ref (`Initial : [ `Initial | `Waiting of Word32.t -> int t | `Finished of int ])
  in
  let step s =
    match s with
    | Done code ->
      state := `Finished code;
      Userland.Exit code
    | Act (a, k) ->
      state := `Waiting k;
      a
  in
  fun prev ->
    match !state with
    | `Initial -> step script
    | `Waiting k -> step (k prev)
    | `Finished code -> Userland.Exit code
