(** The release-test application suite (§6.1).

    Twenty-one applications modeled on the Tock 2.2 release-testing list
    the paper ran for differential testing. Five are deliberately
    {e layout sensitive} — they print absolute addresses or data derived
    from placement (the "sensor" reads) — and are the ones expected to
    differ between the Tock and TickTock kernels, matching the paper's
    5-of-21 result. The rest print layout-independent text and must agree
    exactly. *)

type app = {
  app_name : string;
  min_ram : int;
  grant_reserve : int;
  layout_sensitive : bool;
  expect_fault : bool;  (** deliberate-overrun tests end in an MPU fault *)
  script : unit -> int App_dsl.t;
}

val all : app list
(** The 21 apps, in load order. *)

val expected_differing : app list
(** The five layout-sensitive ones. *)

val payload_of : app -> string
(** Deterministic fake machine-code bytes for the app's flash image. *)

val console_print : string -> unit App_dsl.t
(** Print through the console driver path (allow_ro + command + output) —
    exercises the Figure 11 buffer-validation hook on every print. *)
