(** Malicious applications reproducing the paper's attacks (§2.2, §3.4).

    Each attack is an ordinary untrusted app; whether it succeeds depends
    entirely on which kernel it runs under. Against the upstream monolithic
    kernels the exploits land; against the patched and granular kernels
    they fault or are refused. *)

open Ticktock

type attack = {
  attack_name : string;
  description : string;
  min_ram : int;
  grant_reserve : int;
  heap_headroom : int;
  script : unit -> int App_dsl.t;
}

val grant_overlap : attack
(** §3.4 / Tock #4366: write grant memory through the last enabled
    subregion. *)

val brk_underflow : attack
(** §2.2: a brk below memory_start wraps the subregion arithmetic —
    a kernel panic (DoS) on upstream. *)

val kernel_reader : attack
val flash_writer : attack
val neighbour_reader : attack

val pmp_above_brk : attack
(** Tock #2173 class: access the slack between the app break and the
    coarsely rounded PMP region top. *)

val all : attack list

val code_contained : int
val code_broken_isolation : int

type outcome =
  | Contained
  | Contained_fault
  | Broken_isolation
  | Kernel_dos of string
  | Load_failed of Kerror.t

val outcome_to_string : outcome -> string

val run_attack : (unit -> Instance.t) -> attack -> outcome
(** Run one attack on a fresh kernel (with a victim process loaded first
    so cross-process probes have a neighbour). *)
