(** The release-test application suite (§6.1).

    Twenty-one applications modeled on the Tock 2.2 release-testing list
    the paper ran for differential testing. Five are deliberately
    {e layout sensitive} — they print absolute addresses of their memory
    layout or data derived from it (the "sensor" reads) — and are therefore
    the ones whose output is expected to differ between the Tock and
    TickTock kernels, matching the paper's 5-of-21 result. The rest print
    layout-independent text and must agree exactly. *)

open Ticktock
open App_dsl

type app = {
  app_name : string;
  min_ram : int;
  grant_reserve : int;
  layout_sensitive : bool;
  (* [true] when the app is expected to end in an MPU fault (deliberate
     overrun tests). *)
  expect_fault : bool;
  script : unit -> int App_dsl.t;
}

let default_app name script =
  {
    app_name = name;
    min_ram = 2048;
    grant_reserve = 1024;
    layout_sensitive = false;
    expect_fault = false;
    script;
  }

(* Fake payload bytes standing in for the app's machine code; size varies
   per app so flash placement is exercised, identically on both kernels. *)
let payload_of (app : app) =
  let want = 256 + (String.length app.app_name * 37 mod 700) in
  let rec build acc = if String.length acc >= want then acc else build (acc ^ app.app_name) in
  String.sub (build app.app_name) 0 want

(* Print through the console capsule the way a real app would: share a
   buffer with allow_ro, then command the driver. Exercises
   build_readonly_buffer on every print. *)
let console_print s =
  let* base = memory_start in
  let* _ = allow_ro ~driver:1 ~addr:base ~len:(min (String.length s) 16) in
  let* _ = command ~driver:1 ~cmd:1 ~arg1:(String.length s) () in
  print s

(* --- the 21 apps --- *)

let c_hello =
  default_app "c_hello" (fun () ->
      let* () = console_print "Hello World!\r\n" in
      return 0)

let lua_hello =
  default_app "lua-hello" (fun () ->
      let* () = console_print "Hello from Lua!\r\n" in
      return 0)

let printf_long =
  default_app "printf_long" (fun () ->
      let* () = console_print "Hi welcome to Tock. This test makes sure that a greater than \
                               64 byte message can be printed.\r\n" in
      let* () = console_print "And a short message.\r\n" in
      return 0)

let blink =
  default_app "blink" (fun () ->
      let* () =
        repeat 5 (fun () ->
            let* _ = command ~driver:3 ~cmd:1 ~arg1:1 () in
            print "led toggle\r\n")
      in
      return 0)

let buttons =
  default_app "buttons" (fun () ->
      let* r = command ~driver:3 ~cmd:0 () in
      let* () =
        if r = Userland.success then console_print "buttons: driver present\r\n"
        else console_print "buttons: no driver\r\n"
      in
      return 0)

let malloc_test01 =
  default_app "malloc_test01" (fun () ->
      let* heap = memory_end in
      let* r = sbrk 1024 in
      if r = Userland.failure then
        let* () = console_print "malloc01: sbrk failed\r\n" in
        return 1
      else
        let* () =
          iter_list (fun i -> let* _ = store8 (heap + i) (i land 0xff) in return ())
            [ 0; 1; 2; 3; 4; 5; 6; 7 ]
        in
        let* v = load8 (heap + 5) in
        let* () =
          if v = 5 then console_print "malloc01: success\r\n"
          else console_print "malloc01: MISMATCH\r\n"
        in
        return 0)

let malloc_test02 =
  default_app "malloc_test02" (fun () ->
      let* ok =
        let rec go n acc =
          if n = 0 then return acc
          else
            let* heap = memory_end in
            let* r = sbrk 512 in
            if r = Userland.failure then return false
            else
              let* _ = store8 heap 0xAA in
              let* v = load8 heap in
              go (n - 1) (acc && v = 0xAA)
        in
        go 3 true
      in
      let* () =
        if ok then console_print "malloc02: success\r\n" else console_print "malloc02: fail\r\n"
      in
      return 0)

let stack_size_test01 =
  {
    (default_app "stack_size_test01" (fun () ->
         let* ms = memory_start in
         let* ab = memory_end in
         let* () = printf "stack: memory_start=%s\r\n" (Word32.to_hex ms) in
         let* () = printf "stack: app_break=%s\r\n" (Word32.to_hex ab) in
         return 0))
    with
    layout_sensitive = true;
  }

let stack_size_test02 =
  {
    (default_app "stack_size_test02" (fun () ->
         let* ms = memory_start in
         let* ab = memory_end in
         let* gb = grant_begins in
         let* () = printf "stack2: layout %s..%s grant@%s\r\n" (Word32.to_hex ms)
             (Word32.to_hex ab) (Word32.to_hex gb)
         in
         return 0))
    with
    layout_sensitive = true;
    min_ram = 4096;
  }

let mpu_stack_growth =
  {
    (default_app "mpu_stack_growth" (fun () ->
         let* ms = memory_start in
         let* ab = memory_end in
         let* () = printf "stack_growth: block %s..%s\r\n" (Word32.to_hex ms) (Word32.to_hex ab)
         in
         let* () = print "stack_growth: overrunning stack (fault expected)\r\n" in
         (* Deliberately overrun the stack below the start of process
            memory — must fault on every kernel. *)
         let* _ = store8 (ms - 4) 0xEE in
         (* unreachable *)
         let* () = print "stack_growth: SURVIVED (isolation broken!)\r\n" in
         return 1))
    with
    layout_sensitive = true;
    expect_fault = true;
  }

let mpu_walk_region =
  {
    (default_app "mpu_walk_region" (fun () ->
         let* ms = memory_start in
         (* Walk a fixed-size prefix so output is layout independent. *)
         let rec walk off acc =
           if off >= 1024 then return acc
           else
             let* v = load8 (ms + off) in
             walk (off + 64) (acc + v)
         in
         let* sum = walk 0 0 in
         let* () = printf "walk_region: walked 1024 bytes (sum=%d)\r\n" sum in
         let* () = print "walk_region: overrun expected\r\n" in
         let* gb = grant_begins in
         let* _ = load8 gb in
         let* () = print "walk_region: SURVIVED grant read (isolation broken!)\r\n" in
         return 1))
    with
    expect_fault = true;
    min_ram = 4096;
  }

let sensors =
  {
    (default_app "sensors" (fun () ->
         let* base = memory_start in
         let* _ = allow_rw ~driver:2 ~addr:base ~len:8 in
         let* v = command ~driver:2 ~cmd:1 () in
         let* () = printf "sensors: temperature reading %d\r\n" v in
         return 0))
    with
    layout_sensitive = true;
  }

let adc =
  {
    (default_app "adc" (fun () ->
         let* base = memory_start in
         let* _ = allow_rw ~driver:2 ~addr:base ~len:8 in
         let* v = command ~driver:2 ~cmd:2 () in
         let* () = printf "adc: channel 0 = %d\r\n" v in
         return 0))
    with
    layout_sensitive = true;
  }

let ip_sense =
  default_app "ip_sense" (fun () ->
      let* _ = command ~driver:2 ~cmd:1 () in
      let* () = console_print "ip_sense: packet sent\r\n" in
      return 0)

let whileone =
  default_app "whileone" (fun () ->
      let* () = print "whileone: spinning\r\n" in
      let* () = repeat 40 (fun () -> let* _ = compute 50 in return ()) in
      return 0)

let timer_oneshot =
  default_app "timer_oneshot" (fun () ->
      let* _ = subscribe ~driver:0 ~upcall_id:0 in
      let* _ = command ~driver:0 ~cmd:1 ~arg1:3 () in
      let* _ = yield in
      let* () = console_print "timer: oneshot fired\r\n" in
      return 0)

let timer_repeat =
  default_app "timer_repeat" (fun () ->
      let* _ = subscribe ~driver:0 ~upcall_id:0 in
      let* () =
        repeat 3 (fun () ->
            let* _ = command ~driver:0 ~cmd:1 ~arg1:2 () in
            let* _ = yield in
            print "timer: tick\r\n")
      in
      return 0)

let tictactoe =
  default_app "tictactoe" (fun () ->
      (* Deterministic self-play: X wins on the diagonal. *)
      let moves = [ 0; 1; 4; 2; 8 ] in
      let board = Bytes.make 9 '.' in
      let* () =
        iter_list
          (fun (i, cell) ->
            Bytes.set board cell (if i mod 2 = 0 then 'X' else 'O');
            let* _ = compute 5 in
            return ())
          (List.mapi (fun i c -> (i, c)) moves)
      in
      let* () = printf "tictactoe: %s X wins\r\n" (Bytes.to_string board) in
      return 0)

let rot13_pair =
  default_app "rot13_client_service" (fun () ->
      let input = "Hello" in
      let* base = memory_end in
      let* r = sbrk 64 in
      if r = Userland.failure then
        let* () = print "rot13: no memory\r\n" in
        return 1
      else
        let* () =
          iter_list
            (fun (i, c) ->
              let* _ = store8 (base + i) (Char.code c) in
              return ())
            (List.mapi (fun i c -> (i, c)) (List.init (String.length input) (String.get input)))
        in
        (* the "service": rot13 in place *)
        let* () =
          iter_list
            (fun i ->
              let* c = load8 (base + i) in
              let rot c =
                if c >= Char.code 'a' && c <= Char.code 'z' then
                  ((c - Char.code 'a' + 13) mod 26) + Char.code 'a'
                else if c >= Char.code 'A' && c <= Char.code 'Z' then
                  ((c - Char.code 'A' + 13) mod 26) + Char.code 'A'
                else c
              in
              let* _ = store8 (base + i) (rot c) in
              return ())
            (List.init (String.length input) Fun.id)
        in
        let rec read_back i acc =
          if i >= String.length input then return acc
          else
            let* c = load8 (base + i) in
            read_back (i + 1) (acc ^ String.make 1 (Char.chr c))
        in
        let* out = read_back 0 "" in
        let* () = printf "rot13: %s -> %s\r\n" input out in
        return 0)

let app_state =
  default_app "app_state" (fun () ->
      let* fs = flash_start in
      let* magic = load32 fs in
      let* () = printf "app_state: flash magic %s\r\n" (Word32.to_hex magic) in
      return 0)

let ble_advertising =
  default_app "ble_advertising" (fun () ->
      let* _ = subscribe ~driver:3 ~upcall_id:1 in
      let* _ = command ~driver:3 ~cmd:0 () in
      let* () = console_print "ble: advertising started\r\n" in
      return 0)

let all : app list =
  [
    c_hello;
    lua_hello;
    printf_long;
    blink;
    buttons;
    malloc_test01;
    malloc_test02;
    stack_size_test01;
    stack_size_test02;
    mpu_stack_growth;
    mpu_walk_region;
    sensors;
    adc;
    ip_sense;
    whileone;
    timer_oneshot;
    timer_repeat;
    tictactoe;
    rot13_pair;
    app_state;
    ble_advertising;
  ]

let expected_differing = List.filter (fun a -> a.layout_sensitive) all
