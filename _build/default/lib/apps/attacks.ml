(** Malicious applications reproducing the paper's attacks (§2.2, §3.4).

    Each attack is written as an ordinary untrusted app; whether it succeeds
    depends entirely on which kernel it runs under. The tests and the [bugs]
    bench assert the asymmetry: against the upstream (buggy) monolithic
    kernel the exploit lands; against the patched monolithic kernel and
    against TickTock's granular kernel it faults or is refused. *)

open Ticktock
open App_dsl

type attack = {
  attack_name : string;
  description : string;
  min_ram : int;
  grant_reserve : int;
  heap_headroom : int;
  script : unit -> int App_dsl.t;
}

(* Exit codes the attack scripts use to report what happened. *)
let code_contained = 0 (* kernel stopped the attack cleanly *)
let code_broken_isolation = 42 (* the attack read/wrote kernel memory *)

(** The §3.4 grant-overlap exploit (Tock issue #4366). Request a RAM size
    that drives the enabled subregions right up to the power-of-two block
    end; the kernel then places grant allocations (including its own
    stored-state block for our registers!) inside the last {e enabled}
    subregion. Writing through the kernel break must fault — unless the
    kernel is the buggy monolithic one. *)
let grant_overlap =
  {
    attack_name = "grant_overlap";
    description = "write kernel grant memory via the last enabled subregion";
    (* 7680 + 512 = 8192 keeps the block at 8 KiB while pushing the enabled
       subregions to the block end. *)
    min_ram = 7680;
    grant_reserve = 512;
    heap_headroom = 0;
    script =
      (fun () ->
        let* gb = grant_begins in
        let* _ = store8 gb 0x66 in
        (* Reaching here means the MPU allowed a write above the kernel
           break: the stored-state block is ours to corrupt. *)
        let* () = printf "pwned: wrote grant memory at %s\r\n" (Word32.to_hex gb) in
        return code_broken_isolation);
  }

(** The §2.2 integer-underflow DoS. A brk far below the region start makes
    the unvalidated subtraction wrap; in upstream Tock the resulting
    subregion arithmetic panics the kernel (denial of service for every
    process on the system). *)
let brk_underflow =
  {
    attack_name = "brk_underflow";
    description = "brk below memory_start wraps the subregion arithmetic";
    min_ram = 2048;
    grant_reserve = 1024;
    heap_headroom = 2048;
    script =
      (fun () ->
        let* ms = memory_start in
        let* r = brk (ms - 64) in
        if r = Userland.failure then
          let* () = print "brk rejected\r\n" in
          return code_contained
        else
          let* () = print "brk below start accepted!\r\n" in
          return code_broken_isolation);
  }

(** Plain kernel-RAM read: every kernel must stop this one. *)
let kernel_reader =
  {
    attack_name = "kernel_reader";
    description = "read kernel SRAM directly";
    min_ram = 2048;
    grant_reserve = 1024;
    heap_headroom = 2048;
    script =
      (fun () ->
        let* _ = load8 (Range.start Layout.kernel_sram + 128) in
        let* () = print "read kernel memory!\r\n" in
        return code_broken_isolation);
  }

(** Write own flash (mapped read-execute): must fault everywhere. *)
let flash_writer =
  {
    attack_name = "flash_writer";
    description = "write to own flash image";
    min_ram = 2048;
    grant_reserve = 1024;
    heap_headroom = 2048;
    script =
      (fun () ->
        let* fs = flash_start in
        let* _ = store8 fs 0x00 in
        let* () = print "overwrote flash!\r\n" in
        return code_broken_isolation);
  }

(** Read a neighbour process's RAM. Needs a victim loaded before it; the
    address probed is the previous block below our own memory. *)
let neighbour_reader =
  {
    attack_name = "neighbour_reader";
    description = "read the previous process's RAM";
    min_ram = 2048;
    grant_reserve = 1024;
    heap_headroom = 2048;
    script =
      (fun () ->
        let* ms = memory_start in
        let* _ = load8 (ms - 256) in
        let* () = print "read neighbour memory!\r\n" in
        return code_broken_isolation);
  }

(** The PMP rounding hole (PR #2173 class): after shrinking the heap, probe
    just above the new app break. With the buggy PMP driver the region top
    was rounded up past the break, so the probe succeeds. *)
let pmp_above_brk =
  {
    attack_name = "pmp_above_brk";
    description = "access RAM between app break and rounded PMP region top";
    min_ram = 2048;
    grant_reserve = 1024;
    heap_headroom = 2048;
    script =
      (fun () ->
        let* ms = memory_start in
        (* Shrink to a break that 4-byte granularity rounds to +1028 but
           the buggy driver's coarse 8-byte granule rounds to +1032. *)
        let* r = brk (ms + 1026) in
        if r = Userland.failure then
          let* () = print "brk rejected\r\n" in
          return code_contained
        else
          let* _ = load8 (ms + 1028) in
          let* () = print "read above app break!\r\n" in
          return code_broken_isolation);
  }

let all = [ grant_overlap; brk_underflow; kernel_reader; flash_writer; neighbour_reader; pmp_above_brk ]

(** Outcome of running one attack against one kernel. *)
type outcome =
  | Contained  (** kernel refused the request cleanly *)
  | Contained_fault  (** the MPU faulted the attacking process *)
  | Broken_isolation  (** the attack read or wrote kernel memory *)
  | Kernel_dos of string  (** the kernel itself panicked *)
  | Load_failed of Kerror.t

let outcome_to_string = function
  | Contained -> "contained"
  | Contained_fault -> "contained (mpu fault)"
  | Broken_isolation -> "BROKEN ISOLATION"
  | Kernel_dos msg -> "KERNEL PANIC: " ^ msg
  | Load_failed e -> "load failed: " ^ Kerror.to_string e

(** Run a single attack on a fresh kernel instance. A victim app is loaded
    first so cross-process attacks have a neighbour to probe. *)
let run_attack (make : unit -> Instance.t) (a : attack) =
  let k = make () in
  let victim = App_dsl.to_program (App_dsl.return 0) in
  ignore
    (k.Instance.load ~name:"victim" ~payload:"victim-payload" ~program:victim ~min_ram:2048
       ~grant_reserve:1024 ~heap_headroom:0);
  let program = App_dsl.to_program (a.script ()) in
  match
    k.Instance.load ~name:a.attack_name ~payload:a.attack_name ~program ~min_ram:a.min_ram
      ~grant_reserve:a.grant_reserve ~heap_headroom:a.heap_headroom
  with
  | Error e -> Load_failed e
  | Ok pid -> (
    match k.Instance.run ~max_ticks:500 with
    | exception Tock_cortexm_mpu.Kernel_panic msg -> Kernel_dos msg
    | () ->
      if k.Instance.proc_faulted pid then Contained_fault
      else (
        match k.Instance.proc_exit pid with
        | Some c when c = code_broken_isolation -> Broken_isolation
        | Some _ | None -> Contained))
