lib/apps/attacks.ml: App_dsl Instance Kerror Layout Range Ticktock Tock_cortexm_mpu Userland Word32
