lib/apps/difftest.ml: App_dsl Format Instance Kerror List Option String Suite Ticktock
