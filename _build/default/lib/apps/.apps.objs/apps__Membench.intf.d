lib/apps/membench.mli: App_dsl Format Instance Kerror Stdlib Ticktock
