lib/apps/attacks.mli: App_dsl Instance Kerror Ticktock
