lib/apps/suite.mli: App_dsl
