lib/apps/difftest.mli: Format Instance Kerror Suite Ticktock
