lib/apps/membench.ml: App_dsl Format Instance Kerror Ticktock Userland
