lib/apps/fuzz.ml: App_dsl Instance Layout List Printf Random Range Result Ticktock Tock_cortexm_mpu Word32
