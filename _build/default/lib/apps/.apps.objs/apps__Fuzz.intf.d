lib/apps/fuzz.mli: App_dsl Instance Ticktock
