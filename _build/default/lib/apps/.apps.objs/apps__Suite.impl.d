lib/apps/suite.ml: App_dsl Bytes Char Fun List String Ticktock Userland Word32
