lib/apps/app_dsl.mli: Format Ticktock Userland Word32
