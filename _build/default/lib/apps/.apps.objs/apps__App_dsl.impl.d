lib/apps/app_dsl.ml: Char Format List String Ticktock Userland Word32
