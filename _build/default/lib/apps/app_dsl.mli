(** A scripting monad for writing untrusted applications.

    Userland programs are resumable closures ({!Ticktock.Userland.program});
    writing them directly as state machines is tedious. ['a t] is a free
    monad over actions: {!perform} yields an action and resumes with its
    result, so app code reads like straight-line C while still executing
    one action per kernel-mediated step. {!to_program} compiles a script
    into the closure form the kernel consumes. *)

open Ticktock

type 'a t

val return : 'a -> 'a t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
val map : ('a -> 'b) -> 'a t -> 'b t

val perform : Userland.action -> Word32.t t
(** Emit one action; the bound value is its result. *)

(** {1 Memory and compute} *)

val load8 : Word32.t -> Word32.t t
val store8 : Word32.t -> int -> Word32.t t
val load32 : Word32.t -> Word32.t t
val store32 : Word32.t -> Word32.t -> Word32.t t
val compute : int -> Word32.t t

(** {1 Console output} *)

val print : string -> unit t
val printf : ('a, Format.formatter, unit, unit t) format4 -> 'a

(** {1 Syscalls} *)

val syscall : Userland.call -> Word32.t t
val yield : Word32.t t
(** Result: the pending upcall's argument, or 0 after parking. *)

val command : driver:int -> cmd:int -> ?arg1:int -> ?arg2:int -> unit -> Word32.t t
val subscribe : driver:int -> upcall_id:int -> Word32.t t
val allow_ro : driver:int -> addr:Word32.t -> len:int -> Word32.t t
val allow_rw : driver:int -> addr:Word32.t -> len:int -> Word32.t t
val memop : op:int -> ?arg:Word32.t -> unit -> Word32.t t
val brk : Word32.t -> Word32.t t
val sbrk : int -> Word32.t t
val memory_start : Word32.t t
val memory_end : Word32.t t
val flash_start : Word32.t t
val flash_end : Word32.t t
val grant_begins : Word32.t t

(** {1 A tiny libc over the action stream} *)

val write_string : Word32.t -> string -> unit t
val write_cstring : Word32.t -> string -> unit t
(** NUL-terminated (the IPC discovery convention). *)

val read_string : Word32.t -> int -> string t
val read_cstring : Word32.t -> int -> string t
val memcpy : dst:Word32.t -> src:Word32.t -> int -> unit t
val memset : Word32.t -> int -> int -> unit t

(** {1 Control} *)

val iter_list : ('a -> unit t) -> 'a list -> unit t
val repeat : int -> (unit -> unit t) -> unit t

val to_program : int t -> Userland.program
(** Compile; when the script finishes with [code], the program emits
    [Exit code] forever. *)
