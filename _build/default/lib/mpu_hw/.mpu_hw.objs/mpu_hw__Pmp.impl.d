lib/mpu_hw/pmp.ml: Array Cycles Format List Math32 Option Perms Printf Range Word32
