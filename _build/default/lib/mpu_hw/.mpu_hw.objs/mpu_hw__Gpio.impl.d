lib/mpu_hw/gpio.ml: Array Cycles
