lib/mpu_hw/armv7m_mpu.ml: Array Format List Mach Perms Printf Range Word32
