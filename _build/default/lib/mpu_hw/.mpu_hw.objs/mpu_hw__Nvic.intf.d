lib/mpu_hw/nvic.mli:
