lib/mpu_hw/uart.ml: Buffer Char Cycles Queue String
