lib/mpu_hw/scb.ml: Format Perms Word32
