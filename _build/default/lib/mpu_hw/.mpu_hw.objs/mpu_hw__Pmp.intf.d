lib/mpu_hw/pmp.mli: Format Perms Range Word32
