lib/mpu_hw/uart.mli:
