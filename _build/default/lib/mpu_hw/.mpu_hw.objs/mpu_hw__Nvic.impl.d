lib/mpu_hw/nvic.ml: Array Cycles
