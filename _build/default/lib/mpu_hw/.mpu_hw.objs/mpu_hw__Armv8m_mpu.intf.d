lib/mpu_hw/armv8m_mpu.mli: Format Perms Range Word32
