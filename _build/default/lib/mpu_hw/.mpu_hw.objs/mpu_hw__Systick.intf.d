lib/mpu_hw/systick.mli:
