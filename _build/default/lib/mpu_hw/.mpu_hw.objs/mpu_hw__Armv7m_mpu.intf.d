lib/mpu_hw/armv7m_mpu.mli: Format Perms Range Word32
