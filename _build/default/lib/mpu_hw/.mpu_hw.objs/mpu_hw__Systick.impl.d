lib/mpu_hw/systick.ml: Cycles
