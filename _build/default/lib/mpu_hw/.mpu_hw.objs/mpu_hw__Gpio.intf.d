lib/mpu_hw/gpio.mli:
