lib/mpu_hw/armv8m_mpu.ml: Array Cycles Format Fun List Perms Printf Range Word32
