(** 32-bit machine words.

    All values are OCaml [int]s confined to [0, 2{^32}). Arithmetic wraps
    modulo 2{^32}, mirroring the semantics of the 32-bit microcontrollers
    (ARMv7-M, RV32) that Tock targets. The kernel model and the CPU emulator
    use this module for every address and register computation so that
    overflow behaviour matches hardware, not OCaml's 63-bit ints. *)

type t = int

val mask : int
(** [0xFFFF_FFFF]. *)

val max_value : t
(** Largest representable word, [0xFFFF_FFFF] (the paper's [u32::MAX]). *)

val is_valid : int -> bool
(** [is_valid x] holds iff [x] is within [0, 2{^32}). *)

val of_int : int -> t
(** Truncate an OCaml int to 32 bits (two's-complement wrap). *)

val add : t -> t -> t
(** Wrapping addition. *)

val sub : t -> t -> t
(** Wrapping subtraction; [sub 0 1 = 0xFFFF_FFFF] (the underflow the paper's
    integer-overflow bug hinges on). *)

val mul : t -> t -> t
(** Wrapping multiplication. *)

val checked_add : t -> t -> t option
(** [None] on overflow — the model of Rust's [checked_add]. *)

val checked_sub : t -> t -> t option
(** [None] on underflow — the model of Rust's [checked_sub]. *)

val checked_mul : t -> t -> t option

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t

val bit : t -> int -> bool
(** [bit w i] is bit [i] (0-based from LSB) of [w]. *)

val set_bit : t -> int -> bool -> t
(** [set_bit w i v] returns [w] with bit [i] forced to [v]. *)

val bits : t -> hi:int -> lo:int -> t
(** [bits w ~hi ~lo] extracts the inclusive bit field [hi..lo]. *)

val set_bits : t -> hi:int -> lo:int -> t -> t
(** [set_bits w ~hi ~lo v] overwrites field [hi..lo] of [w] with [v]. *)

val pp : Format.formatter -> t -> unit
(** Hex rendering, [0x%08x]. *)

val to_hex : t -> string
