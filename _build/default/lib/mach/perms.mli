(** Access permissions for memory regions.

    Mirrors Tock's [mpu::Permissions] enum: the combinations of read, write
    and execute access a kernel can request for a process-visible region. *)

type t =
  | Read_write_execute
  | Read_write_only
  | Read_execute_only
  | Read_only
  | Execute_only

type access = Read | Write | Execute
(** A single attempted access, as seen by the MPU hardware model. *)

val allows : t -> access -> bool
(** [allows perms access] holds iff a region configured with [perms] permits
    [access]. *)

val readable : t -> bool
val writable : t -> bool
val executable : t -> bool

val all : t list
(** Every permission value, for exhaustive property testing. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
