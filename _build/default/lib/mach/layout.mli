(** Standard board memory layout.

    Address-map constants modelled on the Nordic NRF52840 (the ARM board the
    paper evaluates on): flash at the bottom of the address space, SRAM at
    [0x2000_0000]. The process loader carves application flash and RAM out
    of these windows, after reserving a prefix of each for the kernel. *)

val flash_base : Word32.t
val flash_size : int
val sram_base : Word32.t
val sram_size : int

val kernel_flash : Range.t
(** Flash occupied by the kernel image; process binaries are placed above. *)

val kernel_sram : Range.t
(** SRAM reserved for kernel data/stack; process RAM is allocated above. *)

val app_flash : Range.t
(** Flash window available for application binaries. *)

val app_sram : Range.t
(** RAM window available for application memory. *)

val in_flash : Word32.t -> bool
val in_sram : Word32.t -> bool
