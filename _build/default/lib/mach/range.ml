type t = { start : Word32.t; size : int }

let make ~start ~size =
  assert (Word32.is_valid start);
  assert (size >= 0);
  assert (start + size <= Word32.mask + 1);
  { start; size }

let make_checked ~start ~size =
  if Word32.is_valid start && size >= 0 && start + size <= Word32.mask + 1 then
    Some { start; size }
  else None

let of_bounds ~lo ~hi =
  assert (lo <= hi);
  make ~start:lo ~size:(hi - lo)

let empty = { start = 0; size = 0 }
let is_empty t = t.size = 0
let start t = t.start
let size t = t.size
let end_ t = t.start + t.size
let contains t a = not (is_empty t) && a >= t.start && a < end_ t

let contains_range outer inner =
  is_empty inner || ((not (is_empty outer)) && inner.start >= outer.start && end_ inner <= end_ outer)

let overlaps a b =
  (not (is_empty a)) && (not (is_empty b)) && a.start < end_ b && b.start < end_ a

let overlaps_bounds t ~lo ~hi =
  (not (is_empty t)) && lo <= hi && t.start <= hi && lo < end_ t

let intersection a b =
  if not (overlaps a b) then None
  else
    let lo = max a.start b.start in
    let hi = min (end_ a) (end_ b) in
    Some (of_bounds ~lo ~hi)

let equal a b = a.start = b.start && a.size = b.size

let pp ppf t =
  Format.fprintf ppf "[%a, %a)" Word32.pp t.start Word32.pp (end_ t)
