type fault = {
  fault_addr : Word32.t;
  fault_access : Perms.access;
  fault_reason : string;
}

exception Access_fault of fault

let page_bits = 12
let page_size = 1 lsl page_bits

type t = {
  pages : (int, Bytes.t) Hashtbl.t;
  mutable checker : (Word32.t -> Perms.access -> (unit, string) result) option;
}

let create () = { pages = Hashtbl.create 64; checker = None }
let set_checker t checker = t.checker <- checker
let checker_enabled t = t.checker <> None

let page t addr =
  let key = addr lsr page_bits in
  match Hashtbl.find_opt t.pages key with
  | Some p -> p
  | None ->
    let p = Bytes.make page_size '\000' in
    Hashtbl.replace t.pages key p;
    p

let read8 t addr =
  assert (Word32.is_valid addr);
  Char.code (Bytes.get (page t addr) (addr land (page_size - 1)))

let write8 t addr v =
  assert (Word32.is_valid addr);
  Bytes.set (page t addr) (addr land (page_size - 1)) (Char.chr (v land 0xff))

let read32 t addr =
  let b i = read8 t (Word32.add addr i) in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)

let write32 t addr v =
  let b i x = write8 t (Word32.add addr i) x in
  b 0 v;
  b 1 (v lsr 8);
  b 2 (v lsr 16);
  b 3 (v lsr 24)

let blit_string t addr s = String.iteri (fun i c -> write8 t (Word32.add addr i) (Char.code c)) s

let read_bytes t addr n = String.init n (fun i -> Char.chr (read8 t (Word32.add addr i)))

let check t addr access =
  match t.checker with None -> Ok () | Some f -> f addr access

let checked t addr access k =
  match check t addr access with
  | Ok () -> k ()
  | Error fault_reason ->
    raise (Access_fault { fault_addr = addr; fault_access = access; fault_reason })

let check_word t addr access =
  (* A 4-byte access faults if any covered byte is denied, matching the
     byte-granular view the MPU models expose. *)
  for i = 0 to 3 do
    checked t (Word32.add addr i) access (fun () -> ())
  done

let load8 t addr = checked t addr Perms.Read (fun () -> read8 t addr)
let store8 t addr v = checked t addr Perms.Write (fun () -> write8 t addr v)

let load32 t addr =
  check_word t addr Perms.Read;
  read32 t addr

let store32 t addr v =
  check_word t addr Perms.Write;
  write32 t addr v

let fetch32 t addr =
  check_word t addr Perms.Execute;
  read32 t addr

let touched_pages t = Hashtbl.length t.pages
