lib/mach/cycles.mli:
