lib/mach/cycles.ml:
