lib/mach/perms.mli: Format
