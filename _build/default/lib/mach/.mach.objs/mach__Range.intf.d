lib/mach/range.mli: Format Word32
