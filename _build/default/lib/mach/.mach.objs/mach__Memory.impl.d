lib/mach/memory.ml: Bytes Char Hashtbl Perms String Word32
