lib/mach/math32.mli:
