lib/mach/layout.ml: Range
