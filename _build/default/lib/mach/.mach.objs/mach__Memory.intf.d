lib/mach/memory.mli: Perms Word32
