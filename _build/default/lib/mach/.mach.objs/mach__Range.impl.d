lib/mach/range.ml: Format Word32
