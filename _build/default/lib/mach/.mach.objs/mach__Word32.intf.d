lib/mach/word32.mli: Format
