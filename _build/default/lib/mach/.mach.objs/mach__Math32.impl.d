lib/mach/math32.ml:
