lib/mach/layout.mli: Range Word32
