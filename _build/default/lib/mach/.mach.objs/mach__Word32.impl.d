lib/mach/word32.ml: Format Printf
