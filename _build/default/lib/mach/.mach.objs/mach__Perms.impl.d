lib/mach/perms.ml: Format
