(** Deterministic cycle accounting.

    The paper instruments Tock's and TickTock's process abstractions with
    per-method CPU-cycle counters on an NRF52840 (Figure 11). Our substitute
    is a global deterministic counter that the kernel models charge with a
    documented cost per primitive operation (see DESIGN.md, "Cycle-cost
    model"). Relative differences between the two kernels then arise from
    code shape — loops vs. bit-math, redundant recomputation — rather than
    hand-picked constants. *)

type counter

val global : counter
(** The machine-wide counter shared by CPU emulator, MPU models and kernel. *)

val fresh : unit -> counter

val tick : ?n:int -> counter -> unit
(** Charge [n] cycles (default 1). *)

val read : counter -> int
val reset : counter -> unit

val measure : counter -> (unit -> 'a) -> 'a * int
(** [measure c f] runs [f] and returns its result along with the cycles
    charged to [c] during the call. *)

(** {1 Cost constants} (documented in DESIGN.md) *)

(** [alu]: ALU op / register move (1). *)
val alu : int

(** [mem]: memory word access (2). *)
val mem : int

(** [mpu_reg_write]: MPU/PMP register write (3). *)
val mpu_reg_write : int

(** [branch]: taken branch / loop back-edge (2). *)
val branch : int

(** [exception_entry]: exception entry or return (20). *)
val exception_entry : int

(** [div]: hardware divide (6). *)
val div : int
