(** Sparse byte-addressable physical memory.

    Models the microcontroller's flat 32-bit physical address space (no MMU,
    no translation — exactly the setting that forces Tock onto MPUs). Memory
    is allocated lazily in pages so a 4 GiB space costs only what is touched.

    An optional {e access checker} is consulted on every load/store/fetch;
    the MPU hardware models install themselves here, so every memory access
    made by emulated user code is subject to the live MPU configuration, the
    same way the hardware intercepts bus accesses. *)

type t

type fault = {
  fault_addr : Word32.t;
  fault_access : Perms.access;
  fault_reason : string;
}

exception Access_fault of fault
(** Raised by checked accesses that the installed checker denies — the model
    of the MemManage / PMP access fault exception. *)

val create : unit -> t

val set_checker : t -> (Word32.t -> Perms.access -> (unit, string) result) option -> unit
(** Install or remove the access checker ([None] = all access allowed, i.e.
    MPU disabled / privileged execution). Installed after creation so the
    checker closure may capture the CPU whose privilege state it consults. *)

val checker_enabled : t -> bool

(** {1 Raw (unchecked) accesses} — used by the kernel model and by DMA, which
    bypass the MPU on real ARMv7-M hardware. *)

val read8 : t -> Word32.t -> int
val write8 : t -> Word32.t -> int -> unit
val read32 : t -> Word32.t -> Word32.t
(** Little-endian, like ARMv7-M and RV32 in Tock's configurations. *)

val write32 : t -> Word32.t -> Word32.t -> unit
val blit_string : t -> Word32.t -> string -> unit
val read_bytes : t -> Word32.t -> int -> string

(** {1 Checked accesses} — used by emulated unprivileged code. *)

val load8 : t -> Word32.t -> int
val store8 : t -> Word32.t -> int -> unit
val load32 : t -> Word32.t -> Word32.t
val store32 : t -> Word32.t -> Word32.t -> unit
val fetch32 : t -> Word32.t -> Word32.t
(** Instruction fetch: checked with {!Perms.Execute}. *)

val check : t -> Word32.t -> Perms.access -> (unit, string) result
(** Ask the checker without performing an access. [Ok] when no checker is
    installed. *)

val touched_pages : t -> int
(** Number of 4 KiB pages materialised so far (for tests and footprint
    reporting). *)
