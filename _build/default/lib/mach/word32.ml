type t = int

let mask = 0xFFFF_FFFF
let max_value = mask
let is_valid x = x >= 0 && x <= mask
let of_int x = x land mask
let add a b = (a + b) land mask
let sub a b = (a - b) land mask
let mul a b = (a * b) land mask

let checked_add a b =
  let s = a + b in
  if s > mask then None else Some s

let checked_sub a b = if a < b then None else Some (a - b)

let checked_mul a b =
  let p = a * b in
  if p > mask || (a <> 0 && p / a <> b) then None else Some p

let logand a b = a land b
let logor a b = a lor b
let logxor a b = a lxor b
let lognot a = lnot a land mask
let shift_left a n = (a lsl n) land mask
let shift_right a n = a lsr n
let bit w i = (w lsr i) land 1 = 1
let set_bit w i v = if v then w lor (1 lsl i) else w land lnot (1 lsl i) land mask

let bits w ~hi ~lo =
  assert (hi >= lo && hi < 32 && lo >= 0);
  (w lsr lo) land ((1 lsl (hi - lo + 1)) - 1)

let set_bits w ~hi ~lo v =
  assert (hi >= lo && hi < 32 && lo >= 0);
  let width = hi - lo + 1 in
  let field_mask = ((1 lsl width) - 1) lsl lo in
  w land lnot field_mask land mask lor ((v lsl lo) land field_mask)

let pp ppf w = Format.fprintf ppf "0x%08x" w
let to_hex w = Printf.sprintf "0x%08x" w
