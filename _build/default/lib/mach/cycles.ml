type counter = { mutable count : int }

let global = { count = 0 }
let fresh () = { count = 0 }
let tick ?(n = 1) c = c.count <- c.count + n
let read c = c.count
let reset c = c.count <- 0

let measure c f =
  let before = c.count in
  let result = f () in
  (result, c.count - before)

let alu = 1
let mem = 2
let mpu_reg_write = 3
let branch = 2
let exception_entry = 20
let div = 6
