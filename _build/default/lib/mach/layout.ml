let flash_base = 0x0000_0000
let flash_size = 0x0010_0000 (* 1 MiB, as on the NRF52840 *)
let sram_base = 0x2000_0000
let sram_size = 0x0004_0000 (* 256 KiB *)
let kernel_flash = Range.make ~start:flash_base ~size:0x0002_0000
let kernel_sram = Range.make ~start:sram_base ~size:0x0000_8000

let app_flash =
  Range.of_bounds ~lo:(Range.end_ kernel_flash) ~hi:(flash_base + flash_size)

let app_sram = Range.of_bounds ~lo:(Range.end_ kernel_sram) ~hi:(sram_base + sram_size)
let in_flash a = Range.contains (Range.make ~start:flash_base ~size:flash_size) a
let in_sram a = Range.contains (Range.make ~start:sram_base ~size:sram_size) a
