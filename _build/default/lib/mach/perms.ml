type t =
  | Read_write_execute
  | Read_write_only
  | Read_execute_only
  | Read_only
  | Execute_only

type access = Read | Write | Execute

let readable = function
  | Read_write_execute | Read_write_only | Read_execute_only | Read_only -> true
  | Execute_only -> false

let writable = function
  | Read_write_execute | Read_write_only -> true
  | Read_execute_only | Read_only | Execute_only -> false

let executable = function
  | Read_write_execute | Read_execute_only | Execute_only -> true
  | Read_write_only | Read_only -> false

let allows t = function
  | Read -> readable t
  | Write -> writable t
  | Execute -> executable t

let all =
  [ Read_write_execute; Read_write_only; Read_execute_only; Read_only; Execute_only ]

let equal (a : t) (b : t) = a = b

let to_string = function
  | Read_write_execute -> "rwx"
  | Read_write_only -> "rw-"
  | Read_execute_only -> "r-x"
  | Read_only -> "r--"
  | Execute_only -> "--x"

let pp ppf t = Format.pp_print_string ppf (to_string t)
