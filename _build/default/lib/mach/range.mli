(** Half-open address ranges [\[start, start+size)].

    The common currency between the kernel's logical view of process memory
    (AppBreaks) and the hardware models. A range may be empty ([size = 0]);
    empty ranges overlap nothing and contain nothing. *)

type t = private { start : Word32.t; size : int }

val make : start:Word32.t -> size:int -> t
(** Requires [start] valid, [size >= 0], and [start + size <= 2{^32}]. *)

val make_checked : start:Word32.t -> size:int -> t option
(** [None] when the range would wrap past the top of the address space. *)

val of_bounds : lo:Word32.t -> hi:Word32.t -> t
(** Range covering [\[lo, hi)]. Requires [lo <= hi]. *)

val empty : t
val is_empty : t -> bool
val start : t -> Word32.t
val size : t -> int

val end_ : t -> Word32.t
(** One past the last covered address; equals [start] for empty ranges. *)

val contains : t -> Word32.t -> bool
(** Membership of a single byte address. *)

val contains_range : t -> t -> bool
(** [contains_range outer inner]: every byte of [inner] lies in [outer].
    Vacuously true when [inner] is empty. *)

val overlaps : t -> t -> bool
(** Non-empty intersection. *)

val overlaps_bounds : t -> lo:Word32.t -> hi:Word32.t -> bool
(** The paper's [RegionDescriptor::overlaps(r, lo, hi)] shape: does the range
    intersect the {e inclusive} bounds [\[lo, hi\]]? *)

val intersection : t -> t -> t option
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
