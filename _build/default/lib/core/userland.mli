(** The userland execution model.

    Processes on real Tock are arbitrary machine code; all the kernel ever
    observes of them is a stream of memory accesses and syscalls. Our
    untrusted applications are stateful programs emitting {!action}s —
    every [Load]/[Store] goes through the checked memory (and hence the
    live MPU model) with the CPU unprivileged, and every {!call} enters the
    kernel through Tock's 2.x syscall classes (yield / subscribe / command
    / allow / memop). *)

type call =
  | Yield
  | Subscribe of { driver : int; upcall_id : int }
  | Command of { driver : int; cmd : int; arg1 : int; arg2 : int }
  | Allow_rw of { driver : int; addr : Word32.t; len : int }
  | Allow_ro of { driver : int; addr : Word32.t; len : int }
  | Memop of { op : int; arg : Word32.t }

(** {1 Memop operation numbers} (the Tock subset we model) *)

val memop_brk : int
val memop_sbrk : int
val memop_memory_start : int
val memop_memory_end : int
val memop_flash_start : int
val memop_flash_end : int
val memop_grant_begins : int

type action =
  | Load8 of Word32.t  (** result: the byte *)
  | Store8 of Word32.t * int  (** result: 0 *)
  | Load32 of Word32.t
  | Store32 of Word32.t * Word32.t
  | Compute of int  (** burn this many cycles; result: 0 *)
  | Print of string  (** console output (modeled directly); result: 0 *)
  | Syscall of call  (** result: the syscall return value *)
  | Exit of int

type program = Word32.t -> action
(** A resumable closure: each invocation receives the result of the
    previous action and yields the next one — sequential app code with no
    explicit program counter. Build these with {!Apps.App_dsl}. *)

(** {1 Return-value conventions} *)

val success : Word32.t
(** 0. *)

val failure : Word32.t
(** [0xFFFF_FFFF]. *)

val retval_err : Kerror.t -> Word32.t

val pp_call : Format.formatter -> call -> unit
val pp_action : Format.formatter -> action -> unit
