(** The kernel's logical view of one process's memory (Figure 6, §4.2).

    Stores the pointers that describe a process memory block: its start and
    size, the {e app break} (one past the process-accessible RAM) and the
    {e kernel break} (the lowest address of the kernel-owned grant region),
    plus the process's flash placement (the §4.3 flash invariants quantify
    over it).

    The type is abstract and immutable, and every constructor and update
    re-checks the Figure 6 invariants:

    - [kernel_break <= memory_start + memory_size] — grants stay inside the
      block;
    - [memory_start <= app_break] — the accessible RAM is well formed;
    - [app_break < kernel_break] — accessible RAM and grant memory never
      overlap (the §3.4 bug, outlawed structurally).

    There is no way to hold an [App_breaks.t] that violates the layout
    policy — the "by construction" of the paper's title claim. *)

type t

val create :
  memory_start:Word32.t ->
  memory_size:int ->
  app_break:Word32.t ->
  kernel_break:Word32.t ->
  flash_start:Word32.t ->
  flash_size:int ->
  t
(** Build a view, checking the invariants (raises
    {!Verify.Violation.Violation} when checking is enabled and they fail). *)

val memory_start : t -> Word32.t
val memory_size : t -> int

val app_break : t -> Word32.t
(** One past the last process-accessible RAM byte. *)

val kernel_break : t -> Word32.t
(** Lowest address of kernel-owned grant memory; grants grow it downwards. *)

val flash_start : t -> Word32.t
val flash_size : t -> int

val block_end : t -> Word32.t
(** [memory_start + memory_size]. *)

val with_app_break : t -> Word32.t -> t
(** Functional update (the brk path); re-checks the invariants. *)

val with_kernel_break : t -> Word32.t -> t
(** Functional update (the grant-allocation path); re-checks. *)

val ram_range : t -> Range.t
(** Process-accessible RAM: [\[memory_start, app_break)]. *)

val grant_range : t -> Range.t
(** Kernel-owned grant memory: [\[kernel_break, block_end)]. *)

val flash_range : t -> Range.t
val block_range : t -> Range.t

val grant_free : t -> int
(** Bytes the grant region can still grow down into while preserving the
    strict [app_break < kernel_break] invariant. *)

val pp : Format.formatter -> t -> unit
