(** A single ARM Cortex-M MPU region, represented — exactly as in §4.4 — by
    the pair of register values the driver will write to hardware. Every
    logical property ([start], [size], [overlaps], …) is {e derived from the
    register bits}, so the kernel's view and the bits that reach hardware
    cannot diverge: this is how TickTock kills the disagreement problem at
    the driver level.

    TickTock only ever creates regions whose enabled subregions form a
    prefix of the region block; the constructor enforces this, and the
    accessible range derivations rely on it. *)

module Hw = Mpu_hw.Armv7m_mpu

type t = { id : int; rbar : Word32.t; rasr : Word32.t }

let invariant_site = "CortexMRegion.invariant"

(* A region is logically "set" when its enable bit is set and at least one
   subregion is enabled. *)
let is_set t = Hw.decode_rasr_enable t.rasr && Hw.decode_rasr_srd t.rasr <> 0xff

let block_start t = Hw.decode_rbar_addr t.rbar
let block_size t = Hw.decode_rasr_size t.rasr

let enabled_prefix t =
  (* Number of leading enabled subregions; the constructor guarantees the
     enabled set is a prefix. *)
  let srd = Hw.decode_rasr_srd t.rasr in
  let rec count i = if i < 8 && not (Word32.bit srd i) then count (i + 1) else i in
  count 0

let check_invariant t =
  if Hw.decode_rasr_enable t.rasr then begin
    let size = block_size t in
    Verify.Violation.invariantf invariant_site
      (Math32.is_pow2 size && size >= Hw.min_region_size)
      "size=%d" size;
    Verify.Violation.invariantf invariant_site
      (Math32.is_aligned (block_start t) ~align:size)
      "start=%s size=%d" (Word32.to_hex (block_start t)) size;
    let srd = Hw.decode_rasr_srd t.rasr in
    Verify.Violation.invariantf invariant_site
      (srd = 0 || size >= Hw.min_subregion_region_size)
      "srd=%02x size=%d" srd size;
    (* Enabled subregions must form a prefix: srd = 0xff << n (truncated). *)
    let n = enabled_prefix t in
    Verify.Violation.invariantf invariant_site
      (srd = 0xff lsl n land 0xff)
      "srd=%02x not a prefix mask" srd
  end

let empty ~region_id =
  { id = region_id; rbar = Hw.encode_rbar ~addr:0 ~region:region_id; rasr = 0 }

let create ~region_id ~start ~size ~enabled_subregions ~perms =
  let srd =
    match enabled_subregions with
    | None -> 0
    | Some n ->
      Verify.Violation.requiref "CortexMRegion.create: subregion count" (n >= 1 && n <= 8)
        "n=%d" n;
      0xff lsl n land 0xff
  in
  let t =
    {
      id = region_id;
      rbar = Hw.encode_rbar ~addr:start ~region:region_id;
      rasr = Hw.encode_rasr ~enable:true ~size ~srd ~perms;
    }
  in
  check_invariant t;
  t

let region_id t = t.id
let rbar t = t.rbar
let rasr t = t.rasr

let start t = if is_set t then Some (block_start t) else None

let size t =
  if not (is_set t) then None
  else begin
    let bsize = block_size t in
    if bsize < Hw.min_subregion_region_size then Some bsize
    else Some (enabled_prefix t * (bsize / 8))
  end

let accessible_range t =
  match (start t, size t) with
  | Some s, Some n -> Some (Range.make ~start:s ~size:n)
  | Some _, None | None, Some _ | None, None -> None

let overlaps t ~lo ~hi =
  match accessible_range t with
  | None -> false
  | Some r -> Range.overlaps_bounds r ~lo ~hi

let matches_perms t p =
  is_set t
  && match Hw.decode_rasr_perms t.rasr with Some q -> Perms.equal p q | None -> false

let can_access t ~start:s ~end_ ~perms =
  (* The "final" associated refinement of §4.1, defined from the others. *)
  is_set t
  && start t = Some s
  && (match size t with Some n -> s + n = end_ | None -> false)
  && matches_perms t perms

let equal a b = a.id = b.id && a.rbar = b.rbar && a.rasr = b.rasr

let pp ppf t =
  if is_set t then
    Format.fprintf ppf "region %d: block=%s+%d accessible=%s+%d srd=%02x" t.id
      (Word32.to_hex (block_start t))
      (block_size t)
      (match start t with Some s -> Word32.to_hex s | None -> "-")
      (Option.value (size t) ~default:0)
      (Hw.decode_rasr_srd t.rasr)
  else Format.fprintf ppf "region %d: unset" t.id
