lib/core/tock_cortexm_mpu.ml: Array Cortexm_region Cycles Math32 Mpu_hw Printf Word32
