lib/core/userland.mli: Format Kerror Word32
