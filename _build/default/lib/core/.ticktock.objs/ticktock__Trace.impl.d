lib/core/trace.ml: Array Format List Userland Word32
