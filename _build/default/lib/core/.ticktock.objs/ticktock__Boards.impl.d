lib/core/boards.ml: Armv8m_mpu_drv Cortexm_mpu Epmp Fluxarm Instance Kernel Machine Mm Mpu_hw Pmp_mpu Tock_cortexm_mpu Tock_pmp_mpu
