lib/core/kerror.ml: Format
