lib/core/epmp.ml: Layout Mpu_hw Perms Range Verify
