lib/core/kernel.mli: Capsule_intf Fluxarm Hooks Instance Kerror Memory Mm Mpu_hw Process Trace Userland Word32
