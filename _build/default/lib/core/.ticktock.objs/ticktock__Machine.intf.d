lib/core/machine.mli: Fluxarm Memory Mpu_hw
