lib/core/tock_pmp_mpu.ml: Cycles List Math32 Mpu_hw Pmp_region Range
