lib/core/app_breaks.mli: Format Range Word32
