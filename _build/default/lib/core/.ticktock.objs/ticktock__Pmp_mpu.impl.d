lib/core/pmp_mpu.ml: Array Cycles Math32 Mpu_hw Option Pmp_region Verify
