lib/core/tock_allocator.ml: App_breaks Cycles Kerror Math32 Perms Range Region_intf Tock_cortexm_mpu Tock_pmp_mpu Word32
