lib/core/armv8m_region.ml: Format Math32 Mpu_hw Perms Range Verify Word32
