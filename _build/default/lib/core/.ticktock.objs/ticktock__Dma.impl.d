lib/core/dma.ml: Memory Range Verify Word32
