lib/core/region_intf.ml: Format Perms Range Word32
