lib/core/pmp_region.ml: Format Math32 Mpu_hw Perms Range Verify Word32
