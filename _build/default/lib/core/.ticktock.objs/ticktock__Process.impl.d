lib/core/process.ml: Buffer Format Loader Printf Queue Range Userland Word32
