lib/core/userland.ml: Format Kerror Word32
