lib/core/loader.mli: Kerror Memory Word32
