lib/core/epmp.mli: Mpu_hw
