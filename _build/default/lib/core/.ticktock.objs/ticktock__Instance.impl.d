lib/core/instance.ml: Hooks Kerror Userland Word32
