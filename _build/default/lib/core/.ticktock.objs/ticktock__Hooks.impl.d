lib/core/hooks.ml: Cycles Format Hashtbl List
