lib/core/cortexm_region.ml: Format Math32 Mpu_hw Option Perms Range Verify Word32
