lib/core/app_breaks.ml: Format Range Verify Word32
