lib/core/hooks.mli: Format
