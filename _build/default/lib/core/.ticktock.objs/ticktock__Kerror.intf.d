lib/core/kerror.mli: Format
