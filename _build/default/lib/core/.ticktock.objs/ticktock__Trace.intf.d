lib/core/trace.mli: Format Userland Word32
