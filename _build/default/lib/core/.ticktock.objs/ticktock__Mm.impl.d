lib/core/mm.ml: App_mem_alloc Cycles Kerror Perms Range Region_intf Tock_allocator Word32
