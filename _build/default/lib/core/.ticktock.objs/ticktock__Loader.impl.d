lib/core/loader.ml: Char Cycles Kerror Layout Math32 Memory Range String Word32
