lib/core/cortexm_mpu.ml: Array Cortexm_region Cycles Math32 Mpu_hw Option Verify Word32
