lib/core/dma.mli: Memory Range Word32
