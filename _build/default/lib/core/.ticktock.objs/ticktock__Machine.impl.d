lib/core/machine.ml: Fluxarm Memory Mpu_hw
