lib/core/app_mem_alloc.ml: App_breaks Array Cycles Kerror Math32 Option Perms Range Region_intf Result Verify Word32
