lib/core/armv8m_mpu_drv.ml: Armv8m_region Array Cycles Math32 Mpu_hw Option Verify
