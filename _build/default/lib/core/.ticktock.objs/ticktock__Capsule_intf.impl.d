lib/core/capsule_intf.ml: Kerror Range Word32
