(** ePMP kernel self-protection for OpenTitan-class chips (Smepmp).

    Tock on EarlGrey seals the kernel's own memory with locked PMP entries
    before any process runs: under machine-mode lockdown (MML) a locked
    entry binds machine mode and is invisible to user mode, so

    - kernel {e code} becomes immutable (read-execute, no write — even the
      kernel itself cannot overwrite its text);
    - kernel data and process RAM are machine-readable/writable but never
      machine-executable (no code injection into RAM);
    - with machine-mode whole-protection (MMWP), any M-mode access outside
      the locked entries faults.

    The locked entries live at the {e top} indices so user-mode process
    regions (low indices) keep their priority for process addresses. Locked
    entries can never be rewritten until reset — which is the point. *)

module Hw = Mpu_hw.Pmp

(* Top-of-bank indices on a 16-entry ePMP. *)
let kernel_flash_entry = 13
let app_flash_entry = 14
let sram_entry = 15

let protect_kernel (pmp : Hw.t) =
  let chip = Hw.chip pmp in
  if not chip.Hw.epmp then invalid_arg "Epmp.protect_kernel: chip has no ePMP";
  Verify.Violation.require "epmp: enough entries" (chip.Hw.entry_count >= 16);
  let napot ~index ~start ~size ~r ~w ~x =
    Hw.set_entry pmp ~index
      ~cfg:(Hw.encode_cfg ~r ~w ~x ~mode:Hw.Napot ~lock:true)
      ~addr:(Hw.napot_addr ~start ~size)
  in
  (* Kernel text: RX, immutable. *)
  napot ~index:kernel_flash_entry ~start:(Range.start Layout.kernel_flash)
    ~size:(Range.size Layout.kernel_flash) ~r:true ~w:false ~x:true;
  (* Whole flash bank: the loader writes app images here (kernel-text
     addresses hit the higher-priority RX entry above). Never executable
     from M-mode. *)
  napot ~index:app_flash_entry ~start:Layout.flash_base ~size:Layout.flash_size ~r:true ~w:true
    ~x:false;
  (* All SRAM: machine read/write, never machine-executable. *)
  napot ~index:sram_entry ~start:Layout.sram_base ~size:Layout.sram_size ~r:true ~w:true
    ~x:false;
  Hw.set_mml pmp true;
  Hw.set_mmwp pmp true

(** The §4.3-style check for the kernel itself: with the lockdown in place,
    machine mode can execute only kernel text, cannot write it, cannot
    execute RAM, and cannot touch unmapped space. *)
let kernel_sealed (pmp : Hw.t) =
  let m access a =
    match Hw.check_access pmp ~machine_mode:true a access with Ok () -> true | Error _ -> false
  in
  let kf = Range.start Layout.kernel_flash + 64 in
  let sram = Range.start Layout.kernel_sram + 64 in
  m Perms.Execute kf
  && m Perms.Read kf
  && (not (m Perms.Write kf))
  && m Perms.Write sram
  && (not (m Perms.Execute sram))
  && not (m Perms.Read 0xE000_0000)
