(** A single RISC-V PMP-backed logical region.

    Each logical region is a TOR (top-of-range) entry pair: hardware entry
    [2i] holds the lower bound (mode OFF) and entry [2i+1] the upper bound
    with the access bits — Tock's layout for process regions on PMP. As in
    {!Cortexm_region}, every logical property is derived from the CSR
    encodings ([pmpaddr] values are byte addresses shifted right by two), so
    view and hardware cannot disagree.

    PMP has no power-of-two or alignment constraints beyond 4-byte
    granularity, which is why [start]/[size] are exact (§3.5). *)

module Hw = Mpu_hw.Pmp

type t = { id : int; cfg : int; pmpaddr_lo : Word32.t; pmpaddr_hi : Word32.t }

let empty ~region_id = { id = region_id; cfg = 0; pmpaddr_lo = 0; pmpaddr_hi = 0 }

let create ~region_id ~start ~size ~perms =
  Verify.Violation.requiref "PmpRegion.create: granularity"
    (Math32.is_aligned start ~align:4 && size > 0 && size mod 4 = 0)
    "start=%s size=%d" (Word32.to_hex start) size;
  {
    id = region_id;
    cfg = Hw.cfg_of_perms perms ~mode:Hw.Tor;
    pmpaddr_lo = start lsr 2;
    pmpaddr_hi = (start + size) lsr 2;
  }

let region_id t = t.id
let cfg t = t.cfg
let pmpaddr_lo t = t.pmpaddr_lo
let pmpaddr_hi t = t.pmpaddr_hi
let is_set t = Hw.decode_cfg_mode t.cfg <> Hw.Off && t.pmpaddr_hi > t.pmpaddr_lo
let start t = if is_set t then Some (t.pmpaddr_lo lsl 2 land Word32.mask) else None
let size t = if is_set t then Some ((t.pmpaddr_hi - t.pmpaddr_lo) lsl 2) else None

let accessible_range t =
  match (start t, size t) with
  | Some s, Some n -> Some (Range.make ~start:s ~size:n)
  | Some _, None | None, Some _ | None, None -> None

let overlaps t ~lo ~hi =
  match accessible_range t with
  | None -> false
  | Some r -> Range.overlaps_bounds r ~lo ~hi

let matches_perms t p =
  is_set t
  && Hw.decode_cfg_r t.cfg = Perms.readable p
  && Hw.decode_cfg_w t.cfg = Perms.writable p
  && Hw.decode_cfg_x t.cfg = Perms.executable p

let can_access t ~start:s ~end_ ~perms =
  is_set t
  && start t = Some s
  && (match size t with Some n -> s + n = end_ | None -> false)
  && matches_perms t perms

let equal a b =
  a.id = b.id && a.cfg = b.cfg && a.pmpaddr_lo = b.pmpaddr_lo && a.pmpaddr_hi = b.pmpaddr_hi

let pp ppf t =
  if is_set t then
    Format.fprintf ppf "pmp region %d: [%s, %s) cfg=%02x" t.id
      (Word32.to_hex (t.pmpaddr_lo lsl 2))
      (Word32.to_hex (t.pmpaddr_hi lsl 2))
      t.cfg
  else Format.fprintf ppf "pmp region %d: unset" t.id
