(** Board wiring: memory, MPU hardware, timers and CPU, connected.

    On creation the MPU model is installed as the memory's access checker,
    closing the loop the real bus closes in silicon: every checked access
    made by (emulated) unprivileged code consults the live MPU
    configuration and the CPU's current privilege. *)

type arm = {
  arm_mem : Memory.t;
  arm_cpu : Fluxarm.Cpu.t;
  arm_mpu : Mpu_hw.Armv7m_mpu.t;
  arm_systick : Mpu_hw.Systick.t;
  arm_nvic : Mpu_hw.Nvic.t;
  arm_scb : Mpu_hw.Scb.t;  (** fault-status registers, latched by the bus *)
}

val create_arm : unit -> arm
(** An ARM Cortex-M board (NRF52840-style memory map). *)

type arm_v8 = {
  v8_mem : Memory.t;
  v8_cpu : Fluxarm.Cpu.t;
  v8_mpu : Mpu_hw.Armv8m_mpu.t;
  v8_systick : Mpu_hw.Systick.t;
}

val create_arm_v8 : unit -> arm_v8
(** An ARMv8-M (Cortex-M33-style) board: same CPU core model, PMSAv8 MPU. *)

type riscv = {
  rv_mem : Memory.t;
  rv_pmp : Mpu_hw.Pmp.t;
  rv_machine_mode : bool ref;  (** [true] while the kernel runs *)
}

val create_riscv : Mpu_hw.Pmp.chip -> riscv
(** A RISC-V board on the given PMP chip; the privilege flag stands in for
    the M/U mode bit the kernel toggles on context switch. *)
