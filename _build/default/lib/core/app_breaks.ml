(** The kernel's logical view of one process's memory (Figure 6, §4.2).

    [AppBreaks] stores the pointers describing the process memory block:
    its start and size, the app break (one past the process-accessible RAM),
    and the kernel break (the lowest address of the kernel-owned grant
    region). The flash placement rides along because the §4.3 invariants
    ([can_access_flash]) quantify over it.

    Invariants, checked at every construction and functional update:
    - [kernel_break <= memory_start + memory_size] — the grant region stays
      inside the block;
    - [memory_start <= app_break] — the accessible RAM is well-formed;
    - [app_break < kernel_break] — accessible RAM and grant memory never
      overlap (the §3.4 bug, outlawed structurally).

    The type is abstract and immutable: there is no way to hold an
    [App_breaks.t] that violates the layout policy, which is the "by
    construction" in the paper's title claim. *)

type t = {
  memory_start : Word32.t;
  memory_size : int;
  app_break : Word32.t;
  kernel_break : Word32.t;
  flash_start : Word32.t;
  flash_size : int;
}

let site = "AppBreaks.invariant"

let check t =
  Verify.Violation.invariantf site
    (t.kernel_break <= t.memory_start + t.memory_size)
    "kernel_break=%s block_end=%s" (Word32.to_hex t.kernel_break)
    (Word32.to_hex (t.memory_start + t.memory_size));
  Verify.Violation.invariantf site
    (t.memory_start <= t.app_break)
    "memory_start=%s app_break=%s" (Word32.to_hex t.memory_start) (Word32.to_hex t.app_break);
  Verify.Violation.invariantf site
    (t.app_break < t.kernel_break)
    "app_break=%s kernel_break=%s" (Word32.to_hex t.app_break) (Word32.to_hex t.kernel_break);
  Verify.Violation.invariantf site
    (t.memory_size > 0 && t.flash_size > 0)
    "memory_size=%d flash_size=%d" t.memory_size t.flash_size;
  t

let create ~memory_start ~memory_size ~app_break ~kernel_break ~flash_start ~flash_size =
  check { memory_start; memory_size; app_break; kernel_break; flash_start; flash_size }

let memory_start t = t.memory_start
let memory_size t = t.memory_size
let app_break t = t.app_break
let kernel_break t = t.kernel_break
let flash_start t = t.flash_start
let flash_size t = t.flash_size
let block_end t = t.memory_start + t.memory_size

let with_app_break t app_break = check { t with app_break }
let with_kernel_break t kernel_break = check { t with kernel_break }

let ram_range t = Range.of_bounds ~lo:t.memory_start ~hi:t.app_break
let grant_range t = Range.of_bounds ~lo:t.kernel_break ~hi:(block_end t)
let flash_range t = Range.make ~start:t.flash_start ~size:t.flash_size
let block_range t = Range.make ~start:t.memory_start ~size:t.memory_size

(** Bytes the grant region can still grow down into before hitting the app
    break (keeping the strict [app_break < kernel_break] invariant). *)
let grant_free t = t.kernel_break - t.app_break - 1

let pp ppf t =
  Format.fprintf ppf "breaks{block=%a app_break=%s kernel_break=%s flash=%a}" Range.pp
    (block_range t) (Word32.to_hex t.app_break) (Word32.to_hex t.kernel_break) Range.pp
    (flash_range t)
