(** The verification conditions (the paper's proof, §4).

    Three property suites mirror the three rows of Figure 12:

    - {!Monolithic}: contracts over Tock's original monolithic driver —
      most importantly the §3.4 "explication" postcondition that the
      hardware-enforced end of app memory never exceeds the kernel break.
      Checking the upstream driver {e finds the bug} (a counterexample);
      checking the patched driver verifies.
    - {!Granular}: contracts over TickTock's granular drivers and the
      generic allocator — the refined method contracts of §4.1, the
      AppBreaks invariants of §4.2, the logical–MPU correspondence of
      §4.3/§4.4 (register encodings versus the hardware model's access
      semantics), and the arithmetic lemmas of §5.
    - {!Interrupts}: the FluxArm proof of §4.5 — instruction contracts and
      the full [control_flow_kernel_to_kernel] round trip, including the
      dual suite showing the missed-mode-switch bug is caught.

    Every suite is scale-parameterized: tests run a thin slice; the
    Figure 12 bench runs the full domains. *)

module V = Verify
module D = Verify.Domain

let scaled scale n = max 1 (int_of_float (float_of_int n *. scale))

(* Shared input domains: base addresses with alignment-hostile offsets
   (bugs live at alignment boundaries), and size ladders. *)
let starts scale =
  let offsets =
    [ 0; 32; 512; 1024; 1056; 2048; 4096; 4128; 6144; 0x613 * 4; 8192; 12288 ]
  in
  let keep = scaled scale (List.length offsets) in
  let offsets = List.filteri (fun i _ -> i < keep) offsets in
  D.of_list (List.map (fun o -> Range.start Layout.app_sram + o) offsets)

let size_ladder scale lo hi step =
  let rec build v = if v > hi then [] else v :: build (v + step) in
  let all = build lo in
  let keep = max 1 (List.length all / scaled scale (List.length all)) in
  D.of_list (List.filteri (fun i _ -> i mod keep = 0) all)

(* ------------------------------------------------------------------ *)

module Monolithic = struct
  let signed d = if d land 0x8000_0000 <> 0 then d - (1 lsl 32) else d

  (** The §3.4 postcondition, stated against the explication accessor: the
      hardware-enforced end of process-accessible RAM must not exceed the
      initial kernel memory break. *)
  let allocate_postcondition (type cfg)
      (module M : Region_intf.MONOLITHIC with type config = cfg)
      (unalloc_start, min_size, app_size, kernel_size) =
    let config = M.new_config () in
    match
      M.allocate_app_mem_region ~config ~unalloc_start ~unalloc_size:0x20000 ~min_size
        ~app_size ~kernel_size ~perms:Perms.Read_write_only
    with
    | None -> Ok ()
    | Some (start, size) ->
      let kernel_mem_break = start + size - kernel_size in
      (match M.enabled_subregions_end config with
      | None -> Error "no RAM regions configured"
      | Some enforced_end ->
        if enforced_end <= kernel_mem_break then Ok ()
        else
          Error
            (Printf.sprintf
               "enabled subregions end %s exceeds kernel break %s (start=%s size=%d)"
               (Word32.to_hex enforced_end) (Word32.to_hex kernel_mem_break)
               (Word32.to_hex start) size))

  let allocate_domain scale =
    (* At full scale this is a dense sweep of the entangled parameter space
       — the reason >90% of the paper's original verification time went to
       this one function (§6.3). *)
    D.quad (starts scale)
      (size_ladder scale 512 8192 (if scale >= 1.0 then 64 else 512))
      (size_ladder scale 256 7936 (if scale >= 1.0 then 32 else 256))
      (D.of_list [ 128; 512; 1024; 2048 ])

  (* brk-path safety: updating to any 32-bit break must never panic the
     kernel; it may only succeed or return an error. *)
  let update_no_panic (type cfg) (module M : Region_intf.MONOLITHIC with type config = cfg)
      (unalloc_start, new_break_delta) =
    let config = M.new_config () in
    match
      M.allocate_app_mem_region ~config ~unalloc_start ~unalloc_size:0x20000 ~min_size:4096
        ~app_size:4096 ~kernel_size:1024 ~perms:Perms.Read_write_only
    with
    | None -> Ok ()
    | Some (start, size) -> (
      let new_app_break = Word32.add start new_break_delta in
      match
        M.update_app_mem_region ~config ~new_app_break ~kernel_break:(start + size)
          ~perms:Perms.Read_write_only
      with
      | Ok () | Error () -> Ok ()
      | exception Tock_cortexm_mpu.Kernel_panic msg ->
        Error (Printf.sprintf "kernel panic on brk(start%+d): %s" (signed new_break_delta) msg))

  let update_domain scale =
    D.pair (starts scale)
      (D.union
         [
           D.of_list (List.map Word32.of_int [ -64; -32; -4; -1 ]);
           size_ladder scale 0 8192 (if scale >= 1.0 then 64 else 512);
         ])

  let properties (type cfg) (module M : Region_intf.MONOLITHIC with type config = cfg) ~scale =
    [
      V.Checker.forall ~name:(M.arch_name ^ ".allocate_app_mem_region: no grant overlap")
        ~show:(fun (a, b, c, d) -> Printf.sprintf "(start=%s min=%d app=%d kernel=%d)" (Word32.to_hex a) b c d)
        (allocate_domain scale)
        (allocate_postcondition (module M));
      V.Checker.forall ~name:(M.arch_name ^ ".update_app_mem_region: no panic")
        ~show:(fun (a, d) -> Printf.sprintf "(start=%s delta=%d)" (Word32.to_hex a) (signed d))
        (update_domain scale)
        (update_no_panic (module M));
    ]

  let upstream ~scale = properties (module Tock_cortexm_mpu.Upstream) ~scale
  let patched ~scale = properties (module Tock_cortexm_mpu.Patched) ~scale
end

(* ------------------------------------------------------------------ *)

module Granular = struct
  module A = App_mem_alloc.Make (Cortexm_mpu)

  (* §4.1 refined contracts: the driver methods carry their postconditions
     as runtime contracts, so "verify" = drive them across the domain and
     confirm no contract fires. *)
  let new_regions_ok (start, unalloc_size, total) =
    match
      Cortexm_mpu.new_regions ~max_region_id:1 ~unalloc_start:start ~unalloc_size
        ~total_size:total ~perms:Perms.Read_write_only
    with
    | Some _ | None -> Ok ()

  let update_regions_ok (start, total) =
    (* region_start must carry a creation-time alignment; model it. *)
    let aligned = Math32.align_up start ~align:4096 in
    match
      Cortexm_mpu.update_regions ~max_region_id:1 ~region_start:aligned
        ~available_size:16384 ~total_size:total ~perms:Perms.Read_write_only
    with
    | Some _ | None -> Ok ()

  (* §4.4 correspondence: the descriptor's derived range must equal what
     the hardware model enforces once the registers are written. *)
  let region_hw_correspondence (size_exp, enabled) =
    let size = 1 lsl size_exp in
    let start = Range.start Layout.app_sram + (3 * size) in
    if not (Math32.is_aligned start ~align:size) then Ok ()
    else begin
      let enabled_subregions =
        if size >= Mpu_hw.Armv7m_mpu.min_subregion_region_size then Some enabled else None
      in
      let r =
        Cortexm_region.create ~region_id:0 ~start ~size ~enabled_subregions
          ~perms:Perms.Read_write_only
      in
      let hw = Mpu_hw.Armv7m_mpu.create () in
      Mpu_hw.Armv7m_mpu.write_region hw ~index:0 ~rbar:(Cortexm_region.rbar r)
        ~rasr:(Cortexm_region.rasr r);
      Mpu_hw.Armv7m_mpu.set_enabled hw true;
      let enforced = Mpu_hw.Armv7m_mpu.accessible_ranges hw Perms.Read in
      let logical = Option.to_list (Cortexm_region.accessible_range r) in
      if List.length enforced = List.length logical
         && List.for_all2 Range.equal enforced logical
      then Ok ()
      else
        Error
          (Format.asprintf "hw enforces %a but descriptor says %a"
             (Format.pp_print_list Range.pp) enforced (Format.pp_print_list Range.pp) logical)
    end

  let pmp_hw_correspondence_on chip configure (start_off, size) =
    let start = Range.start Layout.app_sram + (start_off * 4) in
    let r = Pmp_region.create ~region_id:0 ~start ~size:(size * 4) ~perms:Perms.Read_write_only in
    let hw = Mpu_hw.Pmp.create chip in
    configure hw [| r |];
    let enforced = Mpu_hw.Pmp.accessible_ranges hw Perms.Read in
    let logical = Option.to_list (Pmp_region.accessible_range r) in
    if List.length enforced = List.length logical && List.for_all2 Range.equal enforced logical
    then Ok ()
    else Error "pmp hardware/descriptor mismatch"

  let pmp_hw_correspondence =
    pmp_hw_correspondence_on Mpu_hw.Pmp.sifive_e310 Pmp_mpu.E310.configure_mpu

  (* §4.2/§4.3: a full allocate → brk* → grant* lifecycle keeps every
     invariant (they are checked inside on each step). *)
  let allocator_lifecycle (min_size, app_size, kernel_size, brk_delta) =
    match
      A.allocate_app_memory ~unalloc_start:(Range.start Layout.app_sram)
        ~unalloc_size:0x20000 ~min_size ~app_size ~kernel_size
        ~flash_start:(Range.start Layout.app_flash) ~flash_size:1024
    with
    | Error _ -> Ok ()
    | Ok alloc -> (
      let target = Word32.add (A.app_break alloc) brk_delta in
      (match A.brk alloc ~new_app_break:target with Ok _ | Error _ -> ());
      (match A.allocate_grant alloc ~size:64 ~align:8 with Ok _ | Error _ -> ());
      match A.sbrk alloc ~delta:(-64) with Ok _ | Error _ -> Ok ())

  let app_breaks_ops (mem_size, app_off, kb_off) =
    let start = Range.start Layout.app_sram in
    match
      App_breaks.create ~memory_start:start ~memory_size:mem_size ~app_break:(start + app_off)
        ~kernel_break:(start + kb_off) ~flash_start:(Range.start Layout.app_flash)
        ~flash_size:512
    with
    | breaks ->
      (* any successfully created value satisfies the Figure 6 invariants *)
      if
        App_breaks.kernel_break breaks <= App_breaks.block_end breaks
        && App_breaks.memory_start breaks <= App_breaks.app_break breaks
        && App_breaks.app_break breaks < App_breaks.kernel_break breaks
      then Ok ()
      else Error "constructed AppBreaks violates Figure 6"
    | exception V.Violation.Violation _ ->
      (* refused at construction: exactly the level of protection claimed *)
      Ok ()

  module PA = App_mem_alloc.Make (Pmp_mpu.E310)
  module V8A = App_mem_alloc.Make (Armv8m_mpu_drv)

  (* §4.4 correspondence on the PMSAv8 base/limit encoding. *)
  let v8_hw_correspondence (start_off, size_units) =
    let start = Range.start Layout.app_sram + (start_off * 32) in
    let r =
      Armv8m_region.create ~region_id:0 ~start ~size:(size_units * 32)
        ~perms:Perms.Read_write_only
    in
    let hw = Mpu_hw.Armv8m_mpu.create () in
    Armv8m_mpu_drv.configure_mpu hw [| r |];
    Mpu_hw.Armv8m_mpu.set_enabled hw true;
    let enforced = Mpu_hw.Armv8m_mpu.accessible_ranges hw Perms.Read in
    let logical = Option.to_list (Armv8m_region.accessible_range r) in
    if List.length enforced = List.length logical && List.for_all2 Range.equal enforced logical
    then Ok ()
    else Error "v8 hardware/descriptor mismatch"

  let v8_allocator_lifecycle (min_size, app_size, kernel_size, brk_delta) =
    match
      V8A.allocate_app_memory ~unalloc_start:(Range.start Layout.app_sram)
        ~unalloc_size:0x20000 ~min_size ~app_size ~kernel_size
        ~flash_start:(Range.start Layout.app_flash) ~flash_size:1024
    with
    | Error _ -> Ok ()
    | Ok alloc -> (
      let target = Word32.add (V8A.app_break alloc) brk_delta in
      (match V8A.brk alloc ~new_app_break:target with Ok _ | Error _ -> ());
      match V8A.allocate_grant alloc ~size:64 ~align:8 with Ok _ | Error _ -> Ok ())

  (* The same lifecycle obligation on the PMP instantiation of the generic
     allocator — the reuse claim of §3.5 made checkable. *)
  let pmp_allocator_lifecycle (min_size, app_size, kernel_size, brk_delta) =
    match
      PA.allocate_app_memory ~unalloc_start:(Range.start Layout.app_sram)
        ~unalloc_size:0x20000 ~min_size ~app_size ~kernel_size
        ~flash_start:(Range.start Layout.app_flash) ~flash_size:1024
    with
    | Error _ -> Ok ()
    | Ok alloc -> (
      let target = Word32.add (PA.app_break alloc) brk_delta in
      (match PA.brk alloc ~new_app_break:target with Ok _ | Error _ -> ());
      (match PA.allocate_grant alloc ~size:48 ~align:8 with Ok _ | Error _ -> ());
      match PA.sbrk alloc ~delta:(-32) with Ok _ | Error _ -> Ok ())

  (* §4.6: the DmaCell discipline. A well-typed place/start/complete cycle
     never violates; a driver that touches the buffer mid-flight always
     does. *)
  let dma_cell_roundtrip seed =
    let mem = Memory.create () in
    let engine = Dma.Engine.create mem in
    let buf =
      Dma.Buffer.create mem
        ~addr:(Range.start Layout.app_sram + (seed mod 64 * 64))
        ~len:(16 + (seed mod 48))
    in
    let cell = Dma.Cell.create () in
    match Dma.Cell.place cell buf with
    | None -> Error "place refused on an empty cell"
    | Some wrapper ->
      Dma.Engine.start engine wrapper;
      Dma.Engine.run_to_completion engine;
      (match Dma.Cell.completed cell engine with
      | Some b ->
        Dma.Buffer.write b 0 0xAA;
        if Dma.Buffer.read b 0 = 0xAA then Ok () else Error "buffer not returned intact"
      | None -> Error "completed lost the buffer")

  let dma_aliasing_always_caught seed =
    let mem = Memory.create () in
    let buf =
      Dma.Buffer.create mem ~addr:(Range.start Layout.app_sram) ~len:(8 + (seed mod 32))
    in
    let cell = Dma.Cell.create () in
    ignore (Dma.Cell.place cell buf);
    Dma.Buffer.write buf (seed mod 8) 0xFF

  let properties ~scale =
    [
      V.Checker.forall ~name:"cortexm.new_regions: refined contract"
        ~show:(fun (a, b, c) -> Printf.sprintf "(start=%s unalloc=%d total=%d)" (Word32.to_hex a) b c)
        (D.triple (starts scale) (D.of_list [ 1024; 8192; 0x20000 ])
           (size_ladder scale 32 9000 (if scale >= 1.0 then 8 else 256)))
        new_regions_ok;
      V.Checker.forall ~name:"cortexm.update_regions: refined contract"
        (D.pair (starts scale) (size_ladder scale 32 8192 (if scale >= 1.0 then 4 else 128)))
        update_regions_ok;
      V.Checker.forall ~name:"cortexm.region/hardware correspondence (§4.4)"
        (D.pair (D.ints 5 14) (D.ints 1 8))
        region_hw_correspondence;
      V.Checker.forall ~name:"pmp.region/hardware correspondence (§4.4, e310)"
        (D.pair (D.ints 0 (scaled scale 48)) (D.ints 1 (scaled scale 48)))
        pmp_hw_correspondence;
      V.Checker.forall ~name:"pmp.region/hardware correspondence (§4.4, earlgrey)"
        (D.pair (D.ints 0 (scaled scale 32)) (D.ints 1 (scaled scale 32)))
        (pmp_hw_correspondence_on Mpu_hw.Pmp.earlgrey Pmp_mpu.Earlgrey.configure_mpu);
      V.Checker.forall ~name:"pmp.region/hardware correspondence (§4.4, qemu-rv32)"
        (D.pair (D.ints 0 (scaled scale 32)) (D.ints 1 (scaled scale 32)))
        (pmp_hw_correspondence_on Mpu_hw.Pmp.qemu_rv32_virt Pmp_mpu.QemuRv32.configure_mpu);
      V.Checker.forall ~name:"allocator lifecycle invariants (§4.2, §4.3)"
        (D.quad
           (size_ladder scale 512 8192 512)
           (size_ladder scale 256 8192 512)
           (D.of_list [ 256; 1024; 2048 ])
           (D.of_list (List.map Word32.of_int [ -512; -64; -1; 0; 1; 64; 512; 4096 ])))
        allocator_lifecycle;
      V.Checker.forall ~name:"AppBreaks invariants (Figure 6)"
        (D.triple
           (size_ladder scale 256 4096 256)
           (size_ladder scale 0 4352 128)
           (size_ladder scale 0 4352 128))
        app_breaks_ops;
      V.Checker.forall ~name:"v8.region/hardware correspondence (§4.4)"
        (D.pair (D.ints 0 (scaled scale 40)) (D.ints 1 (scaled scale 40)))
        v8_hw_correspondence;
      V.Checker.forall ~name:"v8 allocator lifecycle (§3.5 reuse)"
        (D.quad
           (size_ladder scale 512 8192 512)
           (size_ladder scale 256 8192 512)
           (D.of_list [ 256; 1024; 2048 ])
           (D.of_list (List.map Word32.of_int [ -512; -64; -1; 0; 1; 64; 512; 4096 ])))
        v8_allocator_lifecycle;
      V.Checker.forall ~name:"pmp allocator lifecycle (§3.5 reuse)"
        (D.quad
           (size_ladder scale 512 8192 512)
           (size_ladder scale 256 8192 512)
           (D.of_list [ 256; 1024; 2048 ])
           (D.of_list (List.map Word32.of_int [ -512; -64; -1; 0; 1; 64; 512; 4096 ])))
        pmp_allocator_lifecycle;
      V.Checker.forall ~name:"DmaCell place/start/complete (§4.6)"
        (D.ints 1 (scaled scale 64)) dma_cell_roundtrip;
      V.Checker.forall_violates ~name:"DMA aliasing always caught (§4.6)"
        ~witnesses:(scaled scale 48)
        (D.ints 1 (scaled scale 48))
        dma_aliasing_always_caught;
      V.Checker.property ~name:"arithmetic lemmas (§5, Lean substitutes)" (fun () ->
          match Verify.Lemmas.prove_all ~bound:(scaled scale 65536) () with
          | _counts -> Ok ()
          | exception V.Violation.Violation v -> Error (Format.asprintf "%a" V.Violation.pp v));
    ]
end

(* ------------------------------------------------------------------ *)

module Interrupts = struct
  (* A fresh ARM machine with a process-shaped MPU configuration, used as
     the verification context for the handler proofs. *)
  let fresh_machine () =
    let m = Machine.create_arm () in
    let alloc =
      Result.get_ok
        (Granular.A.allocate_app_memory ~unalloc_start:(Range.start Layout.app_sram)
           ~unalloc_size:0x20000 ~min_size:4096 ~app_size:4096 ~kernel_size:1024
           ~flash_start:(Range.start Layout.app_flash) ~flash_size:1024)
    in
    let regs_base = Result.get_ok (Granular.A.allocate_grant alloc ~size:64 ~align:8) in
    Granular.A.configure_mpu m.Machine.arm_mpu alloc;
    (m, alloc, regs_base)

  let process_sp alloc = Granular.A.app_break alloc - 64

  (* §4.5's central theorem: for any preempting exception and any process
     behaviour, control returns to the kernel with callee-saved state,
     kernel stack and privilege intact. *)
  let kernel_to_kernel (exc_num, seed) =
    let m, alloc, regs_base = fresh_machine () in
    Fluxarm.Handlers.control_flow_kernel_to_kernel m.Machine.arm_cpu ~exc_num
      ~process_sp:(process_sp alloc) ~regs_base
      ~process_accessible:(Granular.A.accessible alloc) ~seed

  (* The buggy handler (missed CONTROL write, issue #4246) must violate the
     unprivileged-execution contract on every run. *)
  let mode_switch_bug_caught (exc_num, seed) =
    let m, alloc, regs_base = fresh_machine () in
    let faults = { Fluxarm.Handlers.skip_mode_switch = true } in
    match
      Fluxarm.Handlers.control_flow_kernel_to_kernel ~faults m.Machine.arm_cpu ~exc_num
        ~process_sp:(process_sp alloc) ~regs_base
        ~process_accessible:(Granular.A.accessible alloc) ~seed
    with
    | Ok () | Error _ -> Error "missed mode switch not caught"
    | exception V.Violation.Violation v ->
      let msg = Format.asprintf "%a" V.Violation.pp v in
      if String.length msg > 0 then Ok () else Ok ()

  (* Instruction-level contracts (Figure 7): msr on stack pointers demands
     a RAM address; ipsr is never writable. *)
  let msr_contract (value, reg_pick) =
    let m, _, _ = fresh_machine () in
    let cpu = m.Machine.arm_cpu in
    let reg = match reg_pick with 0 -> Fluxarm.Regs.Msp | 1 -> Fluxarm.Regs.Psp | _ -> Fluxarm.Regs.Lr in
    Fluxarm.Cpu.set cpu Fluxarm.Regs.R0 value;
    match Fluxarm.Cpu.msr cpu reg Fluxarm.Regs.R0 with
    | () ->
      if Fluxarm.Regs.is_sp reg || Fluxarm.Regs.is_psp reg then
        if Layout.in_sram value then Ok () else Error "msr accepted a non-RAM stack pointer"
      else Ok ()
    | exception V.Violation.Violation _ ->
      if (Fluxarm.Regs.is_sp reg || Fluxarm.Regs.is_psp reg) && not (Layout.in_sram value) then
        Ok ()
      else Error "msr contract fired on a legal write"

  let exception_roundtrip (exc_num, seed) =
    let m, _, _ = fresh_machine () in
    let cpu = m.Machine.arm_cpu in
    let rng = Random.State.make [| seed |] in
    List.iter
      (fun r -> Fluxarm.Cpu.set cpu r (Random.State.int rng 0xffff))
      Fluxarm.Regs.all_gprs;
    let before = List.map (Fluxarm.Cpu.get cpu) Fluxarm.Regs.all_gprs in
    let before_sp = Fluxarm.Cpu.sp cpu in
    Fluxarm.Exn.preempt cpu ~exc_num ~isr:Fluxarm.Handlers.sys_tick_isr;
    let after = List.map (Fluxarm.Cpu.get cpu) Fluxarm.Regs.all_gprs in
    if before <> after then Error "caller-saved registers corrupted by exception round trip"
    else if Fluxarm.Cpu.sp cpu <> before_sp then Error "stack pointer unbalanced"
    else if not (Fluxarm.Cpu.privileged cpu) then Error "not privileged after return to kernel"
    else Ok ()

  let sys_tick_postcondition seed =
    let m, _, _ = fresh_machine () in
    let cpu = m.Machine.arm_cpu in
    ignore seed;
    Fluxarm.Exn.entry cpu ~exc_num:Fluxarm.Exn.exc_systick;
    let lr = Fluxarm.Handlers.sys_tick_isr cpu in
    if lr <> Fluxarm.Exn.exc_return_thread_msp then Error "sys_tick_isr must return to kernel"
    else if Fluxarm.Cpu.control_committed cpu <> 0 then Error "CONTROL not cleared"
    else begin
      Fluxarm.Exn.return cpu lr;
      Ok ()
    end

  (* The same theorem, through assembled Thumb-2 machine code: encodings,
     decoder, instruction semantics and handler logic all have to agree. *)
  let mc_kernel_to_kernel (exc_num, seed) =
    let m, alloc, regs_base = fresh_machine () in
    let code = Fluxarm.Handlers_mc.install m.Machine.arm_mem in
    Fluxarm.Handlers_mc.control_flow_kernel_to_kernel code m.Machine.arm_cpu ~exc_num
      ~process_sp:(process_sp alloc) ~regs_base
      ~process_accessible:(Granular.A.accessible alloc) ~seed

  let mc_mode_switch_bug_caught (exc_num, seed) =
    let m, alloc, regs_base = fresh_machine () in
    let code =
      Fluxarm.Handlers_mc.install
        ~faults:{ Fluxarm.Handlers.skip_mode_switch = true }
        m.Machine.arm_mem
    in
    ignore seed;
    ignore exc_num;
    match
      Fluxarm.Handlers_mc.switch_to_user_part1 code m.Machine.arm_cpu
        ~process_sp:(process_sp alloc) ~regs_base
    with
    | () -> Error "machine-code mode-switch omission not caught"
    | exception V.Violation.Violation _ -> Ok ()

  let properties ~scale =
    let excs = D.of_list [ 15; 16; 17; 22; 31 ] in
    let seeds n = D.ints 1 (scaled scale n) in
    [
      V.Checker.forall ~name:"control_flow_kernel_to_kernel (§4.5)"
        ~show:(fun (e, s) -> Printf.sprintf "(exc=%d seed=%d)" e s)
        (D.pair excs (seeds 2400)) kernel_to_kernel;
      V.Checker.forall ~name:"machine-code control flow (§4.5, Thumb-2)"
        ~show:(fun (e, s) -> Printf.sprintf "(exc=%d seed=%d)" e s)
        (D.pair excs (seeds 600)) mc_kernel_to_kernel;
      V.Checker.forall ~name:"machine-code missed mode switch caught"
        (D.pair excs (seeds 4)) mc_mode_switch_bug_caught;
      V.Checker.forall ~name:"missed mode switch is caught (issue #4246)"
        (D.pair excs (seeds 24)) mode_switch_bug_caught;
      V.Checker.forall ~name:"msr stack-pointer contract (Figure 7)"
        (D.pair
           (D.of_list
              [ 0; 0x1000_0000; Range.start Layout.kernel_sram + 0x4000;
                Range.start Layout.app_sram + 0x100; 0xE000_0000; Word32.max_value ])
           (D.ints 0 2))
        msr_contract;
      V.Checker.forall ~name:"exception entry/return round trip" (D.pair excs (seeds 1200))
        exception_roundtrip;
      V.Checker.forall ~name:"sys_tick_isr postcondition (Figure 8)" (seeds 40)
        sys_tick_postcondition;
    ]
end

(* ------------------------------------------------------------------ *)

(** The three Figure 12 components, ready for {!Verify.Checker}. *)
let components ~scale =
  [
    ("TickTock (Monolithic)", Monolithic.patched ~scale);
    ("TickTock (Granular)", Granular.properties ~scale);
    ("Interrupts", Interrupts.properties ~scale);
  ]

(** The bug-finding run: checking the {e upstream} code must produce
    counterexamples — this is the paper's §2.2 experience. *)
let upstream_bug_hunt ~scale = ("Tock (Upstream, buggy)", Monolithic.upstream ~scale)
