(** The userland execution model.

    Processes on real Tock are arbitrary machine code; all the kernel ever
    observes of them is a stream of memory accesses and syscalls. Our
    untrusted applications are therefore small stateful programs emitting
    {!action}s — every [Load]/[Store] goes through the checked memory (and
    hence the live MPU model) with the CPU unprivileged, and every
    {!call} enters the kernel through the same syscall dispatch Tock uses
    (yield / subscribe / command / allow / memop, Tock 2.x ABI).

    A {!program} is a closure: each invocation receives the result of the
    previous action (syscall return value, loaded byte, …) and yields the
    next action — a convenient encoding of sequential app code that needs
    no program counter. *)

type call =
  | Yield
  | Subscribe of { driver : int; upcall_id : int }
  | Command of { driver : int; cmd : int; arg1 : int; arg2 : int }
  | Allow_rw of { driver : int; addr : Word32.t; len : int }
  | Allow_ro of { driver : int; addr : Word32.t; len : int }
  | Memop of { op : int; arg : Word32.t }

(** Tock's memop operation numbers (the subset we model). *)
let memop_brk = 0

let memop_sbrk = 1
let memop_memory_start = 2
let memop_memory_end = 3
let memop_flash_start = 4
let memop_flash_end = 5
let memop_grant_begins = 6

type action =
  | Load8 of Word32.t  (** result: the byte *)
  | Store8 of Word32.t * int  (** result: 0 *)
  | Load32 of Word32.t
  | Store32 of Word32.t * Word32.t
  | Compute of int  (** burn this many cycles; result: 0 *)
  | Print of string  (** console output (modeled directly); result: 0 *)
  | Syscall of call  (** result: the syscall return value *)
  | Exit of int

type program = Word32.t -> action

(** Syscall return-value conventions (Tock 2.x, collapsed to one word). *)
let success = 0

let failure = Word32.max_value
let retval_err (e : Kerror.t) = ignore e; failure

let pp_call ppf = function
  | Yield -> Format.fprintf ppf "yield"
  | Subscribe { driver; upcall_id } -> Format.fprintf ppf "subscribe(%d,%d)" driver upcall_id
  | Command { driver; cmd; arg1; arg2 } ->
    Format.fprintf ppf "command(%d,%d,%d,%d)" driver cmd arg1 arg2
  | Allow_rw { driver; addr; len } ->
    Format.fprintf ppf "allow_rw(%d,%s,%d)" driver (Word32.to_hex addr) len
  | Allow_ro { driver; addr; len } ->
    Format.fprintf ppf "allow_ro(%d,%s,%d)" driver (Word32.to_hex addr) len
  | Memop { op; arg } -> Format.fprintf ppf "memop(%d,%s)" op (Word32.to_hex arg)

let pp_action ppf = function
  | Load8 a -> Format.fprintf ppf "load8 %s" (Word32.to_hex a)
  | Store8 (a, v) -> Format.fprintf ppf "store8 %s <- %02x" (Word32.to_hex a) v
  | Load32 a -> Format.fprintf ppf "load32 %s" (Word32.to_hex a)
  | Store32 (a, v) -> Format.fprintf ppf "store32 %s <- %s" (Word32.to_hex a) (Word32.to_hex v)
  | Compute n -> Format.fprintf ppf "compute %d" n
  | Print s -> Format.fprintf ppf "print %S" s
  | Syscall c -> Format.fprintf ppf "syscall %a" pp_call c
  | Exit c -> Format.fprintf ppf "exit %d" c
