(** ePMP kernel self-protection for OpenTitan-class chips (Smepmp).

    Tock on EarlGrey seals the kernel's own memory with locked PMP entries
    before any process runs: under machine-mode lockdown (MML) a locked
    entry binds machine mode and is invisible to user mode, so kernel code
    becomes immutable (RX, not writable even by the kernel), RAM is never
    machine-executable (no code injection), and — with machine-mode whole
    protection (MMWP) — any M-mode access outside the locked entries
    faults. Locked entries cannot be rewritten until reset. *)

val kernel_flash_entry : int
val app_flash_entry : int
val sram_entry : int

val protect_kernel : Mpu_hw.Pmp.t -> unit
(** Install the locked NAPOT entries at the top of the bank and turn on
    MML + MMWP. [Invalid_argument] on a chip without ePMP. User-mode
    process regions at the low indices keep their priority. *)

val kernel_sealed : Mpu_hw.Pmp.t -> bool
(** The §4.3-style check for the kernel itself: machine mode can execute
    only kernel text, cannot write it, cannot execute RAM, and cannot touch
    unmapped space. *)
