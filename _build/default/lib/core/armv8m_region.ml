(** A single ARMv8-M (PMSAv8) MPU region: the base/limit register pair,
    with all logical properties derived from the register bits (§4.4
    discipline, third architecture). PMSAv8 has no subregions and no
    power-of-two constraint, so — like the PMP descriptor — [start]/[size]
    are exact up to the 32-byte granule. *)

module Hw = Mpu_hw.Armv8m_mpu

type t = { id : int; rbar : Word32.t; rlar : Word32.t }

let empty ~region_id = { id = region_id; rbar = 0; rlar = 0 }

let create ~region_id ~start ~size ~perms =
  Verify.Violation.requiref "Armv8mRegion.create: granule"
    (Math32.is_aligned start ~align:Hw.granule && size > 0 && size mod Hw.granule = 0)
    "start=%s size=%d" (Word32.to_hex start) size;
  {
    id = region_id;
    rbar = Hw.encode_rbar ~base:start ~perms;
    rlar = Hw.encode_rlar ~limit:(start + size - 1) ~enable:true;
  }

let region_id t = t.id
let rbar t = t.rbar
let rlar t = t.rlar
let is_set t = Hw.decode_rlar_enable t.rlar

let start t = if is_set t then Some (Hw.decode_rbar_base t.rbar) else None

let size t =
  if is_set t then Some (Hw.decode_rlar_limit t.rlar + 1 - Hw.decode_rbar_base t.rbar)
  else None

let accessible_range t =
  match (start t, size t) with
  | Some s, Some n -> Some (Range.make ~start:s ~size:n)
  | Some _, None | None, Some _ | None, None -> None

let overlaps t ~lo ~hi =
  match accessible_range t with
  | None -> false
  | Some r -> Range.overlaps_bounds r ~lo ~hi

let matches_perms t p =
  is_set t
  && match Hw.decode_rbar_perms t.rbar with Some q -> Perms.equal p q | None -> false

let can_access t ~start:s ~end_ ~perms =
  is_set t
  && start t = Some s
  && (match size t with Some n -> s + n = end_ | None -> false)
  && matches_perms t perms

let equal a b = a.id = b.id && a.rbar = b.rbar && a.rlar = b.rlar

let pp ppf t =
  if is_set t then
    Format.fprintf ppf "v8 region %d: [%s, %s]" t.id
      (Word32.to_hex (Hw.decode_rbar_base t.rbar))
      (Word32.to_hex (Hw.decode_rlar_limit t.rlar))
  else Format.fprintf ppf "v8 region %d: unset" t.id
