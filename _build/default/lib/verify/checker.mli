(** The verification engine.

    The analog of running [flux] over a component: each {e property} plays
    the role of one contracted function's verification condition, and
    checking a component means discharging every property and timing each
    one — producing the per-function timing distribution the paper reports
    in Figure 12 (total / max / mean / stddev over functions).

    A property passes when the contracted body raises no
    {!Violation.Violation} (and returns [Ok]) on any input of its domain; a
    counterexample is reported with the concrete input, just as Flux points
    at the failing contract (§2.2's bug reports). *)

type property

val property : name:string -> (unit -> (unit, string) result) -> property
(** A single verification condition with no input space. *)

val forall :
  name:string -> ?show:('a -> string) -> 'a Domain.t -> ('a -> (unit, string) result) -> property
(** Check the body on every element of the domain. A raised
    {!Violation.Violation} counts as a counterexample; [Error] likewise. *)

val forall_violates :
  name:string -> ?show:('a -> string) -> witnesses:int -> 'a Domain.t -> ('a -> unit) -> property
(** Dual form used by bug reproductions: the property holds when at least
    [witnesses] inputs make the body raise a violation — i.e. the checker
    {e does} catch the injected bug. *)

type fn_result = {
  fn_name : string;
  cases : int;  (** inputs exercised *)
  seconds : float;
  outcome : (unit, string) result;  (** [Error] carries the counterexample *)
}

type component_report = {
  component : string;
  results : fn_result list;
}

val check_component : string -> property list -> component_report
(** Run every property with contract checking enabled, timing each. *)

val all_verified : component_report -> bool
val failures : component_report -> fn_result list
val pp_report : Format.formatter -> component_report -> unit
