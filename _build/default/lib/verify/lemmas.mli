(** Trusted arithmetic lemmas, proved by bounded exhaustion.

    The paper's SMT solvers hang on facts about powers of two and modular
    arithmetic, so TickTock states them as trusted lemmas and proves them
    interactively in Lean (§5). We state the same lemmas; instead of Lean we
    discharge each one by exhaustively checking a large bounded prefix of
    its domain once at start-up ({!prove_all}), then let kernel code "call"
    the lemma — which, with contract checking enabled, re-validates the
    instance it is applied to. *)

val lemma_pow2_octet : int -> unit
(** [is_pow2 r && 8 <= r  ==>  r mod 8 = 0] — the paper's example. Raises
    {!Violation.Violation} if the instance fails (it cannot). *)

val lemma_pow2_double : int -> unit
(** [is_pow2 r  ==>  is_pow2 (2*r)] (for [r < 2{^31}]). *)

val lemma_align_up_bounds : int -> int -> unit
(** [is_pow2 a  ==>  x <= align_up x a < x + a]. *)

val lemma_align_up_aligned : int -> int -> unit
(** [is_pow2 a  ==>  align_up x a mod a = 0]. *)

val lemma_closest_pow2_bounds : int -> unit
(** [0 < x <= 2{^31}  ==>  x <= closest_power_of_two x < 2*x]. *)

val lemma_subregion_exact : int -> unit
(** A region size that is a power of two [>= 256] divides evenly into eight
    subregions each a multiple of 32 — the fact underlying the Cortex-M
    subregion layout. *)

val prove_all : ?bound:int -> unit -> (string * int) list
(** Exhaustively check every lemma over a bounded domain (default bound
    2{^16}, plus the powers of two up to 2{^31}); returns (lemma, cases
    checked). Raises on the first counterexample — i.e. never, serving the
    role of the Lean proof artifact. *)
