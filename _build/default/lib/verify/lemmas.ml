let lemma_pow2_octet r =
  if Math32.is_pow2 r && 8 <= r then
    Violation.ensuref "lemma_pow2_octet" (r mod 8 = 0) "r=%d" r

let lemma_pow2_double r =
  if Math32.is_pow2 r && r < 1 lsl 31 then
    Violation.ensuref "lemma_pow2_double" (Math32.is_pow2 (2 * r)) "r=%d" r

let lemma_align_up_bounds x a =
  if Math32.is_pow2 a then begin
    let y = Math32.align_up x ~align:a in
    Violation.ensuref "lemma_align_up_bounds" (x <= y && y < x + a) "x=%d a=%d y=%d" x a y
  end

let lemma_align_up_aligned x a =
  if Math32.is_pow2 a then
    Violation.ensuref "lemma_align_up_aligned" (Math32.align_up x ~align:a mod a = 0) "x=%d a=%d"
      x a

let lemma_closest_pow2_bounds x =
  if 0 < x && x <= 1 lsl 31 then begin
    let p = Math32.closest_power_of_two x in
    Violation.ensuref "lemma_closest_pow2_bounds" (x <= p && (p < 2 * x || p = 1)) "x=%d p=%d" x p
  end

let lemma_subregion_exact size =
  if Math32.is_pow2 size && size >= 256 then begin
    let sub = size / 8 in
    Violation.ensuref "lemma_subregion_exact" (sub * 8 = size && sub mod 32 = 0) "size=%d" size
  end

let prove_all ?(bound = 1 lsl 16) () =
  let pow2s = List.init 32 (fun i -> 1 lsl i) in
  let count = ref [] in
  let record name n = count := (name, n) :: !count in
  Violation.with_enabled true (fun () ->
      let n = ref 0 in
      List.iter (fun r -> incr n; lemma_pow2_octet r; lemma_pow2_double r) pow2s;
      for r = 0 to bound do
        incr n;
        lemma_pow2_octet r
      done;
      record "lemma_pow2_octet+double" !n;
      let n = ref 0 in
      List.iter
        (fun a ->
          if a <= 4096 then
            for x = 0 to 4096 do
              incr n;
              lemma_align_up_bounds x a;
              lemma_align_up_aligned x a
            done)
        pow2s;
      record "lemma_align_up" !n;
      let n = ref 0 in
      for x = 1 to bound do
        incr n;
        lemma_closest_pow2_bounds x
      done;
      List.iter (fun p -> incr n; lemma_closest_pow2_bounds p) pow2s;
      record "lemma_closest_pow2_bounds" !n;
      let n = ref 0 in
      List.iter (fun s -> incr n; lemma_subregion_exact s) pow2s;
      record "lemma_subregion_exact" !n);
  List.rev !count
