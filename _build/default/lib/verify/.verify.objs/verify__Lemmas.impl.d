lib/verify/lemmas.ml: List Math32 Violation
