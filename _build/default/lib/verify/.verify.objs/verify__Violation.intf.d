lib/verify/violation.mli: Format
