lib/verify/domain.mli: Seq
