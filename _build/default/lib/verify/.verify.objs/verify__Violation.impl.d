lib/verify/violation.ml: Format Fun
