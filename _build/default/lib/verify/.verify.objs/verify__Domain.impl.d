lib/verify/domain.ml: List Math32 Seq
