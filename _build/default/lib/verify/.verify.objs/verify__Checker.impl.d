lib/verify/checker.ml: Domain Format List Printf Seq Unix Violation
