lib/verify/report.mli: Checker Format
