lib/verify/lemmas.mli:
