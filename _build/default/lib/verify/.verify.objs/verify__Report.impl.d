lib/verify/report.ml: Array Checker Filename Float Format List Printf String Sys
