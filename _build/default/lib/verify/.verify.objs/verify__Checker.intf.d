lib/verify/checker.mli: Domain Format
