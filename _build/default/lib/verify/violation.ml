type t = { site : string; detail : string }

exception Violation of t

let state = ref true
let enabled () = !state
let set_enabled v = state := v

let with_enabled v f =
  let old = !state in
  state := v;
  Fun.protect ~finally:(fun () -> state := old) f

let fail site detail = raise (Violation { site; detail })
let require site ok = if !state && not ok then fail site "precondition failed"
let ensure site ok = if !state && not ok then fail site "postcondition failed"
let invariant site ok = if !state && not ok then fail site "invariant violated"

let failf site fmt = Format.kasprintf (fun detail -> fail site detail) fmt

let requiref site ok fmt =
  if !state && not ok then failf site fmt else Format.ikfprintf ignore Format.str_formatter fmt

let ensuref site ok fmt =
  if !state && not ok then failf site fmt else Format.ikfprintf ignore Format.str_formatter fmt

let invariantf site ok fmt =
  if !state && not ok then failf site fmt else Format.ikfprintf ignore Format.str_formatter fmt

let pp ppf { site; detail } = Format.fprintf ppf "%s: %s" site detail
