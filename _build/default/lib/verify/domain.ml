type 'a t = { card : int; seq : unit -> 'a Seq.t }

let cardinality t = t.card
let to_seq t = t.seq ()

let of_list xs = { card = List.length xs; seq = (fun () -> List.to_seq xs) }

let ints lo hi =
  assert (lo <= hi);
  { card = hi - lo + 1; seq = (fun () -> Seq.init (hi - lo + 1) (fun i -> lo + i)) }

let around centres ~spread =
  let values =
    List.concat_map
      (fun c ->
        List.init ((2 * spread) + 1) (fun i -> c - spread + i) |> List.filter (fun v -> v >= 0))
      centres
    |> List.sort_uniq compare
  in
  of_list values

let pow2s ~min ~max =
  assert (Math32.is_pow2 min && Math32.is_pow2 max && min <= max);
  let rec build p = if p > max then [] else p :: build (p * 2) in
  of_list (build min)

let bool = of_list [ false; true ]

let option d =
  { card = d.card + 1;
    seq = (fun () -> Seq.cons None (Seq.map (fun x -> Some x) (d.seq ()))) }

let pair a b =
  { card = a.card * b.card;
    seq =
      (fun () -> Seq.concat_map (fun x -> Seq.map (fun y -> (x, y)) (b.seq ())) (a.seq ())) }

let map f d = { card = d.card; seq = (fun () -> Seq.map f (d.seq ())) }
let triple a b c = map (fun ((x, y), z) -> (x, y, z)) (pair (pair a b) c)
let quad a b c d = map (fun ((x, y), (z, w)) -> (x, y, z, w)) (pair (pair a b) (pair c d))
let filter p d = { card = d.card; seq = (fun () -> Seq.filter p (d.seq ())) }

let union ds =
  { card = List.fold_left (fun acc d -> acc + d.card) 0 ds;
    seq = (fun () -> Seq.concat_map (fun d -> d.seq ()) (List.to_seq ds)) }
