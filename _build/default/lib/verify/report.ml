type timing_stats = {
  fns : int;
  total_s : float;
  max_s : float;
  mean_s : float;
  stddev_s : float;
}

let timing_stats (r : Checker.component_report) =
  let times = List.map (fun (f : Checker.fn_result) -> f.seconds) r.results in
  let fns = List.length times in
  let total_s = List.fold_left ( +. ) 0.0 times in
  let max_s = List.fold_left max 0.0 times in
  let mean_s = if fns = 0 then 0.0 else total_s /. float_of_int fns in
  let var =
    if fns = 0 then 0.0
    else
      List.fold_left (fun acc t -> acc +. ((t -. mean_s) ** 2.0)) 0.0 times /. float_of_int fns
  in
  { fns; total_s; max_s; mean_s; stddev_s = sqrt var }

let seconds_to_string s =
  if s >= 60.0 then Printf.sprintf "%dm%04.1fs" (int_of_float s / 60) (Float.rem s 60.0)
  else Printf.sprintf "%.3fs" s

let pp_timing_row ppf (name, st) =
  Format.fprintf ppf "%-24s %5d  %10s %10s %10s %10s" name st.fns (seconds_to_string st.total_s)
    (seconds_to_string st.max_s) (seconds_to_string st.mean_s) (seconds_to_string st.stddev_s)

let pp_timing_table ppf rows =
  Format.fprintf ppf "@[<v>%-24s %5s  %10s %10s %10s %10s@," "Component" "Fns." "Total" "Max"
    "Mean" "StdDev";
  List.iter (fun row -> Format.fprintf ppf "%a@," pp_timing_row row) rows;
  Format.fprintf ppf "@]"

type effort_row = {
  effort_component : string;
  source_loc : int;
  functions : int;
  spec_sites : int;
}

let is_code_line line =
  let line = String.trim line in
  String.length line > 0 && not (String.length line >= 2 && String.sub line 0 2 = "(*")

let count_occurrences ~needle line =
  let nlen = String.length needle in
  let llen = String.length line in
  let rec loop i acc =
    if i + nlen > llen then acc
    else if String.sub line i nlen = needle then loop (i + nlen) (acc + 1)
    else loop (i + 1) acc
  in
  loop 0 0

let spec_markers =
  [ "Violation.require"; "Violation.ensure"; "Violation.invariant"; "Lemmas."; "Checker.forall";
    "Checker.property"; "Contract." ]

let fn_markers = [ "let " ]

let scan_file path =
  let ic = open_in path in
  let loc = ref 0 and fns = ref 0 and specs = ref 0 in
  (try
     while true do
       let line = input_line ic in
       if is_code_line line then incr loc;
       List.iter (fun m -> fns := !fns + count_occurrences ~needle:m line) fn_markers;
       List.iter (fun m -> specs := !specs + count_occurrences ~needle:m line) spec_markers
     done
   with End_of_file -> ());
  close_in ic;
  (!loc, !fns, !specs)

let ml_files dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli")
    |> List.map (Filename.concat dir)

let scan_sources ~root ~components =
  List.map
    (fun (name, dirs) ->
      let files = List.concat_map (fun d -> ml_files (Filename.concat root d)) dirs in
      let loc, fns, specs =
        List.fold_left
          (fun (l, f, s) file ->
            let l', f', s' = scan_file file in
            (l + l', f + f', s + s'))
          (0, 0, 0) files
      in
      { effort_component = name; source_loc = loc; functions = fns; spec_sites = specs })
    components

let pp_effort_table ppf rows =
  Format.fprintf ppf "@[<v>%-24s %8s %8s %8s@," "Component" "Source" "Fns" "Specs";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-24s %8d %8d %8d@," r.effort_component r.source_loc r.functions
        r.spec_sites)
    rows;
  let total f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  Format.fprintf ppf "%-24s %8d %8d %8d@," "Total"
    (total (fun r -> r.source_loc))
    (total (fun r -> r.functions))
    (total (fun r -> r.spec_sites));
  Format.fprintf ppf "@]"
