(** Input domains for bounded-exhaustive contract checking.

    Flux discharges verification conditions with an SMT solver over all
    values of the refined types. Our checker instead enumerates bounded
    domains exhaustively (and supplements them with QCheck random domains in
    the test suite). Domains are built compositionally; products enumerate
    the full cross product, so keep the factors small and boundary-rich. *)

type 'a t

val cardinality : 'a t -> int
val to_seq : 'a t -> 'a Seq.t

val of_list : 'a list -> 'a t

val ints : int -> int -> int t
(** Inclusive integer interval. *)

val around : int list -> spread:int -> int t
(** Boundary-biased integers: for each centre [c], the values
    [c-spread .. c+spread], deduplicated and clipped at 0. The workhorse for
    address/size domains where bugs live at alignment boundaries. *)

val pow2s : min:int -> max:int -> int t
(** Powers of two in [\[min, max\]]. *)

val bool : bool t
val option : 'a t -> 'a option t
val pair : 'a t -> 'b t -> ('a * 'b) t
val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t
val quad : 'a t -> 'b t -> 'c t -> 'd t -> ('a * 'b * 'c * 'd) t
val map : ('a -> 'b) -> 'a t -> 'b t
val filter : ('a -> bool) -> 'a t -> 'a t
val union : 'a t list -> 'a t
