(** Verification-effort reporting (Figures 10 and 12).

    {!timing_stats} condenses a {!Checker.component_report} into the row
    shape of the paper's Figure 12: number of functions (properties), total
    verification time, max/mean/stddev of per-function times.

    {!scan_sources} produces the Figure 10 analog: per-component source
    lines, function counts and specification (contract-site) counts, mined
    from this repository's own OCaml sources the way the paper counts Rust
    LoC and Flux annotations. *)

type timing_stats = {
  fns : int;
  total_s : float;
  max_s : float;
  mean_s : float;
  stddev_s : float;
}

val timing_stats : Checker.component_report -> timing_stats
val pp_timing_row : Format.formatter -> string * timing_stats -> unit
val pp_timing_table : Format.formatter -> (string * timing_stats) list -> unit

type effort_row = {
  effort_component : string;
  source_loc : int;  (** non-blank, non-comment-only lines in .ml files *)
  functions : int;  (** top-level and nested [let] definitions *)
  spec_sites : int;  (** contract call sites: require/ensure/invariant/lemma *)
}

val scan_sources : root:string -> components:(string * string list) list -> effort_row list
(** [components] maps a display name to the directories (relative to [root])
    whose [.ml] files make it up. Missing directories contribute zero. *)

val pp_effort_table : Format.formatter -> effort_row list -> unit
