type gpr = R0 | R1 | R2 | R3 | R4 | R5 | R6 | R7 | R8 | R9 | R10 | R11 | R12

type special = Msp | Psp | Lr | Pc | Psr | Control | Ipsr

let gpr_index = function
  | R0 -> 0 | R1 -> 1 | R2 -> 2 | R3 -> 3 | R4 -> 4 | R5 -> 5 | R6 -> 6
  | R7 -> 7 | R8 -> 8 | R9 -> 9 | R10 -> 10 | R11 -> 11 | R12 -> 12

let gpr_of_index = function
  | 0 -> R0 | 1 -> R1 | 2 -> R2 | 3 -> R3 | 4 -> R4 | 5 -> R5 | 6 -> R6
  | 7 -> R7 | 8 -> R8 | 9 -> R9 | 10 -> R10 | 11 -> R11 | 12 -> R12
  | _ -> invalid_arg "gpr_of_index"

let all_gprs = [ R0; R1; R2; R3; R4; R5; R6; R7; R8; R9; R10; R11; R12 ]
let callee_saved = [ R4; R5; R6; R7; R8; R9; R10; R11 ]
let caller_saved = [ R0; R1; R2; R3; R12 ]
let is_sp = function Msp -> true | Psp | Lr | Pc | Psr | Control | Ipsr -> false
let is_psp = function Psp -> true | Msp | Lr | Pc | Psr | Control | Ipsr -> false
let is_ipsr = function Ipsr -> true | Msp | Psp | Lr | Pc | Psr | Control -> false

let pp_gpr ppf r = Format.fprintf ppf "r%d" (gpr_index r)

let pp_special ppf s =
  Format.pp_print_string ppf
    (match s with
    | Msp -> "msp" | Psp -> "psp" | Lr -> "lr" | Pc -> "pc"
    | Psr -> "psr" | Control -> "control" | Ipsr -> "ipsr")
