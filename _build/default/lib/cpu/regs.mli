(** ARMv7-M register names.

    Mirrors FluxArm's split between general-purpose registers (the operands
    of data-processing instructions) and special registers (accessed only
    through MSR/MRS and exception machinery). *)

type gpr = R0 | R1 | R2 | R3 | R4 | R5 | R6 | R7 | R8 | R9 | R10 | R11 | R12

type special =
  | Msp  (** main stack pointer — the kernel's stack *)
  | Psp  (** process stack pointer *)
  | Lr
  | Pc
  | Psr  (** program status; IPSR in its low 9 bits *)
  | Control  (** nPRIV (bit 0), SPSEL (bit 1) *)
  | Ipsr  (** read-only view of PSR\[8:0\] *)

val gpr_index : gpr -> int
val gpr_of_index : int -> gpr
val all_gprs : gpr list

val callee_saved : gpr list
(** r4–r11: the registers the AAPCS requires a callee (and hence a context
    switch) to preserve; the registers [cpu_state_correct] pins down. *)

val caller_saved : gpr list
(** r0–r3 and r12: stacked automatically by exception entry. *)

val is_sp : special -> bool
val is_psp : special -> bool
val is_ipsr : special -> bool
val pp_gpr : Format.formatter -> gpr -> unit
val pp_special : Format.formatter -> special -> unit
