(** Machine-code execution: fetch–decode–execute over {!Thumb} encodings.

    This closes FluxArm's loop: handler code assembled into modeled flash
    (real halfwords, checked instruction fetches) executes through the same
    {!Cpu} instruction methods — and hence the same contracts — as the
    method-level model. {!Handlers_mc} uses it to run Tock's actual handler
    sequences from memory and differentially validate them against
    {!Handlers}. *)

type stop =
  | Svc_taken of int  (** an [svc #imm] was executed; PC points after it *)
  | Exc_return of Word32.t  (** [bx lr] with LR holding an EXC_RETURN value *)
  | Bx_reg of Word32.t  (** [bx] to an ordinary address *)
  | Decode_error of string
  | Out_of_fuel

val step : Cpu.t -> stop option
(** Fetch at PC (a {e checked} execute access — fetching from memory the
    MPU denies faults like any other access), decode, advance PC, execute.
    [None] means normal fall-through to the next instruction. *)

val run : ?fuel:int -> Cpu.t -> stop
(** Step until something stops execution (default fuel 10_000). *)

val run_handler : Cpu.t -> entry:Word32.t -> Word32.t
(** Run a handler body at [entry] in handler mode until it executes
    [bx lr] with an EXC_RETURN value; returns that value. Raises
    [Failure] on any other stop — handlers are straight-line code ending
    in an exception return. *)
