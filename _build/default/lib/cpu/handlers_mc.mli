(** Tock's handlers and context switch as {e machine code}.

    The same sequences as {!Handlers}, assembled into kernel flash as real
    Thumb-2 halfwords and executed through the {!Mc} fetch–decode–execute
    engine. The encodings, the decoder, the instruction semantics and the
    handler logic all have to agree for the §4.5 properties to hold — and
    they are differentially tested against the method-level model. *)

type t
(** The installed handler code: entry addresses in kernel flash. *)

val install : ?faults:Handlers.faults -> Memory.t -> t
(** Assemble the handler bodies (SysTick, SVC with the real
    compare-and-branch on EXC_RETURN, generic IRQ, the two-part
    [switch_to_user]) into kernel flash. [faults] reproduces the
    missed-mode-switch bug in the generated code. *)

val isr_entry : t -> exc_num:int -> Word32.t
val run_isr : t -> Cpu.t -> exc_num:int -> Word32.t

val preempt_process : t -> Cpu.t -> exc_num:int -> unit
(** Exception entry, machine-code ISR, exception return. *)

val switch_to_user_part1 : t -> Cpu.t -> process_sp:Word32.t -> regs_base:Word32.t -> unit
(** Execute the machine-code [switch_to_user] up to and including the world
    swap; ends with the CPU in the process context (thread mode, PSP,
    unprivileged — contract-checked). *)

val switch_to_user_part2 : t -> Cpu.t -> unit
(** Resume the kernel after a preemption popped the kernel frame: the
    stacked PC points at the second half; run it to completion. *)

val control_flow_kernel_to_kernel :
  t ->
  Cpu.t ->
  exc_num:int ->
  process_sp:Word32.t ->
  regs_base:Word32.t ->
  process_accessible:Range.t list ->
  seed:int ->
  (unit, string) result
(** The full §4.5 round trip through machine code; returns
    {!Cpu.cpu_state_correct}. *)

val return_sentinel : Word32.t
(** The non-EXC_RETURN value the glue places in LR; part2's final [bx lr]
    surfaces it as the stop address. *)
