lib/cpu/handlers_mc.mli: Cpu Handlers Memory Range Word32
