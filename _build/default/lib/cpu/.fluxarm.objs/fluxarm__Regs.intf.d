lib/cpu/regs.mli: Format
