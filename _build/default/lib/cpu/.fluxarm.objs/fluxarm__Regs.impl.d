lib/cpu/regs.ml: Format
