lib/cpu/exn.ml: Cpu Cycles Memory Regs Verify Word32
