lib/cpu/thumb.mli: Format Memory Regs Word32
