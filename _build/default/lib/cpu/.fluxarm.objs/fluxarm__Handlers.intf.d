lib/cpu/handlers.mli: Cpu Exn Range Word32
