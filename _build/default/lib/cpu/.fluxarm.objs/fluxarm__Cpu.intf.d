lib/cpu/cpu.mli: Format Memory Regs Word32
