lib/cpu/exn.mli: Cpu Word32
