lib/cpu/handlers_mc.ml: Cpu Exn Handlers List Math32 Mc Memory Printf Regs Thumb Verify Word32
