lib/cpu/handlers.ml: Cpu Exn List Memory Random Range Regs Verify Word32
