lib/cpu/cpu.ml: Array Cycles Format Layout List Memory Printf Range Regs Verify Word32
