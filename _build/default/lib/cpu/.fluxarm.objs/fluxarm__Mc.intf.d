lib/cpu/mc.mli: Cpu Word32
