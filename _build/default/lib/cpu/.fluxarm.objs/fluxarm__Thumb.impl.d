lib/cpu/thumb.ml: Format Fun List Memory Printf Regs Result
