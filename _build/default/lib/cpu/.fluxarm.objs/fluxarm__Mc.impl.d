lib/cpu/mc.ml: Cpu Cycles Exn List Memory Perms Printf Regs Thumb Verify Word32
