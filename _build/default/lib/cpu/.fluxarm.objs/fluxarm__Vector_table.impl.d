lib/cpu/vector_table.ml: Cycles Exn Fun Handlers_mc Layout List Mc Memory Printf Range Word32
