(** ARMv7-M exception entry and return.

    Models the hardware behaviour the paper's [preempt] method formalizes
    (§4.5): on exception entry the caller-saved registers are stacked on the
    {e active} stack as an 8-word frame, the CPU enters handler mode, and LR
    receives an EXC_RETURN value recording which stack/mode was preempted;
    on a branch to an EXC_RETURN value the frame is popped from the stack
    the value selects and the recorded mode is re-entered.

    This double-buffered dance is the heart of Tock's context switch: the
    kernel's [svc] stacks a {e kernel} frame on MSP, and the SVC handler
    returns with [exc_return_thread_psp], popping the {e process} frame off
    PSP — so one exception swaps worlds. *)

val exc_svc : int
val exc_pendsv : int
val exc_systick : int

val exc_return_handler_msp : Word32.t
(** 0xFFFF_FFF1 — return to handler mode (nested exception). *)

val exc_return_thread_msp : Word32.t
(** 0xFFFF_FFF9 — return to thread mode on the main stack (the kernel). *)

val exc_return_thread_psp : Word32.t
(** 0xFFFF_FFFD — return to thread mode on the process stack. *)

val is_exc_return : Word32.t -> bool

val frame_words : int
(** 8: r0-r3, r12, lr, return address, xPSR. *)

type isr = Cpu.t -> Word32.t
(** An interrupt service routine: runs in handler mode and returns the
    EXC_RETURN value it exits with ([bx lr]). *)

val entry : Cpu.t -> exc_num:int -> unit
(** Hardware exception entry. Requires a valid exception number (2–255) and
    that we are not already in handler mode (the model does not support
    nesting; Tock runs handlers with interrupts masked). Stacking uses the
    privilege of the preempted context, so a process whose stack pointer
    was steered at kernel memory faults here rather than corrupting the
    kernel. Postcondition: handler mode, IPSR = [exc_num], LR holds the
    matching EXC_RETURN. *)

val return : Cpu.t -> Word32.t -> unit
(** Exception return via an EXC_RETURN value. Requires handler mode and a
    valid EXC_RETURN. Pops the frame from the selected stack, restores
    thread mode and sets CONTROL.SPSEL to match the selected stack. *)

val preempt : Cpu.t -> exc_num:int -> isr:isr -> unit
(** The paper's [preempt]: full entry → ISR → return round trip. The ISR's
    returned EXC_RETURN is verified to target the kernel
    ([exc_return_thread_msp]) — the §4.5 proof obligation that control
    always flows back to the kernel after an interrupt. *)
