type faults = { skip_mode_switch : bool }

let no_faults = { skip_mode_switch = false }

let require_handler site cpu =
  Verify.Violation.require (site ^ ": mode_is_handler") (Cpu.mode cpu = Cpu.Handler)

let sys_tick_isr cpu =
  require_handler "sys_tick_isr" cpu;
  (* movw r0, #0; msr CONTROL, r0; isb; ldr lr, =0xFFFF_FFF9; bx lr *)
  Cpu.movw_imm cpu Regs.R0 0;
  Cpu.msr cpu Regs.Control Regs.R0;
  Cpu.isb cpu;
  Cpu.pseudo_ldr_special cpu Regs.Lr Exn.exc_return_thread_msp;
  Cpu.get_special cpu Regs.Lr

let svc_isr ?(faults = no_faults) cpu =
  require_handler "svc_isr" cpu;
  let came_from = Cpu.get_special cpu Regs.Lr in
  if came_from = Exn.exc_return_thread_msp then begin
    (* Kernel executed svc: branch to the process. The CONTROL write below
       is the critical step upstream Tock omitted (issue #4246). *)
    if not faults.skip_mode_switch then begin
      Cpu.movw_imm cpu Regs.R1 1;
      Cpu.msr cpu Regs.Control Regs.R1;
      Cpu.isb cpu
    end;
    Cpu.pseudo_ldr_special cpu Regs.Lr Exn.exc_return_thread_psp;
    Cpu.get_special cpu Regs.Lr
  end
  else begin
    (* Process executed svc (a syscall): resume the kernel, privileged. *)
    Cpu.movw_imm cpu Regs.R1 0;
    Cpu.msr cpu Regs.Control Regs.R1;
    Cpu.isb cpu;
    Cpu.pseudo_ldr_special cpu Regs.Lr Exn.exc_return_thread_msp;
    Cpu.get_special cpu Regs.Lr
  end

let generic_irq_isr cpu =
  require_handler "generic_irq_isr" cpu;
  Cpu.movw_imm cpu Regs.R0 0;
  Cpu.msr cpu Regs.Control Regs.R0;
  Cpu.isb cpu;
  Cpu.pseudo_ldr_special cpu Regs.Lr Exn.exc_return_thread_msp;
  Cpu.get_special cpu Regs.Lr

let isr_for ~exc_num cpu =
  if exc_num = Exn.exc_svc then svc_isr cpu
  else if exc_num = Exn.exc_systick then sys_tick_isr cpu
  else generic_irq_isr cpu

let kernel_saved = Regs.callee_saved

let switch_to_user_part1 ?(faults = no_faults) cpu ~process_sp ~regs_base =
  Verify.Violation.require "switch_to_user_part1: thread privileged"
    (Cpu.mode cpu = Cpu.Thread && Cpu.privileged cpu);
  (* mov r0, <process_sp>; mov r1, <regs_base> — set up by the kernel. *)
  Cpu.set cpu Regs.R0 process_sp;
  Cpu.set cpu Regs.R1 regs_base;
  (* stmdb sp!, {r4-r11, lr} — save kernel state on MSP. *)
  Cpu.push_special cpu Regs.Lr;
  Cpu.stmdb_sp cpu kernel_saved;
  (* msr psp, r0 — install the process stack. *)
  Cpu.msr cpu Regs.Psp Regs.R0;
  (* ldmia r1, {r4-r11} — load the process's callee-saved registers. *)
  Cpu.ldmia cpu ~base:Regs.R1 kernel_saved;
  (* svc 0xff — exception entry stacks the kernel frame on MSP; the SVC
     handler returns onto PSP, popping the process frame. *)
  Exn.entry cpu ~exc_num:Exn.exc_svc;
  let exc_return = svc_isr ~faults cpu in
  Exn.return cpu exc_return;
  Verify.Violation.ensure "switch_to_user_part1: thread mode on psp"
    (Cpu.mode cpu = Cpu.Thread && Word32.bit (Cpu.control_committed cpu) 1);
  Verify.Violation.ensure "switch_to_user_part1: process runs unprivileged"
    (not (Cpu.privileged cpu))

let process cpu ~seed ~steps ~accessible =
  let rng = Random.State.make [| seed |] in
  let word () = (Random.State.bits rng lsl 15 lxor Random.State.bits rng) land Word32.mask in
  List.iter (fun r -> Cpu.set cpu r (word ())) Regs.all_gprs;
  let in_accessible a = List.exists (fun r -> Range.contains r a) accessible in
  let pick_addr () =
    if Random.State.bool rng && accessible <> [] then begin
      let r = List.nth accessible (Random.State.int rng (List.length accessible)) in
      if Range.is_empty r then word ()
      else Range.start r + Random.State.int rng (Range.size r)
    end
    else word ()
  in
  let mem = Cpu.memory cpu in
  for _ = 1 to steps do
    let a = pick_addr () in
    match
      if Random.State.bool rng then ignore (Memory.load8 mem a) else Memory.store8 mem a 0xAB
    with
    | () ->
      (* The access went through: isolation demands it was inside the
         process-accessible ranges. *)
      Verify.Violation.ensuref "process: access stays in sandbox" (in_accessible a)
        "access to %s allowed by MPU but outside process memory" (Word32.to_hex a)
    | exception Memory.Access_fault _ -> ()
  done

let preempt_process cpu ~exc_num = Exn.preempt cpu ~exc_num ~isr:(isr_for ~exc_num)

let switch_to_user_part2 cpu ~regs_base =
  Verify.Violation.require "switch_to_user_part2: thread privileged"
    (Cpu.mode cpu = Cpu.Thread && Cpu.privileged cpu);
  Verify.Violation.ensuref "switch_to_user_part2: r1 restored by exception return"
    (Cpu.get cpu Regs.R1 = regs_base)
    "r1=%s" (Word32.to_hex (Cpu.get cpu Regs.R1));
  (* stmia r1, {r4-r11} — save the process's callee-saved registers. *)
  Cpu.stmia cpu ~base:Regs.R1 kernel_saved;
  (* ldmia sp!, {r4-r11, lr} — restore the kernel's state from MSP. *)
  Cpu.ldmia_sp cpu kernel_saved;
  Cpu.pop_special cpu Regs.Lr

let control_flow_kernel_to_kernel ?(faults = no_faults) cpu ~exc_num ~process_sp ~regs_base
    ~process_accessible ~seed =
  Verify.Violation.requiref "control_flow_kernel_to_kernel: 15 <= exception_num"
    (exc_num >= 15) "exc_num=%d" exc_num;
  Verify.Violation.require "control_flow_kernel_to_kernel: thread privileged"
    (Cpu.mode cpu = Cpu.Thread && Cpu.privileged cpu);
  let old = Cpu.snapshot cpu in
  switch_to_user_part1 ~faults cpu ~process_sp ~regs_base;
  process cpu ~seed ~steps:32 ~accessible:process_accessible;
  preempt_process cpu ~exc_num;
  switch_to_user_part2 cpu ~regs_base;
  Cpu.cpu_state_correct ~old cpu
