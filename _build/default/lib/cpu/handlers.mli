(** Tock's interrupt handlers and context-switch code, as FluxArm models.

    Each handler is a short sequence of {!Cpu} instruction-method calls —
    the same representation as the paper's Figure 8, where [sys_tick_isr]
    is Rust code invoking [movw_imm]/[msr]/[isb]. The context switch is
    modeled in two halves around an arbitrary process execution, exactly as
    the paper's [control_flow_kernel_to_kernel].

    The module carries a fault-injection switch reproducing the
    mode-switch bug the paper found in upstream Tock (issue #4246): with
    [skip_mode_switch] set, the SVC handler omits the [msr CONTROL]
    write when branching to a process, so the process runs privileged and
    the MPU never constrains it — the verification property
    [process_runs_unprivileged] catches this. *)

type faults = { skip_mode_switch : bool }

val no_faults : faults

val sys_tick_isr : Cpu.t -> Word32.t
(** Figure 8 (left): the system-timer handler. Requires handler mode.
    Forces CONTROL to privileged, synchronizes, and returns
    [0xFFFF_FFF9] — back to the kernel on MSP. *)

val svc_isr : ?faults:faults -> Cpu.t -> Word32.t
(** The supervisor-call handler. If the exception came from the kernel
    (LR = [exc_return_thread_msp]) this is the kernel's "switch to process"
    request: set CONTROL unprivileged and return onto PSP. Otherwise it is
    a process syscall: set CONTROL privileged and return to the kernel on
    MSP. *)

val generic_irq_isr : Cpu.t -> Word32.t
(** Peripheral-interrupt top half: like Tock's, it merely forces a return
    to the kernel (which runs the bottom half); returns to MSP. *)

val isr_for : exc_num:int -> Exn.isr
(** Vector-table dispatch used by {!preempt_process}. *)

(** {1 Modeled context switching (Figure 8, right)} *)

val switch_to_user_part1 : ?faults:faults -> Cpu.t -> process_sp:Word32.t -> regs_base:Word32.t -> unit
(** The first half of Tock's [switch_to_user]: save kernel callee-saved
    state and LR on MSP, install the process stack pointer into PSP, load
    the process's r4–r11 from its stored-state block at [regs_base], and
    take the SVC that completes the switch. Postcondition (checked): the
    CPU is in thread mode on PSP and — absent fault injection —
    unprivileged. *)

val process : Cpu.t -> seed:int -> steps:int -> accessible:Range.t list -> unit
(** An arbitrary process execution: havocs r0–r12 and performs [steps]
    random checked loads/stores at addresses drawn from the whole address
    space. Accesses denied by the MPU model fault and are counted, not
    propagated — modeling a process that {e attempts} escapes and is
    contained. With checking enabled, a store that lands {e outside}
    [accessible] yet is allowed by the MPU raises — the isolation
    property itself. *)

val preempt_process : Cpu.t -> exc_num:int -> unit
(** The paper's [preempt]: hardware exception entry, vectored ISR, exception
    return — verified to land back in the kernel. *)

val switch_to_user_part2 : Cpu.t -> regs_base:Word32.t -> unit
(** Second half of [switch_to_user]: store the process's r4–r11 back to its
    stored-state block and restore the kernel's callee-saved registers and
    LR from MSP. *)

val control_flow_kernel_to_kernel :
  ?faults:faults ->
  Cpu.t ->
  exc_num:int ->
  process_sp:Word32.t ->
  regs_base:Word32.t ->
  process_accessible:Range.t list ->
  seed:int ->
  (unit, string) result
(** Figure 8 (right): the complete kernel → process → kernel round trip.
    Requires privileged thread mode and [exc_num >= 15] (SysTick or an
    external interrupt). Returns the result of
    {!Cpu.cpu_state_correct} — [Ok] iff callee-saved registers, the kernel
    stack pointer and privileged execution are all restored. *)
