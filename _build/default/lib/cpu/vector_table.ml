(** The ARMv7-M vector table (B1.5.3).

    On real hardware, exception dispatch is a memory load: the core reads
    the handler address from [VTOR + 4*exception_number] (bit 0 set — Thumb)
    and branches to it. This module writes and reads that table in modeled
    flash, closing the last gap between {!Exn.preempt}'s ISR closure and
    what silicon does: with {!isr}, the "closure" is exactly a table fetch
    followed by machine-code execution. *)

let entry_count = 64

(** Write handler entries (exception number, entry address) at [base]; the
    stored word has the Thumb bit set, as the architecture requires. Word 0
    is the initial MSP; unset entries hold 0. *)
let install mem ~base entries =
  Memory.write32 mem base (Range.end_ Layout.kernel_sram);
  List.iter
    (fun (exc_num, entry) ->
      if exc_num < 1 || exc_num >= entry_count then invalid_arg "vector_table: exception";
      Memory.write32 mem (Word32.add base (4 * exc_num)) (entry lor 1))
    entries

let handler_entry mem ~base ~exc_num =
  if exc_num < 1 || exc_num >= entry_count then invalid_arg "vector_table: exception";
  let v = Memory.read32 mem (Word32.add base (4 * exc_num)) in
  v land lnot 1

let initial_msp mem ~base = Memory.read32 mem base

(** Hardware-faithful ISR: fetch the entry from the table (charged as a
    memory access, like the core's vector fetch) and execute the handler
    machine code at it. *)
let isr mem ~base ~exc_num : Exn.isr =
 fun cpu ->
  Cycles.tick ~n:Cycles.mem Cycles.global;
  let entry = handler_entry mem ~base ~exc_num in
  if entry = 0 then failwith (Printf.sprintf "vector_table: unset handler for %d" exc_num);
  Mc.run_handler cpu ~entry

(** Install the standard Tock table for an already-assembled handler set. *)
let install_for mem ~base (code : Handlers_mc.t) =
  install mem ~base
    ((Exn.exc_svc, Handlers_mc.isr_entry code ~exc_num:Exn.exc_svc)
     :: (Exn.exc_systick, Handlers_mc.isr_entry code ~exc_num:Exn.exc_systick)
     :: List.map
          (fun irq ->
            (16 + irq, Handlers_mc.isr_entry code ~exc_num:(16 + irq)))
          (List.init 32 Fun.id)
    @ [ (4, Handlers_mc.isr_entry code ~exc_num:4) (* MemManage *) ])
