(* FluxArm's CPU state and instruction semantics (Figure 7). *)

module C = Fluxarm.Cpu
module R = Fluxarm.Regs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fresh () = C.create (Memory.create ())

let test_initial_state () =
  let cpu = fresh () in
  check_bool "thread mode" true (C.mode cpu = C.Thread);
  check_bool "privileged" true (C.privileged cpu);
  check_int "msp at kernel stack top" (Range.end_ Layout.kernel_sram)
    (C.get_special cpu R.Msp);
  check_int "ipsr zero" 0 (C.exception_number cpu)

let test_gpr_roundtrip () =
  let cpu = fresh () in
  List.iteri (fun i r -> C.set cpu r (i * 1000)) R.all_gprs;
  List.iteri (fun i r -> check_int "gpr value" (i * 1000) (C.get cpu r)) R.all_gprs

let test_movw_movt () =
  let cpu = fresh () in
  C.movw_imm cpu R.R0 0xBEEF;
  check_int "movw clears top" 0xBEEF (C.get cpu R.R0);
  C.movt_imm cpu R.R0 0xDEAD;
  check_int "movt keeps bottom" 0xDEAD_BEEF (C.get cpu R.R0)

let test_movw_contract () =
  let cpu = fresh () in
  Verify.Violation.with_enabled true (fun () ->
      Alcotest.check_raises "immediate too wide"
        (Verify.Violation.Violation { site = "movw_imm"; detail = "immediate 65536" })
        (fun () -> C.movw_imm cpu R.R0 0x10000))

let test_add_sub () =
  let cpu = fresh () in
  C.movw_imm cpu R.R1 100;
  C.add_imm cpu R.R1 50;
  check_int "add" 150 (C.get cpu R.R1);
  C.sub_imm cpu R.R1 200;
  check_int "sub wraps" (Word32.sub 150 200) (C.get cpu R.R1)

let test_msr_mrs_psp () =
  let cpu = fresh () in
  let addr = Range.start Layout.app_sram + 0x100 in
  C.set cpu R.R0 addr;
  C.msr cpu R.Psp R.R0;
  check_int "psp written" addr (C.get_special cpu R.Psp);
  C.mrs cpu R.R5 R.Psp;
  check_int "mrs reads back" addr (C.get cpu R.R5)

let test_msr_sp_contract () =
  let cpu = fresh () in
  Verify.Violation.with_enabled true (fun () ->
      C.set cpu R.R0 0x0000_1000;
      (* flash, not RAM *)
      match C.msr cpu R.Psp R.R0 with
      | () -> Alcotest.fail "expected contract violation"
      | exception Verify.Violation.Violation v ->
        check_bool "right site" true (v.Verify.Violation.site = "msr: sp gets valid ram addr"))

let test_msr_ipsr_never_writable () =
  let cpu = fresh () in
  Verify.Violation.with_enabled true (fun () ->
      match C.msr cpu R.Ipsr R.R0 with
      | () -> Alcotest.fail "expected contract violation"
      | exception Verify.Violation.Violation _ -> ())

let test_control_pending_until_isb () =
  let cpu = fresh () in
  C.movw_imm cpu R.R0 1;
  C.msr cpu R.Control R.R0;
  (* architectural subtlety the model tracks: before the ISB, privilege
     checks still see the old CONTROL *)
  check_bool "still privileged before isb" true (C.privileged cpu);
  check_int "mrs sees pending value" 1 (C.get_special cpu R.Control);
  C.isb cpu;
  check_bool "unprivileged after isb" false (C.privileged cpu);
  check_int "committed" 1 (C.control_committed cpu)

let test_unprivileged_control_write_rejected () =
  let cpu = fresh () in
  Verify.Violation.with_enabled true (fun () ->
      (* drop privilege *)
      C.movw_imm cpu R.R0 1;
      C.msr cpu R.Control R.R0;
      C.isb cpu;
      C.movw_imm cpu R.R0 0;
      match C.msr cpu R.Control R.R0 with
      | () -> Alcotest.fail "unprivileged CONTROL write must violate"
      | exception Verify.Violation.Violation _ -> ())

let test_sp_selection () =
  let cpu = fresh () in
  let psp = Range.start Layout.app_sram + 0x200 in
  C.set cpu R.R0 psp;
  C.msr cpu R.Psp R.R0;
  check_int "thread spsel=0 uses msp" (C.get_special cpu R.Msp) (C.sp cpu);
  (* select PSP via CONTROL.SPSEL *)
  C.movw_imm cpu R.R1 2;
  C.msr cpu R.Control R.R1;
  C.isb cpu;
  check_int "thread spsel=1 uses psp" psp (C.sp cpu);
  C.set_mode cpu C.Handler;
  check_int "handler always msp" (C.get_special cpu R.Msp) (C.sp cpu)

let test_stack_ops () =
  let cpu = fresh () in
  C.movw_imm cpu R.R4 0x44;
  C.movw_imm cpu R.R5 0x55;
  let sp0 = C.sp cpu in
  C.stmdb_sp cpu [ R.R4; R.R5 ];
  check_int "sp descended" (sp0 - 8) (C.sp cpu);
  C.movw_imm cpu R.R4 0;
  C.movw_imm cpu R.R5 0;
  C.ldmia_sp cpu [ R.R4; R.R5 ];
  check_int "sp restored" sp0 (C.sp cpu);
  check_int "r4 restored" 0x44 (C.get cpu R.R4);
  check_int "r5 restored" 0x55 (C.get cpu R.R5)

let test_push_pop_special () =
  let cpu = fresh () in
  C.pseudo_ldr_special cpu R.Lr 0x1234_5678;
  let sp0 = C.sp cpu in
  C.push_special cpu R.Lr;
  C.pseudo_ldr_special cpu R.Lr 0;
  C.pop_special cpu R.Lr;
  check_int "lr restored" 0x1234_5678 (C.get_special cpu R.Lr);
  check_int "sp balanced" sp0 (C.sp cpu)

let test_ldr_str () =
  let cpu = fresh () in
  let base = Range.start Layout.app_sram in
  C.set cpu R.R1 base;
  C.movw_imm cpu R.R2 0xCAFE;
  C.str cpu R.R2 ~base:R.R1 ~offset:8;
  C.movw_imm cpu R.R3 0;
  C.ldr cpu R.R3 ~base:R.R1 ~offset:8;
  check_int "ldr/str roundtrip" 0xCAFE (C.get cpu R.R3)

let test_stmia_ldmia () =
  let cpu = fresh () in
  let base = Range.start Layout.app_sram + 64 in
  C.set cpu R.R1 base;
  List.iteri (fun i r -> C.set cpu r (0x40 + i)) R.callee_saved;
  C.stmia cpu ~base:R.R1 R.callee_saved;
  List.iter (fun r -> C.set cpu r 0) R.callee_saved;
  C.ldmia cpu ~base:R.R1 R.callee_saved;
  List.iteri (fun i r -> check_int "callee-saved roundtrip" (0x40 + i) (C.get cpu r))
    R.callee_saved

let test_snapshot_contract () =
  let cpu = fresh () in
  List.iteri (fun i r -> C.set cpu r i) R.callee_saved;
  let snap = C.snapshot cpu in
  check_bool "identical state correct" true (C.cpu_state_correct ~old:snap cpu = Ok ());
  C.set cpu R.R4 999;
  check_bool "clobbered callee-saved detected" true
    (C.cpu_state_correct ~old:snap cpu <> Ok ())

let suite =
  [
    Alcotest.test_case "initial state" `Quick test_initial_state;
    Alcotest.test_case "gpr roundtrip" `Quick test_gpr_roundtrip;
    Alcotest.test_case "movw/movt" `Quick test_movw_movt;
    Alcotest.test_case "movw contract" `Quick test_movw_contract;
    Alcotest.test_case "add/sub wrap" `Quick test_add_sub;
    Alcotest.test_case "msr/mrs psp" `Quick test_msr_mrs_psp;
    Alcotest.test_case "msr sp contract (Figure 7)" `Quick test_msr_sp_contract;
    Alcotest.test_case "msr ipsr never writable" `Quick test_msr_ipsr_never_writable;
    Alcotest.test_case "CONTROL pending until ISB" `Quick test_control_pending_until_isb;
    Alcotest.test_case "unprivileged CONTROL write rejected" `Quick
      test_unprivileged_control_write_rejected;
    Alcotest.test_case "stack-pointer selection" `Quick test_sp_selection;
    Alcotest.test_case "stmdb/ldmia on sp" `Quick test_stack_ops;
    Alcotest.test_case "push/pop special" `Quick test_push_pop_special;
    Alcotest.test_case "ldr/str" `Quick test_ldr_str;
    Alcotest.test_case "stmia/ldmia" `Quick test_stmia_ldmia;
    Alcotest.test_case "cpu_state_correct" `Quick test_snapshot_contract;
  ]
