(* The kernel event trace. *)

open Ticktock
open Apps.App_dsl
module K = Boards.Ticktock_arm

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let kernel_with_trace ?capacity () =
  let m = Machine.create_arm () in
  let tr = Trace.create ?capacity () in
  let caps, _ = Capsules.Board_set.standard () in
  let k =
    K.create ~mem:m.Machine.arm_mem ~hw:m.Machine.arm_mpu
      ~switcher:(Kernel.Arm_switch m.Machine.arm_cpu) ~capsules:caps ~trace:tr ()
  in
  (k, tr)

let create k ~name script =
  Result.get_ok
    (K.create_process k ~name ~payload:name ~program:(to_program script) ~min_ram:2048 ())

let test_ring_basics () =
  let tr = Trace.create ~capacity:4 () in
  for i = 0 to 9 do
    Trace.record tr ~tick:i (Trace.Scheduled i)
  done;
  check_int "recorded total" 10 (Trace.recorded tr);
  check_int "dropped" 6 (Trace.dropped tr);
  match Trace.events tr with
  | [ a; b; c; d ] ->
    check_int "oldest surviving" 6 a.Trace.at;
    check_int "newest" 9 d.Trace.at;
    ignore (b, c)
  | es -> Alcotest.failf "expected 4 events, got %d" (List.length es)

let test_lifecycle_events () =
  let k, tr = kernel_with_trace () in
  let p = create k ~name:"traced" (let* _ = sbrk 64 in return 3) in
  K.run k ~max_ticks:50;
  let events = List.map (fun e -> e.Trace.event) (Trace.events tr) in
  check_bool "created recorded" true
    (List.exists
       (function Trace.Created { pid; _ } -> pid = p.Process.pid | _ -> false)
       events);
  check_bool "scheduled recorded" true
    (List.exists (function Trace.Scheduled _ -> true | _ -> false) events);
  check_bool "syscall recorded" true
    (List.exists
       (function
         | Trace.Syscall { call = Userland.Memop { op; _ }; _ } -> op = Userland.memop_sbrk
         | _ -> false)
       events);
  check_bool "exit recorded" true
    (List.exists (function Trace.Exited { code; _ } -> code = 3 | _ -> false) events)

let test_fault_event () =
  let k, tr = kernel_with_trace () in
  let p = create k ~name:"crasher" (let* _ = load8 0 in return 0) in
  K.run k ~max_ticks:50;
  match Trace.faults tr with
  | [ (pid, reason) ] ->
    check_int "faulting pid" p.Process.pid pid;
    check_bool "reason mentions the mpu" true (String.length reason > 0)
  | fs -> Alcotest.failf "expected one fault, got %d" (List.length fs)

let test_upcall_event () =
  let k, tr = kernel_with_trace () in
  let _ =
    create k ~name:"alarmed"
      (let* _ = subscribe ~driver:4 ~upcall_id:0 in
       let* _ = command ~driver:4 ~cmd:1 ~arg1:2 () in
       let* _ = yield in
       return 0)
  in
  K.run k ~max_ticks:50;
  check_bool "upcall recorded" true
    (List.exists
       (fun e -> match e.Trace.event with Trace.Upcall _ -> true | _ -> false)
       (Trace.events tr))

let test_syscalls_of_filter () =
  let k, tr = kernel_with_trace () in
  let p =
    create k ~name:"s"
      (let* _ = memory_start in
       let* _ = memory_end in
       return 0)
  in
  K.run k ~max_ticks:50;
  check_int "two syscalls attributed" 2 (List.length (Trace.syscalls_of tr p.Process.pid))

let test_to_string_renders () =
  let k, tr = kernel_with_trace () in
  let _ = create k ~name:"r" (return 0) in
  K.run k ~max_ticks:10;
  let s = Trace.to_string tr in
  check_bool "mentions created" true
    (let needle = "created" in
     let n = String.length needle in
     let rec go i = i + n <= String.length s && (String.sub s i n = needle || go (i + 1)) in
     go 0)

let suite =
  [
    Alcotest.test_case "ring buffer basics" `Quick test_ring_basics;
    Alcotest.test_case "lifecycle events" `Quick test_lifecycle_events;
    Alcotest.test_case "fault event" `Quick test_fault_event;
    Alcotest.test_case "upcall event" `Quick test_upcall_event;
    Alcotest.test_case "per-pid syscall filter" `Quick test_syscalls_of_filter;
    Alcotest.test_case "rendering" `Quick test_to_string_renders;
  ]
