(* Fault-status latching: what Tock's hard-fault report is built from. *)

open Ticktock
open Apps.App_dsl
module S = Mpu_hw.Scb

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_unit_semantics () =
  let scb = S.create () in
  check_int "clean cfsr" 0 (S.cfsr scb);
  S.record_memfault scb ~addr:0x2000_0123 ~access:Perms.Write;
  check_bool "daccviol set" true (S.cfsr scb land S.daccviol <> 0);
  check_bool "mmfar valid" true (S.mmfar_valid scb);
  check_int "mmfar holds the address" 0x2000_0123 (S.mmfar scb);
  S.record_memfault scb ~addr:0x0000_0000 ~access:Perms.Execute;
  check_bool "iaccviol accumulates" true (S.cfsr scb land S.iaccviol <> 0);
  check_int "two faults" 2 (S.fault_count scb);
  (* write-one-to-clear *)
  S.clear_cfsr scb S.daccviol;
  check_bool "daccviol cleared" true (S.cfsr scb land S.daccviol = 0);
  check_bool "iaccviol survives" true (S.cfsr scb land S.iaccviol <> 0)

let test_bus_latches_process_fault () =
  (* a process MPU violation must leave the faulting address in MMFAR *)
  let m, k = Boards.make_ticktock_arm () in
  let scb = m.Machine.arm_scb in
  let target = Range.start Layout.kernel_sram + 0x40 in
  let p =
    Result.get_ok
      (Boards.Ticktock_arm.create_process k ~name:"violator" ~payload:"v"
         ~program:(to_program (let* _ = store8 target 1 in return 0))
         ~min_ram:2048 ())
  in
  Boards.Ticktock_arm.run k ~max_ticks:50;
  check_bool "process faulted" true
    (match p.Process.state with Process.Faulted _ -> true | _ -> false);
  check_bool "daccviol latched" true (S.cfsr scb land S.daccviol <> 0);
  check_int "MMFAR = the attacked kernel address" target (S.mmfar scb)

let test_clean_run_latches_nothing () =
  let m, k = Boards.make_ticktock_arm () in
  let _ =
    Result.get_ok
      (Boards.Ticktock_arm.create_process k ~name:"clean" ~payload:"c"
         ~program:(to_program (let* ms = memory_start in
                               let* _ = store8 ms 1 in
                               return 0))
         ~min_ram:2048 ())
  in
  Boards.Ticktock_arm.run k ~max_ticks:50;
  check_int "no faults recorded" 0 (S.fault_count m.Machine.arm_scb)

let test_execute_fault_from_mc_fetch () =
  (* an unprivileged instruction fetch from kernel flash latches IACCVIOL *)
  let m, _, _ = Proofs.Interrupts.fresh_machine () in
  let cpu = m.Machine.arm_cpu in
  Fluxarm.Cpu.movw_imm cpu Fluxarm.Regs.R0 1;
  Fluxarm.Cpu.msr cpu Fluxarm.Regs.Control Fluxarm.Regs.R0;
  Fluxarm.Cpu.isb cpu;
  Fluxarm.Cpu.set_special_raw cpu Fluxarm.Regs.Pc 0x1000;
  (match Fluxarm.Mc.step cpu with
  | exception Memory.Access_fault _ -> ()
  | _ -> Alcotest.fail "expected fetch fault");
  check_bool "iaccviol latched" true (S.cfsr m.Machine.arm_scb land S.iaccviol <> 0)

let suite =
  [
    Alcotest.test_case "register semantics" `Quick test_unit_semantics;
    Alcotest.test_case "bus latches process faults" `Quick test_bus_latches_process_fault;
    Alcotest.test_case "clean runs latch nothing" `Quick test_clean_run_latches_nothing;
    Alcotest.test_case "execute fault from fetch" `Quick test_execute_fault_from_mc_fetch;
  ]
