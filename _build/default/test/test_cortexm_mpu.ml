(* TickTock's granular Cortex-M driver: the hardware dance, isolated. *)

open Ticktock
module M = Cortexm_mpu
module R = Cortexm_region

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let base = 0x2000_8000
let rw = Perms.Read_write_only

let combined (r0, r1) =
  Option.value (R.size r0) ~default:0 + Option.value (R.size r1) ~default:0

let test_new_regions_small () =
  (* sizes <= 128 use a single whole region, no subregions *)
  match M.new_regions ~max_region_id:1 ~unalloc_start:base ~unalloc_size:0x4000 ~total_size:100
          ~perms:rw with
  | Some (r0, r1) ->
    check_bool "fst set" true (R.is_set r0);
    check_bool "snd unset" false (R.is_set r1);
    Alcotest.(check (option int)) "rounded to pow2" (Some 128) (R.size r0)
  | None -> Alcotest.fail "allocation failed"

let test_new_regions_subregions () =
  match M.new_regions ~max_region_id:1 ~unalloc_start:base ~unalloc_size:0x8000
          ~total_size:4096 ~perms:rw with
  | Some (r0, r1) ->
    check_int "covers exactly the request" 4096 (combined (r0, r1));
    Alcotest.(check (option int)) "starts at the aligned base" (Some base) (R.start r0)
  | None -> Alcotest.fail "allocation failed"

let test_new_regions_two_regions () =
  (* a request needing more than 8 subregions spills into the second region *)
  match M.new_regions ~max_region_id:1 ~unalloc_start:base ~unalloc_size:0x8000
          ~total_size:6144 ~perms:rw with
  | Some (r0, r1) ->
    check_bool "both set" true (R.is_set r0 && R.is_set r1);
    check_int "combined covers request" 6144 (combined (r0, r1));
    check_bool "contiguous" true
      (R.start r1 = Some (Option.get (R.start r0) + Option.get (R.size r0)))
  | None -> Alcotest.fail "allocation failed"

let test_new_regions_aligns_start () =
  match M.new_regions ~max_region_id:1 ~unalloc_start:(base + 100) ~unalloc_size:0x8000
          ~total_size:4096 ~perms:rw with
  | Some (r0, _) ->
    let s = Option.get (R.start r0) in
    check_bool "start aligned up" true (s >= base + 100 && Math32.is_aligned s ~align:2048)
  | None -> Alcotest.fail "allocation failed"

let test_new_regions_out_of_memory () =
  check_bool "refuses when it cannot fit" true
    (M.new_regions ~max_region_id:1 ~unalloc_start:base ~unalloc_size:1024 ~total_size:4096
       ~perms:rw
    = None)

let test_new_regions_ids () =
  match M.new_regions ~max_region_id:3 ~unalloc_start:base ~unalloc_size:0x8000
          ~total_size:6144 ~perms:rw with
  | Some (r0, r1) ->
    check_int "fst id" 2 (R.region_id r0);
    check_int "snd id" 3 (R.region_id r1)
  | None -> Alcotest.fail "allocation failed"

let test_update_regions_grow_shrink () =
  (* create at 4096, then grow within the same alignment envelope *)
  match M.new_regions ~max_region_id:1 ~unalloc_start:base ~unalloc_size:0x8000
          ~total_size:8192 ~perms:rw with
  | None -> Alcotest.fail "setup failed"
  | Some (r0, _) ->
    let start = Option.get (R.start r0) in
    (match M.update_regions ~max_region_id:1 ~region_start:start ~available_size:0x4000
             ~total_size:2048 ~perms:rw with
    | Some pair -> check_int "shrink to 2048" 2048 (combined pair)
    | None -> Alcotest.fail "shrink failed");
    (match M.update_regions ~max_region_id:1 ~region_start:start ~available_size:0x4000
             ~total_size:7000 ~perms:rw with
    | Some pair ->
      check_bool "grow rounds to subregion granularity" true (combined pair >= 7000)
    | None -> Alcotest.fail "grow failed")

let test_update_regions_respects_available () =
  check_bool "refuses beyond available" true
    (M.update_regions ~max_region_id:1 ~region_start:base ~available_size:1000
       ~total_size:4096 ~perms:rw
    = None)

let test_create_exact_pow2 () =
  match M.create_exact_region ~region_id:2 ~start:0x0002_0000 ~size:1024
          ~perms:Perms.Read_execute_only with
  | Some r ->
    check_bool "exact" true
      (R.can_access r ~start:0x0002_0000 ~end_:0x0002_0400 ~perms:Perms.Read_execute_only)
  | None -> Alcotest.fail "exact region failed"

let test_create_exact_subregions () =
  (* 1536 = 3 subregions of a 4096 block: representable exactly *)
  match M.create_exact_region ~region_id:2 ~start:0x0002_0000 ~size:1536
          ~perms:Perms.Read_execute_only with
  | Some r -> Alcotest.(check (option int)) "exact size" (Some 1536) (R.size r)
  | None -> Alcotest.fail "subregion-exact region failed"

let test_create_exact_unrepresentable () =
  check_bool "odd size refused" true
    (M.create_exact_region ~region_id:2 ~start:0x0002_0000 ~size:1000
       ~perms:Perms.Read_execute_only
    = None);
  check_bool "unaligned refused" true
    (M.create_exact_region ~region_id:2 ~start:0x0002_0020 ~size:1024
       ~perms:Perms.Read_execute_only
    = None)

let test_configure_mpu_writes_hardware () =
  let hw = Mpu_hw.Armv7m_mpu.create () in
  let regions = Array.init 8 (fun i -> R.empty ~region_id:i) in
  (match M.new_regions ~max_region_id:1 ~unalloc_start:base ~unalloc_size:0x8000
           ~total_size:4096 ~perms:rw with
  | Some (r0, r1) ->
    regions.(0) <- r0;
    regions.(1) <- r1
  | None -> Alcotest.fail "setup failed");
  M.configure_mpu hw regions;
  M.enable hw;
  (match Mpu_hw.Armv7m_mpu.accessible_ranges hw Perms.Read with
  | [ r ] -> check_int "hardware enforces the descriptor" 4096 (Range.size r)
  | rs -> Alcotest.failf "expected one range, got %d" (List.length rs));
  M.disable hw;
  check_bool "disable" false (Mpu_hw.Armv7m_mpu.enabled hw)

(* Property: the refined contract — combined accessible size always covers
   the request and starts within the unallocated block. *)
let prop_new_regions_contract =
  QCheck.Test.make ~name:"new_regions covers request inside block" ~count:300
    (QCheck.pair (QCheck.int_range 32 8192) (QCheck.int_range 0 4096))
    (fun (total, slack) ->
      match
        M.new_regions ~max_region_id:1 ~unalloc_start:(base + slack) ~unalloc_size:0x10000
          ~total_size:total ~perms:rw
      with
      | None -> true
      | Some (r0, r1) ->
        let s = Option.get (R.start r0) in
        s >= base + slack
        && combined (r0, r1) >= total
        && s + combined (r0, r1) <= base + slack + 0x10000)

let suite =
  [
    Alcotest.test_case "small whole region" `Quick test_new_regions_small;
    Alcotest.test_case "subregion coverage" `Quick test_new_regions_subregions;
    Alcotest.test_case "two-region spill" `Quick test_new_regions_two_regions;
    Alcotest.test_case "start alignment" `Quick test_new_regions_aligns_start;
    Alcotest.test_case "out of memory" `Quick test_new_regions_out_of_memory;
    Alcotest.test_case "region ids" `Quick test_new_regions_ids;
    Alcotest.test_case "update grow/shrink" `Quick test_update_regions_grow_shrink;
    Alcotest.test_case "update respects available" `Quick test_update_regions_respects_available;
    Alcotest.test_case "exact region (pow2)" `Quick test_create_exact_pow2;
    Alcotest.test_case "exact region (subregions)" `Quick test_create_exact_subregions;
    Alcotest.test_case "exact region unrepresentable" `Quick test_create_exact_unrepresentable;
    Alcotest.test_case "configure_mpu reaches hardware" `Quick test_configure_mpu_writes_hardware;
    QCheck_alcotest.to_alcotest prop_new_regions_contract;
  ]
