(* The §6.1 differential-testing result and the full attack matrix. *)

open Ticktock

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_suite_has_21_apps () =
  check_int "21 release tests" 21 (List.length Apps.Suite.all);
  check_int "5 layout-sensitive" 5 (List.length Apps.Suite.expected_differing)

let difftest () =
  let left = Apps.Difftest.run_suite (Boards.instance_ticktock_arm ()) in
  let right = Apps.Difftest.run_suite (Boards.instance_tock_arm ()) in
  Apps.Difftest.compare_suites ~left ~right

let test_five_of_21_differ () =
  let rows = difftest () in
  let differing = List.filter (fun c -> c.Apps.Difftest.differs) rows in
  check_int "exactly 5 of 21 differ (the paper's result)" 5 (List.length differing);
  List.iter
    (fun c ->
      check_bool
        (c.Apps.Difftest.test_name ^ ": differing test is layout-sensitive")
        true c.Apps.Difftest.layout_sensitive)
    differing

let test_all_tests_complete () =
  List.iter
    (fun c ->
      check_bool (c.Apps.Difftest.test_name ^ " completed on both kernels") true
        c.Apps.Difftest.both_completed)
    (difftest ())

let test_fault_expectations () =
  let results = Apps.Difftest.run_suite (Boards.instance_ticktock_arm ()) in
  List.iter
    (fun (r : Apps.Difftest.app_result) ->
      check_bool
        (r.app.Apps.Suite.app_name ^ ": faulted iff expected")
        r.app.Apps.Suite.expect_fault r.faulted)
    results

let test_suite_deterministic () =
  let a = Apps.Difftest.run_suite (Boards.instance_ticktock_arm ()) in
  let b = Apps.Difftest.run_suite (Boards.instance_ticktock_arm ()) in
  List.iter2
    (fun (x : Apps.Difftest.app_result) (y : Apps.Difftest.app_result) ->
      Alcotest.(check string) (x.app.Apps.Suite.app_name ^ " deterministic") x.output y.output)
    a b

let test_riscv_suite_runs () =
  (* the paper ran RISC-V under QEMU: every app must run to completion *)
  let results = Apps.Difftest.run_suite (Boards.instance_ticktock_qemu ()) in
  List.iter
    (fun (r : Apps.Difftest.app_result) ->
      check_bool (r.app.Apps.Suite.app_name ^ " completed on qemu-rv32") true
        (r.load_error = None && (r.exit_code <> None || r.faulted)))
    results

let test_mc_switch_equivalent () =
  (* the machine-code context switch must be observationally identical to
     the method-level model: every app output matches exactly *)
  let a = Apps.Difftest.run_suite (Boards.instance_ticktock_arm ()) in
  let b = Apps.Difftest.run_suite (Boards.instance_ticktock_arm_mc ()) in
  List.iter2
    (fun (x : Apps.Difftest.app_result) (y : Apps.Difftest.app_result) ->
      Alcotest.(check string)
        (x.app.Apps.Suite.app_name ^ ": mc switch = model switch")
        x.output y.output;
      Alcotest.(check string) (x.app.Apps.Suite.app_name ^ " state") x.state y.state)
    a b

(* --- attacks --- *)

let outcome kernel attack =
  Verify.Violation.with_enabled false (fun () -> Apps.Attacks.run_attack kernel attack)

let find name = List.find (fun (a : Apps.Attacks.attack) -> a.attack_name = name) Apps.Attacks.all

let test_grant_overlap_matrix () =
  let a = find "grant_overlap" in
  check_bool "lands on upstream tock-arm" true
    (outcome (fun () -> Boards.instance_tock_arm ()) a = Apps.Attacks.Broken_isolation);
  check_bool "contained by patched tock-arm" true
    (outcome (fun () -> Boards.instance_tock_arm_patched ()) a = Apps.Attacks.Contained_fault);
  check_bool "contained by ticktock" true
    (outcome (fun () -> Boards.instance_ticktock_arm ()) a = Apps.Attacks.Contained_fault)

let test_brk_underflow_matrix () =
  let a = find "brk_underflow" in
  (match outcome (fun () -> Boards.instance_tock_arm ()) a with
  | Apps.Attacks.Kernel_dos _ -> ()
  | o -> Alcotest.failf "expected DoS on upstream, got %s" (Apps.Attacks.outcome_to_string o));
  check_bool "patched contains" true
    (outcome (fun () -> Boards.instance_tock_arm_patched ()) a = Apps.Attacks.Contained);
  check_bool "ticktock contains" true
    (outcome (fun () -> Boards.instance_ticktock_arm ()) a = Apps.Attacks.Contained)

let test_pmp_above_brk_matrix () =
  let a = find "pmp_above_brk" in
  check_bool "lands on upstream tock-pmp" true
    (outcome (fun () -> Boards.instance_tock_pmp ()) a = Apps.Attacks.Broken_isolation);
  check_bool "contained by patched tock-pmp" true
    (outcome (fun () -> Boards.instance_tock_pmp_patched ()) a = Apps.Attacks.Contained_fault);
  check_bool "contained by ticktock-e310" true
    (outcome (fun () -> Boards.instance_ticktock_e310 ()) a = Apps.Attacks.Contained_fault)

let test_universal_attacks_contained_everywhere () =
  List.iter
    (fun name ->
      let a = find name in
      List.iter
        (fun (kname, make) ->
          match outcome make a with
          | Apps.Attacks.Contained | Apps.Attacks.Contained_fault -> ()
          | o ->
            Alcotest.failf "%s on %s: %s" name kname (Apps.Attacks.outcome_to_string o))
        Boards.all_instances)
    [ "kernel_reader"; "flash_writer"; "neighbour_reader" ]

let test_ticktock_contains_every_attack () =
  List.iter
    (fun (a : Apps.Attacks.attack) ->
      match outcome (fun () -> Boards.instance_ticktock_arm ()) a with
      | Apps.Attacks.Contained | Apps.Attacks.Contained_fault -> ()
      | o ->
        Alcotest.failf "ticktock-arm vs %s: %s" a.attack_name
          (Apps.Attacks.outcome_to_string o))
    Apps.Attacks.all

let suite =
  [
    Alcotest.test_case "suite inventory" `Quick test_suite_has_21_apps;
    Alcotest.test_case "5 of 21 differ (§6.1)" `Slow test_five_of_21_differ;
    Alcotest.test_case "all tests complete" `Slow test_all_tests_complete;
    Alcotest.test_case "fault expectations" `Slow test_fault_expectations;
    Alcotest.test_case "suite deterministic" `Slow test_suite_deterministic;
    Alcotest.test_case "riscv (qemu) suite runs" `Slow test_riscv_suite_runs;
    Alcotest.test_case "mc switch observationally equal" `Slow test_mc_switch_equivalent;
    Alcotest.test_case "grant overlap attack matrix" `Slow test_grant_overlap_matrix;
    Alcotest.test_case "brk underflow attack matrix" `Slow test_brk_underflow_matrix;
    Alcotest.test_case "pmp above-brk attack matrix" `Slow test_pmp_above_brk_matrix;
    Alcotest.test_case "universal attacks contained" `Slow
      test_universal_attacks_contained_everywhere;
    Alcotest.test_case "ticktock contains every attack" `Slow
      test_ticktock_contains_every_attack;
  ]
