test/test_armv8m.ml: Alcotest Apps Armv8m_mpu_drv Armv8m_region Boards Instance Kerror List Math32 Mpu_hw Option Perms Process QCheck QCheck_alcotest Range Ticktock Userland Verify
