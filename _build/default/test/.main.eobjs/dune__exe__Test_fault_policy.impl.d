test/test_fault_policy.ml: Alcotest Apps Boards Kerror Layout Process Range String Ticktock
