test/test_golden_arch.ml: Alcotest Apps Boards List Ticktock Verify
