test/test_armv7m_mpu.ml: Alcotest List Mpu_hw Perms Printf QCheck QCheck_alcotest Range Word32
