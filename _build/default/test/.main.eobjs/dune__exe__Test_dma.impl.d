test/test_dma.ml: Alcotest Dma Layout Memory Range Ticktock Verify
