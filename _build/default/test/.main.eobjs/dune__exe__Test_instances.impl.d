test/test_instances.ml: Alcotest Apps Boards Instance Kerror List Result Ticktock Verify
