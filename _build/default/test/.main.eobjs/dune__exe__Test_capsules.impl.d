test/test_capsules.ml: Alcotest Apps Boards Capsule_intf Capsules Char Instance Kerror List Mpu_hw Option Printf String Ticktock Userland
