test/test_cortexm_region.ml: Alcotest Cortexm_region Mpu_hw Perms QCheck QCheck_alcotest Range Ticktock Verify Word32
