test/test_golden.ml: Alcotest Apps Boards List Ticktock Verify
