test/test_math32.ml: Alcotest Math32 QCheck QCheck_alcotest
