test/test_mc.ml: Alcotest Fluxarm Layout List Memory Perms Printf Range Ticktock Verify
