test/test_app_dsl.ml: Alcotest Apps Boards Char Fun Instance Layout List Option QCheck QCheck_alcotest Range Result Ticktock Userland Word32
