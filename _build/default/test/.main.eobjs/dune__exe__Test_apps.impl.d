test/test_apps.ml: Alcotest Apps Boards List Ticktock Verify
