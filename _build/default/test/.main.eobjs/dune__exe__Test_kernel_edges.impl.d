test/test_kernel_edges.ml: Alcotest Apps Boards Instance Kerror Layout List Option Printf Result Ticktock Userland
