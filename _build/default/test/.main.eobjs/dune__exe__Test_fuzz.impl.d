test/test_fuzz.ml: Alcotest Apps Boards List Printf Ticktock Verify
