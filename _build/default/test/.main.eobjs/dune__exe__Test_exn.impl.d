test/test_exn.ml: Alcotest Fluxarm Layout Memory Mpu_hw Range Ticktock Verify Word32
