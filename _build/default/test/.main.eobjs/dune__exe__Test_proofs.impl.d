test/test_proofs.ml: Alcotest List Proofs String Ticktock Verify
