test/test_kernel.ml: Alcotest Apps Boards Instance Kerror Layout List Option Printf Range String Ticktock Userland
