test/test_loader.ml: Alcotest Apps Kerror Layout List Loader Math32 Memory Printf Range Result String Ticktock
