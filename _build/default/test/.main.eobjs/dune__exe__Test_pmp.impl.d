test/test_pmp.ml: Alcotest List Mpu_hw Perms QCheck QCheck_alcotest Range
