test/test_word32.ml: Alcotest QCheck QCheck_alcotest Word32
