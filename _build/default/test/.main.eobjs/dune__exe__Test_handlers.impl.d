test/test_handlers.ml: Alcotest Fluxarm Layout List Memory Range Ticktock Verify Word32
