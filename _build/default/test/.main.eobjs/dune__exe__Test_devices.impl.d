test/test_devices.ml: Alcotest Char Mpu_hw
