test/test_app_breaks.ml: Alcotest App_breaks QCheck QCheck_alcotest Range Ticktock Verify
