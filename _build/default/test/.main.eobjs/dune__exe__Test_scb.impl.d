test/test_scb.ml: Alcotest Apps Boards Fluxarm Layout Machine Memory Mpu_hw Perms Process Proofs Range Result Ticktock
