test/test_trace.ml: Alcotest Apps Boards Capsules Kernel List Machine Process Result String Ticktock Trace Userland
