test/test_memory.ml: Alcotest Memory Perms
