test/test_thumb.ml: Alcotest Fluxarm Format List Memory QCheck QCheck_alcotest Result
