test/test_range.ml: Alcotest QCheck QCheck_alcotest Range Word32
