test/test_tock_mpu.ml: Alcotest Math32 Option Perms Region_intf Ticktock Tock_cortexm_mpu Tock_pmp_mpu Word32
