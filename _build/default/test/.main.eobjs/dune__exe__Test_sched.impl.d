test/test_sched.ml: Alcotest Apps Boards Kernel Kerror Layout List Loader Machine Memory Process Range Result String Ticktock Userland
