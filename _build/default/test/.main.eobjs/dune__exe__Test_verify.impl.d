test/test_verify.ml: Alcotest List Seq Verify
