test/test_timer_hw.ml: Alcotest Fluxarm List Mpu_hw Ticktock
