test/main.mli:
