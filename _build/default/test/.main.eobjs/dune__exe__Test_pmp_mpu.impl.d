test/test_pmp_mpu.ml: Alcotest List Math32 Mpu_hw Perms Pmp_mpu Pmp_region QCheck QCheck_alcotest Range Region_intf Ticktock Verify Word32
