test/test_cortexm_mpu.ml: Alcotest Array Cortexm_mpu Cortexm_region List Math32 Mpu_hw Option Perms QCheck QCheck_alcotest Range Ticktock
