test/test_cpu.ml: Alcotest Fluxarm Layout List Memory Range Verify Word32
