test/test_epmp.ml: Alcotest Apps Boards Epmp Kerror Layout Machine Mpu_hw Perms Pmp_mpu Process Range Ticktock
