test/test_allocator.ml: Alcotest App_mem_alloc Cortexm_mpu Kerror List Math32 Mpu_hw Option Perms QCheck QCheck_alcotest Range Result Ticktock Tock_allocator Verify Word32
