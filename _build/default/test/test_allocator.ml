(* The allocators: TickTock's granular AppMemoryAllocator (Figure 4b) and
   Tock's monolithic baseline — including the disagreement between them. *)

open Ticktock
module A = App_mem_alloc.Make (Cortexm_mpu)
module T = Tock_allocator.Upstream_cortexm

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let base = 0x2000_8000
let flash = 0x0002_0000

let allocate ?(min_size = 4096) ?(app_size = 4096) ?(kernel_size = 1024) () =
  A.allocate_app_memory ~unalloc_start:base ~unalloc_size:0x20000 ~min_size ~app_size
    ~kernel_size ~flash_start:flash ~flash_size:1024

let get = function Ok x -> x | Error e -> Alcotest.failf "alloc failed: %a" Kerror.pp e

let test_allocate_layout () =
  let a = get (allocate ()) in
  check_int "memory_start" base (A.memory_start a);
  check_int "app_break covers request" (base + 4096) (A.app_break a);
  check_int "block = app + kernel reserve" (4096 + 1024) (A.memory_size a);
  check_int "kernel_break at block end" (base + 5120) (A.kernel_break a)

let test_allocate_view_matches_hardware () =
  (* the anti-disagreement property: the logical view equals what the MPU
     enforces, via the hardware model *)
  let a = get (allocate ()) in
  let hw = Mpu_hw.Armv7m_mpu.create () in
  A.configure_mpu hw a;
  let enforced = Mpu_hw.Armv7m_mpu.accessible_ranges hw Perms.Write in
  (match enforced with
  | [ r ] ->
    check_int "hw write start" (A.memory_start a) (Range.start r);
    check_int "hw write end" (A.app_break a) (Range.end_ r)
  | rs -> Alcotest.failf "expected one writable range, got %d" (List.length rs));
  match Mpu_hw.Armv7m_mpu.accessible_ranges hw Perms.Execute with
  | [ fr ] ->
    check_int "flash exec start" flash (Range.start fr);
    check_int "flash exec size" 1024 (Range.size fr)
  | rs -> Alcotest.failf "expected one executable range, got %d" (List.length rs)

let test_brk_grow_and_shrink () =
  let a = get (allocate ~min_size:8192 ~app_size:4096 ()) in
  (match A.brk a ~new_app_break:(base + 2048) with
  | Ok b -> check_int "shrink lands on subregion boundary" (base + 2048) b
  | Error e -> Alcotest.failf "shrink failed: %a" Kerror.pp e);
  (match A.brk a ~new_app_break:(base + 6000) with
  | Ok b -> check_bool "grow rounds up within envelope" true (b >= base + 6000)
  | Error e -> Alcotest.failf "grow failed: %a" Kerror.pp e);
  check_bool "break tracked" true (A.app_break a >= base + 6000)

let test_brk_validation () =
  let a = get (allocate ()) in
  check_bool "below memory_start refused" true
    (A.brk a ~new_app_break:(base - 64) = Error Kerror.Invalid_brk);
  check_bool "at kernel_break refused" true
    (A.brk a ~new_app_break:(A.kernel_break a) = Error Kerror.Invalid_brk);
  (* the §2.2 malicious input: a wrapped pointer *)
  check_bool "wrapped pointer refused" true
    (A.brk a ~new_app_break:(Word32.sub base 1) = Error Kerror.Invalid_brk)

let test_sbrk () =
  (* allocation establishes the envelope with the break at its top; pull it
     down first (as the kernel's create does), then grow back within it *)
  let a = get (allocate ~min_size:8192 ~app_size:4096 ()) in
  (match A.brk a ~new_app_break:(base + 4096) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "brk down failed: %a" Kerror.pp e);
  (match A.sbrk a ~delta:512 with
  | Ok b -> check_bool "sbrk grows" true (b >= base + 4608)
  | Error e -> Alcotest.failf "sbrk failed: %a" Kerror.pp e);
  (match A.sbrk a ~delta:(-4096) with
  | Ok b -> check_bool "sbrk shrinks" true (b < base + 4096)
  | Error e -> Alcotest.failf "sbrk shrink failed: %a" Kerror.pp e);
  check_bool "growth beyond the envelope refused" true
    (Result.is_error (A.brk a ~new_app_break:(base + 8704)))

let test_allocate_grant () =
  let a = get (allocate ()) in
  let kb0 = A.kernel_break a in
  (match A.allocate_grant a ~size:128 ~align:8 with
  | Ok g ->
    check_bool "grant below previous break" true (g <= kb0 - 128);
    check_bool "aligned" true (Math32.is_aligned g ~align:8);
    check_int "kernel_break moved down" g (A.kernel_break a)
  | Error e -> Alcotest.failf "grant failed: %a" Kerror.pp e);
  (* exhaustion: grants cannot cross the app break *)
  let rec drain n =
    if n = 0 then Alcotest.fail "grant never exhausted"
    else
      match A.allocate_grant a ~size:256 ~align:8 with
      | Ok _ -> drain (n - 1)
      | Error Kerror.Grant_exhausted -> ()
      | Error e -> Alcotest.failf "unexpected error: %a" Kerror.pp e
  in
  drain 100;
  check_bool "app_break < kernel_break preserved" true (A.app_break a < A.kernel_break a)

let test_buffer_builders () =
  let a = get (allocate ()) in
  (match A.build_readwrite_buffer a ~addr:(base + 100) ~len:64 with
  | Ok buf -> check_int "rw buffer" 64 (Range.size buf)
  | Error e -> Alcotest.failf "rw buffer failed: %a" Kerror.pp e);
  check_bool "rw in flash refused" true
    (A.build_readwrite_buffer a ~addr:flash ~len:16 = Error Kerror.Invalid_buffer);
  check_bool "ro in flash ok" true
    (match A.build_readonly_buffer a ~addr:flash ~len:16 with Ok _ -> true | Error _ -> false);
  check_bool "buffer crossing app_break refused" true
    (A.build_readwrite_buffer a ~addr:(A.app_break a - 8) ~len:16 = Error Kerror.Invalid_buffer);
  check_bool "buffer in grant refused" true
    (A.build_readwrite_buffer a ~addr:(A.kernel_break a) ~len:4 = Error Kerror.Invalid_buffer);
  check_bool "negative length refused" true
    (A.build_readonly_buffer a ~addr:base ~len:(-1) = Error Kerror.Invalid_buffer);
  check_bool "wrapping buffer refused" true
    (A.build_readwrite_buffer a ~addr:Word32.max_value ~len:16 = Error Kerror.Invalid_buffer)

let test_flash_error () =
  check_bool "unrepresentable flash refused" true
    (match
       A.allocate_app_memory ~unalloc_start:base ~unalloc_size:0x20000 ~min_size:4096
         ~app_size:4096 ~kernel_size:1024 ~flash_start:(flash + 20) ~flash_size:1000
     with
    | Error Kerror.Flash_error -> true
    | Ok _ | Error _ -> false)

let test_out_of_memory () =
  check_bool "oom" true
    (match
       A.allocate_app_memory ~unalloc_start:base ~unalloc_size:4096 ~min_size:4096
         ~app_size:4096 ~kernel_size:1024 ~flash_start:flash ~flash_size:1024
     with
    | Error e -> e = Kerror.Out_of_memory || e = Kerror.Heap_error
    | Ok _ -> false)

(* --- the monolithic baseline and its disagreement --- *)

let tock_allocate ?(min_size = 512) ?(app_size = 7680) ?(kernel_size = 512) () =
  T.allocate_app_memory ~unalloc_start:base ~unalloc_size:0x20000 ~min_size ~app_size
    ~kernel_size ~flash_start:flash ~flash_size:1024

let test_tock_disagreement () =
  (* the kernel's recomputed app_break vs what the hardware enforces *)
  let t = get (tock_allocate ()) in
  let recomputed = T.app_break t in
  let enforced = Option.get (T.enabled_subregions_end t) in
  check_bool "DISAGREEMENT: hardware enforces more than the kernel believes" true
    (enforced > recomputed);
  (* ... and with the buggy geometry, enforcement even reaches into space the
     kernel will hand to grants *)
  check_bool "enforced end reaches grant-reserve space" true
    (enforced > T.memory_start t + T.memory_size t - 512)

let test_ticktock_no_disagreement () =
  let a = get (allocate ~min_size:512 ~app_size:7680 ~kernel_size:512 ()) in
  let hw = Mpu_hw.Armv7m_mpu.create () in
  A.configure_mpu hw a;
  match Mpu_hw.Armv7m_mpu.accessible_ranges hw Perms.Write with
  | [ r ] -> check_int "hardware agrees with AppBreaks exactly" (A.app_break a) (Range.end_ r)
  | rs -> Alcotest.failf "expected one range, got %d" (List.length rs)

let test_tock_brk_writes_hardware () =
  let t = get (tock_allocate ~app_size:2048 ~kernel_size:1024 ()) in
  let hw = Mpu_hw.Armv7m_mpu.create () in
  match T.brk t hw ~new_app_break:(T.memory_start t + 3000) with
  | Ok _ ->
    Mpu_hw.Armv7m_mpu.set_enabled hw true;
    check_bool "redundant setup_mpu wrote the registers" true
      (Mpu_hw.Armv7m_mpu.accessible_ranges hw Perms.Write <> [])
  | Error e -> Alcotest.failf "tock brk failed: %a" Kerror.pp e

(* Property: for any sequence of legal operations, the allocator invariant
   (checked inside on every step) never fires. *)
let prop_lifecycle_invariants =
  QCheck.Test.make ~name:"granular allocator invariants under random ops" ~count:200
    (QCheck.list_of_size (QCheck.Gen.int_range 1 12)
       (QCheck.triple QCheck.small_nat QCheck.bool QCheck.small_nat))
    (fun ops ->
      Verify.Violation.with_enabled true (fun () ->
          match allocate ~min_size:8192 ~app_size:4096 () with
          | Error _ -> true
          | Ok a ->
            List.iter
              (fun (n, grow, m) ->
                let delta = if grow then n * 64 else -(m * 64) in
                (match A.sbrk a ~delta with Ok _ | Error _ -> ());
                match A.allocate_grant a ~size:(16 + (n mod 64)) ~align:8 with
                | Ok _ | Error _ -> ())
              ops;
            A.app_break a < A.kernel_break a))

let suite =
  [
    Alcotest.test_case "allocate layout (Figure 4b)" `Quick test_allocate_layout;
    Alcotest.test_case "logical view = hardware view (§4.3)" `Quick
      test_allocate_view_matches_hardware;
    Alcotest.test_case "brk grow/shrink" `Quick test_brk_grow_and_shrink;
    Alcotest.test_case "brk validation (§2.2)" `Quick test_brk_validation;
    Alcotest.test_case "sbrk" `Quick test_sbrk;
    Alcotest.test_case "allocate_grant" `Quick test_allocate_grant;
    Alcotest.test_case "allow()ed buffer builders" `Quick test_buffer_builders;
    Alcotest.test_case "flash errors" `Quick test_flash_error;
    Alcotest.test_case "out of memory" `Quick test_out_of_memory;
    Alcotest.test_case "monolithic disagreement (§3.2)" `Quick test_tock_disagreement;
    Alcotest.test_case "granular has no disagreement" `Quick test_ticktock_no_disagreement;
    Alcotest.test_case "tock brk hits hardware (Figure 11)" `Quick test_tock_brk_writes_hardware;
    QCheck_alcotest.to_alcotest prop_lifecycle_invariants;
  ]
