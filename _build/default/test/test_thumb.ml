(* Thumb-2 encodings: golden values from the ARMv7-M ARM, and round trips. *)

module T = Fluxarm.Thumb
module R = Fluxarm.Regs

let check_hw = Alcotest.(check (list int))
let check_bool = Alcotest.(check bool)

let test_golden_16bit () =
  check_hw "nop" [ 0xBF00 ] (T.encode T.Nop);
  check_hw "svc #255" [ 0xDFFF ] (T.encode (T.Svc 0xff));
  check_hw "bx lr" [ 0x4770 ] (T.encode (T.Bx `Lr));
  check_hw "bx r1" [ 0x4708 ] (T.encode (T.Bx (`Reg R.R1)));
  check_hw "push {lr}" [ 0xB500 ] (T.encode (T.Push ([], true)));
  check_hw "push {r3}" [ 0xB408 ] (T.encode (T.Push ([ R.R3 ], false)));
  check_hw "pop {pc}" [ 0xBD00 ] (T.encode (T.Pop ([], true)));
  check_hw "cpsid i" [ 0xB672 ] (T.encode T.Cpsid);
  check_hw "cpsie i" [ 0xB662 ] (T.encode T.Cpsie);
  check_hw "mov r0, r1" [ 0x4608 ] (T.encode (T.Mov_reg (R.R0, R.R1)));
  check_hw "mov r8, r0" [ 0x4680 ] (T.encode (T.Mov_reg (R.R8, R.R0)));
  check_hw "mov r0, lr" [ 0x4670 ] (T.encode (T.Mov_from_lr R.R0));
  check_hw "mov lr, r3" [ 0x469E ] (T.encode (T.Mov_to_lr R.R3));
  check_hw "cmp lr, r2" [ 0x4596 ] (T.encode (T.Cmp_lr R.R2));
  check_hw "bne +10" [ 0xD10A ] (T.encode (T.B_cond (`Ne, 10)));
  check_hw "beq -2" [ 0xD0FE ] (T.encode (T.B_cond (`Eq, -2)))

let test_golden_32bit () =
  check_hw "movw r0, #0" [ 0xF240; 0x0000 ] (T.encode (T.Movw (R.R0, 0)));
  check_hw "movw r1, #0xFFF9" [ 0xF64F; 0x71F9 ] (T.encode (T.Movw (R.R1, 0xFFF9)));
  check_hw "movt r1, #0xFFFF" [ 0xF6CF; 0x71FF ] (T.encode (T.Movt (R.R1, 0xFFFF)));
  check_hw "isb sy" [ 0xF3BF; 0x8F6F ] (T.encode T.Isb);
  check_hw "dsb sy" [ 0xF3BF; 0x8F4F ] (T.encode T.Dsb);
  check_hw "mrs r2, msp" [ 0xF3EF; 0x8208 ] (T.encode (T.Mrs (R.R2, R.Msp)));
  check_hw "msr psp, r0" [ 0xF380; 0x8809 ] (T.encode (T.Msr (R.Psp, R.R0)));
  check_hw "msr control, r0" [ 0xF380; 0x8814 ] (T.encode (T.Msr (R.Control, R.R0)));
  check_hw "ldr r3, [r1, #8]" [ 0xF8D1; 0x3008 ] (T.encode (T.Ldr_imm (R.R3, R.R1, 8)));
  check_hw "str r3, [r1, #8]" [ 0xF8C1; 0x3008 ] (T.encode (T.Str_imm (R.R3, R.R1, 8)));
  check_hw "ldmia r1, {r4-r11}" [ 0xE891; 0x0FF0 ]
    (T.encode (T.Ldmia (R.R1, false, R.callee_saved)));
  check_hw "stmdb r2!, {r4-r11}" [ 0xE922; 0x0FF0 ]
    (T.encode (T.Stmdb (R.R2, true, R.callee_saved)))

let all_example_instrs =
  [
    T.Nop;
    T.Mov_reg (R.R0, R.R7);
    T.Mov_reg (R.R10, R.R2);
    T.Movw (R.R5, 0xABCD);
    T.Movt (R.R5, 0x1234);
    T.Addw (R.R1, R.R2, 0xFFF);
    T.Subw (R.R3, R.R3, 1);
    T.Ldr_imm (R.R0, R.R1, 0);
    T.Str_imm (R.R12, R.R2, 2048);
    T.Ldmia (R.R1, true, [ R.R4; R.R5 ]);
    T.Stmia (R.R3, false, [ R.R0; R.R12 ]);
    T.Stmdb (R.R2, true, R.callee_saved);
    T.Push ([ R.R0; R.R1 ], true);
    T.Pop ([ R.R7 ], false);
    T.Mrs (R.R0, R.Control);
    T.Mrs (R.R4, R.Psp);
    T.Msr (R.Msp, R.R2);
    T.Msr (R.Control, R.R1);
    T.Isb;
    T.Dsb;
    T.Dmb;
    T.Svc 0;
    T.Svc 255;
    T.Bx `Lr;
    T.Bx (`Reg R.R12);
    T.Cpsid;
    T.Cpsie;
    T.Cmp_lr R.R2;
    T.B_cond (`Ne, 10);
    T.B_cond (`Eq, -5);
    T.Mov_from_lr R.R3;
    T.Mov_to_lr R.R3;
  ]

let roundtrip i =
  match T.encode i with
  | [ hw1 ] -> T.decode hw1 (fun () -> Alcotest.fail "16-bit asked for second halfword")
  | [ hw1; hw2 ] -> T.decode hw1 (fun () -> hw2)
  | _ -> Alcotest.fail "encoding is 1 or 2 halfwords"

let test_roundtrip_all () =
  List.iter
    (fun i ->
      match roundtrip i with
      | Ok i' ->
        check_bool (Format.asprintf "%a" T.pp i) true (T.equal i i')
      | Error e -> Alcotest.failf "%a: %s" T.pp i e)
    all_example_instrs

let test_sizes () =
  Alcotest.(check int) "nop is 2" 2 (T.size_bytes T.Nop);
  Alcotest.(check int) "movw is 4" 4 (T.size_bytes (T.Movw (R.R0, 1)));
  check_bool "is_32bit movw" true (T.is_32bit 0xF240);
  check_bool "is_32bit nop" false (T.is_32bit 0xBF00)

let test_assemble () =
  let mem = Memory.create () in
  let prog = [ T.Movw (R.R0, 0x1234); T.Nop; T.Bx `Lr ] in
  let size = T.assemble mem 0x1000 prog in
  Alcotest.(check int) "size" 8 size;
  (* little-endian halfwords in memory *)
  Alcotest.(check int) "first byte" 0x41 (Memory.read8 mem 0x1000);
  Alcotest.(check int) "second byte" 0xF2 (Memory.read8 mem 0x1001)

let test_encode_validation () =
  Alcotest.check_raises "movw range" (Invalid_argument "thumb: movw imm16 out of range")
    (fun () -> ignore (T.encode (T.Movw (R.R0, 0x10000))));
  Alcotest.check_raises "push high reg" (Invalid_argument "thumb: push T1 takes r0-r7")
    (fun () -> ignore (T.encode (T.Push ([ R.R8 ], false))))

let test_decode_unknown () =
  check_bool "garbage 16-bit" true (Result.is_error (T.decode 0x0000 (fun () -> 0)));
  check_bool "garbage 32-bit" true (Result.is_error (T.decode 0xE800 (fun () -> 0)))

let test_sysm () =
  Alcotest.(check int) "control" 20 (T.sysm Fluxarm.Regs.Control);
  Alcotest.(check int) "msp" 8 (T.sysm Fluxarm.Regs.Msp);
  check_bool "roundtrip" true (T.special_of_sysm 9 = Some Fluxarm.Regs.Psp);
  check_bool "unknown sysm" true (T.special_of_sysm 12 = None)

(* Property: decoding any encodable instruction round-trips. *)
let instr_gen =
  let open QCheck.Gen in
  let gpr = map Fluxarm.Regs.gpr_of_index (int_range 0 12) in
  oneof
    [
      return T.Nop;
      map2 (fun a b -> T.Mov_reg (a, b)) gpr gpr;
      map2 (fun r v -> T.Movw (r, v)) gpr (int_range 0 0xffff);
      map2 (fun r v -> T.Movt (r, v)) gpr (int_range 0 0xffff);
      map3 (fun d n v -> T.Addw (d, n, v)) gpr gpr (int_range 0 0xfff);
      map3 (fun t n v -> T.Ldr_imm (t, n, v)) gpr gpr (int_range 0 0xfff);
      map3 (fun t n v -> T.Str_imm (t, n, v)) gpr gpr (int_range 0 0xfff);
      map (fun r -> T.Mrs (r, Fluxarm.Regs.Control)) gpr;
      map (fun r -> T.Msr (Fluxarm.Regs.Psp, r)) gpr;
      map (fun v -> T.Svc v) (int_range 0 255);
      map (fun r -> T.Cmp_lr r) gpr;
      map (fun o -> T.B_cond (`Ne, o)) (int_range (-128) 127);
    ]

let prop_roundtrip =
  QCheck.Test.make ~name:"random instruction round-trips" ~count:500
    (QCheck.make ~print:(Format.asprintf "%a" T.pp) instr_gen) (fun i ->
      match roundtrip i with Ok i' -> T.equal i i' | Error _ -> false)

let suite =
  [
    Alcotest.test_case "golden 16-bit encodings" `Quick test_golden_16bit;
    Alcotest.test_case "golden 32-bit encodings" `Quick test_golden_32bit;
    Alcotest.test_case "roundtrip (exhaustive examples)" `Quick test_roundtrip_all;
    Alcotest.test_case "sizes" `Quick test_sizes;
    Alcotest.test_case "assemble to memory" `Quick test_assemble;
    Alcotest.test_case "encoder validation" `Quick test_encode_validation;
    Alcotest.test_case "unknown encodings rejected" `Quick test_decode_unknown;
    Alcotest.test_case "SYSm mapping" `Quick test_sysm;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
