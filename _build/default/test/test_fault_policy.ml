(* Fault policies: Stop (default), Restart with budget, Panic. *)

open Ticktock
open Apps.App_dsl
module K = Boards.Ticktock_arm

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let faulty_script =
  let* () = print "about to crash\n" in
  let* _ = load8 (Range.start Layout.kernel_sram) in
  return 0

let good_script =
  let* () = print "healthy run\n" in
  return 0

let create k ?fault_policy ?program_factory script =
  match
    K.create_process k ~name:"fp" ~payload:"fp" ~program:(to_program script) ~min_ram:2048
      ?fault_policy ?program_factory ()
  with
  | Ok p -> p
  | Error e -> Alcotest.failf "create: %a" Kerror.pp e

let test_stop_default () =
  let _, k = Boards.make_ticktock_arm () in
  let p = create k faulty_script in
  K.run k ~max_ticks:100;
  check_bool "faulted and stayed stopped" true
    (match p.Process.state with Process.Faulted _ -> true | _ -> false);
  check_int "no restarts" 0 p.Process.restarts

let test_restart_recovers () =
  let _, k = Boards.make_ticktock_arm () in
  (* first attempt faults; the factory supplies a healthy program after *)
  let attempts = ref 0 in
  let factory () =
    incr attempts;
    to_program good_script
  in
  let p =
    create k
      ~fault_policy:(Process.Restart { max_restarts = 3 })
      ~program_factory:factory faulty_script
  in
  K.run k ~max_ticks:200;
  check_int "restarted once" 1 p.Process.restarts;
  check_bool "second run completed" true (p.Process.state = Process.Exited 0);
  Alcotest.(check string) "output spans both runs" "about to crash\nhealthy run\n"
    (Process.output p)

let test_restart_budget_exhausted () =
  let _, k = Boards.make_ticktock_arm () in
  let factory () = to_program faulty_script in
  let p =
    create k
      ~fault_policy:(Process.Restart { max_restarts = 2 })
      ~program_factory:factory faulty_script
  in
  K.run k ~max_ticks:500;
  check_int "stopped after budget" 2 p.Process.restarts;
  check_bool "finally faulted" true
    (match p.Process.state with Process.Faulted _ -> true | _ -> false)

let test_restart_rezeroes_memory () =
  let _, k = Boards.make_ticktock_arm () in
  (* first run plants a marker then faults; the restarted run must see 0 *)
  let plant =
    let* ms = memory_start in
    let* _ = store8 (ms + 100) 0xAB in
    let* _ = load8 0 in
    return 1
  in
  let probe =
    let* ms = memory_start in
    let* v = load8 (ms + 100) in
    let* () = printf "marker=%d" v in
    return 0
  in
  let p =
    create k
      ~fault_policy:(Process.Restart { max_restarts = 1 })
      ~program_factory:(fun () -> to_program probe)
      plant
  in
  K.run k ~max_ticks:200;
  check_bool "completed" true (p.Process.state = Process.Exited 0);
  Alcotest.(check string) "RAM was zeroed across restart" "marker=0" (Process.output p)

let test_panic_policy () =
  let _, k = Boards.make_ticktock_arm () in
  let _ = create k ~fault_policy:Process.Panic faulty_script in
  match K.run k ~max_ticks:100 with
  | () -> Alcotest.fail "expected kernel panic"
  | exception K.Panic msg -> check_bool "panic names the process" true (String.length msg > 0)

let test_status_dump_on_fault () =
  let _, k = Boards.make_ticktock_arm () in
  let _ = create k faulty_script in
  K.run k ~max_ticks:100;
  let console = K.console_output k in
  let has needle =
    let n = String.length needle in
    let rec go i = i + n <= String.length console && (String.sub console i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "dump present" true (has "App: fp");
  check_bool "memory map rows present" true (has "app break");
  check_bool "flash rows present" true (has "flash start")

let suite =
  [
    Alcotest.test_case "stop is the default" `Quick test_stop_default;
    Alcotest.test_case "restart recovers" `Quick test_restart_recovers;
    Alcotest.test_case "restart budget exhausted" `Quick test_restart_budget_exhausted;
    Alcotest.test_case "restart re-zeroes RAM" `Quick test_restart_rezeroes_memory;
    Alcotest.test_case "panic policy" `Quick test_panic_policy;
    Alcotest.test_case "status dump on fault" `Quick test_status_dump_on_fault;
  ]
