(* PMSAv8: the base/limit MPU and its granular driver. *)

open Ticktock
module Hw = Mpu_hw.Armv8m_mpu
module R = Armv8m_region
module M = Armv8m_mpu_drv

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let base = 0x2000_8000
let rw = Perms.Read_write_only

let allowed hw ~privileged a access =
  match Hw.check_access hw ~privileged a access with Ok () -> true | Error _ -> false

let test_encoding_roundtrip () =
  let rbar = Hw.encode_rbar ~base ~perms:rw in
  check_int "base" base (Hw.decode_rbar_base rbar);
  check_bool "perms" true (Hw.decode_rbar_perms rbar = Some rw);
  let rlar = Hw.encode_rlar ~limit:(base + 4095) ~enable:true in
  check_int "limit" (base + 4095) (Hw.decode_rlar_limit rlar);
  check_bool "enable" true (Hw.decode_rlar_enable rlar)

let test_encoding_validation () =
  Alcotest.check_raises "unaligned base" (Invalid_argument "encode_rbar: unaligned base")
    (fun () -> ignore (Hw.encode_rbar ~base:(base + 4) ~perms:rw));
  Alcotest.check_raises "unaligned limit" (Invalid_argument "encode_rlar: unaligned limit")
    (fun () -> ignore (Hw.encode_rlar ~limit:(base + 4000) ~enable:true))

let region hw ~index ~start ~size ~perms =
  Hw.write_region hw ~index ~rbar:(Hw.encode_rbar ~base:start ~perms)
    ~rasr:(Hw.encode_rlar ~limit:(start + size - 1) ~enable:true)

let test_access_semantics () =
  let hw = Hw.create () in
  region hw ~index:0 ~start:base ~size:1024 ~perms:rw;
  Hw.set_enabled hw true;
  check_bool "read inside" true (allowed hw ~privileged:false base Perms.Read);
  check_bool "write at last byte" true (allowed hw ~privileged:false (base + 1023) Perms.Write);
  check_bool "one past denied" false (allowed hw ~privileged:false (base + 1024) Perms.Read);
  check_bool "exec denied (XN)" false (allowed hw ~privileged:false base Perms.Execute);
  check_bool "privileged background map" true
    (allowed hw ~privileged:true 0x1000_0000 Perms.Read);
  check_bool "unprivileged no-match denied" false
    (allowed hw ~privileged:false 0x1000_0000 Perms.Read)

let test_no_pow2_constraint () =
  (* a 1056-byte region at a 32-byte-aligned, non-pow2-aligned base: legal
     on v8, impossible on v7 *)
  let hw = Hw.create () in
  region hw ~index:0 ~start:(base + 96) ~size:1056 ~perms:rw;
  Hw.set_enabled hw true;
  check_bool "covers exactly" true
    (allowed hw ~privileged:false (base + 96) Perms.Read
    && allowed hw ~privileged:false (base + 96 + 1055) Perms.Read
    && (not (allowed hw ~privileged:false (base + 95) Perms.Read))
    && not (allowed hw ~privileged:false (base + 96 + 1056) Perms.Read))

let test_overlap_faults () =
  (* v8's sharp edge: overlapping enabled regions fault instead of
     resolving by priority *)
  let hw = Hw.create () in
  region hw ~index:0 ~start:base ~size:1024 ~perms:rw;
  region hw ~index:1 ~start:(base + 512) ~size:1024 ~perms:rw;
  Hw.set_enabled hw true;
  check_bool "non-overlapping part works" true (allowed hw ~privileged:false base Perms.Read);
  check_bool "overlap faults" false (allowed hw ~privileged:false (base + 600) Perms.Read);
  check_bool "overlap faults even privileged" false
    (allowed hw ~privileged:true (base + 600) Perms.Read)

let test_descriptor_derivations () =
  let r = R.create ~region_id:1 ~start:base ~size:1056 ~perms:rw in
  Alcotest.(check (option int)) "start" (Some base) (R.start r);
  Alcotest.(check (option int)) "exact size" (Some 1056) (R.size r);
  check_bool "can_access" true (R.can_access r ~start:base ~end_:(base + 1056) ~perms:rw);
  check_bool "overlap query" true (R.overlaps r ~lo:(base + 1000) ~hi:(base + 2000));
  check_bool "empty is unset" false (R.is_set (R.empty ~region_id:0))

let test_driver_allocates_exactly () =
  match M.new_regions ~max_region_id:1 ~unalloc_start:(base + 8) ~unalloc_size:0x8000
          ~total_size:5000 ~perms:rw with
  | Some (r0, r1) ->
    Alcotest.(check (option int)) "32-byte rounding only" (Some 5024) (R.size r0);
    check_bool "single region" false (R.is_set r1);
    check_bool "aligned start" true
      (Math32.is_aligned (Option.get (R.start r0)) ~align:32)
  | None -> Alcotest.fail "allocation failed"

let test_driver_hw_correspondence () =
  let hw = Hw.create () in
  (match M.create_exact_region ~region_id:2 ~start:0x0002_0000 ~size:1024
           ~perms:Perms.Read_execute_only with
  | Some r -> M.configure_mpu hw [| r |]
  | None -> Alcotest.fail "exact failed");
  M.enable hw;
  match Hw.accessible_ranges hw Perms.Execute with
  | [ r ] ->
    check_int "hw start" 0x0002_0000 (Range.start r);
    check_int "hw size" 1024 (Range.size r)
  | rs -> Alcotest.failf "expected one range, got %d" (List.length rs)

let test_kernel_runs_on_v8 () =
  let open Apps.App_dsl in
  let _, k = Boards.make_ticktock_arm_v8 () in
  let script =
    let* ms = memory_start in
    let* _ = store32 (ms + 32) 0xFEED in
    let* v = load32 (ms + 32) in
    let* r = sbrk 96 in
    let* () = printf "%b %b" (v = 0xFEED) (r <> Userland.failure) in
    return 0
  in
  match
    Boards.Ticktock_arm_v8.create_process k ~name:"v8" ~payload:"v8"
      ~program:(to_program script) ~min_ram:2048 ()
  with
  | Ok p ->
    Boards.Ticktock_arm_v8.run k ~max_ticks:100;
    Alcotest.(check string) "runs" "true true" (Process.output p);
    check_bool "isolation holds" true (Boards.Ticktock_arm_v8.isolation_ok k p)
  | Error e -> Alcotest.failf "create: %a" Kerror.pp e

let test_v8_attacks_contained () =
  List.iter
    (fun (a : Apps.Attacks.attack) ->
      match
        Verify.Violation.with_enabled false (fun () ->
            Apps.Attacks.run_attack (fun () -> Boards.instance_ticktock_arm_v8 ()) a)
      with
      | Apps.Attacks.Contained | Apps.Attacks.Contained_fault -> ()
      | o -> Alcotest.failf "%s: %s" a.attack_name (Apps.Attacks.outcome_to_string o))
    Apps.Attacks.all

let test_v8_memory_footprint_tight () =
  (* 32-byte granularity: the grow-until-failure bench wastes almost
     nothing, like PMP *)
  match
    Verify.Violation.with_enabled false (fun () ->
        Apps.Membench.run (Boards.instance_ticktock_arm_v8 ()))
  with
  | Ok r -> check_bool "waste below one granule per edge" true (r.stats.Instance.unused < 64)
  | Error e -> Alcotest.failf "membench: %a" Kerror.pp e

let prop_v8_exact_sizes =
  QCheck.Test.make ~name:"v8 accessible size = 32-byte-rounded request" ~count:200
    (QCheck.int_range 1 20000) (fun total ->
      match
        M.new_regions ~max_region_id:1 ~unalloc_start:base ~unalloc_size:0x10000
          ~total_size:total ~perms:rw
      with
      | Some (r0, _) -> R.size r0 = Some (Math32.align_up total ~align:32)
      | None -> false)

let suite =
  [
    Alcotest.test_case "encoding roundtrip" `Quick test_encoding_roundtrip;
    Alcotest.test_case "encoding validation" `Quick test_encoding_validation;
    Alcotest.test_case "access semantics" `Quick test_access_semantics;
    Alcotest.test_case "no pow2 constraint" `Quick test_no_pow2_constraint;
    Alcotest.test_case "overlap faults (v8 sharp edge)" `Quick test_overlap_faults;
    Alcotest.test_case "descriptor derivations" `Quick test_descriptor_derivations;
    Alcotest.test_case "driver allocates exactly" `Quick test_driver_allocates_exactly;
    Alcotest.test_case "driver/hardware correspondence" `Quick test_driver_hw_correspondence;
    Alcotest.test_case "kernel runs on v8" `Quick test_kernel_runs_on_v8;
    Alcotest.test_case "attacks contained on v8" `Slow test_v8_attacks_contained;
    Alcotest.test_case "v8 memory footprint tight" `Slow test_v8_memory_footprint_tight;
    QCheck_alcotest.to_alcotest prop_v8_exact_sizes;
  ]
