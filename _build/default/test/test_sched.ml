(* Scheduler policies, syscall filtering, flash-chain loading, ps. *)

open Ticktock
open Apps.App_dsl
module K = Boards.Ticktock_arm

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let kernel ?sched ?syscall_filter () =
  let m = Machine.create_arm () in
  ( m,
    K.create ~mem:m.Machine.arm_mem ~hw:m.Machine.arm_mpu
      ~switcher:(Kernel.Arm_switch m.Machine.arm_cpu) ?sched ?syscall_filter () )

let create k ~name script =
  match
    K.create_process k ~name ~payload:name ~program:(to_program script) ~min_ram:2048 ()
  with
  | Ok p -> p
  | Error e -> Alcotest.failf "create: %a" Kerror.pp e

let spinner n =
  let* () = repeat n (fun () -> let* _ = compute 10 in return ()) in
  return 0

let test_round_robin_is_fair () =
  let _, k = kernel ~sched:Kernel.Round_robin () in
  let a = create k ~name:"a" (spinner 300) in
  let b = create k ~name:"b" (spinner 300) in
  K.run k ~max_ticks:100;
  check_bool "both finish" true
    (a.Process.state = Process.Exited 0 && b.Process.state = Process.Exited 0);
  (* fairness: they finish within one tick of each other — can't observe
     directly, but both completing in bounded ticks implies interleaving *)
  check_bool "bounded ticks" true (K.ticks k <= 100)

let test_cooperative_runs_to_completion () =
  (* under cooperative scheduling a compute-bound process is never
     preempted: it finishes its whole program in a single slice *)
  let _, k = kernel ~sched:Kernel.Cooperative () in
  let a = create k ~name:"a" (spinner 500) in
  K.run k ~max_ticks:10;
  check_bool "finished" true (a.Process.state = Process.Exited 0);
  check_bool "in very few ticks" true (K.ticks k <= 2)

let test_round_robin_preempts () =
  (* the same program under round robin needs many quanta *)
  let _, k = kernel ~sched:Kernel.Round_robin () in
  let a = create k ~name:"a" (spinner 500) in
  K.run k ~max_ticks:100;
  check_bool "finished" true (a.Process.state = Process.Exited 0);
  check_bool "took several slices" true (K.ticks k > 5)

let test_priority_starves () =
  let _, k = kernel ~sched:(Kernel.Priority (fun pid -> pid)) () in
  (* pid 0 loaded first: highest priority (smallest number) *)
  let hi = create k ~name:"hi" (spinner 200) in
  let lo = create k ~name:"lo" (spinner 200) in
  (* run only until the high-priority one finishes *)
  let rec until n =
    if n = 0 then ()
    else if hi.Process.state = Process.Exited 0 then ()
    else begin
      K.run k ~max_ticks:1;
      until (n - 1)
    end
  in
  until 200;
  check_bool "high priority finished" true (hi.Process.state = Process.Exited 0);
  check_bool "low priority starved meanwhile" true (lo.Process.state = Process.Ready);
  (* once hi is done, lo gets the CPU *)
  K.run k ~max_ticks:200;
  check_bool "low eventually runs" true (lo.Process.state = Process.Exited 0)

let test_syscall_filter () =
  (* deny brk/sbrk to pid 0, allow everything else *)
  let filter pid call =
    match call with Userland.Memop { op; _ } when op <= 1 -> pid <> 0 | _ -> true
  in
  let _, k = kernel ~syscall_filter:filter () in
  let script =
    let* r = sbrk 64 in
    let* () = printf "%b" (r = Userland.failure) in
    return 0
  in
  let denied = create k ~name:"denied" script in
  let allowed = create k ~name:"allowed" script in
  K.run k ~max_ticks:100;
  Alcotest.(check string) "pid 0 denied" "true" (Process.output denied);
  Alcotest.(check string) "pid 1 allowed" "false" (Process.output allowed)

let test_flash_chain_loading () =
  (* write two images into flash by hand, then let the kernel discover them *)
  let m, k = kernel () in
  let mem = m.Machine.arm_mem in
  let img name = { Loader.app_name = name; min_ram = 2048; payload = "payload-" ^ name } in
  let cursor = Range.start Layout.app_flash in
  let _, cursor = Result.get_ok (Loader.place mem ~cursor (img "first")) in
  let _, _ = Result.get_ok (Loader.place mem ~cursor (img "second")) in
  let registry = function
    | "first" -> Some (to_program (let* () = print "one" in return 0))
    | "second" -> Some (to_program (let* () = print "two" in return 0))
    | _ -> None
  in
  let loaded = K.load_processes k ~registry () in
  check_int "both images found" 2 (List.length loaded);
  K.run k ~max_ticks:100;
  List.iter
    (fun (p : _ Process.t) ->
      check_bool (p.Process.name ^ " ran") true (p.Process.state = Process.Exited 0))
    loaded

let test_flash_chain_stops_at_garbage () =
  let m, k = kernel () in
  let mem = m.Machine.arm_mem in
  let cursor = Range.start Layout.app_flash in
  let _, cursor =
    Result.get_ok
      (Loader.place mem ~cursor { Loader.app_name = "only"; min_ram = 2048; payload = "p" })
  in
  (* garbage after the first image *)
  Memory.write32 mem cursor 0xDEAD_BEEF;
  let registry = function
    | "only" -> Some (to_program (return 0))
    | _ -> None
  in
  check_int "stops at the first invalid header" 1
    (List.length (K.load_processes k ~registry ()))

let test_ps_listing () =
  let _, k = kernel () in
  let _ = create k ~name:"alpha" (return 0) in
  let _ = create k ~name:"beta" (spinner 1000) in
  K.run k ~max_ticks:2;
  let listing = K.ps k in
  let has needle =
    let n = String.length needle in
    let rec go i = i + n <= String.length listing && (String.sub listing i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "lists alpha" true (has "alpha");
  check_bool "lists beta" true (has "beta");
  check_bool "shows exit state" true (has "exited(0)")

let suite =
  [
    Alcotest.test_case "round robin is fair" `Quick test_round_robin_is_fair;
    Alcotest.test_case "cooperative never preempts" `Quick test_cooperative_runs_to_completion;
    Alcotest.test_case "round robin preempts" `Quick test_round_robin_preempts;
    Alcotest.test_case "priority starves" `Quick test_priority_starves;
    Alcotest.test_case "syscall filter" `Quick test_syscall_filter;
    Alcotest.test_case "flash chain loading" `Quick test_flash_chain_loading;
    Alcotest.test_case "flash chain stops at garbage" `Quick test_flash_chain_stops_at_garbage;
    Alcotest.test_case "ps listing" `Quick test_ps_listing;
  ]
