(* AppBreaks: Figure 6's invariants, enforced at construction and update. *)

open Ticktock

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let ms = 0x2000_8000
let flash = 0x0002_0000

let breaks ?(memory_size = 8192) ?(app_break = ms + 4096) ?(kernel_break = ms + 8192) () =
  App_breaks.create ~memory_start:ms ~memory_size ~app_break ~kernel_break ~flash_start:flash
    ~flash_size:1024

let test_accessors () =
  let b = breaks () in
  check_int "memory_start" ms (App_breaks.memory_start b);
  check_int "memory_size" 8192 (App_breaks.memory_size b);
  check_int "app_break" (ms + 4096) (App_breaks.app_break b);
  check_int "kernel_break" (ms + 8192) (App_breaks.kernel_break b);
  check_int "block_end" (ms + 8192) (App_breaks.block_end b);
  check_int "flash" flash (App_breaks.flash_start b)

let test_ranges () =
  let b = breaks () in
  check_int "ram range size" 4096 (Range.size (App_breaks.ram_range b));
  check_bool "grant empty initially" true (Range.is_empty (App_breaks.grant_range b));
  let b2 = App_breaks.with_kernel_break b (ms + 7168) in
  check_int "grant grows down" 1024 (Range.size (App_breaks.grant_range b2));
  check_int "flash range" 1024 (Range.size (App_breaks.flash_range b))

let expect_violation name f =
  Verify.Violation.with_enabled true (fun () ->
      match f () with
      | _ -> Alcotest.fail (name ^ ": expected invariant violation")
      | exception Verify.Violation.Violation _ -> ())

let test_invariant_grant_inside_block () =
  expect_violation "kernel_break beyond block" (fun () ->
      breaks ~kernel_break:(ms + 8193) ())

let test_invariant_app_break_above_start () =
  expect_violation "app_break below memory_start" (fun () -> breaks ~app_break:(ms - 1) ())

let test_invariant_no_overlap () =
  (* the §3.4 bug, structurally outlawed *)
  expect_violation "app_break = kernel_break" (fun () ->
      breaks ~app_break:(ms + 8192) ~kernel_break:(ms + 8192) ());
  expect_violation "app_break > kernel_break" (fun () ->
      breaks ~app_break:(ms + 5000) ~kernel_break:(ms + 4096) ())

let test_update_checks () =
  let b = breaks () in
  expect_violation "with_app_break into grant" (fun () ->
      App_breaks.with_app_break b (App_breaks.kernel_break b));
  expect_violation "with_kernel_break below app_break" (fun () ->
      App_breaks.with_kernel_break b (ms + 4096));
  (* legal updates pass *)
  let b2 = App_breaks.with_app_break b (ms + 6000) in
  check_int "updated" (ms + 6000) (App_breaks.app_break b2);
  (* functional update: the original is untouched *)
  check_int "original immutable" (ms + 4096) (App_breaks.app_break b)

let test_grant_free () =
  let b = breaks () in
  check_int "free respects strict inequality" (8192 - 4096 - 1) (App_breaks.grant_free b)

let test_disabled_checks_admit_bad_values () =
  (* the "release build" analog: invariants not enforced *)
  Verify.Violation.with_enabled false (fun () ->
      let b = breaks ~app_break:(ms + 9000) () in
      check_int "bad value admitted when checking is off" (ms + 9000) (App_breaks.app_break b))

let prop_created_implies_invariant =
  QCheck.Test.make ~name:"creation implies Figure 6 invariants" ~count:500
    (QCheck.triple (QCheck.int_range 1 8192) (QCheck.int_range 0 9000) (QCheck.int_range 0 9000))
    (fun (size, app_off, kb_off) ->
      Verify.Violation.with_enabled true (fun () ->
          match
            App_breaks.create ~memory_start:ms ~memory_size:size ~app_break:(ms + app_off)
              ~kernel_break:(ms + kb_off) ~flash_start:flash ~flash_size:512
          with
          | b ->
            App_breaks.kernel_break b <= App_breaks.block_end b
            && App_breaks.memory_start b <= App_breaks.app_break b
            && App_breaks.app_break b < App_breaks.kernel_break b
          | exception Verify.Violation.Violation _ ->
            (* refused: the inputs must actually violate one invariant *)
            not (ms + kb_off <= ms + size && app_off >= 0 && ms + app_off < ms + kb_off)))

let suite =
  [
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "derived ranges" `Quick test_ranges;
    Alcotest.test_case "invariant: grant inside block" `Quick test_invariant_grant_inside_block;
    Alcotest.test_case "invariant: app_break above start" `Quick
      test_invariant_app_break_above_start;
    Alcotest.test_case "invariant: no RAM/grant overlap (§3.4)" `Quick test_invariant_no_overlap;
    Alcotest.test_case "updates re-check invariants" `Quick test_update_checks;
    Alcotest.test_case "grant_free" `Quick test_grant_free;
    Alcotest.test_case "disabled checks (release mode)" `Quick
      test_disabled_checks_admit_bad_values;
    QCheck_alcotest.to_alcotest prop_created_implies_invariant;
  ]
