(* Board inventory and the type-erased kernel instances. *)

open Ticktock
open Apps.App_dsl

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_board_inventory () =
  let names = List.map fst Boards.all_instances in
  check_int "ten configurations" 10 (List.length names);
  List.iter
    (fun expected -> check_bool (expected ^ " present") true (List.mem expected names))
    [
      "ticktock-arm";
      "ticktock-arm-mc";
      "ticktock-arm-v8";
      "tock-arm-upstream";
      "tock-arm-patched";
      "ticktock-e310";
      "ticktock-earlgrey";
      "ticktock-qemu-rv32";
      "tock-pmp-upstream";
    ]
  |> ignore;
  (* tock-pmp-patched is the ninth-or-tenth; just assert uniqueness *)
  check_int "names unique" (List.length names) (List.length (List.sort_uniq compare names))

let test_instance_api_roundtrip () =
  let k = Boards.instance_ticktock_arm () in
  let pid =
    Result.get_ok
      (k.Instance.load ~name:"api" ~payload:"api"
         ~program:(to_program (let* () = print "out" in return 4))
         ~min_ram:2048 ~grant_reserve:1024 ~heap_headroom:1024)
  in
  k.Instance.run ~max_ticks:50;
  Alcotest.(check (option string)) "output" (Some "out") (k.Instance.proc_output pid);
  Alcotest.(check (option int)) "exit" (Some 4) (k.Instance.proc_exit pid);
  check_bool "not faulted" false (k.Instance.proc_faulted pid);
  check_bool "ticks advanced" true (k.Instance.ticks () > 0);
  check_bool "isolation" true (k.Instance.proc_isolation_ok pid);
  (match k.Instance.proc_mem_stats pid with
  | Some st -> check_bool "stats consistent" true (st.Instance.total > 0)
  | None -> Alcotest.fail "stats");
  (* unknown pid behaviours *)
  Alcotest.(check (option string)) "unknown output" None (k.Instance.proc_output 99);
  check_bool "unknown sbrk" true (k.Instance.proc_sbrk 99 8 = Error Kerror.No_such_process)

let test_instance_sbrk_direct () =
  let k = Boards.instance_ticktock_arm () in
  let pid =
    Result.get_ok
      (k.Instance.load ~name:"s" ~payload:"s" ~program:(to_program (return 0)) ~min_ram:2048
         ~grant_reserve:1024 ~heap_headroom:2048)
  in
  match k.Instance.proc_sbrk pid 128 with
  | Ok b -> check_bool "kernel-side sbrk grows" true (b > 0)
  | Error e -> Alcotest.failf "sbrk: %a" Kerror.pp e

let test_membench_deterministic () =
  let run () =
    Verify.Violation.with_enabled false (fun () ->
        Result.get_ok (Apps.Membench.run (Boards.instance_ticktock_arm ())))
  in
  let a = run () and b = run () in
  check_int "total" a.Apps.Membench.stats.Instance.total b.Apps.Membench.stats.Instance.total;
  check_int "app" a.Apps.Membench.stats.Instance.app b.Apps.Membench.stats.Instance.app

let test_membench_padded_matches_tock_total () =
  Verify.Violation.with_enabled false (fun () ->
      let tock = Result.get_ok (Apps.Membench.run (Boards.instance_tock_arm ())) in
      let padded =
        Result.get_ok
          (Apps.Membench.run ~grant_reserve:3072 (Boards.instance_ticktock_arm ()))
      in
      check_int "padded ticktock total = tock total" tock.Apps.Membench.stats.Instance.total
        padded.Apps.Membench.stats.Instance.total;
      check_bool "waste within a granule" true
        (abs
           (tock.Apps.Membench.stats.Instance.unused
           - padded.Apps.Membench.stats.Instance.unused)
        <= 32))

let suite =
  [
    Alcotest.test_case "board inventory" `Quick test_board_inventory;
    Alcotest.test_case "instance api roundtrip" `Quick test_instance_api_roundtrip;
    Alcotest.test_case "instance kernel-side sbrk" `Quick test_instance_sbrk_direct;
    Alcotest.test_case "membench deterministic" `Slow test_membench_deterministic;
    Alcotest.test_case "membench padded = tock total (§6.2)" `Slow
      test_membench_padded_matches_tock_total;
  ]
