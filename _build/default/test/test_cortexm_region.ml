(* The CortexMRegion descriptor: logical properties derived from register
   bits (§4.4). *)

open Ticktock
module R = Cortexm_region

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let base = 0x2000_8000

let region ?(id = 0) ?(size = 4096) ?enabled ?(perms = Perms.Read_write_only) () =
  R.create ~region_id:id ~start:base ~size ~enabled_subregions:enabled ~perms

let test_empty () =
  let r = R.empty ~region_id:5 in
  check_bool "unset" false (R.is_set r);
  check_bool "no start" true (R.start r = None);
  check_bool "no size" true (R.size r = None);
  check_bool "overlaps nothing" false (R.overlaps r ~lo:0 ~hi:Word32.max_value);
  check_bool "matches nothing" false (R.matches_perms r Perms.Read_write_only);
  check_int "keeps its slot" 5 (R.region_id r)

let test_whole_region () =
  let r = region () in
  check_bool "set" true (R.is_set r);
  Alcotest.(check (option int)) "start" (Some base) (R.start r);
  Alcotest.(check (option int)) "size" (Some 4096) (R.size r)

let test_subregion_prefix () =
  let r = region ~size:4096 ~enabled:3 () in
  Alcotest.(check (option int)) "accessible = 3 subregions" (Some (3 * 512)) (R.size r);
  Alcotest.(check (option int)) "start unchanged" (Some base) (R.start r)

let test_derivations_from_registers () =
  (* start/size really do come from the encoded registers *)
  let r = region ~size:2048 ~enabled:5 () in
  check_int "rbar addr field" base (Mpu_hw.Armv7m_mpu.decode_rbar_addr (R.rbar r));
  check_int "rasr size field" 2048 (Mpu_hw.Armv7m_mpu.decode_rasr_size (R.rasr r));
  check_int "srd = prefix mask" 0b11100000 (Mpu_hw.Armv7m_mpu.decode_rasr_srd (R.rasr r))

let test_can_access () =
  let r = region ~size:4096 ~enabled:4 () in
  check_bool "exact span + perms" true
    (R.can_access r ~start:base ~end_:(base + 2048) ~perms:Perms.Read_write_only);
  check_bool "wrong end" false
    (R.can_access r ~start:base ~end_:(base + 4096) ~perms:Perms.Read_write_only);
  check_bool "wrong perms" false
    (R.can_access r ~start:base ~end_:(base + 2048) ~perms:Perms.Read_only)

let test_overlaps () =
  let r = region ~size:4096 ~enabled:4 () in
  check_bool "inside accessible" true (R.overlaps r ~lo:(base + 100) ~hi:(base + 200));
  check_bool "in disabled tail" false (R.overlaps r ~lo:(base + 2048) ~hi:(base + 4095));
  check_bool "below" false (R.overlaps r ~lo:0 ~hi:(base - 1));
  check_bool "straddling boundary" true (R.overlaps r ~lo:(base + 2000) ~hi:(base + 3000))

let test_matches_perms () =
  check_bool "rw" true (R.matches_perms (region ()) Perms.Read_write_only);
  check_bool "rx region" true
    (R.matches_perms (region ~perms:Perms.Read_execute_only ()) Perms.Read_execute_only);
  check_bool "not cross" false (R.matches_perms (region ()) Perms.Read_execute_only)

let test_invariants_enforced () =
  Verify.Violation.with_enabled true (fun () ->
      (* 32-byte aligned (so the encoder accepts it) but not size-aligned:
         the region invariant must fire. *)
      (match R.create ~region_id:0 ~start:(base + 32) ~size:4096 ~enabled_subregions:None
               ~perms:Perms.Read_only with
      | _ -> Alcotest.fail "unaligned base must violate"
      | exception Verify.Violation.Violation _ -> ());
      (match R.create ~region_id:0 ~start:base ~size:128 ~enabled_subregions:(Some 2)
               ~perms:Perms.Read_only with
      | _ -> Alcotest.fail "srd on small region must violate"
      | exception Verify.Violation.Violation _ -> ());
      match R.create ~region_id:0 ~start:base ~size:4096 ~enabled_subregions:(Some 9)
              ~perms:Perms.Read_only with
      | _ -> Alcotest.fail "9 subregions must violate"
      | exception Verify.Violation.Violation _ -> ())

let test_equal () =
  check_bool "structural equality" true (R.equal (region ()) (region ()));
  check_bool "different srd" false (R.equal (region ~enabled:2 ()) (region ()))

let prop_accessible_range_consistent =
  QCheck.Test.make ~name:"accessible_range = (start, size)" ~count:200
    (QCheck.pair (QCheck.int_range 8 14) (QCheck.int_range 1 8)) (fun (e, n) ->
      let size = 1 lsl e in
      let r = R.create ~region_id:0 ~start:base ~size ~enabled_subregions:(Some n)
          ~perms:Perms.Read_write_only
      in
      match (R.accessible_range r, R.start r, R.size r) with
      | Some rng, Some s, Some sz -> Range.start rng = s && Range.size rng = sz
      | None, None, None -> true
      | _ -> false)

let suite =
  [
    Alcotest.test_case "empty region" `Quick test_empty;
    Alcotest.test_case "whole region" `Quick test_whole_region;
    Alcotest.test_case "subregion prefix" `Quick test_subregion_prefix;
    Alcotest.test_case "derived from registers (§4.4)" `Quick test_derivations_from_registers;
    Alcotest.test_case "can_access (final refinement)" `Quick test_can_access;
    Alcotest.test_case "overlaps" `Quick test_overlaps;
    Alcotest.test_case "matches_perms" `Quick test_matches_perms;
    Alcotest.test_case "constructor invariants" `Quick test_invariants_enforced;
    Alcotest.test_case "equality" `Quick test_equal;
    QCheck_alcotest.to_alcotest prop_accessible_range_consistent;
  ]
