(* Golden outputs: the exact console output and final state of each of the
   21 release-test apps on the TickTock ARM board. The simulator is fully
   deterministic, so any drift here is a real behavioural change — this is
   the regression net under the differential-testing result. *)

open Ticktock

let golden =
  [
    ( "c_hello",
      "Hello World!\r\n",
      "exited(0)" );
    ( "lua-hello",
      "Hello from Lua!\r\n",
      "exited(0)" );
    ( "printf_long",
      "Hi welcome to Tock. This test makes sure that a greater than 64 byte message can be printed.\r\nAnd a short message.\r\n",
      "exited(0)" );
    ( "blink",
      "led toggle\r\nled toggle\r\nled toggle\r\nled toggle\r\nled toggle\r\n",
      "exited(0)" );
    ( "buttons",
      "buttons: driver present\r\n",
      "exited(0)" );
    ( "malloc_test01",
      "malloc01: success\r\n",
      "exited(0)" );
    ( "malloc_test02",
      "malloc02: success\r\n",
      "exited(0)" );
    ( "stack_size_test01",
      "stack: memory_start=0x20012800\r\nstack: app_break=0x20013000\r\n",
      "exited(0)" );
    ( "stack_size_test02",
      "stack2: layout 0x20014000..0x20015000 grant@0x20015bc0\r\n",
      "exited(0)" );
    ( "mpu_stack_growth",
      "stack_growth: block 0x20016000..0x20016800\r\nstack_growth: overrunning stack (fault expected)\r\n",
      "faulted: mpu fault: write at 0x20015ffc (mpu: no region covers 0x20015ffc)" );
    ( "mpu_walk_region",
      "walk_region: walked 1024 bytes (sum=0)\r\nwalk_region: overrun expected\r\n",
      "faulted: mpu fault: read at 0x20019bc0 (mpu: no region covers 0x20019bc0)" );
    ( "sensors",
      "sensors: temperature reading 6663\r\n",
      "exited(0)" );
    ( "adc",
      "adc: channel 0 = 7054\r\n",
      "exited(0)" );
    ( "ip_sense",
      "ip_sense: packet sent\r\n",
      "exited(0)" );
    ( "whileone",
      "whileone: spinning\r\n",
      "exited(0)" );
    ( "timer_oneshot",
      "timer: oneshot fired\r\n",
      "exited(0)" );
    ( "timer_repeat",
      "timer: tick\r\ntimer: tick\r\ntimer: tick\r\n",
      "exited(0)" );
    ( "tictactoe",
      "tictactoe: XOO.X...X X wins\r\n",
      "exited(0)" );
    ( "rot13_client_service",
      "rot13: Hello -> Uryyb\r\n",
      "exited(0)" );
    ( "app_state",
      "app_state: flash magic 0x54424632\r\n",
      "exited(0)" );
    ( "ble_advertising",
      "ble: advertising started\r\n",
      "exited(0)" );
  ]

let test_golden () =
  let results =
    Verify.Violation.with_enabled false (fun () ->
        Apps.Difftest.run_suite (Boards.instance_ticktock_arm ()))
  in
  Alcotest.(check int) "21 results" (List.length golden) (List.length results);
  List.iter2
    (fun (name, expected_output, expected_state) (r : Apps.Difftest.app_result) ->
      Alcotest.(check string) (name ^ ": name") name r.app.Apps.Suite.app_name;
      Alcotest.(check string) (name ^ ": output") expected_output r.output;
      Alcotest.(check string) (name ^ ": state") expected_state r.state)
    golden results

let test_golden_stable_across_switchers () =
  (* the machine-code switch board must match the golden outputs too *)
  let results =
    Verify.Violation.with_enabled false (fun () ->
        Apps.Difftest.run_suite (Boards.instance_ticktock_arm_mc ()))
  in
  List.iter2
    (fun (name, expected_output, _) (r : Apps.Difftest.app_result) ->
      Alcotest.(check string) (name ^ ": output (mc)") expected_output r.output)
    golden results

let suite =
  [
    Alcotest.test_case "golden outputs (ticktock-arm)" `Slow test_golden;
    Alcotest.test_case "golden outputs (mc switch)" `Slow test_golden_stable_across_switchers;
  ]
