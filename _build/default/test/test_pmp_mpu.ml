(* TickTock's granular PMP driver across the three chips. *)

open Ticktock
module M = Pmp_mpu.E310
module R = Pmp_region

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let base = 0x2000_8000
let rw = Perms.Read_write_only

let test_region_descriptor () =
  let r = R.create ~region_id:1 ~start:base ~size:4096 ~perms:rw in
  check_bool "set" true (R.is_set r);
  Alcotest.(check (option int)) "exact start" (Some base) (R.start r);
  Alcotest.(check (option int)) "exact size" (Some 4096) (R.size r);
  check_bool "can_access exact" true
    (R.can_access r ~start:base ~end_:(base + 4096) ~perms:rw);
  check_bool "overlap above" false (R.overlaps r ~lo:(base + 4096) ~hi:Word32.max_value)

let test_region_granularity_contract () =
  Verify.Violation.with_enabled true (fun () ->
      match R.create ~region_id:0 ~start:(base + 2) ~size:8 ~perms:rw with
      | _ -> Alcotest.fail "2-byte-aligned start must violate"
      | exception Verify.Violation.Violation _ -> ())

let test_new_regions_exactness () =
  (* PMP has no pow2 constraint: the region covers the 4-byte-rounded size *)
  match M.new_regions ~max_region_id:1 ~unalloc_start:base ~unalloc_size:0x8000
          ~total_size:5000 ~perms:rw with
  | Some (r0, r1) ->
    Alcotest.(check (option int)) "rounded only to 4 bytes" (Some 5000) (R.size r0);
    check_bool "single region suffices" false (R.is_set r1)
  | None -> Alcotest.fail "allocation failed"

let test_new_regions_odd_size () =
  match M.new_regions ~max_region_id:1 ~unalloc_start:base ~unalloc_size:0x8000
          ~total_size:4097 ~perms:rw with
  | Some (r0, _) -> Alcotest.(check (option int)) "4-byte rounding" (Some 4100) (R.size r0)
  | None -> Alcotest.fail "allocation failed"

let test_update_regions () =
  match M.update_regions ~max_region_id:1 ~region_start:base ~available_size:8192
          ~total_size:6000 ~perms:rw with
  | Some (r0, _) -> Alcotest.(check (option int)) "updated size" (Some 6000) (R.size r0)
  | None -> Alcotest.fail "update failed"

let test_update_respects_available () =
  check_bool "refused beyond available" true
    (M.update_regions ~max_region_id:1 ~region_start:base ~available_size:1024
       ~total_size:2048 ~perms:rw
    = None)

let test_create_exact () =
  (match M.create_exact_region ~region_id:2 ~start:0x0002_0000 ~size:1000
           ~perms:Perms.Read_execute_only with
  | Some r -> Alcotest.(check (option int)) "exact 1000 bytes" (Some 1000) (R.size r)
  | None -> Alcotest.fail "exact failed");
  check_bool "non-multiple of 4 refused" true
    (M.create_exact_region ~region_id:2 ~start:0x0002_0000 ~size:1001
       ~perms:Perms.Read_execute_only
    = None)

let test_configure_reaches_hardware () =
  let hw = Mpu_hw.Pmp.create Mpu_hw.Pmp.sifive_e310 in
  let r = R.create ~region_id:0 ~start:base ~size:4096 ~perms:rw in
  M.configure_mpu hw [| r |];
  (match Mpu_hw.Pmp.accessible_ranges hw Perms.Read with
  | [ range ] ->
    check_int "hw start" base (Range.start range);
    check_int "hw size" 4096 (Range.size range)
  | rs -> Alcotest.failf "expected one range, got %d" (List.length rs));
  (* clearing: configure with an unset region *)
  M.configure_mpu hw [| R.empty ~region_id:0 |];
  check_int "cleared" 0 (List.length (Mpu_hw.Pmp.accessible_ranges hw Perms.Read))

let test_region_budget () =
  (* each logical region takes an entry pair *)
  check_int "e310: 4 logical regions" 4 Pmp_mpu.E310.region_count;
  check_int "earlgrey: 6 logical regions (2 pairs locked for Smepmp)" 6
    Pmp_mpu.Earlgrey.region_count;
  check_int "qemu: 8 logical regions" 8 Pmp_mpu.QemuRv32.region_count

let test_all_chips_allocate () =
  let try_chip (module C : Region_intf.MPU) =
    match
      C.new_regions ~max_region_id:1 ~unalloc_start:base ~unalloc_size:0x8000
        ~total_size:4096 ~perms:rw
    with
    | Some _ -> true
    | None -> false
  in
  check_bool "e310" true (try_chip (module Pmp_mpu.E310));
  check_bool "earlgrey" true (try_chip (module Pmp_mpu.Earlgrey));
  check_bool "qemu-rv32" true (try_chip (module Pmp_mpu.QemuRv32))

let prop_pmp_exact_sizes =
  QCheck.Test.make ~name:"pmp accessible size = 4-byte-rounded request" ~count:300
    (QCheck.int_range 1 20000) (fun total ->
      match
        M.new_regions ~max_region_id:1 ~unalloc_start:base ~unalloc_size:0x10000
          ~total_size:total ~perms:rw
      with
      | Some (r0, _) -> R.size r0 = Some (Math32.align_up total ~align:4)
      | None -> false)

let suite =
  [
    Alcotest.test_case "descriptor exactness (§3.5)" `Quick test_region_descriptor;
    Alcotest.test_case "granularity contract" `Quick test_region_granularity_contract;
    Alcotest.test_case "new_regions exact" `Quick test_new_regions_exactness;
    Alcotest.test_case "new_regions odd size" `Quick test_new_regions_odd_size;
    Alcotest.test_case "update_regions" `Quick test_update_regions;
    Alcotest.test_case "update respects available" `Quick test_update_respects_available;
    Alcotest.test_case "create_exact" `Quick test_create_exact;
    Alcotest.test_case "configure reaches hardware" `Quick test_configure_reaches_hardware;
    Alcotest.test_case "region budget per chip" `Quick test_region_budget;
    Alcotest.test_case "all three chips allocate" `Quick test_all_chips_allocate;
    QCheck_alcotest.to_alcotest prop_pmp_exact_sizes;
  ]
