(* The PMSAv7 hardware model: register encodings and access semantics. *)

module Hw = Mpu_hw.Armv7m_mpu

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let base = 0x2000_8000

let allowed hw ~privileged a access =
  match Hw.check_access hw ~privileged a access with Ok () -> true | Error _ -> false

let test_rbar_encoding () =
  let rbar = Hw.encode_rbar ~addr:base ~region:3 in
  check_int "addr field" base (Hw.decode_rbar_addr rbar);
  check_int "region field" 3 (Hw.decode_rbar_region rbar);
  check_bool "valid bit" true (Word32.bit rbar 4)

let test_rbar_rejects_unaligned () =
  Alcotest.check_raises "unaligned base" (Invalid_argument "encode_rbar: unaligned base")
    (fun () -> ignore (Hw.encode_rbar ~addr:(base + 4) ~region:0))

let test_rasr_encoding () =
  let rasr = Hw.encode_rasr ~enable:true ~size:4096 ~srd:0xF0 ~perms:Perms.Read_write_only in
  check_bool "enable" true (Hw.decode_rasr_enable rasr);
  check_int "size" 4096 (Hw.decode_rasr_size rasr);
  check_int "srd" 0xF0 (Hw.decode_rasr_srd rasr);
  Alcotest.(check (option (module Perms : Alcotest.TESTABLE with type t = Perms.t)))
    "perms" (Some Perms.Read_write_only) (Hw.decode_rasr_perms rasr)

let test_rasr_size_range () =
  List.iter
    (fun e ->
      let size = 1 lsl e in
      let rasr = Hw.encode_rasr ~enable:true ~size ~srd:0 ~perms:Perms.Read_only in
      check_int (Printf.sprintf "size 2^%d" e) size (Hw.decode_rasr_size rasr))
    [ 5; 8; 12; 16; 20; 24; 28 ]

let test_min_size_rejected () =
  Alcotest.check_raises "below 32 bytes" (Invalid_argument "encode_rasr: size") (fun () ->
      ignore (Hw.encode_rasr ~enable:true ~size:16 ~srd:0 ~perms:Perms.Read_only))

let region hw ~index ~addr ~size ~srd ~perms =
  Hw.write_region hw ~index ~rbar:(Hw.encode_rbar ~addr ~region:index)
    ~rasr:(Hw.encode_rasr ~enable:true ~size ~srd ~perms)

let test_disabled_mpu_allows_all () =
  let hw = Hw.create () in
  check_bool "unpriv read ok when disabled" true (allowed hw ~privileged:false 0x1234 Perms.Read)

let test_no_region_denies_unprivileged () =
  let hw = Hw.create () in
  Hw.set_enabled hw true;
  check_bool "unpriv denied" false (allowed hw ~privileged:false base Perms.Read);
  check_bool "priv allowed (PRIVDEFENA)" true (allowed hw ~privileged:true base Perms.Read)

let test_region_grants () =
  let hw = Hw.create () in
  region hw ~index:0 ~addr:base ~size:1024 ~srd:0 ~perms:Perms.Read_write_only;
  Hw.set_enabled hw true;
  check_bool "read in region" true (allowed hw ~privileged:false base Perms.Read);
  check_bool "write in region" true (allowed hw ~privileged:false (base + 1023) Perms.Write);
  check_bool "execute denied (XN)" false (allowed hw ~privileged:false base Perms.Execute);
  check_bool "outside denied" false (allowed hw ~privileged:false (base + 1024) Perms.Read)

let test_read_only_region () =
  let hw = Hw.create () in
  region hw ~index:0 ~addr:base ~size:1024 ~srd:0 ~perms:Perms.Read_only;
  Hw.set_enabled hw true;
  check_bool "read ok" true (allowed hw ~privileged:false base Perms.Read);
  check_bool "unpriv write denied" false (allowed hw ~privileged:false base Perms.Write);
  check_bool "priv write allowed (AP=010)" true (allowed hw ~privileged:true base Perms.Write)

let test_execute_needs_read_and_xn () =
  let hw = Hw.create () in
  region hw ~index:0 ~addr:0x0002_0000 ~size:1024 ~srd:0 ~perms:Perms.Read_execute_only;
  Hw.set_enabled hw true;
  check_bool "execute ok" true (allowed hw ~privileged:false 0x0002_0000 Perms.Execute);
  check_bool "write denied" false (allowed hw ~privileged:false 0x0002_0000 Perms.Write)

let test_subregions () =
  let hw = Hw.create () in
  (* 2048-byte region, 256-byte subregions; disable the top four. *)
  region hw ~index:0 ~addr:base ~size:2048 ~srd:0xF0 ~perms:Perms.Read_write_only;
  Hw.set_enabled hw true;
  check_bool "subregion 0 enabled" true (allowed hw ~privileged:false base Perms.Read);
  check_bool "subregion 3 enabled" true
    (allowed hw ~privileged:false (base + (3 * 256)) Perms.Read);
  check_bool "subregion 4 disabled" false
    (allowed hw ~privileged:false (base + (4 * 256)) Perms.Read);
  check_bool "subregion 7 disabled" false
    (allowed hw ~privileged:false (base + (7 * 256) + 255) Perms.Read)

let test_srd_on_small_region_rejected () =
  let hw = Hw.create () in
  Alcotest.check_raises "SRD below 256B"
    (Invalid_argument "mpu: SRD used on region below 256 bytes") (fun () ->
      region hw ~index:0 ~addr:base ~size:128 ~srd:0x01 ~perms:Perms.Read_only)

let test_highest_region_wins () =
  let hw = Hw.create () in
  (* Region 0 allows RW; region 7 overlaps with read-only: 7 wins. *)
  region hw ~index:0 ~addr:base ~size:1024 ~srd:0 ~perms:Perms.Read_write_only;
  region hw ~index:7 ~addr:base ~size:256 ~srd:0 ~perms:Perms.Read_only;
  Hw.set_enabled hw true;
  check_bool "overlap: higher wins, write denied" false
    (allowed hw ~privileged:false base Perms.Write);
  check_bool "outside higher region, lower applies" true
    (allowed hw ~privileged:false (base + 512) Perms.Write)

let test_clear_region () =
  let hw = Hw.create () in
  region hw ~index:0 ~addr:base ~size:1024 ~srd:0 ~perms:Perms.Read_write_only;
  Hw.set_enabled hw true;
  Hw.clear_region hw ~index:0;
  check_bool "cleared region denies" false (allowed hw ~privileged:false base Perms.Read)

let test_accessible_ranges () =
  let hw = Hw.create () in
  region hw ~index:0 ~addr:base ~size:2048 ~srd:0xFC ~perms:Perms.Read_write_only;
  Hw.set_enabled hw true;
  (match Hw.accessible_ranges hw Perms.Read with
  | [ r ] ->
    check_int "range start" base (Range.start r);
    check_int "range size = 2 enabled subregions" 512 (Range.size r)
  | rs -> Alcotest.failf "expected 1 range, got %d" (List.length rs));
  (* Write view matches for an RW region. *)
  check_int "write ranges match" 1 (List.length (Hw.accessible_ranges hw Perms.Write))

let test_accessible_ranges_merge () =
  let hw = Hw.create () in
  (* Two adjacent regions merge into one maximal range. *)
  region hw ~index:0 ~addr:base ~size:1024 ~srd:0 ~perms:Perms.Read_write_only;
  region hw ~index:1 ~addr:(base + 1024) ~size:1024 ~srd:0 ~perms:Perms.Read_write_only;
  Hw.set_enabled hw true;
  match Hw.accessible_ranges hw Perms.Read with
  | [ r ] -> check_int "merged size" 2048 (Range.size r)
  | rs -> Alcotest.failf "expected merged range, got %d" (List.length rs)

(* Property: for arbitrary single-region configs, accessible_ranges agrees
   with check_access on every sampled address. *)
let prop_ranges_agree_with_check =
  let gen =
    QCheck.triple (QCheck.int_range 5 12) (QCheck.int_bound 0xfe) (QCheck.int_range 0 64)
  in
  QCheck.Test.make ~name:"accessible_ranges consistent with check_access" ~count:200 gen
    (fun (size_exp, srd, probe_step) ->
      let size = 1 lsl size_exp in
      let srd = if size < 256 then 0 else srd in
      let hw = Hw.create () in
      region hw ~index:0 ~addr:base ~size ~srd ~perms:Perms.Read_write_only;
      Hw.set_enabled hw true;
      let ranges = Hw.accessible_ranges hw Perms.Read in
      let in_ranges a = List.exists (fun r -> Range.contains r a) ranges in
      let ok = ref true in
      let step = 1 + probe_step in
      let a = ref (base - 64) in
      while !a < base + size + 64 do
        if allowed hw ~privileged:false !a Perms.Read <> in_ranges !a then ok := false;
        a := !a + step
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "RBAR encoding" `Quick test_rbar_encoding;
    Alcotest.test_case "RBAR alignment" `Quick test_rbar_rejects_unaligned;
    Alcotest.test_case "RASR encoding" `Quick test_rasr_encoding;
    Alcotest.test_case "RASR size field" `Quick test_rasr_size_range;
    Alcotest.test_case "32-byte minimum" `Quick test_min_size_rejected;
    Alcotest.test_case "disabled MPU allows all" `Quick test_disabled_mpu_allows_all;
    Alcotest.test_case "background map is privileged-only" `Quick test_no_region_denies_unprivileged;
    Alcotest.test_case "region grants" `Quick test_region_grants;
    Alcotest.test_case "read-only region" `Quick test_read_only_region;
    Alcotest.test_case "execute semantics" `Quick test_execute_needs_read_and_xn;
    Alcotest.test_case "subregion disable" `Quick test_subregions;
    Alcotest.test_case "SRD needs 256-byte region" `Quick test_srd_on_small_region_rejected;
    Alcotest.test_case "highest region priority" `Quick test_highest_region_wins;
    Alcotest.test_case "clear region" `Quick test_clear_region;
    Alcotest.test_case "accessible_ranges" `Quick test_accessible_ranges;
    Alcotest.test_case "accessible_ranges merging" `Quick test_accessible_ranges_merge;
    QCheck_alcotest.to_alcotest prop_ranges_agree_with_check;
  ]
