(* The userland scripting monad and its compilation to resumable programs. *)

open Ticktock
open Apps.App_dsl

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Drive a program by hand, supplying canned results for each action. *)
let drive program ~results =
  let rec go acc results prev =
    match program prev with
    | Userland.Exit code -> (code, List.rev acc)
    | action -> (
      match results with
      | r :: rest -> go (action :: acc) rest r
      | [] -> Alcotest.fail "program demanded more results than supplied")
  in
  go [] results 0

let test_return_compiles_to_exit () =
  let code, actions = drive (to_program (return 9)) ~results:[] in
  check_int "exit code" 9 code;
  check_int "no actions" 0 (List.length actions)

let test_actions_sequence () =
  let script =
    let* a = load8 100 in
    let* _ = store8 200 a in
    return a
  in
  let code, actions = drive (to_program script) ~results:[ 7; 0 ] in
  check_int "result threaded through" 7 code;
  match actions with
  | [ Userland.Load8 100; Userland.Store8 (200, 7) ] -> ()
  | _ -> Alcotest.fail "unexpected action stream"

let test_program_is_resumable_not_restartable () =
  let p = to_program (let* _ = load8 1 in return 5) in
  (match p 0 with Userland.Load8 1 -> () | _ -> Alcotest.fail "first action");
  (match p 99 with Userland.Exit 5 -> () | _ -> Alcotest.fail "completion");
  (* once finished, the program stays finished *)
  match p 0 with Userland.Exit 5 -> () | _ -> Alcotest.fail "sticky exit"

let test_bind_associativity () =
  (* (m >>= f) >>= g behaves like m >>= (fun x -> f x >>= g) *)
  let m = load8 10 in
  let f x = store8 20 x in
  let g _ = return 3 in
  let left = bind (bind m f) g in
  let right = bind m (fun x -> bind (f x) g) in
  let run s = drive (to_program s) ~results:[ 42; 0 ] in
  check_bool "associativity observable" true (run left = run right)

let test_repeat () =
  let script =
    let* () = repeat 3 (fun () -> let* _ = compute 1 in return ()) in
    return 0
  in
  let _, actions = drive (to_program script) ~results:[ 0; 0; 0 ] in
  check_int "three computes" 3 (List.length actions)

let test_iter_list () =
  let script =
    let* () = iter_list (fun i -> let* _ = store8 i 0 in return ()) [ 5; 6; 7 ] in
    return 0
  in
  let _, actions = drive (to_program script) ~results:[ 0; 0; 0 ] in
  check_bool "stores in order" true
    (actions = [ Userland.Store8 (5, 0); Userland.Store8 (6, 0); Userland.Store8 (7, 0) ])

let test_printf_formats () =
  let _, actions = drive (to_program (let* () = printf "x=%d" 42 in return 0)) ~results:[ 0 ] in
  match actions with
  | [ Userland.Print "x=42" ] -> ()
  | _ -> Alcotest.fail "printf must render before emitting"

let test_syscall_wrappers () =
  let script =
    let* _ = brk 0x1000 in
    let* _ = sbrk (-4) in
    let* _ = yield in
    return 0
  in
  let _, actions = drive (to_program script) ~results:[ 0; 0; 0 ] in
  match actions with
  | [ Userland.Syscall (Userland.Memop { op = 0; arg = 0x1000 });
      Userland.Syscall (Userland.Memop { op = 1; arg });
      Userland.Syscall Userland.Yield ] ->
    check_int "sbrk delta wraps to 32-bit" (Word32.of_int (-4)) arg
  | _ -> Alcotest.fail "unexpected syscall encoding"

let prop_map_identity =
  QCheck.Test.make ~name:"map id = id (observable)" ~count:100 QCheck.small_nat (fun n ->
      let s = load8 n in
      drive (to_program (bind (map Fun.id s) (fun v -> return v))) ~results:[ 3 ]
      = drive (to_program (bind s (fun v -> return v))) ~results:[ 3 ])

let suite =
  [
    Alcotest.test_case "return compiles to exit" `Quick test_return_compiles_to_exit;
    Alcotest.test_case "action sequencing" `Quick test_actions_sequence;
    Alcotest.test_case "resumable, sticky exit" `Quick test_program_is_resumable_not_restartable;
    Alcotest.test_case "bind associativity" `Quick test_bind_associativity;
    Alcotest.test_case "repeat" `Quick test_repeat;
    Alcotest.test_case "iter_list" `Quick test_iter_list;
    Alcotest.test_case "printf" `Quick test_printf_formats;
    Alcotest.test_case "syscall wrappers" `Quick test_syscall_wrappers;
    QCheck_alcotest.to_alcotest prop_map_identity;
  ]

(* --- the libc helpers, end to end against a real kernel --- *)

let run_on_kernel script =
  let k = Boards.instance_ticktock_arm () in
  let pid =
    Result.get_ok
      (k.Instance.load ~name:"libc" ~payload:"l" ~program:(to_program script) ~min_ram:2048
         ~grant_reserve:1024 ~heap_headroom:1024)
  in
  k.Instance.run ~max_ticks:200;
  (Option.value ~default:"" (k.Instance.proc_output pid), k.Instance.proc_exit pid)

let test_libc_string_roundtrip () =
  let out, code =
    run_on_kernel
      (let* ms = memory_start in
       let* () = write_cstring ms "tock" in
       let* s = read_cstring ms 16 in
       let* () = print s in
       return 0)
  in
  Alcotest.(check string) "cstring roundtrip" "tock" out;
  Alcotest.(check (option int)) "clean exit" (Some 0) code

let test_libc_memcpy_memset () =
  let out, _ =
    run_on_kernel
      (let* ms = memory_start in
       let* () = write_string ms "abcdef" in
       let* () = memcpy ~dst:(ms + 32) ~src:ms 6 in
       let* () = memset ms (Char.code 'x') 3 in
       let* a = read_string ms 6 in
       let* b = read_string (ms + 32) 6 in
       let* () = printf "%s %s" a b in
       return 0)
  in
  Alcotest.(check string) "memcpy before memset; memset partial" "xxxdef abcdef" out

let test_libc_respects_mpu () =
  (* memcpy into kernel memory faults like any other store *)
  let k = Boards.instance_ticktock_arm () in
  let pid =
    Result.get_ok
      (k.Instance.load ~name:"libcbad" ~payload:"l"
         ~program:
           (to_program
              (let* ms = memory_start in
               let* () = memcpy ~dst:(Range.start Layout.kernel_sram) ~src:ms 4 in
               return 0))
         ~min_ram:2048 ~grant_reserve:1024 ~heap_headroom:1024)
  in
  k.Instance.run ~max_ticks:100;
  Alcotest.(check bool) "faulted" true (k.Instance.proc_faulted pid)

let suite =
  suite
  @ [
      Alcotest.test_case "libc string roundtrip" `Quick test_libc_string_roundtrip;
      Alcotest.test_case "libc memcpy/memset" `Quick test_libc_memcpy_memset;
      Alcotest.test_case "libc respects the MPU" `Quick test_libc_respects_mpu;
    ]
