(* Tock's monolithic drivers: Figure 4a behaviour and the documented bugs. *)

open Ticktock

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let base = 0x2000_8000
let rw = Perms.Read_write_only

module Up = Tock_cortexm_mpu.Upstream
module Pa = Tock_cortexm_mpu.Patched

let allocate (type cfg) (module M : Region_intf.MONOLITHIC with type config = cfg)
    ~unalloc_start ~min_size ~app_size
    ~kernel_size =
  let config = M.new_config () in
  ( config,
    M.allocate_app_mem_region ~config ~unalloc_start ~unalloc_size:0x20000 ~min_size ~app_size
      ~kernel_size ~perms:rw )

let test_allocate_rounds_to_pow2 () =
  let _, result = allocate (module Pa) ~unalloc_start:base ~min_size:3000 ~app_size:2048
      ~kernel_size:1024
  in
  match result with
  | Some (start, size) ->
    check_int "start at aligned base" base start;
    check_int "block is a power of two" 4096 size
  | None -> Alcotest.fail "allocation failed"

let test_allocate_aligns_start () =
  let _, result = allocate (module Pa) ~unalloc_start:(base + 100) ~min_size:4096
      ~app_size:4096 ~kernel_size:1024
  in
  match result with
  | Some (start, _) ->
    check_bool "aligned to region size" true (Math32.is_aligned start ~align:4096)
  | None -> Alcotest.fail "allocation failed"

(* The §3.4 scenario: app fills the block right up to the kernel reserve.
   Upstream "mitigates" by doubling region_size but not mem_size_po2, so the
   enforced end still overlaps the grant reserve. *)
let overlap_inputs = (base, 512, 7680, 512)

let enforced_end config = Option.get (Up.enabled_subregions_end config)

let test_grant_overlap_bug_upstream () =
  let unalloc_start, min_size, app_size, kernel_size = overlap_inputs in
  let config, result =
    allocate (module Up) ~unalloc_start ~min_size ~app_size ~kernel_size
  in
  match result with
  | Some (start, size) ->
    let kernel_mem_break = start + size - kernel_size in
    check_bool "BUG: subregions overlap the grant reserve" true
      (enforced_end config > kernel_mem_break)
  | None -> Alcotest.fail "allocation failed"

let test_grant_overlap_fixed_patched () =
  let unalloc_start, min_size, app_size, kernel_size = overlap_inputs in
  let config, result =
    allocate (module Pa) ~unalloc_start ~min_size ~app_size ~kernel_size
  in
  match result with
  | Some (start, size) ->
    let kernel_mem_break = start + size - kernel_size in
    check_bool "patched: no overlap" true
      (Option.get (Pa.enabled_subregions_end config) <= kernel_mem_break);
    check_bool "fix doubles the block" true (size >= 16384)
  | None -> Alcotest.fail "allocation failed"

let test_brk_underflow_panics_upstream () =
  let config, result =
    allocate (module Up) ~unalloc_start:base ~min_size:4096 ~app_size:4096 ~kernel_size:1024
  in
  match result with
  | None -> Alcotest.fail "setup failed"
  | Some (start, size) -> (
    match
      Up.update_app_mem_region ~config ~new_app_break:(Word32.sub start 64)
        ~kernel_break:(start + size) ~perms:rw
    with
    | Ok () | Error () -> Alcotest.fail "expected the modeled kernel panic"
    | exception Tock_cortexm_mpu.Kernel_panic _ -> ())

let test_brk_underflow_rejected_patched () =
  let config, result =
    allocate (module Pa) ~unalloc_start:base ~min_size:4096 ~app_size:4096 ~kernel_size:1024
  in
  match result with
  | None -> Alcotest.fail "setup failed"
  | Some (start, size) ->
    check_bool "patched validates and refuses" true
      (Pa.update_app_mem_region ~config ~new_app_break:(Word32.sub start 64)
         ~kernel_break:(start + size) ~perms:rw
      = Error ())

let test_brk_legal_update () =
  let config, result =
    allocate (module Pa) ~unalloc_start:base ~min_size:4096 ~app_size:2048 ~kernel_size:1024
  in
  match result with
  | None -> Alcotest.fail "setup failed"
  | Some (start, size) ->
    check_bool "legal grow accepted" true
      (Pa.update_app_mem_region ~config ~new_app_break:(start + 3000)
         ~kernel_break:(start + size) ~perms:rw
      = Ok ());
    check_bool "enforced end grows" true
      (Option.get (Pa.enabled_subregions_end config) >= start + 3000)

let test_brk_beyond_kernel_break_refused () =
  let config, result =
    allocate (module Pa) ~unalloc_start:base ~min_size:4096 ~app_size:2048 ~kernel_size:1024
  in
  match result with
  | None -> Alcotest.fail "setup failed"
  | Some (start, size) ->
    check_bool "grow into grant refused" true
      (Pa.update_app_mem_region ~config ~new_app_break:(start + size)
         ~kernel_break:(start + size - 1024) ~perms:rw
      = Error ())

(* --- PMP monolithic bugs --- *)

module PmpUp = Tock_pmp_mpu.Upstream_e310
module PmpPa = Tock_pmp_mpu.Patched_e310

let pmp_setup (type cfg) (module M : Region_intf.MONOLITHIC with type config = cfg) =
  let config = M.new_config () in
  match
    M.allocate_app_mem_region ~config ~unalloc_start:base ~unalloc_size:0x10000 ~min_size:2048
      ~app_size:2048 ~kernel_size:512 ~perms:rw
  with
  | Some (start, _) -> (config, start)
  | None -> Alcotest.fail "pmp setup failed"

let test_pmp_above_brk_bug () =
  let config, start = pmp_setup (module PmpUp) in
  (match
     PmpUp.update_app_mem_region ~config ~new_app_break:(start + 1026)
       ~kernel_break:(start + 2048) ~perms:rw
   with
  | Ok () -> ()
  | Error () -> Alcotest.fail "update failed");
  check_bool "BUG: region top rounded past the break" true
    (Option.get (PmpUp.enabled_subregions_end config) > start + 1028)

let test_pmp_above_brk_patched () =
  let config, start = pmp_setup (module PmpPa) in
  (match
     PmpPa.update_app_mem_region ~config ~new_app_break:(start + 1026)
       ~kernel_break:(start + 2048) ~perms:rw
   with
  | Ok () -> ()
  | Error () -> Alcotest.fail "update failed");
  check_int "patched: tight 4-byte rounding" (start + 1028)
    (Option.get (PmpPa.enabled_subregions_end config))

let test_pmp_shifted_comparison_bug () =
  (* With the unit-confused comparison, an update whose region top exceeds
     the kernel break is accepted anyway. *)
  let config, start = pmp_setup (module PmpUp) in
  check_bool "BUG: overlap accepted" true
    (PmpUp.update_app_mem_region ~config ~new_app_break:(start + 2048)
       ~kernel_break:(start + 1024) ~perms:rw
    = Ok ())

let test_pmp_shifted_comparison_patched () =
  let config, start = pmp_setup (module PmpPa) in
  check_bool "patched: overlap refused" true
    (PmpPa.update_app_mem_region ~config ~new_app_break:(start + 2048)
       ~kernel_break:(start + 1024) ~perms:rw
    = Error ())

let suite =
  [
    Alcotest.test_case "allocate rounds to pow2 (Figure 4a)" `Quick test_allocate_rounds_to_pow2;
    Alcotest.test_case "allocate aligns start" `Quick test_allocate_aligns_start;
    Alcotest.test_case "grant overlap bug (upstream, #4366)" `Quick
      test_grant_overlap_bug_upstream;
    Alcotest.test_case "grant overlap fixed (patched)" `Quick test_grant_overlap_fixed_patched;
    Alcotest.test_case "brk underflow panics (upstream, §2.2)" `Quick
      test_brk_underflow_panics_upstream;
    Alcotest.test_case "brk underflow rejected (patched)" `Quick
      test_brk_underflow_rejected_patched;
    Alcotest.test_case "legal brk update" `Quick test_brk_legal_update;
    Alcotest.test_case "brk into grant refused" `Quick test_brk_beyond_kernel_break_refused;
    Alcotest.test_case "pmp rounding above brk (upstream, #2173)" `Quick test_pmp_above_brk_bug;
    Alcotest.test_case "pmp rounding patched" `Quick test_pmp_above_brk_patched;
    Alcotest.test_case "pmp shifted comparison (upstream, #2947)" `Quick
      test_pmp_shifted_comparison_bug;
    Alcotest.test_case "pmp comparison patched" `Quick test_pmp_shifted_comparison_patched;
  ]
