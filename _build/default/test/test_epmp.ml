(* Smepmp (ePMP) machine-mode lockdown: kernel self-protection on EarlGrey. *)

open Ticktock
module Hw = Mpu_hw.Pmp

let check_bool = Alcotest.(check bool)

let sealed () =
  let pmp = Hw.create Hw.earlgrey in
  Epmp.protect_kernel pmp;
  pmp

let m_ok pmp access a =
  match Hw.check_access pmp ~machine_mode:true a access with Ok () -> true | Error _ -> false

let u_ok pmp access a =
  match Hw.check_access pmp ~machine_mode:false a access with Ok () -> true | Error _ -> false

let test_protect_requires_epmp () =
  let pmp = Hw.create Hw.sifive_e310 in
  Alcotest.check_raises "no ePMP" (Invalid_argument "Epmp.protect_kernel: chip has no ePMP")
    (fun () -> Epmp.protect_kernel pmp)

let test_kernel_sealed_predicate () =
  check_bool "sealed" true (Epmp.kernel_sealed (sealed ()))

let test_kernel_text_immutable () =
  let pmp = sealed () in
  let text = Range.start Layout.kernel_flash + 0x100 in
  check_bool "M-mode executes kernel text" true (m_ok pmp Perms.Execute text);
  check_bool "M-mode cannot write kernel text" false (m_ok pmp Perms.Write text);
  check_bool "U-mode cannot touch kernel text" false (u_ok pmp Perms.Read text)

let test_no_machine_code_injection () =
  let pmp = sealed () in
  let sram = Range.start Layout.kernel_sram + 0x100 in
  check_bool "M-mode writes RAM" true (m_ok pmp Perms.Write sram);
  check_bool "M-mode never executes RAM" false (m_ok pmp Perms.Execute sram);
  let app = Range.start Layout.app_sram + 0x100 in
  check_bool "M-mode never executes app RAM" false (m_ok pmp Perms.Execute app)

let test_mmwp_whole_protection () =
  let pmp = sealed () in
  check_bool "M-mode blocked outside locked entries" false (m_ok pmp Perms.Read 0xE000_0000)

let test_locked_entries_immutable () =
  let pmp = sealed () in
  Alcotest.check_raises "locked entry rejects rewrite"
    (Invalid_argument "set_entry: entry locked") (fun () ->
      Hw.set_entry pmp ~index:15 ~cfg:0xFF ~addr:0)

let test_process_regions_still_work () =
  (* user-mode process regions at the low indices keep working under MML *)
  let pmp = sealed () in
  let base = Range.start Layout.app_sram in
  (match
     Pmp_mpu.Earlgrey.new_regions ~max_region_id:1 ~unalloc_start:base ~unalloc_size:0x8000
       ~total_size:4096 ~perms:Perms.Read_write_only
   with
  | Some (r0, _) -> Pmp_mpu.Earlgrey.configure_mpu pmp [| r0 |]
  | None -> Alcotest.fail "allocation failed");
  check_bool "U-mode reads its region" true (u_ok pmp Perms.Read base);
  check_bool "U-mode writes its region" true (u_ok pmp Perms.Write base);
  check_bool "U-mode stops at region end" false (u_ok pmp Perms.Read (base + 4096));
  check_bool "U-mode cannot use the locked SRAM entry" false
    (u_ok pmp Perms.Read (Range.start Layout.kernel_sram))

let test_mml_unlocked_entries_are_user_only () =
  let pmp = sealed () in
  let base = Range.start Layout.app_sram in
  (match
     Pmp_mpu.Earlgrey.new_regions ~max_region_id:1 ~unalloc_start:base ~unalloc_size:0x8000
       ~total_size:4096 ~perms:Perms.Read_write_only
   with
  | Some (r0, _) -> Pmp_mpu.Earlgrey.configure_mpu pmp [| r0 |]
  | None -> Alcotest.fail "allocation failed");
  (* the process region matches first for M-mode too — and under MML an
     unlocked entry denies machine mode... *)
  check_bool "M-mode denied via U-mode-only entry" false (m_ok pmp Perms.Read base)

let test_earlgrey_board_boots_sealed () =
  let m, k = Boards.make_ticktock_earlgrey () in
  check_bool "board sealed at boot" true (Epmp.kernel_sealed m.Machine.rv_pmp);
  (* and processes still run *)
  let open Apps.App_dsl in
  match
    Boards.Ticktock_earlgrey.create_process k ~name:"sealed-hello" ~payload:"x"
      ~program:(to_program (let* () = print "ok" in return 0))
      ~min_ram:2048 ()
  with
  | Ok p ->
    Boards.Ticktock_earlgrey.run k ~max_ticks:100;
    Alcotest.(check string) "app ran under lockdown" "ok" (Process.output p);
    check_bool "still sealed after running" true (Epmp.kernel_sealed m.Machine.rv_pmp)
  | Error e -> Alcotest.failf "create: %a" Kerror.pp e

let suite =
  [
    Alcotest.test_case "protect requires ePMP" `Quick test_protect_requires_epmp;
    Alcotest.test_case "kernel_sealed predicate" `Quick test_kernel_sealed_predicate;
    Alcotest.test_case "kernel text immutable" `Quick test_kernel_text_immutable;
    Alcotest.test_case "no machine-code injection from RAM" `Quick
      test_no_machine_code_injection;
    Alcotest.test_case "MMWP whole protection" `Quick test_mmwp_whole_protection;
    Alcotest.test_case "locked entries immutable" `Quick test_locked_entries_immutable;
    Alcotest.test_case "process regions work under MML" `Quick test_process_regions_still_work;
    Alcotest.test_case "unlocked entries are U-mode-only" `Quick
      test_mml_unlocked_entries_are_user_only;
    Alcotest.test_case "earlgrey board boots sealed" `Quick test_earlgrey_board_boots_sealed;
  ]
