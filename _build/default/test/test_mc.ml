(* Machine-code execution, differentially validated against the
   method-level FluxArm model — our translation validation for the lift. *)

module C = Fluxarm.Cpu
module R = Fluxarm.Regs
module E = Fluxarm.Exn
module T = Fluxarm.Thumb
module H = Fluxarm.Handlers
module HM = Fluxarm.Handlers_mc
module A = Ticktock.Proofs.Granular.A

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let machine () = Ticktock.Proofs.Interrupts.fresh_machine ()

let bare () =
  let mem = Memory.create () in
  (mem, C.create mem)

let run_at mem cpu addr prog =
  ignore (T.assemble mem addr prog);
  C.set_special_raw cpu R.Pc addr;
  Fluxarm.Mc.run cpu

let test_straight_line () =
  let mem, cpu = bare () in
  let stop =
    run_at mem cpu 0x1000
      [ T.Movw (R.R0, 0x1234); T.Movt (R.R0, 0x5678); T.Mov_reg (R.R1, R.R0); T.Svc 7 ]
  in
  check_bool "stops at svc" true (stop = Fluxarm.Mc.Svc_taken 7);
  check_int "r0 built by movw/movt" 0x5678_1234 (C.get cpu R.R0);
  check_int "r1 copied" 0x5678_1234 (C.get cpu R.R1);
  check_int "pc after svc" (0x1000 + 4 + 4 + 2 + 2) (C.get_special cpu R.Pc)

let test_load_store () =
  let mem, cpu = bare () in
  let base = Range.start Layout.app_sram in
  C.set cpu R.R1 base;
  C.set cpu R.R2 0xCAFE;
  let stop =
    run_at mem cpu 0x1000
      [ T.Str_imm (R.R2, R.R1, 16); T.Ldr_imm (R.R3, R.R1, 16); T.Svc 0 ]
  in
  check_bool "completed" true (stop = Fluxarm.Mc.Svc_taken 0);
  check_int "str/ldr through memory" 0xCAFE (C.get cpu R.R3);
  check_int "memory contains it" 0xCAFE (Memory.read32 mem (base + 16))

let test_branching () =
  let mem, cpu = bare () in
  (* compare lr against r2; equal -> skip the movw marker *)
  C.pseudo_ldr_special cpu R.Lr 0x42;
  C.set cpu R.R2 0x42;
  let stop =
    run_at mem cpu 0x1000
      [
        T.Cmp_lr R.R2;
        T.B_cond (`Eq, 1) (* skip one 16-bit slot... which is half of movw *);
      ]
  in
  (* simpler: validate flags + taken branch semantics directly *)
  ignore stop;
  check_bool "Z set by equal cmp" true (C.flag_z cpu)

let test_branch_targets () =
  let mem, cpu = bare () in
  (* bne taken jumps over movw r0,#1 (4 bytes -> off 1): r0 stays 0 *)
  C.pseudo_ldr_special cpu R.Lr 1;
  C.set cpu R.R2 2;
  let stop =
    run_at mem cpu 0x1000
      [ T.Cmp_lr R.R2; T.B_cond (`Ne, 1); T.Movw (R.R0, 1); T.Svc 0 ]
  in
  check_bool "completed" true (stop = Fluxarm.Mc.Svc_taken 0);
  check_int "movw skipped" 0 (C.get cpu R.R0);
  (* not taken path executes the movw *)
  let mem2, cpu2 = bare () in
  C.pseudo_ldr_special cpu2 R.Lr 2;
  C.set cpu2 R.R2 2;
  ignore (T.assemble mem2 0x1000 [ T.Cmp_lr R.R2; T.B_cond (`Ne, 1); T.Movw (R.R0, 1); T.Svc 0 ]);
  C.set_special_raw cpu2 R.Pc 0x1000;
  ignore (Fluxarm.Mc.run cpu2);
  check_int "movw executed" 1 (C.get cpu2 R.R0)

let test_decode_error_stops () =
  let mem, cpu = bare () in
  Memory.write32 mem 0x1000 0xFFFF_FFFF;
  C.set_special_raw cpu R.Pc 0x1000;
  match Fluxarm.Mc.run cpu with
  | Fluxarm.Mc.Decode_error _ -> ()
  | _ -> Alcotest.fail "expected decode error"

let test_fetch_respects_mpu () =
  (* unprivileged fetch from kernel flash must fault *)
  let m, _, _ = machine () in
  let cpu = m.Ticktock.Machine.arm_cpu in
  C.movw_imm cpu R.R0 1;
  C.msr cpu R.Control R.R0;
  C.isb cpu;
  C.set_special_raw cpu R.Pc 0x1000;
  match Fluxarm.Mc.step cpu with
  | exception Memory.Access_fault f ->
    check_bool "execute fault" true (f.Memory.fault_access = Perms.Execute)
  | _ -> Alcotest.fail "expected an execute fault"

(* --- differential validation: machine code vs method model --- *)

let test_systick_differential () =
  (* run the method-model systick on one machine and the machine-code one
     on another; final CPU state must agree *)
  let m1, _, _ = machine () in
  let m2, _, _ = machine () in
  let cpu1 = m1.Ticktock.Machine.arm_cpu and cpu2 = m2.Ticktock.Machine.arm_cpu in
  let t = HM.install m2.Ticktock.Machine.arm_mem in
  E.entry cpu1 ~exc_num:E.exc_systick;
  E.entry cpu2 ~exc_num:E.exc_systick;
  let lr1 = H.sys_tick_isr cpu1 in
  let lr2 = Fluxarm.Mc.run_handler cpu2 ~entry:(HM.isr_entry t ~exc_num:E.exc_systick) in
  check_int "same EXC_RETURN" lr1 lr2;
  check_int "same CONTROL" (C.control_committed cpu1) (C.control_committed cpu2);
  check_bool "same privilege" true (C.privileged cpu1 = C.privileged cpu2)

let test_svc_differential_both_directions () =
  let dir ~from_kernel =
    let m1, alloc1, _ = machine () in
    let m2, _, _ = machine () in
    let cpu1 = m1.Ticktock.Machine.arm_cpu and cpu2 = m2.Ticktock.Machine.arm_cpu in
    let t = HM.install m2.Ticktock.Machine.arm_mem in
    let prepare cpu alloc =
      if not from_kernel then begin
        let psp = A.app_break alloc - 64 in
        C.set cpu R.R0 psp;
        C.msr cpu R.Psp R.R0;
        C.movw_imm cpu R.R1 2;
        C.msr cpu R.Control R.R1;
        C.isb cpu
      end;
      E.entry cpu ~exc_num:E.exc_svc
    in
    prepare cpu1 alloc1;
    prepare cpu2 alloc1;
    let lr1 = H.svc_isr cpu1 in
    let lr2 = Fluxarm.Mc.run_handler cpu2 ~entry:(HM.isr_entry t ~exc_num:E.exc_svc) in
    check_int
      (Printf.sprintf "same EXC_RETURN (from_kernel=%b)" from_kernel)
      lr1 lr2;
    C.isb cpu1;
    C.isb cpu2;
    check_int "same CONTROL" (C.control_committed cpu1) (C.control_committed cpu2)
  in
  dir ~from_kernel:true;
  dir ~from_kernel:false

let test_mc_control_flow () =
  let m, alloc, regs_base = machine () in
  let t = HM.install m.Ticktock.Machine.arm_mem in
  match
    HM.control_flow_kernel_to_kernel t m.Ticktock.Machine.arm_cpu ~exc_num:15
      ~process_sp:(A.app_break alloc - 64) ~regs_base
      ~process_accessible:(A.accessible alloc) ~seed:11
  with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_mc_control_flow_all_irqs () =
  List.iter
    (fun exc_num ->
      let m, alloc, regs_base = machine () in
      let t = HM.install m.Ticktock.Machine.arm_mem in
      match
        HM.control_flow_kernel_to_kernel t m.Ticktock.Machine.arm_cpu ~exc_num
          ~process_sp:(A.app_break alloc - 64) ~regs_base
          ~process_accessible:(A.accessible alloc) ~seed:exc_num
      with
      | Ok () -> ()
      | Error e -> Alcotest.failf "exc %d: %s" exc_num e)
    [ 15; 16; 20; 31 ]

let test_mc_mode_switch_bug_caught () =
  let m, alloc, regs_base = machine () in
  let t = HM.install ~faults:{ H.skip_mode_switch = true } m.Ticktock.Machine.arm_mem in
  Verify.Violation.with_enabled true (fun () ->
      match
        HM.switch_to_user_part1 t m.Ticktock.Machine.arm_cpu
          ~process_sp:(A.app_break alloc - 64) ~regs_base
      with
      | () -> Alcotest.fail "machine-code mode-switch bug must be caught"
      | exception Verify.Violation.Violation _ -> ())

let test_mc_switch_preserves_kernel_state () =
  let m, alloc, regs_base = machine () in
  let cpu = m.Ticktock.Machine.arm_cpu in
  let mem = m.Ticktock.Machine.arm_mem in
  let t = HM.install mem in
  (* process frame + stored regs *)
  let psp = A.app_break alloc - 64 in
  for i = 0 to 7 do
    Memory.write32 mem (psp + (4 * i)) (0x9100 + i);
    Memory.write32 mem (regs_base + (4 * i)) (0x7100 + i)
  done;
  List.iteri (fun i r -> C.set cpu r (0x4100 + i)) R.callee_saved;
  let snap = C.snapshot cpu in
  HM.switch_to_user_part1 t cpu ~process_sp:psp ~regs_base;
  check_int "process regs loaded from stored state" 0x7100 (C.get cpu R.R4);
  check_int "process frame popped" 0x9100 (C.get cpu R.R0);
  C.set cpu R.R5 0xBEEF;
  HM.preempt_process t cpu ~exc_num:E.exc_systick;
  HM.switch_to_user_part2 t cpu;
  check_bool "kernel state restored" true (C.cpu_state_correct ~old:snap cpu = Ok ());
  check_int "process r5 saved back" 0xBEEF (Memory.read32 mem (regs_base + 4))

let suite =
  [
    Alcotest.test_case "straight-line execution" `Quick test_straight_line;
    Alcotest.test_case "load/store" `Quick test_load_store;
    Alcotest.test_case "cmp sets flags" `Quick test_branching;
    Alcotest.test_case "conditional branch targets" `Quick test_branch_targets;
    Alcotest.test_case "decode errors stop" `Quick test_decode_error_stops;
    Alcotest.test_case "fetch respects the MPU" `Quick test_fetch_respects_mpu;
    Alcotest.test_case "systick: mc = model (differential)" `Quick test_systick_differential;
    Alcotest.test_case "svc both directions: mc = model" `Quick
      test_svc_differential_both_directions;
    Alcotest.test_case "mc control flow kernel-to-kernel" `Quick test_mc_control_flow;
    Alcotest.test_case "mc control flow across irqs" `Quick test_mc_control_flow_all_irqs;
    Alcotest.test_case "mc mode-switch bug caught" `Quick test_mc_mode_switch_bug_caught;
    Alcotest.test_case "mc switch preserves kernel state" `Quick
      test_mc_switch_preserves_kernel_state;
  ]

(* --- vector-table dispatch --- *)

module VT = Fluxarm.Vector_table

let test_vector_table_roundtrip () =
  let mem = Memory.create () in
  VT.install mem ~base:0x0 [ (15, 0x1234); (11, 0x2000) ];
  check_int "systick entry" 0x1234 (VT.handler_entry mem ~base:0x0 ~exc_num:15);
  check_int "svc entry" 0x2000 (VT.handler_entry mem ~base:0x0 ~exc_num:11);
  check_int "thumb bit stored" 1 (Memory.read32 mem (4 * 15) land 1);
  check_int "initial msp" (Range.end_ Layout.kernel_sram) (VT.initial_msp mem ~base:0x0)

let test_vector_table_dispatch_equals_direct () =
  (* preempting through the vector table must behave exactly like calling
     the machine-code ISR directly *)
  let m1, _, _ = machine () in
  let m2, _, _ = machine () in
  let cpu1 = m1.Ticktock.Machine.arm_cpu and cpu2 = m2.Ticktock.Machine.arm_cpu in
  let t1 = HM.install m1.Ticktock.Machine.arm_mem in
  let t2 = HM.install m2.Ticktock.Machine.arm_mem in
  VT.install_for m2.Ticktock.Machine.arm_mem ~base:0x0 t2;
  let snap1 = C.snapshot cpu1 and snap2 = C.snapshot cpu2 in
  E.preempt cpu1 ~exc_num:15 ~isr:(fun cpu -> HM.run_isr t1 cpu ~exc_num:15);
  E.preempt cpu2 ~exc_num:15 ~isr:(VT.isr m2.Ticktock.Machine.arm_mem ~base:0x0 ~exc_num:15);
  check_bool "direct path clean" true (C.cpu_state_correct ~old:snap1 cpu1 = Ok ());
  check_bool "table path clean" true (C.cpu_state_correct ~old:snap2 cpu2 = Ok ())

let test_vector_table_unset_handler () =
  let m, _, _ = machine () in
  let mem = m.Ticktock.Machine.arm_mem in
  VT.install mem ~base:0x0 [];
  let cpu = m.Ticktock.Machine.arm_cpu in
  match E.preempt cpu ~exc_num:20 ~isr:(VT.isr mem ~base:0x0 ~exc_num:20) with
  | () -> Alcotest.fail "unset handler must fail"
  | exception Failure _ -> ()

let suite =
  suite
  @ [
      Alcotest.test_case "vector table roundtrip" `Quick test_vector_table_roundtrip;
      Alcotest.test_case "vector dispatch = direct dispatch" `Quick
        test_vector_table_dispatch_equals_direct;
      Alcotest.test_case "unset vector entry" `Quick test_vector_table_unset_handler;
    ]
