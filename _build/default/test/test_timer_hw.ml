(* SysTick and NVIC hardware models. *)

module S = Mpu_hw.Systick
module N = Mpu_hw.Nvic

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_systick_countdown () =
  let s = S.create () in
  S.start s ~reload:10 ~tickint:true;
  S.advance s 9;
  check_bool "not yet" false (S.pending s);
  check_int "counter" 1 (S.read_cvr s);
  S.advance s 1;
  check_bool "pended at zero" true (S.pending s);
  check_int "wrapped to reload" 10 (S.read_cvr s)

let test_systick_countflag_clears_on_read () =
  let s = S.create () in
  S.start s ~reload:4 ~tickint:false;
  S.advance s 4;
  check_bool "no exception without tickint" false (S.pending s);
  check_bool "countflag set" true (S.read_csr s land (1 lsl 16) <> 0);
  check_bool "cleared by the read" true (S.read_csr s land (1 lsl 16) = 0)

let test_systick_cvr_write_clears () =
  let s = S.create () in
  S.start s ~reload:100 ~tickint:true;
  S.advance s 50;
  S.write_cvr s 12345;
  check_int "any write clears" 0 (S.read_cvr s)

let test_systick_disabled_does_not_count () =
  let s = S.create () in
  S.write_rvr s 4;
  S.advance s 100;
  check_bool "no pending while disabled" false (S.pending s)

let test_systick_take_pending () =
  let s = S.create () in
  S.start s ~reload:2 ~tickint:true;
  S.advance s 2;
  check_bool "take returns true once" true (S.take_pending s);
  check_bool "then false" false (S.take_pending s)

let test_systick_fast_advance () =
  let s = S.create () in
  S.start s ~reload:7 ~tickint:true;
  S.advance s 7000;
  check_bool "pending after big jump" true (S.pending s);
  check_bool "counter in range" true (S.read_cvr s >= 0 && S.read_cvr s <= 7)

let test_systick_exception_number () =
  check_int "systick is exception 15" Fluxarm.Exn.exc_systick S.exception_number

let test_nvic_enable_pend () =
  let n = N.create () in
  N.set_pending n 5;
  check_bool "pending but not enabled: not taken" true (N.next_pending n = None);
  N.enable n 5;
  check_bool "now visible" true (N.next_pending n = Some 5);
  Alcotest.(check (option int)) "acknowledge gives exception 21" (Some 21) (N.acknowledge n);
  check_bool "cleared" false (N.is_pending n 5)

let test_nvic_priority_order () =
  let n = N.create () in
  List.iter (fun i -> N.enable n i) [ 3; 7; 9 ];
  List.iter (fun i -> N.set_pending n i) [ 3; 7; 9 ];
  N.set_priority n 7 0 (* most urgent *);
  N.set_priority n 3 64;
  N.set_priority n 9 64;
  Alcotest.(check (option int)) "urgent first" (Some (16 + 7)) (N.acknowledge n);
  Alcotest.(check (option int)) "then lowest number among ties" (Some (16 + 3))
    (N.acknowledge n);
  Alcotest.(check (option int)) "then the rest" (Some (16 + 9)) (N.acknowledge n);
  Alcotest.(check (option int)) "empty" None (N.acknowledge n)

let test_nvic_disable () =
  let n = N.create () in
  N.enable n 2;
  N.set_pending n 2;
  N.disable n 2;
  check_bool "disabled irq invisible" true (N.next_pending n = None);
  check_bool "but still latched" true (N.is_pending n 2)

let test_nvic_bounds () =
  let n = N.create () in
  Alcotest.check_raises "irq bounds" (Invalid_argument "nvic: irq") (fun () -> N.enable n 32)

let test_nvic_feeds_fluxarm_preempt () =
  (* an NVIC-acknowledged exception number drives the modeled preemption *)
  let m, alloc, regs_base = Ticktock.Proofs.Interrupts.fresh_machine () in
  let n = m.Ticktock.Machine.arm_nvic in
  N.enable n 4;
  N.set_pending n 4;
  match N.acknowledge n with
  | Some exc_num -> (
    check_int "irq 4 = exception 20" 20 exc_num;
    match
      Fluxarm.Handlers.control_flow_kernel_to_kernel m.Ticktock.Machine.arm_cpu ~exc_num
        ~process_sp:(Ticktock.Proofs.Granular.A.app_break alloc - 64)
        ~regs_base
        ~process_accessible:(Ticktock.Proofs.Granular.A.accessible alloc)
        ~seed:4
    with
    | Ok () -> ()
    | Error e -> Alcotest.fail e)
  | None -> Alcotest.fail "expected pending irq"

let suite =
  [
    Alcotest.test_case "systick countdown" `Quick test_systick_countdown;
    Alcotest.test_case "systick countflag read-clear" `Quick
      test_systick_countflag_clears_on_read;
    Alcotest.test_case "systick cvr write clears" `Quick test_systick_cvr_write_clears;
    Alcotest.test_case "systick disabled" `Quick test_systick_disabled_does_not_count;
    Alcotest.test_case "systick take_pending" `Quick test_systick_take_pending;
    Alcotest.test_case "systick fast advance" `Quick test_systick_fast_advance;
    Alcotest.test_case "systick exception number" `Quick test_systick_exception_number;
    Alcotest.test_case "nvic enable/pend/ack" `Quick test_nvic_enable_pend;
    Alcotest.test_case "nvic priority order" `Quick test_nvic_priority_order;
    Alcotest.test_case "nvic disable" `Quick test_nvic_disable;
    Alcotest.test_case "nvic bounds" `Quick test_nvic_bounds;
    Alcotest.test_case "nvic feeds preemption" `Quick test_nvic_feeds_fluxarm_preempt;
  ]
