(* Unit and property tests for 32-bit word arithmetic. *)

let check_int = Alcotest.(check int)

let test_wrap_add () =
  check_int "max + 1 wraps to 0" 0 (Word32.add Word32.max_value 1);
  check_int "plain add" 7 (Word32.add 3 4);
  check_int "wrap multiple" 4 (Word32.add 0xFFFF_FFFE 6)

let test_wrap_sub () =
  check_int "0 - 1 wraps to max" Word32.max_value (Word32.sub 0 1);
  check_int "plain sub" 1 (Word32.sub 4 3);
  check_int "the paper's underflow: 0 - 1 = usize::MAX" 0xFFFF_FFFF (Word32.sub 0 1)

let test_wrap_mul () =
  check_int "mul wraps" 0 (Word32.mul 0x1_0000 0x1_0000);
  check_int "plain mul" 12 (Word32.mul 3 4)

let test_checked () =
  Alcotest.(check (option int)) "checked_add overflow" None (Word32.checked_add Word32.max_value 1);
  Alcotest.(check (option int)) "checked_add ok" (Some 5) (Word32.checked_add 2 3);
  Alcotest.(check (option int)) "checked_sub underflow" None (Word32.checked_sub 2 3);
  Alcotest.(check (option int)) "checked_sub ok" (Some 1) (Word32.checked_sub 3 2);
  Alcotest.(check (option int)) "checked_mul overflow" None
    (Word32.checked_mul 0x1_0000 0x1_0000);
  Alcotest.(check (option int)) "checked_mul ok" (Some 6) (Word32.checked_mul 2 3)

let test_bits () =
  check_int "extract middle field" 0b101 (Word32.bits 0b1011010 ~hi:6 ~lo:4);
  check_int "set field" 0b1111010 (Word32.set_bits 0b1011010 ~hi:6 ~lo:4 0b111);
  Alcotest.(check bool) "bit read" true (Word32.bit 0x10 4);
  Alcotest.(check bool) "bit read clear" false (Word32.bit 0x10 5);
  check_int "set_bit on" 0x30 (Word32.set_bit 0x10 5 true);
  check_int "set_bit off" 0x00 (Word32.set_bit 0x10 4 false)

let test_lognot () =
  check_int "lognot stays 32-bit" 0xFFFF_FFFE (Word32.lognot 1);
  check_int "double negation" 0x1234_5678 (Word32.lognot (Word32.lognot 0x1234_5678))

let test_shifts () =
  check_int "shl wraps" 0xFFFF_FFFE (Word32.shift_left Word32.max_value 1);
  check_int "shr" 0x7FFF_FFFF (Word32.shift_right Word32.max_value 1)

let test_hex () =
  Alcotest.(check string) "to_hex" "0xdeadbeef" (Word32.to_hex 0xDEAD_BEEF);
  Alcotest.(check string) "to_hex pads" "0x00000001" (Word32.to_hex 1)

(* --- properties --- *)

let word_gen = QCheck.map (fun i -> i land Word32.mask) (QCheck.int_bound max_int)

let prop_add_comm =
  QCheck.Test.make ~name:"add commutes" ~count:500 (QCheck.pair word_gen word_gen)
    (fun (a, b) -> Word32.add a b = Word32.add b a)

let prop_sub_add_inverse =
  QCheck.Test.make ~name:"sub inverts add (mod 2^32)" ~count:500
    (QCheck.pair word_gen word_gen) (fun (a, b) -> Word32.sub (Word32.add a b) b = a)

let prop_valid_closed =
  QCheck.Test.make ~name:"operations stay in range" ~count:500 (QCheck.pair word_gen word_gen)
    (fun (a, b) ->
      Word32.is_valid (Word32.add a b)
      && Word32.is_valid (Word32.sub a b)
      && Word32.is_valid (Word32.mul a b)
      && Word32.is_valid (Word32.lognot a))

let prop_bits_roundtrip =
  QCheck.Test.make ~name:"set_bits then bits round-trips" ~count:500
    (QCheck.triple word_gen (QCheck.int_range 0 31) (QCheck.int_range 0 31))
    (fun (w, a, b) ->
      let hi = max a b and lo = min a b in
      let v = 0b1011 land ((1 lsl (hi - lo + 1)) - 1) in
      Word32.bits (Word32.set_bits w ~hi ~lo v) ~hi ~lo = v)

let prop_checked_agrees =
  QCheck.Test.make ~name:"checked_add agrees with wrap when no overflow" ~count:500
    (QCheck.pair word_gen word_gen) (fun (a, b) ->
      match Word32.checked_add a b with
      | Some s -> s = Word32.add a b
      | None -> a + b > Word32.mask)

let suite =
  [
    Alcotest.test_case "wrapping add" `Quick test_wrap_add;
    Alcotest.test_case "wrapping sub" `Quick test_wrap_sub;
    Alcotest.test_case "wrapping mul" `Quick test_wrap_mul;
    Alcotest.test_case "checked arithmetic" `Quick test_checked;
    Alcotest.test_case "bit fields" `Quick test_bits;
    Alcotest.test_case "lognot" `Quick test_lognot;
    Alcotest.test_case "shifts" `Quick test_shifts;
    Alcotest.test_case "hex rendering" `Quick test_hex;
    QCheck_alcotest.to_alcotest prop_add_comm;
    QCheck_alcotest.to_alcotest prop_sub_add_inverse;
    QCheck_alcotest.to_alcotest prop_valid_closed;
    QCheck_alcotest.to_alcotest prop_bits_roundtrip;
    QCheck_alcotest.to_alcotest prop_checked_agrees;
  ]
