(* Address ranges: the currency between kernel view and hardware models. *)

let r ~start ~size = Range.make ~start ~size
let check_bool = Alcotest.(check bool)

let test_basics () =
  let x = r ~start:100 ~size:50 in
  Alcotest.(check int) "start" 100 (Range.start x);
  Alcotest.(check int) "size" 50 (Range.size x);
  Alcotest.(check int) "end" 150 (Range.end_ x);
  check_bool "not empty" false (Range.is_empty x);
  check_bool "empty is empty" true (Range.is_empty Range.empty)

let test_contains () =
  let x = r ~start:100 ~size:50 in
  check_bool "first byte" true (Range.contains x 100);
  check_bool "last byte" true (Range.contains x 149);
  check_bool "one past end" false (Range.contains x 150);
  check_bool "before" false (Range.contains x 99);
  check_bool "empty contains nothing" false (Range.contains Range.empty 0)

let test_contains_range () =
  let outer = r ~start:100 ~size:100 in
  check_bool "inner" true (Range.contains_range outer (r ~start:120 ~size:30));
  check_bool "exact" true (Range.contains_range outer outer);
  check_bool "escaping right" false (Range.contains_range outer (r ~start:150 ~size:60));
  check_bool "empty vacuous" true (Range.contains_range outer Range.empty);
  check_bool "empty outer, nonempty inner" false
    (Range.contains_range Range.empty (r ~start:0 ~size:1))

let test_overlaps () =
  let x = r ~start:100 ~size:50 in
  check_bool "adjacent does not overlap" false (Range.overlaps x (r ~start:150 ~size:10));
  check_bool "one-byte overlap" true (Range.overlaps x (r ~start:149 ~size:10));
  check_bool "containment overlaps" true (Range.overlaps x (r ~start:110 ~size:5));
  check_bool "empty never overlaps" false (Range.overlaps x Range.empty)

let test_overlaps_bounds () =
  (* Inclusive-bounds form used by RegionDescriptor.overlaps. *)
  let x = r ~start:100 ~size:50 in
  check_bool "touching hi bound" true (Range.overlaps_bounds x ~lo:149 ~hi:149);
  check_bool "past end" false (Range.overlaps_bounds x ~lo:150 ~hi:200);
  check_bool "below" false (Range.overlaps_bounds x ~lo:0 ~hi:99);
  check_bool "inclusive lo = last byte" true (Range.overlaps_bounds x ~lo:0 ~hi:100)

let test_intersection () =
  let x = r ~start:100 ~size:50 in
  (match Range.intersection x (r ~start:120 ~size:100) with
  | Some i ->
    Alcotest.(check int) "inter start" 120 (Range.start i);
    Alcotest.(check int) "inter end" 150 (Range.end_ i)
  | None -> Alcotest.fail "expected intersection");
  check_bool "disjoint" true (Range.intersection x (r ~start:200 ~size:10) = None)

let test_of_bounds () =
  let x = Range.of_bounds ~lo:10 ~hi:20 in
  Alcotest.(check int) "size from bounds" 10 (Range.size x);
  check_bool "lo = hi empty" true (Range.is_empty (Range.of_bounds ~lo:5 ~hi:5))

let test_make_checked () =
  check_bool "wrapping range refused" true (Range.make_checked ~start:Word32.max_value ~size:2 = None);
  check_bool "top byte ok" true (Range.make_checked ~start:Word32.max_value ~size:1 <> None)

(* --- properties --- *)

let range_gen =
  QCheck.map
    (fun (s, n) -> Range.make ~start:(s land 0xFFFFFF) ~size:(n land 0xFFFF))
    (QCheck.pair QCheck.small_nat (QCheck.int_bound 0xFFFF))

let prop_overlap_sym =
  QCheck.Test.make ~name:"overlaps symmetric" ~count:500 (QCheck.pair range_gen range_gen)
    (fun (a, b) -> Range.overlaps a b = Range.overlaps b a)

let prop_contains_implies_overlap =
  QCheck.Test.make ~name:"containment implies overlap (nonempty)" ~count:500
    (QCheck.pair range_gen range_gen) (fun (a, b) ->
      (not (Range.contains_range a b)) || Range.is_empty b || Range.overlaps a b)

let prop_intersection_subset =
  QCheck.Test.make ~name:"intersection contained in both" ~count:500
    (QCheck.pair range_gen range_gen) (fun (a, b) ->
      match Range.intersection a b with
      | None -> true
      | Some i -> Range.contains_range a i && Range.contains_range b i)

let suite =
  [
    Alcotest.test_case "basics" `Quick test_basics;
    Alcotest.test_case "contains" `Quick test_contains;
    Alcotest.test_case "contains_range" `Quick test_contains_range;
    Alcotest.test_case "overlaps" `Quick test_overlaps;
    Alcotest.test_case "overlaps_bounds (inclusive)" `Quick test_overlaps_bounds;
    Alcotest.test_case "intersection" `Quick test_intersection;
    Alcotest.test_case "of_bounds" `Quick test_of_bounds;
    Alcotest.test_case "make_checked" `Quick test_make_checked;
    QCheck_alcotest.to_alcotest prop_overlap_sym;
    QCheck_alcotest.to_alcotest prop_contains_implies_overlap;
    QCheck_alcotest.to_alcotest prop_intersection_subset;
  ]
