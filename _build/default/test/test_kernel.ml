(* The kernel: process creation, syscall dispatch, scheduling, faults, and
   end-to-end isolation, across all board configurations. *)

open Ticktock
open Apps.App_dsl

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let load (k : Instance.t) ?(min_ram = 2048) ?(grant_reserve = 1024) ?(heap_headroom = 2048)
    ~name script =
  match
    k.Instance.load ~name ~payload:(name ^ "-payload") ~program:(to_program script) ~min_ram
      ~grant_reserve ~heap_headroom
  with
  | Ok pid -> pid
  | Error e -> Alcotest.failf "load failed: %a" Kerror.pp e

let run_one ?(max_ticks = 500) (k : Instance.t) script =
  let pid = load k ~name:"t" script in
  k.Instance.run ~max_ticks;
  (pid, k)

let output (k : Instance.t) pid = Option.value ~default:"" (k.Instance.proc_output pid)
let exit_code (k : Instance.t) pid = k.Instance.proc_exit pid

let ticktock () = Boards.instance_ticktock_arm ()

let test_hello () =
  let pid, k = run_one (ticktock ()) (let* () = print "hi\n" in return 0) in
  Alcotest.(check string) "output" "hi\n" (output k pid);
  Alcotest.(check (option int)) "exit" (Some 0) (exit_code k pid)

let test_exit_code () =
  let pid, k = run_one (ticktock ()) (return 7) in
  Alcotest.(check (option int)) "exit code" (Some 7) (exit_code k pid)

let test_memop_queries () =
  let k = ticktock () in
  let pid =
    load k ~name:"q"
      (let* ms = memory_start in
       let* ab = memory_end in
       let* fs = flash_start in
       let* fe = flash_end in
       let* gb = grant_begins in
       let* () =
         printf "%b %b %b %b" (ab > ms) (fe > fs) (gb > ab) (Layout.in_flash fs)
       in
       return 0)
  in
  k.Instance.run ~max_ticks:100;
  Alcotest.(check string) "layout sane" "true true true true" (output k pid)

let test_brk_syscall () =
  let k = ticktock () in
  let pid =
    load k ~name:"b"
      (let* ab = memory_end in
       let* r = sbrk 512 in
       let* ab' = memory_end in
       let* () = printf "%b %b" (r <> Userland.failure) (ab' > ab) in
       return 0)
  in
  k.Instance.run ~max_ticks:100;
  Alcotest.(check string) "heap grew" "true true" (output k pid)

let test_brk_failure_returns_failure () =
  let k = ticktock () in
  let pid =
    load k ~name:"bf"
      (let* ms = memory_start in
       let* r = brk (ms - 4) in
       let* () = printf "%b" (r = Userland.failure) in
       return 0)
  in
  k.Instance.run ~max_ticks:100;
  Alcotest.(check string) "bad brk refused, process survives" "true" (output k pid)

let test_allow_syscalls () =
  let k = ticktock () in
  let pid =
    load k ~name:"al"
      (let* ms = memory_start in
       let* ok1 = allow_rw ~driver:2 ~addr:ms ~len:64 in
       let* fs = flash_start in
       let* ok2 = allow_ro ~driver:1 ~addr:fs ~len:64 in
       let* bad = allow_rw ~driver:2 ~addr:fs ~len:64 in
       let* () =
         printf "%b %b %b" (ok1 = Userland.success) (ok2 = Userland.success)
           (bad = Userland.failure)
       in
       return 0)
  in
  k.Instance.run ~max_ticks:100;
  Alcotest.(check string) "allow validation" "true true true" (output k pid)

let test_alarm_yield () =
  let k = ticktock () in
  let pid =
    load k ~name:"tm"
      (let* _ = subscribe ~driver:0 ~upcall_id:0 in
       let* _ = command ~driver:0 ~cmd:1 ~arg1:5 () in
       let* r = yield in
       let* () = printf "woke=%d" r in
       return 0)
  in
  k.Instance.run ~max_ticks:100;
  Alcotest.(check string) "alarm upcall delivered" "woke=1" (output k pid)

let test_unknown_driver () =
  let k = ticktock () in
  let pid =
    load k ~name:"ud"
      (let* r = command ~driver:99 ~cmd:0 () in
       let* () = printf "%b" (r = Userland.failure) in
       return 0)
  in
  k.Instance.run ~max_ticks:100;
  Alcotest.(check string) "unknown driver fails cleanly" "true" (output k pid)

let test_fault_isolation () =
  (* one process faults; its neighbour keeps running *)
  let k = ticktock () in
  let victim =
    load k ~name:"victim"
      (let* () = print "victim alive\n" in
       return 0)
  in
  let bad =
    load k ~name:"bad"
      (let* _ = load8 (Range.start Layout.kernel_sram) in
       let* () = print "read kernel!\n" in
       return 1)
  in
  k.Instance.run ~max_ticks:200;
  check_bool "attacker faulted" true (k.Instance.proc_faulted bad);
  Alcotest.(check string) "attacker produced nothing" "" (output k bad);
  Alcotest.(check (option int)) "victim unaffected" (Some 0) (exit_code k victim)

let test_preemption_interleaves () =
  (* two compute-heavy processes share the CPU round-robin *)
  let k = ticktock () in
  let spin name =
    load k ~name
      (let* () = repeat 10 (fun () -> let* _ = compute 200 in return ()) in
       let* () = print (name ^ " done\n") in
       return 0)
  in
  let a = spin "a" in
  let b = spin "b" in
  k.Instance.run ~max_ticks:2000;
  Alcotest.(check (option int)) "a finished" (Some 0) (exit_code k a);
  Alcotest.(check (option int)) "b finished" (Some 0) (exit_code k b)

let test_process_memory_rw () =
  let k = ticktock () in
  let pid =
    load k ~name:"rw"
      (let* ms = memory_start in
       let* _ = store32 (ms + 64) 0xFEEDC0DE in
       let* v = load32 (ms + 64) in
       let* () = printf "%b" (v = 0xFEEDC0DE) in
       return 0)
  in
  k.Instance.run ~max_ticks:100;
  Alcotest.(check string) "own memory rw" "true" (output k pid)

let test_flash_read_only () =
  let k = ticktock () in
  let pid =
    load k ~name:"fro"
      (let* fs = flash_start in
       let* _ = load32 fs in
       let* _ = store8 fs 0 in
       let* () = print "wrote flash!" in
       return 1)
  in
  k.Instance.run ~max_ticks:100;
  check_bool "flash write faults" true (k.Instance.proc_faulted pid)

let test_isolation_ok_all_boards () =
  (* TickTock kernels: the hardware-enforced view is exactly bounded by the
     kernel's logical view. The monolithic ARM kernels (upstream AND
     patched) fail this check: Figure 4a's `app_size * 8 / region_size + 1`
     always enables one extra subregion, so the hardware grants more than
     the kernel believes — the §3.2 disagreement, observable end to end. *)
  List.iter
    (fun (name, make) ->
      let k = make () in
      let pid = load k ~name:"iso" (return 0) in
      let expected =
        match name with
        | "tock-arm-upstream" | "tock-arm-patched" -> false
        | _ -> true
      in
      check_bool
        (name ^ ": hardware-vs-logical agreement")
        expected
        (k.Instance.proc_isolation_ok pid))
    Boards.all_instances

let test_hello_all_boards () =
  List.iter
    (fun (name, make) ->
      let k = make () in
      let pid = load k ~name:"hi" (let* () = print "ok" in return 0) in
      k.Instance.run ~max_ticks:100;
      Alcotest.(check string) (name ^ " output") "ok" (output k pid);
      Alcotest.(check (option int)) (name ^ " exit") (Some 0) (exit_code k pid))
    Boards.all_instances

let test_mem_stats () =
  let k = ticktock () in
  let pid = load k ~name:"ms" (return 0) in
  match k.Instance.proc_mem_stats pid with
  | Some st ->
    check_bool "total = app + grant + unused" true
      (st.Instance.total = st.Instance.app + st.Instance.grant + st.Instance.unused);
    check_bool "grant covers stored state" true (st.Instance.grant >= 64)
  | None -> Alcotest.fail "stats missing"

let test_console_logs_faults () =
  let k = ticktock () in
  let _ =
    load k ~name:"crash" (let* _ = store8 0 1 in return 0)
  in
  k.Instance.run ~max_ticks:100;
  check_bool "kernel console mentions the fault" true
    (String.length (k.Instance.console ()) > 0)

let test_many_processes () =
  let k = ticktock () in
  let pids =
    List.init 8 (fun i ->
        load k ~name:(Printf.sprintf "p%d" i)
          (let* () = printf "p%d" i in
           return i))
  in
  k.Instance.run ~max_ticks:1000;
  List.iteri
    (fun i pid -> Alcotest.(check (option int)) "each exits with its index" (Some i)
        (exit_code k pid))
    pids;
  check_int "ticks advanced" (k.Instance.ticks ()) (k.Instance.ticks ())

let suite =
  [
    Alcotest.test_case "hello world" `Quick test_hello;
    Alcotest.test_case "exit codes" `Quick test_exit_code;
    Alcotest.test_case "memop queries" `Quick test_memop_queries;
    Alcotest.test_case "brk syscall" `Quick test_brk_syscall;
    Alcotest.test_case "bad brk survives" `Quick test_brk_failure_returns_failure;
    Alcotest.test_case "allow syscalls" `Quick test_allow_syscalls;
    Alcotest.test_case "alarm + yield" `Quick test_alarm_yield;
    Alcotest.test_case "unknown driver" `Quick test_unknown_driver;
    Alcotest.test_case "fault isolation between processes" `Quick test_fault_isolation;
    Alcotest.test_case "preemption interleaves" `Quick test_preemption_interleaves;
    Alcotest.test_case "process reads/writes own RAM" `Quick test_process_memory_rw;
    Alcotest.test_case "flash is read-only" `Quick test_flash_read_only;
    Alcotest.test_case "isolation_ok on all boards" `Quick test_isolation_ok_all_boards;
    Alcotest.test_case "hello on all boards" `Quick test_hello_all_boards;
    Alcotest.test_case "memory stats" `Quick test_mem_stats;
    Alcotest.test_case "kernel console logs faults" `Quick test_console_logs_faults;
    Alcotest.test_case "many processes" `Quick test_many_processes;
  ]
