(* The contract framework itself: violations, domains, checker, lemmas. *)

module V = Verify

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_violation_raises () =
  V.Violation.with_enabled true (fun () ->
      Alcotest.check_raises "require fires"
        (V.Violation.Violation { site = "s"; detail = "precondition failed" })
        (fun () -> V.Violation.require "s" false);
      (* passing checks are silent *)
      V.Violation.require "s" true;
      V.Violation.ensure "s" true;
      V.Violation.invariant "s" true)

let test_violation_disabled () =
  V.Violation.with_enabled false (fun () ->
      (* no-cost mode: nothing fires *)
      V.Violation.require "s" false;
      V.Violation.ensure "s" false;
      V.Violation.invariant "s" false);
  check_bool "state restored" true (V.Violation.enabled ())

let test_violation_formatted () =
  V.Violation.with_enabled true (fun () ->
      match V.Violation.requiref "site" false "x=%d" 42 with
      | () -> Alcotest.fail "expected violation"
      | exception V.Violation.Violation v ->
        check_bool "detail formatted" true (v.V.Violation.detail = "x=42"))

let test_domain_ints () =
  let d = V.Domain.ints 3 7 in
  check_int "cardinality" 5 (V.Domain.cardinality d);
  Alcotest.(check (list int)) "elements" [ 3; 4; 5; 6; 7 ] (List.of_seq (V.Domain.to_seq d))

let test_domain_pair () =
  let d = V.Domain.pair (V.Domain.ints 0 1) (V.Domain.of_list [ "a"; "b"; "c" ]) in
  check_int "product cardinality" 6 (V.Domain.cardinality d);
  check_int "product length" 6 (Seq.length (V.Domain.to_seq d))

let test_domain_around () =
  let d = V.Domain.around [ 10 ] ~spread:2 in
  Alcotest.(check (list int)) "boundary cloud" [ 8; 9; 10; 11; 12 ]
    (List.of_seq (V.Domain.to_seq d))

let test_domain_around_clips () =
  let d = V.Domain.around [ 1 ] ~spread:3 in
  Alcotest.(check (list int)) "clipped at zero" [ 0; 1; 2; 3; 4 ]
    (List.of_seq (V.Domain.to_seq d))

let test_domain_pow2s () =
  Alcotest.(check (list int)) "powers" [ 32; 64; 128; 256 ]
    (List.of_seq (V.Domain.to_seq (V.Domain.pow2s ~min:32 ~max:256)))

let test_checker_verifies () =
  let prop = V.Checker.forall ~name:"x+0=x" (V.Domain.ints 0 100) (fun _ -> Ok ()) in
  let report = V.Checker.check_component "demo" [ prop ] in
  check_bool "verified" true (V.Checker.all_verified report);
  match report.V.Checker.results with
  | [ r ] -> check_int "cases" 101 r.V.Checker.cases
  | _ -> Alcotest.fail "one result expected"

let test_checker_counterexample () =
  let prop =
    V.Checker.forall ~name:"fails at 42" ~show:string_of_int (V.Domain.ints 0 100) (fun x ->
        if x = 42 then Error "boom" else Ok ())
  in
  let report = V.Checker.check_component "demo" [ prop ] in
  check_bool "not verified" false (V.Checker.all_verified report);
  match V.Checker.failures report with
  | [ r ] -> (
    match r.V.Checker.outcome with
    | Error msg -> check_bool "counterexample named" true (msg = "counterexample 42: boom")
    | Ok () -> Alcotest.fail "expected failure")
  | _ -> Alcotest.fail "one failure expected"

let test_checker_catches_violations () =
  let prop =
    V.Checker.forall ~name:"contract fires" (V.Domain.ints 0 10) (fun x ->
        V.Violation.require "demo" (x < 5);
        Ok ())
  in
  let report = V.Checker.check_component "demo" [ prop ] in
  check_bool "violation becomes counterexample" false (V.Checker.all_verified report)

let test_forall_violates () =
  let prop =
    V.Checker.forall_violates ~name:"bug caught" ~witnesses:3 (V.Domain.ints 0 10) (fun x ->
        V.Violation.require "demo" (x < 8))
  in
  let report = V.Checker.check_component "demo" [ prop ] in
  check_bool "enough witnesses" true (V.Checker.all_verified report);
  let prop2 =
    V.Checker.forall_violates ~name:"no bug" ~witnesses:1 (V.Domain.ints 0 10) (fun _ -> ())
  in
  let report2 = V.Checker.check_component "demo" [ prop2 ] in
  check_bool "no witnesses fails" false (V.Checker.all_verified report2)

let test_lemmas () =
  let counts = V.Lemmas.prove_all ~bound:4096 () in
  check_bool "all lemma groups ran" true (List.length counts = 4);
  check_bool "nontrivial case counts" true (List.for_all (fun (_, n) -> n > 0) counts)

let test_timing_stats () =
  let prop = V.Checker.property ~name:"quick" (fun () -> Ok ()) in
  let report = V.Checker.check_component "demo" [ prop; prop; prop ] in
  let st = V.Report.timing_stats report in
  check_int "fns" 3 st.V.Report.fns;
  check_bool "total >= max" true (st.V.Report.total_s >= st.V.Report.max_s)

let test_scan_sources () =
  let rows =
    V.Report.scan_sources ~root:"."
      ~components:[ ("nothing", [ "no-such-dir" ]) ]
  in
  match rows with
  | [ r ] -> check_int "missing dir contributes zero" 0 r.V.Report.source_loc
  | _ -> Alcotest.fail "one row expected"

let suite =
  [
    Alcotest.test_case "violations raise" `Quick test_violation_raises;
    Alcotest.test_case "disabled mode" `Quick test_violation_disabled;
    Alcotest.test_case "formatted details" `Quick test_violation_formatted;
    Alcotest.test_case "domain: ints" `Quick test_domain_ints;
    Alcotest.test_case "domain: pair" `Quick test_domain_pair;
    Alcotest.test_case "domain: around" `Quick test_domain_around;
    Alcotest.test_case "domain: around clips" `Quick test_domain_around_clips;
    Alcotest.test_case "domain: pow2s" `Quick test_domain_pow2s;
    Alcotest.test_case "checker verifies" `Quick test_checker_verifies;
    Alcotest.test_case "checker finds counterexample" `Quick test_checker_counterexample;
    Alcotest.test_case "checker catches Violation" `Quick test_checker_catches_violations;
    Alcotest.test_case "forall_violates (bug-catching form)" `Quick test_forall_violates;
    Alcotest.test_case "lemmas prove" `Quick test_lemmas;
    Alcotest.test_case "timing stats" `Quick test_timing_stats;
    Alcotest.test_case "source scanning" `Quick test_scan_sources;
  ]
