(* The verification story end to end: checking the upstream code finds the
   paper's bugs; checking TickTock verifies everything. *)

open Ticktock
module C = Verify.Checker

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let scale = 0.2

let test_upstream_bugs_found () =
  let name, props = Proofs.upstream_bug_hunt ~scale in
  let report = C.check_component name props in
  check_bool "upstream does NOT verify" false (C.all_verified report);
  check_int "both §2.2 bug classes found" 2 (List.length (C.failures report));
  List.iter
    (fun (f : C.fn_result) ->
      match f.C.outcome with
      | Error msg ->
        check_bool (f.C.fn_name ^ " has a concrete counterexample") true
          (String.length msg > 0
          && String.length msg >= 14
          && String.sub msg 0 14 = "counterexample")
      | Ok () -> Alcotest.fail "expected counterexample")
    (C.failures report)

let test_patched_monolithic_verifies () =
  let report = C.check_component "patched" (Proofs.Monolithic.patched ~scale) in
  check_bool "patched verifies" true (C.all_verified report)

let test_granular_verifies () =
  let report = C.check_component "granular" (Proofs.Granular.properties ~scale) in
  (match C.failures report with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "granular failed: %s: %s" f.C.fn_name
      (match f.C.outcome with Error e -> e | Ok () -> "?"));
  check_int "fourteen granular proof obligations" 14 (List.length report.C.results)

let test_interrupts_verify () =
  let report = C.check_component "interrupts" (Proofs.Interrupts.properties ~scale) in
  match C.failures report with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "interrupts failed: %s: %s" f.C.fn_name
      (match f.C.outcome with Error e -> e | Ok () -> "?")

let test_components_shape () =
  (* the three Figure 12 rows exist and every non-buggy one verifies *)
  let rows = Proofs.components ~scale:0.05 in
  check_int "three components" 3 (List.length rows);
  List.iter
    (fun (name, props) ->
      let report = C.check_component name props in
      check_bool (name ^ " verifies") true (C.all_verified report);
      check_bool (name ^ " ran cases") true
        (List.for_all (fun (r : C.fn_result) -> r.C.cases > 0) report.C.results))
    rows

let test_counterexample_is_the_paper_scenario () =
  (* the found allocate counterexample names an enforced end beyond the
     kernel break — the Figure 2 picture *)
  let name, props = Proofs.upstream_bug_hunt ~scale:1.0 in
  let report = C.check_component name props in
  let allocate_failure =
    List.find
      (fun (f : C.fn_result) ->
        String.length f.C.fn_name > 0 && C.failures report <> [] && f.C.outcome <> Ok ())
      report.C.results
  in
  match allocate_failure.C.outcome with
  | Error msg ->
    let contains_substring s sub =
      let n = String.length sub in
      let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
      go 0
    in
    check_bool "counterexample mentions the overlap" true
      (contains_substring msg "exceeds kernel break")
  | Ok () -> Alcotest.fail "expected failure"

let suite =
  [
    Alcotest.test_case "upstream bug hunt finds both bugs" `Slow test_upstream_bugs_found;
    Alcotest.test_case "patched monolithic verifies" `Slow test_patched_monolithic_verifies;
    Alcotest.test_case "granular verifies" `Slow test_granular_verifies;
    Alcotest.test_case "interrupts verify (§4.5)" `Slow test_interrupts_verify;
    Alcotest.test_case "three Figure 12 components" `Slow test_components_shape;
    Alcotest.test_case "counterexample matches §3.4" `Slow
      test_counterexample_is_the_paper_scenario;
  ]
