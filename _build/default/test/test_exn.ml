(* Exception entry/return: the stacking dance that swaps worlds (§4.5). *)

module C = Fluxarm.Cpu
module R = Fluxarm.Regs
module E = Fluxarm.Exn

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fresh () =
  let mem = Memory.create () in
  (mem, C.create mem)

let test_entry_stacks_frame () =
  let mem, cpu = fresh () in
  C.set cpu R.R0 0xAAA;
  C.set cpu R.R3 0xBBB;
  C.set cpu R.R12 0xCCC;
  C.pseudo_ldr_special cpu R.Lr 0x111;
  C.set_special_raw cpu R.Pc 0x222;
  let sp0 = C.sp cpu in
  E.entry cpu ~exc_num:E.exc_systick;
  check_int "8 words stacked" (sp0 - 32) (C.get_special cpu R.Msp);
  let frame = C.get_special cpu R.Msp in
  check_int "r0 slot" 0xAAA (Memory.read32 mem frame);
  check_int "r3 slot" 0xBBB (Memory.read32 mem (frame + 12));
  check_int "r12 slot" 0xCCC (Memory.read32 mem (frame + 16));
  check_int "lr slot" 0x111 (Memory.read32 mem (frame + 20));
  check_int "pc slot" 0x222 (Memory.read32 mem (frame + 24));
  check_bool "handler mode" true (C.mode cpu = C.Handler);
  check_int "ipsr = exception number" E.exc_systick (C.exception_number cpu);
  check_int "EXC_RETURN for thread/msp" E.exc_return_thread_msp (C.get_special cpu R.Lr)

let test_entry_exc_return_psp () =
  let _, cpu = fresh () in
  let psp = Range.start Layout.app_sram + 0x400 in
  C.set cpu R.R0 psp;
  C.msr cpu R.Psp R.R0;
  C.movw_imm cpu R.R1 2 (* SPSEL=1 *);
  C.msr cpu R.Control R.R1;
  C.isb cpu;
  E.entry cpu ~exc_num:E.exc_systick;
  check_int "EXC_RETURN for thread/psp" E.exc_return_thread_psp (C.get_special cpu R.Lr);
  check_int "frame on psp" (psp - 32) (C.get_special cpu R.Psp)

let test_return_restores () =
  let _, cpu = fresh () in
  C.set cpu R.R0 0x1111;
  C.set cpu R.R1 0x2222;
  C.pseudo_ldr_special cpu R.Lr 0x3333;
  let sp0 = C.sp cpu in
  E.entry cpu ~exc_num:E.exc_systick;
  (* handler clobbers caller-saved state *)
  C.movw_imm cpu R.R0 0;
  C.movw_imm cpu R.R1 0;
  E.return cpu E.exc_return_thread_msp;
  check_int "r0 restored" 0x1111 (C.get cpu R.R0);
  check_int "r1 restored" 0x2222 (C.get cpu R.R1);
  check_int "lr restored" 0x3333 (C.get_special cpu R.Lr);
  check_int "sp balanced" sp0 (C.sp cpu);
  check_bool "thread mode" true (C.mode cpu = C.Thread);
  check_int "ipsr cleared" 0 (C.exception_number cpu)

let test_return_sets_spsel () =
  let mem, cpu = fresh () in
  (* synthesize a process frame on PSP, then return onto it *)
  let psp = Range.start Layout.app_sram + 0x800 in
  for i = 0 to 7 do
    Memory.write32 mem (psp + (4 * i)) (0x100 + i)
  done;
  C.set cpu R.R0 psp;
  C.msr cpu R.Psp R.R0;
  E.entry cpu ~exc_num:E.exc_svc;
  E.return cpu E.exc_return_thread_psp;
  check_bool "SPSEL set on return to psp" true (Word32.bit (C.control_committed cpu) 1);
  check_int "psp advanced past frame" (psp + 32) (C.get_special cpu R.Psp);
  check_int "r0 from process frame" 0x100 (C.get cpu R.R0)

let test_entry_contracts () =
  let _, cpu = fresh () in
  Verify.Violation.with_enabled true (fun () ->
      Alcotest.check_raises "bad exception number"
        (Verify.Violation.Violation { site = "exn.entry: exception number"; detail = "exc_num=1" })
        (fun () -> E.entry cpu ~exc_num:1);
      E.entry cpu ~exc_num:15;
      (match E.entry cpu ~exc_num:15 with
      | () -> Alcotest.fail "nested entry must violate"
      | exception Verify.Violation.Violation _ -> ());
      ())

let test_return_contracts () =
  let _, cpu = fresh () in
  Verify.Violation.with_enabled true (fun () ->
      match E.return cpu E.exc_return_thread_msp with
      | () -> Alcotest.fail "return outside handler must violate"
      | exception Verify.Violation.Violation _ -> ())

let test_preempt_requires_kernel_return () =
  let _, cpu = fresh () in
  Verify.Violation.with_enabled true (fun () ->
      (* an ISR that tries to return to the process is a §4.5 violation *)
      let evil_isr cpu =
        C.pseudo_ldr_special cpu R.Lr E.exc_return_thread_psp;
        C.get_special cpu R.Lr
      in
      match E.preempt cpu ~exc_num:15 ~isr:evil_isr with
      | () -> Alcotest.fail "preempt must verify the ISR targets the kernel"
      | exception Verify.Violation.Violation v ->
        check_bool "right obligation" true
          (v.Verify.Violation.site = "preempt: isr yields control to kernel"))

let test_unprivileged_stacking_faults_on_steered_psp () =
  (* A process that points PSP at kernel memory cannot make exception entry
     clobber the kernel: stacking runs with the process's privilege. *)
  let m = Ticktock.Machine.create_arm () in
  let cpu = m.Ticktock.Machine.arm_cpu in
  Mpu_hw.Armv7m_mpu.set_enabled m.Ticktock.Machine.arm_mpu true;
  let kernel_addr = Range.start Layout.kernel_sram + 0x1000 in
  C.set cpu R.R0 kernel_addr;
  C.msr cpu R.Psp R.R0;
  C.movw_imm cpu R.R1 3 (* nPRIV=1, SPSEL=1 *);
  C.msr cpu R.Control R.R1;
  C.isb cpu;
  match E.entry cpu ~exc_num:E.exc_systick with
  | () -> Alcotest.fail "stacking into kernel memory must fault"
  | exception Memory.Access_fault _ -> ()

let suite =
  [
    Alcotest.test_case "entry stacks the 8-word frame" `Quick test_entry_stacks_frame;
    Alcotest.test_case "entry selects EXC_RETURN by stack" `Quick test_entry_exc_return_psp;
    Alcotest.test_case "return restores state" `Quick test_return_restores;
    Alcotest.test_case "return to psp sets SPSEL" `Quick test_return_sets_spsel;
    Alcotest.test_case "entry contracts" `Quick test_entry_contracts;
    Alcotest.test_case "return contracts" `Quick test_return_contracts;
    Alcotest.test_case "preempt verifies kernel target (§4.5)" `Quick
      test_preempt_requires_kernel_return;
    Alcotest.test_case "steered PSP cannot clobber kernel" `Quick
      test_unprivileged_stacking_faults_on_steered_psp;
  ]
