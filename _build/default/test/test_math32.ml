(* Power-of-two and alignment arithmetic — the facts the Cortex-M driver
   leans on and the paper proves in Lean. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_is_pow2 () =
  check_bool "1" true (Math32.is_pow2 1);
  check_bool "2" true (Math32.is_pow2 2);
  check_bool "1024" true (Math32.is_pow2 1024);
  check_bool "0" false (Math32.is_pow2 0);
  check_bool "3" false (Math32.is_pow2 3);
  check_bool "1023" false (Math32.is_pow2 1023);
  check_bool "2^31" true (Math32.is_pow2 (1 lsl 31))

let test_log2 () =
  check_int "log2 1" 0 (Math32.log2 1);
  check_int "log2 2" 1 (Math32.log2 2);
  check_int "log2 1024" 10 (Math32.log2 1024);
  check_int "log2 floor" 10 (Math32.log2 2047)

let test_closest_pow2 () =
  check_int "exact" 1024 (Math32.closest_power_of_two 1024);
  check_int "round up" 2048 (Math32.closest_power_of_two 1025);
  check_int "one" 1 (Math32.closest_power_of_two 1);
  check_int "saturates like upstream u32" (1 lsl 31)
    (Math32.closest_power_of_two ((1 lsl 31) + 1));
  Alcotest.(check (option int))
    "checked saturation" None
    (Math32.closest_power_of_two_checked ((1 lsl 31) + 1));
  Alcotest.(check (option int))
    "checked ok" (Some 4096)
    (Math32.closest_power_of_two_checked 4000)

let test_align () =
  check_int "align_up already aligned" 64 (Math32.align_up 64 ~align:32);
  check_int "align_up rounds" 96 (Math32.align_up 65 ~align:32);
  check_int "align_down" 64 (Math32.align_down 95 ~align:32);
  check_bool "is_aligned" true (Math32.is_aligned 256 ~align:256);
  check_bool "is_aligned no" false (Math32.is_aligned 257 ~align:256);
  check_int "next_aligned_from equals align_up" (Math32.align_up 100 ~align:64)
    (Math32.next_aligned_from 100 ~align:64)

(* --- properties --- *)

let pos_gen = QCheck.int_range 1 (1 lsl 30)
let align_gen = QCheck.map (fun e -> 1 lsl e) (QCheck.int_range 0 16)

let prop_closest_bounds =
  QCheck.Test.make ~name:"closest_power_of_two in [x, 2x)" ~count:500 pos_gen (fun x ->
      let p = Math32.closest_power_of_two x in
      Math32.is_pow2 p && p >= x && (p < 2 * x || x = 1))

let prop_align_up_bounds =
  QCheck.Test.make ~name:"align_up in [x, x+align)" ~count:500
    (QCheck.pair (QCheck.int_range 0 (1 lsl 28)) align_gen) (fun (x, a) ->
      let y = Math32.align_up x ~align:a in
      y >= x && y < x + a && Math32.is_aligned y ~align:a)

let prop_align_down_dual =
  QCheck.Test.make ~name:"align_down dual to align_up" ~count:500
    (QCheck.pair (QCheck.int_range 0 (1 lsl 28)) align_gen) (fun (x, a) ->
      let d = Math32.align_down x ~align:a in
      d <= x && x - d < a && Math32.is_aligned d ~align:a)

let prop_pow2_octet =
  QCheck.Test.make ~name:"lemma_pow2_octet: pow2 >= 8 is 8-aligned" ~count:200
    (QCheck.int_range 3 30) (fun e -> (1 lsl e) mod 8 = 0)

let suite =
  [
    Alcotest.test_case "is_pow2" `Quick test_is_pow2;
    Alcotest.test_case "log2" `Quick test_log2;
    Alcotest.test_case "closest_power_of_two" `Quick test_closest_pow2;
    Alcotest.test_case "alignment" `Quick test_align;
    QCheck_alcotest.to_alcotest prop_closest_bounds;
    QCheck_alcotest.to_alcotest prop_align_up_bounds;
    QCheck_alcotest.to_alcotest prop_align_down_dual;
    QCheck_alcotest.to_alcotest prop_pow2_octet;
  ]
