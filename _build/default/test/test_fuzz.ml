(* Fuzzing campaigns: hostile syscall/memory streams against every kernel. *)

open Ticktock

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_ticktock_survives_fuzzing_with_contracts () =
  (* contracts ON: not only must the kernel survive every seed, no
     verification contract may fire anywhere in the kernel or drivers *)
  Verify.Violation.with_enabled true (fun () ->
      let rounds, panics =
        Apps.Fuzz.campaign ~seeds:15 (fun () -> Boards.instance_ticktock_arm ())
      in
      check_int "no kernel panics" 0 (List.length panics);
      List.iter
        (fun (r : Apps.Fuzz.outcome) ->
          check_bool (Printf.sprintf "seed %d: witness unaffected" r.fuzz_seed) true r.witness_ok;
          check_bool (Printf.sprintf "seed %d: isolation holds" r.fuzz_seed) true r.isolation_ok)
        rounds)

let test_ticktock_pmp_survives_fuzzing () =
  Verify.Violation.with_enabled true (fun () ->
      let rounds, panics =
        Apps.Fuzz.campaign ~seeds:8 (fun () -> Boards.instance_ticktock_e310 ())
      in
      check_int "no kernel panics" 0 (List.length panics);
      List.iter
        (fun (r : Apps.Fuzz.outcome) ->
          check_bool (Printf.sprintf "seed %d ok" r.fuzz_seed) true
            (r.witness_ok && r.isolation_ok))
        rounds)

let test_upstream_tock_panics_under_fuzzing () =
  (* the §2.2 DoS, found by fuzzing instead of verification: some seed's
     wild brk panics the upstream kernel *)
  Verify.Violation.with_enabled false (fun () ->
      let _, panics = Apps.Fuzz.campaign ~seeds:15 (fun () -> Boards.instance_tock_arm ()) in
      check_bool "at least one seed kills the upstream kernel" true (List.length panics > 0))

let test_patched_tock_survives_fuzzing () =
  Verify.Violation.with_enabled false (fun () ->
      let rounds, panics =
        Apps.Fuzz.campaign ~seeds:15 (fun () -> Boards.instance_tock_arm_patched ())
      in
      check_int "patched kernel never panics" 0 (List.length panics);
      List.iter
        (fun (r : Apps.Fuzz.outcome) ->
          check_bool (Printf.sprintf "seed %d: witness unaffected" r.fuzz_seed) true
            r.witness_ok)
        rounds)

let test_fuzzers_actually_die_sometimes () =
  (* sanity: the streams really are hostile — across seeds some fuzzers
     fault and some run to completion *)
  Verify.Violation.with_enabled false (fun () ->
      let rounds, _ = Apps.Fuzz.campaign ~seeds:10 (fun () -> Boards.instance_ticktock_arm ()) in
      let faulted = List.fold_left (fun a r -> a + r.Apps.Fuzz.fuzzers_faulted) 0 rounds in
      let exited = List.fold_left (fun a r -> a + r.Apps.Fuzz.fuzzers_exited) 0 rounds in
      check_bool "some fuzzers faulted" true (faulted > 0);
      check_bool "some fuzzers completed" true (exited > 0))

let test_fuzz_deterministic () =
  let run () =
    Verify.Violation.with_enabled false (fun () ->
        Apps.Fuzz.run_round ~seed:7 (fun () -> Boards.instance_ticktock_arm ()))
  in
  let a = run () and b = run () in
  check_bool "same seed, same outcome" true
    (a.Apps.Fuzz.fuzzers_faulted = b.Apps.Fuzz.fuzzers_faulted
    && a.Apps.Fuzz.fuzzers_exited = b.Apps.Fuzz.fuzzers_exited
    && a.Apps.Fuzz.witness_ok = b.Apps.Fuzz.witness_ok)

let suite =
  [
    Alcotest.test_case "ticktock-arm survives (contracts on)" `Slow
      test_ticktock_survives_fuzzing_with_contracts;
    Alcotest.test_case "ticktock-e310 survives" `Slow test_ticktock_pmp_survives_fuzzing;
    Alcotest.test_case "upstream tock panics (§2.2 DoS)" `Slow
      test_upstream_tock_panics_under_fuzzing;
    Alcotest.test_case "patched tock survives" `Slow test_patched_tock_survives_fuzzing;
    Alcotest.test_case "fuzzers are genuinely hostile" `Slow test_fuzzers_actually_die_sometimes;
    Alcotest.test_case "fuzzing is deterministic" `Quick test_fuzz_deterministic;
  ]
