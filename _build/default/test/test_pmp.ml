(* The RISC-V PMP hardware model. *)

module Hw = Mpu_hw.Pmp

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let base = 0x2000_8000

let allowed hw ~machine_mode a access =
  match Hw.check_access hw ~machine_mode a access with Ok () -> true | Error _ -> false

let test_cfg_encoding () =
  let cfg = Hw.encode_cfg ~r:true ~w:false ~x:true ~mode:Hw.Napot ~lock:true in
  check_bool "r" true (Hw.decode_cfg_r cfg);
  check_bool "w" false (Hw.decode_cfg_w cfg);
  check_bool "x" true (Hw.decode_cfg_x cfg);
  check_bool "lock" true (Hw.decode_cfg_lock cfg);
  check_bool "mode" true (Hw.decode_cfg_mode cfg = Hw.Napot)

let test_cfg_of_perms () =
  let cfg = Hw.cfg_of_perms Perms.Read_write_only ~mode:Hw.Tor in
  check_bool "rw-" true (Hw.decode_cfg_r cfg && Hw.decode_cfg_w cfg && not (Hw.decode_cfg_x cfg))

let tor_pair hw ~index ~lo ~hi ~perms =
  Hw.set_entry hw ~index:(2 * index)
    ~cfg:(Hw.encode_cfg ~r:false ~w:false ~x:false ~mode:Hw.Off ~lock:false)
    ~addr:(lo lsr 2);
  Hw.set_entry hw ~index:((2 * index) + 1) ~cfg:(Hw.cfg_of_perms perms ~mode:Hw.Tor)
    ~addr:(hi lsr 2)

let test_tor_matching () =
  let hw = Hw.create Hw.sifive_e310 in
  tor_pair hw ~index:0 ~lo:base ~hi:(base + 1024) ~perms:Perms.Read_write_only;
  check_bool "inside" true (allowed hw ~machine_mode:false base Perms.Read);
  check_bool "last byte" true (allowed hw ~machine_mode:false (base + 1023) Perms.Write);
  check_bool "one past" false (allowed hw ~machine_mode:false (base + 1024) Perms.Read);
  check_bool "below" false (allowed hw ~machine_mode:false (base - 1) Perms.Read);
  check_bool "exec denied" false (allowed hw ~machine_mode:false base Perms.Execute)

let test_tor_entry0_lower_bound_zero () =
  let hw = Hw.create Hw.sifive_e310 in
  (* entry 0 in TOR mode: lower bound is address 0 *)
  Hw.set_entry hw ~index:0 ~cfg:(Hw.cfg_of_perms Perms.Read_only ~mode:Hw.Tor)
    ~addr:(0x1000 lsr 2);
  check_bool "low memory readable" true (allowed hw ~machine_mode:false 0 Perms.Read);
  check_bool "above bound denied" false (allowed hw ~machine_mode:false 0x1000 Perms.Read)

let test_na4 () =
  let hw = Hw.create Hw.sifive_e310 in
  Hw.set_entry hw ~index:0
    ~cfg:(Hw.encode_cfg ~r:true ~w:true ~x:false ~mode:Hw.Na4 ~lock:false)
    ~addr:(base lsr 2);
  check_bool "all 4 bytes" true
    (List.for_all (fun i -> allowed hw ~machine_mode:false (base + i) Perms.Read) [ 0; 1; 2; 3 ]);
  check_bool "5th byte denied" false (allowed hw ~machine_mode:false (base + 4) Perms.Read)

let test_napot () =
  let hw = Hw.create Hw.sifive_e310 in
  let addr = Hw.napot_addr ~start:base ~size:4096 in
  Hw.set_entry hw ~index:0
    ~cfg:(Hw.encode_cfg ~r:true ~w:false ~x:false ~mode:Hw.Napot ~lock:false)
    ~addr;
  check_bool "start" true (allowed hw ~machine_mode:false base Perms.Read);
  check_bool "last" true (allowed hw ~machine_mode:false (base + 4095) Perms.Read);
  check_bool "past" false (allowed hw ~machine_mode:false (base + 4096) Perms.Read);
  (match Hw.entry_range hw 0 with
  | Some r ->
    check_int "decoded start" base (Range.start r);
    check_int "decoded size" 4096 (Range.size r)
  | None -> Alcotest.fail "expected range")

let test_napot_requires_alignment () =
  Alcotest.check_raises "unaligned napot" (Invalid_argument "napot_addr: alignment") (fun () ->
      ignore (Hw.napot_addr ~start:(base + 8) ~size:4096))

let test_lowest_entry_priority () =
  let hw = Hw.create Hw.sifive_e310 in
  (* entry pair 0: read-only; pair 1 overlapping RW — pair 0 wins. *)
  tor_pair hw ~index:0 ~lo:base ~hi:(base + 256) ~perms:Perms.Read_only;
  tor_pair hw ~index:1 ~lo:base ~hi:(base + 1024) ~perms:Perms.Read_write_only;
  check_bool "lowest matching entry decides" false
    (allowed hw ~machine_mode:false base Perms.Write);
  check_bool "outside entry 0, entry 1 applies" true
    (allowed hw ~machine_mode:false (base + 512) Perms.Write)

let test_machine_mode_and_lock () =
  let hw = Hw.create Hw.sifive_e310 in
  tor_pair hw ~index:0 ~lo:base ~hi:(base + 256) ~perms:Perms.Read_only;
  check_bool "M-mode ignores unlocked entries" true
    (allowed hw ~machine_mode:true base Perms.Write);
  (* locked entry binds machine mode too *)
  Hw.set_entry hw ~index:3
    ~cfg:(Hw.encode_cfg ~r:true ~w:false ~x:false ~mode:Hw.Tor ~lock:true)
    ~addr:((base + 512) lsr 2);
  check_bool "locked entry binds M-mode" false
    (allowed hw ~machine_mode:true (base + 300) Perms.Write)

let test_locked_entry_immutable () =
  let hw = Hw.create Hw.sifive_e310 in
  Hw.set_entry hw ~index:0
    ~cfg:(Hw.encode_cfg ~r:true ~w:false ~x:false ~mode:Hw.Na4 ~lock:true)
    ~addr:(base lsr 2);
  Alcotest.check_raises "locked" (Invalid_argument "set_entry: entry locked") (fun () ->
      Hw.set_entry hw ~index:0 ~cfg:0 ~addr:0)

let test_mmwp () =
  let hw = Hw.create Hw.earlgrey in
  check_bool "no match M-mode ok without mmwp" true (allowed hw ~machine_mode:true base Perms.Read);
  Hw.set_mmwp hw true;
  check_bool "mmwp denies unmatched M-mode" false (allowed hw ~machine_mode:true base Perms.Read);
  let hw2 = Hw.create Hw.sifive_e310 in
  Alcotest.check_raises "no ePMP on e310" (Invalid_argument "set_mmwp: chip has no ePMP")
    (fun () -> Hw.set_mmwp hw2 true)

let test_chip_inventory () =
  check_int "three chips" 3 (List.length Hw.chips);
  check_int "e310 entries" 8 Hw.sifive_e310.Hw.entry_count;
  check_int "earlgrey entries" 16 Hw.earlgrey.Hw.entry_count;
  check_bool "earlgrey has epmp" true Hw.earlgrey.Hw.epmp

let test_accessible_ranges () =
  let hw = Hw.create Hw.sifive_e310 in
  tor_pair hw ~index:0 ~lo:base ~hi:(base + 512) ~perms:Perms.Read_write_only;
  tor_pair hw ~index:1 ~lo:(base + 4096) ~hi:(base + 4608) ~perms:Perms.Read_only;
  match Hw.accessible_ranges hw Perms.Read with
  | [ a; b ] ->
    check_int "first start" base (Range.start a);
    check_int "second start" (base + 4096) (Range.start b);
    check_int "write ranges exclude RO" 1 (List.length (Hw.accessible_ranges hw Perms.Write))
  | rs -> Alcotest.failf "expected 2 ranges, got %d" (List.length rs)

let prop_napot_roundtrip =
  QCheck.Test.make ~name:"NAPOT encode/decode roundtrip" ~count:200
    (QCheck.pair (QCheck.int_range 3 16) (QCheck.int_range 0 64))
    (fun (size_exp, block) ->
      let size = 1 lsl size_exp in
      let start = (base land lnot (size - 1)) + (block * size) in
      let hw = Hw.create Hw.sifive_e310 in
      Hw.set_entry hw ~index:0
        ~cfg:(Hw.encode_cfg ~r:true ~w:false ~x:false ~mode:Hw.Napot ~lock:false)
        ~addr:(Hw.napot_addr ~start ~size);
      match Hw.entry_range hw 0 with
      | Some r -> Range.start r = start && Range.size r = size
      | None -> false)

let suite =
  [
    Alcotest.test_case "cfg encoding" `Quick test_cfg_encoding;
    Alcotest.test_case "cfg of perms" `Quick test_cfg_of_perms;
    Alcotest.test_case "TOR matching" `Quick test_tor_matching;
    Alcotest.test_case "TOR entry 0 lower bound" `Quick test_tor_entry0_lower_bound_zero;
    Alcotest.test_case "NA4" `Quick test_na4;
    Alcotest.test_case "NAPOT" `Quick test_napot;
    Alcotest.test_case "NAPOT alignment" `Quick test_napot_requires_alignment;
    Alcotest.test_case "lowest entry priority" `Quick test_lowest_entry_priority;
    Alcotest.test_case "machine mode + lock" `Quick test_machine_mode_and_lock;
    Alcotest.test_case "locked entries immutable" `Quick test_locked_entry_immutable;
    Alcotest.test_case "ePMP MMWP" `Quick test_mmwp;
    Alcotest.test_case "chip inventory" `Quick test_chip_inventory;
    Alcotest.test_case "accessible_ranges" `Quick test_accessible_ranges;
    QCheck_alcotest.to_alcotest prop_napot_roundtrip;
  ]
