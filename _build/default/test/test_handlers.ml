(* Tock's handlers and the modeled context switch (Figure 8), including the
   missed-mode-switch bug (issue #4246). *)

module C = Fluxarm.Cpu
module R = Fluxarm.Regs
module E = Fluxarm.Exn
module H = Fluxarm.Handlers
module A = Ticktock.Proofs.Granular.A

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* An ARM machine with a realistic process MPU configuration. *)
let machine () = Ticktock.Proofs.Interrupts.fresh_machine ()

let test_sys_tick_isr () =
  let m, _, _ = machine () in
  let cpu = m.Ticktock.Machine.arm_cpu in
  E.entry cpu ~exc_num:E.exc_systick;
  let lr = H.sys_tick_isr cpu in
  check_int "returns to kernel on msp" E.exc_return_thread_msp lr;
  check_int "CONTROL forced privileged" 0 (C.control_committed cpu)

let test_sys_tick_requires_handler_mode () =
  let m, _, _ = machine () in
  Verify.Violation.with_enabled true (fun () ->
      match H.sys_tick_isr m.Ticktock.Machine.arm_cpu with
      | _ -> Alcotest.fail "must require handler mode"
      | exception Verify.Violation.Violation _ -> ())

let test_svc_from_kernel_goes_to_process () =
  let m, _, _ = machine () in
  let cpu = m.Ticktock.Machine.arm_cpu in
  E.entry cpu ~exc_num:E.exc_svc;
  (* entry from kernel thread on MSP leaves LR = thread_msp *)
  let lr = H.svc_isr cpu in
  check_int "switches onto psp" E.exc_return_thread_psp lr;
  C.isb cpu;
  check_bool "CONTROL.nPRIV pending -> set" true (Word32.bit (C.control_committed cpu) 0)

let test_svc_from_process_goes_to_kernel () =
  let m, alloc, _ = machine () in
  let cpu = m.Ticktock.Machine.arm_cpu in
  (* enter "process" state: thread on PSP *)
  let psp = A.app_break alloc - 64 in
  C.set cpu R.R0 psp;
  C.msr cpu R.Psp R.R0;
  C.movw_imm cpu R.R1 2;
  C.msr cpu R.Control R.R1;
  C.isb cpu;
  E.entry cpu ~exc_num:E.exc_svc;
  let lr = H.svc_isr cpu in
  check_int "back to kernel" E.exc_return_thread_msp lr;
  check_int "CONTROL privileged" 0 (C.control_committed cpu)

let test_switch_parts_roundtrip () =
  let m, alloc, regs_base = machine () in
  let cpu = m.Ticktock.Machine.arm_cpu in
  let mem = m.Ticktock.Machine.arm_mem in
  (* give the process a stacked frame and stored registers *)
  let psp = A.app_break alloc - 64 in
  for i = 0 to 7 do
    Memory.write32 mem (psp + (4 * i)) (0x9000 + i)
  done;
  for i = 0 to 7 do
    Memory.write32 mem (regs_base + (4 * i)) (0x7000 + i)
  done;
  List.iteri (fun i r -> C.set cpu r (0x4000 + i)) R.callee_saved;
  let snap = C.snapshot cpu in
  H.switch_to_user_part1 cpu ~process_sp:psp ~regs_base;
  check_bool "unprivileged in process" false (C.privileged cpu);
  check_int "process callee-saved loaded" 0x7000 (C.get cpu R.R4);
  check_int "process frame r0 popped" 0x9000 (C.get cpu R.R0);
  (* process mutates its registers *)
  C.set cpu R.R4 0xDEAD;
  H.preempt_process cpu ~exc_num:E.exc_systick;
  H.switch_to_user_part2 cpu ~regs_base;
  check_bool "kernel state restored" true (C.cpu_state_correct ~old:snap cpu = Ok ());
  check_int "process r4 saved to stored state" 0xDEAD (Memory.read32 mem regs_base);
  check_int "kernel r4 restored" 0x4000 (C.get cpu R.R4)

let test_control_flow_kernel_to_kernel () =
  let m, alloc, regs_base = machine () in
  match
    H.control_flow_kernel_to_kernel m.Ticktock.Machine.arm_cpu ~exc_num:15
      ~process_sp:(A.app_break alloc - 64) ~regs_base
      ~process_accessible:(A.accessible alloc) ~seed:7
  with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_missed_mode_switch_caught () =
  let m, alloc, regs_base = machine () in
  Verify.Violation.with_enabled true (fun () ->
      let faults = { H.skip_mode_switch = true } in
      match
        H.control_flow_kernel_to_kernel ~faults m.Ticktock.Machine.arm_cpu ~exc_num:15
          ~process_sp:(A.app_break alloc - 64) ~regs_base
          ~process_accessible:(A.accessible alloc) ~seed:7
      with
      | Ok () | Error _ -> Alcotest.fail "mode-switch omission must be caught"
      | exception Verify.Violation.Violation v ->
        check_bool "the §2.2 bug, by name" true
          (v.Verify.Violation.site = "switch_to_user_part1: process runs unprivileged"))

let test_missed_mode_switch_breaks_isolation_without_verification () =
  (* With contracts off (a release build of buggy Tock), the process simply
     runs privileged: the MPU no longer stops a kernel-memory write. This is
     the isolation break itself, not just the contract. *)
  let m, alloc, regs_base = machine () in
  Verify.Violation.with_enabled false (fun () ->
      let faults = { H.skip_mode_switch = true } in
      let cpu = m.Ticktock.Machine.arm_cpu in
      H.switch_to_user_part1 ~faults cpu ~process_sp:(A.app_break alloc - 64) ~regs_base;
      check_bool "process is privileged (the bug)" true (C.privileged cpu);
      (* privileged => checker lets a kernel write through *)
      let target = Range.start Layout.kernel_sram + 0x2000 in
      Memory.store8 (C.memory cpu) target 0xEE;
      check_int "kernel memory clobbered" 0xEE (Memory.read8 (C.memory cpu) target))

let test_process_model_contained () =
  let m, alloc, regs_base = machine () in
  Verify.Violation.with_enabled true (fun () ->
      let cpu = m.Ticktock.Machine.arm_cpu in
      H.switch_to_user_part1 cpu ~process_sp:(A.app_break alloc - 64) ~regs_base;
      (* the havoc process performs checked accesses only; the sandbox
         contract inside asserts every allowed access stays inside *)
      H.process cpu ~seed:42 ~steps:200 ~accessible:(A.accessible alloc);
      H.preempt_process cpu ~exc_num:15;
      H.switch_to_user_part2 cpu ~regs_base)

let test_generic_irq_returns_to_kernel () =
  let m, _, _ = machine () in
  let cpu = m.Ticktock.Machine.arm_cpu in
  E.entry cpu ~exc_num:22;
  check_int "irq isr targets kernel" E.exc_return_thread_msp (H.generic_irq_isr cpu)

let suite =
  [
    Alcotest.test_case "sys_tick_isr (Figure 8)" `Quick test_sys_tick_isr;
    Alcotest.test_case "sys_tick requires handler mode" `Quick test_sys_tick_requires_handler_mode;
    Alcotest.test_case "svc kernel->process" `Quick test_svc_from_kernel_goes_to_process;
    Alcotest.test_case "svc process->kernel" `Quick test_svc_from_process_goes_to_kernel;
    Alcotest.test_case "switch parts roundtrip" `Quick test_switch_parts_roundtrip;
    Alcotest.test_case "control_flow_kernel_to_kernel (§4.5)" `Quick
      test_control_flow_kernel_to_kernel;
    Alcotest.test_case "missed mode switch caught (#4246)" `Quick test_missed_mode_switch_caught;
    Alcotest.test_case "missed mode switch breaks isolation" `Quick
      test_missed_mode_switch_breaks_isolation_without_verification;
    Alcotest.test_case "process model contained" `Quick test_process_model_contained;
    Alcotest.test_case "generic irq returns to kernel" `Quick test_generic_irq_returns_to_kernel;
  ]
