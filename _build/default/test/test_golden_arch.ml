(* Golden outputs for the RISC-V (e310) and ARMv8-M boards: the
   per-architecture regression net behind the cross-architecture claims.
   Regenerate with `dune exec bin/dump_golden.exe -- <board>`. *)

open Ticktock

let golden_e310 =
  [
    ( "c_hello",
      "Hello World!\r\n",
      "exited(0)" );
    ( "lua-hello",
      "Hello from Lua!\r\n",
      "exited(0)" );
    ( "printf_long",
      "Hi welcome to Tock. This test makes sure that a greater than 64 byte message can be printed.\r\nAnd a short message.\r\n",
      "exited(0)" );
    ( "blink",
      "led toggle\r\nled toggle\r\nled toggle\r\nled toggle\r\nled toggle\r\n",
      "exited(0)" );
    ( "buttons",
      "buttons: driver present\r\n",
      "exited(0)" );
    ( "malloc_test01",
      "malloc01: success\r\n",
      "exited(0)" );
    ( "malloc_test02",
      "malloc02: success\r\n",
      "exited(0)" );
    ( "stack_size_test01",
      "stack: memory_start=0x20010c00\r\nstack: app_break=0x20011400\r\n",
      "exited(0)" );
    ( "stack_size_test02",
      "stack2: layout 0x20012000..0x20013000 grant@0x20013bc0\r\n",
      "exited(0)" );
    ( "mpu_stack_growth",
      "stack_growth: block 0x20013c00..0x20014400\r\nstack_growth: overrunning stack (fault expected)\r\n",
      "faulted: mpu fault: write at 0x20013bfc (pmp: no entry covers 0x20013bfc)" );
    ( "mpu_walk_region",
      "walk_region: walked 1024 bytes (sum=0)\r\nwalk_region: overrun expected\r\n",
      "faulted: mpu fault: read at 0x20016bc0 (pmp: no entry covers 0x20016bc0)" );
    ( "sensors",
      "sensors: temperature reading 5831\r\n",
      "exited(0)" );
    ( "adc",
      "adc: channel 0 = 6158\r\n",
      "exited(0)" );
    ( "ip_sense",
      "ip_sense: packet sent\r\n",
      "exited(0)" );
    ( "whileone",
      "whileone: spinning\r\n",
      "exited(0)" );
    ( "timer_oneshot",
      "timer: oneshot fired\r\n",
      "exited(0)" );
    ( "timer_repeat",
      "timer: tick\r\ntimer: tick\r\ntimer: tick\r\n",
      "exited(0)" );
    ( "tictactoe",
      "tictactoe: XOO.X...X X wins\r\n",
      "exited(0)" );
    ( "rot13_client_service",
      "rot13: Hello -> Uryyb\r\n",
      "exited(0)" );
    ( "app_state",
      "app_state: flash magic 0x54424632\r\n",
      "exited(0)" );
    ( "ble_advertising",
      "ble: advertising started\r\n",
      "exited(0)" );
  ]

let golden_v8 =
  [
    ( "c_hello",
      "Hello World!\r\n",
      "exited(0)" );
    ( "lua-hello",
      "Hello from Lua!\r\n",
      "exited(0)" );
    ( "printf_long",
      "Hi welcome to Tock. This test makes sure that a greater than 64 byte message can be printed.\r\nAnd a short message.\r\n",
      "exited(0)" );
    ( "blink",
      "led toggle\r\nled toggle\r\nled toggle\r\nled toggle\r\nled toggle\r\n",
      "exited(0)" );
    ( "buttons",
      "buttons: driver present\r\n",
      "exited(0)" );
    ( "malloc_test01",
      "malloc01: success\r\n",
      "exited(0)" );
    ( "malloc_test02",
      "malloc02: success\r\n",
      "exited(0)" );
    ( "stack_size_test01",
      "stack: memory_start=0x20010c00\r\nstack: app_break=0x20011400\r\n",
      "exited(0)" );
    ( "stack_size_test02",
      "stack2: layout 0x20012000..0x20013000 grant@0x20013bc0\r\n",
      "exited(0)" );
    ( "mpu_stack_growth",
      "stack_growth: block 0x20013c00..0x20014400\r\nstack_growth: overrunning stack (fault expected)\r\n",
      "faulted: mpu fault: write at 0x20013bfc (mpu v8: no region covers 0x20013bfc)" );
    ( "mpu_walk_region",
      "walk_region: walked 1024 bytes (sum=0)\r\nwalk_region: overrun expected\r\n",
      "faulted: mpu fault: read at 0x20016bc0 (mpu v8: no region covers 0x20016bc0)" );
    ( "sensors",
      "sensors: temperature reading 5831\r\n",
      "exited(0)" );
    ( "adc",
      "adc: channel 0 = 6158\r\n",
      "exited(0)" );
    ( "ip_sense",
      "ip_sense: packet sent\r\n",
      "exited(0)" );
    ( "whileone",
      "whileone: spinning\r\n",
      "exited(0)" );
    ( "timer_oneshot",
      "timer: oneshot fired\r\n",
      "exited(0)" );
    ( "timer_repeat",
      "timer: tick\r\ntimer: tick\r\ntimer: tick\r\n",
      "exited(0)" );
    ( "tictactoe",
      "tictactoe: XOO.X...X X wins\r\n",
      "exited(0)" );
    ( "rot13_client_service",
      "rot13: Hello -> Uryyb\r\n",
      "exited(0)" );
    ( "app_state",
      "app_state: flash magic 0x54424632\r\n",
      "exited(0)" );
    ( "ble_advertising",
      "ble: advertising started\r\n",
      "exited(0)" );
  ]

let check golden make () =
  let results =
    Verify.Violation.with_enabled false (fun () -> Apps.Difftest.run_suite (make ()))
  in
  List.iter2
    (fun (name, expected_output, expected_state) (r : Apps.Difftest.app_result) ->
      Alcotest.(check string) (name ^ ": output") expected_output r.output;
      Alcotest.(check string) (name ^ ": state") expected_state r.state)
    golden results

let suite =
  [
    Alcotest.test_case "golden outputs (ticktock-e310)" `Slow
      (check golden_e310 (fun () -> Boards.instance_ticktock_e310 ()));
    Alcotest.test_case "golden outputs (ticktock-arm-v8)" `Slow
      (check golden_v8 (fun () -> Boards.instance_ticktock_arm_v8 ()));
  ]
