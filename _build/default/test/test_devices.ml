(* The UART and GPIO device models capsules sit on. *)

module U = Mpu_hw.Uart
module G = Mpu_hw.Gpio

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_uart_tx_basic () =
  let u = U.create () in
  U.write_byte u (Char.code 'a');
  Alcotest.(check string) "byte lands in transcript" "a" (U.transcript u);
  check_bool "shifter busy" true (U.tx_busy u);
  U.step u 8;
  check_bool "idle after a byte time" false (U.tx_busy u)

let test_uart_overrun () =
  let u = U.create () in
  U.write_byte u (Char.code 'a');
  U.write_byte u (Char.code 'b') (* while busy: dropped *);
  Alcotest.(check string) "second byte dropped" "a" (U.transcript u);
  check_int "overrun recorded" 1 (U.overruns u)

let test_uart_blocking_driver () =
  let u = U.create () in
  U.write_string_blocking u "hello";
  Alcotest.(check string) "polling driver never overruns" "hello" (U.transcript u);
  check_int "no overruns" 0 (U.overruns u)

let test_uart_rx_fifo () =
  let u = U.create () in
  check_bool "empty" false (U.rx_available u);
  U.rx_push u 1;
  U.rx_push u 2;
  check_bool "available" true (U.rx_available u);
  Alcotest.(check (option int)) "fifo order" (Some 1) (U.read_byte u);
  Alcotest.(check (option int)) "fifo order 2" (Some 2) (U.read_byte u);
  Alcotest.(check (option int)) "drained" None (U.read_byte u)

let test_uart_rx_overflow () =
  let u = U.create ~rx_depth:2 () in
  U.rx_push u 1;
  U.rx_push u 2;
  U.rx_push u 3;
  check_int "overflow counted" 1 (U.rx_overflows u)

let test_gpio_directions () =
  let g = G.create 4 in
  check_int "pins" 4 (G.pin_count g);
  G.set_direction g 0 G.Output;
  G.write g 0 true;
  check_bool "reads back output latch" true (G.read g 0);
  Alcotest.check_raises "write to input pin" (Invalid_argument "gpio: write to input pin")
    (fun () -> G.write g 1 true)

let test_gpio_inputs () =
  let g = G.create 4 in
  check_bool "input low" false (G.read g 2);
  G.set_input g 2 true;
  check_bool "input high" true (G.read g 2)

let test_gpio_toggle_count () =
  let g = G.create 2 in
  G.set_direction g 0 G.Output;
  G.toggle g 0;
  G.toggle g 0;
  G.toggle g 0;
  check_int "three edges" 3 (G.toggles g 0);
  check_bool "ends high" true (G.out_level g 0);
  (* writing the same level is not an edge *)
  G.write g 0 true;
  check_int "no extra edge" 3 (G.toggles g 0)

let test_gpio_bounds () =
  let g = G.create 2 in
  Alcotest.check_raises "pin bounds" (Invalid_argument "gpio: pin") (fun () ->
      ignore (G.read g 5))

let suite =
  [
    Alcotest.test_case "uart tx" `Quick test_uart_tx_basic;
    Alcotest.test_case "uart overrun" `Quick test_uart_overrun;
    Alcotest.test_case "uart blocking driver" `Quick test_uart_blocking_driver;
    Alcotest.test_case "uart rx fifo" `Quick test_uart_rx_fifo;
    Alcotest.test_case "uart rx overflow" `Quick test_uart_rx_overflow;
    Alcotest.test_case "gpio directions" `Quick test_gpio_directions;
    Alcotest.test_case "gpio inputs" `Quick test_gpio_inputs;
    Alcotest.test_case "gpio toggle count" `Quick test_gpio_toggle_count;
    Alcotest.test_case "gpio bounds" `Quick test_gpio_bounds;
  ]
