(* DMA: the raw escape hatch, the TakeCell misuse, and the DmaCell fix (§4.6). *)

open Ticktock

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let buf_addr = 0x2000_9000

let setup () =
  let mem = Memory.create () in
  (mem, Dma.Engine.create mem, Dma.Buffer.create mem ~addr:buf_addr ~len:64)

let test_engine_transfers () =
  let mem, engine, _ = setup () in
  Dma.Engine.set_fill engine 0x5A;
  Dma.Engine.start_raw engine ~base:buf_addr ~len:16;
  check_bool "busy" true (Dma.Engine.is_busy engine);
  Dma.Engine.run_to_completion engine;
  check_bool "idle" false (Dma.Engine.is_busy engine);
  check_int "first byte" 0x5A (Memory.read8 mem buf_addr);
  check_int "last byte" 0x5A (Memory.read8 mem (buf_addr + 15));
  check_int "one past untouched" 0 (Memory.read8 mem (buf_addr + 16))

let test_engine_incremental () =
  let mem, engine, _ = setup () in
  Dma.Engine.start_raw engine ~base:buf_addr ~len:10;
  Dma.Engine.step engine 4;
  check_bool "still busy" true (Dma.Engine.is_busy engine);
  check_int "partial" 0xD5 (Memory.read8 mem (buf_addr + 3));
  check_int "not yet" 0 (Memory.read8 mem (buf_addr + 4));
  Dma.Engine.step engine 100;
  check_bool "done" false (Dma.Engine.is_busy engine)

let test_raw_interface_clobbers_kernel () =
  (* the escape hatch the paper warns about: plain usize values can point
     the engine at kernel memory and the MPU cannot stop it *)
  let mem, engine, _ = setup () in
  let kernel_addr = Range.start Layout.kernel_sram + 0x100 in
  Dma.Engine.start_raw engine ~base:kernel_addr ~len:8;
  Dma.Engine.run_to_completion engine;
  check_int "kernel memory clobbered by DMA" 0xD5 (Memory.read8 mem kernel_addr)

let test_cell_place_and_complete () =
  let _, engine, buf = setup () in
  let cell = Dma.Cell.create () in
  (match Dma.Cell.place cell buf with
  | Some wrapper ->
    check_int "wrapper carries the buffer base" buf_addr (Dma.Wrapper.base wrapper);
    check_int "wrapper carries the length" 64 (Dma.Wrapper.len wrapper);
    Dma.Engine.start engine wrapper;
    Dma.Engine.run_to_completion engine;
    (match Dma.Cell.completed cell engine with
    | Some b -> check_int "buffer returned" buf_addr (Dma.Buffer.addr b)
    | None -> Alcotest.fail "expected the buffer back")
  | None -> Alcotest.fail "place failed");
  check_bool "cell empty after completion" false (Dma.Cell.is_some cell)

let test_cell_refuses_double_place () =
  let mem, _, buf = setup () in
  let cell = Dma.Cell.create () in
  let buf2 = Dma.Buffer.create mem ~addr:0x2000_A000 ~len:32 in
  check_bool "first place succeeds" true (Dma.Cell.place cell buf <> None);
  check_bool "second place refused (DMA in progress)" true (Dma.Cell.place cell buf2 = None)

let test_cell_completed_requires_idle_engine () =
  let _, engine, buf = setup () in
  let cell = Dma.Cell.create () in
  (match Dma.Cell.place cell buf with
  | Some wrapper -> Dma.Engine.start engine wrapper
  | None -> Alcotest.fail "place failed");
  Verify.Violation.with_enabled true (fun () ->
      match Dma.Cell.completed cell engine with
      | _ -> Alcotest.fail "completed with busy engine must violate"
      | exception Verify.Violation.Violation _ -> ())

let test_driver_access_during_dma_is_aliasing () =
  (* ownership: while the cell holds the buffer, driver writes violate *)
  let _, _, buf = setup () in
  let cell = Dma.Cell.create () in
  ignore (Dma.Cell.place cell buf);
  Verify.Violation.with_enabled true (fun () ->
      (match Dma.Buffer.write buf 0 0xFF with
      | () -> Alcotest.fail "write during DMA must violate"
      | exception Verify.Violation.Violation v ->
        check_bool "ownership violation" true
          (v.Verify.Violation.site = "DmaBuffer.write: driver owns buffer"));
      match Dma.Buffer.read buf 0 with
      | _ -> Alcotest.fail "read during DMA must violate"
      | exception Verify.Violation.Violation _ -> ())

let test_take_cell_reproduces_the_misuse () =
  (* the upstream pattern: TakeCell hands the buffer back while the engine
     still owns it — the §4.6 aliasing bug, reproduced then caught by the
     ownership contract at the first driver access *)
  let _, engine, buf = setup () in
  let take_cell = Dma.Take_cell.create () in
  let cell = Dma.Cell.create () in
  (match Dma.Cell.place cell buf with
  | Some wrapper -> Dma.Engine.start engine wrapper
  | None -> Alcotest.fail "place failed");
  Dma.Take_cell.put take_cell buf;
  match Dma.Take_cell.take take_cell with
  | None -> Alcotest.fail "take_cell lost the buffer"
  | Some aliased ->
    Verify.Violation.with_enabled true (fun () ->
        match Dma.Buffer.write aliased 0 0x42 with
        | () -> Alcotest.fail "aliasing write must be caught"
        | exception Verify.Violation.Violation _ -> ())

let test_buffer_bounds () =
  let _, _, buf = setup () in
  Verify.Violation.with_enabled true (fun () ->
      Dma.Buffer.write buf 63 1;
      check_int "in-bounds rw" 1 (Dma.Buffer.read buf 63);
      match Dma.Buffer.write buf 64 1 with
      | () -> Alcotest.fail "oob must violate"
      | exception Verify.Violation.Violation _ -> ())

let suite =
  [
    Alcotest.test_case "engine transfers" `Quick test_engine_transfers;
    Alcotest.test_case "engine incremental steps" `Quick test_engine_incremental;
    Alcotest.test_case "raw MMIO path clobbers kernel (the hazard)" `Quick
      test_raw_interface_clobbers_kernel;
    Alcotest.test_case "DmaCell place/complete" `Quick test_cell_place_and_complete;
    Alcotest.test_case "DmaCell refuses double place" `Quick test_cell_refuses_double_place;
    Alcotest.test_case "completed requires idle engine" `Quick
      test_cell_completed_requires_idle_engine;
    Alcotest.test_case "driver access during DMA = aliasing" `Quick
      test_driver_access_during_dma_is_aliasing;
    Alcotest.test_case "TakeCell misuse reproduced (§4.6)" `Quick
      test_take_cell_reproduces_the_misuse;
    Alcotest.test_case "buffer bounds" `Quick test_buffer_bounds;
  ]
