(* The ticktock command-line tool.

     ticktock boards                 list kernel configurations
     ticktock run [-k BOARD]        run the 21-app release suite
     ticktock difftest              compare Tock vs TickTock outputs (§6.1)
     ticktock attack [-k BOARD]     replay the §2.2/§3.4 exploits
     ticktock verify [-s SCALE]     check the proof components (§4)
     ticktock stats                 per-method cycle hooks (Figure 11 raw)
*)

open Ticktock
open Cmdliner

let board_arg =
  let boards = List.map fst Boards.all_instances in
  let doc =
    Printf.sprintf "Kernel configuration to use. One of: %s." (String.concat ", " boards)
  in
  Arg.(value & opt string "ticktock-arm" & info [ "k"; "kernel" ] ~docv:"BOARD" ~doc)

let make_board name =
  match List.assoc_opt name Boards.all_instances with
  | Some make -> Ok (make ())
  | None -> Error (`Msg (Printf.sprintf "unknown board %S (try `ticktock boards')" name))

let boards_cmd =
  let run () =
    List.iter (fun (name, _) -> print_endline name) Boards.all_instances;
    0
  in
  Cmd.v (Cmd.info "boards" ~doc:"List kernel configurations") Term.(const run $ const ())

let run_cmd =
  let run board verbose =
    match make_board board with
    | Error (`Msg m) ->
      prerr_endline m;
      1
    | Ok k ->
      Verify.Violation.set_enabled false;
      let results = Apps.Difftest.run_suite k in
      List.iter
        (fun (r : Apps.Difftest.app_result) ->
          Printf.printf "=== %s [%s]\n" r.app.Apps.Suite.app_name r.state;
          if verbose then print_string r.output)
        results;
      Printf.printf "\n%d apps; console:\n%s" (List.length results) (k.Instance.console ());
      0
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print app output.") in
  Cmd.v
    (Cmd.info "run" ~doc:"Run the 21-app release suite on a board")
    Term.(const run $ board_arg $ verbose)

let difftest_cmd =
  let run () =
    Verify.Violation.set_enabled false;
    let left = Apps.Difftest.run_suite (Boards.instance_ticktock_arm ()) in
    let right = Apps.Difftest.run_suite (Boards.instance_tock_arm ()) in
    Format.printf "%a@." Apps.Difftest.pp_comparison
      (Apps.Difftest.compare_suites ~left ~right);
    0
  in
  Cmd.v
    (Cmd.info "difftest" ~doc:"Differential-test Tock vs TickTock (§6.1)")
    Term.(const run $ const ())

let attack_cmd =
  let run board =
    match List.assoc_opt board Boards.all_instances with
    | None ->
      Printf.eprintf "unknown board %S\n" board;
      1
    | Some make ->
      let broken = ref 0 in
      List.iter
        (fun (a : Apps.Attacks.attack) ->
          let outcome =
            Verify.Violation.with_enabled false (fun () -> Apps.Attacks.run_attack make a)
          in
          (match outcome with
          | Apps.Attacks.Broken_isolation | Apps.Attacks.Kernel_dos _ -> incr broken
          | Apps.Attacks.Contained | Apps.Attacks.Contained_fault | Apps.Attacks.Load_failed _
            -> ());
          Printf.printf "%-20s %s\n" a.attack_name (Apps.Attacks.outcome_to_string outcome))
        Apps.Attacks.all;
      Printf.printf "\n%d attack(s) broke isolation on %s\n" !broken board;
      if !broken = 0 then 0 else 2
  in
  Cmd.v
    (Cmd.info "attack" ~doc:"Replay the paper's exploits against a board")
    Term.(const run $ board_arg)

let verify_cmd =
  let run scale =
    let name, props = Proofs.upstream_bug_hunt ~scale:(min scale 0.4) in
    let bug_report = Verify.Checker.check_component name props in
    Format.printf "%a@." Verify.Checker.pp_report bug_report;
    let reports =
      List.map
        (fun (cname, cprops) -> Verify.Checker.check_component cname cprops)
        (Proofs.components ~scale)
    in
    List.iter (fun r -> Format.printf "%a@." Verify.Checker.pp_report r) reports;
    Format.printf "%a@." Verify.Report.pp_timing_table
      (List.map
         (fun (r : Verify.Checker.component_report) ->
           (r.Verify.Checker.component, Verify.Report.timing_stats r))
         reports);
    if List.for_all Verify.Checker.all_verified reports then 0 else 1
  in
  let scale =
    Arg.(value & opt float 0.3 & info [ "s"; "scale" ] ~docv:"SCALE" ~doc:"Domain scale.")
  in
  Cmd.v (Cmd.info "verify" ~doc:"Check the proof components (§4)") Term.(const run $ scale)

let fuzz_cmd =
  let run board seeds =
    match List.assoc_opt board Boards.all_instances with
    | None ->
      Printf.eprintf "unknown board %S\n" board;
      1
    | Some make ->
      let contracts =
        (* contracts on for the verified kernels, off for the baselines *)
        String.length board >= 8 && String.sub board 0 8 = "ticktock"
      in
      let rounds, panics =
        Verify.Violation.with_enabled contracts (fun () -> Apps.Fuzz.campaign ~seeds make)
      in
      List.iter
        (fun (r : Apps.Fuzz.outcome) ->
          Printf.printf "seed %3d: witness=%b isolation=%b faulted=%d exited=%d%s\n"
            r.fuzz_seed r.witness_ok r.isolation_ok r.fuzzers_faulted r.fuzzers_exited
            (match r.kernel_panic with
            | Some msg -> "  KERNEL PANIC: " ^ msg
            | None -> ""))
        rounds;
      Printf.printf "\n%d/%d rounds panicked the kernel\n" (List.length panics)
        (List.length rounds);
      if List.length panics = 0 then 0 else 2
  in
  let seeds = Arg.(value & opt int 20 & info [ "n"; "seeds" ] ~docv:"N" ~doc:"Seeds to try.") in
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Fuzz a board with hostile syscall/memory streams")
    Term.(const run $ board_arg $ seeds)

let ps_cmd =
  let run2 board =
    match make_board board with
    | Error (`Msg m) ->
      prerr_endline m;
      1
    | Ok k ->
      Verify.Violation.set_enabled false;
      let results = Apps.Difftest.run_suite ~max_ticks:300 k in
      List.iter
        (fun (r : Apps.Difftest.app_result) ->
          Printf.printf "%-22s %s\n" r.app.Apps.Suite.app_name r.state)
        results;
      0
  in
  Cmd.v
    (Cmd.info "ps" ~doc:"Process states after a short suite run")
    Term.(const run2 $ board_arg)

let stats_cmd =
  let run board =
    match make_board board with
    | Error (`Msg m) ->
      prerr_endline m;
      1
    | Ok k ->
      Verify.Violation.set_enabled false;
      ignore (Apps.Difftest.run_suite k);
      Format.printf "%a@." Hooks.pp (k.Instance.hooks ());
      0
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Per-method cycle hooks after a suite run")
    Term.(const run $ board_arg)

let () =
  let doc = "TickTock: verified isolation in a modeled embedded OS" in
  let info = Cmd.info "ticktock" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ boards_cmd; run_cmd; difftest_cmd; attack_cmd; verify_cmd; stats_cmd; fuzz_cmd; ps_cmd ]))
