(* Regenerate the golden tables in test/test_golden*.ml. *)
let dump maker =
  Verify.Violation.set_enabled false;
  let results = Apps.Difftest.run_suite (maker ()) in
  List.iter
    (fun (r : Apps.Difftest.app_result) ->
      Printf.printf "    ( %S,\n      %S,\n      %S );\n" r.app.Apps.Suite.app_name r.output r.state)
    results

let () =
  match Sys.argv with
  | [| _; name |] -> (
    match List.assoc_opt name Ticktock.Boards.all_instances with
    | Some maker -> dump maker
    | None -> prerr_endline "unknown board")
  | _ -> dump (fun () -> Ticktock.Boards.instance_ticktock_arm ())
