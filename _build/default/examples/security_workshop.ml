(* Security workshop: replay the paper's §2.2/§3.4 attacks against every
   kernel configuration and watch which ones hold.

     dune exec examples/security_workshop.exe

   Expected: the upstream (buggy) monolithic kernels lose exactly where the
   paper says they do — the grant-overlap write lands on tock-arm, the brk
   underflow panics tock-arm, the PMP rounding hole opens on tock-pmp — and
   TickTock's granular kernels contain everything. *)

open Ticktock

let kernels =
  [
    ("tock-arm-upstream ", fun () -> Boards.instance_tock_arm ());
    ("tock-arm-patched  ", fun () -> Boards.instance_tock_arm_patched ());
    ("ticktock-arm      ", fun () -> Boards.instance_ticktock_arm ());
    ("tock-pmp-upstream ", fun () -> Boards.instance_tock_pmp ());
    ("tock-pmp-patched  ", fun () -> Boards.instance_tock_pmp_patched ());
    ("ticktock-e310     ", fun () -> Boards.instance_ticktock_e310 ());
  ]

let () =
  print_endline "Replaying the paper's attacks against six kernel configurations.\n";
  List.iter
    (fun (attack : Apps.Attacks.attack) ->
      Printf.printf "== %s — %s\n" attack.attack_name attack.description;
      List.iter
        (fun (name, make) ->
          (* contracts off: we are testing what the hardware contains, not
             what the verifier would have said *)
          let outcome =
            Verify.Violation.with_enabled false (fun () -> Apps.Attacks.run_attack make attack)
          in
          Printf.printf "   %s %s\n" name (Apps.Attacks.outcome_to_string outcome))
        kernels;
      print_newline ())
    Apps.Attacks.all;

  (* And the bug the attacks cannot reach from userspace: the missed mode
     switch in the context-switch assembly (#4246), demonstrated at the
     FluxArm level. *)
  print_endline "== missed_mode_switch — context switch omits the CONTROL write (#4246)";
  let m, alloc, regs_base = Proofs.Interrupts.fresh_machine () in
  Verify.Violation.with_enabled false (fun () ->
      let faults = { Fluxarm.Handlers.skip_mode_switch = true } in
      Fluxarm.Handlers.switch_to_user_part1 ~faults m.Machine.arm_cpu
        ~process_sp:(Proofs.Granular.A.app_break alloc - 64)
        ~regs_base;
      Printf.printf "   buggy switch: process runs privileged = %b (isolation gone)\n"
        (Fluxarm.Cpu.privileged m.Machine.arm_cpu));
  let m2, alloc2, regs_base2 = Proofs.Interrupts.fresh_machine () in
  Verify.Violation.with_enabled true (fun () ->
      let faults = { Fluxarm.Handlers.skip_mode_switch = true } in
      match
        Fluxarm.Handlers.switch_to_user_part1 ~faults m2.Machine.arm_cpu
          ~process_sp:(Proofs.Granular.A.app_break alloc2 - 64)
          ~regs_base:regs_base2
      with
      | () -> print_endline "   verification missed it (should not happen)"
      | exception Verify.Violation.Violation v ->
        Format.printf "   verified build rejects it: %a@." Verify.Violation.pp v)
