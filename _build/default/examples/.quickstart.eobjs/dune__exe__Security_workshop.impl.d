examples/security_workshop.ml: Apps Boards Fluxarm Format List Machine Printf Proofs Ticktock Verify
