examples/resilience.mli:
