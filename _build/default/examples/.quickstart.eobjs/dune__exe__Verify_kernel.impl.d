examples/verify_kernel.ml: Array Format List Printf Proofs Sys Ticktock Verify
