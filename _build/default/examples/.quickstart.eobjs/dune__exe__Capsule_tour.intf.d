examples/capsule_tour.mli:
