examples/resilience.ml: Apps Boards Kernel List Machine Printf Process Result Ticktock Trace
