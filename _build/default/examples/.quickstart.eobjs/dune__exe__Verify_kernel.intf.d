examples/verify_kernel.mli:
