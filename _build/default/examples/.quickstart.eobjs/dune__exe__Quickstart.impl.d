examples/quickstart.ml: Apps Boards Format Hooks Kerror List Machine Mpu_hw Printf Process Ticktock Word32
