examples/capsule_tour.ml: Apps Boards Capsules Char List Mpu_hw Printf Process Result String Ticktock
