examples/quickstart.mli:
