examples/security_workshop.mli:
