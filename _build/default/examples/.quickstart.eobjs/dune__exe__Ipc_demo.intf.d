examples/ipc_demo.mli:
