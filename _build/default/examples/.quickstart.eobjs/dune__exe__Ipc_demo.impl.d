examples/ipc_demo.ml: Apps Boards Capsules Char Kerror List Printf Process String Ticktock Userland
