examples/sensor_logger.ml: Apps Boards Dma Format Hooks Kerror Layout Machine Printf Process Range Ticktock
