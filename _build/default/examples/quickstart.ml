(* Quickstart: bring up a TickTock kernel on the modeled ARM board, load two
   untrusted applications, run them to completion, and inspect the result.

     dune exec examples/quickstart.exe
*)

open Ticktock
open Apps.App_dsl

(* An application is a script in the userland DSL: every load/store goes
   through the live MPU model with the CPU unprivileged, and every syscall
   enters the kernel through Tock's ABI. *)
let hello =
  let* () = print "Hello from an untrusted process!\n" in
  let* ms = memory_start in
  let* ab = memory_end in
  let* () = printf "my RAM: %s..%s\n" (Word32.to_hex ms) (Word32.to_hex ab) in
  (* grow the heap with sbrk and use it *)
  let* heap = memory_end in
  let* _ = sbrk 256 in
  let* _ = store32 heap 0xC0FFEE in
  let* v = load32 heap in
  let* () = printf "heap works: 0x%x\n" v in
  return 0

let clock_watcher =
  let* _ = subscribe ~driver:0 ~upcall_id:0 in
  let* () =
    repeat 3 (fun () ->
        let* _ = command ~driver:0 ~cmd:1 ~arg1:2 () in
        let* _ = yield in
        print "tick!\n")
  in
  return 0

let () =
  (* A board is a machine (memory + MPU hardware model + CPU emulator) plus
     a kernel; Boards wires them together. *)
  let machine, kernel = Boards.make_ticktock_arm () in
  let load name script =
    match
      Boards.Ticktock_arm.create_process kernel ~name ~payload:name
        ~program:(to_program script) ~min_ram:2048 ()
    with
    | Ok proc -> proc
    | Error e -> failwith (Kerror.to_string e)
  in
  let p1 = load "hello" hello in
  let p2 = load "clock" clock_watcher in

  Boards.Ticktock_arm.run kernel ~max_ticks:200;

  List.iter
    (fun (proc : _ Process.t) ->
      Printf.printf "=== %s [%s]\n%s\n" proc.Process.name
        (Process.state_to_string proc.Process.state)
        (Process.output proc))
    [ p1; p2 ];

  (* The kernel's logical view and the hardware's enforcement agree — the
     §4.3 correspondence, checkable at any time. *)
  Printf.printf "isolation (hardware within kernel view): %b\n"
    (Boards.Ticktock_arm.isolation_ok kernel p1);

  (* Per-method cycle hooks (the Figure 11 instrumentation). *)
  Format.printf "@.%a@." Hooks.pp (Boards.Ticktock_arm.hooks kernel);

  (* The MPU hardware as configured for the last-run process. *)
  Format.printf "%a@." Mpu_hw.Armv7m_mpu.pp machine.Machine.arm_mpu
