(* Sensor logger: the kind of application Tock's introduction motivates — a
   sensing app sharing buffers with capsules, sleeping on timers, while a
   driver moves data with DMA through the safe DmaCell interface.

     dune exec examples/sensor_logger.exe
*)

open Ticktock
open Apps.App_dsl

(* The untrusted app: allow a buffer to the sensor driver, take periodic
   readings, store them in its heap, and report. *)
let logger_app =
  let* ms = memory_start in
  let* _ = allow_rw ~driver:2 ~addr:ms ~len:32 in
  let* _ = subscribe ~driver:0 ~upcall_id:0 in
  let rec sample n acc =
    if n = 0 then return acc
    else
      let* v = command ~driver:2 ~cmd:1 () in
      let* _ = store32 (ms + (4 * n)) v in
      let* _ = command ~driver:0 ~cmd:1 ~arg1:2 () in
      let* _ = yield in
      sample (n - 1) (acc + v)
  in
  let* total = sample 4 0 in
  let* () = printf "sensor-logger: 4 samples, checksum %d\n" (total land 0xffff) in
  (* verify the samples landed in our memory *)
  let* first = load32 (ms + 4) in
  let* () = printf "sensor-logger: last sample re-read: %d\n" first in
  return 0

(* The kernel-side driver bottom half: move the app's readings into a
   peripheral FIFO using DMA, safely. *)
let dma_demo mem =
  let engine = Dma.Engine.create mem in
  let staging = Dma.Buffer.create mem ~addr:(Range.start Layout.kernel_sram + 0x3000) ~len:64 in
  let cell = Dma.Cell.create () in
  match Dma.Cell.place cell staging with
  | None -> print_endline "driver: buffer busy?"
  | Some wrapper ->
    (* the wrapper is the ONLY value the engine accepts: a plain usize
       cannot be handed to it, so the §4.6 escape hatch is closed *)
    Dma.Engine.set_fill engine 0x42;
    Dma.Engine.start engine wrapper;
    Dma.Engine.run_to_completion engine;
    (match Dma.Cell.completed cell engine with
    | Some buf ->
      Printf.printf "driver: DMA complete, staging[0]=0x%02x staging[63]=0x%02x\n"
        (Dma.Buffer.read buf 0) (Dma.Buffer.read buf 63)
    | None -> print_endline "driver: lost the buffer?")

let () =
  let machine, kernel = Boards.make_ticktock_arm () in
  (match
     Boards.Ticktock_arm.create_process kernel ~name:"sensor-logger" ~payload:"logger"
       ~program:(to_program logger_app) ~min_ram:2048 ()
   with
  | Ok proc ->
    Boards.Ticktock_arm.run kernel ~max_ticks:500;
    print_string (Process.output proc);
    Printf.printf "app state: %s\n" (Process.state_to_string proc.Process.state)
  | Error e -> failwith (Kerror.to_string e));
  dma_demo machine.Machine.arm_mem;
  Format.printf "@.kernel method cycles:@.%a@." Hooks.pp (Boards.Ticktock_arm.hooks kernel)
