(* IPC demo: a rot13 service and its client, talking through the IPC
   capsule — discovery by name, a shared read-write buffer, and
   notification upcalls in both directions. The service transforms the
   client's buffer in place, byte by byte, through the capsule's mediated
   peer access (it can only reach that buffer because the client allowed it
   to this driver).

     dune exec examples/ipc_demo.exe
*)

open Ticktock
open Apps.App_dsl

let ipc = Capsules.Ipc.driver_num

let rot13_service =
  let* _ = subscribe ~driver:ipc ~upcall_id:2 in
  let* _ = command ~driver:ipc ~cmd:0 () in
  let* () = print "service: registered, waiting\n" in
  let* client = yield in
  let* () = printf "service: request from pid %d\n" client in
  (* transform the client's shared buffer in place *)
  let rec rot i =
    if i >= 16 then return ()
    else
      let* b = command ~driver:ipc ~cmd:4 ~arg1:client ~arg2:i () in
      if b = 0 then return ()
      else
        let rotted =
          if b >= Char.code 'a' && b <= Char.code 'z' then
            ((b - Char.code 'a' + 13) mod 26) + Char.code 'a'
          else if b >= Char.code 'A' && b <= Char.code 'Z' then
            ((b - Char.code 'A' + 13) mod 26) + Char.code 'A'
          else b
        in
        let* _ = command ~driver:ipc ~cmd:5 ~arg1:client ~arg2:((i lsl 8) lor rotted) () in
        rot (i + 1)
  in
  let* () = rot 0 in
  let* _ = command ~driver:ipc ~cmd:3 ~arg1:client () in
  let* () = print "service: done\n" in
  return 0

let client =
  let* ms = memory_start in
  let message = "Hello, Tock!" in
  (* the shared buffer at the start of our RAM *)
  let* () =
    iter_list
      (fun (i, c) ->
        let* _ = store8 (ms + i) (Char.code c) in
        return ())
      (List.mapi (fun i c -> (i, c)) (List.init (String.length message) (String.get message)))
  in
  let* _ = store8 (ms + String.length message) 0 in
  let* _ = allow_rw ~driver:ipc ~addr:ms ~len:16 in
  (* discovery buffer above it *)
  let name = "rot13" in
  let* () =
    iter_list
      (fun (i, c) ->
        let* _ = store8 (ms + 32 + i) (Char.code c) in
        return ())
      (List.mapi (fun i c -> (i, c)) (List.init (String.length name) (String.get name)))
  in
  let* _ = store8 (ms + 32 + String.length name) 0 in
  let* _ = allow_ro ~driver:ipc ~addr:(ms + 32) ~len:16 in
  let* svc = command ~driver:ipc ~cmd:1 () in
  if svc = Userland.failure then
    let* () = print "client: no rot13 service\n" in
    return 1
  else
    let* () = printf "client: sending %S to pid %d\n" message svc in
    let* _ = subscribe ~driver:ipc ~upcall_id:3 in
    let* _ = command ~driver:ipc ~cmd:2 ~arg1:svc () in
    let* _ = yield in
    (* read the transformed message back out of our own buffer *)
    let rec read_back i acc =
      if i >= 16 then return acc
      else
        let* b = load8 (ms + i) in
        if b = 0 then return acc else read_back (i + 1) (acc ^ String.make 1 (Char.chr b))
    in
    let* out = read_back 0 "" in
    let* () = printf "client: got back %S\n" out in
    return 0

let () =
  let caps, _devices = Capsules.Board_set.standard () in
  let _, k = Boards.make_ticktock_arm ~capsules:caps () in
  let load name min_ram script =
    match
      Boards.Ticktock_arm.create_process k ~name ~payload:name ~program:(to_program script)
        ~min_ram ()
    with
    | Ok p -> p
    | Error e -> failwith (Kerror.to_string e)
  in
  let svc = load "rot13" 2048 rot13_service in
  let cli = load "client" 2048 client in
  Boards.Ticktock_arm.run k ~max_ticks:1000;
  List.iter
    (fun (p : _ Process.t) ->
      Printf.printf "=== %s [%s]\n%s" p.Process.name (Process.state_to_string p.Process.state)
        (Process.output p))
    [ svc; cli ]
