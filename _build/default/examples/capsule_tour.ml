(* A tour of the capsule layer: one app per driver, all running together on
   a single board, plus the kernel-side process console answering over its
   own debug UART while everything else is going on.

     dune exec examples/capsule_tour.exe
*)

open Ticktock
open Apps.App_dsl

let blinker =
  (* LED capsule over GPIO *)
  let* n = command ~driver:Capsules.Led.driver_num ~cmd:0 () in
  let* () =
    repeat 6 (fun () ->
        let* _ = command ~driver:Capsules.Led.driver_num ~cmd:3 ~arg1:0 () in
        let* _ = command ~driver:Capsules.Virtual_alarm.driver_num ~cmd:1 ~arg1:2 () in
        let* _ = subscribe ~driver:Capsules.Virtual_alarm.driver_num ~upcall_id:0 in
        let* _ = yield in
        return ())
  in
  let* () = printf "blinker: toggled led 0 six times (%d leds present)\n" n in
  return 0

let button_waiter =
  let* _ = subscribe ~driver:Capsules.Button.driver_num ~upcall_id:0 in
  let* _ = command ~driver:Capsules.Button.driver_num ~cmd:2 ~arg1:0 () in
  let* evt = yield in
  let* () = printf "button-waiter: event %d (index*2+level)\n" evt in
  return 0

let dice_roller =
  let* ms = memory_start in
  let* _ = allow_rw ~driver:Capsules.Rng.driver_num ~addr:ms ~len:4 in
  let* n = command ~driver:Capsules.Rng.driver_num ~cmd:1 ~arg1:4 () in
  let* b = load8 ms in
  let* () = printf "dice: %d random bytes, first roll = %d\n" n ((b mod 6) + 1) in
  return 0

let console_writer =
  let msg = "capsule console says hi\n" in
  let* ms = memory_start in
  let* () =
    iter_list
      (fun (i, c) ->
        let* _ = store8 (ms + i) (Char.code c) in
        return ())
      (List.mapi (fun i c -> (i, c)) (List.init (String.length msg) (String.get msg)))
  in
  let* _ = allow_ro ~driver:Capsules.Console.driver_num ~addr:ms ~len:(String.length msg) in
  let* n = command ~driver:Capsules.Console.driver_num ~cmd:1 ~arg1:(String.length msg) () in
  let* () = printf "console-writer: pushed %d bytes to the uart\n" n in
  return 0

let () =
  let caps, devices = Capsules.Board_set.standard ~rng_seed:2025 () in
  let _, k = Boards.make_ticktock_arm ~capsules:caps () in
  let load name script =
    Result.get_ok
      (Boards.Ticktock_arm.create_process k ~name ~payload:name ~program:(to_program script)
         ~min_ram:2048 ())
  in
  (* sequence the loads explicitly: OCaml evaluates list elements
     right-to-left, which would reverse the pids *)
  let p1 = load "blinker" blinker in
  let p2 = load "button-waiter" button_waiter in
  let p3 = load "dice" dice_roller in
  let p4 = load "console-writer" console_writer in
  let apps = [ p1; p2; p3; p4 ] in
  (* type at the kernel shell while apps run *)
  String.iter
    (fun c -> Mpu_hw.Uart.rx_push devices.Capsules.Board_set.debug_uart (Char.code c))
    "ps\n";
  Boards.Ticktock_arm.run k ~max_ticks:10;
  (* press the button *)
  Mpu_hw.Gpio.set_input devices.Capsules.Board_set.gpio 8 true;
  Boards.Ticktock_arm.run k ~max_ticks:250;
  (* ask for a second listing near the end, with real counters *)
  String.iter
    (fun c -> Mpu_hw.Uart.rx_push devices.Capsules.Board_set.debug_uart (Char.code c))
    "ps\n";
  Boards.Ticktock_arm.run k ~max_ticks:50;

  List.iter
    (fun (p : _ Process.t) ->
      Printf.printf "=== %s [%s]\n%s" p.Process.name (Process.state_to_string p.Process.state)
        (Process.output p))
    apps;
  Printf.printf "\nled 0 edges: %d\n"
    (Mpu_hw.Gpio.toggles devices.Capsules.Board_set.gpio 0);
  Printf.printf "app uart transcript: %S\n"
    (Mpu_hw.Uart.transcript devices.Capsules.Board_set.uart);
  print_endline "\n--- kernel shell (debug uart) ---";
  print_string (Mpu_hw.Uart.transcript devices.Capsules.Board_set.debug_uart)
