(* Resilience: fault policies and the kernel event trace.

     dune exec examples/resilience.exe

   Three processes with three different fault responses crash in the same
   way (an MPU violation); what happens next is policy:
   - `stop`   stays quarantined (the default),
   - `phoenix` is restarted with re-zeroed memory and recovers,
   - a `panic` process would halt the whole board (demonstrated last,
     caught). The kernel trace shows the scheduler's view of all of it. *)

open Ticktock
open Apps.App_dsl
module K = Boards.Ticktock_arm

let crash_once_then_work = ref 0

let crashing_script () =
  incr crash_once_then_work;
  if !crash_once_then_work <= 1 then
    to_program
      (let* () = print "phoenix: first run, about to crash\n" in
       let* _ = load8 0 in
       return 1)
  else
    to_program
      (let* () = print "phoenix: reborn and healthy\n" in
       return 0)

let () =
  let m = Machine.create_arm () in
  let trace = Trace.create ~capacity:128 () in
  let k =
    K.create ~mem:m.Machine.arm_mem ~hw:m.Machine.arm_mpu
      ~switcher:(Kernel.Arm_switch m.Machine.arm_cpu) ~systick:m.Machine.arm_systick ~trace ()
  in
  let create name ?fault_policy ?program_factory program =
    Result.get_ok
      (K.create_process k ~name ~payload:name ~program ~min_ram:2048 ?fault_policy
         ?program_factory ())
  in
  let stopper =
    create "stop"
      (to_program
         (let* () = print "stop: crashing\n" in
          let* _ = store8 0 1 in
          return 1))
  in
  let phoenix =
    create "phoenix"
      ~fault_policy:(Process.Restart { max_restarts = 3 })
      ~program_factory:crashing_script (crashing_script ())
  in
  K.run k ~max_ticks:200;

  List.iter
    (fun (p : _ Process.t) ->
      Printf.printf "=== %s [%s] restarts=%d\n%s" p.Process.name
        (Process.state_to_string p.Process.state)
        p.Process.restarts (Process.output p))
    [ stopper; phoenix ];

  print_endline "\n--- kernel trace ---";
  print_string (Trace.to_string trace);

  print_endline "--- kernel console (status dumps) ---";
  print_string (K.console_output k);

  (* the Panic policy halts the system *)
  let m2 = Machine.create_arm () in
  let k2 =
    K.create ~mem:m2.Machine.arm_mem ~hw:m2.Machine.arm_mpu
      ~switcher:(Kernel.Arm_switch m2.Machine.arm_cpu) ()
  in
  let _ =
    create "unused" (to_program (return 0))
  and _ =
    Result.get_ok
      (K.create_process k2 ~name:"critical" ~payload:"critical"
         ~program:(to_program (let* _ = load8 0 in return 0))
         ~min_ram:2048 ~fault_policy:Process.Panic ())
  in
  match K.run k2 ~max_ticks:50 with
  | () -> print_endline "panic policy did not fire?"
  | exception K.Panic msg -> Printf.printf "\nPanic policy halts the board: %s\n" msg
