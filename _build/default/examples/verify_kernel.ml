(* Verify the kernel — the workflow of §4, as a command.

     dune exec examples/verify_kernel.exe [scale]

   First checks the *upstream* monolithic driver: the checker reports the
   two §2.2 counterexamples (the grant overlap and the brk underflow), just
   as running Flux over Tock did. Then checks TickTock's three components
   (monolithic-patched, granular, interrupts): everything verifies, and the
   per-component timing table is the shape of Figure 12. *)

open Ticktock

let () =
  let scale =
    if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 0.3
  in
  Printf.printf "checking with domain scale %.2f\n\n" scale;

  print_endline "--- step 1: check the original Tock code (the bug hunt of §2.2) ---";
  let name, props = Proofs.upstream_bug_hunt ~scale in
  let report = Verify.Checker.check_component name props in
  Format.printf "%a@." Verify.Checker.pp_report report;

  print_endline "--- step 2: check TickTock (§4) ---";
  let reports =
    List.map
      (fun (cname, cprops) -> Verify.Checker.check_component cname cprops)
      (Proofs.components ~scale)
  in
  List.iter (fun r -> Format.printf "%a@." Verify.Checker.pp_report r) reports;

  print_endline "--- step 3: timing summary (Figure 12 shape) ---";
  let rows =
    List.map (fun (r : Verify.Checker.component_report) ->
        (r.Verify.Checker.component, Verify.Report.timing_stats r))
      reports
  in
  Format.printf "%a@." Verify.Report.pp_timing_table rows;

  let ok = List.for_all Verify.Checker.all_verified reports in
  Printf.printf "\nTickTock verifies: %b\n" ok;
  exit (if ok then 0 else 1)
