(* Kernel edge cases: malformed syscalls, exhausted resources, stickiness. *)

open Ticktock
open Apps.App_dsl

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let k () = Boards.instance_ticktock_arm ()

let load (k : Instance.t) ?(min_ram = 2048) ~name script =
  Result.get_ok
    (k.Instance.load ~name ~payload:name ~program:(to_program script) ~min_ram
       ~grant_reserve:1024 ~heap_headroom:2048)

let out (k : Instance.t) pid = Option.value ~default:"" (k.Instance.proc_output pid)

let run_script ?min_ram script =
  let k = k () in
  let pid = load k ?min_ram ~name:"edge" script in
  k.Instance.run ~max_ticks:300;
  (k, pid)

let test_unknown_memop () =
  let k, pid =
    run_script
      (let* r = memop ~op:55 () in
       let* () = printf "%b" (r = Userland.failure) in
       return 0)
  in
  Alcotest.(check string) "unknown memop fails cleanly" "true" (out k pid)

let test_zero_length_allow () =
  let k, pid =
    run_script
      (let* ms = memory_start in
       let* r = allow_rw ~driver:2 ~addr:ms ~len:0 in
       let* () = printf "%b" (r = Userland.success) in
       return 0)
  in
  Alcotest.(check string) "zero-length allow accepted (empty buffer)" "true" (out k pid)

let test_allow_huge_len_fails () =
  let k, pid =
    run_script
      (let* ms = memory_start in
       let* r = allow_rw ~driver:2 ~addr:ms ~len:0x4000_0000 in
       let* () = printf "%b" (r = Userland.failure) in
       return 0)
  in
  Alcotest.(check string) "oversized allow refused" "true" (out k pid)

let test_brk_same_value_idempotent () =
  let k, pid =
    run_script
      (let* ab = memory_end in
       let* r1 = brk ab in
       let* ab' = memory_end in
       let* () = printf "%b %b" (r1 <> Userland.failure) (ab' = ab) in
       return 0)
  in
  Alcotest.(check string) "brk to the current break is a no-op" "true true" (out k pid)

let test_sbrk_zero () =
  let k, pid =
    run_script
      (let* ab = memory_end in
       let* r = sbrk 0 in
       let* () = printf "%b" (r = ab) in
       return 0)
  in
  Alcotest.(check string) "sbrk 0 returns the break" "true" (out k pid)

let test_grant_exhaustion_is_contained () =
  (* burn grants through driver touches until the reserve runs dry; the
     process and kernel stay healthy *)
  let k = k () in
  let pid =
    load k ~name:"grants"
      (let rec touch d =
         if d > 3 then return 0
         else
           let* _ = command ~driver:d ~cmd:0 () in
           touch (d + 1)
       in
       let* code = touch 0 in
       let* () = print "done" in
       return code)
  in
  k.Instance.run ~max_ticks:200;
  Alcotest.(check string) "survives driver-grant churn" "done" (out k pid);
  check_bool "isolation still holds" true (k.Instance.proc_isolation_ok pid)

let test_exited_process_gets_no_slices () =
  let k = k () in
  let pid = load k ~name:"quick" (return 0) in
  k.Instance.run ~max_ticks:30;
  let p =
    match k.Instance.proc_state pid with Some s -> s | None -> Alcotest.fail "missing"
  in
  Alcotest.(check string) "exited" "exited(0)" p;
  (* more ticks do not revive it *)
  k.Instance.run ~max_ticks:30;
  Alcotest.(check (option int)) "still exited" (Some 0) (k.Instance.proc_exit pid)

let test_yield_without_subscription_blocks_until_deadlock_detected () =
  (* a yield with nothing pending and no alarm parks the process forever;
     the scheduler must not spin on it *)
  let k = k () in
  let pid = load k ~name:"sleeper" (let* _ = yield in return 0) in
  k.Instance.run ~max_ticks:50;
  Alcotest.(check (option string)) "parked in yielded" (Some "yielded")
    (k.Instance.proc_state pid);
  check_bool "scheduler did not burn the full budget" true (k.Instance.ticks () <= 50)

let test_flash_queries_inside_flash () =
  let k, pid =
    run_script
      (let* fs = flash_start in
       let* fe = flash_end in
       let* () = printf "%b %b" (Layout.in_flash fs) (Layout.in_flash (fe - 1)) in
       return 0)
  in
  Alcotest.(check string) "flash window sane" "true true" (out k pid)

let test_min_ram_too_big_refused () =
  let k = k () in
  match
    k.Instance.load ~name:"huge" ~payload:"h"
      ~program:(to_program (return 0))
      ~min_ram:0x100_0000 ~grant_reserve:1024 ~heap_headroom:0
  with
  | Error Kerror.Image_oversized -> ()
  | Error e -> Alcotest.failf "unexpected error %a" Kerror.pp e
  | Ok _ -> Alcotest.fail "impossible allocation accepted"

let test_ram_exhaustion_across_processes () =
  let k = k () in
  let rec fill n acc =
    if n = 0 then acc
    else
      match
        k.Instance.load
          ~name:(Printf.sprintf "f%d" n)
          ~payload:"f"
          ~program:(to_program (return 0))
          ~min_ram:16384 ~grant_reserve:1024 ~heap_headroom:0
      with
      | Ok _ -> fill (n - 1) (acc + 1)
      | Error _ -> acc
  in
  let loaded = fill 64 0 in
  check_bool "several fit" true (loaded >= 4);
  check_bool "but not unboundedly many" true (loaded < 64);
  (* the ones that fit still run *)
  k.Instance.run ~max_ticks:100;
  check_int "all loaded processes ran" 0
    (List.length
       (List.filter
          (fun i -> k.Instance.proc_exit i = None)
          (List.init loaded (fun i -> i))))

let suite =
  [
    Alcotest.test_case "unknown memop" `Quick test_unknown_memop;
    Alcotest.test_case "zero-length allow" `Quick test_zero_length_allow;
    Alcotest.test_case "oversized allow" `Quick test_allow_huge_len_fails;
    Alcotest.test_case "brk idempotent" `Quick test_brk_same_value_idempotent;
    Alcotest.test_case "sbrk zero" `Quick test_sbrk_zero;
    Alcotest.test_case "grant churn contained" `Quick test_grant_exhaustion_is_contained;
    Alcotest.test_case "exited processes stay exited" `Quick test_exited_process_gets_no_slices;
    Alcotest.test_case "bare yield parks" `Quick
      test_yield_without_subscription_blocks_until_deadlock_detected;
    Alcotest.test_case "flash queries" `Quick test_flash_queries_inside_flash;
    Alcotest.test_case "absurd min_ram refused" `Quick test_min_ram_too_big_refused;
    Alcotest.test_case "RAM exhaustion across processes" `Quick
      test_ram_exhaustion_across_processes;
  ]
