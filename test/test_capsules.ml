(* The capsule layer: drivers behind the mediated process handle. *)

open Ticktock
open Apps.App_dsl

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let board ?rng_seed () =
  let caps, devices = Capsules.Board_set.standard ?rng_seed () in
  let k = Boards.instance_ticktock_arm ~capsules:caps () in
  (k, devices)

let load (k : Instance.t) ~name script =
  match
    k.Instance.load ~name ~payload:name ~program:(to_program script) ~min_ram:2048
      ~grant_reserve:1024 ~heap_headroom:2048
  with
  | Ok pid -> pid
  | Error e -> Alcotest.failf "load: %a" Kerror.pp e

let output (k : Instance.t) pid = Option.value ~default:"" (k.Instance.proc_output pid)

let test_virtual_alarm_single () =
  let k, _ = board () in
  let pid =
    load k ~name:"va"
      (let* _ = subscribe ~driver:4 ~upcall_id:0 in
       let* deadline = command ~driver:4 ~cmd:1 ~arg1:3 () in
       let* woke = yield in
       let* () = printf "fired=%b" (woke = deadline) in
       return 0)
  in
  k.Instance.run ~max_ticks:100;
  Alcotest.(check string) "upcall carries the deadline" "fired=true" (output k pid)

let test_virtual_alarm_multiplexes () =
  (* three processes with different deadlines share one time source *)
  let k, _ = board () in
  let mk name dt =
    load k ~name
      (let* _ = subscribe ~driver:4 ~upcall_id:0 in
       let* _ = command ~driver:4 ~cmd:1 ~arg1:dt () in
       let* _ = yield in
       let* now = command ~driver:4 ~cmd:2 () in
       let* () = printf "woke@>=%b" (now >= dt) in
       return 0)
  in
  let a = mk "a" 2 and b = mk "b" 6 and c = mk "c" 4 in
  k.Instance.run ~max_ticks:200;
  List.iter
    (fun pid -> Alcotest.(check string) "woke after its deadline" "woke@>=true" (output k pid))
    [ a; b; c ]

let test_virtual_alarm_cancel () =
  let k, _ = board () in
  let pid =
    load k ~name:"vc"
      (let* _ = command ~driver:4 ~cmd:1 ~arg1:50 () in
       let* r = command ~driver:4 ~cmd:3 () in
       let* () = printf "cancelled=%b" (r = Userland.success) in
       return 0)
  in
  k.Instance.run ~max_ticks:100;
  Alcotest.(check string) "cancel works" "cancelled=true" (output k pid)

let test_console_write_reaches_uart () =
  let k, devices = board () in
  let msg = "hello uart" in
  let pid =
    load k ~name:"cw"
      (let* ms = memory_start in
       let* () =
         iter_list
           (fun (i, c) ->
             let* _ = store8 (ms + i) (Char.code c) in
             return ())
           (List.mapi (fun i c -> (i, c)) (List.init (String.length msg) (String.get msg)))
       in
       let* _ = allow_ro ~driver:5 ~addr:ms ~len:(String.length msg) in
       let* n = command ~driver:5 ~cmd:1 ~arg1:(String.length msg) () in
       let* () = printf "wrote=%d" n in
       return 0)
  in
  k.Instance.run ~max_ticks:200;
  Alcotest.(check string) "write count" "wrote=10" (output k pid);
  Alcotest.(check string) "bytes reached the device" msg
    (Mpu_hw.Uart.transcript devices.Capsules.Board_set.uart)

let test_console_write_bounded_by_allow () =
  (* asking to write more than was allowed only writes the allowed bytes *)
  let k, devices = board () in
  let _pid =
    load k ~name:"cb"
      (let* ms = memory_start in
       let* _ = store8 ms (Char.code 'x') in
       let* _ = allow_ro ~driver:5 ~addr:ms ~len:1 in
       let* _ = command ~driver:5 ~cmd:1 ~arg1:4096 () in
       return 0)
  in
  k.Instance.run ~max_ticks:100;
  check_int "only the allowed byte got out" 1
    (String.length (Mpu_hw.Uart.transcript devices.Capsules.Board_set.uart))

let test_console_read_rx () =
  let k, devices = board () in
  String.iter
    (fun c -> Mpu_hw.Uart.rx_push devices.Capsules.Board_set.uart (Char.code c))
    "ok!";
  let pid =
    load k ~name:"cr"
      (let* ms = memory_start in
       let* _ = allow_rw ~driver:5 ~addr:ms ~len:16 in
       let* n = command ~driver:5 ~cmd:2 ~arg1:16 () in
       let* b0 = load8 ms in
       let* () = printf "read=%d first=%c" n (Char.chr b0) in
       return 0)
  in
  k.Instance.run ~max_ticks:100;
  Alcotest.(check string) "rx drained into process memory" "read=3 first=o" (output k pid)

let test_led () =
  let k, devices = board () in
  let pid =
    load k ~name:"led"
      (let* n = command ~driver:6 ~cmd:0 () in
       let* _ = command ~driver:6 ~cmd:1 ~arg1:0 () in
       let* _ = command ~driver:6 ~cmd:3 ~arg1:0 () in
       let* _ = command ~driver:6 ~cmd:3 ~arg1:0 () in
       let* () = printf "leds=%d" n in
       return 0)
  in
  k.Instance.run ~max_ticks:100;
  Alcotest.(check string) "count" "leds=4" (output k pid);
  check_int "on + 2 toggles = 3 edges" 3 (Mpu_hw.Gpio.toggles devices.Capsules.Board_set.gpio 0);
  check_bool "ends on" true (Mpu_hw.Gpio.out_level devices.Capsules.Board_set.gpio 0)

let test_button_upcall () =
  let k, devices = board () in
  let pid =
    load k ~name:"btn"
      (let* _ = subscribe ~driver:7 ~upcall_id:0 in
       let* _ = command ~driver:7 ~cmd:2 ~arg1:0 () in
       let* arg = yield in
       let* () = printf "button event %d" arg in
       return 0)
  in
  k.Instance.run ~max_ticks:20;
  (* press button 0 (gpio pin 8) and let the bottom half see the edge *)
  Mpu_hw.Gpio.set_input devices.Capsules.Board_set.gpio 8 true;
  k.Instance.run ~max_ticks:50;
  Alcotest.(check string) "press delivered: index 0, level 1" "button event 1" (output k pid)

let test_rng_fills_buffer () =
  let k, _ = board ~rng_seed:42 () in
  let k2, _ = board ~rng_seed:42 () in
  let script =
    let* ms = memory_start in
    let* _ = allow_rw ~driver:8 ~addr:ms ~len:8 in
    let* n = command ~driver:8 ~cmd:1 ~arg1:8 () in
    let* b0 = load8 ms in
    let* b1 = load8 (ms + 1) in
    let* () = printf "n=%d %02x%02x" n b0 b1 in
    return 0
  in
  let pid = load k ~name:"rng" script in
  let pid2 = load k2 ~name:"rng" script in
  k.Instance.run ~max_ticks:100;
  k2.Instance.run ~max_ticks:100;
  check_bool "filled 8 bytes" true (String.length (output k pid) > 4);
  Alcotest.(check string) "deterministic per seed" (output k pid) (output k2 pid2)

let test_rng_requires_allow () =
  let k, _ = board () in
  let pid =
    load k ~name:"rngf"
      (let* r = command ~driver:8 ~cmd:1 ~arg1:8 () in
       let* () = printf "%b" (r = Userland.failure) in
       return 0)
  in
  k.Instance.run ~max_ticks:100;
  Alcotest.(check string) "no buffer, no bytes" "true" (output k pid)

(* a service that takes the notify and then exits without replying: the
   waiting client must be woken with the peer-died error, not wedged *)
let test_ipc_peer_exit_wakes_waiter () =
  let k, _ = board () in
  let _service =
    load k ~name:"ghost_svc"
      (let* _ = subscribe ~driver:9 ~upcall_id:2 in
       let* _ = command ~driver:9 ~cmd:0 () in
       let* _ = yield in
       (* no cmd-3 reply: just exit mid-exchange *)
       return 0)
  in
  let client =
    load k ~name:"ghost_cli"
      (let* ms = memory_start in
       let* () = write_cstring ms "ghost_svc" in
       let* _ = allow_ro ~driver:9 ~addr:ms ~len:16 in
       let* srv = command ~driver:9 ~cmd:1 () in
       let* _ = subscribe ~driver:9 ~upcall_id:3 in
       let* _ = command ~driver:9 ~cmd:2 ~arg1:srv () in
       let* reply = yield in
       let* () = printf "woken=%b" (reply = Capsules.Ipc.peer_died) in
       return 0)
  in
  k.Instance.run ~max_ticks:300;
  Alcotest.(check string) "error upcall, not a wedge" "woken=true" (output k client)

let test_ipc_notify_roundtrip () =
  let k, _ = board () in
  (* service registers then sleeps; wakes on the client's notify and
     notifies back *)
  let service =
    load k ~name:"rot13_svc"
      (let* _ = subscribe ~driver:9 ~upcall_id:2 in
       let* _ = command ~driver:9 ~cmd:0 () in
       let* client_pid = yield in
       let* _ = command ~driver:9 ~cmd:3 ~arg1:client_pid () in
       let* () = printf "served client %d" client_pid in
       return 0)
  in
  let client =
    load k ~name:"rot13_cli"
      (let* ms = memory_start in
       (* write the service name, NUL-terminated, into the discover buffer *)
       let name = "rot13_svc" in
       let* () =
         iter_list
           (fun (i, c) ->
             let* _ = store8 (ms + i) (Char.code c) in
             return ())
           (List.mapi (fun i c -> (i, c)) (List.init (String.length name) (String.get name)))
       in
       let* _ = store8 (ms + String.length name) 0 in
       let* _ = allow_ro ~driver:9 ~addr:ms ~len:32 in
       let* svc_pid = command ~driver:9 ~cmd:1 () in
       if svc_pid = Userland.failure then
         let* () = print "discover failed" in
         return 1
       else
         let* _ = subscribe ~driver:9 ~upcall_id:3 in
         let* _ = command ~driver:9 ~cmd:2 ~arg1:svc_pid () in
         let* echo = yield in
         let* () = printf "service %d echoed %d" svc_pid echo in
         return 0)
  in
  k.Instance.run ~max_ticks:500;
  Alcotest.(check string) "service saw the client" ("served client " ^ string_of_int client)
    (output k service);
  Alcotest.(check string) "client got the echo"
    (Printf.sprintf "service %d echoed %d" service service)
    (output k client)

let test_ipc_shared_buffer () =
  let k, _ = board () in
  let service =
    load k ~name:"mem_svc"
      (let* _ = subscribe ~driver:9 ~upcall_id:2 in
       let* _ = command ~driver:9 ~cmd:0 () in
       let* client_pid = yield in
       (* read the first byte of the client's shared buffer *)
       let* b = command ~driver:9 ~cmd:4 ~arg1:client_pid ~arg2:0 () in
       let* () = printf "shared[0]=%d" b in
       return 0)
  in
  let _client =
    load k ~name:"mem_cli"
      (let* ms = memory_start in
       let* _ = store8 ms 77 in
       let* _ = allow_rw ~driver:9 ~addr:ms ~len:8 in
       (* discover via name *)
       let name = "mem_svc" in
       let* () =
         iter_list
           (fun (i, c) ->
             let* _ = store8 (ms + 16 + i) (Char.code c) in
             return ())
           (List.mapi (fun i c -> (i, c)) (List.init (String.length name) (String.get name)))
       in
       let* _ = store8 (ms + 16 + String.length name) 0 in
       let* _ = allow_ro ~driver:9 ~addr:(ms + 16) ~len:16 in
       let* svc_pid = command ~driver:9 ~cmd:1 () in
       let* _ = command ~driver:9 ~cmd:2 ~arg1:svc_pid () in
       return 0)
  in
  k.Instance.run ~max_ticks:500;
  Alcotest.(check string) "service read the client's shared byte" "shared[0]=77"
    (output k service)

let test_capsule_cannot_reach_unallowed_memory () =
  (* the mediated handle refuses addresses outside allowed buffers: a
     console write command on a buffer that was never allowed fails *)
  let k, devices = board () in
  let pid =
    load k ~name:"guard"
      (let* r = command ~driver:5 ~cmd:1 ~arg1:16 () in
       let* () = printf "%b" (r = Userland.failure) in
       return 0)
  in
  k.Instance.run ~max_ticks:100;
  Alcotest.(check string) "no allow, no read" "true" (output k pid);
  check_int "nothing leaked to the uart" 0
    (String.length (Mpu_hw.Uart.transcript devices.Capsules.Board_set.uart))

let test_unknown_capsule_driver_fails () =
  let k, _ = board () in
  let pid =
    load k ~name:"unk"
      (let* r = command ~driver:42 ~cmd:0 () in
       let* () = printf "%b" (r = Userland.failure) in
       return 0)
  in
  k.Instance.run ~max_ticks:100;
  Alcotest.(check string) "unknown driver" "true" (output k pid)

let suite =
  [
    Alcotest.test_case "virtual alarm: single" `Quick test_virtual_alarm_single;
    Alcotest.test_case "virtual alarm: multiplexing" `Quick test_virtual_alarm_multiplexes;
    Alcotest.test_case "virtual alarm: cancel" `Quick test_virtual_alarm_cancel;
    Alcotest.test_case "console write -> uart" `Quick test_console_write_reaches_uart;
    Alcotest.test_case "console write bounded by allow" `Quick
      test_console_write_bounded_by_allow;
    Alcotest.test_case "console read <- uart rx" `Quick test_console_read_rx;
    Alcotest.test_case "led over gpio" `Quick test_led;
    Alcotest.test_case "button edge upcall" `Quick test_button_upcall;
    Alcotest.test_case "rng fills allowed buffer" `Quick test_rng_fills_buffer;
    Alcotest.test_case "rng requires allow" `Quick test_rng_requires_allow;
    Alcotest.test_case "ipc notify roundtrip" `Quick test_ipc_notify_roundtrip;
    Alcotest.test_case "ipc peer exit wakes waiter" `Quick test_ipc_peer_exit_wakes_waiter;
    Alcotest.test_case "ipc shared buffer" `Quick test_ipc_shared_buffer;
    Alcotest.test_case "handle blocks unallowed memory" `Quick
      test_capsule_cannot_reach_unallowed_memory;
    Alcotest.test_case "unknown capsule driver" `Quick test_unknown_capsule_driver_fails;
  ]

let test_process_console () =
  let k, devices = board () in
  let uart = devices.Capsules.Board_set.debug_uart in
  (* a long-lived process keeps the scheduler awake while we type *)
  let _ =
    load k ~name:"victim"
      (let* _ = subscribe ~driver:4 ~upcall_id:0 in
       let* () =
         repeat 20 (fun () ->
             let* _ = command ~driver:4 ~cmd:1 ~arg1:4 () in
             let* _ = yield in
             return ())
       in
       return 0)
  in
  String.iter (fun c -> Mpu_hw.Uart.rx_push uart (Char.code c)) "help\n";
  k.Instance.run ~max_ticks:8;
  String.iter (fun c -> Mpu_hw.Uart.rx_push uart (Char.code c)) "ps\nuptime\nbogus\n";
  k.Instance.run ~max_ticks:100;
  let out = Mpu_hw.Uart.transcript uart in
  let has needle =
    let n = String.length needle in
    let rec go i = i + n <= String.length out && (String.sub out i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "help responded" true (has "commands: ps uptime help");
  check_bool "ps lists the process" true (has "victim");
  check_bool "uptime responds" true (has "up ");
  check_bool "unknown command reported" true (has "unknown command")

let suite =
  suite @ [ Alcotest.test_case "process console over uart" `Quick test_process_console ]

(* --- edge cases --- *)

let test_alarm_replaces_outstanding () =
  let k, _ = board () in
  let pid =
    load k ~name:"replace"
      (let* _ = subscribe ~driver:4 ~upcall_id:0 in
       let* _ = command ~driver:4 ~cmd:1 ~arg1:50 () in
       (* a second set replaces the first: wake comes at ~3 ticks, not 50 *)
       let* d2 = command ~driver:4 ~cmd:1 ~arg1:3 () in
       let* woke = yield in
       let* now = command ~driver:4 ~cmd:2 () in
       let* () = printf "%b %b" (woke = d2) (now < 30) in
       return 0)
  in
  k.Instance.run ~max_ticks:100;
  Alcotest.(check string) "replacement wins" "true true" (output k pid)

let test_ipc_notify_dead_pid () =
  let k, _ = board () in
  let pid =
    load k ~name:"lonely"
      (let* r = command ~driver:9 ~cmd:2 ~arg1:42 () in
       let* () = printf "%b" (r = Userland.failure) in
       return 0)
  in
  k.Instance.run ~max_ticks:100;
  Alcotest.(check string) "notify to nonexistent pid fails" "true" (output k pid)

let test_ipc_discover_requires_allow () =
  let k, _ = board () in
  let pid =
    load k ~name:"noallow"
      (let* r = command ~driver:9 ~cmd:1 () in
       let* () = printf "%b" (r = Userland.failure) in
       return 0)
  in
  k.Instance.run ~max_ticks:100;
  Alcotest.(check string) "discover without a name buffer fails" "true" (output k pid)

let test_ipc_peer_buffer_bounds () =
  let k, _ = board () in
  let service =
    load k ~name:"bounds_svc"
      (let* _ = subscribe ~driver:9 ~upcall_id:2 in
       let* _ = command ~driver:9 ~cmd:0 () in
       let* client = yield in
       (* offset beyond the client's 8-byte shared buffer must fail *)
       let* r = command ~driver:9 ~cmd:4 ~arg1:client ~arg2:64 () in
       let* () = printf "oob=%b" (r = Userland.failure) in
       return 0)
  in
  let _client =
    load k ~name:"bounds_cli"
      (let* ms = memory_start in
       let* _ = allow_rw ~driver:9 ~addr:ms ~len:8 in
       let name = "bounds_svc" in
       let* () =
         iter_list
           (fun (i, c) ->
             let* _ = store8 (ms + 16 + i) (Char.code c) in
             return ())
           (List.mapi (fun i c -> (i, c)) (List.init (String.length name) (String.get name)))
       in
       let* _ = store8 (ms + 16 + String.length name) 0 in
       let* _ = allow_ro ~driver:9 ~addr:(ms + 16) ~len:16 in
       let* svc = command ~driver:9 ~cmd:1 () in
       let* _ = command ~driver:9 ~cmd:2 ~arg1:svc () in
       return 0)
  in
  k.Instance.run ~max_ticks:300;
  Alcotest.(check string) "peer reads are bounds-checked" "oob=true" (output k service)

let test_led_bad_index () =
  let k, _ = board () in
  let pid =
    load k ~name:"badled"
      (let* r = command ~driver:6 ~cmd:3 ~arg1:99 () in
       let* () = printf "%b" (r = Userland.failure) in
       return 0)
  in
  k.Instance.run ~max_ticks:50;
  Alcotest.(check string) "led index validated" "true" (output k pid)

let test_capsule_upcall_to_busy_process_queues () =
  (* an alarm that fires while the process is running (not yielded) is
     queued and delivered at the next yield *)
  let k, _ = board () in
  let pid =
    load k ~name:"busy"
      (let* _ = subscribe ~driver:4 ~upcall_id:0 in
       let* d = command ~driver:4 ~cmd:1 ~arg1:1 () in
       (* burn time past the deadline without yielding *)
       let* () = repeat 30 (fun () -> let* _ = compute 50 in return ()) in
       let* woke = yield in
       let* () = printf "%b" (woke = d) in
       return 0)
  in
  k.Instance.run ~max_ticks:300;
  Alcotest.(check string) "queued upcall delivered late" "true" (output k pid)

let suite =
  suite
  @ [
      Alcotest.test_case "alarm replacement" `Quick test_alarm_replaces_outstanding;
      Alcotest.test_case "ipc notify dead pid" `Quick test_ipc_notify_dead_pid;
      Alcotest.test_case "ipc discover requires allow" `Quick test_ipc_discover_requires_allow;
      Alcotest.test_case "ipc peer buffer bounds" `Quick test_ipc_peer_buffer_bounds;
      Alcotest.test_case "led index validated" `Quick test_led_bad_index;
      Alcotest.test_case "upcall to busy process queues" `Quick
        test_capsule_upcall_to_busy_process_queues;
    ]

let test_grant_get_or_create () =
  (* a capsule that stores a counter in its grant block: the handle must
     hand back the same block on every syscall *)
  let counter_capsule =
    {
      (Capsule_intf.stub ~driver_num:12 ~name:"counter") with
      Capsule_intf.cap_command =
        (fun ph ~cmd:_ ~arg1:_ ~arg2:_ ->
          match ph.Capsule_intf.ph_grant ~size:8 ~align:8 with
          | Error _ -> Userland.failure
          | Ok addr -> addr);
    }
  in
  let caps, _ = Capsules.Board_set.standard () in
  let k = Boards.instance_ticktock_arm ~capsules:(counter_capsule :: caps) () in
  let pid =
    load k ~name:"cnt"
      (let* a = command ~driver:12 ~cmd:0 () in
       let* b = command ~driver:12 ~cmd:0 () in
       let* c = command ~driver:12 ~cmd:0 () in
       let* () = printf "%b" (a = b && b = c && a <> Userland.failure) in
       return 0)
  in
  k.Instance.run ~max_ticks:100;
  Alcotest.(check string) "same grant block every time" "true" (output k pid)

let suite = suite @ [ Alcotest.test_case "grant get-or-create" `Quick test_grant_get_or_create ]
