(* The unified observability layer: recorder ring + encode/decode, trace
   determinism, metrics-snapshot invariance across engine caches, and
   Chrome trace_event export well-formedness. *)

open Ticktock

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- recorder ring --- *)

(* One of every constructor: the ring stores events unboxed, so this
   doubles as the encode/decode round-trip test. *)
let one_of_each =
  Obs.Event.
    [
      Proc_created { pid = 1; name = "app" };
      Scheduled { pid = 1 };
      Syscall { pid = 1; call = "memop"; result = 3 };
      Upcall { pid = 1; upcall_id = 2; arg = 7 };
      Faulted { pid = 1; reason = "mpu" };
      Exited { pid = 1; code = 0 };
      Restarted { pid = 1 };
      Switch_to_user { pid = 1 };
      Exc_entry { exc = 11 };
      Exc_return { to_handler = true };
      Mpu_region_write { arch = "armv7m"; index = 3; generation = 17 };
      Mpu_enable { arch = "armv7m"; on = true; generation = 18 };
      Region_update { start = 0x2000_8000; size = 4096; app_break = 0x2000_8800; kernel_break = 0x2000_8c00 };
      Grant_placed { addr = 0x2000_8e00; size = 64 };
      Brk { pid = 1; app_break = 0x2000_8900; ok = true };
      Grant { pid = 1; driver = 4; addr = 0x2000_8e40; ok = false };
      Buscache_flush { reason = "set_checker" };
      Icache_invalidated { generation = 5; addr = 0x2000_0100 };
      Contract_failed { site = "allocate_grant" };
    ]

let test_roundtrip () =
  let r = Obs.Recorder.create ~capacity:64 () in
  List.iteri (fun i ev -> Obs.Recorder.record r ~tick:i ev) one_of_each;
  let back = Obs.Recorder.entries r in
  check_int "all recorded" (List.length one_of_each) (List.length back);
  List.iteri
    (fun i (e : Obs.Recorder.entry) ->
      check_int "tick preserved" i e.Obs.Recorder.at;
      check_bool
        (Format.asprintf "event %d round-trips (%a)" i Obs.Event.pp e.Obs.Recorder.event)
        true
        (e.Obs.Recorder.event = List.nth one_of_each i))
    back

let test_wraparound () =
  let r = Obs.Recorder.create ~capacity:4 () in
  (* 19 mixed-type events through a 4-slot ring *)
  List.iteri (fun i ev -> Obs.Recorder.record r ~tick:(100 + i) ev) one_of_each;
  check_int "recorded caps at capacity" 4 (Obs.Recorder.recorded r);
  check_int "dropped the rest" 15 (Obs.Recorder.dropped r);
  let back = Obs.Recorder.entries r in
  check_int "oldest surviving tick" 115 (List.hd back).Obs.Recorder.at;
  check_int "newest tick" 118 (List.nth back 3).Obs.Recorder.at;
  List.iteri
    (fun i (e : Obs.Recorder.entry) ->
      check_bool "survivors decode to the right events" true
        (e.Obs.Recorder.event = List.nth one_of_each (15 + i)))
    back

let test_disabled_records_nothing () =
  let r = Obs.Recorder.create ~capacity:8 () in
  Obs.Recorder.set_enabled r false;
  List.iter (Obs.Recorder.record r ~tick:0) one_of_each;
  check_int "nothing recorded" 0 (Obs.Recorder.recorded r);
  check_int "nothing dropped" 0 (Obs.Recorder.dropped r)

(* --- trace determinism --- *)

let suite_trace () =
  Verify.Violation.set_enabled false;
  let r = Obs.Recorder.create () in
  let k = Boards.instance_ticktock_arm ~obs:r () in
  ignore (Apps.Difftest.run_suite k);
  Obs.Chrome.to_json ~name:"det" r

let test_trace_deterministic () =
  let a = suite_trace () and b = suite_trace () in
  check_bool "trace is non-trivial" true (String.length a > 1000);
  check_string "two identical runs export byte-identical traces" a b

(* Recording must not perturb the model: the console transcript and tick
   count of a traced run equal those of an untraced run. *)
let test_trace_nonperturbing () =
  Verify.Violation.set_enabled false;
  let bare = Boards.instance_ticktock_arm () in
  ignore (Apps.Difftest.run_suite bare);
  let traced = Boards.instance_ticktock_arm ~obs:(Obs.Recorder.create ()) () in
  ignore (Apps.Difftest.run_suite traced);
  check_string "console identical" (bare.Instance.console ()) (traced.Instance.console ());
  check_int "ticks identical" (bare.Instance.ticks ()) (traced.Instance.ticks ())

(* --- metrics --- *)

let metrics_text_of ?(linking = true) ~icache_enabled () =
  Verify.Violation.set_enabled false;
  let m, k = Boards.make_ticktock_arm_mc () in
  let ic = Fluxarm.Cpu.icache m.Machine.arm_cpu in
  Fluxarm.Icache.set_enabled ic icache_enabled;
  Fluxarm.Icache.set_linking ic linking;
  let inst = Boards.Ticktock_arm.instance k in
  ignore (Apps.Difftest.run_suite inst);
  Obs.Metrics.to_text (Obs.Metrics.model_only (inst.Instance.metrics ()))

(* The icache and its trace links are host-side accelerators: switching
   either off changes the host-observational counters but no
   model-visible metric. *)
let test_metrics_engine_invariant () =
  let superblock = metrics_text_of ~icache_enabled:true ~linking:true () in
  check_string "model metrics identical cached vs uncached" superblock
    (metrics_text_of ~icache_enabled:false ());
  check_string "model metrics identical linked vs per-block" superblock
    (metrics_text_of ~icache_enabled:true ~linking:false ())

(* The superblock engine's own counters surface in the unified snapshot
   (host-flagged, so the invariance above doesn't see them). *)
let test_metrics_link_stats () =
  Verify.Violation.set_enabled false;
  let m, k = Boards.make_ticktock_arm_mc () in
  Fluxarm.Icache.set_linking (Fluxarm.Cpu.icache m.Machine.arm_cpu) true;
  let inst = Boards.Ticktock_arm.instance k in
  ignore (Apps.Difftest.run_suite inst);
  let snap = inst.Instance.metrics () in
  let get name =
    match Obs.Metrics.find snap name with
    | Some v -> v
    | None -> Alcotest.failf "metric %s missing" name
  in
  let counter name =
    match get name with
    | Obs.Metrics.Counter n -> n
    | _ -> Alcotest.failf "%s should be a counter" name
  in
  let link_hits = counter "icache/link_hits" in
  let _ : int = counter "icache/link_flushes" (* present even when zero *) in
  let traces = counter "icache/traces_entered" in
  check_bool "suite entered traces" true (traces > 0);
  (match get "icache/avg_trace_len_x100" with
  | Obs.Metrics.Gauge v -> check_bool "avg trace len >= 1 block" true (v >= 100)
  | _ -> Alcotest.fail "icache/avg_trace_len_x100 should be a gauge");
  (match get "icache/trace_len" with
  | Obs.Metrics.Histogram { count; sum; vmin; vmax; _ } ->
    check_int "one histogram sample per trace" traces count;
    check_bool "blocks per trace >= 1" true (vmin >= 1 && vmax >= vmin);
    (* every trace contributes its entry block, every link follow (hit or
       fresh install) one more *)
    check_bool "histogram sum covers entries + link follows" true
      (sum >= traces + link_hits)
  | _ -> Alcotest.fail "icache/trace_len should be a histogram");
  (* all of it is host-observational, invisible to determinism checks *)
  let model = Obs.Metrics.model_only snap in
  List.iter
    (fun n -> check_bool (n ^ " is host-only") true (Obs.Metrics.find model n = None))
    [
      "icache/link_hits"; "icache/link_flushes"; "icache/traces_entered";
      "icache/avg_trace_len_x100"; "icache/trace_len";
    ]

let test_metrics_snapshot_contents () =
  Verify.Violation.set_enabled false;
  let k = Boards.instance_ticktock_arm () in
  ignore (Apps.Difftest.run_suite k);
  let snap = k.Instance.metrics () in
  let get name =
    match Obs.Metrics.find snap name with
    | Some v -> v
    | None -> Alcotest.failf "metric %s missing" name
  in
  (match get "kernel/syscalls" with
  | Obs.Metrics.Counter n -> check_bool "syscalls counted" true (n > 0)
  | _ -> Alcotest.fail "kernel/syscalls should be a counter");
  (match get "kernel/processes" with
  | Obs.Metrics.Gauge n -> check_int "all suite apps created" 21 n
  | _ -> Alcotest.fail "kernel/processes should be a gauge");
  (match get "syscall_cycles/memop" with
  | Obs.Metrics.Histogram { count; sum; vmin; vmax; _ } ->
    check_bool "memop latencies observed" true (count > 0);
    check_bool "histogram sums are consistent" true (vmin <= vmax && sum >= count * vmin)
  | _ -> Alcotest.fail "syscall_cycles/memop should be a histogram");
  (* the hooks table and both cache stats fold into the one snapshot *)
  check_bool "hooks rows present" true (Obs.Metrics.find snap "hooks/create/calls" <> None);
  check_bool "bus cache stats present" true
    (Obs.Metrics.find snap "bus/decision_cache/hits" <> None);
  (* per-process watermark gauges *)
  (match get "proc/0/mem_watermark" with
  | Obs.Metrics.Gauge w -> check_bool "watermark positive" true (w > 0)
  | _ -> Alcotest.fail "proc/0/mem_watermark should be a gauge")

(* host-flagged entries are excluded from the determinism view *)
let test_model_only_excludes_host () =
  Verify.Violation.set_enabled false;
  let k = Boards.instance_ticktock_arm () in
  ignore (Apps.Difftest.run_suite k);
  let snap = k.Instance.metrics () in
  check_bool "full snapshot has host entries" true
    (Obs.Metrics.find snap "bus/decision_cache/hits" <> None);
  check_bool "model_only drops them" true
    (Obs.Metrics.find (Obs.Metrics.model_only snap) "bus/decision_cache/hits" = None)

(* --- Chrome export well-formedness --- *)

(* A tiny recursive-descent JSON parser: enough to validate structure
   without pulling in a JSON dependency. *)
type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> fail "bad unicode escape"
          done;
          Buffer.add_char b '?'
        | Some c ->
          advance ();
          Buffer.add_char b c
        | None -> fail "unterminated escape");
        go ()
      | Some c ->
        advance ();
        Buffer.add_char b c;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') ->
        advance ();
        go ()
      | _ -> ()
    in
    go ();
    if !pos = start then fail "expected number";
    J_num (float_of_string (String.sub s start (!pos - start)))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' -> parse_obj ()
    | Some '[' -> parse_arr ()
    | Some '"' -> J_str (parse_string ())
    | Some 't' -> literal "true" (J_bool true)
    | Some 'f' -> literal "false" (J_bool false)
    | Some 'n' -> literal "null" J_null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end"
  and parse_obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      advance ();
      J_obj []
    end
    else begin
      let fields = ref [] in
      let rec member () =
        skip_ws ();
        let key = parse_string () in
        skip_ws ();
        expect ':';
        let v = parse_value () in
        fields := (key, v) :: !fields;
        skip_ws ();
        match peek () with
        | Some ',' ->
          advance ();
          member ()
        | Some '}' -> advance ()
        | _ -> fail "expected , or }"
      in
      member ();
      J_obj (List.rev !fields)
    end
  and parse_arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then begin
      advance ();
      J_arr []
    end
    else begin
      let items = ref [] in
      let rec element () =
        let v = parse_value () in
        items := v :: !items;
        skip_ws ();
        match peek () with
        | Some ',' ->
          advance ();
          element ()
        | Some ']' -> advance ()
        | _ -> fail "expected , or ]"
      in
      element ();
      J_arr (List.rev !items)
    end
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let test_chrome_wellformed () =
  let json = suite_trace () in
  match parse_json json with
  | J_obj fields ->
    let events =
      match List.assoc_opt "traceEvents" fields with
      | Some (J_arr es) -> es
      | _ -> Alcotest.fail "traceEvents must be an array"
    in
    check_bool "has events" true (List.length events > 100);
    let is_num k obj = match List.assoc_opt k obj with Some (J_num _) -> true | _ -> false in
    let is_str k obj = match List.assoc_opt k obj with Some (J_str _) -> true | _ -> false in
    List.iter
      (fun ev ->
        match ev with
        | J_obj o ->
          check_bool "every event has name/ph/pid/tid" true
            (is_str "name" o && is_str "ph" o && is_num "pid" o && is_num "tid" o);
          (match List.assoc_opt "ph" o with
          | Some (J_str "i") ->
            check_bool "instants have ts and args" true
              (is_num "ts" o && match List.assoc_opt "args" o with Some (J_obj _) -> true | _ -> false)
          | Some (J_str "M") -> ()
          | _ -> Alcotest.fail "unexpected event phase")
        | _ -> Alcotest.fail "traceEvents elements must be objects")
      events;
    (* one lane per pid alongside the fixed lanes, declared via metadata *)
    let lane_names =
      List.filter_map
        (fun ev ->
          match ev with
          | J_obj o when List.assoc_opt "name" o = Some (J_str "thread_name") -> (
            match List.assoc_opt "args" o with
            | Some (J_obj a) -> (
              match List.assoc_opt "name" a with Some (J_str s) -> Some s | _ -> None)
            | _ -> None)
          | _ -> None)
        events
    in
    List.iter
      (fun lane ->
        check_bool (lane ^ " lane declared") true (List.mem lane lane_names))
      [ "kernel"; "mpu"; "bus/icache"; "contracts"; "pid 0" ]
  | _ -> Alcotest.fail "export must be a JSON object"

(* metrics JSON goes through the same parser *)
let test_metrics_json_wellformed () =
  Verify.Violation.set_enabled false;
  let k = Boards.instance_ticktock_arm () in
  ignore (Apps.Difftest.run_suite k);
  match parse_json (Obs.Metrics.to_json (k.Instance.metrics ())) with
  | J_obj [ ("metrics", J_arr entries) ] ->
    check_bool "has entries" true (List.length entries > 20);
    List.iter
      (fun e ->
        match e with
        | J_obj o ->
          check_bool "entry has name and type" true
            (List.mem_assoc "name" o && List.mem_assoc "type" o && List.mem_assoc "host" o)
        | _ -> Alcotest.fail "metrics entries must be objects")
      entries
  | _ -> Alcotest.fail "metrics dump must be {metrics: [...]}"

(* Fleet campaign throughput counters are process-global host counters:
   once bumped, they surface (host-flagged) in every instance's unified
   snapshot, and stay invisible to the determinism view. *)
let test_metrics_fleet_counters () =
  Verify.Violation.set_enabled false;
  Obs.Metrics.host_reset ();
  let names =
    [ "fleet/boards_forked"; "fleet/cells_run"; "fleet/steals"; "fleet/resume_rounds" ]
  in
  List.iteri (fun i n -> Obs.Metrics.host_incr ~by:(i + 1) n) names;
  let k = Boards.instance_ticktock_arm () in
  ignore (Apps.Difftest.run_suite ~max_ticks:200 k);
  let snap = k.Instance.metrics () in
  let model = Obs.Metrics.model_only snap in
  List.iteri
    (fun i n ->
      (match Obs.Metrics.find snap n with
      | Some (Obs.Metrics.Counter v) -> check_int (n ^ " surfaces its count") (i + 1) v
      | Some _ -> Alcotest.failf "%s should be a counter" n
      | None -> Alcotest.failf "%s missing from the unified snapshot" n);
      check_bool (n ^ " is host-flagged") true
        (List.exists (fun e -> e.Obs.Metrics.name = n && e.Obs.Metrics.host) snap);
      check_bool (n ^ " is invisible to model_only") true (Obs.Metrics.find model n = None))
    names;
  Obs.Metrics.host_reset ()

let suite =
  [
    Alcotest.test_case "event encode/decode round-trip" `Quick test_roundtrip;
    Alcotest.test_case "ring wraparound, mixed event types" `Quick test_wraparound;
    Alcotest.test_case "disabled recorder records nothing" `Quick test_disabled_records_nothing;
    Alcotest.test_case "trace export is deterministic" `Quick test_trace_deterministic;
    Alcotest.test_case "tracing does not perturb the run" `Quick test_trace_nonperturbing;
    Alcotest.test_case "model metrics invariant to icache" `Quick test_metrics_engine_invariant;
    Alcotest.test_case "superblock link stats in snapshot" `Quick test_metrics_link_stats;
    Alcotest.test_case "snapshot unifies the stats" `Quick test_metrics_snapshot_contents;
    Alcotest.test_case "model_only excludes host counters" `Quick test_model_only_excludes_host;
    Alcotest.test_case "fleet counters in snapshot, host-flagged" `Quick
      test_metrics_fleet_counters;
    Alcotest.test_case "chrome export is well-formed JSON" `Quick test_chrome_wellformed;
    Alcotest.test_case "metrics JSON is well-formed" `Quick test_metrics_json_wellformed;
  ]
