(* The chaos harness: deterministic campaigns, full classification, the
   scrubber's detection guarantee, and chaos-off inertness. *)

open Ticktock

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let arm_board () =
  match Chaos.Targets.find "ticktock-arm" with
  | Some b -> [ b ]
  | None -> Alcotest.fail "ticktock-arm target missing"

(* One small-but-real round: the release suite plus companions under a
   seeded fault plan, contracts enabled throughout. *)
let run_small () =
  Verify.Violation.with_enabled true (fun () ->
      Chaos.Campaign.run ~boards:(arm_board ()) ~seeds:[ 1 ] ~faults:20 ())

let test_deterministic_report () =
  let a = run_small () in
  let b = run_small () in
  Alcotest.(check string) "same seed, byte-identical report" a.Chaos.Campaign.report
    b.Chaos.Campaign.report

let test_classification_totals () =
  let r = run_small () in
  check_bool "faults actually fired" true (r.Chaos.Campaign.total_fired > 0);
  check_int "every fired fault classified" r.Chaos.Campaign.total_fired
    (r.Chaos.Campaign.total_masked + r.Chaos.Campaign.total_healed
   + r.Chaos.Campaign.total_contained);
  check_int "no silent cross-process corruption" 0 r.Chaos.Campaign.total_silent;
  check_bool "campaign ok" true r.Chaos.Campaign.ok

let test_scrubber_catches_every_corruption () =
  let r = run_small () in
  List.iter
    (fun (rd : Chaos.Campaign.round) ->
      check_int "detections = landed corruptions" rd.Chaos.Campaign.rd_mpu_effective
        rd.Chaos.Campaign.rd_scrub_detections;
      check_int "every detection repaired" rd.Chaos.Campaign.rd_scrub_detections
        rd.Chaos.Campaign.rd_scrub_repairs)
    r.Chaos.Campaign.rounds

(* A kernel with a chaos slot wired but no engine attached must behave
   byte-for-byte like one without the slot: the hooks default to no-ops and
   charge nothing. This is the invariant that lets ci.sh diff fig11 /
   difftest / latency / fuzz output against the chaos-linked binary. *)
let suite_outputs ?chaos () =
  let _, k = Boards.make_ticktock_arm ?chaos () in
  let inst = Boards.Ticktock_arm.instance k in
  let loaded = Chaos.Campaign.load_suite inst in
  inst.Instance.run ~max_ticks:5_000;
  List.map
    (fun (name, pid) ->
      ( name,
        Option.value ~default:"" (inst.Instance.proc_output pid)
        ^ "|"
        ^ Option.value ~default:"?" (inst.Instance.proc_state pid) ))
    loaded

let test_chaos_off_is_inert () =
  let plain = suite_outputs () in
  let linked = suite_outputs ~chaos:(Chaos_intf.create ()) () in
  Alcotest.(check (list (pair string string)))
    "idle chaos slot perturbs nothing" plain linked

let suite =
  [
    Alcotest.test_case "campaign report is deterministic" `Slow test_deterministic_report;
    Alcotest.test_case "classification is total and clean" `Slow test_classification_totals;
    Alcotest.test_case "scrubber detects every landed corruption" `Slow
      test_scrubber_catches_every_corruption;
    Alcotest.test_case "chaos linked but off is inert" `Quick test_chaos_off_is_inert;
  ]
