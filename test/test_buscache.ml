(* The bus fast path: word-level pages and the MPU access-decision cache
   (micro-TLB). The load-bearing property is *invalidation*: a cached allow
   decision must die the instant the MPU register file or the privilege
   level changes — otherwise the cache would be an isolation hole, not an
   optimisation. *)

open Ticktock

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let expect_fault ?addr name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Access_fault" name
  | exception Memory.Access_fault fault ->
    (match addr with
    | Some a -> check_int (name ^ ": faulting address") a fault.Memory.fault_addr
    | None -> ())

(* --- word fast path is just a faster bus, not a different one --- *)

let test_word_fast_path_equivalence () =
  let m = Memory.create () in
  (* aligned word then byte view *)
  Memory.write32 m 0x2000_0000 0xA1B2_C3D4;
  check_int "lsb" 0xD4 (Memory.read8 m 0x2000_0000);
  check_int "msb" 0xA1 (Memory.read8 m 0x2000_0003);
  (* bytes then aligned word view *)
  Memory.write8 m 0x2000_0010 0x78;
  Memory.write8 m 0x2000_0011 0x56;
  Memory.write8 m 0x2000_0012 0x34;
  Memory.write8 m 0x2000_0013 0x12;
  check_int "assembled" 0x1234_5678 (Memory.read32 m 0x2000_0010);
  (* unaligned word crossing a page boundary, both directions *)
  Memory.write32 m 0x2000_0FFD 0xCAFE_F00D;
  check_int "unaligned cross-page" 0xCAFE_F00D (Memory.read32 m 0x2000_0FFD);
  check_int "last byte landed on next page" 0xCA (Memory.read8 m 0x2000_1000)

let test_fetch16_fast_path () =
  let m = Memory.create () in
  Memory.write32 m 0x0002_0000 0xBEEF_4770;
  check_int "low halfword" 0x4770 (Memory.fetch16 m 0x0002_0000);
  check_int "high halfword" 0xBEEF (Memory.fetch16 m 0x0002_0002);
  (* straddling a page boundary *)
  Memory.write8 m 0x0002_0FFF 0xAA;
  Memory.write8 m 0x0002_1000 0xBB;
  check_int "page-straddling halfword" 0xBBAA (Memory.fetch16 m 0x0002_0FFF)

(* --- ARMv7-M: register writes invalidate cached decisions --- *)

let arm_unprivileged () =
  let m = Machine.create_arm () in
  (* CONTROL.nPRIV = 1 in thread mode: the MPU gates every checked access *)
  Fluxarm.Cpu.set_special_raw m.Machine.arm_cpu Fluxarm.Regs.Control 1;
  m

let grant_v7 mpu ~index ~base ~size perms =
  Mpu_hw.Armv7m_mpu.write_region mpu ~index
    ~rbar:(Mpu_hw.Armv7m_mpu.encode_rbar ~addr:base ~region:index)
    ~rasr:(Mpu_hw.Armv7m_mpu.encode_rasr ~enable:true ~size ~srd:0 ~perms)

let test_v7_rasr_rewrite_revokes () =
  let m = arm_unprivileged () in
  let mem = m.Machine.arm_mem and mpu = m.Machine.arm_mpu in
  let base = 0x2000_0000 in
  grant_v7 mpu ~index:0 ~base ~size:4096 Perms.Read_write_only;
  Mpu_hw.Armv7m_mpu.set_enabled mpu true;
  (* warm the decision cache: repeated stores hit the cached allow *)
  Memory.store32 mem base 0x1111_1111;
  Memory.store32 mem base 0x2222_2222;
  let hits, _ = Memory.cache_stats mem in
  check_bool "second store hit the decision cache" true (hits > 0);
  (* the kernel reprograms RBAR/RASR to read-only: the very next store
     must fault — no stale allow may survive the register write *)
  grant_v7 mpu ~index:0 ~base ~size:4096 Perms.Read_only;
  expect_fault "store after downgrade" ~addr:base (fun () -> Memory.store32 mem base 0);
  check_int "memory unchanged by denied store" 0x2222_2222 (Memory.read32 mem base);
  check_int "reads still allowed" 0x2222_2222 (Memory.load32 mem base)

let test_v7_clear_region_revokes () =
  let m = arm_unprivileged () in
  let mem = m.Machine.arm_mem and mpu = m.Machine.arm_mpu in
  let base = 0x2000_0000 in
  grant_v7 mpu ~index:0 ~base ~size:4096 Perms.Read_write_only;
  Mpu_hw.Armv7m_mpu.set_enabled mpu true;
  check_int "load allowed" 0 (Memory.load32 mem base);
  check_int "load allowed again (cached)" 0 (Memory.load32 mem base);
  Mpu_hw.Armv7m_mpu.clear_region mpu ~index:0;
  expect_fault "load after clear_region" ~addr:base (fun () ->
      ignore (Memory.load32 mem base))

let test_v7_ctrl_toggle_revokes () =
  let m = arm_unprivileged () in
  let mem = m.Machine.arm_mem and mpu = m.Machine.arm_mpu in
  (* MPU disabled: everything goes — and gets cached *)
  check_int "disabled mpu allows" 0 (Memory.load32 mem 0x2000_0000);
  check_int "disabled mpu allows again" 0 (Memory.load32 mem 0x2000_0000);
  Mpu_hw.Armv7m_mpu.set_enabled mpu true;
  (* no region covers the address: the CTRL write must invalidate *)
  expect_fault "load after CTRL.ENABLE" (fun () -> ignore (Memory.load32 mem 0x2000_0000))

let test_v7_privilege_keys_the_cache () =
  let m = Machine.create_arm () in
  let mem = m.Machine.arm_mem and mpu = m.Machine.arm_mpu in
  let cpu = m.Machine.arm_cpu in
  Mpu_hw.Armv7m_mpu.set_enabled mpu true;
  (* privileged: PRIVDEFENA background map allows the access — and caches
     the decision under privilege level 1 *)
  check_int "privileged background access" 0 (Memory.load32 mem 0x2000_0000);
  check_int "privileged access again (cached)" 0 (Memory.load32 mem 0x2000_0000);
  (* drop privilege with *no* MPU register write in between: the cached
     privileged allow must not leak to the unprivileged access *)
  Fluxarm.Cpu.set_special_raw cpu Fluxarm.Regs.Control 1;
  expect_fault "unprivileged access after transition" (fun () ->
      ignore (Memory.load32 mem 0x2000_0000));
  (* handler entry re-privileges: allowed again, no register write needed *)
  Fluxarm.Cpu.set_mode cpu Fluxarm.Cpu.Handler;
  check_int "handler-mode access" 0 (Memory.load32 mem 0x2000_0000)

(* --- ARMv8-M --- *)

let test_v8_rewrite_revokes () =
  let m = Machine.create_arm_v8 () in
  Fluxarm.Cpu.set_special_raw m.Machine.v8_cpu Fluxarm.Regs.Control 1;
  let mem = m.Machine.v8_mem and mpu = m.Machine.v8_mpu in
  let base = 0x2000_0000 in
  Mpu_hw.Armv8m_mpu.write_region mpu ~index:0
    ~rbar:(Mpu_hw.Armv8m_mpu.encode_rbar ~base ~perms:Perms.Read_write_only)
    ~rasr:(Mpu_hw.Armv8m_mpu.encode_rlar ~limit:(base + 4095) ~enable:true);
  Mpu_hw.Armv8m_mpu.set_enabled mpu true;
  Memory.store32 mem base 0xFEED_FACE;
  Memory.store32 mem base 0xFEED_FACE;
  Mpu_hw.Armv8m_mpu.write_region mpu ~index:0
    ~rbar:(Mpu_hw.Armv8m_mpu.encode_rbar ~base ~perms:Perms.Read_only)
    ~rasr:(Mpu_hw.Armv8m_mpu.encode_rlar ~limit:(base + 4095) ~enable:true);
  expect_fault "store after RBAR downgrade" ~addr:base (fun () ->
      Memory.store32 mem base 0);
  check_int "reads survive" 0xFEED_FACE (Memory.load32 mem base)

(* --- PMP --- *)

let test_pmp_revocation () =
  let m = Machine.create_riscv Mpu_hw.Pmp.sifive_e310 in
  let mem = m.Machine.rv_mem and pmp = m.Machine.rv_pmp in
  m.Machine.rv_machine_mode := false;
  let base = 0x2000_0000 in
  Mpu_hw.Pmp.set_entry pmp ~index:0
    ~cfg:(Mpu_hw.Pmp.cfg_of_perms Perms.Read_write_only ~mode:Mpu_hw.Pmp.Napot)
    ~addr:(Mpu_hw.Pmp.napot_addr ~start:base ~size:4096);
  Memory.store32 mem base 0xABCD_EF01;
  check_int "pmp read" 0xABCD_EF01 (Memory.load32 mem base);
  check_int "pmp read again (cached)" 0xABCD_EF01 (Memory.load32 mem base);
  (* pmpcfg rewrite to read-only: the next store must fault *)
  Mpu_hw.Pmp.set_entry pmp ~index:0
    ~cfg:(Mpu_hw.Pmp.cfg_of_perms Perms.Read_only ~mode:Mpu_hw.Pmp.Napot)
    ~addr:(Mpu_hw.Pmp.napot_addr ~start:base ~size:4096);
  expect_fault "store after pmpcfg downgrade" ~addr:base (fun () ->
      Memory.store32 mem base 0);
  (* and clearing the entry revokes everything *)
  Mpu_hw.Pmp.clear_entry pmp ~index:0;
  expect_fault "load after clear_entry" ~addr:base (fun () ->
      ignore (Memory.load32 mem base))

let test_pmp_mode_switch_keys_the_cache () =
  let m = Machine.create_riscv Mpu_hw.Pmp.earlgrey in
  let mem = m.Machine.rv_mem and pmp = m.Machine.rv_pmp in
  Mpu_hw.Pmp.set_mmwp pmp false;
  (* machine mode with no matching entry: allowed, cached under M *)
  check_int "machine-mode access" 0 (Memory.load32 mem 0x2000_0000);
  check_int "machine-mode access again" 0 (Memory.load32 mem 0x2000_0000);
  (* context switch to U mode — a privilege flip, no CSR write *)
  m.Machine.rv_machine_mode := false;
  expect_fault "user-mode access after switch" (fun () ->
      ignore (Memory.load32 mem 0x2000_0000))

(* --- the cache is an optimisation, not a semantic: stateful checkers --- *)

let test_fn_checkers_are_never_cached () =
  let m = Memory.create () in
  let allow = ref true in
  Memory.set_checker_fn m
    (Some (fun _ _ -> if !allow then Ok () else Error "flipped"));
  check_int "allowed while open" 0 (Memory.load32 m 0x1000);
  check_int "allowed again" 0 (Memory.load32 m 0x1000);
  allow := false;
  expect_fault "stateful flip respected immediately" ~addr:0x1000 (fun () ->
      ignore (Memory.load32 m 0x1000))

(* --- dynamic decision granularity --- *)

let test_decision_granularity_tracks_config () =
  let mpu = Mpu_hw.Armv7m_mpu.create () in
  (* nothing enabled: coarsest (4 KiB cap) *)
  check_int "idle granule" 12 (Mpu_hw.Armv7m_mpu.decision_granule_bits mpu);
  (* one 64 KiB region without SRD: boundaries 64 KiB apart, capped at 12 *)
  Mpu_hw.Armv7m_mpu.write_region mpu ~index:0
    ~rbar:(Mpu_hw.Armv7m_mpu.encode_rbar ~addr:0x2000_0000 ~region:0)
    ~rasr:
      (Mpu_hw.Armv7m_mpu.encode_rasr ~enable:true ~size:65536 ~srd:0
         ~perms:Perms.Read_write_only);
  check_int "64K region granule" 12 (Mpu_hw.Armv7m_mpu.decision_granule_bits mpu);
  (* a 256-byte region with SRD in use: subregions are 32 bytes *)
  Mpu_hw.Armv7m_mpu.write_region mpu ~index:1
    ~rbar:(Mpu_hw.Armv7m_mpu.encode_rbar ~addr:0x2001_0000 ~region:1)
    ~rasr:
      (Mpu_hw.Armv7m_mpu.encode_rasr ~enable:true ~size:256 ~srd:0x81
         ~perms:Perms.Read_only);
  check_int "srd granule" 5 (Mpu_hw.Armv7m_mpu.decision_granule_bits mpu);
  let pmp = Mpu_hw.Pmp.create Mpu_hw.Pmp.sifive_e310 in
  check_int "idle pmp granule" 12 (Mpu_hw.Pmp.decision_granule_bits pmp);
  Mpu_hw.Pmp.set_entry pmp ~index:0
    ~cfg:(Mpu_hw.Pmp.cfg_of_perms Perms.Read_only ~mode:Mpu_hw.Pmp.Na4)
    ~addr:(0x2000_0004 lsr 2);
  check_int "na4 granule" 2 (Mpu_hw.Pmp.decision_granule_bits pmp)

let test_cache_stats_count () =
  let m = arm_unprivileged () in
  let mem = m.Machine.arm_mem and mpu = m.Machine.arm_mpu in
  grant_v7 mpu ~index:0 ~base:0x2000_0000 ~size:4096 Perms.Read_write_only;
  Mpu_hw.Armv7m_mpu.set_enabled mpu true;
  Memory.reset_cache_stats mem;
  for _ = 1 to 10 do
    ignore (Memory.load32 mem 0x2000_0000)
  done;
  let hits, misses = Memory.cache_stats mem in
  check_int "one cold miss" 1 misses;
  check_int "nine warm hits" 9 hits

let suite =
  [
    Alcotest.test_case "word fast path = byte path" `Quick test_word_fast_path_equivalence;
    Alcotest.test_case "fetch16 fast path" `Quick test_fetch16_fast_path;
    Alcotest.test_case "v7: RASR rewrite revokes cached allow" `Quick
      test_v7_rasr_rewrite_revokes;
    Alcotest.test_case "v7: clear_region revokes" `Quick test_v7_clear_region_revokes;
    Alcotest.test_case "v7: CTRL toggle revokes" `Quick test_v7_ctrl_toggle_revokes;
    Alcotest.test_case "v7: privilege keys the cache" `Quick test_v7_privilege_keys_the_cache;
    Alcotest.test_case "v8: RBAR rewrite revokes" `Quick test_v8_rewrite_revokes;
    Alcotest.test_case "pmp: pmpcfg rewrite + clear revoke" `Quick test_pmp_revocation;
    Alcotest.test_case "pmp: M/U switch keys the cache" `Quick
      test_pmp_mode_switch_keys_the_cache;
    Alcotest.test_case "fn checkers never cached" `Quick test_fn_checkers_are_never_cached;
    Alcotest.test_case "decision granularity tracks config" `Quick
      test_decision_granularity_tracks_config;
    Alcotest.test_case "cache stats" `Quick test_cache_stats_count;
  ]
