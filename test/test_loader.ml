(* Flash images and placement. *)

open Ticktock

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let image ?(name = "demo") ?(min_ram = 2048) ?(payload = String.make 300 'p') () =
  { Loader.app_name = name; min_ram; payload }

let test_roundtrip () =
  let mem = Memory.create () in
  let img = image () in
  Loader.write_image mem ~base:0x0002_0000 img;
  match Loader.read_image mem ~base:0x0002_0000 with
  | Ok back ->
    Alcotest.(check string) "name" "demo" back.Loader.app_name;
    check_int "min_ram" 2048 back.Loader.min_ram;
    Alcotest.(check string) "payload" img.Loader.payload back.Loader.payload
  | Error e -> Alcotest.fail e

let test_magic_check () =
  let mem = Memory.create () in
  check_bool "garbage rejected" true (Result.is_error (Loader.read_image mem ~base:0x0002_0000))

let test_padded_size () =
  check_int "pads to pow2, floor 512" 512 (Loader.padded_size (image ~payload:"short" ()));
  check_bool "large payload pads up" true
    (Loader.padded_size (image ~payload:(String.make 600 'x') ()) = 1024)

let test_place_alignment () =
  let mem = Memory.create () in
  let cursor = Range.start Layout.app_flash in
  match Loader.place mem ~cursor (image ()) with
  | Ok (placed, cursor') ->
    check_bool "pow2-size-aligned base" true
      (Math32.is_aligned placed.Loader.flash_start ~align:placed.Loader.flash_size);
    check_bool "pow2 size" true (Math32.is_pow2 placed.Loader.flash_size);
    check_int "cursor advanced" (placed.Loader.flash_start + placed.Loader.flash_size) cursor';
    check_int "entry points at payload" (placed.Loader.flash_start + 24 + 4)
      placed.Loader.entry
  | Error e -> Alcotest.failf "place failed: %a" Kerror.pp e

let test_place_sequence () =
  let mem = Memory.create () in
  let rec place_all cursor n acc =
    if n = 0 then List.rev acc
    else
      match Loader.place mem ~cursor (image ~name:(Printf.sprintf "app%d" n) ()) with
      | Ok (p, cursor') -> place_all cursor' (n - 1) (p :: acc)
      | Error e -> Alcotest.failf "place %d failed: %a" n Kerror.pp e
  in
  let placements = place_all (Range.start Layout.app_flash) 5 [] in
  (* images never overlap *)
  let ranges =
    List.map (fun p -> Range.make ~start:p.Loader.flash_start ~size:p.Loader.flash_size)
      placements
  in
  List.iteri
    (fun i a ->
      List.iteri (fun j b -> if i <> j then check_bool "no overlap" false (Range.overlaps a b))
        ranges)
    ranges;
  (* and each is readable back *)
  List.iter
    (fun p ->
      match Loader.read_image mem ~base:p.Loader.flash_start with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)
    placements

let test_flash_exhaustion () =
  let mem = Memory.create () in
  let big = image ~payload:(String.make 200_000 'x') () in
  let rec fill cursor n =
    if n > 100 then Alcotest.fail "flash never filled"
    else
      match Loader.place mem ~cursor big with
      | Ok (_, cursor') -> fill cursor' (n + 1)
      | Error Kerror.Out_of_memory -> ()
      | Error e -> Alcotest.failf "unexpected: %a" Kerror.pp e
  in
  fill (Range.start Layout.app_flash) 0

(* --- malformed-image regressions (the OTA paths lean on these) --- *)

let test_truncated_image_fails_credentials () =
  (* a power cut mid-write leaves a header that promises more payload than
     flash holds; the read yields zero-filled tail bytes and the
     credentials footer must refuse the image *)
  let mem = Memory.create () in
  let img = image ~payload:(String.make 400 'q') () in
  Loader.write_image mem ~base:0x0002_0000 img;
  let tail = 0x0002_0000 + (4 * Loader.header_words) + 4 + 200 in
  for a = tail to tail + 250 do
    Memory.write8 mem a 0
  done;
  check_bool "truncated image fails credentials" false
    (Loader.verify_credentials mem ~base:0x0002_0000)

let test_implausible_header_rejected () =
  (* a header whose length fields are absurd must be refused before any
     read is attempted, not trusted into a giant read *)
  let mem = Memory.create () in
  Memory.write32 mem 0x0002_0000 0x54424632;
  Memory.write32 mem (0x0002_0000 + 4) 2;
  Memory.write32 mem (0x0002_0000 + 16) 5_000 (* name_len *);
  Memory.write32 mem (0x0002_0000 + 20) 64;
  check_bool "absurd name_len rejected" true
    (Result.is_error (Loader.read_image mem ~base:0x0002_0000));
  Memory.write32 mem (0x0002_0000 + 16) 4;
  Memory.write32 mem (0x0002_0000 + 20) (1 lsl 24) (* payload_len *);
  check_bool "absurd payload_len rejected" true
    (Result.is_error (Loader.read_image mem ~base:0x0002_0000))

let test_oversized_image_typed_refusal () =
  (* an image whose padded layout exceeds the whole app-flash window gets
     the typed [Image_oversized], distinct from a merely full flash *)
  let mem = Memory.create () in
  let big = image ~payload:(String.make (Range.size Layout.app_flash) 'x') () in
  check_bool "fits refuses it up front" false (Loader.fits big);
  (match Loader.place mem ~cursor:(Range.start Layout.app_flash) big with
  | Error Kerror.Image_oversized -> ()
  | Error e -> Alcotest.failf "expected Image_oversized, got %a" Kerror.pp e
  | Ok _ -> Alcotest.fail "oversized image placed");
  (* a plausible image on a full flash still gets Out_of_memory *)
  check_bool "normal image fits" true (Loader.fits (image ()))

let suite =
  [
    Alcotest.test_case "image roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "truncated image refused" `Quick test_truncated_image_fails_credentials;
    Alcotest.test_case "implausible header refused" `Quick test_implausible_header_rejected;
    Alcotest.test_case "oversized image typed refusal" `Quick test_oversized_image_typed_refusal;
    Alcotest.test_case "magic check" `Quick test_magic_check;
    Alcotest.test_case "padded size" `Quick test_padded_size;
    Alcotest.test_case "placement alignment" `Quick test_place_alignment;
    Alcotest.test_case "multiple placements disjoint" `Quick test_place_sequence;
    Alcotest.test_case "flash exhaustion" `Quick test_flash_exhaustion;
  ]

let test_credentials_verify () =
  let mem = Memory.create () in
  let img = image ~name:"signed" () in
  Loader.write_image mem ~base:0x0002_0000 img;
  check_bool "intact image verifies" true (Loader.verify_credentials mem ~base:0x0002_0000);
  (* tamper with one payload byte *)
  Memory.write8 mem (0x0002_0000 + (4 * Loader.header_words) + 6 + 10) 0xFF;
  check_bool "tampered image rejected" false (Loader.verify_credentials mem ~base:0x0002_0000);
  check_bool "garbage rejected" false (Loader.verify_credentials mem ~base:0x0003_0000)

let test_credentials_gate_loading () =
  let m, k = (fun () -> let m = Ticktock.Machine.create_arm () in
    (m, Ticktock.Boards.Ticktock_arm.create ~mem:m.Ticktock.Machine.arm_mem
          ~hw:m.Ticktock.Machine.arm_mpu
          ~switcher:(Ticktock.Kernel.Arm_switch m.Ticktock.Machine.arm_cpu) ())) ()
  in
  let mem = m.Ticktock.Machine.arm_mem in
  let cursor = Range.start Layout.app_flash in
  let good = image ~name:"good" () in
  let bad = image ~name:"bad" () in
  let placed_good, cursor = Result.get_ok (Loader.place mem ~cursor good) in
  let placed_bad, _ = Result.get_ok (Loader.place mem ~cursor bad) in
  ignore placed_good;
  (* corrupt the second image's payload after signing *)
  Memory.write8 mem (placed_bad.Loader.entry + 2) 0x00;
  let registry name =
    if name = "good" || name = "bad" then
      Some (Apps.App_dsl.to_program (Apps.App_dsl.return 0))
    else None
  in
  let loaded =
    Ticktock.Boards.Ticktock_arm.load_processes k ~registry ~require_credentials:true ()
  in
  Alcotest.(check int) "only the intact image loads" 1 (List.length loaded);
  (match loaded with
  | [ p ] -> Alcotest.(check string) "the good one" "good" p.Ticktock.Process.name
  | _ -> Alcotest.fail "expected one process");
  (* without the requirement, both load *)
  let m2 = Ticktock.Machine.create_arm () in
  let k2 =
    Ticktock.Boards.Ticktock_arm.create ~mem:m2.Ticktock.Machine.arm_mem
      ~hw:m2.Ticktock.Machine.arm_mpu
      ~switcher:(Ticktock.Kernel.Arm_switch m2.Ticktock.Machine.arm_cpu) ()
  in
  let cursor = Range.start Layout.app_flash in
  let _, cursor = Result.get_ok (Loader.place m2.Ticktock.Machine.arm_mem ~cursor good) in
  let pb, _ = Result.get_ok (Loader.place m2.Ticktock.Machine.arm_mem ~cursor bad) in
  Memory.write8 m2.Ticktock.Machine.arm_mem (pb.Loader.entry + 2) 0x00;
  Alcotest.(check int) "permissive policy loads both" 2
    (List.length (Ticktock.Boards.Ticktock_arm.load_processes k2 ~registry ()))

let check_bool = Alcotest.(check bool)

let suite =
  suite
  @ [
      Alcotest.test_case "credentials verify" `Quick test_credentials_verify;
      Alcotest.test_case "credentials gate loading" `Quick test_credentials_gate_loading;
    ]
