(* Conformance suite for the Replayable execution API and the TICKRPL
   record/replay stack: the --exec spec and its deprecated aliases, the
   schedule encoding, and the time-travel identities the navigator
   promises — goto-T equals a straight run to T, a backward step equals a
   fresh forward run, bundles round-trip through disk and refuse loudly
   when they no longer reproduce their recording. *)

open Ticktock

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_int = Alcotest.(check int)
let fp = Alcotest.testable (fun ppf v -> Fmt.string ppf (Fp.to_hex v)) Int64.equal

(* Every board-session test runs with contracts armed, like the fleet. *)
let with_contracts f = Verify.Violation.with_enabled true f

let cell_schedule = Replay.Schedule.fleet_cell ~seed:3 ~fuzzers:4 ~steps:400

let record_cell ?(interval = 4) board =
  let lv = Replay.Record.board_live ~what:"Test" ~board ~horizon:10_000 cell_schedule in
  Replay.Record.record ~interval lv

(* --- the execution spec --- *)

let test_exec_parse () =
  check_bool "boot" true (Replayable.Exec.parse "boot" = Ok Replayable.Exec.Boot);
  check_bool "fork" true (Replayable.Exec.parse "fork" = Ok Replayable.Exec.Fork);
  check_bool "snapshot:FILE" true
    (Replayable.Exec.parse "snapshot:/tmp/x.snap"
    = Ok (Replayable.Exec.Snapshot_file "/tmp/x.snap"));
  check_bool "empty snapshot path refused" true
    (Result.is_error (Replayable.Exec.parse "snapshot:"));
  check_bool "junk refused" true (Result.is_error (Replayable.Exec.parse "warp"));
  List.iter
    (fun s ->
      match Replayable.Exec.parse s with
      | Ok spec -> check_string "to_string round-trips" s (Replayable.Exec.to_string spec)
      | Error _ -> Alcotest.fail ("parse failed on " ^ s))
    [ "boot"; "fork"; "snapshot:/tmp/x.snap" ]

let test_exec_aliases () =
  let warnings = ref [] in
  let warn m = warnings := m :: !warnings in
  let of_flags ~fork ~from_snapshot exec =
    Replayable.Exec.of_flags ~warn ~fork ~from_snapshot exec
  in
  (* no flags at all: boot, silently *)
  warnings := [];
  check_bool "default is boot" true
    (of_flags ~fork:false ~from_snapshot:None None = Ok Replayable.Exec.Boot);
  check_int "no warning" 0 (List.length !warnings);
  (* each deprecated alias still works, and warns *)
  warnings := [];
  check_bool "--fork still works" true
    (of_flags ~fork:true ~from_snapshot:None None = Ok Replayable.Exec.Fork);
  check_int "--fork warns" 1 (List.length !warnings);
  warnings := [];
  check_bool "--from-snapshot still works" true
    (of_flags ~fork:false ~from_snapshot:(Some "/tmp/x.snap") None
    = Ok (Replayable.Exec.Snapshot_file "/tmp/x.snap"));
  check_int "--from-snapshot warns" 1 (List.length !warnings);
  (* an explicit --exec wins over both aliases, and no alias warning *)
  warnings := [];
  check_bool "--exec beats the aliases" true
    (of_flags ~fork:true ~from_snapshot:(Some "/tmp/x.snap") (Some "boot")
    = Ok Replayable.Exec.Boot);
  check_int "--exec silences the aliases" 0 (List.length !warnings)

(* Boot and fork cells are byte-identical through the shared runner: the
   admissibility check that let the six campaigns collapse onto it. *)
let test_boot_fork_identical () =
  let make () = Boards.instance_ticktock_arm () in
  let run exec =
    with_contracts (fun () -> Apps.Fuzz.campaign ~exec ~seeds:4 ~fuzzers:2 ~steps:40 make)
  in
  check_bool "boot == fork over the campaign protocol" true
    (run Replayable.Exec.Boot = run Replayable.Exec.Fork)

(* --- schedules --- *)

let test_schedule_roundtrip () =
  let sched = Replay.Schedule.fleet_cell ~seed:11 ~fuzzers:3 ~steps:70 in
  check_bool "encode/decode round-trips" true
    (Replay.Schedule.decode (Replay.Schedule.encode sched) = sched);
  check_bool "bad op refused" true
    (try
       ignore (Replay.Schedule.decode "warp 3\n");
       false
     with Invalid_argument _ -> true)

(* --- the navigator identities, on all three MPU architectures --- *)

let nav_identity board () =
  with_contracts (fun () ->
      let b = record_cell board in
      let horizon = b.Replay.Bundle.bu_header.Replay.Bundle.hd_horizon in
      check_bool "recording long enough to navigate" true (horizon > 6);
      let mid = horizon / 2 in
      (* goto T == a fresh forward run to T *)
      let nav = Replay.Record.navigator b in
      Replay.Navigator.goto nav mid;
      let nav2 = Replay.Record.navigator b in
      Replay.Navigator.goto nav2 mid;
      Alcotest.check fp "goto T is reproducible" (Replay.Navigator.fingerprint nav)
        (Replay.Navigator.fingerprint nav2);
      (* run past T, step backward to T: identical machine state *)
      Replay.Navigator.goto nav horizon;
      Replay.Navigator.back nav (horizon - mid);
      check_int "back lands on T" mid (Replay.Navigator.tick nav);
      Alcotest.check fp "backward step == fresh forward run" (Replay.Navigator.fingerprint nav2)
        (Replay.Navigator.fingerprint nav);
      check_bool "registers identical" true
        (Replay.Navigator.regs nav = Replay.Navigator.regs nav2);
      check_string "MPU view identical" (Replay.Navigator.mpu nav2) (Replay.Navigator.mpu nav);
      check_string "memory identical"
        (Replay.Navigator.mem_read nav2 ~addr:0x2000_0000 ~len:256)
        (Replay.Navigator.mem_read nav ~addr:0x2000_0000 ~len:256);
      (* the recording's own final state reproduces *)
      check_bool "bundle reproduces" true (Replay.Record.reproduces b))

(* --- the on-disk bundle --- *)

let test_bundle_roundtrip () =
  with_contracts (fun () ->
      let b = record_cell "ticktock-arm" in
      let path = Filename.temp_file "ticktock" ".tickrpl" in
      Replay.Bundle.save b path;
      let b' = Replay.Bundle.load path in
      Sys.remove path;
      check_bool "header round-trips" true (b'.Replay.Bundle.bu_header = b.Replay.Bundle.bu_header);
      check_bool "marks round-trip" true (b'.Replay.Bundle.bu_marks = b.Replay.Bundle.bu_marks);
      check_int "events round-trip"
        (List.length b.Replay.Bundle.bu_events)
        (List.length b'.Replay.Bundle.bu_events);
      check_bool "loaded bundle reproduces" true (Replay.Record.reproduces b'))

let test_bundle_refusals () =
  with_contracts (fun () ->
      let b = record_cell "ticktock-arm" in
      (* truncated / wrong magic *)
      let path = Filename.temp_file "ticktock" ".tickrpl" in
      let oc = open_out_bin path in
      output_string oc "TICKSNAP";
      close_out oc;
      check_bool "wrong magic refused" true
        (try
           ignore (Replay.Bundle.load path);
           false
         with Replay.Bundle.Refused _ -> true);
      Sys.remove path;
      (* a tampered mark: the bundle loads, but navigation refuses the
         divergence instead of silently showing a different execution *)
      let marks = Array.copy b.Replay.Bundle.bu_marks in
      let last = Array.length marks - 1 in
      let tick, _ = marks.(last) in
      marks.(last) <- (tick, 0xBAD_F00DL);
      let tampered = { b with Replay.Bundle.bu_marks = marks } in
      check_bool "tampered recording does not reproduce" false
        (Replay.Record.reproduces tampered);
      let nav = Replay.Record.navigator tampered in
      check_bool "navigation refuses the divergence" true
        (try
           Replay.Navigator.goto nav tick;
           false
         with Replay.Bundle.Refused _ -> true))

(* Recorded sessions carry the obs ring: violation sites are inspectable
   and any tick window exports as a Chrome trace without re-execution. *)
let test_events_and_trace () =
  with_contracts (fun () ->
      let b = record_cell "ticktock-arm" in
      check_bool "events recorded" true (List.length b.Replay.Bundle.bu_events > 0);
      let nav = Replay.Record.navigator b in
      Replay.Navigator.goto nav b.Replay.Bundle.bu_header.Replay.Bundle.hd_horizon;
      match Replay.Navigator.trace nav ~window:(0, 5) with
      | None -> Alcotest.fail "recorded session has no trace"
      | Some json ->
        let contains hay needle =
          let n = String.length needle and h = String.length hay in
          let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
          go 0
        in
        check_bool "trace is a chrome trace" true
          (String.length json > 0 && String.sub json 0 1 = "{" && contains json "traceEvents"))

(* --- campaign emitters --- *)

let test_fuzzcov_crasher_bundle () =
  let spec =
    {
      Fuzzcov.Engine.default_spec with
      Fuzzcov.Engine.fc_board = "tock-arm-upstream";
      fc_gens = 4;
      fc_pop = 6;
    }
  in
  let r = Fuzzcov.Engine.run ~jobs:2 spec in
  match r.Fuzzcov.Engine.fz_crashers with
  | [] -> Alcotest.fail "upstream board found no crasher"
  | c :: _ ->
    let b = Replay.Record.of_fuzzcov spec c in
    check_bool "crasher bundle reproduces" true (Replay.Record.reproduces b);
    check_bool "crash recorded" true (b.Replay.Bundle.bu_header.Replay.Bundle.hd_crash <> None)

let test_fabric_cell_bundle () =
  let spec =
    { Fabric.Campaign.default_spec with Fabric.Campaign.fb_plans = [ "storm" ]; fb_cuts = 5 }
  in
  let r = Fabric.Campaign.run ~jobs:2 spec in
  let cell = Option.get r.Fabric.Campaign.fb_cells.(3) in
  (* of_fabric_cell refuses unless its oracle fingerprint matches the
     campaign's, so a successful emission IS the byte-identity check *)
  let b = Replay.Record.of_fabric_cell spec cell in
  check_bool "fabric bundle reproduces" true (Replay.Record.reproduces b);
  (* restart-and-replay navigation: a backward jump on a fabric session *)
  let nav = Replay.Record.navigator b in
  Replay.Navigator.goto nav 30;
  let fp30 = Replay.Navigator.fingerprint nav in
  Replay.Navigator.goto nav 50;
  Replay.Navigator.back nav 20;
  Alcotest.check fp "fabric backward jump == fresh forward run" fp30
    (Replay.Navigator.fingerprint nav)

(* Recording is fingerprint-invisible: the recorded marks equal the
   fingerprints of the same cell run with observability off. *)
let test_replay_invisibility () =
  with_contracts (fun () ->
      let b = record_cell "ticktock-arm" in
      let old = Obs.Config.auto_mode () in
      Obs.Config.set_auto Obs.Config.Off;
      Fun.protect
        ~finally:(fun () -> Obs.Config.set_auto old)
        (fun () ->
          Cycles.set Cycles.global 0;
          let k = Capsules.Std_board.make ~what:"Test" "ticktock-arm" in
          Replay.Schedule.apply k cell_schedule;
          let s = Replayable.of_instance ~name:"ticktock-arm" k in
          let marks = Hashtbl.create 16 in
          Array.iter
            (fun (tk, v) -> Hashtbl.replace marks tk v)
            b.Replay.Bundle.bu_marks;
          let rec go () =
            let now = s.Replayable.rp_tick () in
            (match Hashtbl.find_opt marks now with
            | Some expected ->
              Alcotest.check fp
                (Printf.sprintf "obs-off fingerprint at tick %d" now)
                expected
                (s.Replayable.rp_fingerprint ())
            | None -> ());
            if s.Replayable.rp_crash () = None then begin
              s.Replayable.rp_step ~ticks:1;
              if s.Replayable.rp_tick () > now then go ()
            end
          in
          go ()))

let suite =
  [
    Alcotest.test_case "exec spec parses" `Quick test_exec_parse;
    Alcotest.test_case "deprecated aliases resolve and warn" `Quick test_exec_aliases;
    Alcotest.test_case "boot and fork cells identical" `Quick test_boot_fork_identical;
    Alcotest.test_case "schedule round-trips" `Quick test_schedule_roundtrip;
    Alcotest.test_case "navigator identity (ticktock-arm)" `Quick (nav_identity "ticktock-arm");
    Alcotest.test_case "navigator identity (ticktock-arm-v8)" `Quick
      (nav_identity "ticktock-arm-v8");
    Alcotest.test_case "navigator identity (ticktock-e310)" `Quick
      (nav_identity "ticktock-e310");
    Alcotest.test_case "bundle round-trips through disk" `Quick test_bundle_roundtrip;
    Alcotest.test_case "bundle refusals" `Quick test_bundle_refusals;
    Alcotest.test_case "events and windowed trace" `Quick test_events_and_trace;
    Alcotest.test_case "fuzzcov crasher bundle reproduces" `Quick test_fuzzcov_crasher_bundle;
    Alcotest.test_case "fabric cell bundle reproduces" `Quick test_fabric_cell_bundle;
    Alcotest.test_case "recording is fingerprint-invisible" `Quick test_replay_invisibility;
  ]
