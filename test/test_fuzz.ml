(* Fuzzing campaigns: hostile syscall/memory streams against every kernel. *)

open Ticktock

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_ticktock_survives_fuzzing_with_contracts () =
  (* contracts ON: not only must the kernel survive every seed, no
     verification contract may fire anywhere in the kernel or drivers *)
  Verify.Violation.with_enabled true (fun () ->
      let rounds, panics =
        Apps.Fuzz.campaign ~seeds:15 (fun () -> Boards.instance_ticktock_arm ())
      in
      check_int "no kernel panics" 0 (List.length panics);
      List.iter
        (fun (r : Apps.Fuzz.outcome) ->
          check_bool (Printf.sprintf "seed %d: witness unaffected" r.fuzz_seed) true r.witness_ok;
          check_bool (Printf.sprintf "seed %d: isolation holds" r.fuzz_seed) true r.isolation_ok)
        rounds)

let test_ticktock_pmp_survives_fuzzing () =
  Verify.Violation.with_enabled true (fun () ->
      let rounds, panics =
        Apps.Fuzz.campaign ~seeds:8 (fun () -> Boards.instance_ticktock_e310 ())
      in
      check_int "no kernel panics" 0 (List.length panics);
      List.iter
        (fun (r : Apps.Fuzz.outcome) ->
          check_bool (Printf.sprintf "seed %d ok" r.fuzz_seed) true
            (r.witness_ok && r.isolation_ok))
        rounds)

let test_upstream_tock_panics_under_fuzzing () =
  (* the §2.2 DoS, found by fuzzing instead of verification: some seed's
     wild brk panics the upstream kernel *)
  Verify.Violation.with_enabled false (fun () ->
      let _, panics = Apps.Fuzz.campaign ~seeds:15 (fun () -> Boards.instance_tock_arm ()) in
      check_bool "at least one seed kills the upstream kernel" true (List.length panics > 0))

let test_patched_tock_survives_fuzzing () =
  Verify.Violation.with_enabled false (fun () ->
      let rounds, panics =
        Apps.Fuzz.campaign ~seeds:15 (fun () -> Boards.instance_tock_arm_patched ())
      in
      check_int "patched kernel never panics" 0 (List.length panics);
      List.iter
        (fun (r : Apps.Fuzz.outcome) ->
          check_bool (Printf.sprintf "seed %d: witness unaffected" r.fuzz_seed) true
            r.witness_ok)
        rounds)

let test_fuzzers_actually_die_sometimes () =
  (* sanity: the streams really are hostile — across seeds some fuzzers
     fault and some run to completion *)
  Verify.Violation.with_enabled false (fun () ->
      let rounds, _ = Apps.Fuzz.campaign ~seeds:10 (fun () -> Boards.instance_ticktock_arm ()) in
      let faulted = List.fold_left (fun a r -> a + r.Apps.Fuzz.fuzzers_faulted) 0 rounds in
      let exited = List.fold_left (fun a r -> a + r.Apps.Fuzz.fuzzers_exited) 0 rounds in
      check_bool "some fuzzers faulted" true (faulted > 0);
      check_bool "some fuzzers completed" true (exited > 0))

let test_fuzz_deterministic () =
  let run () =
    Verify.Violation.with_enabled false (fun () ->
        Apps.Fuzz.run_round ~seed:7 (fun () -> Boards.instance_ticktock_arm ()))
  in
  let a = run () and b = run () in
  check_bool "same seed, same outcome" true
    (a.Apps.Fuzz.fuzzers_faulted = b.Apps.Fuzz.fuzzers_faulted
    && a.Apps.Fuzz.fuzzers_exited = b.Apps.Fuzz.fuzzers_exited
    && a.Apps.Fuzz.witness_ok = b.Apps.Fuzz.witness_ok)

(* --- bus decision cache vs. the raw MPU walk ---

   The micro-TLB in [Memory] caches allow decisions keyed by (granule
   block, privilege, access) and guarded by the MPU's generation counter.
   These rounds drive a random interleaving of register writes, privilege
   flips and accesses, and assert the cached verdict always equals the
   authoritative uncached walk — i.e. the cache is observationally
   invisible. *)

let all_perms =
  [
    Perms.Read_write_execute;
    Perms.Read_write_only;
    Perms.Read_execute_only;
    Perms.Read_only;
    Perms.Execute_only;
  ]

let all_accesses = [| Perms.Read; Perms.Write; Perms.Execute |]

let pick rng arr = arr.(Random.State.int rng (Array.length arr))

let agree name ~cached ~uncached addr =
  check_bool
    (Printf.sprintf "%s: cached = uncached at %s" name (Word32.to_hex addr))
    (Result.is_ok uncached) (Result.is_ok cached)

let test_v7_cache_agreement () =
  let rng = Random.State.make [| 0x7B05 |] in
  for _round = 0 to 9 do
    let mem = Memory.create () in
    let mpu = Mpu_hw.Armv7m_mpu.create () in
    let priv = ref false in
    Memory.set_checker mem
      (Some (Mpu_hw.Armv7m_mpu.checker mpu ~cpu_privileged:(fun () -> !priv)));
    Mpu_hw.Armv7m_mpu.set_enabled mpu true;
    for _op = 0 to 499 do
      let r = Random.State.int rng 100 in
      if r < 8 then begin
        let index = Random.State.int rng Mpu_hw.Armv7m_mpu.region_count in
        if Random.State.int rng 4 = 0 then Mpu_hw.Armv7m_mpu.clear_region mpu ~index
        else begin
          let size = 1 lsl (5 + Random.State.int rng 8) in
          let base = 0x2000_0000 + (Random.State.int rng 8 * size) in
          let srd = if size >= 256 then Random.State.int rng 256 else 0 in
          let perms = pick rng (Array.of_list all_perms) in
          Mpu_hw.Armv7m_mpu.write_region mpu ~index
            ~rbar:(Mpu_hw.Armv7m_mpu.encode_rbar ~addr:base ~region:index)
            ~rasr:
              (Mpu_hw.Armv7m_mpu.encode_rasr
                 ~enable:(Random.State.int rng 4 > 0)
                 ~size ~srd ~perms)
        end
      end
      else if r < 12 then priv := not !priv
      else if r < 14 then Mpu_hw.Armv7m_mpu.set_enabled mpu (Random.State.bool rng)
      else begin
        let addr = 0x2000_0000 + Random.State.int rng 0x8000 in
        let access = pick rng all_accesses in
        agree "v7"
          ~cached:(Memory.check mem addr access)
          ~uncached:(Mpu_hw.Armv7m_mpu.check_access mpu ~privileged:!priv addr access)
          addr
      end
    done
  done

let test_v8_cache_agreement () =
  let rng = Random.State.make [| 0x8B05 |] in
  for _round = 0 to 9 do
    let mem = Memory.create () in
    let mpu = Mpu_hw.Armv8m_mpu.create () in
    let priv = ref false in
    Memory.set_checker mem
      (Some (Mpu_hw.Armv8m_mpu.checker mpu ~cpu_privileged:(fun () -> !priv)));
    Mpu_hw.Armv8m_mpu.set_enabled mpu true;
    for _op = 0 to 499 do
      let r = Random.State.int rng 100 in
      if r < 8 then begin
        let index = Random.State.int rng Mpu_hw.Armv8m_mpu.region_count in
        if Random.State.int rng 4 = 0 then Mpu_hw.Armv8m_mpu.clear_region mpu ~index
        else begin
          let base = 0x2000_0000 + (Random.State.int rng 0x400 * 32) in
          let limit = base + (Random.State.int rng 64 * 32) + 31 in
          let perms = pick rng (Array.of_list all_perms) in
          Mpu_hw.Armv8m_mpu.write_region mpu ~index
            ~rbar:(Mpu_hw.Armv8m_mpu.encode_rbar ~base ~perms)
            ~rasr:
              (Mpu_hw.Armv8m_mpu.encode_rlar ~limit
                 ~enable:(Random.State.int rng 4 > 0))
        end
      end
      else if r < 12 then priv := not !priv
      else if r < 14 then Mpu_hw.Armv8m_mpu.set_enabled mpu (Random.State.bool rng)
      else begin
        let addr = 0x2000_0000 + Random.State.int rng 0x10000 in
        let access = pick rng all_accesses in
        agree "v8"
          ~cached:(Memory.check mem addr access)
          ~uncached:(Mpu_hw.Armv8m_mpu.check_access mpu ~privileged:!priv addr access)
          addr
      end
    done
  done

let test_pmp_cache_agreement () =
  let rng = Random.State.make [| 0x9B05 |] in
  List.iter
    (fun chip ->
      for _round = 0 to 4 do
        let mem = Memory.create () in
        let pmp = Mpu_hw.Pmp.create chip in
        let machine = ref false in
        Memory.set_checker mem
          (Some (Mpu_hw.Pmp.checker pmp ~cpu_machine_mode:(fun () -> !machine)));
        for _op = 0 to 499 do
          let r = Random.State.int rng 100 in
          if r < 8 then begin
            let index = Random.State.int rng (Mpu_hw.Pmp.chip pmp).Mpu_hw.Pmp.entry_count in
            if Random.State.int rng 4 = 0 then Mpu_hw.Pmp.clear_entry pmp ~index
            else begin
              let mode =
                pick rng [| Mpu_hw.Pmp.Off; Mpu_hw.Pmp.Tor; Mpu_hw.Pmp.Na4; Mpu_hw.Pmp.Napot |]
              in
              let cfg =
                Mpu_hw.Pmp.encode_cfg ~r:(Random.State.bool rng) ~w:(Random.State.bool rng)
                  ~x:(Random.State.bool rng) ~mode ~lock:false
              in
              let addr = (0x2000_0000 lsr 2) + Random.State.int rng 0x4000 in
              Mpu_hw.Pmp.set_entry pmp ~index ~cfg ~addr
            end
          end
          else if r < 12 then machine := not !machine
          else begin
            let addr = 0x2000_0000 + Random.State.int rng 0x10000 in
            let access = pick rng all_accesses in
            agree ("pmp-" ^ chip.Mpu_hw.Pmp.chip_name)
              ~cached:(Memory.check mem addr access)
              ~uncached:(Mpu_hw.Pmp.check_access pmp ~machine_mode:!machine addr access)
              addr
          end
        done
      done)
    [ Mpu_hw.Pmp.sifive_e310; Mpu_hw.Pmp.earlgrey ]

let suite =
  [
    Alcotest.test_case "ticktock-arm survives (contracts on)" `Slow
      test_ticktock_survives_fuzzing_with_contracts;
    Alcotest.test_case "ticktock-e310 survives" `Slow test_ticktock_pmp_survives_fuzzing;
    Alcotest.test_case "upstream tock panics (§2.2 DoS)" `Slow
      test_upstream_tock_panics_under_fuzzing;
    Alcotest.test_case "patched tock survives" `Slow test_patched_tock_survives_fuzzing;
    Alcotest.test_case "fuzzers are genuinely hostile" `Slow test_fuzzers_actually_die_sometimes;
    Alcotest.test_case "fuzzing is deterministic" `Quick test_fuzz_deterministic;
    Alcotest.test_case "v7: decision cache agrees with raw walk" `Quick
      test_v7_cache_agreement;
    Alcotest.test_case "v8: decision cache agrees with raw walk" `Quick
      test_v8_cache_agreement;
    Alcotest.test_case "pmp: decision cache agrees with raw walk" `Quick
      test_pmp_cache_agreement;
  ]
