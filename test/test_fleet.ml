(* The fleet campaign orchestrator. The load-bearing properties:

   - jobs parsing: one authority ([Jobs]), clamped, with a sane fallback
     on unset/garbage/non-positive values;
   - pool determinism: the work-stealing pool merges results in cell
     order, so jobs=1 and jobs=4 produce identical result arrays;
   - the store: versioned append-only frames round-trip; a strict load
     refuses truncation and version skew; resume recovers every committed
     record from a torn store and refuses a spec mismatch;
   - the campaign: the merged report is byte-identical across any jobs
     setting and across a kill (stop_after) / resume split;
   - fleet throughput counters surface host-flagged in the unified
     metrics snapshot. *)

open Ticktock

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- TICKTOCK_JOBS parsing --- *)

let test_jobs () =
  let d = Jobs.default () in
  check_bool "default is in bounds" true (d >= Jobs.min_jobs && d <= Jobs.max_jobs);
  check_int "unset falls back to default" d (Jobs.of_string None);
  check_int "garbage falls back to default" d (Jobs.of_string (Some "three"));
  check_int "empty falls back to default" d (Jobs.of_string (Some ""));
  check_int "zero falls back to default" d (Jobs.of_string (Some "0"));
  check_int "negative falls back to default" d (Jobs.of_string (Some "-4"));
  check_int "a valid count parses" 4 (Jobs.of_string (Some "4"));
  check_int "whitespace is trimmed" 4 (Jobs.of_string (Some " 4 "));
  check_int "an absurd count clamps" Jobs.max_jobs (Jobs.of_string (Some "100000"))

(* --- the work-stealing pool --- *)

let pool_run ~jobs n =
  Pool.run ~jobs ~batch:2 ~cells:n
    ~init:(fun _w -> ())
    ~cell:(fun () i -> i * i)
    ()

let test_pool_determinism () =
  let r1, _ = pool_run ~jobs:1 100 in
  let r4, s4 = pool_run ~jobs:4 100 in
  check_bool "jobs=1 and jobs=4 merge identically" true (r1 = r4);
  check_int "every cell ran" 100
    (Array.fold_left (fun a -> function Some _ -> a + 1 | None -> a) 0 r4);
  check_int "cell 7 computed 49" 49 (Option.get r4.(7));
  check_bool "steal count is sane" true (s4.Pool.ps_steals >= 0)

let test_pool_skip_and_commit () =
  let committed = ref [] in
  let r, _ =
    Pool.run ~jobs:2 ~batch:1 ~cells:10
      ~skip:(fun i -> i mod 2 = 0)
      ~commit:(fun i v -> committed := (i, v) :: !committed)
      ~init:(fun _w -> ())
      ~cell:(fun () i -> i + 100)
      ()
  in
  Array.iteri
    (fun i v ->
      if i mod 2 = 0 then check_bool "skipped cells stay empty" true (v = None)
      else check_int "run cells land" (i + 100) (Option.get v))
    r;
  check_int "commit fired once per run cell" 5 (List.length !committed);
  List.iter (fun (i, v) -> check_int "commit saw the cell's value" (i + 100) v) !committed

(* --- the store --- *)

let with_temp_store f =
  let path = Filename.temp_file "tickflt" ".store" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let write_cells t cells =
  List.iter (fun (i, d) -> Fleet.Store.append t ~index:i ~data:d) cells

let test_store_roundtrip () =
  with_temp_store (fun path ->
      let cells = [ (0, "alpha"); (3, "bravo two"); (1, "") ] in
      let t = Fleet.Store.create ~path ~spec:"spec-a" in
      write_cells t cells;
      check_int "append counts records" 3 (Fleet.Store.records t);
      Fleet.Store.close t;
      let spec, recs = Fleet.Store.load path in
      check_string "spec survives" "spec-a" spec;
      check_int "all records survive" 3 (List.length recs);
      List.iteri
        (fun k (i, d) ->
          let r = List.nth recs k in
          check_int "index survives in order" i r.Fleet.Store.rc_index;
          check_string "data survives" d r.Fleet.Store.rc_data)
        cells)

let truncate_file path by =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic (n - by) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let test_store_truncation () =
  with_temp_store (fun path ->
      let t = Fleet.Store.create ~path ~spec:"spec-a" in
      write_cells t [ (0, "alpha"); (1, "bravo") ];
      Fleet.Store.close t;
      truncate_file path 3;
      (* strict load refuses the torn tail... *)
      (match Fleet.Store.load path with
      | exception Fleet.Store.Refused _ -> ()
      | _ -> Alcotest.fail "expected load to refuse a torn store");
      (* ...resume recovers everything before it and drops the tail *)
      let t, recs = Fleet.Store.resume ~path ~spec:"spec-a" in
      check_int "resume keeps the committed record" 1 (List.length recs);
      check_string "and its payload" "alpha" (List.hd recs).Fleet.Store.rc_data;
      (* the rewrite scrubbed the tail: appends from here are clean *)
      Fleet.Store.append t ~index:1 ~data:"bravo again";
      Fleet.Store.close t;
      let _, recs = Fleet.Store.load path in
      check_int "post-resume store loads strictly" 2 (List.length recs))

let test_store_version_mismatch () =
  with_temp_store (fun path ->
      let t = Fleet.Store.create ~path ~spec:"spec-a" in
      write_cells t [ (0, "alpha") ];
      Fleet.Store.close t;
      (* patch the version byte (offset 8, right after the magic) *)
      let ic = open_in_bin path in
      let s = Bytes.of_string (really_input_string ic (in_channel_length ic)) in
      close_in ic;
      Bytes.set s 8 (Char.chr 99);
      let oc = open_out_bin path in
      output_bytes oc s;
      close_out oc;
      (match Fleet.Store.load path with
      | exception Fleet.Store.Refused _ -> ()
      | _ -> Alcotest.fail "expected load to refuse version 99");
      match Fleet.Store.resume ~path ~spec:"spec-a" with
      | exception Fleet.Store.Refused _ -> ()
      | _ -> Alcotest.fail "expected resume to refuse version 99")

let test_store_corruption_refused_on_resume () =
  with_temp_store (fun path ->
      let t = Fleet.Store.create ~path ~spec:"spec-a" in
      write_cells t [ (0, "alpha"); (1, "bravo") ];
      Fleet.Store.close t;
      (* flip a byte inside the last frame's payload/checksum: a checksum
         mismatch on a complete frame is corruption, not a kill artifact —
         refused in both modes. (A frame's length field is deliberately
         not targeted: a garbled length is indistinguishable from a torn
         tail, which resume is allowed to drop.) *)
      let ic = open_in_bin path in
      let s = Bytes.of_string (really_input_string ic (in_channel_length ic)) in
      close_in ic;
      let mid = Bytes.length s - 10 in
      Bytes.set s mid (Char.chr (Char.code (Bytes.get s mid) lxor 0xff));
      let oc = open_out_bin path in
      output_bytes oc s;
      close_out oc;
      match Fleet.Store.resume ~path ~spec:"spec-a" with
      | exception Fleet.Store.Refused _ -> ()
      | _ -> Alcotest.fail "expected resume to refuse a corrupt frame")

let test_store_spec_mismatch () =
  with_temp_store (fun path ->
      let t = Fleet.Store.create ~path ~spec:"spec-a" in
      Fleet.Store.close t;
      match Fleet.Store.resume ~path ~spec:"spec-b" with
      | exception Fleet.Store.Refused _ -> ()
      | _ -> Alcotest.fail "expected resume to refuse a different campaign spec")

(* --- the campaign --- *)

(* Small but real: two boards, two plans, enough cells to spread across
   workers and batches. *)
let small_spec =
  {
    Fleet.Campaign.sp_boards = [ "ticktock-arm"; "ticktock-e310" ];
    sp_plans =
      [
        { Fleet.Campaign.pl_name = "light"; pl_fuzzers = 2; pl_steps = 20 };
        { Fleet.Campaign.pl_name = "burst"; pl_fuzzers = 3; pl_steps = 12 };
      ];
    sp_cells = 24;
    sp_max_ticks = 1200;
  }

let run_campaign ?jobs ?store ?resume ?stop_after () =
  Verify.Violation.with_enabled true (fun () ->
      Fleet.Campaign.run ?jobs ~batch:2 ?store ?resume ?stop_after small_spec)

let test_campaign_jobs_identity () =
  let r1 = run_campaign ~jobs:1 () in
  let r4 = run_campaign ~jobs:4 () in
  check_bool "jobs=1 campaign completes ok" true
    (r1.Fleet.Campaign.fl_complete && r1.Fleet.Campaign.fl_ok);
  check_bool "report is non-empty" true (String.length r1.Fleet.Campaign.fl_report > 0);
  check_string "report byte-identical: jobs=1 vs jobs=4" r1.Fleet.Campaign.fl_report
    r4.Fleet.Campaign.fl_report;
  check_int "every cell forked a board" 24 r1.Fleet.Campaign.fl_forked;
  check_bool "each worker booted each board at most once" true
    (r4.Fleet.Campaign.fl_booted <= 4 * 2)

let test_campaign_kill_resume_identity () =
  let uninterrupted = run_campaign ~jobs:2 () in
  with_temp_store (fun path ->
      Sys.remove path (* resume wants to create it fresh *);
      let killed = run_campaign ~jobs:2 ~store:path ~resume:true ~stop_after:9 () in
      check_bool "the kill left the campaign incomplete" false
        killed.Fleet.Campaign.fl_complete;
      check_bool "but committed what it ran" true (killed.Fleet.Campaign.fl_ran >= 9);
      let resumed = run_campaign ~jobs:3 ~store:path ~resume:true () in
      check_bool "resume completes the campaign" true resumed.Fleet.Campaign.fl_complete;
      check_bool "resume recovered the killed run's cells" true
        (resumed.Fleet.Campaign.fl_resumed >= 9);
      check_bool "and only ran the rest" true
        (resumed.Fleet.Campaign.fl_ran + resumed.Fleet.Campaign.fl_resumed = 24);
      check_string "report byte-identical: kill/resume vs uninterrupted"
        uninterrupted.Fleet.Campaign.fl_report resumed.Fleet.Campaign.fl_report)

let test_campaign_counters () =
  Obs.Metrics.host_reset ();
  let r = run_campaign ~jobs:2 () in
  check_bool "campaign ok" true r.Fleet.Campaign.fl_ok;
  check_int "fleet/cells_run counts every cell" 24 (Obs.Metrics.host_read "fleet/cells_run");
  check_int "fleet/boards_forked counts every fork" 24
    (Obs.Metrics.host_read "fleet/boards_forked");
  check_bool "fleet/steals mirrors the pool" true
    (Obs.Metrics.host_read "fleet/steals" = r.Fleet.Campaign.fl_steals)

let test_campaign_unknown_board () =
  match
    Fleet.Campaign.run { small_spec with Fleet.Campaign.sp_boards = [ "tock-arm-typo" ] }
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected an unknown board to be refused"

let suite =
  [
    Alcotest.test_case "TICKTOCK_JOBS parsing" `Quick test_jobs;
    Alcotest.test_case "pool: jobs=1 = jobs=4" `Quick test_pool_determinism;
    Alcotest.test_case "pool: skip and commit" `Quick test_pool_skip_and_commit;
    Alcotest.test_case "store: roundtrip" `Quick test_store_roundtrip;
    Alcotest.test_case "store: torn tail (load refuses, resume recovers)" `Quick
      test_store_truncation;
    Alcotest.test_case "store: version mismatch refused" `Quick test_store_version_mismatch;
    Alcotest.test_case "store: corruption refused on resume" `Quick
      test_store_corruption_refused_on_resume;
    Alcotest.test_case "store: spec mismatch refused" `Quick test_store_spec_mismatch;
    Alcotest.test_case "campaign: report identical across jobs" `Quick
      test_campaign_jobs_identity;
    Alcotest.test_case "campaign: report identical across kill/resume" `Quick
      test_campaign_kill_resume_identity;
    Alcotest.test_case "campaign: fleet host counters" `Quick test_campaign_counters;
    Alcotest.test_case "campaign: unknown board refused" `Quick test_campaign_unknown_board;
  ]
