(* Sparse physical memory with the MPU access-checker hook. *)

let check_int = Alcotest.(check int)

let test_rw8 () =
  let m = Memory.create () in
  Memory.write8 m 0x2000_0000 0xAB;
  check_int "read back" 0xAB (Memory.read8 m 0x2000_0000);
  check_int "default zero" 0 (Memory.read8 m 0x2000_0001)

let test_rw32_little_endian () =
  let m = Memory.create () in
  Memory.write32 m 0x2000_0000 0xDEAD_BEEF;
  check_int "word" 0xDEAD_BEEF (Memory.read32 m 0x2000_0000);
  check_int "LSB first" 0xEF (Memory.read8 m 0x2000_0000);
  check_int "MSB last" 0xDE (Memory.read8 m 0x2000_0003)

let test_cross_page () =
  let m = Memory.create () in
  (* a word spanning a 4 KiB page boundary *)
  Memory.write32 m 0x2000_0FFE 0x1234_5678;
  check_int "cross-page word" 0x1234_5678 (Memory.read32 m 0x2000_0FFE)

let test_blit_and_read () =
  let m = Memory.create () in
  Memory.blit_string m 0x100 "hello tock";
  Alcotest.(check string) "roundtrip" "hello tock" (Memory.read_bytes m 0x100 10)

let test_sparse () =
  let m = Memory.create () in
  Memory.write8 m 0 1;
  Memory.write8 m 0xF000_0000 2;
  check_int "two pages only" 2 (Memory.touched_pages m)

let deny_writes _addr access =
  match access with Perms.Write -> Error "read-only world" | Perms.Read | Perms.Execute -> Ok ()

let test_checker_applies () =
  let m = Memory.create () in
  Memory.set_checker_fn m (Some deny_writes);
  Alcotest.(check bool) "checker installed" true (Memory.checker_enabled m);
  check_int "load allowed" 0 (Memory.load8 m 0x2000_0000);
  Alcotest.check_raises "store denied"
    (Memory.Access_fault
       { Memory.fault_addr = 0x2000_0000; fault_access = Perms.Write; fault_reason = "read-only world" })
    (fun () -> Memory.store8 m 0x2000_0000 1)

let test_checker_word_granularity () =
  (* A 4-byte store faults if any covered byte is denied. *)
  let m = Memory.create () in
  let deny_byte addr _ = if addr = 0x2000_0003 then Error "hole" else Ok () in
  Memory.set_checker_fn m (Some deny_byte);
  (try
     Memory.store32 m 0x2000_0000 0xFFFF_FFFF;
     Alcotest.fail "expected fault on covered byte"
   with Memory.Access_fault f -> check_int "faulting byte" 0x2000_0003 f.Memory.fault_addr);
  (* And the partial store must not have happened. *)
  check_int "no partial write" 0 (Memory.read8 m 0x2000_0000)

let test_raw_bypasses_checker () =
  let m = Memory.create () in
  Memory.set_checker_fn m (Some (fun _ _ -> Error "deny all"));
  (* raw accesses model DMA / kernel: never checked *)
  Memory.write8 m 0x2000_0000 7;
  check_int "raw read" 7 (Memory.read8 m 0x2000_0000)

let test_fetch_checked_as_execute () =
  let m = Memory.create () in
  let record = ref None in
  Memory.set_checker_fn m
    (Some
       (fun _ access ->
         record := Some access;
         Ok ()));
  ignore (Memory.fetch32 m 0x0002_0000);
  Alcotest.(check bool) "fetch uses Execute" true (!record = Some Perms.Execute)

let test_checker_removal () =
  let m = Memory.create () in
  Memory.set_checker_fn m (Some (fun _ _ -> Error "deny"));
  Memory.set_checker_fn m None;
  check_int "unchecked after removal" 0 (Memory.load8 m 0x1000)

let suite =
  [
    Alcotest.test_case "byte read/write" `Quick test_rw8;
    Alcotest.test_case "word little-endian" `Quick test_rw32_little_endian;
    Alcotest.test_case "cross-page word" `Quick test_cross_page;
    Alcotest.test_case "blit/read_bytes" `Quick test_blit_and_read;
    Alcotest.test_case "sparse pages" `Quick test_sparse;
    Alcotest.test_case "checker gates checked access" `Quick test_checker_applies;
    Alcotest.test_case "word access checks every byte" `Quick test_checker_word_granularity;
    Alcotest.test_case "raw access bypasses checker (DMA)" `Quick test_raw_bypasses_checker;
    Alcotest.test_case "fetch checked as execute" `Quick test_fetch_checked_as_execute;
    Alcotest.test_case "checker removal" `Quick test_checker_removal;
  ]
