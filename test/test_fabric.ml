(* The multi-board fabric: link faults, radio capsule, OTA updates,
   power-loss sweeps, and the cross-board campaign. *)

let reseed_of id = 0x1000 + id

(* --- link-level tests --- *)

let test_link_clean_delivery () =
  let link = Fabric.Link.create ~nodes:2 ~seed:5 () in
  (match Fabric.Link.send link ~src:0 ~dst:1 ~port:0 "hello" with
  | `Ok -> ()
  | `Busy | `Peer_dead -> Alcotest.fail "send refused on an idle link");
  Fabric.Link.deliver link ~now:0;
  (match Fabric.Link.pop link ~dst:1 ~port:0 with
  | Some f -> Alcotest.(check string) "payload" "hello" f.Fabric.Link.fr_payload
  | None -> Alcotest.fail "frame not delivered");
  let st = Fabric.Link.stats link in
  Alcotest.(check int) "sent" 1 st.Fabric.Link.st_sent;
  Alcotest.(check int) "delivered" 1 st.Fabric.Link.st_delivered;
  Alcotest.(check int) "silent" 0 st.Fabric.Link.st_silent

let test_link_corruption_detected () =
  let faults = { Fabric.Link.no_faults with fa_corrupt = 1000 } in
  let link = Fabric.Link.create ~nodes:2 ~faults ~seed:11 () in
  for i = 0 to 9 do
    ignore (Fabric.Link.send link ~src:0 ~dst:1 ~port:0 (Printf.sprintf "m%d" i));
    Fabric.Link.deliver link ~now:i
  done;
  let st = Fabric.Link.stats link in
  Alcotest.(check int) "all corrupted" 10 st.Fabric.Link.st_corrupted;
  Alcotest.(check int) "none delivered" 0 st.Fabric.Link.st_delivered;
  (* the whole point: corruption is *detected* — never silent *)
  Alcotest.(check int) "no silent corruption" 0 st.Fabric.Link.st_silent;
  Alcotest.(check int) "inbox empty" 0 (Fabric.Link.pending link ~dst:1 ~port:0)

let test_link_fault_determinism () =
  let run () =
    let faults =
      { Fabric.Link.fa_drop = 200; fa_corrupt = 150; fa_duplicate = 100; fa_reorder = 120;
        fa_partition = Some (0, 1, 3, 6) }
    in
    let link = Fabric.Link.create ~nodes:2 ~faults ~seed:77 () in
    for i = 0 to 29 do
      ignore (Fabric.Link.send link ~src:0 ~dst:1 ~port:0 (Printf.sprintf "m%02d" i));
      Fabric.Link.deliver link ~now:i
    done;
    let rec drain acc =
      match Fabric.Link.pop link ~dst:1 ~port:0 with
      | Some f -> drain (f.Fabric.Link.fr_payload :: acc)
      | None -> List.rev acc
    in
    (drain [], Fabric.Link.fingerprint link)
  in
  let p1, f1 = run () and p2, f2 = run () in
  Alcotest.(check (list string)) "same deliveries" p1 p2;
  Alcotest.(check int64) "same fingerprint" f1 f2;
  let faults = { Fabric.Link.no_faults with fa_drop = 200 } in
  let link = Fabric.Link.create ~nodes:2 ~faults ~seed:78 () in
  for i = 0 to 29 do
    ignore (Fabric.Link.send link ~src:0 ~dst:1 ~port:0 (Printf.sprintf "m%02d" i));
    Fabric.Link.deliver link ~now:i
  done;
  Alcotest.(check bool) "different seed diverges" true
    (Fabric.Link.fingerprint link <> f1)

let test_link_backpressure_and_death () =
  let link = Fabric.Link.create ~nodes:2 ~capacity:3 ~seed:9 () in
  let oks = ref 0 and busys = ref 0 in
  for _ = 1 to 5 do
    match Fabric.Link.send link ~src:0 ~dst:1 ~port:0 "x" with
    | `Ok -> incr oks
    | `Busy -> incr busys
    | `Peer_dead -> Alcotest.fail "peer death on a live link"
  done;
  Alcotest.(check int) "capacity accepted" 3 !oks;
  Alcotest.(check int) "rest backpressured" 2 !busys;
  Fabric.Link.set_dead link 1 true;
  (match Fabric.Link.send link ~src:0 ~dst:1 ~port:0 "x" with
  | `Peer_dead -> ()
  | `Ok | `Busy -> Alcotest.fail "send to a dead node must report peer death");
  Fabric.Link.deliver link ~now:0;
  Alcotest.(check int) "in-flight frames died with the node" 0
    (Fabric.Link.pending link ~dst:1 ~port:0);
  Fabric.Link.set_dead link 1 false;
  (match Fabric.Link.send link ~src:0 ~dst:1 ~port:0 "back" with
  | `Ok -> ()
  | `Busy | `Peer_dead -> Alcotest.fail "revived node refuses frames")

let test_link_partition_heals () =
  let faults = { Fabric.Link.no_faults with fa_partition = Some (0, 1, 0, 5) } in
  let link = Fabric.Link.create ~nodes:2 ~faults ~seed:3 () in
  ignore (Fabric.Link.send link ~src:0 ~dst:1 ~port:0 "during");
  Fabric.Link.deliver link ~now:1;
  Alcotest.(check int) "held during partition" 0 (Fabric.Link.pending link ~dst:1 ~port:0);
  Fabric.Link.deliver link ~now:5;
  Alcotest.(check int) "released at heal" 1 (Fabric.Link.pending link ~dst:1 ~port:0);
  Alcotest.(check int) "heal counted" 1 (Fabric.Link.stats link).Fabric.Link.st_healed

let test_link_snapshot_roundtrip () =
  let faults = { Fabric.Link.no_faults with fa_drop = 100; fa_duplicate = 80 } in
  let link = Fabric.Link.create ~nodes:3 ~faults ~seed:21 () in
  for i = 0 to 9 do
    ignore (Fabric.Link.send link ~src:0 ~dst:1 ~port:0 (Printf.sprintf "a%d" i));
    ignore (Fabric.Link.send link ~src:1 ~dst:2 ~port:1 (Printf.sprintf "b%d" i));
    if i mod 2 = 0 then Fabric.Link.deliver link ~now:i
  done;
  let snap = Fabric.Link.capture link in
  let fp = Fabric.Link.fingerprint link in
  (* wreck the state, then restore *)
  for i = 10 to 19 do
    ignore (Fabric.Link.send link ~src:2 ~dst:0 ~port:0 (Printf.sprintf "c%d" i));
    Fabric.Link.deliver link ~now:i
  done;
  Alcotest.(check bool) "state moved on" true (Fabric.Link.fingerprint link <> fp);
  Fabric.Link.restore link snap;
  Alcotest.(check int64) "restored fingerprint" fp (Fabric.Link.fingerprint link);
  (* divergence-free continuation: run the same suffix twice from the snapshot *)
  let continue () =
    Fabric.Link.restore link snap;
    for i = 10 to 19 do
      ignore (Fabric.Link.send link ~src:0 ~dst:2 ~port:0 (Printf.sprintf "d%d" i));
      Fabric.Link.deliver link ~now:i
    done;
    Fabric.Link.fingerprint link
  in
  Alcotest.(check int64) "forked continuations agree" (continue ()) (continue ())

(* --- deployment end-to-end (clean link) --- *)

let test_deploy_clean_ota_and_traffic () =
  let topo, stats = Fabric.Deploy.create ~seed:7 () in
  Fabric.Topology.run topo ~ticks:90 ~reseed_of;
  let oc = Fabric.Deploy.check topo in
  (match oc.Fabric.Deploy.oc_panic with
  | None -> ()
  | Some m -> Alcotest.failf "kernel panic: %s" m);
  Alcotest.(check bool) "isolation held on every board" true oc.Fabric.Deploy.oc_isolation_ok;
  Alcotest.(check int) "no silent corruption" 0 oc.Fabric.Deploy.oc_silent;
  (* every reading arrived at both followers, in order *)
  List.iter
    (fun (id, got) ->
      Alcotest.(check (list string))
        (Printf.sprintf "node %d readings" id)
        Fabric.Deploy.readings got)
    oc.Fabric.Deploy.oc_got;
  Alcotest.(check bool) "no spurious readings" false oc.Fabric.Deploy.oc_spurious;
  (* the OTA committed and activated: v2 owns the home slot and ran *)
  Alcotest.(check int) "one OTA attempt" 1 stats.Fabric.Ota.ot_attempts;
  Alcotest.(check int) "one OTA commit" 1 stats.Fabric.Ota.ot_commits;
  Alcotest.(check int) "no rollbacks" 0 stats.Fabric.Ota.ot_rollbacks;
  Alcotest.(check string) "v2 in the home slot" Fabric.Deploy.v2_name
    oc.Fabric.Deploy.oc_home_app;
  Alcotest.(check bool) "home image byte-exact" true oc.Fabric.Deploy.oc_home_intact;
  Alcotest.(check bool) "staging erased" true oc.Fabric.Deploy.oc_staging_empty;
  Alcotest.(check int) "one planned reboot" 1 oc.Fabric.Deploy.oc_reboots;
  let target_console = oc.Fabric.Deploy.oc_consoles.(Fabric.Deploy.target) in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  Alcotest.(check bool) "v1 ran before the update" true (contains target_console "app-v1 alive");
  Alcotest.(check bool) "v2 ran after activation" true (contains target_console "app-v2 alive")

(* --- hostile OTA traffic (satellite of the loader hardening) --- *)

let test_ota_rejects_hostile_streams () =
  (* forge port-1 frames at the receiver before the real updater gets a
     word in: an oversized announce (typed refusal), then a tiny bogus
     image streamed end-to-end (bad header -> credential rollback). The
     real OTA must still complete afterwards. *)
  let topo, stats = Fabric.Deploy.create ~seed:7 () in
  let link = topo.Fabric.Topology.link in
  let send p =
    match
      Fabric.Link.send link ~src:Fabric.Deploy.follower ~dst:Fabric.Deploy.target ~port:1 p
    with
    | `Ok -> ()
    | `Busy | `Peer_dead -> Alcotest.fail "forged send refused"
  in
  send (Fabric.Ota.announce ~total:(Fabric.Ota.slot_size + 1) ~name:"evil");
  send (Fabric.Ota.announce ~total:32 ~name:"evil");
  send (Fabric.Ota.data ~off:0 (String.make 32 'Z'));
  Fabric.Topology.run topo ~ticks:110 ~reseed_of;
  Alcotest.(check int) "both hostile streams rejected" 2 stats.Fabric.Ota.ot_rejected;
  Alcotest.(check int) "bogus image rolled back" 1 stats.Fabric.Ota.ot_rollbacks;
  Alcotest.(check string) "credential refusal is the last word" "invalid credentials"
    stats.Fabric.Ota.ot_last_reject;
  (* the oversized announce got the typed refusal on its way through *)
  Alcotest.(check int) "real OTA still committed" 1 stats.Fabric.Ota.ot_commits;
  let oc = Fabric.Deploy.check topo in
  Alcotest.(check string) "v2 still lands" Fabric.Deploy.v2_name oc.Fabric.Deploy.oc_home_app;
  Alcotest.(check bool) "home intact" true oc.Fabric.Deploy.oc_home_intact

(* --- power-loss sweep cells --- *)

let test_powerloss_cell_determinism () =
  let env =
    Fabric.Powerloss.make_env ~plan:(Fabric.Powerloss.plan_named "lossy") ~seed:42 ()
  in
  let run () = Fabric.Powerloss.run_cell env ~sweep_seed:42 ~cut:5 ~outage:2 ~horizon:64 in
  let a = run () and b = run () in
  Alcotest.(check int64) "same cell twice, same fingerprint" a.Fabric.Powerloss.pc_fp
    b.Fabric.Powerloss.pc_fp;
  Alcotest.(check string) "same class" a.Fabric.Powerloss.pc_class b.Fabric.Powerloss.pc_class;
  Alcotest.(check bool) "cell passes containment" true a.Fabric.Powerloss.pc_ok;
  let c = Fabric.Powerloss.run_cell env ~sweep_seed:42 ~cut:6 ~outage:2 ~horizon:64 in
  Alcotest.(check bool) "a different cut diverges" true
    (c.Fabric.Powerloss.pc_fp <> a.Fabric.Powerloss.pc_fp)

let test_powerloss_target_cuts_roll_back_and_recover () =
  (* cutting the target board early (cuts 1,4,7,10 land on board 1) must
     tear at least one transfer — fsck rolls it back and the go-back-N
     retry re-streams it; every cell still passes containment *)
  let env =
    Fabric.Powerloss.make_env ~plan:(Fabric.Powerloss.plan_named "clean") ~seed:42 ()
  in
  let rolled = ref 0 in
  List.iter
    (fun cut ->
      let c = Fabric.Powerloss.run_cell env ~sweep_seed:42 ~cut ~outage:2 ~horizon:64 in
      Alcotest.(check int) "board 1 was cut" 1 c.Fabric.Powerloss.pc_board;
      if not c.Fabric.Powerloss.pc_ok then
        Alcotest.failf "cut %d violated containment: %s" cut c.Fabric.Powerloss.pc_why;
      Alcotest.(check int) "never silent" 0 c.Fabric.Powerloss.pc_silent;
      if c.Fabric.Powerloss.pc_rollbacks > 0 then incr rolled)
    [ 1; 4; 7; 10 ];
  Alcotest.(check bool) "at least one cut tore the transfer" true (!rolled > 0)

(* --- the campaign (determinism, store, metrics) --- *)

let small_spec =
  { Fabric.Campaign.default_spec with fb_plans = [ "clean"; "lossy" ]; fb_cuts = 6 }

let test_campaign_jobs_invariance () =
  let r1 = Fabric.Campaign.run ~jobs:1 small_spec in
  let r2 = Fabric.Campaign.run ~jobs:2 small_spec in
  Alcotest.(check bool) "jobs=1 complete and ok" true (r1.Fabric.Campaign.fb_complete && r1.fb_ok);
  Alcotest.(check bool) "jobs=2 complete and ok" true (r2.Fabric.Campaign.fb_complete && r2.fb_ok);
  Alcotest.(check string) "byte-identical reports" r1.Fabric.Campaign.fb_report
    r2.Fabric.Campaign.fb_report

let test_campaign_kill_resume () =
  let path = Filename.temp_file "fabric_test" ".store" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let whole = Fabric.Campaign.run ~jobs:1 small_spec in
      let killed = Fabric.Campaign.run ~jobs:2 ~store:path ~stop_after:5 small_spec in
      Alcotest.(check bool) "killed run is incomplete" false killed.Fabric.Campaign.fb_complete;
      Alcotest.(check string) "incomplete run renders no report" ""
        killed.Fabric.Campaign.fb_report;
      let resumed = Fabric.Campaign.run ~jobs:2 ~store:path ~resume:true small_spec in
      Alcotest.(check bool) "resume completes" true resumed.Fabric.Campaign.fb_complete;
      Alcotest.(check bool) "resume skipped stored cells" true
        (resumed.Fabric.Campaign.fb_resumed >= 5);
      Alcotest.(check string) "kill+resume report identical to one-shot"
        whole.Fabric.Campaign.fb_report resumed.Fabric.Campaign.fb_report)

let test_campaign_cell_roundtrip () =
  let c =
    {
      Fabric.Campaign.fc_index = 7;
      fc_plan = "storm";
      fc_cut = 12;
      fc_board = 0;
      fc_class = "rolled-back";
      fc_fsck = "rolled-back";
      fc_ok = false;
      fc_why = "staging not reclaimed";
      fc_silent = 0;
      fc_commits = 1;
      fc_rollbacks = 2;
      fc_readings = 17;
      fc_fp = 0x1234_5678_9ABCL;
    }
  in
  match Fabric.Campaign.decode_cell (Fabric.Campaign.encode_cell c) with
  | Some c' -> Alcotest.(check bool) "cell store roundtrip" true (c = c')
  | None -> Alcotest.fail "cell failed to decode"

let test_fabric_metrics_are_host_rows () =
  (* fabric counters surface as [host]-flagged metric rows — visible in
     the unified snapshot, excluded from every determinism comparison *)
  let before = Obs.Metrics.host_read "fabric/frames_sent" in
  let topo, _ = Fabric.Deploy.create ~seed:7 () in
  Fabric.Topology.run topo ~ticks:30 ~reseed_of;
  Alcotest.(check bool) "frame counter advanced" true
    (Obs.Metrics.host_read "fabric/frames_sent" > before);
  let entries = Obs.Metrics.host_entries () in
  let fabric_rows =
    List.filter
      (fun (e : Obs.Metrics.entry) ->
        String.length e.Obs.Metrics.name >= 7 && String.sub e.Obs.Metrics.name 0 7 = "fabric/")
      entries
  in
  Alcotest.(check bool) "fabric rows present" true (List.length fabric_rows >= 3);
  List.iter
    (fun (e : Obs.Metrics.entry) ->
      Alcotest.(check bool) (e.Obs.Metrics.name ^ " is host-flagged") true e.Obs.Metrics.host)
    fabric_rows;
  Alcotest.(check int) "model_only hides them" 0
    (List.length (Obs.Metrics.model_only fabric_rows))

let suite =
  [
    Alcotest.test_case "link: clean delivery" `Quick test_link_clean_delivery;
    Alcotest.test_case "link: corruption detected, never silent" `Quick
      test_link_corruption_detected;
    Alcotest.test_case "link: faults are seed-deterministic" `Quick test_link_fault_determinism;
    Alcotest.test_case "link: backpressure and peer death" `Quick
      test_link_backpressure_and_death;
    Alcotest.test_case "link: partition heals in order" `Quick test_link_partition_heals;
    Alcotest.test_case "link: snapshot roundtrip + forked continuation" `Quick
      test_link_snapshot_roundtrip;
    Alcotest.test_case "deploy: clean OTA + gateway traffic end-to-end" `Quick
      test_deploy_clean_ota_and_traffic;
    Alcotest.test_case "ota: hostile streams rejected, typed" `Quick
      test_ota_rejects_hostile_streams;
    Alcotest.test_case "powerloss: cells are deterministic" `Quick
      test_powerloss_cell_determinism;
    Alcotest.test_case "powerloss: target cuts roll back and recover" `Quick
      test_powerloss_target_cuts_roll_back_and_recover;
    Alcotest.test_case "campaign: report invariant under jobs" `Quick
      test_campaign_jobs_invariance;
    Alcotest.test_case "campaign: kill + resume is byte-identical" `Quick
      test_campaign_kill_resume;
    Alcotest.test_case "campaign: store cell roundtrip" `Quick test_campaign_cell_roundtrip;
    Alcotest.test_case "metrics: fabric counters are host rows" `Quick
      test_fabric_metrics_are_host_rows;
  ]
