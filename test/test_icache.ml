(* The Mc decode/block cache. As with the bus micro-TLB, the load-bearing
   property is *invalidation*: a cached decode must die the instant the
   underlying bytes change (stores, loader reloads), and a cached block's
   execute stamp must die the instant the MPU or privilege changes —
   otherwise the cache would execute stale or forbidden code. The lockstep
   round then checks the cache is semantically invisible wholesale:
   registers, stop reason and model cycles identical to the uncached
   engine on randomized programs, including self-modifying ones. *)

open Ticktock
module C = Fluxarm.Cpu
module R = Fluxarm.Regs
module T = Fluxarm.Thumb
module I = Fluxarm.Icache

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let bare () =
  let mem = Memory.create () in
  (mem, C.create mem)

let run_from cpu addr =
  C.set_special_raw cpu R.Pc addr;
  Fluxarm.Mc.run cpu

(* --- stores into a cached block force a re-decode --- *)

let test_store_invalidates () =
  let mem, cpu = bare () in
  ignore (T.assemble mem 0x1000 [ T.Movw (R.R0, 5); T.Svc 0 ]);
  check_bool "first run" true (run_from cpu 0x1000 = Fluxarm.Mc.Svc_taken 0);
  check_int "cold result" 5 (C.get cpu R.R0);
  check_bool "warm run" true (run_from cpu 0x1000 = Fluxarm.Mc.Svc_taken 0);
  check_int "warm result" 5 (C.get cpu R.R0);
  (* overwrite the movw in place through the raw word path (what the
     loader and RAM zeroing use) *)
  (match T.encode (T.Movw (R.R0, 7)) with
  | [ h1; h2 ] -> Memory.write32 mem 0x1000 (h1 lor (h2 lsl 16))
  | _ -> Alcotest.fail "movw should be 32-bit");
  check_bool "run after write32" true (run_from cpu 0x1000 = Fluxarm.Mc.Svc_taken 0);
  check_int "write32 re-decoded" 7 (C.get cpu R.R0);
  (* and through the checked store path (what emulated stores use) *)
  (match T.encode (T.Movw (R.R0, 9)) with
  | [ h1; h2 ] -> Memory.store32 mem 0x1000 (h1 lor (h2 lsl 16))
  | _ -> Alcotest.fail "movw should be 32-bit");
  check_bool "run after store32" true (run_from cpu 0x1000 = Fluxarm.Mc.Svc_taken 0);
  check_int "store32 re-decoded" 9 (C.get cpu R.R0)

(* --- a loader reload of the same flash invalidates cached decodes --- *)

let payload_of imm =
  let hws = List.concat_map T.encode [ T.Movw (R.R0, imm); T.Svc 0 ] in
  let b = Buffer.create 8 in
  List.iter
    (fun h ->
      Buffer.add_char b (Char.chr (h land 0xff));
      Buffer.add_char b (Char.chr ((h lsr 8) land 0xff)))
    hws;
  Buffer.contents b

let test_loader_reload_invalidates () =
  let mem, cpu = bare () in
  let cursor = Range.start Layout.app_flash in
  let place imm =
    let img = { Loader.app_name = "icache"; min_ram = 1024; payload = payload_of imm } in
    match Loader.place mem ~cursor img with
    | Ok (placed, _) -> placed.Loader.entry
    | Error _ -> Alcotest.fail "placement failed"
  in
  let entry = place 1 in
  check_bool "first image runs" true (run_from cpu entry = Fluxarm.Mc.Svc_taken 0);
  check_int "first image result" 1 (C.get cpu R.R0);
  check_bool "warm" true (run_from cpu entry = Fluxarm.Mc.Svc_taken 0);
  (* reload: same name and sizes, so the image lands at the same entry *)
  let entry' = place 2 in
  check_int "same placement" entry entry';
  check_bool "reloaded image runs" true (run_from cpu entry = Fluxarm.Mc.Svc_taken 0);
  check_int "blit_string invalidated the block" 2 (C.get cpu R.R0)

(* --- MPU reprogramming revoking execute faults the next dispatch --- *)

let grant_v7 mpu ~index ~base ~size perms =
  Mpu_hw.Armv7m_mpu.write_region mpu ~index
    ~rbar:(Mpu_hw.Armv7m_mpu.encode_rbar ~addr:base ~region:index)
    ~rasr:(Mpu_hw.Armv7m_mpu.encode_rasr ~enable:true ~size ~srd:0 ~perms)

let test_mpu_revoke_faults_next_dispatch () =
  let m = Machine.create_arm () in
  let mem = m.Machine.arm_mem and mpu = m.Machine.arm_mpu in
  let cpu = m.Machine.arm_cpu in
  C.set_special_raw cpu R.Control 1 (* unprivileged thread: MPU gates fetches *);
  let base = 0x2000_0000 in
  grant_v7 mpu ~index:0 ~base ~size:4096 Perms.Read_write_execute;
  Mpu_hw.Armv7m_mpu.set_enabled mpu true;
  ignore (T.assemble mem base [ T.Movw (R.R0, 3); T.Svc 9 ]);
  check_bool "runs while executable" true (run_from cpu base = Fluxarm.Mc.Svc_taken 9);
  check_bool "warm dispatch" true (run_from cpu base = Fluxarm.Mc.Svc_taken 9);
  (* revoke execute: the decoded block survives, its stamp must not *)
  grant_v7 mpu ~index:0 ~base ~size:4096 Perms.Read_write_only;
  (match run_from cpu base with
  | exception Memory.Access_fault f ->
    check_bool "execute fault" true (f.Memory.fault_access = Perms.Execute);
    check_int "at the block start" base f.Memory.fault_addr
  | _ -> Alcotest.fail "expected an execute fault on the next dispatch");
  (* re-grant: dispatch works again without re-decoding being observable *)
  grant_v7 mpu ~index:0 ~base ~size:4096 Perms.Read_write_execute;
  check_bool "re-granted" true (run_from cpu base = Fluxarm.Mc.Svc_taken 9)

(* --- blocks never cross a decision-granule boundary --- *)

let test_block_splits_at_granule () =
  let m = Machine.create_arm () in
  let mem = m.Machine.arm_mem and mpu = m.Machine.arm_mpu in
  let cpu = m.Machine.arm_cpu in
  C.set_special_raw cpu R.Control 1;
  let base = 0x2000_0000 in
  (* three adjacent 32-byte RWX regions: the decision granule is 32 bytes,
     far smaller than the straight-line run below *)
  grant_v7 mpu ~index:0 ~base ~size:32 Perms.Read_write_execute;
  grant_v7 mpu ~index:1 ~base:(base + 32) ~size:32 Perms.Read_write_execute;
  grant_v7 mpu ~index:2 ~base:(base + 64) ~size:32 Perms.Read_write_execute;
  Mpu_hw.Armv7m_mpu.set_enabled mpu true;
  let prog = List.init 20 (fun i -> T.Movw (R.R0, i + 1)) @ [ T.Svc 4 ] in
  ignore (T.assemble mem base prog) (* 20 * 4 + 2 = 82 bytes, crosses twice *);
  check_bool "cold run" true (run_from cpu base = Fluxarm.Mc.Svc_taken 4);
  check_int "cold result" 20 (C.get cpu R.R0);
  C.set cpu R.R0 0;
  let c0 = Cycles.read Cycles.global in
  check_bool "warm run" true (run_from cpu base = Fluxarm.Mc.Svc_taken 4);
  let warm_cycles = Cycles.read Cycles.global - c0 in
  check_int "warm result" 20 (C.get cpu R.R0);
  (* the published block at [base] stops at the first granule edge *)
  let ic = C.icache cpu in
  (match I.find_block ic ~gen:(Memory.code_generation mem) base with
  | None -> Alcotest.fail "expected a cached block at base"
  | Some b ->
    check_bool "block fits its granule" true
      (base lsr 5 = (base + b.I.byte_len - 1) lsr 5));
  (* same program, uncached engine: identical cycles *)
  let m2 = Machine.create_arm () in
  let mem2 = m2.Machine.arm_mem and mpu2 = m2.Machine.arm_mpu in
  let cpu2 = m2.Machine.arm_cpu in
  C.set_special_raw cpu2 R.Control 1;
  grant_v7 mpu2 ~index:0 ~base ~size:32 Perms.Read_write_execute;
  grant_v7 mpu2 ~index:1 ~base:(base + 32) ~size:32 Perms.Read_write_execute;
  grant_v7 mpu2 ~index:2 ~base:(base + 64) ~size:32 Perms.Read_write_execute;
  Mpu_hw.Armv7m_mpu.set_enabled mpu2 true;
  ignore (T.assemble mem2 base prog);
  I.set_enabled (C.icache cpu2) false;
  let c1 = Cycles.read Cycles.global in
  check_bool "uncached run" true (run_from cpu2 base = Fluxarm.Mc.Svc_taken 4);
  check_int "split blocks charge identical cycles" warm_cycles
    (Cycles.read Cycles.global - c1)

(* --- randomized lockstep: cached vs uncached engines --- *)

let random_program rng =
  let gprs = R.[ R0; R1; R2; R3; R4 ] in
  let reg () = List.nth gprs (Random.State.int rng (List.length gprs)) in
  let body =
    List.init
      (1 + Random.State.int rng 40)
      (fun _ ->
        match Random.State.int rng 100 with
        | c when c < 25 -> T.Movw (reg (), Random.State.int rng 0x10000)
        | c when c < 35 -> T.Movt (reg (), Random.State.int rng 0x10000)
        | c when c < 45 -> T.Mov_reg (reg (), reg ())
        | c when c < 55 -> T.Addw (reg (), reg (), Random.State.int rng 4096)
        | c when c < 62 -> T.Subw (reg (), reg (), Random.State.int rng 4096)
        | c when c < 72 -> T.Ldr_imm (reg (), R.R6, Random.State.int rng 1024 land lnot 3)
        | c when c < 80 -> T.Str_imm (reg (), R.R6, Random.State.int rng 1024 land lnot 3)
        | c when c < 84 ->
          (* self-modifying store into the code region *)
          T.Str_imm (reg (), R.R7, Random.State.int rng 64 land lnot 3)
        | c when c < 90 -> T.Cmp_lr (reg ())
        | c when c < 96 ->
          T.B_cond ((if Random.State.bool rng then `Eq else `Ne), Random.State.int rng 16)
        | _ -> T.Nop)
  in
  if Random.State.bool rng then body @ [ T.Svc 0 ]
  else
    (* loop until fuel runs out: lr=1 vs r5=0 keeps Z clear *)
    let tail = [ T.Cmp_lr R.R5 ] in
    let bytes =
      List.fold_left (fun a i -> a + T.size_bytes i) 0 (body @ tail)
    in
    body @ tail @ [ T.B_cond (`Ne, (-bytes - 4) / 2) ]

let lockstep_run prog =
  let go cached =
    let mem, cpu = bare () in
    I.set_enabled (C.icache cpu) false;
    ignore (T.assemble mem 0x1000 prog);
    I.set_enabled (C.icache cpu) cached;
    C.set cpu R.R6 (Range.start Layout.app_sram);
    C.set cpu R.R7 0x1000 (* self-modifying stores land here *);
    C.pseudo_ldr_special cpu R.Lr 1;
    let c0 = Cycles.read Cycles.global in
    let stop = run_from cpu 0x1000 in
    let cycles = Cycles.read Cycles.global - c0 in
    let regs = List.map (C.get cpu) R.[ R0; R1; R2; R3; R4; R5; R6; R7 ] in
    (stop, regs, C.get_special cpu R.Pc, C.get_special cpu R.Psr, cycles)
  in
  (go true, go false)

let test_lockstep_fuzz () =
  for seed = 1 to 12 do
    let rng = Random.State.make [| seed; 0x1CAC4E |] in
    let prog = random_program rng in
    let (stop_c, regs_c, pc_c, psr_c, cyc_c), (stop_u, regs_u, pc_u, psr_u, cyc_u) =
      lockstep_run prog
    in
    let name fmt = Printf.sprintf fmt seed in
    check_bool (name "seed %d: same stop") true (stop_c = stop_u);
    check_bool (name "seed %d: same registers") true (regs_c = regs_u);
    check_int (name "seed %d: same pc") pc_u pc_c;
    check_int (name "seed %d: same psr") psr_u psr_c;
    check_int (name "seed %d: same cycles") cyc_u cyc_c
  done

let suite =
  [
    Alcotest.test_case "stores invalidate cached decodes" `Quick test_store_invalidates;
    Alcotest.test_case "loader reload invalidates" `Quick test_loader_reload_invalidates;
    Alcotest.test_case "MPU revoke faults next dispatch" `Quick
      test_mpu_revoke_faults_next_dispatch;
    Alcotest.test_case "blocks split at granule boundaries" `Quick
      test_block_splits_at_granule;
    Alcotest.test_case "lockstep fuzz: cached = uncached" `Quick test_lockstep_fuzz;
  ]
