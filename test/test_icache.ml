(* The Mc decode/block cache. As with the bus micro-TLB, the load-bearing
   property is *invalidation*: a cached decode must die the instant the
   underlying bytes change (stores, loader reloads), and a cached block's
   execute stamp must die the instant the MPU or privilege changes —
   otherwise the cache would execute stale or forbidden code. The lockstep
   round then checks the cache is semantically invisible wholesale:
   registers, stop reason and model cycles identical to the uncached
   engine on randomized programs, including self-modifying ones. *)

open Ticktock
module C = Fluxarm.Cpu
module R = Fluxarm.Regs
module T = Fluxarm.Thumb
module I = Fluxarm.Icache

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let bare () =
  let mem = Memory.create () in
  (mem, C.create mem)

let run_from cpu addr =
  C.set_special_raw cpu R.Pc addr;
  Fluxarm.Mc.run cpu

(* --- stores into a cached block force a re-decode --- *)

let test_store_invalidates () =
  let mem, cpu = bare () in
  ignore (T.assemble mem 0x1000 [ T.Movw (R.R0, 5); T.Svc 0 ]);
  check_bool "first run" true (run_from cpu 0x1000 = Fluxarm.Mc.Svc_taken 0);
  check_int "cold result" 5 (C.get cpu R.R0);
  check_bool "warm run" true (run_from cpu 0x1000 = Fluxarm.Mc.Svc_taken 0);
  check_int "warm result" 5 (C.get cpu R.R0);
  (* overwrite the movw in place through the raw word path (what the
     loader and RAM zeroing use) *)
  (match T.encode (T.Movw (R.R0, 7)) with
  | [ h1; h2 ] -> Memory.write32 mem 0x1000 (h1 lor (h2 lsl 16))
  | _ -> Alcotest.fail "movw should be 32-bit");
  check_bool "run after write32" true (run_from cpu 0x1000 = Fluxarm.Mc.Svc_taken 0);
  check_int "write32 re-decoded" 7 (C.get cpu R.R0);
  (* and through the checked store path (what emulated stores use) *)
  (match T.encode (T.Movw (R.R0, 9)) with
  | [ h1; h2 ] -> Memory.store32 mem 0x1000 (h1 lor (h2 lsl 16))
  | _ -> Alcotest.fail "movw should be 32-bit");
  check_bool "run after store32" true (run_from cpu 0x1000 = Fluxarm.Mc.Svc_taken 0);
  check_int "store32 re-decoded" 9 (C.get cpu R.R0)

(* --- a loader reload of the same flash invalidates cached decodes --- *)

let payload_of imm =
  let hws = List.concat_map T.encode [ T.Movw (R.R0, imm); T.Svc 0 ] in
  let b = Buffer.create 8 in
  List.iter
    (fun h ->
      Buffer.add_char b (Char.chr (h land 0xff));
      Buffer.add_char b (Char.chr ((h lsr 8) land 0xff)))
    hws;
  Buffer.contents b

let test_loader_reload_invalidates () =
  let mem, cpu = bare () in
  let cursor = Range.start Layout.app_flash in
  let place imm =
    let img = { Loader.app_name = "icache"; min_ram = 1024; payload = payload_of imm } in
    match Loader.place mem ~cursor img with
    | Ok (placed, _) -> placed.Loader.entry
    | Error _ -> Alcotest.fail "placement failed"
  in
  let entry = place 1 in
  check_bool "first image runs" true (run_from cpu entry = Fluxarm.Mc.Svc_taken 0);
  check_int "first image result" 1 (C.get cpu R.R0);
  check_bool "warm" true (run_from cpu entry = Fluxarm.Mc.Svc_taken 0);
  (* reload: same name and sizes, so the image lands at the same entry *)
  let entry' = place 2 in
  check_int "same placement" entry entry';
  check_bool "reloaded image runs" true (run_from cpu entry = Fluxarm.Mc.Svc_taken 0);
  check_int "blit_string invalidated the block" 2 (C.get cpu R.R0)

(* --- MPU reprogramming revoking execute faults the next dispatch --- *)

let grant_v7 mpu ~index ~base ~size perms =
  Mpu_hw.Armv7m_mpu.write_region mpu ~index
    ~rbar:(Mpu_hw.Armv7m_mpu.encode_rbar ~addr:base ~region:index)
    ~rasr:(Mpu_hw.Armv7m_mpu.encode_rasr ~enable:true ~size ~srd:0 ~perms)

let test_mpu_revoke_faults_next_dispatch () =
  let m = Machine.create_arm () in
  let mem = m.Machine.arm_mem and mpu = m.Machine.arm_mpu in
  let cpu = m.Machine.arm_cpu in
  C.set_special_raw cpu R.Control 1 (* unprivileged thread: MPU gates fetches *);
  let base = 0x2000_0000 in
  grant_v7 mpu ~index:0 ~base ~size:4096 Perms.Read_write_execute;
  Mpu_hw.Armv7m_mpu.set_enabled mpu true;
  ignore (T.assemble mem base [ T.Movw (R.R0, 3); T.Svc 9 ]);
  check_bool "runs while executable" true (run_from cpu base = Fluxarm.Mc.Svc_taken 9);
  check_bool "warm dispatch" true (run_from cpu base = Fluxarm.Mc.Svc_taken 9);
  (* revoke execute: the decoded block survives, its stamp must not *)
  grant_v7 mpu ~index:0 ~base ~size:4096 Perms.Read_write_only;
  (match run_from cpu base with
  | exception Memory.Access_fault f ->
    check_bool "execute fault" true (f.Memory.fault_access = Perms.Execute);
    check_int "at the block start" base f.Memory.fault_addr
  | _ -> Alcotest.fail "expected an execute fault on the next dispatch");
  (* re-grant: dispatch works again without re-decoding being observable *)
  grant_v7 mpu ~index:0 ~base ~size:4096 Perms.Read_write_execute;
  check_bool "re-granted" true (run_from cpu base = Fluxarm.Mc.Svc_taken 9)

(* --- blocks never cross a decision-granule boundary --- *)

let test_block_splits_at_granule () =
  let m = Machine.create_arm () in
  let mem = m.Machine.arm_mem and mpu = m.Machine.arm_mpu in
  let cpu = m.Machine.arm_cpu in
  C.set_special_raw cpu R.Control 1;
  let base = 0x2000_0000 in
  (* three adjacent 32-byte RWX regions: the decision granule is 32 bytes,
     far smaller than the straight-line run below *)
  grant_v7 mpu ~index:0 ~base ~size:32 Perms.Read_write_execute;
  grant_v7 mpu ~index:1 ~base:(base + 32) ~size:32 Perms.Read_write_execute;
  grant_v7 mpu ~index:2 ~base:(base + 64) ~size:32 Perms.Read_write_execute;
  Mpu_hw.Armv7m_mpu.set_enabled mpu true;
  let prog = List.init 20 (fun i -> T.Movw (R.R0, i + 1)) @ [ T.Svc 4 ] in
  ignore (T.assemble mem base prog) (* 20 * 4 + 2 = 82 bytes, crosses twice *);
  check_bool "cold run" true (run_from cpu base = Fluxarm.Mc.Svc_taken 4);
  check_int "cold result" 20 (C.get cpu R.R0);
  C.set cpu R.R0 0;
  let c0 = Cycles.read Cycles.global in
  check_bool "warm run" true (run_from cpu base = Fluxarm.Mc.Svc_taken 4);
  let warm_cycles = Cycles.read Cycles.global - c0 in
  check_int "warm result" 20 (C.get cpu R.R0);
  (* the published block at [base] stops at the first granule edge *)
  let ic = C.icache cpu in
  (match I.find_block ic ~gen:(Memory.code_generation mem) base with
  | None -> Alcotest.fail "expected a cached block at base"
  | Some b ->
    check_bool "block fits its granule" true
      (base lsr 5 = (base + b.I.byte_len - 1) lsr 5));
  (* same program, uncached engine: identical cycles *)
  let m2 = Machine.create_arm () in
  let mem2 = m2.Machine.arm_mem and mpu2 = m2.Machine.arm_mpu in
  let cpu2 = m2.Machine.arm_cpu in
  C.set_special_raw cpu2 R.Control 1;
  grant_v7 mpu2 ~index:0 ~base ~size:32 Perms.Read_write_execute;
  grant_v7 mpu2 ~index:1 ~base:(base + 32) ~size:32 Perms.Read_write_execute;
  grant_v7 mpu2 ~index:2 ~base:(base + 64) ~size:32 Perms.Read_write_execute;
  Mpu_hw.Armv7m_mpu.set_enabled mpu2 true;
  ignore (T.assemble mem2 base prog);
  I.set_enabled (C.icache cpu2) false;
  let c1 = Cycles.read Cycles.global in
  check_bool "uncached run" true (run_from cpu2 base = Fluxarm.Mc.Svc_taken 4);
  check_int "split blocks charge identical cycles" warm_cycles
    (Cycles.read Cycles.global - c1)

(* --- superblock trace links --- *)

(* Two linkable blocks: A ([movw r0; cmp lr,r5; beq +0] — Z clear, so the
   branch falls through) and its fall-through successor B
   ([movw r1; svc 0]). *)
let pair_prog imm_b =
  [ T.Movw (R.R0, 1); T.Cmp_lr R.R5; T.B_cond (`Eq, 0); T.Movw (R.R1, imm_b); T.Svc 0 ]

let pair_b_addr base prog =
  let rec skip addr = function
    | [] | [ _; _ ] -> addr
    | i :: rest -> skip (addr + T.size_bytes i) rest
  in
  skip base prog

let warm_pair cpu mem base =
  ignore (T.assemble mem base (pair_prog 2));
  C.set_special_raw cpu R.Lr 1 (* lr=1, r5=0: Z stays clear *);
  check_bool "cold run" true (run_from cpu base = Fluxarm.Mc.Svc_taken 0);
  (* first warm run installs the A -> B link, the second follows it *)
  check_bool "warm run" true (run_from cpu base = Fluxarm.Mc.Svc_taken 0);
  check_bool "linked run" true (run_from cpu base = Fluxarm.Mc.Svc_taken 0);
  check_int "warm result" 2 (C.get cpu R.R1)

(* a store into a linked successor must sever the chain: the next trace
   through A must execute B's new bytes, not the linked stale block *)
let test_store_severs_link () =
  let mem, cpu = bare () in
  let ic = C.icache cpu in
  I.set_linking ic true;
  let base = 0x1000 in
  warm_pair cpu mem base;
  let b_addr = pair_b_addr base (pair_prog 2) in
  (match I.find_block ic ~gen:(Memory.code_generation mem) base with
  | None -> Alcotest.fail "expected a cached block at A"
  | Some a -> (
    match a.I.link_next with
    | Some b -> check_int "A linked its fall-through successor" b_addr b.I.start
    | None -> Alcotest.fail "warm trace should have linked A -> B"));
  check_bool "links were followed" true ((I.stats ic).I.link_hits > 0);
  (* overwrite B's movw through the checked store path *)
  (match T.encode (T.Movw (R.R1, 9)) with
  | [ h1; h2 ] -> Memory.store32 mem b_addr (h1 lor (h2 lsl 16))
  | _ -> Alcotest.fail "movw should be 32-bit");
  check_bool "run after store" true (run_from cpu base = Fluxarm.Mc.Svc_taken 0);
  check_int "store severed the chain" 9 (C.get cpu R.R1)

(* Icache.reset must sever links on the old block records too, not just
   empty the tables — anything still holding a block must not be able to
   chain out of it into a dropped cache *)
let test_reset_severs_links () =
  let mem, cpu = bare () in
  let ic = C.icache cpu in
  I.set_linking ic true;
  let base = 0x1000 in
  warm_pair cpu mem base;
  let gen = Memory.code_generation mem in
  let a =
    match I.find_block ic ~gen base with
    | Some a -> a
    | None -> Alcotest.fail "expected a cached block at A"
  in
  (match a.I.link_next with
  | Some _ -> ()
  | None -> Alcotest.fail "warm trace should have linked A -> B");
  I.reset ic;
  (match a.I.link_next with
  | None -> ()
  | Some _ -> Alcotest.fail "reset left a live trace link");
  (match I.find_block ic ~gen base with
  | None -> ()
  | Some _ -> Alcotest.fail "reset left a cached block");
  check_int "reset zeroed link stats" 0 (I.stats ic).I.link_hits;
  check_bool "still runs after reset" true (run_from cpu base = Fluxarm.Mc.Svc_taken 0);
  check_int "rebuilt result" 2 (C.get cpu R.R1)

(* MPU reprogramming mid-loop: revoking execute on a *linked successor*
   must fault at the successor's first instruction — the stale link (built
   under the old MPU generation) must not be followed. *)
let test_mpu_revoke_linked_successor () =
  let m = Machine.create_arm () in
  let mem = m.Machine.arm_mem and mpu = m.Machine.arm_mpu in
  let cpu = m.Machine.arm_cpu in
  let ic = C.icache cpu in
  I.set_linking ic true;
  C.set_special_raw cpu R.Control 1;
  let base = 0x2000_0000 in
  (* two 32-byte granules: straight-line code splits into block A (first
     granule) falling into block B (second granule) *)
  grant_v7 mpu ~index:0 ~base ~size:32 Perms.Read_write_execute;
  grant_v7 mpu ~index:1 ~base:(base + 32) ~size:32 Perms.Read_write_execute;
  Mpu_hw.Armv7m_mpu.set_enabled mpu true;
  let prog = List.init 10 (fun i -> T.Movw (R.R0, i + 1)) @ [ T.Svc 7 ] in
  ignore (T.assemble mem base prog);
  check_bool "cold run" true (run_from cpu base = Fluxarm.Mc.Svc_taken 7);
  check_bool "warm run (installs the link)" true (run_from cpu base = Fluxarm.Mc.Svc_taken 7);
  let s0 = I.stats ic in
  check_bool "linked run" true (run_from cpu base = Fluxarm.Mc.Svc_taken 7);
  check_bool "warm trace followed the A->B link" true
    ((I.stats ic).I.link_hits > s0.I.link_hits);
  (* revoke execute on B's granule only: A still dispatches, the link to B
     must be flushed and the re-install must fault at B *)
  grant_v7 mpu ~index:1 ~base:(base + 32) ~size:32 Perms.Read_write_only;
  let s1 = I.stats ic in
  (match run_from cpu base with
  | exception Memory.Access_fault f ->
    check_bool "execute fault" true (f.Memory.fault_access = Perms.Execute);
    check_int "at the linked successor" (base + 32) f.Memory.fault_addr
  | _ -> Alcotest.fail "expected an execute fault at the linked successor");
  check_bool "stale link was flushed, not followed" true
    ((I.stats ic).I.link_flushes > s1.I.link_flushes);
  (* re-grant: the trace relinks and completes again *)
  grant_v7 mpu ~index:1 ~base:(base + 32) ~size:32 Perms.Read_write_execute;
  check_bool "re-granted" true (run_from cpu base = Fluxarm.Mc.Svc_taken 7);
  check_int "re-linked result" 10 (C.get cpu R.R0)

(* privilege can flip only at isb (the CONTROL commit point), so blocks
   ending in isb terminate the trace and must never link — and the flip
   must behave identically with and without linking *)
let test_privilege_flip_ends_trace () =
  let go linking =
    let mem, cpu = bare () in
    let ic = C.icache cpu in
    I.set_linking ic linking;
    let base = 0x1000 in
    ignore
      (T.assemble mem base
         [
           T.Movw (R.R2, 1);
           T.Msr (R.Control, R.R1) (* r1=1: drop to unprivileged *);
           T.Isb;
           T.Movw (R.R3, 2);
           T.Svc 5;
         ]);
    C.set cpu R.R1 1;
    let c0 = Cycles.read Cycles.global in
    check_bool "cold run" true (run_from cpu base = Fluxarm.Mc.Svc_taken 5);
    check_bool "flip committed" true (not (C.privileged cpu));
    C.set_special_raw cpu R.Control 0 (* re-privilege for the warm run *);
    C.isb cpu;
    check_bool "warm run" true (run_from cpu base = Fluxarm.Mc.Svc_taken 5);
    let cycles = Cycles.read Cycles.global - c0 in
    if linking then begin
      match I.find_block ic ~gen:(Memory.code_generation mem) base with
      | None -> Alcotest.fail "expected a cached block at the isb block"
      | Some b ->
        check_bool "isb block is a trace exit" true (b.I.term = I.Term_exit);
        (match (b.I.link_next, b.I.link_taken) with
        | None, None -> ()
        | _ -> Alcotest.fail "isb block must never link")
    end;
    (C.get cpu R.R2, C.get cpu R.R3, C.privileged cpu, cycles)
  in
  let linked = go true and unlinked = go false in
  check_bool "linked and per-block engines agree across the flip" true (linked = unlinked)

(* the full app suite must be fingerprint-identical between the linked and
   per-block engines: console transcript, tick count, model-visible
   metrics and the exported trace (the arm-mc board is the one
   configuration that executes through Mc) *)
let suite_fingerprint ~linking =
  Verify.Violation.set_enabled false;
  let r = Obs.Recorder.create () in
  let m, k = Boards.make_ticktock_arm_mc ~obs:r () in
  let ic = C.icache m.Machine.arm_cpu in
  I.set_linking ic linking;
  let inst = Boards.Ticktock_arm.instance k in
  ignore (Apps.Difftest.run_suite inst);
  ( inst.Instance.console (),
    inst.Instance.ticks (),
    Obs.Metrics.to_text (Obs.Metrics.model_only (inst.Instance.metrics ())),
    Obs.Chrome.to_json ~name:"sb" r )

let test_suite_lockstep () =
  let con_l, ticks_l, met_l, trace_l = suite_fingerprint ~linking:true in
  let con_u, ticks_u, met_u, trace_u = suite_fingerprint ~linking:false in
  Alcotest.(check string) "console identical" con_u con_l;
  check_int "ticks identical" ticks_u ticks_l;
  Alcotest.(check string) "model metrics identical" met_u met_l;
  Alcotest.(check string) "trace export identical" trace_u trace_l

(* --- randomized lockstep: cached vs uncached engines --- *)

let random_program rng =
  let gprs = R.[ R0; R1; R2; R3; R4 ] in
  let reg () = List.nth gprs (Random.State.int rng (List.length gprs)) in
  let body =
    List.init
      (1 + Random.State.int rng 40)
      (fun _ ->
        match Random.State.int rng 100 with
        | c when c < 25 -> T.Movw (reg (), Random.State.int rng 0x10000)
        | c when c < 35 -> T.Movt (reg (), Random.State.int rng 0x10000)
        | c when c < 45 -> T.Mov_reg (reg (), reg ())
        | c when c < 55 -> T.Addw (reg (), reg (), Random.State.int rng 4096)
        | c when c < 62 -> T.Subw (reg (), reg (), Random.State.int rng 4096)
        | c when c < 72 -> T.Ldr_imm (reg (), R.R6, Random.State.int rng 1024 land lnot 3)
        | c when c < 80 -> T.Str_imm (reg (), R.R6, Random.State.int rng 1024 land lnot 3)
        | c when c < 84 ->
          (* self-modifying store into the code region *)
          T.Str_imm (reg (), R.R7, Random.State.int rng 64 land lnot 3)
        | c when c < 90 -> T.Cmp_lr (reg ())
        | c when c < 96 ->
          T.B_cond ((if Random.State.bool rng then `Eq else `Ne), Random.State.int rng 16)
        | _ -> T.Nop)
  in
  if Random.State.bool rng then body @ [ T.Svc 0 ]
  else
    (* loop until fuel runs out: lr=1 vs r5=0 keeps Z clear *)
    let tail = [ T.Cmp_lr R.R5 ] in
    let bytes =
      List.fold_left (fun a i -> a + T.size_bytes i) 0 (body @ tail)
    in
    body @ tail @ [ T.B_cond (`Ne, (-bytes - 4) / 2) ]

let lockstep_run prog =
  let go ~cached ~linking =
    let mem, cpu = bare () in
    I.set_enabled (C.icache cpu) false;
    ignore (T.assemble mem 0x1000 prog);
    I.set_enabled (C.icache cpu) cached;
    I.set_linking (C.icache cpu) linking;
    C.set cpu R.R6 (Range.start Layout.app_sram);
    C.set cpu R.R7 0x1000 (* self-modifying stores land here *);
    C.pseudo_ldr_special cpu R.Lr 1;
    let c0 = Cycles.read Cycles.global in
    let stop = run_from cpu 0x1000 in
    let cycles = Cycles.read Cycles.global - c0 in
    let regs = List.map (C.get cpu) R.[ R0; R1; R2; R3; R4; R5; R6; R7 ] in
    (stop, regs, C.get_special cpu R.Pc, C.get_special cpu R.Psr, cycles)
  in
  (go ~cached:true ~linking:true, go ~cached:true ~linking:false, go ~cached:false ~linking:false)

let test_lockstep_fuzz () =
  for seed = 1 to 12 do
    let rng = Random.State.make [| seed; 0x1CAC4E |] in
    let prog = random_program rng in
    let (stop_l, regs_l, pc_l, psr_l, cyc_l),
        (stop_c, regs_c, pc_c, psr_c, cyc_c),
        (stop_u, regs_u, pc_u, psr_u, cyc_u) =
      lockstep_run prog
    in
    let name fmt = Printf.sprintf fmt seed in
    check_bool (name "seed %d: same stop") true (stop_c = stop_u && stop_l = stop_u);
    check_bool (name "seed %d: same registers") true (regs_c = regs_u && regs_l = regs_u);
    check_int (name "seed %d: same pc (per-block)") pc_u pc_c;
    check_int (name "seed %d: same pc (superblock)") pc_u pc_l;
    check_int (name "seed %d: same psr (per-block)") psr_u psr_c;
    check_int (name "seed %d: same psr (superblock)") psr_u psr_l;
    check_int (name "seed %d: same cycles (per-block)") cyc_u cyc_c;
    check_int (name "seed %d: same cycles (superblock)") cyc_u cyc_l
  done

let suite =
  [
    Alcotest.test_case "stores invalidate cached decodes" `Quick test_store_invalidates;
    Alcotest.test_case "loader reload invalidates" `Quick test_loader_reload_invalidates;
    Alcotest.test_case "MPU revoke faults next dispatch" `Quick
      test_mpu_revoke_faults_next_dispatch;
    Alcotest.test_case "blocks split at granule boundaries" `Quick
      test_block_splits_at_granule;
    Alcotest.test_case "lockstep fuzz: linked = per-block = uncached" `Quick
      test_lockstep_fuzz;
    Alcotest.test_case "store into linked successor severs chain" `Quick
      test_store_severs_link;
    Alcotest.test_case "reset severs trace links" `Quick test_reset_severs_links;
    Alcotest.test_case "MPU revoke on linked successor faults" `Quick
      test_mpu_revoke_linked_successor;
    Alcotest.test_case "privilege flip (isb) ends traces" `Quick
      test_privilege_flip_ends_trace;
    Alcotest.test_case "app suite lockstep: linked = per-block" `Quick test_suite_lockstep;
  ]
