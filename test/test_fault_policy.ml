(* Fault policies: Stop (default), Restart with budget, Panic. *)

open Ticktock
open Apps.App_dsl
module K = Boards.Ticktock_arm

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let faulty_script =
  let* () = print "about to crash\n" in
  let* _ = load8 (Range.start Layout.kernel_sram) in
  return 0

let good_script =
  let* () = print "healthy run\n" in
  return 0

let create k ?fault_policy ?program_factory script =
  match
    K.create_process k ~name:"fp" ~payload:"fp" ~program:(to_program script) ~min_ram:2048
      ?fault_policy ?program_factory ()
  with
  | Ok p -> p
  | Error e -> Alcotest.failf "create: %a" Kerror.pp e

let test_stop_default () =
  let _, k = Boards.make_ticktock_arm () in
  let p = create k faulty_script in
  K.run k ~max_ticks:100;
  check_bool "faulted and stayed stopped" true
    (match p.Process.state with Process.Faulted _ -> true | _ -> false);
  check_int "no restarts" 0 p.Process.restarts

let test_restart_recovers () =
  let _, k = Boards.make_ticktock_arm () in
  (* first attempt faults; the factory supplies a healthy program after *)
  let attempts = ref 0 in
  let factory () =
    incr attempts;
    to_program good_script
  in
  let p =
    create k
      ~fault_policy:(Process.Restart { max_restarts = 3 })
      ~program_factory:factory faulty_script
  in
  K.run k ~max_ticks:200;
  check_int "restarted once" 1 p.Process.restarts;
  check_bool "second run completed" true (p.Process.state = Process.Exited 0);
  Alcotest.(check string) "output spans both runs" "about to crash\nhealthy run\n"
    (Process.output p)

let test_restart_budget_exhausted () =
  let _, k = Boards.make_ticktock_arm () in
  let factory () = to_program faulty_script in
  let p =
    create k
      ~fault_policy:(Process.Restart { max_restarts = 2 })
      ~program_factory:factory faulty_script
  in
  K.run k ~max_ticks:500;
  check_int "stopped after budget" 2 p.Process.restarts;
  check_bool "finally faulted" true
    (match p.Process.state with Process.Faulted _ -> true | _ -> false)

let test_restart_rezeroes_memory () =
  let _, k = Boards.make_ticktock_arm () in
  (* first run plants a marker then faults; the restarted run must see 0 *)
  let plant =
    let* ms = memory_start in
    let* _ = store8 (ms + 100) 0xAB in
    let* _ = load8 0 in
    return 1
  in
  let probe =
    let* ms = memory_start in
    let* v = load8 (ms + 100) in
    let* () = printf "marker=%d" v in
    return 0
  in
  let p =
    create k
      ~fault_policy:(Process.Restart { max_restarts = 1 })
      ~program_factory:(fun () -> to_program probe)
      plant
  in
  K.run k ~max_ticks:200;
  check_bool "completed" true (p.Process.state = Process.Exited 0);
  Alcotest.(check string) "RAM was zeroed across restart" "marker=0" (Process.output p)

let test_panic_policy () =
  let _, k = Boards.make_ticktock_arm () in
  let _ = create k ~fault_policy:Process.Panic faulty_script in
  match K.run k ~max_ticks:100 with
  | () -> Alcotest.fail "expected kernel panic"
  | exception K.Panic msg -> check_bool "panic names the process" true (String.length msg > 0)

(* runs ~12 healthy slices (200 x 64 cycles against the ~1024-cycle
   quantum), then faults — enough ticks between faults for the kernel's
   decay accounting to forgive the previous one *)
let healthy_then_crash =
  let* () =
    repeat 200 (fun () ->
        let* _ = compute 64 in
        return ())
  in
  let* _ = load8 (Range.start Layout.kernel_sram) in
  return 0

let test_restart_counter_decays () =
  (* span 5: ~30 healthy ticks forgive the single recent fault, so a
     1-restart budget never exhausts within the horizon *)
  let _, k = Boards.make_ticktock_arm ~restart_decay_span:5 () in
  let factory () = to_program healthy_then_crash in
  let p =
    create k
      ~fault_policy:(Process.Restart { max_restarts = 1 })
      ~program_factory:factory healthy_then_crash
  in
  K.run k ~max_ticks:300;
  check_bool "kept restarting past the nominal budget" true (p.Process.restarts >= 3)

let test_restart_no_decay_regression () =
  (* span 0 is the legacy accounting: the same workload exhausts at 1 *)
  let _, k = Boards.make_ticktock_arm () in
  let factory () = to_program healthy_then_crash in
  let p =
    create k
      ~fault_policy:(Process.Restart { max_restarts = 1 })
      ~program_factory:factory healthy_then_crash
  in
  K.run k ~max_ticks:300;
  check_int "exhausted at the budget" 1 p.Process.restarts;
  check_bool "finally faulted" true
    (match p.Process.state with Process.Faulted _ -> true | _ -> false)

let has needle hay =
  let n = String.length needle in
  let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_backoff_schedule () =
  let _, k = Boards.make_ticktock_arm () in
  let factory () = to_program faulty_script in
  let p =
    create k
      ~fault_policy:
        (Process.Restart_backoff
           { max_restarts = 3; base_delay = 4; max_delay = 16; decay_span = 0 })
      ~program_factory:factory faulty_script
  in
  K.run k ~max_ticks:500;
  check_int "all three deferred restarts ran" 3 p.Process.restarts;
  check_bool "finally faulted" true
    (match p.Process.state with Process.Faulted _ -> true | _ -> false);
  let console = K.console_output k in
  (* deterministic exponential schedule: base, 2x, then capped at max *)
  check_bool "first delay = base" true (has "restart scheduled in 4 ticks" console);
  check_bool "second delay doubled" true (has "restart scheduled in 8 ticks" console);
  check_bool "third delay capped" true (has "restart scheduled in 16 ticks" console);
  check_bool "budget exhaustion announced" true (has "restart budget exhausted" console)

let test_watchdog_faults_runaway () =
  let _, k = Boards.make_ticktock_arm ~watchdog:2_000 () in
  let spinner =
    let rec loop () =
      let* _ = compute 64 in
      loop ()
    in
    loop ()
  in
  let p = create k spinner in
  K.run k ~max_ticks:50;
  check_bool "watchdog faulted the spinner" true
    (match p.Process.state with
    | Process.Faulted msg -> has "watchdog" msg
    | _ -> false)

let test_watchdog_spares_syscalling_process () =
  let _, k = Boards.make_ticktock_arm ~watchdog:2_000 () in
  let chatty =
    let* () =
      repeat 20 (fun () ->
          let* _ = compute 64 in
          let* () = print "." in
          return ())
    in
    return 0
  in
  let p = create k chatty in
  K.run k ~max_ticks:100;
  check_bool "syscalls reset the budget" true (p.Process.state = Process.Exited 0)

(* A server dying mid-IPC exchange must wake its waiting client with the
   peer-died error, not leave it wedged in yield. *)
let test_server_death_wakes_ipc_client () =
  let caps, _ = Capsules.Board_set.standard () in
  let _, k = Boards.make_ticktock_arm ~capsules:caps () in
  let load name script =
    match
      K.create_process k ~name ~payload:name ~program:(to_program script) ~min_ram:2048
        ~grant_reserve:1024 ()
    with
    | Ok p -> p
    | Error e -> Alcotest.failf "load %s: %a" name Kerror.pp e
  in
  let server =
    load "svc"
      (let* _ = subscribe ~driver:9 ~upcall_id:2 in
       let* _ = command ~driver:9 ~cmd:0 () in
       (* wake on the client's notify, then crash before replying *)
       let* _ = yield in
       let* _ = load8 (Range.start Layout.kernel_sram) in
       return 0)
  in
  let client =
    load "cli"
      (let* ms = memory_start in
       let* () = write_cstring ms "svc" in
       let* _ = allow_ro ~driver:9 ~addr:ms ~len:4 in
       let* srv = command ~driver:9 ~cmd:1 () in
       let* _ = subscribe ~driver:9 ~upcall_id:3 in
       let* _ = command ~driver:9 ~cmd:2 ~arg1:srv () in
       let* reply = yield in
       let* () =
         if reply = Capsules.Ipc.peer_died then print "peer died" else print "bad wake"
       in
       return 0)
  in
  K.run k ~max_ticks:300;
  check_bool "server faulted" true
    (match server.Process.state with Process.Faulted _ -> true | _ -> false);
  check_bool "client completed, not wedged" true (client.Process.state = Process.Exited 0);
  Alcotest.(check string) "client saw the error upcall" "peer died" (Process.output client)

(* The exit path must fire the same peer-death plumbing as the fault path:
   a server that returns without replying leaves no wedged clients. *)
let test_server_exit_wakes_ipc_client () =
  let caps, _ = Capsules.Board_set.standard () in
  let _, k = Boards.make_ticktock_arm ~capsules:caps () in
  let load name script =
    match
      K.create_process k ~name ~payload:name ~program:(to_program script) ~min_ram:2048
        ~grant_reserve:1024 ()
    with
    | Ok p -> p
    | Error e -> Alcotest.failf "load %s: %a" name Kerror.pp e
  in
  let server =
    load "svc"
      (let* _ = subscribe ~driver:9 ~upcall_id:2 in
       let* _ = command ~driver:9 ~cmd:0 () in
       (* wake on the client's notify, then exit cleanly without replying *)
       let* _ = yield in
       return 0)
  in
  let client =
    load "cli"
      (let* ms = memory_start in
       let* () = write_cstring ms "svc" in
       let* _ = allow_ro ~driver:9 ~addr:ms ~len:4 in
       let* srv = command ~driver:9 ~cmd:1 () in
       let* _ = subscribe ~driver:9 ~upcall_id:3 in
       let* _ = command ~driver:9 ~cmd:2 ~arg1:srv () in
       let* reply = yield in
       let* () =
         if reply = Capsules.Ipc.peer_died then print "peer died" else print "bad wake"
       in
       return 0)
  in
  K.run k ~max_ticks:300;
  check_bool "server exited cleanly" true (server.Process.state = Process.Exited 0);
  check_bool "client completed, not wedged" true (client.Process.state = Process.Exited 0);
  Alcotest.(check string) "client saw the error upcall" "peer died" (Process.output client)

(* A server under Restart_backoff that dies mid-exchange: the waiting
   client is woken with peer-died immediately (not when the restart
   lands), and once the deferred restart re-registers the service the
   client's retry completes against the new incarnation. *)
let test_backoff_restart_mid_wait () =
  let caps, _ = Capsules.Board_set.standard () in
  let _, k = Boards.make_ticktock_arm ~capsules:caps () in
  let serve_and_reply =
    let* _ = subscribe ~driver:9 ~upcall_id:2 in
    let* _ = command ~driver:9 ~cmd:0 () in
    let* cli = yield in
    let* _ = command ~driver:9 ~cmd:3 ~arg1:cli () in
    return 0
  in
  let crash_after_notify =
    let* _ = subscribe ~driver:9 ~upcall_id:2 in
    let* _ = command ~driver:9 ~cmd:0 () in
    let* _ = yield in
    let* _ = load8 (Range.start Layout.kernel_sram) in
    return 0
  in
  let server =
    match
      K.create_process k ~name:"svc" ~payload:"svc"
        ~program:(to_program crash_after_notify)
        ~min_ram:2048 ~grant_reserve:1024
        ~fault_policy:
          (Process.Restart_backoff
             { max_restarts = 3; base_delay = 4; max_delay = 16; decay_span = 0 })
        ~program_factory:(fun () -> to_program serve_and_reply)
        ()
    with
    | Ok p -> p
    | Error e -> Alcotest.failf "load svc: %a" Kerror.pp e
  in
  let client =
    match
      K.create_process k ~name:"cli" ~payload:"cli"
        ~program:
          (to_program
             (let* ms = memory_start in
              let* () = write_cstring ms "svc" in
              let* _ = allow_ro ~driver:9 ~addr:ms ~len:4 in
              let* srv = command ~driver:9 ~cmd:1 () in
              let* _ = subscribe ~driver:9 ~upcall_id:3 in
              let* _ = command ~driver:9 ~cmd:2 ~arg1:srv () in
              let* reply = yield in
              if reply <> Capsules.Ipc.peer_died then
                let* () = print "expected peer death" in
                return 1
              else
                (* rediscover through the backoff window: registration is
                   gone until the deferred restart runs the new program *)
                let rec rediscover tries =
                  if tries = 0 then
                    let* () = print "gave up" in
                    return 1
                  else
                    let* srv = command ~driver:9 ~cmd:1 () in
                    if srv = Userland.failure then
                      let* _ = compute 8 in
                      rediscover (tries - 1)
                    else
                      let* _ = command ~driver:9 ~cmd:2 ~arg1:srv () in
                      let* reply = yield in
                      if reply = Capsules.Ipc.peer_died then
                        let* () = print "died again" in
                        return 1
                      else
                        let* () = print "recovered" in
                        return 0
                in
                rediscover 64))
        ~min_ram:2048 ~grant_reserve:1024 ()
    with
    | Ok p -> p
    | Error e -> Alcotest.failf "load cli: %a" Kerror.pp e
  in
  K.run k ~max_ticks:600;
  check_int "server restarted once" 1 server.Process.restarts;
  check_bool "restarted server completed" true (server.Process.state = Process.Exited 0);
  check_bool "client completed" true (client.Process.state = Process.Exited 0);
  Alcotest.(check string) "client rode out the backoff window" "recovered"
    (Process.output client);
  check_bool "the backoff was real (scheduled restart visible)" true
    (has "restart scheduled in 4 ticks" (K.console_output k))

let test_status_dump_on_fault () =
  let _, k = Boards.make_ticktock_arm () in
  let _ = create k faulty_script in
  K.run k ~max_ticks:100;
  let console = K.console_output k in
  let has needle =
    let n = String.length needle in
    let rec go i = i + n <= String.length console && (String.sub console i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "dump present" true (has "App: fp");
  check_bool "memory map rows present" true (has "app break");
  check_bool "flash rows present" true (has "flash start")

let suite =
  [
    Alcotest.test_case "stop is the default" `Quick test_stop_default;
    Alcotest.test_case "restart recovers" `Quick test_restart_recovers;
    Alcotest.test_case "restart budget exhausted" `Quick test_restart_budget_exhausted;
    Alcotest.test_case "restart re-zeroes RAM" `Quick test_restart_rezeroes_memory;
    Alcotest.test_case "panic policy" `Quick test_panic_policy;
    Alcotest.test_case "status dump on fault" `Quick test_status_dump_on_fault;
    Alcotest.test_case "restart counter decays" `Quick test_restart_counter_decays;
    Alcotest.test_case "no decay without span (regression)" `Quick
      test_restart_no_decay_regression;
    Alcotest.test_case "backoff restart schedule" `Quick test_backoff_schedule;
    Alcotest.test_case "watchdog faults a runaway" `Quick test_watchdog_faults_runaway;
    Alcotest.test_case "watchdog spares syscalling process" `Quick
      test_watchdog_spares_syscalling_process;
    Alcotest.test_case "server death wakes ipc client" `Quick
      test_server_death_wakes_ipc_client;
    Alcotest.test_case "server exit wakes ipc client" `Quick
      test_server_exit_wakes_ipc_client;
    Alcotest.test_case "backoff restart mid-wait" `Quick test_backoff_restart_mid_wait;
  ]
