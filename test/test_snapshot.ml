(* The board snapshot/fork subsystem. The load-bearing properties:

   - roundtrip: run N slices, capture, run M more, restore, rerun M — the
     rerun must be byte-identical (whole-board fingerprint, console, trace,
     model metrics) on every architecture, including mid-run captures with
     live processes;
   - fork isolation: two forks of one pristine snapshot share no writes;
   - restore hazards: a memory restore must invalidate every cached view of
     the old bytes — decoded instruction blocks (icache) and MPU access
     decisions (the bus micro-TLB) — so no stale state survives;
   - the on-disk format: pristine-only save, verified load, and refusal on
     board/arch mismatch. *)

open Ticktock
module C = Fluxarm.Cpu
module R = Fluxarm.Regs
module T = Fluxarm.Thumb

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_fp what a b = check_string what (Fp.to_hex a) (Fp.to_hex b)

(* --- the per-architecture roundtrip rig ---

   Mid-run capture needs the kernel-module API: processes restored in
   place are rebuilt from their [program_factory] by replaying the
   fed-input log, and [Instance.load] does not take a factory. Each rig
   closes over one concrete kernel module and exposes the uniform face the
   roundtrip procedure needs. *)

type rig = {
  rg_tgt : Snapshot.target;
  rg_load : string -> (unit -> int Apps.App_dsl.t) -> unit;
  rg_run : int -> unit;
  rg_console : unit -> string;
  rg_metrics : unit -> string;
  rg_trace : unit -> string;
}

let model_metrics (inst : Instance.t) =
  Obs.Metrics.to_text (Obs.Metrics.model_only (inst.Instance.metrics ()))

let rig_ticktock_arm () =
  let r = Obs.Recorder.create () in
  let m, k = Boards.make_ticktock_arm ~obs:r () in
  let module K = Boards.Ticktock_arm in
  let tgt =
    Boards.target ~arch:"armv7m" ~board:"ticktock-arm" ~mem:m.Machine.arm_mem
      ~devices:(Boards.arm_components m)
      ~kernel:
        (Boards.comp "kernel" ~capture:K.capture ~restore:K.restore ~fingerprint:K.fingerprint
           k)
      ~procs:(fun () -> List.length (K.processes k))
  in
  {
    rg_tgt = tgt;
    rg_load =
      (fun name script ->
        match
          K.create_process k ~name ~payload:name
            ~program:(Apps.App_dsl.to_program (script ()))
            ~min_ram:2048 ~grant_reserve:1024 ~heap_headroom:2048
            ~program_factory:(fun () -> Apps.App_dsl.to_program (script ()))
            ()
        with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "%s: load %s: %a" "ticktock-arm" name Kerror.pp e);
    rg_run = (fun n -> K.run k ~max_ticks:n);
    rg_console = (fun () -> K.console_output k);
    rg_metrics = (fun () -> model_metrics (K.instance k));
    rg_trace = (fun () -> Obs.Recorder.to_string r);
  }

let rig_ticktock_arm_v8 () =
  let r = Obs.Recorder.create () in
  let m, k = Boards.make_ticktock_arm_v8 ~obs:r () in
  let module K = Boards.Ticktock_arm_v8 in
  let tgt =
    Boards.target ~arch:"armv8m" ~board:"ticktock-arm-v8" ~mem:m.Machine.v8_mem
      ~devices:(Boards.v8_components m)
      ~kernel:
        (Boards.comp "kernel" ~capture:K.capture ~restore:K.restore ~fingerprint:K.fingerprint
           k)
      ~procs:(fun () -> List.length (K.processes k))
  in
  {
    rg_tgt = tgt;
    rg_load =
      (fun name script ->
        match
          K.create_process k ~name ~payload:name
            ~program:(Apps.App_dsl.to_program (script ()))
            ~min_ram:2048 ~grant_reserve:1024 ~heap_headroom:2048
            ~program_factory:(fun () -> Apps.App_dsl.to_program (script ()))
            ()
        with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "%s: load %s: %a" "ticktock-arm-v8" name Kerror.pp e);
    rg_run = (fun n -> K.run k ~max_ticks:n);
    rg_console = (fun () -> K.console_output k);
    rg_metrics = (fun () -> model_metrics (K.instance k));
    rg_trace = (fun () -> Obs.Recorder.to_string r);
  }

let rig_ticktock_e310 () =
  let r = Obs.Recorder.create () in
  let m, k = Boards.make_ticktock_e310 ~obs:r () in
  let module K = Boards.Ticktock_e310 in
  let tgt =
    Boards.target ~arch:"rv32-pmp" ~board:"ticktock-e310" ~mem:m.Machine.rv_mem
      ~devices:(Boards.rv_components m)
      ~kernel:
        (Boards.comp "kernel" ~capture:K.capture ~restore:K.restore ~fingerprint:K.fingerprint
           k)
      ~procs:(fun () -> List.length (K.processes k))
  in
  {
    rg_tgt = tgt;
    rg_load =
      (fun name script ->
        match
          K.create_process k ~name ~payload:name
            ~program:(Apps.App_dsl.to_program (script ()))
            ~min_ram:2048 ~grant_reserve:1024 ~heap_headroom:2048
            ~program_factory:(fun () -> Apps.App_dsl.to_program (script ()))
            ()
        with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "%s: load %s: %a" "ticktock-e310" name Kerror.pp e);
    rg_run = (fun n -> K.run k ~max_ticks:n);
    rg_console = (fun () -> K.console_output k);
    rg_metrics = (fun () -> model_metrics (K.instance k));
    rg_trace = (fun () -> Obs.Recorder.to_string r);
  }

let witness_script () =
  let open Apps.App_dsl in
  let* () = print "w:" in
  let* () =
    repeat 25 (fun () ->
        let* _ = yield in
        print ".")
  in
  return 0

(* Run N slices, capture mid-run (live processes), run M more, restore,
   rerun the same M — every observable must be byte-identical. *)
let roundtrip rig =
  Verify.Violation.with_enabled true (fun () ->
      rig.rg_load "witness" witness_script;
      rig.rg_load "fuzz" (fun () -> Apps.Fuzz.random_script ~seed:7 ~steps:400);
      rig.rg_run 2;
      let snap = Snapshot.capture rig.rg_tgt in
      check_fp "live fingerprint = captured fingerprint"
        (Snapshot.captured_fingerprint snap)
        (Snapshot.fingerprint rig.rg_tgt);
      rig.rg_run 40;
      let fp1 = Snapshot.fingerprint rig.rg_tgt in
      let con1 = rig.rg_console () in
      let met1 = rig.rg_metrics () in
      let tr1 = rig.rg_trace () in
      check_bool "the extra slices changed the board" true
        (fp1 <> Snapshot.captured_fingerprint snap);
      Snapshot.restore rig.rg_tgt snap;
      check_fp "restore returns to the capture point"
        (Snapshot.captured_fingerprint snap)
        (Snapshot.fingerprint rig.rg_tgt);
      rig.rg_run 40;
      check_fp "rerun: whole-board fingerprint" fp1 (Snapshot.fingerprint rig.rg_tgt);
      check_string "rerun: console" con1 (rig.rg_console ());
      check_string "rerun: model metrics" met1 (rig.rg_metrics ());
      check_string "rerun: trace" tr1 (rig.rg_trace ()))

let test_roundtrip_arm () = roundtrip (rig_ticktock_arm ())
let test_roundtrip_arm_v8 () = roundtrip (rig_ticktock_arm_v8 ())
let test_roundtrip_e310 () = roundtrip (rig_ticktock_e310 ())

(* --- fork isolation: two forks of one pristine snapshot share nothing --- *)

let print_app text =
  let open Apps.App_dsl in
  let* () = print text in
  return 0

let fork_round (k : Instance.t) text =
  let pid =
    match
      k.Instance.load ~name:"forked" ~payload:"forked"
        ~program:(Apps.App_dsl.to_program (print_app text))
        ~min_ram:2048 ~grant_reserve:1024 ~heap_headroom:1024
    with
    | Ok pid -> pid
    | Error e -> Alcotest.failf "fork load: %a" Kerror.pp e
  in
  k.Instance.run ~max_ticks:50;
  (pid, Option.value ~default:"" (k.Instance.proc_output pid))

let test_fork_isolation () =
  let k = Boards.instance_ticktock_arm () in
  let tgt = Option.get k.Instance.snap_target in
  let snap = Snapshot.capture tgt in
  let fp0 = Snapshot.captured_fingerprint snap in
  let pid_a, out_a = fork_round k "fork-a-was-here" in
  check_bool "fork A dirtied the board" true (Snapshot.fingerprint tgt <> fp0);
  Snapshot.restore tgt snap;
  check_fp "restore is pristine again" fp0 (Snapshot.fingerprint tgt);
  let pid_b, out_b = fork_round k "fork-b-instead" in
  check_int "forks allocate the same pid" pid_a pid_b;
  check_string "fork A saw only its own write" "fork-a-was-here" out_a;
  check_string "fork B saw only its own write" "fork-b-instead" out_b

(* --- restore hazards ---

   A memory restore rewrites bytes behind every cache's back; the
   [code_generation] bump and decision-cache flush are what keep the
   decoded-block cache and the bus micro-TLB from serving stale state. *)

let run_from cpu addr =
  C.set_special_raw cpu R.Pc addr;
  Fluxarm.Mc.run cpu

let patch_movw mem imm =
  match T.encode (T.Movw (R.R0, imm)) with
  | [ h1; h2 ] -> Memory.write32 mem 0x1000 (h1 lor (h2 lsl 16))
  | _ -> Alcotest.fail "movw should be 32-bit"

let test_restore_invalidates_decodes () =
  let mem = Memory.create () in
  let cpu = C.create mem in
  ignore (T.assemble mem 0x1000 [ T.Movw (R.R0, 5); T.Svc 0 ]);
  check_bool "v1 runs" true (run_from cpu 0x1000 = Fluxarm.Mc.Svc_taken 0);
  check_int "v1 result" 5 (C.get cpu R.R0);
  let snap = Memory.capture mem in
  let gen0 = Memory.code_generation mem in
  patch_movw mem 7;
  check_bool "v2 runs" true (run_from cpu 0x1000 = Fluxarm.Mc.Svc_taken 0);
  check_int "v2 decoded and cached" 7 (C.get cpu R.R0);
  Memory.restore mem snap;
  check_bool "restore bumps the code generation" true (Memory.code_generation mem > gen0);
  (* the bytes are v1 again; a stale cached v2 block must not run *)
  check_bool "restored code runs" true (run_from cpu 0x1000 = Fluxarm.Mc.Svc_taken 0);
  check_int "restore forced a re-decode" 5 (C.get cpu R.R0)

(* Trace links are the third cached view of restored bytes: capture
   mid-hot-loop with a live A -> B superblock link, patch B, run (the
   patch severs and re-decodes), then restore — the next trace must
   re-decode B's restored bytes, never follow a link into the stale
   block. Two post-restore runs must also replay identically (the fork
   admissibility condition, with superblocks explicitly on). *)
let test_restore_severs_trace_links () =
  let mem = Memory.create () in
  let cpu = C.create mem in
  let ic = C.icache cpu in
  Fluxarm.Icache.set_linking ic true;
  (* A: [movw r0; cmp lr,r5; beq +0] falls into B: [movw r1; svc 0] *)
  ignore
    (T.assemble mem 0x1000
       [ T.Movw (R.R0, 1); T.Cmp_lr R.R5; T.B_cond (`Eq, 0); T.Movw (R.R1, 2); T.Svc 0 ]);
  C.set_special_raw cpu R.Lr 1 (* Z clear: beq falls through *);
  (* build, install the A -> B link, then follow it *)
  for _ = 1 to 3 do
    check_bool "hot loop runs" true (run_from cpu 0x1000 = Fluxarm.Mc.Svc_taken 0)
  done;
  check_bool "links are live at capture" true
    ((Fluxarm.Icache.stats ic).Fluxarm.Icache.link_hits > 0);
  let snap = Memory.capture mem in
  let patch_b imm =
    match T.encode (T.Movw (R.R1, imm)) with
    | [ h1; h2 ] -> Memory.write32 mem 0x1008 (h1 lor (h2 lsl 16))
    | _ -> Alcotest.fail "movw should be 32-bit"
  in
  patch_b 9;
  check_bool "patched loop runs" true (run_from cpu 0x1000 = Fluxarm.Mc.Svc_taken 0);
  check_int "patched B executed" 9 (C.get cpu R.R1);
  Memory.restore mem snap;
  let c0 = Cycles.read Cycles.global in
  check_bool "restored loop runs" true (run_from cpu 0x1000 = Fluxarm.Mc.Svc_taken 0);
  let cyc_a = Cycles.read Cycles.global - c0 in
  check_int "no stale link survived the restore" 2 (C.get cpu R.R1);
  (* a second fork off the same snapshot replays identically *)
  Memory.restore mem snap;
  let c1 = Cycles.read Cycles.global in
  check_bool "second fork runs" true (run_from cpu 0x1000 = Fluxarm.Mc.Svc_taken 0);
  check_int "fork replay is cycle-identical" cyc_a (Cycles.read Cycles.global - c1);
  check_int "fork replay result identical" 2 (C.get cpu R.R1)

let test_restore_flushes_decision_cache () =
  let m = Machine.create_arm () in
  let mem = m.Machine.arm_mem and mpu = m.Machine.arm_mpu in
  let base = 0x2000_0000 in
  Mpu_hw.Armv7m_mpu.write_region mpu ~index:0
    ~rbar:(Mpu_hw.Armv7m_mpu.encode_rbar ~addr:base ~region:0)
    ~rasr:
      (Mpu_hw.Armv7m_mpu.encode_rasr ~enable:true ~size:4096 ~srd:0
         ~perms:Perms.Read_write_execute);
  Mpu_hw.Armv7m_mpu.set_enabled mpu true;
  C.set_special_raw m.Machine.arm_cpu R.Control 1;
  Memory.set_checker mem
    (Some
       (Mpu_hw.Armv7m_mpu.checker mpu ~cpu_privileged:(fun () ->
            C.privileged m.Machine.arm_cpu)));
  ignore (Memory.load32 mem base);
  let snap = Memory.capture mem in
  Memory.reset_cache_stats mem;
  ignore (Memory.load32 mem base);
  ignore (Memory.load32 mem base);
  let hits, _ = Memory.cache_stats mem in
  check_bool "warm loads hit the decision cache" true (hits >= 1);
  Memory.restore mem snap;
  Memory.reset_cache_stats mem;
  ignore (Memory.load32 mem base);
  let hits', misses' = Memory.cache_stats mem in
  check_int "no stale decision survives the restore" 0 hits';
  check_bool "the first post-restore access re-asks the MPU" true (misses' >= 1)

(* --- the on-disk format --- *)

let with_temp_snapshot f =
  let path = Filename.temp_file "ticksnap" ".snap" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_file_roundtrip () =
  with_temp_snapshot (fun path ->
      let k = Boards.instance_ticktock_arm () in
      let tgt = Option.get k.Instance.snap_target in
      let fp0 = Memory.fingerprint tgt.Snapshot.tg_mem in
      Snapshot.save tgt path;
      let header, _pages = Snapshot.describe path in
      check_int "version" 1 header.Snapshot.hd_version;
      check_string "arch" "armv7m" header.Snapshot.hd_arch;
      check_string "board" "ticktock-arm" header.Snapshot.hd_board;
      check_fp "header memory fingerprint" fp0 header.Snapshot.hd_mem_fp;
      (* load onto a freshly-booted identical board *)
      let k' = Boards.instance_ticktock_arm () in
      let tgt' = Option.get k'.Instance.snap_target in
      Snapshot.load tgt' path;
      check_fp "restored memory fingerprint" fp0 (Memory.fingerprint tgt'.Snapshot.tg_mem);
      (* ... and the loaded board still runs the suite normally *)
      let _pid, out = fork_round k' "alive-after-load" in
      check_string "board is functional after load" "alive-after-load" out)

let test_file_refusals () =
  with_temp_snapshot (fun path ->
      let k = Boards.instance_ticktock_arm () in
      let tgt = Option.get k.Instance.snap_target in
      Snapshot.save tgt path;
      (* wrong board entirely *)
      let rv = Boards.instance_ticktock_e310 () in
      let rv_tgt = Option.get rv.Instance.snap_target in
      (match Snapshot.load rv_tgt path with
      | exception Invalid_argument msg ->
        check_bool "mismatch names both sides" true
          (String.length msg > 0 && String.index_opt msg 'a' <> None)
      | () -> Alcotest.fail "expected load to refuse an armv7m snapshot on rv32-pmp");
      (* non-pristine boards must refuse to save *)
      let _pid, _out = fork_round k "dirty" in
      match Snapshot.save tgt path with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "expected save to refuse a board with live processes")

let suite =
  [
    Alcotest.test_case "roundtrip: ticktock-arm (v7)" `Quick test_roundtrip_arm;
    Alcotest.test_case "roundtrip: ticktock-arm-v8" `Quick test_roundtrip_arm_v8;
    Alcotest.test_case "roundtrip: ticktock-e310 (pmp)" `Quick test_roundtrip_e310;
    Alcotest.test_case "fork isolation" `Quick test_fork_isolation;
    Alcotest.test_case "restore invalidates cached decodes" `Quick
      test_restore_invalidates_decodes;
    Alcotest.test_case "restore severs trace links" `Quick test_restore_severs_trace_links;
    Alcotest.test_case "restore flushes the decision cache" `Quick
      test_restore_flushes_decision_cache;
    Alcotest.test_case "snapshot file roundtrip" `Quick test_file_roundtrip;
    Alcotest.test_case "snapshot file refusals" `Quick test_file_refusals;
  ]
