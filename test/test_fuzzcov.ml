(* The coverage-guided fuzzer. The load-bearing properties:

   - the icache coverage map: bucket classification follows the
     power-of-two ladder, reset really zeroes, and the note stream is
     identical on the per-block and superblock engines (the two engines
     dispatch the same pc sequence — PR 6's invariant — so the bitmap
     cannot depend on TICKTOCK_SUPERBLOCK);
   - host-flag invisibility: switching coverage on changes nothing the
     model can see — console output and model-only metrics are
     byte-identical with the map on or off;
   - campaign determinism: the report is byte-identical across
     TICKTOCK_JOBS settings and across a kill (stop_after) / resume
     split through the store;
   - triage: every crash class the engine can emit maps into the
     [Verify.Taxonomy], and a crasher bundle round-trips through its
     file format and replays to the same (class, site). *)

open Ticktock

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- the coverage map itself --- *)

let test_cov_classes () =
  let ic = Fluxarm.Icache.create () in
  check_bool "coverage starts off" false (Fluxarm.Icache.coverage ic);
  Fluxarm.Icache.cov_note ic 0x100;
  check_int "note with coverage off is a no-op" 0
    (Array.length (Fluxarm.Icache.cov_classified ic));
  Fluxarm.Icache.set_coverage ic true;
  (* hit one pc n times; its block slot must land in class (bucket n) *)
  let class_of n =
    Fluxarm.Icache.cov_reset ic;
    for _ = 1 to n do
      Fluxarm.Icache.cov_note ic 0x100
    done;
    let blocks =
      Fluxarm.Icache.cov_classified ic |> Array.to_list
      |> List.filter (fun (s, _) -> s < Fluxarm.Icache.cov_slots)
    in
    check_int "one pc lights exactly one block slot" 1 (List.length blocks);
    snd (List.hd blocks)
  in
  List.iter
    (fun (n, cls) -> check_int (Printf.sprintf "%d hits -> class %d" n cls) cls (class_of n))
    [ (1, 1); (2, 2); (3, 4); (4, 8); (7, 8); (8, 16); (16, 32); (32, 64); (63, 64);
      (64, 128); (127, 128); (128, 256); (300, 256) ];
  Fluxarm.Icache.cov_reset ic;
  check_int "reset zeroes the map" 0 (Array.length (Fluxarm.Icache.cov_classified ic));
  Fluxarm.Icache.set_coverage ic false;
  check_bool "disable drops the map" false (Fluxarm.Icache.coverage ic)

let test_cov_edges () =
  let ic = Fluxarm.Icache.create () in
  Fluxarm.Icache.set_coverage ic true;
  (* A->B and B->A must be distinct edge slots (the prev lsr 1 trick) *)
  Fluxarm.Icache.cov_note ic 0x100;
  Fluxarm.Icache.cov_note ic 0x200;
  let ab = Fluxarm.Icache.cov_classified ic in
  Fluxarm.Icache.cov_reset ic;
  Fluxarm.Icache.cov_note ic 0x200;
  Fluxarm.Icache.cov_note ic 0x100;
  let ba = Fluxarm.Icache.cov_classified ic in
  check_bool "A->B and B->A light different bitmaps" true (ab <> ba);
  let cc = Fluxarm.Icache.cov_counts ic in
  check_int "two block hits counted" 2 cc.Fluxarm.Icache.cc_block_hits;
  check_int "two edges counted" 2 cc.Fluxarm.Icache.cc_edge_hits

(* --- one genome, one board: the exec fixture --- *)

let some_genome =
  { Fuzzcov.Input.in_ticks = 1500; in_ops = Array.init 40 (fun i -> (i * 7919) + 3) }

let run_genome ?(linking = None) board g =
  let k = Fuzzcov.Engine.make_board board in
  (match (linking, k.Instance.icache ()) with
  | Some l, Some ic -> Fluxarm.Icache.set_linking ic l
  | _ -> ());
  let r =
    Verify.Violation.with_enabled
      (Fuzzcov.Engine.contracts_for board)
      (fun () -> Fuzzcov.Engine.run_input k g)
  in
  (k, r)

let test_bitmap_superblock_invariant () =
  (* same genome, superblock engine forced on vs off: dispatch streams are
     identical (PR 6), so the classified bitmap must be too *)
  let _, on_ = run_genome ~linking:(Some true) "ticktock-arm-mc" some_genome in
  let _, off = run_genome ~linking:(Some false) "ticktock-arm-mc" some_genome in
  check_bool "bitmaps identical across superblock on/off" true
    (on_.Fuzzcov.Engine.ex_cov = off.Fuzzcov.Engine.ex_cov);
  check_int "hit totals identical too" on_.Fuzzcov.Engine.ex_hits off.Fuzzcov.Engine.ex_hits;
  check_bool "the genome actually lit something" true
    (Array.length on_.Fuzzcov.Engine.ex_cov > 0)

let test_coverage_model_invisible () =
  (* the same input with the coverage map on vs never touched: everything
     model-visible — console bytes and model-only metrics — is identical *)
  let with_cov, r_on = run_genome "ticktock-arm-mc" some_genome in
  let bare = Fuzzcov.Engine.make_board "ticktock-arm-mc" in
  let load name payload program =
    bare.Instance.load ~name ~payload ~program ~min_ram:2048 ~grant_reserve:1024
      ~heap_headroom:2048
    |> Result.get_ok |> ignore
  in
  load "witness" "w" (Apps.App_dsl.to_program Apps.Fuzz.witness_script);
  load "gen" "g" (Apps.App_dsl.to_program (Fuzzcov.Input.script some_genome));
  Verify.Violation.with_enabled true (fun () ->
      try bare.Instance.run ~max_ticks:some_genome.Fuzzcov.Input.in_ticks with
      | Tock_cortexm_mpu.Kernel_panic _ | Verify.Violation.Violation _ -> ());
  check_bool "coverage map was live on the instrumented run" true
    (r_on.Fuzzcov.Engine.ex_hits > 0);
  check_string "console byte-identical with coverage on"
    (bare.Instance.console ()) (with_cov.Instance.console ());
  check_string "model-only metrics byte-identical with coverage on"
    (Obs.Metrics.to_text (Obs.Metrics.model_only (bare.Instance.metrics ())))
    (Obs.Metrics.to_text (Obs.Metrics.model_only (with_cov.Instance.metrics ())))

(* --- campaign determinism --- *)

let small_spec = { Fuzzcov.Engine.default_spec with Fuzzcov.Engine.fc_gens = 6 }

let test_campaign_jobs_determinism () =
  let r1 = Fuzzcov.Engine.run ~jobs:1 small_spec in
  let r3 = Fuzzcov.Engine.run ~jobs:3 small_spec in
  check_bool "campaign completed" true r1.Fuzzcov.Engine.fz_complete;
  check_string "report byte-identical jobs 1 vs 3" r1.Fuzzcov.Engine.fz_report
    r3.Fuzzcov.Engine.fz_report;
  check_bool "the run was actually guided (corpus grew)" true
    (r1.Fuzzcov.Engine.fz_corpus <> []);
  check_bool "coverage was live (buckets lit)" true (r1.Fuzzcov.Engine.fz_bits > 0)

let with_tmp_store f =
  let path = Filename.temp_file "fuzzcov" ".store" in
  Sys.remove path;
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_campaign_kill_resume () =
  with_tmp_store (fun path ->
      let whole = Fuzzcov.Engine.run small_spec in
      let killed = Fuzzcov.Engine.run ~store:path ~stop_after:3 small_spec in
      check_bool "killed run is incomplete" false killed.Fuzzcov.Engine.fz_complete;
      check_int "killed run executed the budget" 3 killed.Fuzzcov.Engine.fz_ran_gens;
      let resumed = Fuzzcov.Engine.run ~store:path ~resume:true small_spec in
      check_bool "resumed run completes" true resumed.Fuzzcov.Engine.fz_complete;
      check_int "resume recovered the committed generations" 3
        resumed.Fuzzcov.Engine.fz_resumed_gens;
      check_int "resume executed only the rest" 3 resumed.Fuzzcov.Engine.fz_ran_gens;
      check_string "report byte-identical to the uninterrupted run"
        whole.Fuzzcov.Engine.fz_report resumed.Fuzzcov.Engine.fz_report)

let test_store_spec_mismatch () =
  with_tmp_store (fun path ->
      let _ = Fuzzcov.Engine.run ~store:path ~stop_after:1 small_spec in
      let other = { small_spec with Fuzzcov.Engine.fc_seed = 99 } in
      check_bool "resume refuses a different spec" true
        (match Fuzzcov.Engine.run ~store:path ~resume:true other with
        | _ -> false
        | exception Fleet.Store.Refused _ -> true))

(* --- triage: crash classes against the taxonomy --- *)

let test_taxonomy_total () =
  (* name/of_name round-trips over the whole taxonomy *)
  List.iter
    (fun c ->
      match Verify.Taxonomy.of_name (Verify.Taxonomy.name c) with
      | Some c' -> check_bool (Verify.Taxonomy.name c ^ " round-trips") true (c = c')
      | None -> Alcotest.fail "taxonomy name does not round-trip")
    Verify.Taxonomy.all;
  (* representative real contract sites classify into each non-synthetic class *)
  let site_of = Verify.Taxonomy.class_of_site in
  check_bool "region sites are spatial" true
    (site_of "CortexMRegion.create: start alignment" = Verify.Taxonomy.Spatial_isolation);
  check_bool "v8 sites are spatial" true
    (site_of "ARMv8MRegion.limit" = Verify.Taxonomy.Spatial_isolation);
  check_bool "allocator sites are memory management" true
    (site_of "AppMemoryAllocator.brk" = Verify.Taxonomy.Memory_management);
  check_bool "switch sites are context switch" true
    (site_of "mc switch_to_user_part1: thread privileged" = Verify.Taxonomy.Context_switch);
  check_bool "dma sites are dma isolation" true
    (site_of "DmaBuffer.read" = Verify.Taxonomy.Dma_isolation);
  check_bool "lemma sites are arithmetic" true
    (site_of "lemma_pow2_octet" = Verify.Taxonomy.Arithmetic_lemma);
  check_bool "unknown sites fall through to Other" true
    (site_of "weird new subsystem" = Verify.Taxonomy.Other)

let test_engine_crash_classes_in_taxonomy () =
  (* every crash the engine can construct carries a class the taxonomy
     names — the report/bundle formats depend on it *)
  let classes =
    [
      Verify.Taxonomy.class_of_site "CortexMRegion.overlap" (* a Violation *);
      Verify.Taxonomy.Kernel_panic (* Tock_cortexm_mpu.Kernel_panic *);
      Verify.Taxonomy.Witness_corruption (* silent witness corruption *);
    ]
  in
  List.iter
    (fun c ->
      check_bool "engine crash class is in the taxonomy" true (List.mem c Verify.Taxonomy.all);
      check_bool "and has a parseable name" true
        (Verify.Taxonomy.of_name (Verify.Taxonomy.name c) = Some c))
    classes

let find_crasher () =
  (* the §2.2 wild-brk panic: upstream Tock crashes under the fuzzer fast *)
  let spec =
    {
      Fuzzcov.Engine.default_spec with
      Fuzzcov.Engine.fc_board = "tock-arm-upstream";
      fc_gens = 8;
    }
  in
  let r = Fuzzcov.Engine.run spec in
  match r.Fuzzcov.Engine.fz_crashers with
  | c :: _ -> c
  | [] -> Alcotest.fail "no crasher found on upstream Tock in 8 generations"

let test_crasher_and_bundle_roundtrip () =
  let c = find_crasher () in
  check_bool "crasher class is in the taxonomy" true
    (List.mem c.Fuzzcov.Engine.cr_class Verify.Taxonomy.all);
  let b = Fuzzcov.Engine.bundle_of_crasher ~board:"tock-arm-upstream" c in
  with_tmp_store (fun path ->
      Fuzzcov.Engine.write_bundle path b;
      match Fuzzcov.Engine.read_bundle path with
      | None -> Alcotest.fail "bundle does not round-trip"
      | Some b' ->
        check_bool "bundle round-trips" true (b = b');
        let reproduced, observed = Fuzzcov.Engine.replay b' in
        check_bool "crasher replays to the same (class, site)" true reproduced;
        check_bool "replay observed a crash" true (observed <> None))

(* --- genome wire format --- *)

let test_input_roundtrip () =
  let enc = Fuzzcov.Input.encode some_genome in
  check_bool "encoding is one whitespace-free token" false
    (String.contains enc ' ' || String.contains enc '\n');
  (match Fuzzcov.Input.decode enc with
  | Some g -> check_bool "genome round-trips" true (g = some_genome)
  | None -> Alcotest.fail "genome does not decode");
  check_bool "garbage is rejected" true (Fuzzcov.Input.decode "not-a-genome" = None);
  check_bool "empty op list is rejected" true (Fuzzcov.Input.decode "100:" = None)

let suite =
  [
    Alcotest.test_case "cov: count classes" `Quick test_cov_classes;
    Alcotest.test_case "cov: edge direction" `Quick test_cov_edges;
    Alcotest.test_case "bitmap invariant across superblock" `Quick
      test_bitmap_superblock_invariant;
    Alcotest.test_case "coverage is model-invisible" `Quick test_coverage_model_invisible;
    Alcotest.test_case "campaign: jobs determinism" `Quick test_campaign_jobs_determinism;
    Alcotest.test_case "campaign: kill/resume" `Quick test_campaign_kill_resume;
    Alcotest.test_case "store: spec mismatch refused" `Quick test_store_spec_mismatch;
    Alcotest.test_case "taxonomy is total" `Quick test_taxonomy_total;
    Alcotest.test_case "crash classes are in the taxonomy" `Quick
      test_engine_crash_classes_in_taxonomy;
    Alcotest.test_case "crasher bundle round-trip and replay" `Quick
      test_crasher_and_bundle_roundtrip;
    Alcotest.test_case "genome wire format" `Quick test_input_roundtrip;
  ]
