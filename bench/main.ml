(* The evaluation harness: regenerates every table and figure from the
   paper's evaluation (§6), plus the supporting bug matrix.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- fig11   # one experiment
     experiments: fig10 fig11 fig12 mem difftest bugs bechamel

   Absolute numbers live in our simulator's units (deterministic model
   cycles, OCaml wall time); EXPERIMENTS.md records them against the
   paper's. The *shape* — who wins, by roughly what factor, where the
   regressions are — is the reproduction target. *)

open Ticktock

let line = String.make 78 '-'

let header title paper =
  Printf.printf "\n%s\n%s\n(paper: %s)\n%s\n" line title paper line

(* ------------------------------------------------------------------ *)
(* Figure 11: average CPU cycles for process tasks.                    *)

let fig11_methods =
  [
    "allocate_grant";
    "brk";
    "build_readonly_buffer";
    "build_readwrite_buffer";
    "create";
    "setup_mpu";
  ]

let paper_fig11 =
  [
    ("allocate_grant", (641.00, 1290.32, -50.32));
    ("brk", (844.51, 1078.66, -21.71));
    ("build_readonly_buffer", (115.71, 144.64, -20.00));
    ("build_readwrite_buffer", (78.00, 118.22, -34.02));
    ("create", (638_544.67, 634_137.40, +0.70));
    ("setup_mpu", (97.86, 90.55, +8.08));
  ]

(* Like the paper: the average over three runs of the 21-test suite. *)
let suite_hooks make =
  let merged = Hooks.create () in
  for _ = 1 to 3 do
    let k = make () in
    ignore (Apps.Difftest.run_suite k);
    Hooks.merge ~into:merged (k.Instance.hooks ())
  done;
  merged

let fig11 () =
  header "Figure 11 — average model cycles for process tasks"
    "TickTock wins allocate_grant/brk/buffers, ~even create, slight setup_mpu regression";
  Verify.Violation.set_enabled false;
  let ticktock = suite_hooks (fun () -> Boards.instance_ticktock_arm ()) in
  let tock = suite_hooks (fun () -> Boards.instance_tock_arm ()) in
  Printf.printf "%-24s %12s %12s %10s   %s\n" "Method" "TickTock" "Tock" "Pct.Diff"
    "paper (tt / tock / diff)";
  List.iter
    (fun m ->
      match (Hooks.mean ticktock m, Hooks.mean tock m) with
      | Some tt, Some tk ->
        let diff = 100.0 *. (tt -. tk) /. tk in
        let ptt, ptk, pdiff = List.assoc m paper_fig11 in
        Printf.printf "%-24s %12.2f %12.2f %+9.2f%%   %.2f / %.2f / %+.2f%%\n" m tt tk diff ptt
          ptk pdiff
      | None, _ | _, None -> Printf.printf "%-24s (method not exercised)\n" m)
    fig11_methods

(* Figure 11 companion: the same six methods across the three TickTock
   architectures — the generic allocator's cost portability. *)
let fig11_arch () =
  header "Figure 11 companion — TickTock method cycles across architectures"
    "supporting: one allocator, three MPUs; v7's subregion dance is the priciest";
  Verify.Violation.set_enabled false;
  let hooks_for make = suite_hooks make in
  let v7 = hooks_for (fun () -> Boards.instance_ticktock_arm ()) in
  let v8 = hooks_for (fun () -> Boards.instance_ticktock_arm_v8 ()) in
  let pmp = hooks_for (fun () -> Boards.instance_ticktock_e310 ()) in
  Printf.printf "%-24s %12s %12s %12s\n" "Method" "cortex-m(v7)" "cortex-m(v8)" "rv32-pmp";
  List.iter
    (fun m ->
      let cell h = match Hooks.mean h m with Some v -> Printf.sprintf "%12.2f" v | None -> "           -" in
      Printf.printf "%-24s %s %s %s\n" m (cell v7) (cell v8) (cell pmp))
    fig11_methods

(* ------------------------------------------------------------------ *)
(* §6.2 memory usage microbenchmark.                                   *)

let mem () =
  header "§6.2 — memory footprint: grow one byte at a time until failure"
    "Tock 8192/6656/1284/252 (3.08% unused); TickTock 7780/6144/1200/436 (5.60%); padded \
     TickTock within 84 bytes of Tock";
  Verify.Violation.set_enabled false;
  let show name ?grant_reserve make =
    match Apps.Membench.run ?grant_reserve (make ()) with
    | Ok r -> Format.printf "%a@." Apps.Membench.pp_row { r with Apps.Membench.kernel = name }
    | Error e -> Format.printf "%s: ERROR %a@." name Kerror.pp e
  in
  show "tock-arm (monolithic)" (fun () -> Boards.instance_tock_arm ());
  show "ticktock-arm (granular)" (fun () -> Boards.instance_ticktock_arm ());
  (* the paper's padding experiment: configure TickTock so the block size
     matches Tock's power-of-two allocation *)
  show "ticktock-arm (padded)" ~grant_reserve:3072 (fun () -> Boards.instance_ticktock_arm ());
  show "ticktock-e310 (pmp)" (fun () -> Boards.instance_ticktock_e310 ());
  show "ticktock-arm-v8 (pmsav8)" (fun () -> Boards.instance_ticktock_arm_v8 ())

(* ------------------------------------------------------------------ *)
(* Figure 12: verification time.                                       *)

let fig12 ?(scale = 1.0) () =
  header "Figure 12 — time to check TickTock"
    "Monolithic 5m19s total vs Granular 36s (the redesign slashes it); Interrupts slow per \
     function despite being small";
  Printf.printf "domain scale %.2f\n\n" scale;
  (* first: the bug hunt on the upstream code, as §2.2 experienced it *)
  let bname, bprops = Proofs.upstream_bug_hunt ~scale:(min scale 0.4) in
  let breport = Verify.Checker.check_component bname bprops in
  Format.printf "%a@." Verify.Checker.pp_report breport;
  let reports =
    List.map
      (fun (cname, props) -> Verify.Checker.check_component cname props)
      (Proofs.components ~scale)
  in
  List.iter (fun r -> Format.printf "%a@." Verify.Checker.pp_report r) reports;
  let rows =
    List.map
      (fun (r : Verify.Checker.component_report) ->
        (r.Verify.Checker.component, Verify.Report.timing_stats r))
      reports
  in
  Format.printf "%a@." Verify.Report.pp_timing_table rows;
  Printf.printf "all verified: %b\n" (List.for_all Verify.Checker.all_verified reports)

(* ------------------------------------------------------------------ *)
(* Figure 10: proof/implementation effort.                              *)

let rec find_root dir depth =
  if depth > 5 then None
  else if Sys.file_exists (Filename.concat dir "lib/core") then Some dir
  else find_root (Filename.concat dir "..") (depth + 1)

let fig10 () =
  header "Figure 10 — implementation & specification effort"
    "22,131 source LoC, 2,581 fns, 3,603 spec LoC across Kernel / ARM MPU / RISC-V MPU / \
     Flux-Std / FluxArm";
  match find_root (Sys.getcwd ()) 0 with
  | None -> print_endline "source tree not found (run from the repository)"
  | Some root ->
    let rows =
      Verify.Report.scan_sources ~root
        ~components:
          [
            ("Kernel (core)", [ "lib/core" ]);
            ("MPU hardware models", [ "lib/mpu_hw" ]);
            ("FluxArm (cpu)", [ "lib/cpu" ]);
            ("Flux substitute (verify)", [ "lib/verify" ]);
            ("Machine substrate", [ "lib/mach" ]);
            ("Userland & apps", [ "lib/apps" ]);
            ("Tests", [ "test" ]);
            ("Bench & examples", [ "bench"; "examples"; "bin" ]);
          ]
    in
    Format.printf "%a@." Verify.Report.pp_effort_table rows

(* ------------------------------------------------------------------ *)
(* §6.1 differential testing.                                           *)

let difftest () =
  header "§6.1 — differential testing: 21 release tests on Tock vs TickTock"
    "21 apps, 5 differing, all layout/sensor tests; crashes still fault correctly";
  Verify.Violation.set_enabled false;
  let left = Apps.Difftest.run_suite (Boards.instance_ticktock_arm ()) in
  let right = Apps.Difftest.run_suite (Boards.instance_tock_arm ()) in
  Format.printf "%a@." Apps.Difftest.pp_comparison (Apps.Difftest.compare_suites ~left ~right);
  (* the paper's RISC-V-under-QEMU leg: completion only *)
  let qemu = Apps.Difftest.run_suite (Boards.instance_ticktock_qemu ()) in
  let completed =
    List.length
      (List.filter
         (fun (r : Apps.Difftest.app_result) -> r.exit_code <> None || r.faulted)
         qemu)
  in
  Printf.printf "\nticktock on qemu-rv32: %d/21 apps ran to completion\n" completed;
  (* and the PMP pair: granular vs monolithic on the same chip *)
  let pleft = Apps.Difftest.run_suite (Boards.instance_ticktock_e310 ()) in
  let pright = Apps.Difftest.run_suite (Boards.instance_tock_pmp ()) in
  let pdiff =
    List.filter (fun c -> c.Apps.Difftest.differs)
      (Apps.Difftest.compare_suites ~left:pleft ~right:pright)
  in
  Printf.printf "pmp pair (ticktock-e310 vs tock-pmp): %d of 21 differ\n" (List.length pdiff)

(* ------------------------------------------------------------------ *)
(* Bug matrix (§2.2, §3.4 — supporting evidence).                       *)

let bugs () =
  header "Bug reproductions — attacks vs kernel configurations"
    "six isolation/DoS bugs found by verification; exploits land only on upstream code";
  let kernels =
    [
      ("tock-arm-upstream ", fun () -> Boards.instance_tock_arm ());
      ("tock-arm-patched  ", fun () -> Boards.instance_tock_arm_patched ());
      ("ticktock-arm      ", fun () -> Boards.instance_ticktock_arm ());
      ("tock-pmp-upstream ", fun () -> Boards.instance_tock_pmp ());
      ("tock-pmp-patched  ", fun () -> Boards.instance_tock_pmp_patched ());
      ("ticktock-e310     ", fun () -> Boards.instance_ticktock_e310 ());
    ]
  in
  List.iter
    (fun (attack : Apps.Attacks.attack) ->
      Printf.printf "== %s — %s\n" attack.attack_name attack.description;
      List.iter
        (fun (name, make) ->
          let outcome =
            Verify.Violation.with_enabled false (fun () -> Apps.Attacks.run_attack make attack)
          in
          Printf.printf "   %s %s\n" name (Apps.Attacks.outcome_to_string outcome))
        kernels)
    Apps.Attacks.all

(* ------------------------------------------------------------------ *)
(* Ablations: isolate the design choices DESIGN.md calls out.           *)

let ablation_capsules () =
  Printf.printf "\n(d) capsule mediation overhead (model cycles per byte written)\n";
  Verify.Violation.set_enabled false;
  let caps, devices = Capsules.Board_set.standard () in
  let k = Boards.instance_ticktock_arm ~capsules:caps () in
  let open Apps.App_dsl in
  let n = 64 in
  let script =
    let* ms = memory_start in
    let* () =
      iter_list
        (fun i -> let* _ = store8 (ms + i) 0x41 in return ())
        (List.init n Fun.id)
    in
    let* _ = allow_ro ~driver:Capsules.Console.driver_num ~addr:ms ~len:n in
    let* _ = command ~driver:Capsules.Console.driver_num ~cmd:1 ~arg1:n () in
    return 0
  in
  match
    k.Instance.load ~name:"conbench" ~payload:"c" ~program:(to_program script) ~min_ram:2048
      ~grant_reserve:1024 ~heap_headroom:0
  with
  | Error e -> Format.printf "    load failed: %a@." Kerror.pp e
  | Ok _ ->
    let _, cycles = Cycles.measure Cycles.global (fun () -> k.Instance.run ~max_ticks:200) in
    Printf.printf
      "    %d bytes via console capsule: %d cycles total (%.1f/byte incl. switch + uart)\n" n
      cycles
      (float_of_int cycles /. float_of_int n);
    Printf.printf "    uart transcript intact: %b\n"
      (String.length (Mpu_hw.Uart.transcript devices.Capsules.Board_set.uart) = n)

let ablation () =
  header "Ablations — where the redesign's wins come from"
    "supporting analysis for the §3.5 design claims";

  (* 1. Verification cost scales much faster for the entangled monolithic
     abstraction than for the granular one. *)
  Printf.printf "(a) verification time vs domain scale\n";
  Printf.printf "    %-8s %14s %14s %8s\n" "scale" "monolithic" "granular" "ratio";
  List.iter
    (fun scale ->
      let time props =
        let r = Verify.Checker.check_component "x" props in
        (Verify.Report.timing_stats r).Verify.Report.total_s
      in
      let m = time (Proofs.Monolithic.patched ~scale) in
      let g = time (Proofs.Granular.properties ~scale) in
      Printf.printf "    %-8.2f %13.3fs %13.3fs %7.1fx\n" scale m g (m /. g))
    [ 0.25; 0.5; 1.0 ];

  (* 2. How much of Tock's brk cost is the redundant setup_mpu call. *)
  Printf.printf "\n(b) Tock brk cost breakdown (model cycles)\n";
  Verify.Violation.set_enabled false;
  let module T = Tock_allocator.Upstream_cortexm in
  let hw = Mpu_hw.Armv7m_mpu.create () in
  (match
     T.allocate_app_memory ~unalloc_start:0x2000_8000 ~unalloc_size:0x20000 ~min_size:4096
       ~app_size:2048 ~kernel_size:1024 ~flash_start:0x0002_0000 ~flash_size:1024
   with
  | Error e -> Format.printf "    setup failed: %a@." Kerror.pp e
  | Ok alloc ->
    let _, brk_cycles =
      Cycles.measure Cycles.global (fun () ->
          ignore (T.brk alloc hw ~new_app_break:(T.memory_start alloc + 3000)))
    in
    let _, config_cycles =
      Cycles.measure Cycles.global (fun () -> T.configure_mpu hw alloc)
    in
    Printf.printf "    brk total: %d cycles, of which redundant setup_mpu: %d (%.0f%%)\n"
      brk_cycles config_cycles
      (100.0 *. float_of_int config_cycles /. float_of_int brk_cycles));

  (* 3. Allocation waste: pow2 block rounding (monolithic) vs subregion
     rounding (granular), swept over requested app sizes. *)
  Printf.printf "\n(c) block size for a given request (bytes; kernel reserve 1024)\n";
  Printf.printf "    %-10s %12s %12s %10s\n" "request" "tock(po2)" "ticktock" "saving";
  let module G = App_mem_alloc.Make (Cortexm_mpu) in
  List.iter
    (fun app_size ->
      let tock =
        let module M = Tock_allocator.Patched_cortexm in
        match
          M.allocate_app_memory ~unalloc_start:0x2000_8000 ~unalloc_size:0x40000
            ~min_size:app_size ~app_size ~kernel_size:1024 ~flash_start:0x0002_0000
            ~flash_size:1024
        with
        | Ok a -> M.memory_size a
        | Error _ -> 0
      in
      let ticktock =
        match
          G.allocate_app_memory ~unalloc_start:0x2000_8000 ~unalloc_size:0x40000
            ~min_size:app_size ~app_size ~kernel_size:1024 ~flash_start:0x0002_0000
            ~flash_size:1024
        with
        | Ok a -> G.memory_size a
        | Error _ -> 0
      in
      Printf.printf "    %-10d %12d %12d %9.1f%%\n" app_size tock ticktock
        (if tock = 0 then 0.0 else 100.0 *. float_of_int (tock - ticktock) /. float_of_int tock))
    [ 512; 1024; 1536; 2048; 3072; 4096; 5120; 6144; 7168; 8192 ];
  ablation_capsules ();

  (* (e) scheduling quantum sweep: context-switch overhead vs latency.
     Smaller quanta = more switches = more total cycles to finish the same
     workload; the default 64 sits on the flat part of the curve. *)
  Printf.printf "\n(e) quantum sweep: cycles to run the 21-app suite (ticktock-arm)\n";
  Printf.printf "    %-10s %14s %10s\n" "quantum" "total cycles" "ticks";
  List.iter
    (fun q ->
      let k = Boards.instance_ticktock_arm ~quantum:q () in
      let _, cycles =
        Cycles.measure Cycles.global (fun () -> ignore (Apps.Difftest.run_suite k))
      in
      Printf.printf "    %-10d %14d %10d\n" q cycles (k.Instance.ticks ()))
    [ 4; 16; 64; 256 ]

(* ------------------------------------------------------------------ *)
(* Fuzzing robustness (supporting): hostile streams vs every kernel.    *)

let fuzz () =
  header "Fuzzing — hostile syscall/memory streams, 20 seeds x 3 fuzzers each"
    "supporting: the verified kernels survive with contracts enabled; upstream panics";
  let row name ~contracts make =
    let rounds, panics =
      Verify.Violation.with_enabled contracts (fun () -> Apps.Fuzz.campaign ~seeds:20 make)
    in
    let count f = List.length (List.filter f rounds) in
    Printf.printf "%-22s contracts=%-5b panics=%2d/20 witness-ok=%2d/20 hw/logical-agree=%2d/20\n"
      name contracts (List.length panics)
      (count (fun (r : Apps.Fuzz.outcome) -> r.witness_ok))
      (count (fun (r : Apps.Fuzz.outcome) -> r.isolation_ok))
  in
  row "ticktock-arm" ~contracts:true (fun () -> Boards.instance_ticktock_arm ());
  row "ticktock-arm-mc" ~contracts:true (fun () -> Boards.instance_ticktock_arm_mc ());
  row "ticktock-e310" ~contracts:true (fun () -> Boards.instance_ticktock_e310 ());
  row "tock-arm-patched" ~contracts:false (fun () -> Boards.instance_tock_arm_patched ());
  row "tock-arm-upstream" ~contracts:false (fun () -> Boards.instance_tock_arm ());
  print_endline
    "(the monolithic kernels never agree with hardware: Figure 4a's +1 subregion\n\
    \ always over-enables - the section 3.2 disagreement; a panicked round\n\
    \ reports witness/agreement vacuously)" 

(* ------------------------------------------------------------------ *)
(* Interrupt latency (supporting): one preemption round trip, by path.  *)

let latency () =
  header "Interrupt latency — model cycles for one preempt round trip"
    "supporting: machine-code dispatch costs more than the method model; vector fetch adds one load";
  Verify.Violation.set_enabled false;
  let measure name f =
    (* average over repeated round trips on one machine *)
    let m, _, _ = Proofs.Interrupts.fresh_machine () in
    let cpu = m.Machine.arm_cpu in
    let code = Fluxarm.Handlers_mc.install m.Machine.arm_mem in
    Fluxarm.Vector_table.install_for m.Machine.arm_mem ~base:0x0 code;
    let n = 200 in
    let _, cycles = Cycles.measure Cycles.global (fun () -> for _ = 1 to n do f cpu m code done) in
    Printf.printf "  %-34s %8.1f cycles/round-trip\n" name (float_of_int cycles /. float_of_int n)
  in
  measure "method-level systick" (fun cpu _ _ ->
      Fluxarm.Handlers.preempt_process cpu ~exc_num:15);
  measure "machine-code systick" (fun cpu _ code ->
      Fluxarm.Handlers_mc.preempt_process code cpu ~exc_num:15);
  measure "machine-code via vector table" (fun cpu m _ ->
      Fluxarm.Exn.preempt cpu ~exc_num:15
        ~isr:(Fluxarm.Vector_table.isr m.Machine.arm_mem ~base:0x0 ~exc_num:15));
  measure "method-level generic irq" (fun cpu _ _ ->
      Fluxarm.Handlers.preempt_process cpu ~exc_num:22);
  measure "machine-code generic irq" (fun cpu _ code ->
      Fluxarm.Handlers_mc.preempt_process code cpu ~exc_num:22)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test per experiment.                  *)

let bechamel_tests () =
  let open Bechamel in
  let quick_suite make () =
    Verify.Violation.set_enabled false;
    ignore (Apps.Difftest.run_suite ~max_ticks:2000 (make ()))
  in
  [
    Test.make ~name:"fig11/suite-ticktock-arm"
      (Staged.stage (quick_suite (fun () -> Boards.instance_ticktock_arm ())));
    Test.make ~name:"fig11/suite-tock-arm"
      (Staged.stage (quick_suite (fun () -> Boards.instance_tock_arm ())));
    Test.make ~name:"mem/grow-until-failure"
      (Staged.stage (fun () ->
           Verify.Violation.set_enabled false;
           ignore (Apps.Membench.run (Boards.instance_ticktock_arm ()))));
    Test.make ~name:"fig12/verify-granular"
      (Staged.stage (fun () ->
           ignore
             (Verify.Checker.check_component "granular"
                (Proofs.Granular.properties ~scale:0.05))));
    Test.make ~name:"fig12/verify-monolithic"
      (Staged.stage (fun () ->
           ignore
             (Verify.Checker.check_component "monolithic"
                (Proofs.Monolithic.patched ~scale:0.05))));
    Test.make ~name:"difftest/compare-pair"
      (Staged.stage (fun () ->
           Verify.Violation.set_enabled false;
           let left =
             Apps.Difftest.run_suite ~max_ticks:2000 (Boards.instance_ticktock_arm ())
           in
           let right = Apps.Difftest.run_suite ~max_ticks:2000 (Boards.instance_tock_arm ()) in
           ignore (Apps.Difftest.compare_suites ~left ~right)));
    Test.make ~name:"bugs/grant-overlap-attack"
      (Staged.stage (fun () ->
           Verify.Violation.set_enabled false;
           ignore
             (Apps.Attacks.run_attack
                (fun () -> Boards.instance_tock_arm ())
                (List.hd Apps.Attacks.all))));
  ]

let bechamel_run () =
  header "Bechamel wall-time micro-benchmarks (one Test.make per experiment)"
    "absolute wall times are simulator-specific; recorded for regression tracking";
  let open Bechamel in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analysis = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "%-32s %12.3f ms/run\n" name (est /. 1e6)
          | Some _ | None -> Printf.printf "%-32s (no estimate)\n" name)
        analysis)
    (bechamel_tests ())

(* ------------------------------------------------------------------ *)
(* Bus throughput: the word fast path + MPU decision cache (micro-TLB). *)

(* Host-side loads/stores/fetches per second on the modeled bus, per
   architecture, under three configurations:
     unchecked — no checker installed (raw word fast path);
     cached    — the MPU installed normally, decision cache live;
     uncached  — the same MPU consulted through an uncacheable checker
                 (the pre-cache behaviour: a full region/entry walk per
                 byte, four walks per word).
   Model cycles are untouched by any of this — Mach.Cycles is charged by
   the CPU methods, not the bus — so fig11/difftest numbers are identical
   whichever path runs; this experiment only reports host speed. *)

let bus_iters () =
  match Sys.getenv_opt "BUS_ITERS" with
  | Some s -> (try max 1000 (int_of_string s) with Failure _ -> 1_000_000)
  | None -> 1_000_000

type bus_row = {
  bus_arch : string;
  unchecked_mops : float;
  cached_mops : float;
  uncached_mops : float;
  hit_rate : float;
}

let bus_sweep mem ~base ~iters =
  (* 64 KiB sweep, 3 ops per step: load, store, fetch of an aligned word *)
  for i = 0 to iters - 1 do
    let addr = base lor (i * 4 land 0xFFFC) in
    ignore (Memory.load32 mem addr);
    Memory.store32 mem addr 0xDEAD_BEEF;
    ignore (Memory.fetch32 mem addr)
  done

let bus_time f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

let bus_row ~arch ~iters mem ~base ~cached_checker ~uncached_checker =
  let mops secs = 3.0 *. float_of_int iters /. secs /. 1e6 in
  Memory.set_checker mem None;
  bus_sweep mem ~base ~iters:1000 (* touch the pages once *);
  let t_unchecked = bus_time (fun () -> bus_sweep mem ~base ~iters) in
  Memory.set_checker mem (Some uncached_checker);
  let t_uncached = bus_time (fun () -> bus_sweep mem ~base ~iters) in
  Memory.set_checker mem (Some cached_checker);
  Memory.reset_cache_stats mem;
  let t_cached = bus_time (fun () -> bus_sweep mem ~base ~iters) in
  let hits, misses = Memory.cache_stats mem in
  {
    bus_arch = arch;
    unchecked_mops = mops t_unchecked;
    cached_mops = mops t_cached;
    uncached_mops = mops t_uncached;
    hit_rate = float_of_int hits /. float_of_int (max 1 (hits + misses));
  }

let bus_armv7m ~iters =
  let m = Machine.create_arm () in
  let mem = m.Machine.arm_mem and mpu = m.Machine.arm_mpu in
  let base = 0x2000_0000 in
  Mpu_hw.Armv7m_mpu.write_region mpu ~index:0
    ~rbar:(Mpu_hw.Armv7m_mpu.encode_rbar ~addr:base ~region:0)
    ~rasr:
      (Mpu_hw.Armv7m_mpu.encode_rasr ~enable:true ~size:65536 ~srd:0
         ~perms:Perms.Read_write_execute);
  Mpu_hw.Armv7m_mpu.set_enabled mpu true;
  (* drop to unprivileged thread mode so the MPU actually gates accesses *)
  Fluxarm.Cpu.set_special_raw m.Machine.arm_cpu Fluxarm.Regs.Control 1;
  let cached =
    Mpu_hw.Armv7m_mpu.checker mpu ~cpu_privileged:(fun () ->
        Fluxarm.Cpu.privileged m.Machine.arm_cpu)
  in
  let uncached =
    Memory.checker_of_fn (fun a acc -> Mpu_hw.Armv7m_mpu.check_access mpu ~privileged:false a acc)
  in
  bus_row ~arch:"armv7m" ~iters mem ~base ~cached_checker:cached ~uncached_checker:uncached

let bus_armv8m ~iters =
  let m = Machine.create_arm_v8 () in
  let mem = m.Machine.v8_mem and mpu = m.Machine.v8_mpu in
  let base = 0x2000_0000 in
  Mpu_hw.Armv8m_mpu.write_region mpu ~index:0
    ~rbar:(Mpu_hw.Armv8m_mpu.encode_rbar ~base ~perms:Perms.Read_write_execute)
    ~rasr:(Mpu_hw.Armv8m_mpu.encode_rlar ~limit:(base + 65535) ~enable:true);
  Mpu_hw.Armv8m_mpu.set_enabled mpu true;
  Fluxarm.Cpu.set_special_raw m.Machine.v8_cpu Fluxarm.Regs.Control 1;
  let cached =
    Mpu_hw.Armv8m_mpu.checker mpu ~cpu_privileged:(fun () ->
        Fluxarm.Cpu.privileged m.Machine.v8_cpu)
  in
  let uncached =
    Memory.checker_of_fn (fun a acc -> Mpu_hw.Armv8m_mpu.check_access mpu ~privileged:false a acc)
  in
  bus_row ~arch:"armv8m" ~iters mem ~base ~cached_checker:cached ~uncached_checker:uncached

let bus_pmp ~iters =
  let m = Machine.create_riscv Mpu_hw.Pmp.sifive_e310 in
  let mem = m.Machine.rv_mem and pmp = m.Machine.rv_pmp in
  let base = 0x2000_0000 in
  Mpu_hw.Pmp.set_entry pmp ~index:0
    ~cfg:(Mpu_hw.Pmp.cfg_of_perms Perms.Read_write_execute ~mode:Mpu_hw.Pmp.Napot)
    ~addr:(Mpu_hw.Pmp.napot_addr ~start:base ~size:65536);
  m.Machine.rv_machine_mode := false;
  let cached =
    Mpu_hw.Pmp.checker pmp ~cpu_machine_mode:(fun () -> !(m.Machine.rv_machine_mode))
  in
  let uncached =
    Memory.checker_of_fn (fun a acc -> Mpu_hw.Pmp.check_access pmp ~machine_mode:false a acc)
  in
  bus_row ~arch:"rv32-pmp" ~iters mem ~base ~cached_checker:cached ~uncached_checker:uncached

let bus_json rows ~iters =
  let oc = open_out "BENCH_bus.json" in
  Printf.fprintf oc "{\n  \"experiment\": \"bus\",\n  \"ops_per_config\": %d,\n  \"archs\": [\n"
    (3 * iters);
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"arch\": \"%s\", \"unchecked_mops\": %.2f, \"cached_mops\": %.2f, \
         \"uncached_mops\": %.2f, \"speedup\": %.2f, \"hit_rate\": %.4f}%s\n"
        r.bus_arch r.unchecked_mops r.cached_mops r.uncached_mops
        (r.cached_mops /. r.uncached_mops)
        r.hit_rate
        (if i = 2 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc

let bus () =
  header "Bus throughput — word fast path + MPU access-decision cache"
    "not in the paper: host-side speed only; model cycles are identical by construction";
  let iters = bus_iters () in
  Printf.printf "%d ops per configuration (BUS_ITERS=%d words x 3 ops)\n\n" (3 * iters) iters;
  let rows = [ bus_armv7m ~iters; bus_armv8m ~iters; bus_pmp ~iters ] in
  Printf.printf "%-10s %14s %14s %14s %9s %9s\n" "arch" "unchecked" "cached(mTLB)" "uncached"
    "speedup" "hit rate";
  List.iter
    (fun r ->
      Printf.printf "%-10s %11.2f M/s %11.2f M/s %11.2f M/s %8.2fx %8.1f%%\n" r.bus_arch
        r.unchecked_mops r.cached_mops r.uncached_mops
        (r.cached_mops /. r.uncached_mops)
        (100.0 *. r.hit_rate))
    rows;
  bus_json rows ~iters;
  print_endline "\nwrote BENCH_bus.json"

(* ------------------------------------------------------------------ *)
(* Instruction throughput: decode cache + basic-block dispatch in Mc.   *)

(* Host-side instructions per second through [Mc.run] on a hot loop
   (30 straight-line instructions + cmp + backward branch = one cached
   block per iteration), cold (caches disabled: fetch and decode every
   instruction, the pre-cache engine) vs warm (block dispatch). As with
   [bus], model cycles are charged by the Cpu methods either way, so
   fig11/difftest/latency numbers are identical whichever engine runs —
   this experiment reports host speed and cache effectiveness only. *)

let icache_iters () =
  match Sys.getenv_opt "ICACHE_ITERS" with
  | Some s -> (try max 100 (int_of_string s) with Failure _ -> 100_000)
  | None -> 100_000

(* --superblock on|off narrows the A/B run to a single warm engine;
   the default measures both (warm = per-block interpreter, sb = trace-
   linked superblocks) so the table and JSON carry the sb_gain ratio
   ci.sh gates on. *)
let ic_sb_mode : [ `Both | `On | `Off ] ref = ref `Both

type ic_row = {
  ic_arch : string;
  cold_mips : float;
  warm_mips : float;  (** per-block interpreted engine; 0 if skipped *)
  sb_mips : float;  (** superblock (trace-linked) engine; 0 if skipped *)
  ic_hit_rate : float;
  ic_link_rate : float;
  ic_trace_len : float;  (** mean blocks per trace under the sb engine *)
}

(* The loop body: 30 movw + cmp lr, r7 (lr=1, r7=0, so Z stays clear)
   + bne back to the start. *)
let icache_program base =
  let gprs = Fluxarm.Regs.[ R0; R1; R2; R3 ] in
  let body = List.init 30 (fun i -> Fluxarm.Thumb.Movw (List.nth gprs (i mod 4), i)) in
  let body = body @ [ Fluxarm.Thumb.Cmp_lr Fluxarm.Regs.R7 ] in
  let prefix = List.fold_left (fun a i -> a + Fluxarm.Thumb.size_bytes i) 0 body in
  (* bne target = branch address + 4 + 2*off; aim back at [base] *)
  let off = (base - (base + prefix) - 4) / 2 in
  body @ [ Fluxarm.Thumb.B_cond (`Ne, off) ]

let icache_instrs_per_iter = 32

let icache_run cpu ~base ~iters =
  Fluxarm.Cpu.set_special_raw cpu Fluxarm.Regs.Pc base;
  Fluxarm.Cpu.set_special_raw cpu Fluxarm.Regs.Lr 1;
  match Fluxarm.Mc.run ~fuel:(iters * icache_instrs_per_iter) cpu with
  | Fluxarm.Mc.Out_of_fuel -> ()
  | _ -> failwith "icache bench: loop stopped early"

(* best of three: a single timing is at the mercy of host scheduling noise,
   and CI gates on the warm/cold ratio *)
let best_of_3 f =
  let t1 = bus_time f in
  let t2 = bus_time f in
  let t3 = bus_time f in
  Float.min t1 (Float.min t2 t3)

let icache_row ~arch ~iters mem cpu ~base =
  let ic = Fluxarm.Cpu.icache cpu in
  let fuel = iters * icache_instrs_per_iter in
  ignore (Fluxarm.Thumb.assemble mem base (icache_program base));
  let mips secs = float_of_int fuel /. secs /. 1e6 in
  Fluxarm.Icache.set_enabled ic false;
  icache_run cpu ~base ~iters:100 (* touch the pages *);
  let t_cold = best_of_3 (fun () -> icache_run cpu ~base ~iters) in
  Fluxarm.Icache.set_enabled ic true;
  (* one engine measurement: reset, rebuild, then time with stat deltas *)
  let measure ~linking =
    Fluxarm.Icache.set_linking ic linking;
    icache_run cpu ~base ~iters:100 (* decode and publish the block *);
    Fluxarm.Icache.reset ic;
    icache_run cpu ~base ~iters:100 (* rebuild after reset *);
    let s0 = Fluxarm.Icache.stats ic in
    let t = best_of_3 (fun () -> icache_run cpu ~base ~iters) in
    let s1 = Fluxarm.Icache.stats ic in
    (t, s0, s1)
  in
  let warm_mips, ic_hit_rate =
    if !ic_sb_mode = `On then (0.0, 0.0)
    else begin
      let t, s0, s1 = measure ~linking:false in
      let hits = s1.Fluxarm.Icache.hits - s0.Fluxarm.Icache.hits in
      let misses = s1.Fluxarm.Icache.misses - s0.Fluxarm.Icache.misses in
      (mips t, float_of_int hits /. float_of_int (max 1 (hits + misses)))
    end
  in
  let sb_mips, ic_hit_rate, ic_link_rate, ic_trace_len =
    if !ic_sb_mode = `Off then (0.0, ic_hit_rate, 0.0, 0.0)
    else begin
      let t, s0, s1 = measure ~linking:true in
      let d f = f s1 - f s0 in
      let hits = d (fun s -> s.Fluxarm.Icache.hits) in
      let misses = d (fun s -> s.Fluxarm.Icache.misses) in
      let lh = d (fun s -> s.Fluxarm.Icache.link_hits) in
      let lm = d (fun s -> s.Fluxarm.Icache.link_misses) in
      let tr = d (fun s -> s.Fluxarm.Icache.traces) in
      let tb = d (fun s -> s.Fluxarm.Icache.trace_blocks) in
      let hr =
        if !ic_sb_mode = `On then float_of_int hits /. float_of_int (max 1 (hits + misses))
        else ic_hit_rate
      in
      ( mips t,
        hr,
        float_of_int lh /. float_of_int (max 1 (lh + lm)),
        float_of_int tb /. float_of_int (max 1 tr) )
    end
  in
  Fluxarm.Icache.set_linking ic (Fluxarm.Icache.linking_default ());
  { ic_arch = arch; cold_mips = mips t_cold; warm_mips; sb_mips; ic_hit_rate;
    ic_link_rate; ic_trace_len }

let icache_nompu ~iters =
  let m = Machine.create_arm () in
  let mem = m.Machine.arm_mem in
  Memory.set_checker mem None;
  icache_row ~arch:"nompu" ~iters mem m.Machine.arm_cpu ~base:0x2000_0000

let icache_armv7m ~iters =
  let m = Machine.create_arm () in
  let mem = m.Machine.arm_mem and mpu = m.Machine.arm_mpu in
  let base = 0x2000_0000 in
  Mpu_hw.Armv7m_mpu.write_region mpu ~index:0
    ~rbar:(Mpu_hw.Armv7m_mpu.encode_rbar ~addr:base ~region:0)
    ~rasr:
      (Mpu_hw.Armv7m_mpu.encode_rasr ~enable:true ~size:65536 ~srd:0
         ~perms:Perms.Read_write_execute);
  Mpu_hw.Armv7m_mpu.set_enabled mpu true;
  Fluxarm.Cpu.set_special_raw m.Machine.arm_cpu Fluxarm.Regs.Control 1;
  Memory.set_checker mem
    (Some
       (Mpu_hw.Armv7m_mpu.checker mpu ~cpu_privileged:(fun () ->
            Fluxarm.Cpu.privileged m.Machine.arm_cpu)));
  icache_row ~arch:"armv7m" ~iters mem m.Machine.arm_cpu ~base

let icache_armv8m ~iters =
  let m = Machine.create_arm_v8 () in
  let mem = m.Machine.v8_mem and mpu = m.Machine.v8_mpu in
  let base = 0x2000_0000 in
  Mpu_hw.Armv8m_mpu.write_region mpu ~index:0
    ~rbar:(Mpu_hw.Armv8m_mpu.encode_rbar ~base ~perms:Perms.Read_write_execute)
    ~rasr:(Mpu_hw.Armv8m_mpu.encode_rlar ~limit:(base + 65535) ~enable:true);
  Mpu_hw.Armv8m_mpu.set_enabled mpu true;
  Fluxarm.Cpu.set_special_raw m.Machine.v8_cpu Fluxarm.Regs.Control 1;
  Memory.set_checker mem
    (Some
       (Mpu_hw.Armv8m_mpu.checker mpu ~cpu_privileged:(fun () ->
            Fluxarm.Cpu.privileged m.Machine.v8_cpu)));
  icache_row ~arch:"armv8m" ~iters mem m.Machine.v8_cpu ~base

let icache_json rows ~iters =
  let oc = open_out "BENCH_icache.json" in
  let mode = match !ic_sb_mode with `Both -> "both" | `On -> "on" | `Off -> "off" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"icache\",\n  \"instrs_per_config\": %d,\n  \"superblock\": \
     \"%s\",\n  \"archs\": [\n"
    (iters * icache_instrs_per_iter) mode;
  let n = List.length rows in
  let ratio a b = if b > 0.0 then a /. b else 0.0 in
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"arch\": \"%s\", \"cold_mips\": %.2f, \"warm_mips\": %.2f, \"sb_mips\": \
         %.2f, \"speedup\": %.2f, \"sb_gain\": %.2f, \"hit_rate\": %.4f, \"link_rate\": \
         %.4f, \"avg_trace_len\": %.1f}%s\n"
        r.ic_arch r.cold_mips r.warm_mips r.sb_mips
        (ratio r.warm_mips r.cold_mips)
        (ratio r.sb_mips r.warm_mips)
        r.ic_hit_rate r.ic_link_rate r.ic_trace_len
        (if i = n - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc

let icache_bench () =
  header "Instruction throughput — decode cache + superblock dispatch"
    "not in the paper: host-side speed only; model cycles are identical by construction";
  let iters = icache_iters () in
  Printf.printf "%d instructions per configuration (ICACHE_ITERS=%d loops x %d instrs)\n"
    (iters * icache_instrs_per_iter) iters icache_instrs_per_iter;
  (match !ic_sb_mode with
  | `Both -> print_newline ()
  | `On -> print_endline "--superblock on: trace-linked engine only\n"
  | `Off -> print_endline "--superblock off: per-block engine only\n");
  let rows = [ icache_nompu ~iters; icache_armv7m ~iters; icache_armv8m ~iters ] in
  let fcol v = if v > 0.0 then Printf.sprintf "%11.2f M/s" v else Printf.sprintf "%15s" "-" in
  let xcol num den =
    if num > 0.0 && den > 0.0 then Printf.sprintf "%8.2fx" (num /. den)
    else Printf.sprintf "%9s" "-"
  in
  let pcol v = if v > 0.0 then Printf.sprintf "%8.1f%%" (100.0 *. v) else Printf.sprintf "%9s" "-" in
  Printf.printf "%-10s %15s %15s %15s %9s %9s %9s %9s\n" "arch" "cold" "warm(block)"
    "warm(sblk)" "sb gain" "hit rate" "link rt" "tracelen";
  List.iter
    (fun r ->
      Printf.printf "%-10s %s %s %s %s %s %s %s\n" r.ic_arch (fcol r.cold_mips)
        (fcol r.warm_mips) (fcol r.sb_mips)
        (xcol r.sb_mips r.warm_mips)
        (pcol r.ic_hit_rate) (pcol r.ic_link_rate)
        (if r.ic_trace_len > 0.0 then Printf.sprintf "%9.1f" r.ic_trace_len
         else Printf.sprintf "%9s" "-"))
    rows;
  icache_json rows ~iters;
  print_endline "\nwrote BENCH_icache.json"

(* ------------------------------------------------------------------ *)
(* Observability overhead: the cost of the tracing hooks themselves.    *)

(* Wall time for the 21-app suite under the three observability modes:
     absent   — no recorder attached, every hook site holds [None];
     disabled — a recorder is attached but switched off (events are built
                and immediately dropped: the hook-call + allocation cost);
     enabled  — the recorder records into its ring.
   Model cycles are charged by CPU/kernel methods, never by sinks, so
   fig11/difftest/latency/fuzz output is byte-identical across the three
   modes (ci.sh asserts this); the only thing tracing can cost is host
   time, which is what this experiment bounds. *)

let obs_iters () =
  match Sys.getenv_opt "OBS_ITERS" with
  | Some s -> (try max 2 (int_of_string s) with Failure _ -> 12)
  | None -> 12

(* The machine-code board: the engine that actually fetches, decodes and
   executes instructions, i.e. the configuration where a wall-clock
   overhead number means something. (On the abstract method-level board a
   suite run is ~1 ms of host work for the same event volume, so any
   per-event cost looks inflated by an order of magnitude.)

   Instances are built — and, in the enabled mode, their rings provisioned
   — outside the timed region: board construction and buffer provisioning
   are setup, and what the overhead number must bound is the steady-state
   cost of the hooks on the execution path. *)
let obs_make_instances mode ~iters =
  Obs.Config.set_auto mode;
  Verify.Violation.set_enabled false;
  Array.init iters (fun _ ->
      let k = Boards.instance_ticktock_arm_mc () in
      (match k.Instance.obs () with
      | Some r when Obs.Recorder.enabled r -> Obs.Recorder.reserve r
      | Some _ | None -> ());
      k)

let obs_run_all ks = Array.iter (fun k -> ignore (Apps.Difftest.run_suite k)) ks

(* Interleave the three modes round-robin and keep the per-mode minimum:
   host load drifts on the scale of a whole sample, so measuring the modes
   back-to-back within each round exposes them to the same drift, and the
   minimum discards the loaded rounds. *)
let obs_times ~iters ~samples =
  let modes = [| Obs.Config.Off; Obs.Config.Disabled; Obs.Config.On |] in
  let best = [| infinity; infinity; infinity |] in
  Array.iter (fun m -> obs_run_all (obs_make_instances m ~iters:2) (* warm up *)) modes;
  for _ = 1 to samples do
    Array.iteri
      (fun i m ->
        let ks = obs_make_instances m ~iters in
        (* settle the GC so no mode pays major-collection debt run up by
           its predecessor's garbage *)
        Gc.full_major ();
        best.(i) <- Float.min best.(i) (bus_time (fun () -> obs_run_all ks)))
      modes
  done;
  (best.(0), best.(1), best.(2))

let obs_json ~iters ~t_absent ~t_disabled ~t_enabled ~recorded ~dropped =
  let pct t = 100.0 *. (t -. t_absent) /. t_absent in
  let oc = open_out "BENCH_obs.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"obs\",\n\
    \  \"suite_runs_per_sample\": %d,\n\
    \  \"absent_s\": %.4f,\n\
    \  \"disabled_s\": %.4f,\n\
    \  \"enabled_s\": %.4f,\n\
    \  \"disabled_overhead_pct\": %.2f,\n\
    \  \"enabled_overhead_pct\": %.2f,\n\
    \  \"events_per_suite_run\": %d,\n\
    \  \"events_dropped_per_suite_run\": %d\n\
     }\n"
    iters t_absent t_disabled t_enabled (pct t_disabled) (pct t_enabled) recorded dropped;
  close_out oc

let obs_bench () =
  header "Observability overhead — tracing hooks absent / disabled / enabled"
    "not in the paper: host-side cost of the obs layer; model output identical by construction";
  let saved = Obs.Config.auto_mode () in
  let iters = obs_iters () in
  let samples = 9 in
  Printf.printf "%d suite runs per sample, best of %d interleaved samples per mode (OBS_ITERS=%d)\n\n"
    iters samples iters;
  let t_absent, t_disabled, t_enabled = obs_times ~iters ~samples in
  (* Event volume of one traced suite run, from a dedicated instance. *)
  Obs.Config.set_auto Obs.Config.Off;
  let r = Obs.Recorder.create () in
  let k = Boards.instance_ticktock_arm_mc ~obs:r () in
  ignore (Apps.Difftest.run_suite k);
  let recorded = Obs.Recorder.recorded r and dropped = Obs.Recorder.dropped r in
  Obs.Config.set_auto saved;
  let pct t = 100.0 *. (t -. t_absent) /. t_absent in
  Printf.printf "%-10s %10s %10s\n" "mode" "time" "overhead";
  Printf.printf "%-10s %9.3fs %9s\n" "absent" t_absent "-";
  Printf.printf "%-10s %9.3fs %+8.2f%%\n" "disabled" t_disabled (pct t_disabled);
  Printf.printf "%-10s %9.3fs %+8.2f%%\n" "enabled" t_enabled (pct t_enabled);
  Printf.printf "\ntraced suite run: %d events recorded, %d dropped (ring capacity %d)\n" recorded
    dropped r.Obs.Recorder.capacity;
  obs_json ~iters ~t_absent ~t_disabled ~t_enabled ~recorded ~dropped;
  print_endline "wrote BENCH_obs.json"

(* ------------------------------------------------------------------ *)
(* Chaos: scrubber detection latency and scrub-cadence overhead.        *)

(* One suite run on the ARMv7-M board with the MPU scrubber at a given
   cadence (0 = off). Model cycles only — the scrubber's cost is charged
   in model cycles by the kernel, so the overhead number is deterministic
   and needs no timing samples. *)
let chaos_scrub_run ~scrub_every =
  let board =
    match Chaos.Targets.find "ticktock-arm" with
    | Some b -> b
    | None -> failwith "ticktock-arm board missing"
  in
  let setup =
    { (Chaos.Targets.plain_setup ~rng_seed:0x5EED) with
      Chaos.Targets.st_scrub_every = scrub_every }
  in
  let made = board.Chaos.Targets.tb_make setup in
  let inst = made.Chaos.Targets.bd_instance in
  ignore (Chaos.Campaign.load_suite inst);
  let c0 = Cycles.read Cycles.global in
  inst.Instance.run ~max_ticks:5_000;
  let cycles = Cycles.read Cycles.global - c0 in
  let checks = Chaos.Campaign.counter_of (inst.Instance.metrics ()) "scrub/checks" in
  (cycles, checks)

let chaos_json ~cadences ~latencies ~(res : Chaos.Campaign.result) =
  let oc = open_out "BENCH_chaos.json" in
  let buckets_json buckets =
    String.concat ", "
      (List.map (fun (le, n) -> Printf.sprintf "[%d, %d]" le n) buckets)
  in
  let lat_json =
    String.concat ",\n"
      (List.map
         (fun (board, lat, buckets) ->
           match lat with
           | Some (n, mn, mean, mx) ->
             Printf.sprintf
               "    { \"board\": \"%s\", \"count\": %d, \"min\": %d, \"mean\": %d, \
                \"max\": %d, \"buckets\": [%s] }"
               board n mn mean mx (buckets_json buckets)
           | None -> Printf.sprintf "    { \"board\": \"%s\", \"count\": 0 }" board)
         latencies)
  in
  let base_cycles =
    match cadences with (0, (c, _)) :: _ -> c | _ -> 0
  in
  let cad_json =
    String.concat ",\n"
      (List.map
         (fun (every, (cycles, checks)) ->
           Printf.sprintf
             "    { \"scrub_every\": %d, \"model_cycles\": %d, \"checks\": %d, \
              \"overhead_pct\": %.3f }"
             every cycles checks
             (if base_cycles = 0 then 0.0
              else 100.0 *. float_of_int (cycles - base_cycles) /. float_of_int base_cycles))
         cadences)
  in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"chaos\",\n\
    \  \"campaign\": { \"rounds\": %d, \"fired\": %d, \"effective\": %d,\n\
    \                 \"masked\": %d, \"healed\": %d, \"contained\": %d,\n\
    \                 \"silent\": %d, \"ok\": %b },\n\
    \  \"detect_latency_cycles\": [\n%s\n  ],\n\
    \  \"scrub_overhead\": [\n%s\n  ]\n\
     }\n"
    (List.length res.Chaos.Campaign.rounds)
    res.Chaos.Campaign.total_fired res.Chaos.Campaign.total_effective
    res.Chaos.Campaign.total_masked res.Chaos.Campaign.total_healed
    res.Chaos.Campaign.total_contained res.Chaos.Campaign.total_silent
    res.Chaos.Campaign.ok lat_json cad_json;
  close_out oc

let chaos_bench () =
  header "Chaos: MPU-scrubber detection latency and cadence overhead"
    "not in the paper: the robustness harness's self-healing numbers";
  (* One seed per board is enough for a latency histogram: every landed MPU
     corruption contributes a sample, and the campaign is deterministic. *)
  let res =
    Verify.Violation.with_enabled true (fun () ->
        Chaos.Campaign.run ~seeds:[ 1; 2 ] ())
  in
  Printf.printf "campaign: %d faults fired, %d masked / %d healed / %d contained (%s)\n\n"
    res.Chaos.Campaign.total_fired res.Chaos.Campaign.total_masked
    res.Chaos.Campaign.total_healed res.Chaos.Campaign.total_contained
    (if res.Chaos.Campaign.ok then "ok" else "FAILED");
  (* Merge per-board latency across seeds by reporting each round; rounds
     of the same board are adjacent and seeds are listed in order. *)
  let latencies =
    List.map
      (fun (r : Chaos.Campaign.round) ->
        ( Printf.sprintf "%s/seed%d" r.Chaos.Campaign.rd_board r.Chaos.Campaign.rd_seed,
          r.Chaos.Campaign.rd_latency,
          r.Chaos.Campaign.rd_latency_buckets ))
      res.Chaos.Campaign.rounds
  in
  Printf.printf "%-24s %6s %8s %8s %8s\n" "board/seed" "n" "min" "mean" "max";
  List.iter
    (fun (name, lat, _) ->
      match lat with
      | Some (n, mn, mean, mx) ->
        Printf.printf "%-24s %6d %8d %8d %8d\n" name n mn mean mx
      | None -> Printf.printf "%-24s %6d %8s %8s %8s\n" name 0 "-" "-" "-")
    latencies;
  (* Scrubber overhead: the suite alone (no engine, no faults) with the
     scrubber off and at three cadences. *)
  let cadences =
    List.map (fun every -> (every, chaos_scrub_run ~scrub_every:every)) [ 0; 1; 4; 16 ]
  in
  let base = fst (List.assoc 0 cadences) in
  Printf.printf "\n%-12s %14s %10s %10s\n" "scrub_every" "model cycles" "checks" "overhead";
  List.iter
    (fun (every, (cycles, checks)) ->
      Printf.printf "%-12s %14d %10d %+9.3f%%\n"
        (if every = 0 then "off" else string_of_int every)
        cycles checks
        (100.0 *. float_of_int (cycles - base) /. float_of_int base))
    cadences;
  chaos_json ~cadences ~latencies ~res;
  print_endline "\nwrote BENCH_chaos.json"

(* ------------------------------------------------------------------ *)
(* Snapshot/fork: restore vs cold boot, fork cost vs dirty pages, and   *)
(* campaign wall-clock in boot vs fork mode.                            *)

let snap_target_of (k : Instance.t) =
  match k.Instance.snap_target with
  | Some tgt -> tgt
  | None -> failwith "board has no snapshot target"

(* (a) Per-round cost of a fresh board: boot-mode pays a full board
   construction; fork-mode pays one restore of the pristine post-boot
   snapshot onto a board the previous round dirtied. The suite run between
   restores is the realistic dirtying load (it is NOT inside the timed
   window). *)
let snap_restore_vs_boot ~rounds =
  let t_boot =
    bus_time (fun () ->
        for _ = 1 to rounds do
          ignore (Boards.instance_ticktock_arm ())
        done)
    /. float_of_int rounds
  in
  let k = Boards.instance_ticktock_arm () in
  let tgt = snap_target_of k in
  let t_capture = bus_time (fun () -> ignore (Snapshot.capture tgt)) in
  let snap = Snapshot.capture tgt in
  let t_restore = ref 0.0 in
  for _ = 1 to rounds do
    ignore (Apps.Difftest.run_suite ~max_ticks:2_000 k);
    t_restore := !t_restore +. bus_time (fun () -> Snapshot.restore tgt snap)
  done;
  let t_restore = !t_restore /. float_of_int rounds in
  (t_boot, t_capture, t_restore)

(* (b) Restore cost as a function of pages dirtied since capture. Pure
   memory-level sweep on a bare machine: the COW restore walks only pages
   touched after the capture era, so cost should scale with the dirty set,
   not with total memory. *)
let snap_dirty_sweep () =
  let m = Machine.create_arm () in
  let mem = m.Machine.arm_mem in
  let page = 4096 in
  List.map
    (fun pages ->
      let snap = Memory.capture mem in
      let base = Range.start Layout.app_sram in
      for i = 0 to pages - 1 do
        Memory.store32 mem (base + (i * page)) 0xDEAD_BEEF
      done;
      let secs = bus_time (fun () -> Memory.restore mem snap) in
      (pages, secs))
    [ 0; 1; 4; 16; 48 ]

(* (c) The same fuzz campaign, boot mode vs fork mode, and the identity
   check that makes fork mode admissible: identical outcome lists. *)
let snap_campaign ~seeds =
  let make () = Boards.instance_ticktock_arm () in
  let run exec = Apps.Fuzz.campaign ~exec ~seeds ~fuzzers:2 ~steps:50 make in
  let boot = ref ([], []) and forked = ref ([], []) in
  let t_boot =
    Verify.Violation.with_enabled true (fun () ->
        bus_time (fun () -> boot := run Ticktock.Replayable.Exec.Boot))
  in
  let t_fork =
    Verify.Violation.with_enabled true (fun () ->
        bus_time (fun () -> forked := run Ticktock.Replayable.Exec.Fork))
  in
  let identical = !boot = !forked in
  (t_boot, t_fork, List.length (fst !boot), identical)

let snapshot_json ~rounds ~t_boot ~t_capture ~t_restore ~sweep ~seeds ~t_cboot ~t_cfork
    ~identical =
  let oc = open_out "BENCH_snapshot.json" in
  let sweep_json =
    String.concat ",\n"
      (List.map
         (fun (pages, secs) ->
           Printf.sprintf "    { \"dirty_pages\": %d, \"restore_us\": %.2f }" pages
             (secs *. 1e6))
         sweep)
  in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"snapshot\",\n\
    \  \"fresh_board\": { \"rounds\": %d, \"cold_boot_us\": %.2f, \"capture_us\": %.2f,\n\
    \                   \"restore_us\": %.2f, \"restore_speedup\": %.2f },\n\
    \  \"restore_vs_dirty_pages\": [\n%s\n  ],\n\
    \  \"fuzz_campaign\": { \"seeds\": %d, \"boot_mode_s\": %.3f, \"fork_mode_s\": %.3f,\n\
    \                     \"speedup\": %.2f, \"outcomes_identical\": %b }\n\
     }\n"
    rounds (t_boot *. 1e6) (t_capture *. 1e6) (t_restore *. 1e6)
    (t_boot /. t_restore)
    sweep_json seeds t_cboot t_cfork (t_cboot /. t_cfork) identical;
  close_out oc

let snapshot_bench () =
  header "Snapshot/fork — restore vs cold boot, dirty-page scaling, campaign wall-clock"
    "not in the paper: the fleet-campaign substrate; model state is identical by construction";
  let rounds = 10 in
  let t_boot, t_capture, t_restore = snap_restore_vs_boot ~rounds in
  Printf.printf "fresh board (over %d rounds, dirtied by a suite run each):\n" rounds;
  Printf.printf "  %-28s %10.1f us\n" "cold boot" (t_boot *. 1e6);
  Printf.printf "  %-28s %10.1f us\n" "capture (pristine)" (t_capture *. 1e6);
  Printf.printf "  %-28s %10.1f us   (%.1fx faster than boot)\n" "restore (dirty board)"
    (t_restore *. 1e6)
    (t_boot /. t_restore);
  let sweep = snap_dirty_sweep () in
  Printf.printf "\nrestore cost vs pages dirtied since capture (bare machine):\n";
  List.iter
    (fun (pages, secs) -> Printf.printf "  %4d dirty pages %10.1f us\n" pages (secs *. 1e6))
    sweep;
  let seeds = 8 in
  let t_cboot, t_cfork, ran, identical = snap_campaign ~seeds in
  Printf.printf "\nfuzz campaign, %d seeds x 2 fuzzers (%d rounds ran):\n" seeds ran;
  Printf.printf "  %-28s %10.3f s\n" "boot mode" t_cboot;
  Printf.printf "  %-28s %10.3f s   (%.2fx)\n" "fork mode" t_cfork (t_cboot /. t_cfork);
  Printf.printf "  outcomes identical: %b\n" identical;
  snapshot_json ~rounds ~t_boot ~t_capture ~t_restore ~sweep ~seeds ~t_cboot ~t_cfork
    ~identical;
  print_endline "\nwrote BENCH_snapshot.json"

(* ------------------------------------------------------------------ *)
(* Fleet-scale campaign: fork >=10k board-instances across the domain
   pool, measure throughput at each jobs setting, and check the merged
   report is byte-identical everywhere — the property that makes the
   parallelism admissible. FLEET_CELLS overrides the campaign size. *)

let fleet_row ~spec jobs =
  let r = ref None in
  let secs =
    bus_time (fun () ->
        Verify.Violation.with_enabled true (fun () ->
            r := Some (Fleet.Campaign.run ~jobs spec)))
  in
  let r = Option.get !r in
  let faults =
    Array.fold_left
      (fun a -> function Some c -> a + c.Fleet.Campaign.cl_faulted | None -> a)
      0 r.Fleet.Campaign.fl_cells
  in
  let per n = float_of_int n /. secs in
  ( jobs,
    secs,
    per r.Fleet.Campaign.fl_forked (* boards/sec *),
    per r.Fleet.Campaign.fl_ran (* cells/sec *),
    per faults,
    r.Fleet.Campaign.fl_steals,
    r.Fleet.Campaign.fl_report )

let fleet_json ~spec ~host_cores ~rows ~identical =
  let oc = open_out "BENCH_fleet.json" in
  let row_json =
    String.concat ",\n"
      (List.map
         (fun (jobs, secs, bps, cps, fps, steals, _) ->
           Printf.sprintf
             "    { \"jobs\": %d, \"seconds\": %.3f, \"boards_per_sec\": %.0f, \
              \"cells_per_sec\": %.0f, \"faults_per_sec\": %.0f, \"steals\": %d }"
             jobs secs bps cps fps steals)
         rows)
  in
  let t_of j =
    let _, secs, _, _, _, _, _ = List.find (fun (j', _, _, _, _, _, _) -> j' = j) rows in
    secs
  in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"fleet\",\n\
    \  \"cells\": %d,\n\
    \  \"boards\": %d,\n\
    \  \"plans\": %d,\n\
    \  \"host_cores\": %d,\n\
    \  \"scaling\": [\n%s\n  ],\n\
    \  \"speedup_1_to_2\": %.2f,\n\
    \  \"reports_identical\": %b\n\
     }\n"
    spec.Fleet.Campaign.sp_cells
    (List.length spec.Fleet.Campaign.sp_boards)
    (List.length spec.Fleet.Campaign.sp_plans)
    host_cores row_json
    (t_of 1 /. t_of 2)
    identical;
  close_out oc

let fleet_bench () =
  header "Fleet campaign — 10k snapshot-forked boards across the work-stealing pool"
    "not in the paper: throughput and jobs-scaling of the campaign orchestrator";
  let cells =
    match Sys.getenv_opt "FLEET_CELLS" with
    | Some s -> ( try max 1 (int_of_string s) with Failure _ -> 10_000)
    | None -> 10_000
  in
  let spec = { Fleet.Campaign.default_spec with Fleet.Campaign.sp_cells = cells } in
  let host_cores = Stdlib.Domain.recommended_domain_count () in
  let jobs_list =
    [ 1; 2 ] @ (if host_cores > 2 then [ host_cores ] else [])
  in
  Printf.printf "campaign: %d cells over %d boards x %d plans (host: %d cores)\n\n" cells
    (List.length spec.Fleet.Campaign.sp_boards)
    (List.length spec.Fleet.Campaign.sp_plans)
    host_cores;
  Printf.printf "%6s %9s %12s %12s %12s %8s\n" "jobs" "seconds" "boards/sec" "cells/sec"
    "faults/sec" "steals";
  let rows =
    List.map
      (fun jobs ->
        let ((_, secs, bps, cps, fps, steals, _) as row) = fleet_row ~spec jobs in
        Printf.printf "%6d %9.3f %12.0f %12.0f %12.0f %8d\n%!" jobs secs bps cps fps steals;
        row)
      jobs_list
  in
  let reports = List.map (fun (_, _, _, _, _, _, rep) -> rep) rows in
  let identical = List.for_all (fun rep -> rep = List.hd reports) reports in
  let _, t1, _, _, _, _, _ = List.nth rows 0 in
  let _, t2, _, _, _, _, _ = List.nth rows 1 in
  Printf.printf "\nspeedup jobs 1 -> 2: %.2fx  (host has %d core%s)\n" (t1 /. t2) host_cores
    (if host_cores = 1 then "" else "s");
  Printf.printf "merged reports byte-identical across jobs: %b\n" identical;
  fleet_json ~spec ~host_cores ~rows ~identical;
  print_endline "\nwrote BENCH_fleet.json"

(* ------------------------------------------------------------------ *)

(* The multi-board fabric campaign: N boards interleaved under one virtual
   clock, a power cut at every tick, on the same work-stealing pool. The
   gates CI cares about: reports byte-identical across jobs settings, and
   zero silent cross-board corruption over the whole lattice. *)

let fabric_row ~spec jobs =
  let frames0 = Obs.Metrics.host_read "fabric/frames_sent" in
  let r = ref None in
  let secs =
    bus_time (fun () ->
        Verify.Violation.with_enabled true (fun () ->
            r := Some (Fabric.Campaign.run ~jobs spec)))
  in
  let r = Option.get !r in
  let frames = Obs.Metrics.host_read "fabric/frames_sent" - frames0 in
  let silent =
    Array.fold_left
      (fun a -> function Some c -> a + c.Fabric.Campaign.fc_silent | None -> a)
      0 r.Fabric.Campaign.fb_cells
  in
  let per n = float_of_int n /. secs in
  ( jobs,
    secs,
    per frames (* frames/sec *),
    per (r.Fabric.Campaign.fb_ran * 3) (* boards interleaved/sec *),
    per r.Fabric.Campaign.fb_ran (* cut points/sec *),
    silent,
    r.Fabric.Campaign.fb_ok,
    r.Fabric.Campaign.fb_report )

let fabric_json ~spec ~host_cores ~rows ~identical =
  let oc = open_out "BENCH_fabric.json" in
  let row_json =
    String.concat ",\n"
      (List.map
         (fun (jobs, secs, fps, bps, cps, silent, ok, _) ->
           Printf.sprintf
             "    { \"jobs\": %d, \"seconds\": %.3f, \"frames_per_sec\": %.0f, \
              \"boards_per_sec\": %.0f, \"cut_points_per_sec\": %.0f, \
              \"silent_corruptions\": %d, \"ok\": %b }"
             jobs secs fps bps cps silent ok)
         rows)
  in
  let t_of j =
    let _, secs, _, _, _, _, _, _ =
      List.find (fun (j', _, _, _, _, _, _, _) -> j' = j) rows
    in
    secs
  in
  let silent_total =
    List.fold_left (fun a (_, _, _, _, _, s, _, _) -> a + s) 0 rows
  in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"fabric\",\n\
    \  \"plans\": %d,\n\
    \  \"cuts_per_plan\": %d,\n\
    \  \"boards_interleaved\": 3,\n\
    \  \"host_cores\": %d,\n\
    \  \"scaling\": [\n%s\n  ],\n\
    \  \"speedup_1_to_2\": %.2f,\n\
    \  \"silent_corruptions\": %d,\n\
    \  \"reports_identical\": %b\n\
     }\n"
    (List.length spec.Fabric.Campaign.fb_plans)
    spec.Fabric.Campaign.fb_cuts host_cores row_json
    (t_of 1 /. t_of 2)
    silent_total identical;
  close_out oc

let fabric_bench () =
  header "Fabric campaign — 3-board topologies, a power cut at every tick"
    "not in the paper: cross-board fault containment under the campaign pool";
  let cuts =
    match Sys.getenv_opt "FABRIC_CUTS" with
    | Some s -> ( try max 1 (int_of_string s) with Failure _ -> 36)
    | None -> 36
  in
  let spec = { Fabric.Campaign.default_spec with Fabric.Campaign.fb_cuts = cuts } in
  let host_cores = Stdlib.Domain.recommended_domain_count () in
  let jobs_list = [ 1; 2 ] @ if host_cores > 2 then [ host_cores ] else [] in
  Printf.printf "campaign: %d plans x %d cuts, 3 boards per cell (host: %d cores)\n\n"
    (List.length spec.Fabric.Campaign.fb_plans)
    cuts host_cores;
  Printf.printf "%6s %9s %12s %12s %10s %8s %6s\n" "jobs" "seconds" "frames/sec"
    "boards/sec" "cuts/sec" "silent" "ok";
  let rows =
    List.map
      (fun jobs ->
        let ((_, secs, fps, bps, cps, silent, ok, _) as row) = fabric_row ~spec jobs in
        Printf.printf "%6d %9.3f %12.0f %12.0f %10.0f %8d %6b\n%!" jobs secs fps bps cps
          silent ok;
        row)
      jobs_list
  in
  let reports = List.map (fun (_, _, _, _, _, _, _, rep) -> rep) rows in
  let identical = List.for_all (fun rep -> rep = List.hd reports) reports in
  let _, t1, _, _, _, _, _, _ = List.nth rows 0 in
  let _, t2, _, _, _, _, _, _ = List.nth rows 1 in
  Printf.printf "\nspeedup jobs 1 -> 2: %.2fx  (host has %d core%s)\n" (t1 /. t2) host_cores
    (if host_cores = 1 then "" else "s");
  Printf.printf "reports byte-identical across jobs: %b\n" identical;
  fabric_json ~spec ~host_cores ~rows ~identical;
  print_endline "\nwrote BENCH_fabric.json"

(* ------------------------------------------------------------------ *)

(* Coverage-guided vs blind fuzzing at the same exec budget: the curve of
   coverage buckets lit against cumulative execs, and the execs each mode
   needs to reach the guided run's final bucket count. The comparison is
   model-deterministic (same spec -> same curve on any host), so the CI
   gate on it applies on 1-core runners too. FUZZCOV_GENS / FUZZCOV_POP
   override the campaign size. *)

let fuzzcov_row ~spec guided =
  let spec = { spec with Fuzzcov.Engine.fc_guided = guided } in
  let r = ref None in
  let secs = bus_time (fun () -> r := Some (Fuzzcov.Engine.run spec)) in
  (Option.get !r, secs)

let fuzzcov_execs_to ~target (r : Fuzzcov.Engine.result) =
  List.find_map
    (fun (execs, _, bits) -> if bits >= target then Some execs else None)
    r.Fuzzcov.Engine.fz_curve

let fuzzcov_json ~spec ~host_cores ~guided ~gsecs ~blind ~bsecs ~target =
  let oc = open_out "BENCH_fuzzcov.json" in
  let mode_json (r : Fuzzcov.Engine.result) secs =
    let curve =
      String.concat ",\n"
        (List.map
           (fun (execs, edges, bits) ->
             Printf.sprintf "      { \"execs\": %d, \"edges\": %d, \"bits\": %d }" execs edges
               bits)
           r.Fuzzcov.Engine.fz_curve)
    in
    Printf.sprintf
      "{\n\
      \    \"execs\": %d,\n\
      \    \"edges\": %d,\n\
      \    \"blocks\": %d,\n\
      \    \"bits\": %d,\n\
      \    \"corpus\": %d,\n\
      \    \"crashers\": %d,\n\
      \    \"seconds\": %.3f,\n\
      \    \"execs_per_sec\": %.0f,\n\
      \    \"execs_to_target\": %s,\n\
      \    \"curve\": [\n%s\n    ]\n\
      \  }"
      r.Fuzzcov.Engine.fz_execs r.Fuzzcov.Engine.fz_edges r.Fuzzcov.Engine.fz_blocks
      r.Fuzzcov.Engine.fz_bits
      (List.length r.Fuzzcov.Engine.fz_corpus)
      (List.length r.Fuzzcov.Engine.fz_crashers)
      secs
      (float_of_int r.Fuzzcov.Engine.fz_execs /. secs)
      (match fuzzcov_execs_to ~target r with Some e -> string_of_int e | None -> "null")
      curve
  in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"fuzzcov\",\n\
    \  \"board\": \"%s\",\n\
    \  \"pop\": %d,\n\
    \  \"gens\": %d,\n\
    \  \"host_cores\": %d,\n\
    \  \"target_bits\": %d,\n\
    \  \"guided_wins\": %b,\n\
    \  \"guided\": %s,\n\
    \  \"blind\": %s\n\
     }\n"
    spec.Fuzzcov.Engine.fc_board spec.Fuzzcov.Engine.fc_pop spec.Fuzzcov.Engine.fc_gens
    host_cores target
    (match (fuzzcov_execs_to ~target guided, fuzzcov_execs_to ~target blind) with
    | Some g, Some b -> g < b
    | Some _, None -> true
    | None, _ -> false)
    (mode_json guided gsecs) (mode_json blind bsecs);
  close_out oc

let fuzzcov_bench () =
  header "Coverage-guided fuzzing — guided vs blind at the same exec budget"
    "not in the paper: buckets-found-vs-execs of the evolutionary loop over the icache map";
  let env name default =
    match Sys.getenv_opt name with
    | Some s -> ( try max 1 (int_of_string s) with Failure _ -> default)
    | None -> default
  in
  let spec =
    {
      Fuzzcov.Engine.default_spec with
      Fuzzcov.Engine.fc_gens = env "FUZZCOV_GENS" 24;
      fc_pop = env "FUZZCOV_POP" 16;
    }
  in
  let host_cores = Stdlib.Domain.recommended_domain_count () in
  Printf.printf "campaign: %s, %d gens x %d candidates (host: %d cores)\n\n"
    spec.Fuzzcov.Engine.fc_board spec.Fuzzcov.Engine.fc_gens spec.Fuzzcov.Engine.fc_pop
    host_cores;
  let guided, gsecs = fuzzcov_row ~spec true in
  let blind, bsecs = fuzzcov_row ~spec false in
  let target = guided.Fuzzcov.Engine.fz_bits in
  Printf.printf "%8s %8s %7s %7s %6s %8s %10s %10s\n" "mode" "execs" "edges" "blocks" "bits"
    "corpus" "secs" "execs/sec";
  List.iter
    (fun (name, (r : Fuzzcov.Engine.result), secs) ->
      Printf.printf "%8s %8d %7d %7d %6d %8d %10.3f %10.0f\n" name r.Fuzzcov.Engine.fz_execs
        r.Fuzzcov.Engine.fz_edges r.Fuzzcov.Engine.fz_blocks r.Fuzzcov.Engine.fz_bits
        (List.length r.Fuzzcov.Engine.fz_corpus)
        secs
        (float_of_int r.Fuzzcov.Engine.fz_execs /. secs))
    [ ("guided", guided, gsecs); ("blind", blind, bsecs) ];
  let show r =
    match fuzzcov_execs_to ~target r with
    | Some e -> string_of_int e ^ " execs"
    | None -> "never"
  in
  Printf.printf "\nexecs to reach the guided run's %d buckets: guided %s, blind %s\n" target
    (show guided) (show blind);
  fuzzcov_json ~spec ~host_cores ~guided ~gsecs ~blind ~bsecs ~target;
  print_endline "\nwrote BENCH_fuzzcov.json"

(* ------------------------------------------------------------------ *)

(* --------------------------------------------------------------------- *)
(* Time-travel replay: record overhead vs a plain run, and backward-step  *)
(* latency as a function of the interval-snapshot spacing K. A backward   *)
(* step restores the nearest snapshot at or below the target and          *)
(* re-executes — expected cost O(K/2) ticks — while recording itself      *)
(* only adds a fingerprint at every K-th boundary.                        *)
(* --------------------------------------------------------------------- *)

let replay_bench () =
  print_endline "\n=== replay: record overhead and backward-step latency ===";
  let board = "ticktock-arm" in
  let sched = Replay.Schedule.fleet_cell ~seed:1 ~fuzzers:16 ~steps:20000 in
  Verify.Violation.with_enabled true (fun () ->
      (* the plain run: same cell, nothing recorded *)
      let t_plain =
        bus_time (fun () ->
            Cycles.set Cycles.global 0;
            let k = Capsules.Std_board.make ~what:"Bench" board in
            Replay.Schedule.apply k sched;
            let s = Ticktock.Replayable.of_instance ~name:board k in
            let rec go () =
              let now = s.Ticktock.Replayable.rp_tick () in
              if s.Ticktock.Replayable.rp_crash () = None then begin
                s.Ticktock.Replayable.rp_step ~ticks:1;
                if s.Ticktock.Replayable.rp_tick () > now then go ()
              end
            in
            go ())
      in
      let bundle = ref None in
      let t_record =
        bus_time (fun () ->
            let lv = Replay.Record.board_live ~what:"Bench" ~board ~horizon:max_int sched in
            bundle := Some (Replay.Record.record ~interval:8 lv))
      in
      let b = Option.get !bundle in
      let horizon = b.Replay.Bundle.bu_header.Replay.Bundle.hd_horizon in
      let reproduced = Replay.Record.reproduces b in
      (* backward-step latency per interval: goto the horizon, then step
         backward one tick at a time over the middle of the recording *)
      let back_steps = 20 in
      let sweep =
        List.map
          (fun interval ->
            let nav = Replay.Record.navigator ~interval b in
            Replay.Navigator.goto nav horizon;
            let t =
              bus_time (fun () ->
                  for _ = 1 to back_steps do
                    Replay.Navigator.back nav 1
                  done)
            in
            (interval, t /. float_of_int back_steps))
          [ 4; 16; 64 ]
      in
      (* identity: horizon, back 10 == fresh forward to horizon - 10 *)
      let nav = Replay.Record.navigator ~interval:16 b in
      Replay.Navigator.goto nav horizon;
      Replay.Navigator.back nav 10;
      let nav2 = Replay.Record.navigator ~interval:16 b in
      Replay.Navigator.goto nav2 (horizon - 10);
      let back_identical =
        Replay.Navigator.fingerprint nav = Replay.Navigator.fingerprint nav2
      in
      Printf.printf "cell: %d ticks  plain %.1f ms  record %.1f ms  (x%.2f)\n" horizon
        (t_plain *. 1e3) (t_record *. 1e3) (t_record /. t_plain);
      List.iter
        (fun (k, s) -> Printf.printf "  interval %3d: back-step %7.1f us\n" k (s *. 1e6))
        sweep;
      Printf.printf "reproduced %b  back-identical %b\n" reproduced back_identical;
      let oc = open_out "BENCH_replay.json" in
      Printf.fprintf oc
        "{\n\
        \  \"experiment\": \"replay\",\n\
        \  \"board\": %S,\n\
        \  \"ticks\": %d,\n\
        \  \"plain_ms\": %.3f,\n\
        \  \"record_ms\": %.3f,\n\
        \  \"record_overhead\": %.3f,\n\
        \  \"reproduced\": %b,\n\
        \  \"back_identical\": %b,\n\
        \  \"back_step_sweep\": [\n%s\n  ]\n\
         }\n"
        board horizon (t_plain *. 1e3) (t_record *. 1e3)
        (t_record /. t_plain)
        reproduced back_identical
        (String.concat ",\n"
           (List.map
              (fun (k, s) ->
                Printf.sprintf "    { \"interval\": %d, \"back_step_us\": %.2f }" k
                  (s *. 1e6))
              sweep));
      close_out oc;
      print_endline "wrote BENCH_replay.json")

let usage () =
  print_endline
    "usage: main.exe [--superblock on|off] \
     [fig10|fig11|fig12|mem|difftest|bugs|bus|icache|obs|chaos|snapshot|fleet|fabric|fuzzcov|replay|bechamel|all]";
  print_endline
    "  --superblock on|off   icache: measure only the trace-linked (on) or\n\
    \                        per-block (off) warm engine; default measures both"

let () =
  let experiments =
    [
      ("fig10", fig10);
      ("fig11", fig11);
      ("fig11arch", fig11_arch);
      ("fig12", fun () -> fig12 ());
      ("mem", mem);
      ("difftest", difftest);
      ("bugs", bugs);
      ("ablation", ablation);
      ("fuzz", fuzz);
      ("latency", latency);
      ("bus", bus);
      ("icache", icache_bench);
      ("obs", obs_bench);
      ("chaos", chaos_bench);
      ("snapshot", snapshot_bench);
      ("fleet", fleet_bench);
      ("fabric", fabric_bench);
      ("fuzzcov", fuzzcov_bench);
      ("replay", replay_bench);
      ("bechamel", bechamel_run);
    ]
  in
  (* The determinism CI runs the same experiments under TICKTOCK_OBS unset /
     "1" / "disabled" and diffs the outputs byte-for-byte. *)
  (match Sys.getenv_opt "TICKTOCK_OBS" with
  | Some s -> Obs.Config.set_auto (Obs.Config.of_string s)
  | None -> ());
  let rec strip_flags = function
    | "--superblock" :: v :: rest ->
      (match v with
      | "on" -> ic_sb_mode := `On
      | "off" -> ic_sb_mode := `Off
      | _ ->
        usage ();
        exit 1);
      strip_flags rest
    | x :: rest -> x :: strip_flags rest
    | [] -> []
  in
  match strip_flags (List.tl (Array.to_list Sys.argv)) with
  | [] | [ "all" ] -> List.iter (fun (_, f) -> f ()) experiments
  | names when List.for_all (fun n -> List.mem_assoc n experiments) names ->
    List.iter (fun n -> List.assoc n experiments ()) names
  | _ ->
    usage ();
    exit 1
