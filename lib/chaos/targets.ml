(** Concrete boards the chaos campaign injects into.

    One target per MPU architecture — ARMv7-M PMSA, ARMv8-M PMSA and RISC-V
    PMP — each a TickTock kernel built through {!Ticktock.Boards} with the
    standard capsule set and the robustness knobs (scrubber, watchdog,
    restart backoff) threaded through. A target erases the per-functor
    kernel behind the closures the engine and campaign need: the
    type-erased {!Ticktock.Instance}, the live process blocks for memory
    flips, an architecture-specific MPU register corruptor, and the device
    fault-injection levers of the board's capsules.

    The corruptors flip one bit of one live register {e through the
    hardware model's write path}, so the generation counter bumps exactly
    as on reconfiguration (invalidating cached access decisions) and
    malformed encodings are rejected the way real register files reject
    reserved values — a rejected write is a masked fault. *)

open Ticktock

type setup = {
  st_chaos : Chaos_intf.t option;
  st_scrub_every : int;
  st_scrub_policy : [ `Repair | `Fault ];
  st_watchdog : int;
  st_restart_decay_span : int;
  st_rng_seed : int;  (** seed of the RNG capsule's xorshift stream *)
}

let plain_setup ~rng_seed =
  {
    st_chaos = None;
    st_scrub_every = 0;
    st_scrub_policy = `Repair;
    st_watchdog = 0;
    st_restart_decay_span = 0;
    st_rng_seed = rng_seed;
  }

(** A built board, ready for a campaign round. *)
type made = {
  bd_instance : Instance.t;
  bd_devices : Capsules.Board_set.devices;
  bd_hooks : Engine.hooks;
  bd_load :
    name:string ->
    program:(unit -> Userland.program) ->
    min_ram:int ->
    policy:Process.fault_policy ->
    (int, Kerror.t) result;
      (** load a companion app under an explicit fault policy (with a
          program factory, so [Restart] policies can resurrect it) *)
  bd_dma : Dma.Engine.t;
      (** a scratch DMA engine over the board's memory, for the transient
          bus-NACK demonstration *)
}

type board = {
  tb_name : string;
  tb_make : setup -> made;
}

(* --- the generic register corruptor ---

   One corruptor for every architecture, built on the register-file
   snapshot/restore pair every {!Mm.S} now exposes (the same hook the
   scrubber's repair path and the board snapshot subsystem use): read the
   live word list, flip one random bit of one random word, write the list
   back. [mpu_restore] is diff-only through the model's register-write
   front door, so exactly one register write happens, the generation
   counter bumps as on a real reconfiguration, and a value the hardware
   would reject (reserved encodings, locked PMP entries) raises — a masked
   fault, reported as [Error]. The per-architecture corruptors this
   replaces each hand-picked field offsets; the word-level flip covers the
   same registers uniformly and the scrubber's word-for-word comparison
   detects any landed flip regardless of which field it hit.

   Some flips have no architectural effect: the snapshot encodes global
   enable as a whole word but the hardware only has the bit, so flipping
   bit 5 of an enabled MPU's enable word writes nothing back. Re-reading
   the registers after the write-back tells landed from normalized-away —
   the latter is a masked fault (the campaign must not expect the scrubber
   to detect a corruption the register file never held). *)

let corrupt_mpu ~arch ~snapshot ~restore hw rng =
  let words = snapshot hw in
  let index = Random.State.int rng (List.length words) in
  let bit = Random.State.int rng 32 in
  let words' = List.mapi (fun i w -> if i = index then w lxor (1 lsl bit) else w) words in
  try
    restore hw words';
    if snapshot hw = words then
      Error (Printf.sprintf "%s word %d bit %d normalized away by the register file" arch index bit)
    else Ok (Printf.sprintf "%s word %d bit %d" arch index bit)
  with Invalid_argument why -> Error why

(* --- boards --- *)

let payload_of name = name ^ "-image"

let make_arm (s : setup) =
  let rng_stall = ref 0 and ipc_nack = ref 0 in
  let capsules, devices =
    Capsules.Board_set.standard ~rng_seed:s.st_rng_seed ~rng_stall ~ipc_nack ()
  in
  let m, k =
    Boards.make_ticktock_arm ~capsules ?chaos:s.st_chaos ~scrub_every:s.st_scrub_every
      ~scrub_policy:s.st_scrub_policy ~watchdog:s.st_watchdog
      ~restart_decay_span:s.st_restart_decay_span ()
  in
  let mem = m.Machine.arm_mem in
  let dma = Dma.Engine.create mem in
  let blocks () =
    List.filter_map
      (fun p ->
        if Process.is_live p then
          Some
            ( p.Process.pid,
              Boards.Ticktock_arm_mm.memory_start p.Process.alloc,
              Boards.Ticktock_arm_mm.memory_size p.Process.alloc )
        else None)
      (Boards.Ticktock_arm.processes k)
  in
  let load ~name ~program ~min_ram ~policy =
    Result.map
      (fun p -> p.Process.pid)
      (Boards.Ticktock_arm.create_process k ~name ~payload:(payload_of name)
         ~program:(program ()) ~min_ram ~fault_policy:policy ~program_factory:program ())
  in
  {
    bd_instance =
      { (Boards.Ticktock_arm.instance k) with
        Instance.snap_target =
          Some
            (Snapshot.add_components
               (Boards.target ~arch:"armv7m" ~board:"ticktock-arm" ~mem
                  ~devices:(Boards.arm_components m)
                  ~kernel:
                    (Boards.comp "kernel" ~capture:Boards.Ticktock_arm.capture
                       ~restore:Boards.Ticktock_arm.restore
                       ~fingerprint:Boards.Ticktock_arm.fingerprint k)
                  ~procs:(fun () -> List.length (Boards.Ticktock_arm.processes k)))
               (Capsules.Board_set.components devices))
      };
    bd_devices = devices;
    bd_hooks =
      {
        Engine.hk_mem = mem;
        hk_blocks = blocks;
        hk_kernel_sram = Layout.kernel_sram;
        hk_corrupt_mpu =
          corrupt_mpu ~arch:"v7" ~snapshot:Boards.Ticktock_arm_mm.mpu_snapshot
            ~restore:Boards.Ticktock_arm_mm.mpu_restore m.Machine.arm_mpu;
        hk_uart_busy =
          (fun ~cycles ->
            Mpu_hw.Uart.inject_busy devices.Capsules.Board_set.uart ~cycles);
        hk_rng_stall = rng_stall;
        hk_ipc_nack = ipc_nack;
        hk_dma_nack = Some (fun () -> Dma.Engine.inject_nack dma);
        hk_obs = Boards.Ticktock_arm.obs_sink k;
      };
    bd_load = load;
    bd_dma = dma;
  }

let make_arm_v8 (s : setup) =
  let rng_stall = ref 0 and ipc_nack = ref 0 in
  let capsules, devices =
    Capsules.Board_set.standard ~rng_seed:s.st_rng_seed ~rng_stall ~ipc_nack ()
  in
  let m, k =
    Boards.make_ticktock_arm_v8 ~capsules ?chaos:s.st_chaos ~scrub_every:s.st_scrub_every
      ~scrub_policy:s.st_scrub_policy ~watchdog:s.st_watchdog
      ~restart_decay_span:s.st_restart_decay_span ()
  in
  let mem = m.Machine.v8_mem in
  let dma = Dma.Engine.create mem in
  let blocks () =
    List.filter_map
      (fun p ->
        if Process.is_live p then
          Some
            ( p.Process.pid,
              Boards.Ticktock_arm_v8_mm.memory_start p.Process.alloc,
              Boards.Ticktock_arm_v8_mm.memory_size p.Process.alloc )
        else None)
      (Boards.Ticktock_arm_v8.processes k)
  in
  let load ~name ~program ~min_ram ~policy =
    Result.map
      (fun p -> p.Process.pid)
      (Boards.Ticktock_arm_v8.create_process k ~name ~payload:(payload_of name)
         ~program:(program ()) ~min_ram ~fault_policy:policy ~program_factory:program ())
  in
  {
    bd_instance =
      { (Boards.Ticktock_arm_v8.instance k) with
        Instance.snap_target =
          Some
            (Snapshot.add_components
               (Boards.target ~arch:"armv8m" ~board:"ticktock-arm-v8" ~mem
                  ~devices:(Boards.v8_components m)
                  ~kernel:
                    (Boards.comp "kernel" ~capture:Boards.Ticktock_arm_v8.capture
                       ~restore:Boards.Ticktock_arm_v8.restore
                       ~fingerprint:Boards.Ticktock_arm_v8.fingerprint k)
                  ~procs:(fun () -> List.length (Boards.Ticktock_arm_v8.processes k)))
               (Capsules.Board_set.components devices))
      };
    bd_devices = devices;
    bd_hooks =
      {
        Engine.hk_mem = mem;
        hk_blocks = blocks;
        hk_kernel_sram = Layout.kernel_sram;
        hk_corrupt_mpu =
          corrupt_mpu ~arch:"v8" ~snapshot:Boards.Ticktock_arm_v8_mm.mpu_snapshot
            ~restore:Boards.Ticktock_arm_v8_mm.mpu_restore m.Machine.v8_mpu;
        hk_uart_busy =
          (fun ~cycles ->
            Mpu_hw.Uart.inject_busy devices.Capsules.Board_set.uart ~cycles);
        hk_rng_stall = rng_stall;
        hk_ipc_nack = ipc_nack;
        hk_dma_nack = Some (fun () -> Dma.Engine.inject_nack dma);
        hk_obs = Boards.Ticktock_arm_v8.obs_sink k;
      };
    bd_load = load;
    bd_dma = dma;
  }

let make_e310 (s : setup) =
  let rng_stall = ref 0 and ipc_nack = ref 0 in
  let capsules, devices =
    Capsules.Board_set.standard ~rng_seed:s.st_rng_seed ~rng_stall ~ipc_nack ()
  in
  let m, k =
    Boards.make_ticktock_e310 ~capsules ?chaos:s.st_chaos ~scrub_every:s.st_scrub_every
      ~scrub_policy:s.st_scrub_policy ~watchdog:s.st_watchdog
      ~restart_decay_span:s.st_restart_decay_span ()
  in
  let mem = m.Machine.rv_mem in
  let dma = Dma.Engine.create mem in
  let blocks () =
    List.filter_map
      (fun p ->
        if Process.is_live p then
          Some
            ( p.Process.pid,
              Boards.Ticktock_e310_mm.memory_start p.Process.alloc,
              Boards.Ticktock_e310_mm.memory_size p.Process.alloc )
        else None)
      (Boards.Ticktock_e310.processes k)
  in
  let load ~name ~program ~min_ram ~policy =
    Result.map
      (fun p -> p.Process.pid)
      (Boards.Ticktock_e310.create_process k ~name ~payload:(payload_of name)
         ~program:(program ()) ~min_ram ~fault_policy:policy ~program_factory:program ())
  in
  {
    bd_instance =
      { (Boards.Ticktock_e310.instance k) with
        Instance.snap_target =
          Some
            (Snapshot.add_components
               (Boards.target ~arch:"rv32-pmp" ~board:"ticktock-e310" ~mem
                  ~devices:(Boards.rv_components m)
                  ~kernel:
                    (Boards.comp "kernel" ~capture:Boards.Ticktock_e310.capture
                       ~restore:Boards.Ticktock_e310.restore
                       ~fingerprint:Boards.Ticktock_e310.fingerprint k)
                  ~procs:(fun () -> List.length (Boards.Ticktock_e310.processes k)))
               (Capsules.Board_set.components devices))
      };
    bd_devices = devices;
    bd_hooks =
      {
        Engine.hk_mem = mem;
        hk_blocks = blocks;
        hk_kernel_sram = Layout.kernel_sram;
        hk_corrupt_mpu =
          corrupt_mpu ~arch:"pmp" ~snapshot:Boards.Ticktock_e310_mm.mpu_snapshot
            ~restore:Boards.Ticktock_e310_mm.mpu_restore m.Machine.rv_pmp;
        hk_uart_busy =
          (fun ~cycles ->
            Mpu_hw.Uart.inject_busy devices.Capsules.Board_set.uart ~cycles);
        hk_rng_stall = rng_stall;
        hk_ipc_nack = ipc_nack;
        hk_dma_nack = Some (fun () -> Dma.Engine.inject_nack dma);
        hk_obs = Boards.Ticktock_e310.obs_sink k;
      };
    bd_load = load;
    bd_dma = dma;
  }

let boards =
  [
    { tb_name = "ticktock-arm"; tb_make = make_arm };
    { tb_name = "ticktock-arm-v8"; tb_make = make_arm_v8 };
    { tb_name = "ticktock-e310"; tb_make = make_e310 };
  ]

let find name = List.find_opt (fun b -> b.tb_name = name) boards
