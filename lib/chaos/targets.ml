(** Concrete boards the chaos campaign injects into.

    One target per MPU architecture — ARMv7-M PMSA, ARMv8-M PMSA and RISC-V
    PMP — each a TickTock kernel built through {!Ticktock.Boards} with the
    standard capsule set and the robustness knobs (scrubber, watchdog,
    restart backoff) threaded through. A target erases the per-functor
    kernel behind the closures the engine and campaign need: the
    type-erased {!Ticktock.Instance}, the live process blocks for memory
    flips, an architecture-specific MPU register corruptor, and the device
    fault-injection levers of the board's capsules.

    The corruptors flip one bit of one live register {e through the
    hardware model's write path}, so the generation counter bumps exactly
    as on reconfiguration (invalidating cached access decisions) and
    malformed encodings are rejected the way real register files reject
    reserved values — a rejected write is a masked fault. *)

open Ticktock

type setup = {
  st_chaos : Chaos_intf.t option;
  st_scrub_every : int;
  st_scrub_policy : [ `Repair | `Fault ];
  st_watchdog : int;
  st_restart_decay_span : int;
  st_rng_seed : int;  (** seed of the RNG capsule's xorshift stream *)
}

let plain_setup ~rng_seed =
  {
    st_chaos = None;
    st_scrub_every = 0;
    st_scrub_policy = `Repair;
    st_watchdog = 0;
    st_restart_decay_span = 0;
    st_rng_seed = rng_seed;
  }

(** A built board, ready for a campaign round. *)
type made = {
  bd_instance : Instance.t;
  bd_devices : Capsules.Board_set.devices;
  bd_hooks : Engine.hooks;
  bd_load :
    name:string ->
    program:(unit -> Userland.program) ->
    min_ram:int ->
    policy:Process.fault_policy ->
    (int, Kerror.t) result;
      (** load a companion app under an explicit fault policy (with a
          program factory, so [Restart] policies can resurrect it) *)
  bd_dma : Dma.Engine.t;
      (** a scratch DMA engine over the board's memory, for the transient
          bus-NACK demonstration *)
}

type board = {
  tb_name : string;
  tb_make : setup -> made;
}

(* --- architecture-specific register corruptors --- *)

let corrupt_v7 mpu rng =
  let module M = Mpu_hw.Armv7m_mpu in
  let index = Random.State.int rng M.region_count in
  let rbar, rasr = M.read_region mpu ~index in
  let rbar', rasr', what =
    match Random.State.int rng 4 with
    | 0 -> (rbar, rasr lxor (1 lsl (8 + Random.State.int rng 8)), "rasr.srd")
    | 1 -> (rbar, rasr lxor (1 lsl (24 + Random.State.int rng 3)), "rasr.ap")
    | 2 -> (rbar, rasr lxor 1, "rasr.enable")
    | _ -> (rbar lxor (1 lsl (16 + Random.State.int rng 12)), rasr, "rbar.addr")
  in
  try
    M.write_region mpu ~index ~rbar:rbar' ~rasr:rasr';
    Ok (Printf.sprintf "v7 region %d %s" index what)
  with Invalid_argument why -> Error why

let corrupt_v8 mpu rng =
  let module M = Mpu_hw.Armv8m_mpu in
  let index = Random.State.int rng M.region_count in
  let rbar, rlar = M.read_region mpu ~index in
  let rbar', rlar', what =
    match Random.State.int rng 4 with
    | 0 -> (rbar lxor (1 lsl (1 + Random.State.int rng 2)), rlar, "rbar.ap")
    | 1 -> (rbar lxor 1, rlar, "rbar.xn")
    | 2 -> (rbar, rlar lxor 1, "rlar.enable")
    | _ -> (rbar lxor (1 lsl (12 + Random.State.int rng 16)), rlar, "rbar.base")
  in
  try
    M.write_region mpu ~index ~rbar:rbar' ~rasr:rlar';
    Ok (Printf.sprintf "v8 region %d %s" index what)
  with Invalid_argument why -> Error why

let corrupt_pmp pmp rng =
  let module M = Mpu_hw.Pmp in
  let index = Random.State.int rng (M.chip pmp).M.entry_count in
  let cfg, addr = M.read_entry pmp ~index in
  let cfg', addr', what =
    match Random.State.int rng 3 with
    | 0 -> (cfg lxor (1 lsl Random.State.int rng 3), addr, "pmpcfg.rwx")
    | 1 -> (cfg lxor (1 lsl (3 + Random.State.int rng 2)), addr, "pmpcfg.mode")
    | _ -> (cfg, addr lxor (1 lsl (2 + Random.State.int rng 24)), "pmpaddr")
  in
  try
    M.set_entry pmp ~index ~cfg:cfg' ~addr:addr';
    Ok (Printf.sprintf "pmp entry %d %s" index what)
  with Invalid_argument why -> Error why

(* --- boards --- *)

let payload_of name = name ^ "-image"

let make_arm (s : setup) =
  let rng_stall = ref 0 and ipc_nack = ref 0 in
  let capsules, devices =
    Capsules.Board_set.standard ~rng_seed:s.st_rng_seed ~rng_stall ~ipc_nack ()
  in
  let m, k =
    Boards.make_ticktock_arm ~capsules ?chaos:s.st_chaos ~scrub_every:s.st_scrub_every
      ~scrub_policy:s.st_scrub_policy ~watchdog:s.st_watchdog
      ~restart_decay_span:s.st_restart_decay_span ()
  in
  let mem = m.Machine.arm_mem in
  let dma = Dma.Engine.create mem in
  let blocks () =
    List.filter_map
      (fun p ->
        if Process.is_live p then
          Some
            ( p.Process.pid,
              Boards.Ticktock_arm_mm.memory_start p.Process.alloc,
              Boards.Ticktock_arm_mm.memory_size p.Process.alloc )
        else None)
      (Boards.Ticktock_arm.processes k)
  in
  let load ~name ~program ~min_ram ~policy =
    Result.map
      (fun p -> p.Process.pid)
      (Boards.Ticktock_arm.create_process k ~name ~payload:(payload_of name)
         ~program:(program ()) ~min_ram ~fault_policy:policy ~program_factory:program ())
  in
  {
    bd_instance = Boards.Ticktock_arm.instance k;
    bd_devices = devices;
    bd_hooks =
      {
        Engine.hk_mem = mem;
        hk_blocks = blocks;
        hk_kernel_sram = Layout.kernel_sram;
        hk_corrupt_mpu = corrupt_v7 m.Machine.arm_mpu;
        hk_uart_busy =
          (fun ~cycles ->
            Mpu_hw.Uart.inject_busy devices.Capsules.Board_set.uart ~cycles);
        hk_rng_stall = rng_stall;
        hk_ipc_nack = ipc_nack;
        hk_dma_nack = Some (fun () -> Dma.Engine.inject_nack dma);
        hk_obs = Boards.Ticktock_arm.obs_sink k;
      };
    bd_load = load;
    bd_dma = dma;
  }

let make_arm_v8 (s : setup) =
  let rng_stall = ref 0 and ipc_nack = ref 0 in
  let capsules, devices =
    Capsules.Board_set.standard ~rng_seed:s.st_rng_seed ~rng_stall ~ipc_nack ()
  in
  let m, k =
    Boards.make_ticktock_arm_v8 ~capsules ?chaos:s.st_chaos ~scrub_every:s.st_scrub_every
      ~scrub_policy:s.st_scrub_policy ~watchdog:s.st_watchdog
      ~restart_decay_span:s.st_restart_decay_span ()
  in
  let mem = m.Machine.v8_mem in
  let dma = Dma.Engine.create mem in
  let blocks () =
    List.filter_map
      (fun p ->
        if Process.is_live p then
          Some
            ( p.Process.pid,
              Boards.Ticktock_arm_v8_mm.memory_start p.Process.alloc,
              Boards.Ticktock_arm_v8_mm.memory_size p.Process.alloc )
        else None)
      (Boards.Ticktock_arm_v8.processes k)
  in
  let load ~name ~program ~min_ram ~policy =
    Result.map
      (fun p -> p.Process.pid)
      (Boards.Ticktock_arm_v8.create_process k ~name ~payload:(payload_of name)
         ~program:(program ()) ~min_ram ~fault_policy:policy ~program_factory:program ())
  in
  {
    bd_instance = Boards.Ticktock_arm_v8.instance k;
    bd_devices = devices;
    bd_hooks =
      {
        Engine.hk_mem = mem;
        hk_blocks = blocks;
        hk_kernel_sram = Layout.kernel_sram;
        hk_corrupt_mpu = corrupt_v8 m.Machine.v8_mpu;
        hk_uart_busy =
          (fun ~cycles ->
            Mpu_hw.Uart.inject_busy devices.Capsules.Board_set.uart ~cycles);
        hk_rng_stall = rng_stall;
        hk_ipc_nack = ipc_nack;
        hk_dma_nack = Some (fun () -> Dma.Engine.inject_nack dma);
        hk_obs = Boards.Ticktock_arm_v8.obs_sink k;
      };
    bd_load = load;
    bd_dma = dma;
  }

let make_e310 (s : setup) =
  let rng_stall = ref 0 and ipc_nack = ref 0 in
  let capsules, devices =
    Capsules.Board_set.standard ~rng_seed:s.st_rng_seed ~rng_stall ~ipc_nack ()
  in
  let m, k =
    Boards.make_ticktock_e310 ~capsules ?chaos:s.st_chaos ~scrub_every:s.st_scrub_every
      ~scrub_policy:s.st_scrub_policy ~watchdog:s.st_watchdog
      ~restart_decay_span:s.st_restart_decay_span ()
  in
  let mem = m.Machine.rv_mem in
  let dma = Dma.Engine.create mem in
  let blocks () =
    List.filter_map
      (fun p ->
        if Process.is_live p then
          Some
            ( p.Process.pid,
              Boards.Ticktock_e310_mm.memory_start p.Process.alloc,
              Boards.Ticktock_e310_mm.memory_size p.Process.alloc )
        else None)
      (Boards.Ticktock_e310.processes k)
  in
  let load ~name ~program ~min_ram ~policy =
    Result.map
      (fun p -> p.Process.pid)
      (Boards.Ticktock_e310.create_process k ~name ~payload:(payload_of name)
         ~program:(program ()) ~min_ram ~fault_policy:policy ~program_factory:program ())
  in
  {
    bd_instance = Boards.Ticktock_e310.instance k;
    bd_devices = devices;
    bd_hooks =
      {
        Engine.hk_mem = mem;
        hk_blocks = blocks;
        hk_kernel_sram = Layout.kernel_sram;
        hk_corrupt_mpu = corrupt_pmp m.Machine.rv_pmp;
        hk_uart_busy =
          (fun ~cycles ->
            Mpu_hw.Uart.inject_busy devices.Capsules.Board_set.uart ~cycles);
        hk_rng_stall = rng_stall;
        hk_ipc_nack = ipc_nack;
        hk_dma_nack = Some (fun () -> Dma.Engine.inject_nack dma);
        hk_obs = Boards.Ticktock_e310.obs_sink k;
      };
    bd_load = load;
    bd_dma = dma;
  }

let boards =
  [
    { tb_name = "ticktock-arm"; tb_make = make_arm };
    { tb_name = "ticktock-arm-v8"; tb_make = make_arm_v8 };
    { tb_name = "ticktock-e310"; tb_make = make_e310 };
  ]

let find name = List.find_opt (fun b -> b.tb_name = name) boards
