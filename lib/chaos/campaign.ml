(** Seeded chaos campaigns over the release suite (the tentpole harness).

    One {e round} = one board × one seed: the 21-app release suite plus the
    {!Workload} companions run twice on identical kernels — once {b golden}
    (no engine attached) and once {b injected} (a seeded {!Engine} firing a
    fault plan) — with the scrubber, watchdog and backoff-restart policies
    active in {e both} runs, so the only difference between them is the
    injected faults.

    Every fired fault is classified against the golden run's observables
    (per-process console output, final state, exit code — the same
    observables the differential tests compare):

    - {b masked}: no observable difference — the fault was absorbed
      (rejected register write, retried transient device error, flip in
      memory nobody read, spurious exception);
    - {b detected+healed}: the kernel noticed and repaired — the scrubber
      caught a corrupted MPU register file and rewrote it, with the target
      process's behavior unchanged;
    - {b contained}: the target process (and only the target process)
      diverged or was faulted — the blast radius ended at the process
      boundary.

    The campaign's central assertion is that no fault is ever {e silent
    cross-process corruption}: a process that neither was targeted by any
    fault nor was loudly faulted by the kernel must behave byte-for-byte
    identically to the golden run. A violation fails the campaign.

    Rounds are deterministic functions of (board, seed), so the rendered
    report is byte-identical across runs and across [TICKTOCK_JOBS] worker
    counts (rounds are merged in round order, the fuzz campaign's
    discipline). *)

open Ticktock

(* Knobs shared by golden and injected runs. The scrubber runs every
   context switch so a corruption never survives past the slice that
   suffered it; the watchdog budget sits far above any suite app's longest
   syscall-less stretch (~2k cycles) and far below the spinner's. *)
let scrub_cadence = 1
let watchdog_budget = 40_000
let max_ticks = 5_000

type classification = Masked | Healed | Contained

let class_name = function
  | Masked -> "masked"
  | Healed -> "healed"
  | Contained -> "contained"

type classified = {
  cf_inj : Engine.injection;
  cf_target : string option;  (** resolved target process name *)
  cf_class : classification;
  cf_note : string;
}

type round = {
  rd_board : string;
  rd_seed : int;
  rd_fired : int;  (** injection attempts that fired *)
  rd_effective : int;  (** ... that actually landed *)
  rd_pending : int;  (** planned faults the run ended before firing *)
  rd_classified : classified list;
  rd_masked : int;
  rd_healed : int;
  rd_contained : int;
  rd_silent : string list;  (** silent cross-process corruption findings *)
  rd_loud : string list;  (** untargeted-but-kernel-faulted notes *)
  rd_mpu_effective : int;
  rd_scrub_detections : int;
  rd_scrub_repairs : int;
  rd_scrub_checks : int;
  rd_watchdog_golden : int;
  rd_watchdog_injected : int;
  rd_restarts : int;
  rd_latency : (int * int * int * int) option;  (** count, min, mean, max *)
  rd_latency_buckets : (int * int) list;
  rd_dma_nacks : int;
  rd_uart_overruns : int;
}

type result = {
  rounds : round list;
  total_fired : int;
  total_effective : int;
  total_masked : int;
  total_healed : int;
  total_contained : int;
  total_silent : int;
  ok : bool;
  report : string;
}

(* --- metric helpers --- *)

let counter_of snap name =
  List.fold_left
    (fun acc (e : Obs.Metrics.entry) ->
      match e.Obs.Metrics.value with
      | Obs.Metrics.Counter i when e.Obs.Metrics.name = name -> acc + i
      | _ -> acc)
    0 snap

let hist_of snap name =
  List.find_map
    (fun (e : Obs.Metrics.entry) ->
      if e.Obs.Metrics.name = name then
        match e.Obs.Metrics.value with
        | Obs.Metrics.Histogram { count; sum; vmin; vmax; buckets } ->
          Some (count, sum, vmin, vmax, buckets)
        | _ -> None
      else None)
    snap

(* --- one kernel run --- *)

type row = {
  r_name : string;
  r_output : string;
  r_state : string;
  r_faulted : bool;
  r_exit : int option;
}

type run_out = {
  ro_rows : (string * row) list;  (* by name, load order *)
  ro_pid_name : (int * string) list;
  ro_transcript : string;  (* the UART console capsule's transcript *)
  ro_metrics : Obs.Metrics.snapshot;
  ro_injections : Engine.injection list;
  ro_pending : int;
  ro_dma_nacks : int;
  ro_uart_overruns : int;
}

let load_suite (inst : Instance.t) =
  List.filter_map
    (fun (app : Apps.Suite.app) ->
      let program = Apps.App_dsl.to_program (app.Apps.Suite.script ()) in
      match
        inst.Instance.load ~name:app.Apps.Suite.app_name
          ~payload:(Apps.Suite.payload_of app) ~program ~min_ram:app.Apps.Suite.min_ram
          ~grant_reserve:app.Apps.Suite.grant_reserve ~heap_headroom:2048
      with
      | Ok pid -> Some (app.Apps.Suite.app_name, pid)
      | Error _ -> None)
    Apps.Suite.all

(* Load the workload onto an already-built board, run it and collect the
   observables. [make_engine] runs after loading, exactly where the
   boot-per-round path has always created its engine. *)
let run_workload (made : Targets.made) ~make_engine =
  let loaded = load_suite made.Targets.bd_instance @ Workload.load made in
  let engine : Engine.t option = make_engine () in
  made.Targets.bd_instance.Instance.run ~max_ticks;
  (* The DMA demonstration runs after the kernel quiesces: any bus NACK the
     engine queued stalls the first burst, and the retrying transfer still
     completes — a transient never becomes data corruption. *)
  let dma_nacks =
    let dma = made.Targets.bd_dma in
    let buf =
      Dma.Buffer.create made.Targets.bd_hooks.Engine.hk_mem
        ~addr:(Range.start Layout.kernel_sram) ~len:32
    in
    let cell = Dma.Cell.create () in
    (match Dma.Cell.place cell buf with
    | None -> ()
    | Some w ->
      Dma.Engine.start dma w;
      Dma.Engine.run_to_completion dma;
      ignore (Dma.Cell.completed cell dma));
    Dma.Engine.nacks dma
  in
  let inst = made.Targets.bd_instance in
  let rows =
    List.map
      (fun (name, pid) ->
        ( name,
          {
            r_name = name;
            r_output = Option.value ~default:"" (inst.Instance.proc_output pid);
            r_state = Option.value ~default:"?" (inst.Instance.proc_state pid);
            r_faulted = inst.Instance.proc_faulted pid;
            r_exit = inst.Instance.proc_exit pid;
          } ))
      loaded
  in
  {
    ro_rows = rows;
    ro_pid_name = List.map (fun (n, p) -> (p, n)) loaded;
    ro_transcript =
      Mpu_hw.Uart.transcript made.Targets.bd_devices.Capsules.Board_set.uart;
    ro_metrics = inst.Instance.metrics ();
    ro_injections = (match engine with Some e -> Engine.injections e | None -> []);
    ro_pending = (match engine with Some e -> Engine.pending e | None -> 0);
    ro_dma_nacks = dma_nacks;
    ro_uart_overruns =
      Mpu_hw.Uart.overruns made.Targets.bd_devices.Capsules.Board_set.uart;
  }

let setup_of ~chaos ~seed =
  {
    Targets.st_chaos = chaos;
    st_scrub_every = scrub_cadence;
    st_scrub_policy = `Repair;
    st_watchdog = watchdog_budget;
    st_restart_decay_span = 0;
    st_rng_seed = 0x5EED + seed;
  }

(* The boot-per-round path: a fresh board per run. *)
let run_one (board : Targets.board) ~seed ~faults =
  let chaos = if faults > 0 then Some (Chaos_intf.create ()) else None in
  let made = board.Targets.tb_make (setup_of ~chaos ~seed) in
  run_workload made ~make_engine:(fun () ->
      Option.map
        (fun ch -> Engine.create ~seed ~count:faults ~hooks:made.Targets.bd_hooks ch)
        chaos)

(* The forked path: boot the board once with an {e inert} chaos record
   attached (no-op hooks — the kernel's behavior with them is byte-for-byte
   that of a kernel built without), capture the pristine post-boot image
   through the shared {!Ticktock.Replayable.Runner} (which also handles the
   snapshot-file overlay: [Snapshot.load] refuses a file from another
   architecture, board or memory layout, so a worker can only ever fork the
   image it was meant to), then fork {e both} runs from it: golden first,
   then the injected run with a seeded engine splicing its fault plan into
   the same chaos record. The suite is (re)loaded per fork — the capture is
   pre-load, so restored program closures are never shared with an
   already-stepped run. Boards are seed-dependent (the RNG capsule seed
   folds the round seed in), so the registry key is board#seed and each
   pair shares exactly one boot. *)
let run_pair_forked ~exec (board : Targets.board) ~seed ~faults =
  let runner = Replayable.Runner.create ~exec () in
  let key = Printf.sprintf "%s#%d" board.Targets.tb_name seed in
  let boot () =
    let chaos = Chaos_intf.create () in
    let made = board.Targets.tb_make (setup_of ~chaos:(Some chaos) ~seed) in
    ((made, chaos), made.Targets.bd_instance.Instance.snap_target)
  in
  let golden =
    Replayable.Runner.cell runner ~key ~boot (fun (made, _) ->
        run_workload made ~make_engine:(fun () -> None))
  in
  let injected =
    Replayable.Runner.cell runner ~key ~boot (fun (made, chaos) ->
        run_workload made ~make_engine:(fun () ->
            Some (Engine.create ~seed ~count:faults ~hooks:made.Targets.bd_hooks chaos)))
  in
  (golden, injected)

(* --- classification --- *)

let row_diverges (g : row) (i : row) =
  (not (String.equal g.r_output i.r_output))
  || (not (String.equal g.r_state i.r_state))
  || g.r_exit <> i.r_exit

let classify_round ?(exec = Replayable.Exec.Boot) (board : Targets.board) ~seed ~faults =
  let golden, injected =
    match exec with
    | Replayable.Exec.Boot -> (run_one board ~seed ~faults:0, run_one board ~seed ~faults)
    | Replayable.Exec.Fork | Replayable.Exec.Snapshot_file _ ->
      run_pair_forked ~exec board ~seed ~faults
  in
  let diverged name =
    match (List.assoc_opt name golden.ro_rows, List.assoc_opt name injected.ro_rows) with
    | Some g, Some i -> row_diverges g i
    | None, None -> false
    | _ -> true
  in
  let transcript_diverges =
    not (String.equal golden.ro_transcript injected.ro_transcript)
  in
  let name_of_pid pid = List.assoc_opt pid injected.ro_pid_name in
  let target_of (inj : Engine.injection) =
    match inj.Engine.inj_pid with
    | Some pid -> name_of_pid pid
    | None -> Workload.device_user inj.Engine.inj_kind
  in
  let target_diverged = function
    | None -> false
    | Some name ->
      diverged name || (name = "chaos-console" && transcript_diverges)
  in
  let classify (inj : Engine.injection) =
    let target = target_of inj in
    let cls, note =
      if not inj.Engine.inj_effective then (Masked, "did not land: " ^ inj.Engine.inj_detail)
      else
        match inj.Engine.inj_kind with
        | Engine.Mpu_corrupt ->
          if target_diverged target then
            (Contained, "ran under corrupted config; scrubber repaired the registers")
          else (Healed, "scrubber detected and repaired within the slice")
        | Engine.Dev_dma_nack -> (Masked, "transfer retried and completed")
        | _ ->
          if target_diverged target then (Contained, inj.Engine.inj_detail)
          else (Masked, inj.Engine.inj_detail)
    in
    { cf_inj = inj; cf_target = target; cf_class = cls; cf_note = note }
  in
  let classified = List.map classify injected.ro_injections in
  let count c = List.length (List.filter (fun x -> x.cf_class = c) classified) in
  (* silent-corruption sweep: every diverging process must be explained by
     a fault that targeted it, or by a loud kernel-announced fault *)
  let targeted =
    List.filter_map (fun c -> if c.cf_inj.Engine.inj_effective then c.cf_target else None)
      classified
  in
  let silent, loud =
    List.fold_left
      (fun (silent, loud) (name, irow) ->
        if not (diverged name) then (silent, loud)
        else if List.mem name targeted then (silent, loud)
        else if irow.r_faulted then
          (silent, Printf.sprintf "%s: untargeted but kernel-faulted (loud)" name :: loud)
        else
          ( Printf.sprintf "%s: diverged with no targeting fault and no detection" name
            :: silent,
            loud ))
      ([], []) injected.ro_rows
  in
  let mpu_effective =
    List.length
      (List.filter
         (fun (i : Engine.injection) ->
           i.Engine.inj_kind = Engine.Mpu_corrupt && i.Engine.inj_effective)
         injected.ro_injections)
  in
  let latency, buckets =
    match hist_of injected.ro_metrics "scrub/detect_latency_cycles" with
    | Some (count, sum, vmin, vmax, buckets) when count > 0 ->
      (Some (count, vmin, sum / count, vmax), buckets)
    | _ -> (None, [])
  in
  {
    rd_board = board.Targets.tb_name;
    rd_seed = seed;
    rd_fired = List.length injected.ro_injections;
    rd_effective =
      List.length
        (List.filter (fun (i : Engine.injection) -> i.Engine.inj_effective)
           injected.ro_injections);
    rd_pending = injected.ro_pending;
    rd_classified = classified;
    rd_masked = count Masked;
    rd_healed = count Healed;
    rd_contained = count Contained;
    rd_silent = List.rev silent;
    rd_loud = List.rev loud;
    rd_mpu_effective = mpu_effective;
    rd_scrub_detections = counter_of injected.ro_metrics "scrub/detections";
    rd_scrub_repairs = counter_of injected.ro_metrics "scrub/repairs";
    rd_scrub_checks = counter_of injected.ro_metrics "scrub/checks";
    rd_watchdog_golden = counter_of golden.ro_metrics "watchdog/fired";
    rd_watchdog_injected = counter_of injected.ro_metrics "watchdog/fired";
    rd_restarts = counter_of injected.ro_metrics "kernel/restarts";
    rd_latency = latency;
    rd_latency_buckets = buckets;
    rd_dma_nacks = injected.ro_dma_nacks;
    rd_uart_overruns = injected.ro_uart_overruns;
  }

(* --- the campaign: rounds in parallel, merged in round order --- *)

let round_ok r =
  r.rd_silent = []
  (* the scrubber must detect every corruption that landed, within the
     configured cadence (here: the same slice) *)
  && r.rd_scrub_detections = r.rd_mpu_effective
  && r.rd_uart_overruns = 0

let render (rounds : round list) =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "# ticktock chaos campaign\n";
  pf "# scrub: every %d switches (repair)  watchdog: %d cycles  max_ticks: %d\n\n"
    scrub_cadence watchdog_budget max_ticks;
  List.iter
    (fun r ->
      pf "== %s seed %d ==\n" r.rd_board r.rd_seed;
      pf "faults: %d fired (%d effective, %d unfired)\n" r.rd_fired r.rd_effective
        r.rd_pending;
      pf "classes: masked %d | healed %d | contained %d\n" r.rd_masked r.rd_healed
        r.rd_contained;
      pf "scrub: %d/%d corruptions detected, %d repairs, %d checks\n"
        r.rd_scrub_detections r.rd_mpu_effective r.rd_scrub_repairs r.rd_scrub_checks;
      (match r.rd_latency with
      | Some (n, mn, mean, mx) ->
        pf "detect latency (cycles): n=%d min=%d mean=%d max=%d\n" n mn mean mx
      | None -> pf "detect latency: no corruptions landed\n");
      pf "watchdog: %d firings (golden %d)  restarts: %d  dma nacks absorbed: %d\n"
        r.rd_watchdog_injected r.rd_watchdog_golden r.rd_restarts r.rd_dma_nacks;
      List.iter
        (fun c ->
          pf "  [%3d] tick %4d %-18s %-12s %-10s %s\n" c.cf_inj.Engine.inj_id
            c.cf_inj.Engine.inj_tick
            (Engine.kind_name c.cf_inj.Engine.inj_kind)
            (Option.value ~default:"-" c.cf_target)
            (class_name c.cf_class) c.cf_note)
        r.rd_classified;
      List.iter (fun s -> pf "  LOUD: %s\n" s) r.rd_loud;
      List.iter (fun s -> pf "  SILENT-CORRUPTION: %s\n" s) r.rd_silent;
      pf "round: %s\n\n" (if round_ok r then "ok" else "FAILED"))
    rounds;
  let sum f = List.fold_left (fun a r -> a + f r) 0 rounds in
  pf "== totals ==\n";
  pf "rounds %d  faults fired %d (effective %d)\n" (List.length rounds)
    (sum (fun r -> r.rd_fired))
    (sum (fun r -> r.rd_effective));
  pf "masked %d  healed %d  contained %d\n"
    (sum (fun r -> r.rd_masked))
    (sum (fun r -> r.rd_healed))
    (sum (fun r -> r.rd_contained));
  pf "scrub detections %d of %d corruptions\n"
    (sum (fun r -> r.rd_scrub_detections))
    (sum (fun r -> r.rd_mpu_effective));
  let silent = sum (fun r -> List.length r.rd_silent) in
  pf "silent cross-process corruption: %s\n"
    (if silent = 0 then "none" else string_of_int silent ^ " (FAILED)");
  pf "campaign: %s\n"
    (if silent = 0 && List.for_all round_ok rounds then "ok" else "FAILED");
  Buffer.contents b

let default_seeds = [ 1; 2; 3; 4; 5 ]
let default_faults = 40

let run ?(exec = Replayable.Exec.Boot) ?(boards = Targets.boards) ?(seeds = default_seeds)
    ?(faults = default_faults) () =
  let specs =
    List.concat_map (fun b -> List.map (fun s -> (b, s)) seeds) boards |> Array.of_list
  in
  (* Rounds ride the shared campaign protocol: (board, seed) pairs are the
     cells, [TICKTOCK_JOBS] workers (parsed once, in [Ticktock.Jobs]) pull
     them from work-stealing deques, and the pool merges results in
     cell-index order — the report is byte-identical at any job count. *)
  let results, _stats =
    Ticktock.Pool.run ~batch:1 ~cells:(Array.length specs)
      ~init:(fun _w -> ())
      ~cell:(fun () i ->
        let b, s = specs.(i) in
        classify_round ~exec b ~seed:s ~faults)
      ()
  in
  let rounds = Array.to_list results |> List.filter_map Fun.id in
  let sum f = List.fold_left (fun a r -> a + f r) 0 rounds in
  let total_silent = sum (fun r -> List.length r.rd_silent) in
  {
    rounds;
    total_fired = sum (fun r -> r.rd_fired);
    total_effective = sum (fun r -> r.rd_effective);
    total_masked = sum (fun r -> r.rd_masked);
    total_healed = sum (fun r -> r.rd_healed);
    total_contained = sum (fun r -> r.rd_contained);
    total_silent;
    ok = total_silent = 0 && List.for_all round_ok rounds;
    report = render rounds;
  }
