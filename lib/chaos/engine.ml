(** The seeded, deterministic fault-injection engine.

    A fault plan is drawn up-front from a [Random.State] seeded by the
    campaign, then replayed against a running board through the two
    {!Ticktock.Chaos_intf} hooks the kernel polls:

    - {b tick-driven} faults fire from [ch_tick] (once per kernel tick,
      before capsules): memory bit flips in app/kernel SRAM and transient
      device errors (UART shifter stuck busy, RNG entropy stall, IPC
      shared-buffer copy NACK, DMA bus NACK);
    - {b slice-driven} faults fire from [ch_pre_slice] (right after the
      kernel configured the MPU for the process about to run): MPU register
      corruption in the live register file, and CPU-level perturbations
      (spurious SysTick/SVC, a dropped SysTick, a corrupted EXC_RETURN).

    Everything the engine does is a function of the seed and the board's
    own deterministic execution, so a campaign replays byte-for-byte.

    Memory flips use the raw (MPU-bypassing) {!Mach.Memory} byte path, the
    same one DMA masters use: a flip landing in a registered code page
    bumps the code generation and thereby invalidates both the bus's
    access-decision cache lines and the CPU's decoded-instruction cache for
    that page. MPU corruption goes through each model's register-write
    front door ([write_region] / [set_entry]), which bumps the generation
    counter exactly like a real reconfiguration — cached access decisions
    are dropped, and malformed values the hardware would reject raise and
    are recorded as rejected (masked at the injection site). *)

open Ticktock

type kind =
  | Mem_flip  (** one bit in app or kernel SRAM *)
  | Mpu_corrupt  (** one live MPU/PMP register, via the arch hook *)
  | Cpu_spurious_systick
  | Cpu_spurious_svc
  | Cpu_drop_systick
  | Cpu_corrupt_exc_return
  | Dev_uart_busy
  | Dev_rng_stall
  | Dev_ipc_nack
  | Dev_dma_nack

let kind_name = function
  | Mem_flip -> "mem-flip"
  | Mpu_corrupt -> "mpu-corrupt"
  | Cpu_spurious_systick -> "spurious-systick"
  | Cpu_spurious_svc -> "spurious-svc"
  | Cpu_drop_systick -> "dropped-systick"
  | Cpu_corrupt_exc_return -> "corrupt-exc-return"
  | Dev_uart_busy -> "uart-busy"
  | Dev_rng_stall -> "rng-stall"
  | Dev_ipc_nack -> "ipc-copy-nack"
  | Dev_dma_nack -> "dma-nack"

type injection = {
  inj_id : int;
  inj_kind : kind;
  inj_tick : int;  (** kernel tick at injection *)
  inj_pid : int option;
      (** the process attributable at injection time: the owner of a
          flipped byte, or the process whose slice was perturbed *)
  inj_effective : bool;
      (** [false] when the fault could not land — the register file
          rejected a malformed write, or no target existed *)
  inj_detail : string;
}

(** What the engine needs from a concrete board; built by {!Targets}. *)
type hooks = {
  hk_mem : Memory.t;
  hk_blocks : unit -> (int * Word32.t * int) list;
      (** live process memory blocks: pid, start, size *)
  hk_kernel_sram : Range.t;
  hk_corrupt_mpu : Random.State.t -> (string, string) result;
      (** flip one bit of one live MPU register through the model's write
          path; [Error reason] when the hardware rejected the value *)
  hk_uart_busy : cycles:int -> unit;
  hk_rng_stall : int ref;
  hk_ipc_nack : int ref;
  hk_dma_nack : (unit -> unit) option;
  hk_obs : Obs.Event.sink option;
}

type t = {
  rng : Random.State.t;
  chaos : Chaos_intf.t;
  hooks : hooks;
  tick_gap : int;
  slice_gap : int;
  mutable tick_queue : kind list;
  mutable tick_countdown : int;
  mutable slice_queue : kind list;
  mutable slice_countdown : int;
  mutable log : injection list;  (* newest first *)
  mutable next_id : int;
}

let default_mix =
  [
    (Mem_flip, 26);
    (Mpu_corrupt, 22);
    (Cpu_spurious_systick, 7);
    (Cpu_spurious_svc, 7);
    (Cpu_drop_systick, 5);
    (Cpu_corrupt_exc_return, 7);
    (Dev_uart_busy, 7);
    (Dev_rng_stall, 7);
    (Dev_ipc_nack, 7);
    (Dev_dma_nack, 5);
  ]

let is_slice_kind = function
  | Mpu_corrupt | Cpu_spurious_systick | Cpu_spurious_svc | Cpu_drop_systick
  | Cpu_corrupt_exc_return ->
    true
  | Mem_flip | Dev_uart_busy | Dev_rng_stall | Dev_ipc_nack | Dev_dma_nack -> false

let draw_kind rng mix total =
  let r = Random.State.int rng total in
  let rec go acc = function
    | [] -> assert false
    | (k, w) :: rest -> if r < acc + w then k else go (acc + w) rest
  in
  go 0 mix

let record t ~kind ~tick ~pid ~effective ~info detail =
  let inj =
    {
      inj_id = t.next_id;
      inj_kind = kind;
      inj_tick = tick;
      inj_pid = pid;
      inj_effective = effective;
      inj_detail = detail;
    }
  in
  t.next_id <- t.next_id + 1;
  t.log <- inj :: t.log;
  if effective then begin
    t.chaos.Chaos_intf.ch_injected <- t.chaos.Chaos_intf.ch_injected + 1;
    match t.hooks.hk_obs with
    | None -> ()
    | Some emit ->
      emit
        (Obs.Event.Chaos_injected
           { kind = kind_name kind; target = Option.value pid ~default:(-1); info })
  end

let fire_tick_fault t ~tick kind =
  match kind with
  | Mem_flip ->
    let blocks = t.hooks.hk_blocks () in
    let n = List.length blocks in
    (* mostly app SRAM (a live process block), sometimes the kernel's *)
    let pid, start, size =
      if n = 0 || Random.State.int t.rng 8 = 0 then
        ( None,
          Range.start t.hooks.hk_kernel_sram,
          Range.size t.hooks.hk_kernel_sram )
      else
        let p, s, z = List.nth blocks (Random.State.int t.rng n) in
        (Some p, s, z)
    in
    let addr = Word32.add start (Random.State.int t.rng size) in
    let bit = Random.State.int t.rng 8 in
    let v = Memory.read8 t.hooks.hk_mem addr in
    Memory.write8 t.hooks.hk_mem addr (v lxor (1 lsl bit));
    record t ~kind ~tick ~pid ~effective:true ~info:bit
      (Printf.sprintf "bit %d at %s%s" bit (Word32.to_hex addr)
         (if pid = None then " (kernel sram)" else ""))
  | Dev_uart_busy ->
    let cycles = 200 + Random.State.int t.rng 1800 in
    t.hooks.hk_uart_busy ~cycles;
    record t ~kind ~tick ~pid:None ~effective:true ~info:cycles
      (Printf.sprintf "shifter busy +%d cycles" cycles)
  | Dev_rng_stall ->
    let stalls = 1 + Random.State.int t.rng 3 in
    t.hooks.hk_rng_stall := !(t.hooks.hk_rng_stall) + stalls;
    record t ~kind ~tick ~pid:None ~effective:true ~info:stalls
      (Printf.sprintf "entropy dry for %d gets" stalls)
  | Dev_ipc_nack ->
    let nacks = 1 + Random.State.int t.rng 3 in
    t.hooks.hk_ipc_nack := !(t.hooks.hk_ipc_nack) + nacks;
    record t ~kind ~tick ~pid:None ~effective:true ~info:nacks
      (Printf.sprintf "%d copy NACKs" nacks)
  | Dev_dma_nack -> (
    match t.hooks.hk_dma_nack with
    | Some f ->
      f ();
      record t ~kind ~tick ~pid:None ~effective:true ~info:1 "bus NACKs next burst"
    | None -> record t ~kind ~tick ~pid:None ~effective:false ~info:0 "no dma engine")
  | Mpu_corrupt | Cpu_spurious_systick | Cpu_spurious_svc | Cpu_drop_systick
  | Cpu_corrupt_exc_return ->
    assert false

let fire_slice_fault t ~pid ~tick kind =
  match kind with
  | Mpu_corrupt ->
    (match t.hooks.hk_corrupt_mpu t.rng with
    | Ok detail ->
      (* stamp for the scrubber's detection-latency measurement *)
      t.chaos.Chaos_intf.ch_mpu_injected_at <- Some (Cycles.read Cycles.global);
      record t ~kind ~tick ~pid:(Some pid) ~effective:true ~info:0 detail
    | Error why ->
      record t ~kind ~tick ~pid:(Some pid) ~effective:false ~info:0 ("rejected: " ^ why));
    Chaos_intf.P_none
  | Cpu_spurious_systick ->
    record t ~kind ~tick ~pid:(Some pid) ~effective:true ~info:0 "slice preempted at entry";
    Chaos_intf.P_spurious_systick
  | Cpu_spurious_svc ->
    record t ~kind ~tick ~pid:(Some pid) ~effective:true ~info:0 "absorbed exception round-trip";
    Chaos_intf.P_spurious_svc
  | Cpu_drop_systick ->
    record t ~kind ~tick ~pid:(Some pid) ~effective:true ~info:0 "slice runs unpreempted";
    Chaos_intf.P_drop_systick
  | Cpu_corrupt_exc_return ->
    let v = 0xFFFF_0000 lor Random.State.int t.rng 0x1_0000 in
    record t ~kind ~tick ~pid:(Some pid) ~effective:true ~info:v
      (Printf.sprintf "EXC_RETURN := %s" (Word32.to_hex v));
    Chaos_intf.P_corrupt_exc_return v
  | Mem_flip | Dev_uart_busy | Dev_rng_stall | Dev_ipc_nack | Dev_dma_nack ->
    assert false

let on_tick t ~tick =
  match t.tick_queue with
  | [] -> ()
  | k :: rest ->
    t.tick_countdown <- t.tick_countdown - 1;
    if t.tick_countdown <= 0 then begin
      t.tick_queue <- rest;
      t.tick_countdown <- 1 + Random.State.int t.rng t.tick_gap;
      fire_tick_fault t ~tick k
    end

let on_pre_slice t ~pid ~tick =
  match t.slice_queue with
  | [] -> Chaos_intf.P_none
  | k :: rest ->
    t.slice_countdown <- t.slice_countdown - 1;
    if t.slice_countdown <= 0 then begin
      t.slice_queue <- rest;
      t.slice_countdown <- 1 + Random.State.int t.rng t.slice_gap;
      fire_slice_fault t ~pid ~tick k
    end
    else Chaos_intf.P_none

let create ~seed ~count ?(mix = default_mix) ?(tick_gap = 6) ?(slice_gap = 12) ~hooks
    (chaos : Chaos_intf.t) =
  let rng = Random.State.make [| 0x71C7; seed |] in
  let total = List.fold_left (fun a (_, w) -> a + w) 0 mix in
  let kinds = List.init count (fun _ -> draw_kind rng mix total) in
  let t =
    {
      rng;
      chaos;
      hooks;
      tick_gap;
      slice_gap;
      tick_queue = List.filter (fun k -> not (is_slice_kind k)) kinds;
      tick_countdown = 1 + Random.State.int rng tick_gap;
      slice_queue = List.filter is_slice_kind kinds;
      slice_countdown = 1 + Random.State.int rng slice_gap;
      log = [];
      next_id = 0;
    }
  in
  chaos.Chaos_intf.ch_tick <- (fun ~tick -> on_tick t ~tick);
  chaos.Chaos_intf.ch_pre_slice <- (fun ~pid ~tick -> on_pre_slice t ~pid ~tick);
  t

let injections t = List.rev t.log

let pending t = List.length t.tick_queue + List.length t.slice_queue
(** faults planned but not yet fired (the run ended first) *)
