(** Companion apps the campaign loads next to the 21-app release suite.

    The suite apps only speak to drivers 0–3, so they never touch the
    capsules whose transient faults the engine injects. These companions
    close that gap:

    - [console]: writes through the UART console capsule (driver 5) with
      its polling transmit path — the app a stuck-busy shifter must not
      corrupt (the blocking driver waits the glitch out);
    - [rng]: requests entropy (driver 8) with a bounded retry loop — the
      client discipline that masks a transiently dry entropy source;
    - [echo server] + [ipc client]: a discovery/notify/shared-buffer
      exchange over the IPC capsule (driver 9); the client retries copy
      NACKs, and a server death mid-exchange must wake the client with an
      error rather than wedging it;
    - [spinner]: an unbounded compute loop that never syscalls — the
      runaway the software watchdog exists to fault, loaded under a
      backoff-restart policy so the campaign shows detect → fault →
      delayed restart → re-detect cycles.

    All outputs are fixed text or values derived from the deterministic
    RNG stream and process layout — never wall-clock or tick values — so a
    golden (uninjected) run is byte-comparable. *)

open Ticktock
open Apps.App_dsl

let server_name = "chaos-echo"

let console_script () =
  let msg = "console capsule check\r\n" in
  let* base = memory_start in
  let* () = write_string base msg in
  let* _ = allow_ro ~driver:5 ~addr:base ~len:(String.length msg) in
  let* () =
    repeat 4 (fun () ->
        let* _ = command ~driver:5 ~cmd:1 ~arg1:(String.length msg) () in
        return ())
  in
  let* () = print "console: 4 writes done\r\n" in
  return 0

let rng_script () =
  let* base = memory_start in
  let* _ = allow_rw ~driver:8 ~addr:base ~len:8 in
  (* retry while the entropy source is transiently dry *)
  let rec get tries =
    if tries = 0 then return Userland.failure
    else
      let* r = command ~driver:8 ~cmd:1 ~arg1:8 () in
      if r = Userland.failure then get (tries - 1) else return r
  in
  let* got = get 64 in
  if got = Userland.failure then
    let* () = print "rng: starved\r\n" in
    return 1
  else
    let* b0 = load8 base in
    let* b1 = load8 (Word32.add base 1) in
    let* () = printf "rng: %d bytes, first %02x %02x\r\n" got b0 b1 in
    return 0

let echo_server_script () =
  let* base = memory_start in
  let* _ = allow_rw ~driver:9 ~addr:base ~len:4 in
  let* _ = command ~driver:9 ~cmd:0 () in
  let* _ = subscribe ~driver:9 ~upcall_id:2 in
  (* serve one client exchange, then park again and exit after a second *)
  let rec serve n =
    if n = 0 then return 0
    else
      let* client = yield in
      let* _ = command ~driver:9 ~cmd:3 ~arg1:client () in
      serve (n - 1)
  in
  serve 1

let ipc_client_script () =
  let* base = memory_start in
  let* () = write_cstring base server_name in
  let* _ = allow_ro ~driver:9 ~addr:base ~len:(String.length server_name + 1) in
  let* srv = command ~driver:9 ~cmd:1 () in
  if srv = Userland.failure then
    let* () = print "ipc: no server\r\n" in
    return 1
  else
    let* _ = subscribe ~driver:9 ~upcall_id:3 in
    (* poke a byte into the server's shared buffer, retrying transient
       copy NACKs, and read it back the same way *)
    let rec poke tries =
      if tries = 0 then return Userland.failure
      else
        let* r = command ~driver:9 ~cmd:5 ~arg1:srv ~arg2:0x5A () in
        if r = Userland.failure then poke (tries - 1) else return r
    in
    let rec peek tries =
      if tries = 0 then return Userland.failure
      else
        let* r = command ~driver:9 ~cmd:4 ~arg1:srv ~arg2:0 () in
        if r = Userland.failure then peek (tries - 1) else return r
    in
    let* _ = poke 32 in
    let* back = peek 32 in
    let* () =
      if back = 0x5A then print "ipc: echo ok\r\n" else print "ipc: echo bad\r\n"
    in
    let* _ = command ~driver:9 ~cmd:2 ~arg1:srv () in
    let* reply = yield in
    let* () =
      if reply = srv then print "ipc: reply ok\r\n"
      else if reply = Capsules.Ipc.peer_died then print "ipc: server died\r\n"
      else print "ipc: bad reply\r\n"
    in
    return 0

let spinner_script () =
  let rec loop () =
    let* _ = compute 64 in
    loop ()
  in
  loop ()

(** every companion: name, script, fault policy *)
let all : (string * (unit -> int t) * Process.fault_policy) list =
  [
    ("chaos-console", console_script, Process.Stop);
    ("chaos-rng", rng_script, Process.Stop);
    (server_name, echo_server_script, Process.Stop);
    ("chaos-ipc", ipc_client_script, Process.Stop);
    ( "chaos-spin",
      spinner_script,
      Process.Restart_backoff
        { max_restarts = 3; base_delay = 4; max_delay = 64; decay_span = 0 } );
  ]

(** Which companion observes each device-fault kind — the process a
    transient device error is attributed to when classifying. *)
let device_user = function
  | Engine.Dev_uart_busy -> Some "chaos-console"
  | Engine.Dev_rng_stall -> Some "chaos-rng"
  | Engine.Dev_ipc_nack -> Some "chaos-ipc"
  | _ -> None

(** Load every companion onto a built board; returns (name, pid) assoc. *)
let load (made : Targets.made) =
  List.filter_map
    (fun (name, script, policy) ->
      let program () = to_program (script ()) in
      match made.Targets.bd_load ~name ~program ~min_ram:1024 ~policy with
      | Ok pid -> Some (name, pid)
      | Error _ -> None)
    all
