let exc_svc = 11
let exc_pendsv = 14
let exc_systick = 15
let exc_return_handler_msp = 0xFFFF_FFF1
let exc_return_thread_msp = 0xFFFF_FFF9
let exc_return_thread_psp = 0xFFFF_FFFD

let is_exc_return v =
  v = exc_return_handler_msp || v = exc_return_thread_msp || v = exc_return_thread_psp

let frame_words = 8

type isr = Cpu.t -> Word32.t

let entry cpu ~exc_num =
  Verify.Violation.requiref "exn.entry: exception number" (exc_num >= 2 && exc_num <= 255)
    "exc_num=%d" exc_num;
  Verify.Violation.require "exn.entry: no nesting" (Cpu.mode cpu = Cpu.Thread);
  Cycles.tick ~n:Cycles.exception_entry Cycles.global;
  let exc_return =
    if Word32.bit (Cpu.control_committed cpu) 1 then exc_return_thread_psp
    else exc_return_thread_msp
  in
  (* Stack the 8-word frame on the active stack, with the privilege of the
     preempted context (an unprivileged context cannot stack into memory the
     MPU denies it). *)
  let mem = Cpu.memory cpu in
  let frame = Word32.sub (Cpu.sp cpu) (4 * frame_words) in
  let store i v = Memory.store32 mem (Word32.add frame (4 * i)) v in
  store 0 (Cpu.get cpu Regs.R0);
  store 1 (Cpu.get cpu Regs.R1);
  store 2 (Cpu.get cpu Regs.R2);
  store 3 (Cpu.get cpu Regs.R3);
  store 4 (Cpu.get cpu Regs.R12);
  store 5 (Cpu.get_special cpu Regs.Lr);
  store 6 (Cpu.get_special cpu Regs.Pc);
  store 7 (Cpu.get_special cpu Regs.Psr);
  Cpu.set_sp cpu frame;
  (* Enter handler mode. *)
  Cpu.set_mode cpu Cpu.Handler;
  Cpu.set_special_raw cpu Regs.Psr
    (Word32.set_bits (Cpu.get_special cpu Regs.Psr) ~hi:8 ~lo:0 exc_num);
  Cpu.set_special_raw cpu Regs.Lr exc_return;
  match Cpu.obs cpu with
  | None -> ()
  | Some emit -> emit (Obs.Event.Exc_entry { exc = exc_num })

let return cpu exc_return =
  Verify.Violation.require "exn.return: handler mode" (Cpu.mode cpu = Cpu.Handler);
  Verify.Violation.requiref "exn.return: valid EXC_RETURN" (is_exc_return exc_return) "lr=%s"
    (Word32.to_hex exc_return);
  Cycles.tick ~n:Cycles.exception_entry Cycles.global;
  let mem = Cpu.memory cpu in
  let use_psp = exc_return = exc_return_thread_psp in
  let frame = Cpu.get_special cpu (if use_psp then Regs.Psp else Regs.Msp) in
  let load i = Memory.read32 mem (Word32.add frame (4 * i)) in
  Cpu.set cpu Regs.R0 (load 0);
  Cpu.set cpu Regs.R1 (load 1);
  Cpu.set cpu Regs.R2 (load 2);
  Cpu.set cpu Regs.R3 (load 3);
  Cpu.set cpu Regs.R12 (load 4);
  Cpu.set_special_raw cpu Regs.Lr (load 5);
  Cpu.set_special_raw cpu Regs.Pc (load 6);
  (* Restore xPSR but clear IPSR: we are leaving handler mode. *)
  Cpu.set_special_raw cpu Regs.Psr (Word32.set_bits (load 7) ~hi:8 ~lo:0 0);
  let new_sp = Word32.add frame (4 * frame_words) in
  if exc_return = exc_return_handler_msp then Cpu.set_mode cpu Cpu.Handler
  else begin
    Cpu.set_mode cpu Cpu.Thread;
    (* Hardware updates CONTROL.SPSEL to match the returned-to stack. *)
    let control = Cpu.control_committed cpu in
    Cpu.set_special_raw cpu Regs.Control (Word32.set_bit control 1 use_psp)
  end;
  Cpu.set_special_raw cpu (if use_psp then Regs.Psp else Regs.Msp) new_sp;
  match Cpu.obs cpu with
  | None -> ()
  | Some emit -> emit (Obs.Event.Exc_return { to_handler = exc_return = exc_return_handler_msp })

let preempt cpu ~exc_num ~isr =
  entry cpu ~exc_num;
  let exc_return = isr cpu in
  Verify.Violation.ensuref "preempt: isr yields control to kernel"
    (exc_return = exc_return_thread_msp) "lr=%s" (Word32.to_hex exc_return);
  return cpu exc_return
