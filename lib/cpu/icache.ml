(* Decoded-instruction, basic-block and trace-link caches for the Mc
   engine. See icache.mli for the invalidation story. *)

(* The stop type lives here (rather than in Mc) so compiled micro-ops —
   built by Cpu, stored in blocks — can return it without a dependency
   cycle. Mc re-exports it under its historical name. *)
type stop =
  | Svc_taken of int
  | Exc_return of Word32.t
  | Bx_reg of Word32.t
  | Decode_error of string
  | Out_of_fuel

type entry = {
  eaddr : Word32.t;
  instr : Thumb.instr;
  isize : int;
  next_pc : Word32.t;  (* eaddr + isize, precomputed for the dispatcher *)
}

(* How a block hands control to its successor — decided once at publish
   from the final instruction, so the dispatcher picks a link slot with
   one enum compare instead of re-inspecting the instruction. *)
type term =
  | Term_fall  (* no control transfer (cap/granule end): successor is fall_pc *)
  | Term_cond  (* B_cond: successor is fall_pc or taken_pc *)
  | Term_indirect  (* Pop with PC: dynamic target, served by the inline cache *)
  | Term_exit  (* isb/svc/bx: never linked (isb is the privilege commit point) *)

type block = {
  start : Word32.t;
  entries : entry array;
  byte_len : int;
  built_gen : int;
  (* permission stamp: the (checker epoch, generation, privilege) under
     which every halfword of the block was last execute-checked. MPU
     reprogramming or a privilege flip invalidates only this stamp; the
     decoded bodies stay until the underlying bytes change. *)
  mutable stamp_epoch : int;
  mutable stamp_gen : int;
  mutable stamp_priv : int;
  (* compiled macro-ops (see Cpu.compile_block): consecutive pure ALU
     instructions fused into one closure, everything else one closure per
     instruction. Parallel arrays give the instruction count of each
     macro-op and whether it can write memory (and hence bump the code
     generation — the only points where a mid-block re-validation is
     needed). Only the linking engine executes these; the unlinked engine
     interprets [entries] exactly as before. *)
  ops : (unit -> stop option) array;
  wmask : bool array;
  mcount : int array;
  (* trace links: host-side successor pointers in QEMU-TB-chaining style.
     Pure cache state — validated against (built_gen, stamp triple) at
     every follow, severed by reset, never part of any snapshot. *)
  term : term;
  fall_pc : Word32.t;
  taken_pc : Word32.t;  (* meaningful only when term = Term_cond *)
  mutable link_next : block option;
  mutable link_taken : block option;
  ind : block option array;  (* 4-entry indirect-target inline cache ([||] unless Term_indirect) *)
}

let no_stamp = min_int

(* Direct-mapped tables; PCs are halfword-aligned so index on pc/2. *)
let block_bits = 11
let block_slots = 1 lsl block_bits
let dec_bits = 12
let dec_slots = 1 lsl dec_bits

(* log2 buckets for the trace-length histogram, same convention as
   Obs.Metrics: bucket i counts traces whose block count has bit length i. *)
let th_buckets = 32

(* --- coverage map (AFL-style) ---

   Host-side (block-entry, edge) hit maps over the dispatch stream. Two
   2^cov_bits byte maps of saturating counts: [cv_blocks] indexed by a
   multiplicative hash of the block start PC, [cv_edges] by
   [cur lxor (prev lsr 1)] in the classic AFL scheme (the shift makes
   A->B and B->A distinct, and A->A nonzero). Allocated only when
   coverage is switched on, so the default-path cost is one [None]
   check per block dispatch. Never part of any snapshot, fingerprint or
   model-visible metric. *)
let cov_bits = 16
let cov_slots = 1 lsl cov_bits

type cov = {
  cv_blocks : Bytes.t;
  cv_edges : Bytes.t;
  mutable cv_prev : int;
  mutable cv_block_hits : int;  (* exact totals; the byte maps saturate *)
  mutable cv_edge_hits : int;
}

type t = {
  mutable enabled : bool;
  mutable linking : bool;
  mutable cov : cov option;
  blocks : block option array;
  dec_addr : int array;  (* -1 = empty *)
  dec_gen : int array;
  dec_instr : Thumb.instr array;
  dec_size : int array;
  mutable block_hits : int;
  mutable block_misses : int;
  mutable cached_instrs : int;  (* instructions dispatched from cached blocks *)
  mutable total_instrs : int;  (* all instructions executed through [Mc.run] *)
  mutable link_hits : int;
  mutable link_misses : int;
  mutable link_flushes : int;
  mutable traces : int;
  mutable trace_blocks : int;
  mutable tl_min : int;
  mutable tl_max : int;
  trace_hist : int array;
}

let linking_default () =
  match Sys.getenv_opt "TICKTOCK_SUPERBLOCK" with
  | Some ("0" | "off" | "false" | "no") -> false
  | _ -> true

let create () =
  {
    enabled = true;
    linking = linking_default ();
    cov = None;
    blocks = Array.make block_slots None;
    dec_addr = Array.make dec_slots (-1);
    dec_gen = Array.make dec_slots (-1);
    dec_instr = Array.make dec_slots Thumb.Nop;
    dec_size = Array.make dec_slots 0;
    block_hits = 0;
    block_misses = 0;
    cached_instrs = 0;
    total_instrs = 0;
    link_hits = 0;
    link_misses = 0;
    link_flushes = 0;
    traces = 0;
    trace_blocks = 0;
    tl_min = 0;
    tl_max = 0;
    trace_hist = Array.make th_buckets 0;
  }

let set_enabled t v = t.enabled <- v
let enabled t = t.enabled
let set_linking t v = t.linking <- v
let linking t = t.linking

(* --- coverage --- *)

let set_coverage t v =
  match (v, t.cov) with
  | true, None ->
    t.cov <-
      Some
        {
          cv_blocks = Bytes.make cov_slots '\000';
          cv_edges = Bytes.make cov_slots '\000';
          cv_prev = 0;
          cv_block_hits = 0;
          cv_edge_hits = 0;
        }
  | true, Some _ -> ()
  | false, _ -> t.cov <- None

let coverage t = t.cov <> None

let cov_reset t =
  match t.cov with
  | None -> ()
  | Some c ->
    Bytes.fill c.cv_blocks 0 cov_slots '\000';
    Bytes.fill c.cv_edges 0 cov_slots '\000';
    c.cv_prev <- 0;
    c.cv_block_hits <- 0;
    c.cv_edge_hits <- 0

(* Fibonacci-hash the halfword index of the block start into the map.
   Flash PCs span a few KiB, so after the multiply the top [cov_bits] of
   the low 32 carry well-mixed entropy. *)
let cov_hash pc = ((pc lsr 1) * 0x9E3779B1) lsr (32 - cov_bits) land (cov_slots - 1)

let sat_incr map i =
  let v = Char.code (Bytes.unsafe_get map i) in
  if v < 255 then Bytes.unsafe_set map i (Char.unsafe_chr (v + 1))

let cov_note t pc =
  match t.cov with
  | None -> ()
  | Some c ->
    let cur = cov_hash pc in
    sat_incr c.cv_blocks cur;
    sat_incr c.cv_edges (cur lxor c.cv_prev);
    c.cv_prev <- cur lsr 1;
    c.cv_block_hits <- c.cv_block_hits + 1;
    c.cv_edge_hits <- c.cv_edge_hits + 1

(* AFL's 8-class count bucketing: a slot's saturating count collapses to
   a one-bit-per-class byte, so "this edge fired 4 times" and "5 times"
   look the same while 1 vs 2 vs 3 vs 4+ transitions still count as new
   behaviour. *)
(* AFL's ladder, but strictly power-of-two above 3 (AFL merges 32..127
   into one class): a schedule that runs twice as long always crosses a
   class boundary, so doubling a kept input is always a discovery until
   the byte saturates — the property the evolutionary loop climbs on. *)
let classify v =
  if v = 0 then 0
  else if v = 1 then 1
  else if v = 2 then 2
  else if v = 3 then 4
  else if v < 8 then 8
  else if v < 16 then 16
  else if v < 32 then 32
  else if v < 64 then 64
  else if v < 128 then 128
  else 256

(* Sparse classified export: (slot, class) pairs in ascending slot order,
   block slots [0, cov_slots), edge slots offset by [cov_slots]. A round
   lights a few hundred slots out of 128k, so sparse keeps per-input
   results small enough to ship through the pool and the corpus store. *)
let cov_classified t =
  match t.cov with
  | None -> [||]
  | Some c ->
    let acc = ref [] in
    for i = cov_slots - 1 downto 0 do
      let v = Char.code (Bytes.unsafe_get c.cv_edges i) in
      if v > 0 then acc := (cov_slots + i, classify v) :: !acc
    done;
    for i = cov_slots - 1 downto 0 do
      let v = Char.code (Bytes.unsafe_get c.cv_blocks i) in
      if v > 0 then acc := (i, classify v) :: !acc
    done;
    Array.of_list !acc

type cov_counts = { cc_blocks_lit : int; cc_edges_lit : int; cc_block_hits : int; cc_edge_hits : int }

let cov_counts t =
  match t.cov with
  | None -> { cc_blocks_lit = 0; cc_edges_lit = 0; cc_block_hits = 0; cc_edge_hits = 0 }
  | Some c ->
    let lit map =
      let n = ref 0 in
      for i = 0 to cov_slots - 1 do
        if Bytes.unsafe_get map i <> '\000' then incr n
      done;
      !n
    in
    {
      cc_blocks_lit = lit c.cv_blocks;
      cc_edges_lit = lit c.cv_edges;
      cc_block_hits = c.cv_block_hits;
      cc_edge_hits = c.cv_edge_hits;
    }

(* Sever every trace link before dropping the block array: a block that
   outlives the reset in some caller's hands must not keep a chain of
   stale successors reachable (for the GC, and for any dispatcher that
   might still hold it across the reset). *)
let sever_links t =
  Array.iter
    (function
      | None -> ()
      | Some b ->
        b.link_next <- None;
        b.link_taken <- None;
        if Array.length b.ind > 0 then Array.fill b.ind 0 (Array.length b.ind) None)
    t.blocks

let reset (t : t) =
  sever_links t;
  Array.fill t.blocks 0 block_slots None;
  Array.fill t.dec_addr 0 dec_slots (-1);
  t.block_hits <- 0;
  t.block_misses <- 0;
  t.cached_instrs <- 0;
  t.total_instrs <- 0;
  t.link_hits <- 0;
  t.link_misses <- 0;
  t.link_flushes <- 0;
  t.traces <- 0;
  t.trace_blocks <- 0;
  t.tl_min <- 0;
  t.tl_max <- 0;
  Array.fill t.trace_hist 0 th_buckets 0

type stats = {
  hits : int;
  misses : int;
  cached : int;
  total : int;
  link_hits : int;
  link_misses : int;
  link_flushes : int;
  traces : int;
  trace_blocks : int;
}

let stats (t : t) =
  {
    hits = t.block_hits;
    misses = t.block_misses;
    cached = t.cached_instrs;
    total = t.total_instrs;
    link_hits = t.link_hits;
    link_misses = t.link_misses;
    link_flushes = t.link_flushes;
    traces = t.traces;
    trace_blocks = t.trace_blocks;
  }

let hit_rate (t : t) =
  let probes = t.block_hits + t.block_misses in
  if probes = 0 then 0.0 else float_of_int t.block_hits /. float_of_int probes

let link_hit_rate (t : t) =
  let probes = t.link_hits + t.link_misses in
  if probes = 0 then 0.0 else float_of_int t.link_hits /. float_of_int probes

let avg_trace_len (t : t) =
  if t.traces = 0 then 0.0 else float_of_int t.trace_blocks /. float_of_int t.traces

type trace_hist = {
  th_count : int;
  th_sum : int;
  th_min : int;
  th_max : int;
  th_buckets : (int * int) list;  (* (inclusive upper bound, count), non-empty only *)
}

let trace_len_summary (t : t) =
  let buckets = ref [] in
  for i = th_buckets - 1 downto 0 do
    if t.trace_hist.(i) > 0 then buckets := ((1 lsl i) - 1, t.trace_hist.(i)) :: !buckets
  done;
  {
    th_count = t.traces;
    th_sum = t.trace_blocks;
    th_min = t.tl_min;
    th_max = t.tl_max;
    th_buckets = !buckets;
  }

let record_hit t n =
  t.block_hits <- t.block_hits + 1;
  t.cached_instrs <- t.cached_instrs + n;
  t.total_instrs <- t.total_instrs + n

let record_miss t = t.block_misses <- t.block_misses + 1
let record_instrs t n = t.total_instrs <- t.total_instrs + n
let record_link_hit (t : t) = t.link_hits <- t.link_hits + 1
let record_link_miss (t : t) = t.link_misses <- t.link_misses + 1
let record_link_flush (t : t) = t.link_flushes <- t.link_flushes + 1

let bucket_of v =
  let v = if v < 0 then 0 else v in
  let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
  bits v 0

let record_trace (t : t) ~blocks =
  t.traces <- t.traces + 1;
  t.trace_blocks <- t.trace_blocks + blocks;
  if t.traces = 1 then begin
    t.tl_min <- blocks;
    t.tl_max <- blocks
  end
  else begin
    if blocks < t.tl_min then t.tl_min <- blocks;
    if blocks > t.tl_max then t.tl_max <- blocks
  end;
  let b = bucket_of blocks in
  let b = if b >= th_buckets then th_buckets - 1 else b in
  t.trace_hist.(b) <- t.trace_hist.(b) + 1

(* --- decoded-instruction cache --- *)

let dec_idx pc = (pc lsr 1) land (dec_slots - 1)

let probe_decode t ~gen pc =
  let i = dec_idx pc in
  if t.dec_addr.(i) = pc && t.dec_gen.(i) = gen then
    Some (t.dec_instr.(i), t.dec_size.(i))
  else None

let insert_decode t ~gen pc instr isize =
  let i = dec_idx pc in
  t.dec_addr.(i) <- pc;
  t.dec_gen.(i) <- gen;
  t.dec_instr.(i) <- instr;
  t.dec_size.(i) <- isize

(* --- basic-block cache --- *)

let block_idx pc = (pc lsr 1) land (block_slots - 1)

let find_block t ~gen pc =
  match t.blocks.(block_idx pc) with
  | Some b when b.start = pc && b.built_gen = gen -> Some b
  | _ -> None

let publish_block t ~gen pc entries ~compile =
  let entries = Array.of_list (List.rev entries) in
  let byte_len = Array.fold_left (fun acc e -> acc + e.isize) 0 entries in
  let n = Array.length entries in
  if n > 0 then begin
    let last = entries.(n - 1) in
    let term, taken_pc =
      match last.instr with
      | Thumb.B_cond (_, off) -> (Term_cond, Word32.add last.next_pc ((off * 2) + 2))
      | Thumb.Pop (_, true) -> (Term_indirect, 0)
      | Thumb.Isb | Thumb.Svc _ | Thumb.Bx _ -> (Term_exit, 0)
      | _ -> (Term_fall, 0)
    in
    let ops, wmask, mcount = compile entries in
    t.blocks.(block_idx pc) <-
      Some
        {
          start = pc;
          entries;
          byte_len;
          built_gen = gen;
          stamp_epoch = no_stamp;
          stamp_gen = no_stamp;
          stamp_priv = no_stamp;
          ops;
          wmask;
          mcount;
          term;
          fall_pc = last.next_pc;
          taken_pc;
          link_next = None;
          link_taken = None;
          ind = (if term = Term_indirect then Array.make 4 None else [||]);
        }
  end
