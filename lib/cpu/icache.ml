(* Decoded-instruction and basic-block caches for the Mc engine. See
   icache.mli for the invalidation story. *)

type entry = {
  eaddr : Word32.t;
  instr : Thumb.instr;
  isize : int;
  next_pc : Word32.t;  (* eaddr + isize, precomputed for the dispatcher *)
}

type block = {
  start : Word32.t;
  entries : entry array;
  byte_len : int;
  built_gen : int;
  (* permission stamp: the (checker epoch, generation, privilege) under
     which every halfword of the block was last execute-checked. MPU
     reprogramming or a privilege flip invalidates only this stamp; the
     decoded bodies stay until the underlying bytes change. *)
  mutable stamp_epoch : int;
  mutable stamp_gen : int;
  mutable stamp_priv : int;
}

let no_stamp = min_int

(* Direct-mapped tables; PCs are halfword-aligned so index on pc/2. *)
let block_bits = 11
let block_slots = 1 lsl block_bits
let dec_bits = 12
let dec_slots = 1 lsl dec_bits

type t = {
  mutable enabled : bool;
  blocks : block option array;
  dec_addr : int array;  (* -1 = empty *)
  dec_gen : int array;
  dec_instr : Thumb.instr array;
  dec_size : int array;
  mutable block_hits : int;
  mutable block_misses : int;
  mutable cached_instrs : int;  (* instructions dispatched from cached blocks *)
  mutable total_instrs : int;  (* all instructions executed through [Mc.run] *)
}

let create () =
  {
    enabled = true;
    blocks = Array.make block_slots None;
    dec_addr = Array.make dec_slots (-1);
    dec_gen = Array.make dec_slots (-1);
    dec_instr = Array.make dec_slots Thumb.Nop;
    dec_size = Array.make dec_slots 0;
    block_hits = 0;
    block_misses = 0;
    cached_instrs = 0;
    total_instrs = 0;
  }

let set_enabled t v = t.enabled <- v
let enabled t = t.enabled

let reset t =
  Array.fill t.blocks 0 block_slots None;
  Array.fill t.dec_addr 0 dec_slots (-1);
  t.block_hits <- 0;
  t.block_misses <- 0;
  t.cached_instrs <- 0;
  t.total_instrs <- 0

type stats = {
  hits : int;
  misses : int;
  cached : int;
  total : int;
}

let stats t =
  {
    hits = t.block_hits;
    misses = t.block_misses;
    cached = t.cached_instrs;
    total = t.total_instrs;
  }

let hit_rate t =
  let probes = t.block_hits + t.block_misses in
  if probes = 0 then 0.0 else float_of_int t.block_hits /. float_of_int probes

let record_hit t n =
  t.block_hits <- t.block_hits + 1;
  t.cached_instrs <- t.cached_instrs + n;
  t.total_instrs <- t.total_instrs + n

let record_miss t = t.block_misses <- t.block_misses + 1
let record_instrs t n = t.total_instrs <- t.total_instrs + n

(* --- decoded-instruction cache --- *)

let dec_idx pc = (pc lsr 1) land (dec_slots - 1)

let probe_decode t ~gen pc =
  let i = dec_idx pc in
  if t.dec_addr.(i) = pc && t.dec_gen.(i) = gen then
    Some (t.dec_instr.(i), t.dec_size.(i))
  else None

let insert_decode t ~gen pc instr isize =
  let i = dec_idx pc in
  t.dec_addr.(i) <- pc;
  t.dec_gen.(i) <- gen;
  t.dec_instr.(i) <- instr;
  t.dec_size.(i) <- isize

(* --- basic-block cache --- *)

let block_idx pc = (pc lsr 1) land (block_slots - 1)

let find_block t ~gen pc =
  match t.blocks.(block_idx pc) with
  | Some b when b.start = pc && b.built_gen = gen -> Some b
  | _ -> None

let publish_block t ~gen pc entries =
  let entries = Array.of_list (List.rev entries) in
  let byte_len = Array.fold_left (fun acc e -> acc + e.isize) 0 entries in
  if Array.length entries > 0 then
    t.blocks.(block_idx pc) <-
      Some
        {
          start = pc;
          entries;
          byte_len;
          built_gen = gen;
          stamp_epoch = no_stamp;
          stamp_gen = no_stamp;
          stamp_priv = no_stamp;
        }
