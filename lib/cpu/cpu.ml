type mode = Thread | Handler

type t = {
  regs : Word32.t array;  (* r0-r12 *)
  mutable msp : Word32.t;
  mutable psp : Word32.t;
  mutable lr : Word32.t;
  mutable pc : Word32.t;
  mutable psr : Word32.t;
  mutable control : Word32.t;  (* committed value, post-ISB *)
  mutable control_pending : Word32.t option;
  mutable cpu_mode : mode;
  mem : Memory.t;
  icache : Icache.t;  (* decoded-instruction/basic-block cache for Mc *)
  cyc : Cycles.handle;  (* the global counter, resolved once per create *)
  mutable obs : Obs.Event.sink option;  (* consulted only by Exn entry/return *)
}

let create mem =
  {
    regs = Array.make 13 0;
    msp = Range.end_ Layout.kernel_sram;
    psp = 0;
    lr = 0;
    pc = 0;
    psr = 0;
    control = 0;
    control_pending = None;
    cpu_mode = Thread;
    mem;
    icache = Icache.create ();
    cyc = Cycles.handle Cycles.global;
    obs = None;
  }

let memory t = t.mem
let icache t = t.icache
let set_obs t sink = t.obs <- sink
let obs t = t.obs
let cycles t = t.cyc
let get t r = t.regs.(Regs.gpr_index r)

let set t r v =
  Cycles.charge_handle t.cyc Cycles.alu;
  t.regs.(Regs.gpr_index r) <- Word32.of_int v

let control_committed t = t.control
let mode t = t.cpu_mode

let privileged t =
  match t.cpu_mode with Handler -> true | Thread -> not (Word32.bit t.control 0)

let spsel t = Word32.bit t.control 1

let sp t = match t.cpu_mode with Handler -> t.msp | Thread -> if spsel t then t.psp else t.msp

let set_sp t v =
  match t.cpu_mode with
  | Handler -> t.msp <- v
  | Thread -> if spsel t then t.psp <- v else t.msp <- v

let exception_number t = Word32.bits t.psr ~hi:8 ~lo:0

let get_special t = function
  | Regs.Msp -> t.msp
  | Regs.Psp -> t.psp
  | Regs.Lr -> t.lr
  | Regs.Pc -> t.pc
  | Regs.Psr -> t.psr
  | Regs.Control -> ( match t.control_pending with Some v -> v | None -> t.control)
  | Regs.Ipsr -> exception_number t

let set_special_raw t reg v =
  let v = Word32.of_int v in
  match reg with
  | Regs.Msp -> t.msp <- v
  | Regs.Psp -> t.psp <- v
  | Regs.Lr -> t.lr <- v
  | Regs.Pc -> t.pc <- v
  | Regs.Psr -> t.psr <- v
  | Regs.Control ->
    t.control <- v land 0b11;
    t.control_pending <- None
  | Regs.Ipsr -> t.psr <- Word32.set_bits t.psr ~hi:8 ~lo:0 v

let set_mode t m = t.cpu_mode <- m

(* PC-only raw setter for the block dispatcher: no register match, no
   masking — callers pass already-masked Word32 values. *)
let set_pc t v = t.pc <- v

(* --- instruction methods --- *)

let mov t ~dst ~src =
  Cycles.charge_handle t.cyc Cycles.alu;
  t.regs.(Regs.gpr_index dst) <- get t src

(* guard first: requiref's happy path still walks the format spine, which
   is measurable at one call per emulated instruction *)
let movw_imm t r imm =
  if imm < 0 || imm > 0xffff then
    Verify.Violation.requiref "movw_imm" false "immediate %d" imm;
  Cycles.charge_handle t.cyc Cycles.alu;
  t.regs.(Regs.gpr_index r) <- imm

let movt_imm t r imm =
  if imm < 0 || imm > 0xffff then
    Verify.Violation.requiref "movt_imm" false "immediate %d" imm;
  Cycles.charge_handle t.cyc Cycles.alu;
  t.regs.(Regs.gpr_index r) <- Word32.set_bits (get t r) ~hi:31 ~lo:16 imm

let add_imm t r imm =
  Cycles.charge_handle t.cyc Cycles.alu;
  t.regs.(Regs.gpr_index r) <- Word32.add (get t r) imm

let sub_imm t r imm =
  Cycles.charge_handle t.cyc Cycles.alu;
  t.regs.(Regs.gpr_index r) <- Word32.sub (get t r) imm

(* The Figure 7 contract: IPSR is never writable; stack pointers must
   receive valid RAM addresses; CONTROL writes require privilege. *)
let msr t reg src =
  let v = get t src in
  Verify.Violation.require "msr: !is_ipsr(reg)" (not (Regs.is_ipsr reg));
  Verify.Violation.requiref "msr: sp gets valid ram addr"
    ((not (Regs.is_sp reg || Regs.is_psp reg)) || Layout.in_sram v)
    "value=%s" (Word32.to_hex v);
  Cycles.charge_handle t.cyc Cycles.alu;
  match reg with
  | Regs.Control ->
    Verify.Violation.require "msr: control write is privileged" (privileged t);
    t.control_pending <- Some (v land 0b11)
  | Regs.Msp | Regs.Psp | Regs.Lr | Regs.Pc | Regs.Psr | Regs.Ipsr -> set_special_raw t reg v

let mrs t dst reg =
  Cycles.charge_handle t.cyc Cycles.alu;
  t.regs.(Regs.gpr_index dst) <- get_special t reg

let isb t =
  Cycles.charge_handle t.cyc Cycles.branch;
  match t.control_pending with
  | Some v ->
    t.control <- v;
    t.control_pending <- None
  | None -> ()

let dsb t = Cycles.charge_handle t.cyc Cycles.branch

let ldr t dst ~base ~offset =
  Cycles.charge_handle t.cyc Cycles.mem;
  t.regs.(Regs.gpr_index dst) <- Memory.load32 t.mem (Word32.add (get t base) offset)

let str t src ~base ~offset =
  Cycles.charge_handle t.cyc Cycles.mem;
  Memory.store32 t.mem (Word32.add (get t base) offset) (get t src)

let ldr_sp t dst ~offset =
  Cycles.charge_handle t.cyc Cycles.mem;
  t.regs.(Regs.gpr_index dst) <- Memory.load32 t.mem (Word32.add (sp t) offset)

let str_sp t src ~offset =
  Cycles.charge_handle t.cyc Cycles.mem;
  Memory.store32 t.mem (Word32.add (sp t) offset) (get t src)

let stmdb_sp t regs =
  let n = List.length regs in
  Cycles.charge_handle t.cyc (n * Cycles.mem);
  let base = Word32.sub (sp t) (4 * n) in
  List.iteri (fun i r -> Memory.store32 t.mem (Word32.add base (4 * i)) (get t r)) regs;
  set_sp t base

let ldmia_sp t regs =
  let n = List.length regs in
  Cycles.charge_handle t.cyc (n * Cycles.mem);
  let base = sp t in
  List.iteri (fun i r -> t.regs.(Regs.gpr_index r) <- Memory.load32 t.mem (Word32.add base (4 * i))) regs;
  set_sp t (Word32.add base (4 * n))

let stmia t ~base regs =
  Cycles.charge_handle t.cyc (List.length regs * Cycles.mem);
  let addr = get t base in
  List.iteri (fun i r -> Memory.store32 t.mem (Word32.add addr (4 * i)) (get t r)) regs

let ldmia t ~base regs =
  Cycles.charge_handle t.cyc (List.length regs * Cycles.mem);
  let addr = get t base in
  List.iteri
    (fun i r -> t.regs.(Regs.gpr_index r) <- Memory.load32 t.mem (Word32.add addr (4 * i)))
    regs

(* APSR flags live in PSR bits 31 (N), 30 (Z), 29 (C), 28 (V). *)
let set_flags_sub t a b =
  Cycles.charge_handle t.cyc Cycles.alu;
  let result = Word32.sub a b in
  let n = Word32.bit result 31 in
  let z = result = 0 in
  let c = a >= b (* no borrow *) in
  let sa = Word32.bit a 31 and sb = Word32.bit b 31 and sr = Word32.bit result 31 in
  let v = sa <> sb && sr <> sa in
  let psr = t.psr in
  let psr = Word32.set_bit psr 31 n in
  let psr = Word32.set_bit psr 30 z in
  let psr = Word32.set_bit psr 29 c in
  let psr = Word32.set_bit psr 28 v in
  t.psr <- psr

let flag_z t = Word32.bit t.psr 30
let flag_n t = Word32.bit t.psr 31
let flag_c t = Word32.bit t.psr 29
let flag_v t = Word32.bit t.psr 28

let push_special t reg =
  Cycles.charge_handle t.cyc Cycles.mem;
  let base = Word32.sub (sp t) 4 in
  Memory.store32 t.mem base (get_special t reg);
  set_sp t base

let pop_special t reg =
  Cycles.charge_handle t.cyc Cycles.mem;
  let base = sp t in
  set_special_raw t reg (Memory.load32 t.mem base);
  set_sp t (Word32.add base 4)

let pseudo_ldr_special t reg v =
  Verify.Violation.require "pseudo_ldr_special: !is_ipsr(reg)" (not (Regs.is_ipsr reg));
  Cycles.charge_handle t.cyc Cycles.mem;
  set_special_raw t reg v

(* --- whole-state capture (the snapshot subsystem) --- *)

type state = {
  st_regs : Word32.t array;
  st_msp : Word32.t;
  st_psp : Word32.t;
  st_lr : Word32.t;
  st_pc : Word32.t;
  st_psr : Word32.t;
  st_control : Word32.t;
  st_control_pending : Word32.t option;
  st_mode : mode;
}

let capture_state t =
  {
    st_regs = Array.copy t.regs;
    st_msp = t.msp;
    st_psp = t.psp;
    st_lr = t.lr;
    st_pc = t.pc;
    st_psr = t.psr;
    st_control = t.control;
    st_control_pending = t.control_pending;
    st_mode = t.cpu_mode;
  }

let restore_state t s =
  Array.blit s.st_regs 0 t.regs 0 (Array.length t.regs);
  t.msp <- s.st_msp;
  t.psp <- s.st_psp;
  t.lr <- s.st_lr;
  t.pc <- s.st_pc;
  t.psr <- s.st_psr;
  t.control <- s.st_control;
  t.control_pending <- s.st_control_pending;
  t.cpu_mode <- s.st_mode

let fingerprint t =
  let h = Array.fold_left Fp.int Fp.seed t.regs in
  let h = List.fold_left Fp.int h [ t.msp; t.psp; t.lr; t.pc; t.psr; t.control ] in
  let h = Fp.int h (match t.control_pending with None -> -1 | Some v -> v) in
  Fp.bool h (t.cpu_mode = Handler)

(* --- snapshots and contracts --- *)

type snapshot = {
  snap_callee : Word32.t list;
  snap_msp : Word32.t;
  snap_control : Word32.t;
  snap_mode : mode;
}

let snapshot t =
  {
    snap_callee = List.map (get t) Regs.callee_saved;
    snap_msp = t.msp;
    snap_control = t.control;
    snap_mode = t.cpu_mode;
  }

let callee_saved_of s = s.snap_callee
let msp_of s = s.snap_msp

let cpu_state_correct ~old t =
  let now = List.map (get t) Regs.callee_saved in
  if now <> old.snap_callee then Error "callee-saved registers not preserved"
  else if t.msp <> old.snap_msp then
    Error
      (Printf.sprintf "kernel stack pointer changed: %s -> %s" (Word32.to_hex old.snap_msp)
         (Word32.to_hex t.msp))
  else if t.cpu_mode <> Thread then Error "not back in thread mode"
  else if not (privileged t) then Error "CPU not in privileged execution mode"
  else Ok ()

let pp ppf t =
  Format.fprintf ppf "@[<v>cpu mode=%s priv=%b control=%s@,"
    (match t.cpu_mode with Thread -> "thread" | Handler -> "handler")
    (privileged t) (Word32.to_hex t.control);
  Format.fprintf ppf "  msp=%s psp=%s lr=%s pc=%s psr=%s@," (Word32.to_hex t.msp)
    (Word32.to_hex t.psp) (Word32.to_hex t.lr) (Word32.to_hex t.pc) (Word32.to_hex t.psr);
  List.iteri
    (fun i v -> if i mod 4 = 0 then Format.fprintf ppf "  r%d..: " i;
      Format.fprintf ppf "%s " (Word32.to_hex v);
      if i mod 4 = 3 then Format.fprintf ppf "@,")
    (Array.to_list t.regs);
  Format.fprintf ppf "@]"
