type mode = Thread | Handler

type t = {
  regs : Word32.t array;  (* r0-r12 *)
  mutable msp : Word32.t;
  mutable psp : Word32.t;
  mutable lr : Word32.t;
  mutable pc : Word32.t;
  mutable psr : Word32.t;
  mutable control : Word32.t;  (* committed value, post-ISB *)
  mutable control_pending : Word32.t option;
  mutable cpu_mode : mode;
  mem : Memory.t;
  icache : Icache.t;  (* decoded-instruction/basic-block cache for Mc *)
  cyc : Cycles.handle;  (* the global counter, resolved once per create *)
  mutable obs : Obs.Event.sink option;  (* consulted only by Exn entry/return *)
}

let create mem =
  {
    regs = Array.make 13 0;
    msp = Range.end_ Layout.kernel_sram;
    psp = 0;
    lr = 0;
    pc = 0;
    psr = 0;
    control = 0;
    control_pending = None;
    cpu_mode = Thread;
    mem;
    icache = Icache.create ();
    cyc = Cycles.handle Cycles.global;
    obs = None;
  }

let memory t = t.mem
let icache t = t.icache
let set_obs t sink = t.obs <- sink
let obs t = t.obs
let cycles t = t.cyc
let get t r = t.regs.(Regs.gpr_index r)

let set t r v =
  Cycles.charge_handle t.cyc Cycles.alu;
  t.regs.(Regs.gpr_index r) <- Word32.of_int v

let control_committed t = t.control
let mode t = t.cpu_mode

let privileged t =
  match t.cpu_mode with Handler -> true | Thread -> not (Word32.bit t.control 0)

let spsel t = Word32.bit t.control 1

let sp t = match t.cpu_mode with Handler -> t.msp | Thread -> if spsel t then t.psp else t.msp

let set_sp t v =
  match t.cpu_mode with
  | Handler -> t.msp <- v
  | Thread -> if spsel t then t.psp <- v else t.msp <- v

let exception_number t = Word32.bits t.psr ~hi:8 ~lo:0

let get_special t = function
  | Regs.Msp -> t.msp
  | Regs.Psp -> t.psp
  | Regs.Lr -> t.lr
  | Regs.Pc -> t.pc
  | Regs.Psr -> t.psr
  | Regs.Control -> ( match t.control_pending with Some v -> v | None -> t.control)
  | Regs.Ipsr -> exception_number t

let set_special_raw t reg v =
  let v = Word32.of_int v in
  match reg with
  | Regs.Msp -> t.msp <- v
  | Regs.Psp -> t.psp <- v
  | Regs.Lr -> t.lr <- v
  | Regs.Pc -> t.pc <- v
  | Regs.Psr -> t.psr <- v
  | Regs.Control ->
    t.control <- v land 0b11;
    t.control_pending <- None
  | Regs.Ipsr -> t.psr <- Word32.set_bits t.psr ~hi:8 ~lo:0 v

let set_mode t m = t.cpu_mode <- m

(* PC-only raw setter for the block dispatcher: no register match, no
   masking — callers pass already-masked Word32 values. *)
let set_pc t v = t.pc <- v
let pc t = t.pc

(* --- instruction methods --- *)

let mov t ~dst ~src =
  Cycles.charge_handle t.cyc Cycles.alu;
  t.regs.(Regs.gpr_index dst) <- get t src

(* guard first: requiref's happy path still walks the format spine, which
   is measurable at one call per emulated instruction *)
let movw_imm t r imm =
  if imm < 0 || imm > 0xffff then
    Verify.Violation.requiref "movw_imm" false "immediate %d" imm;
  Cycles.charge_handle t.cyc Cycles.alu;
  t.regs.(Regs.gpr_index r) <- imm

let movt_imm t r imm =
  if imm < 0 || imm > 0xffff then
    Verify.Violation.requiref "movt_imm" false "immediate %d" imm;
  Cycles.charge_handle t.cyc Cycles.alu;
  t.regs.(Regs.gpr_index r) <- Word32.set_bits (get t r) ~hi:31 ~lo:16 imm

let add_imm t r imm =
  Cycles.charge_handle t.cyc Cycles.alu;
  t.regs.(Regs.gpr_index r) <- Word32.add (get t r) imm

let sub_imm t r imm =
  Cycles.charge_handle t.cyc Cycles.alu;
  t.regs.(Regs.gpr_index r) <- Word32.sub (get t r) imm

(* The Figure 7 contract: IPSR is never writable; stack pointers must
   receive valid RAM addresses; CONTROL writes require privilege. *)
let msr t reg src =
  let v = get t src in
  Verify.Violation.require "msr: !is_ipsr(reg)" (not (Regs.is_ipsr reg));
  Verify.Violation.requiref "msr: sp gets valid ram addr"
    ((not (Regs.is_sp reg || Regs.is_psp reg)) || Layout.in_sram v)
    "value=%s" (Word32.to_hex v);
  Cycles.charge_handle t.cyc Cycles.alu;
  match reg with
  | Regs.Control ->
    Verify.Violation.require "msr: control write is privileged" (privileged t);
    t.control_pending <- Some (v land 0b11)
  | Regs.Msp | Regs.Psp | Regs.Lr | Regs.Pc | Regs.Psr | Regs.Ipsr -> set_special_raw t reg v

let mrs t dst reg =
  Cycles.charge_handle t.cyc Cycles.alu;
  t.regs.(Regs.gpr_index dst) <- get_special t reg

let isb t =
  Cycles.charge_handle t.cyc Cycles.branch;
  match t.control_pending with
  | Some v ->
    t.control <- v;
    t.control_pending <- None
  | None -> ()

let dsb t = Cycles.charge_handle t.cyc Cycles.branch

let ldr t dst ~base ~offset =
  Cycles.charge_handle t.cyc Cycles.mem;
  t.regs.(Regs.gpr_index dst) <- Memory.load32 t.mem (Word32.add (get t base) offset)

let str t src ~base ~offset =
  Cycles.charge_handle t.cyc Cycles.mem;
  Memory.store32 t.mem (Word32.add (get t base) offset) (get t src)

let ldr_sp t dst ~offset =
  Cycles.charge_handle t.cyc Cycles.mem;
  t.regs.(Regs.gpr_index dst) <- Memory.load32 t.mem (Word32.add (sp t) offset)

let str_sp t src ~offset =
  Cycles.charge_handle t.cyc Cycles.mem;
  Memory.store32 t.mem (Word32.add (sp t) offset) (get t src)

let stmdb_sp t regs =
  let n = List.length regs in
  Cycles.charge_handle t.cyc (n * Cycles.mem);
  let base = Word32.sub (sp t) (4 * n) in
  List.iteri (fun i r -> Memory.store32 t.mem (Word32.add base (4 * i)) (get t r)) regs;
  set_sp t base

let ldmia_sp t regs =
  let n = List.length regs in
  Cycles.charge_handle t.cyc (n * Cycles.mem);
  let base = sp t in
  List.iteri (fun i r -> t.regs.(Regs.gpr_index r) <- Memory.load32 t.mem (Word32.add base (4 * i))) regs;
  set_sp t (Word32.add base (4 * n))

let stmia t ~base regs =
  Cycles.charge_handle t.cyc (List.length regs * Cycles.mem);
  let addr = get t base in
  List.iteri (fun i r -> Memory.store32 t.mem (Word32.add addr (4 * i)) (get t r)) regs

let ldmia t ~base regs =
  Cycles.charge_handle t.cyc (List.length regs * Cycles.mem);
  let addr = get t base in
  List.iteri
    (fun i r -> t.regs.(Regs.gpr_index r) <- Memory.load32 t.mem (Word32.add addr (4 * i)))
    regs

(* APSR flags live in PSR bits 31 (N), 30 (Z), 29 (C), 28 (V). *)
let write_flags_sub t a b =
  let result = Word32.sub a b in
  let n = Word32.bit result 31 in
  let z = result = 0 in
  let c = a >= b (* no borrow *) in
  let sa = Word32.bit a 31 and sb = Word32.bit b 31 and sr = Word32.bit result 31 in
  let v = sa <> sb && sr <> sa in
  let psr = t.psr in
  let psr = Word32.set_bit psr 31 n in
  let psr = Word32.set_bit psr 30 z in
  let psr = Word32.set_bit psr 29 c in
  let psr = Word32.set_bit psr 28 v in
  t.psr <- psr

let set_flags_sub t a b =
  Cycles.charge_handle t.cyc Cycles.alu;
  write_flags_sub t a b

let flag_z t = Word32.bit t.psr 30
let flag_n t = Word32.bit t.psr 31
let flag_c t = Word32.bit t.psr 29
let flag_v t = Word32.bit t.psr 28

let push_special t reg =
  Cycles.charge_handle t.cyc Cycles.mem;
  let base = Word32.sub (sp t) 4 in
  Memory.store32 t.mem base (get_special t reg);
  set_sp t base

let pop_special t reg =
  Cycles.charge_handle t.cyc Cycles.mem;
  let base = sp t in
  set_special_raw t reg (Memory.load32 t.mem base);
  set_sp t (Word32.add base 4)

let pseudo_ldr_special t reg v =
  Verify.Violation.require "pseudo_ldr_special: !is_ipsr(reg)" (not (Regs.is_ipsr reg));
  Cycles.charge_handle t.cyc Cycles.mem;
  set_special_raw t reg v

(* --- block compilation (the superblock engine's execution form) ---

   Compile a decoded block into macro-ops: closures with direct state
   access, specialized per instruction at publish time (register indices
   resolved, branch targets precomputed, immediate contracts pre-validated)
   and with runs of consecutive *pure* ALU instructions fused into a single
   closure. Semantics must be bit-identical to Mc.exec over the same
   entries — same register/memory/flag effects, same cycle charges, same
   fault points with the same architectural state at the fault.

   Invariants the fusion relies on:
   - a "pure" instruction cannot fault, cannot stop, cannot touch memory,
     and neither reads nor writes the PC, so within a pure run only the
     cumulative cycle charge and the final PC are observable — both are
     applied once at the end of the run;
   - every non-pure macro-op sets the PC to its own next_pc *before*
     executing (exactly like the interpreted dispatcher), so at any fault
     or stop the architectural PC is what the uncached engine would show;
   - the caller only runs macro-ops when remaining fuel covers the whole
     block, so Out_of_fuel can never land inside a fused run (the
     dispatcher falls back to the interpreted per-instruction form when
     fuel is short).

   Rare instructions (msr/mrs/isb/bx and out-of-range immediates that must
   fault through the contract checks) defer to [fallback] — Mc.exec — with
   a conservative writes-flag, keeping their runtime contracts verbatim. *)

let compile_block t ~fallback (entries : Icache.entry array) =
  let cyc = t.cyc in
  let mem = t.mem in
  let regs = t.regs in
  let gi = Regs.gpr_index in
  (* accumulated macro-ops, reversed: (op, may_write_memory, instr_count) *)
  let ops = ref [] in
  (* pending run of pure bodies, reversed *)
  let pure = ref [] in
  let pure_cyc = ref 0 in
  let pure_n = ref 0 in
  let pure_npc = ref 0 in
  let flush_pure () =
    if !pure_n > 0 then begin
      let total = !pure_cyc in
      let npc = !pure_npc in
      let op =
        match !pure with
        | [ b0 ] ->
          fun () ->
            b0 ();
            cyc.Cycles.count <- cyc.Cycles.count + total;
            t.pc <- npc;
            None
        | bodies ->
          let bodies = Array.of_list (List.rev bodies) in
          let nb = Array.length bodies in
          fun () ->
            for i = 0 to nb - 1 do
              (Array.unsafe_get bodies i) ()
            done;
            cyc.Cycles.count <- cyc.Cycles.count + total;
            t.pc <- npc;
            None
      in
      ops := (op, false, !pure_n) :: !ops;
      pure := [];
      pure_cyc := 0;
      pure_n := 0
    end
  in
  let add_pure body cost npc =
    pure := body :: !pure;
    pure_cyc := !pure_cyc + cost;
    incr pure_n;
    pure_npc := npc
  in
  let add_full op writes =
    flush_pure ();
    ops := (op, writes, 1) :: !ops
  in
  let reg_indices l = Array.of_list (List.map gi l) in
  Array.iter
    (fun (e : Icache.entry) ->
      let npc = e.Icache.next_pc in
      match e.Icache.instr with
      | Thumb.Nop -> add_pure (fun () -> ()) 0 npc
      | Thumb.Mov_reg (rd, rm) ->
        let rd = gi rd and rm = gi rm in
        add_pure
          (fun () -> Array.unsafe_set regs rd (Array.unsafe_get regs rm))
          Cycles.alu npc
      | Thumb.Movw (rd, v) when v >= 0 && v <= 0xffff ->
        let rd = gi rd in
        add_pure (fun () -> Array.unsafe_set regs rd v) Cycles.alu npc
      | Thumb.Movt (rd, v) when v >= 0 && v <= 0xffff ->
        let rd = gi rd in
        add_pure
          (fun () ->
            Array.unsafe_set regs rd
              (Word32.set_bits (Array.unsafe_get regs rd) ~hi:31 ~lo:16 v))
          Cycles.alu npc
      | Thumb.Addw (rd, rn, v) ->
        let rd = gi rd and rn = gi rn in
        add_pure
          (fun () -> Array.unsafe_set regs rd (Word32.add (Array.unsafe_get regs rn) v))
          Cycles.alu npc
      | Thumb.Subw (rd, rn, v) ->
        let rd = gi rd and rn = gi rn in
        add_pure
          (fun () -> Array.unsafe_set regs rd (Word32.sub (Array.unsafe_get regs rn) v))
          Cycles.alu npc
      | Thumb.Cmp_lr rm ->
        let rm = gi rm in
        add_pure (fun () -> write_flags_sub t t.lr (Array.unsafe_get regs rm)) Cycles.alu npc
      | Thumb.Mov_from_lr rd ->
        let rd = gi rd in
        add_pure (fun () -> Array.unsafe_set regs rd t.lr) Cycles.alu npc
      | Thumb.Mov_to_lr rm ->
        let rm = gi rm in
        add_pure (fun () -> t.lr <- Array.unsafe_get regs rm) Cycles.alu npc
      | Thumb.Cpsid | Thumb.Cpsie -> add_pure (fun () -> ()) Cycles.alu npc
      | Thumb.Dsb | Thumb.Dmb -> add_pure (fun () -> ()) Cycles.branch npc
      | Thumb.Ldr_imm (rt, rn, off) ->
        let rt = gi rt and rn = gi rn in
        add_full
          (fun () ->
            t.pc <- npc;
            cyc.Cycles.count <- cyc.Cycles.count + Cycles.mem;
            Array.unsafe_set regs rt
              (Memory.load32_fast mem (Word32.add (Array.unsafe_get regs rn) off));
            None)
          false
      | Thumb.Str_imm (rt, rn, off) ->
        let rt = gi rt and rn = gi rn in
        add_full
          (fun () ->
            t.pc <- npc;
            cyc.Cycles.count <- cyc.Cycles.count + Cycles.mem;
            Memory.store32_fast mem
              (Word32.add (Array.unsafe_get regs rn) off)
              (Array.unsafe_get regs rt);
            None)
          true
      | Thumb.Ldmia (rn, wb, rl) ->
        let rni = gi rn in
        let idxs = reg_indices rl in
        let n = Array.length idxs in
        let wb' = wb && not (List.mem rn rl) in
        add_full
          (fun () ->
            t.pc <- npc;
            cyc.Cycles.count <- cyc.Cycles.count + (n * Cycles.mem);
            let base = Array.unsafe_get regs rni in
            for i = 0 to n - 1 do
              Array.unsafe_set regs
                (Array.unsafe_get idxs i)
                (Memory.load32_fast mem (Word32.add base (4 * i)))
            done;
            if wb' then begin
              cyc.Cycles.count <- cyc.Cycles.count + Cycles.alu;
              Array.unsafe_set regs rni (Word32.add base (4 * n))
            end;
            None)
          false
      | Thumb.Stmia (rn, wb, rl) ->
        let rni = gi rn in
        let idxs = reg_indices rl in
        let n = Array.length idxs in
        add_full
          (fun () ->
            t.pc <- npc;
            cyc.Cycles.count <- cyc.Cycles.count + (n * Cycles.mem);
            let base = Array.unsafe_get regs rni in
            for i = 0 to n - 1 do
              Memory.store32_fast mem (Word32.add base (4 * i))
                (Array.unsafe_get regs (Array.unsafe_get idxs i))
            done;
            if wb then begin
              cyc.Cycles.count <- cyc.Cycles.count + Cycles.alu;
              Array.unsafe_set regs rni (Word32.add base (4 * n))
            end;
            None)
          true
      | Thumb.Stmdb (rn, wb, rl) ->
        let rni = gi rn in
        let idxs = reg_indices rl in
        let n = Array.length idxs in
        add_full
          (fun () ->
            t.pc <- npc;
            let base = Word32.sub (Array.unsafe_get regs rni) (4 * n) in
            cyc.Cycles.count <- cyc.Cycles.count + (n * Cycles.mem);
            for i = 0 to n - 1 do
              Memory.store32_fast mem (Word32.add base (4 * i))
                (Array.unsafe_get regs (Array.unsafe_get idxs i))
            done;
            if wb then begin
              cyc.Cycles.count <- cyc.Cycles.count + Cycles.alu;
              Array.unsafe_set regs rni base
            end;
            None)
          true
      | Thumb.Push (rl, with_lr) ->
        let idxs = reg_indices rl in
        let n = Array.length idxs in
        add_full
          (fun () ->
            t.pc <- npc;
            if with_lr then begin
              cyc.Cycles.count <- cyc.Cycles.count + Cycles.mem;
              let base = Word32.sub (sp t) 4 in
              Memory.store32_fast mem base t.lr;
              set_sp t base
            end;
            cyc.Cycles.count <- cyc.Cycles.count + (n * Cycles.mem);
            let base = Word32.sub (sp t) (4 * n) in
            for i = 0 to n - 1 do
              Memory.store32_fast mem (Word32.add base (4 * i))
                (Array.unsafe_get regs (Array.unsafe_get idxs i))
            done;
            set_sp t base;
            None)
          true
      | Thumb.Pop (rl, with_pc) ->
        let idxs = reg_indices rl in
        let n = Array.length idxs in
        add_full
          (fun () ->
            t.pc <- npc;
            cyc.Cycles.count <- cyc.Cycles.count + (n * Cycles.mem);
            let base = sp t in
            for i = 0 to n - 1 do
              Array.unsafe_set regs
                (Array.unsafe_get idxs i)
                (Memory.load32_fast mem (Word32.add base (4 * i)))
            done;
            set_sp t (Word32.add base (4 * n));
            if with_pc then begin
              cyc.Cycles.count <- cyc.Cycles.count + Cycles.mem;
              let base = sp t in
              t.pc <- Memory.load32_fast mem base;
              set_sp t (Word32.add base 4)
            end;
            None)
          false
      | Thumb.Svc imm -> add_full (fun () -> t.pc <- npc; Some (Icache.Svc_taken imm)) false
      | Thumb.B_cond (`Eq, off) ->
        let tgt = Word32.add npc ((off * 2) + 2) in
        add_full
          (fun () ->
            t.pc <- npc;
            cyc.Cycles.count <- cyc.Cycles.count + Cycles.branch;
            if Word32.bit t.psr 30 then t.pc <- tgt;
            None)
          false
      | Thumb.B_cond (`Ne, off) ->
        let tgt = Word32.add npc ((off * 2) + 2) in
        add_full
          (fun () ->
            t.pc <- npc;
            cyc.Cycles.count <- cyc.Cycles.count + Cycles.branch;
            if not (Word32.bit t.psr 30) then t.pc <- tgt;
            None)
          false
      | (Thumb.Movw _ | Thumb.Movt _ | Thumb.Mrs _ | Thumb.Msr _ | Thumb.Isb | Thumb.Bx _) as
        instr ->
        (* contract-bearing or stopping instructions: run the interpreter
           case verbatim (conservative writes-flag: re-checking the code
           generation when it cannot have moved is harmless) *)
        add_full (fun () -> t.pc <- npc; fallback instr) true)
    entries;
  flush_pure ();
  let l = List.rev !ops in
  ( Array.of_list (List.map (fun (o, _, _) -> o) l),
    Array.of_list (List.map (fun (_, w, _) -> w) l),
    Array.of_list (List.map (fun (_, _, c) -> c) l) )

(* --- whole-state capture (the snapshot subsystem) --- *)

type state = {
  st_regs : Word32.t array;
  st_msp : Word32.t;
  st_psp : Word32.t;
  st_lr : Word32.t;
  st_pc : Word32.t;
  st_psr : Word32.t;
  st_control : Word32.t;
  st_control_pending : Word32.t option;
  st_mode : mode;
}

let capture_state t =
  {
    st_regs = Array.copy t.regs;
    st_msp = t.msp;
    st_psp = t.psp;
    st_lr = t.lr;
    st_pc = t.pc;
    st_psr = t.psr;
    st_control = t.control;
    st_control_pending = t.control_pending;
    st_mode = t.cpu_mode;
  }

let restore_state t s =
  Array.blit s.st_regs 0 t.regs 0 (Array.length t.regs);
  t.msp <- s.st_msp;
  t.psp <- s.st_psp;
  t.lr <- s.st_lr;
  t.pc <- s.st_pc;
  t.psr <- s.st_psr;
  t.control <- s.st_control;
  t.control_pending <- s.st_control_pending;
  t.cpu_mode <- s.st_mode

let fingerprint t =
  let h = Array.fold_left Fp.int Fp.seed t.regs in
  let h = List.fold_left Fp.int h [ t.msp; t.psp; t.lr; t.pc; t.psr; t.control ] in
  let h = Fp.int h (match t.control_pending with None -> -1 | Some v -> v) in
  Fp.bool h (t.cpu_mode = Handler)

(* --- snapshots and contracts --- *)

type snapshot = {
  snap_callee : Word32.t list;
  snap_msp : Word32.t;
  snap_control : Word32.t;
  snap_mode : mode;
}

let snapshot t =
  {
    snap_callee = List.map (get t) Regs.callee_saved;
    snap_msp = t.msp;
    snap_control = t.control;
    snap_mode = t.cpu_mode;
  }

let callee_saved_of s = s.snap_callee
let msp_of s = s.snap_msp

let cpu_state_correct ~old t =
  let now = List.map (get t) Regs.callee_saved in
  if now <> old.snap_callee then Error "callee-saved registers not preserved"
  else if t.msp <> old.snap_msp then
    Error
      (Printf.sprintf "kernel stack pointer changed: %s -> %s" (Word32.to_hex old.snap_msp)
         (Word32.to_hex t.msp))
  else if t.cpu_mode <> Thread then Error "not back in thread mode"
  else if not (privileged t) then Error "CPU not in privileged execution mode"
  else Ok ()

let pp ppf t =
  Format.fprintf ppf "@[<v>cpu mode=%s priv=%b control=%s@,"
    (match t.cpu_mode with Thread -> "thread" | Handler -> "handler")
    (privileged t) (Word32.to_hex t.control);
  Format.fprintf ppf "  msp=%s psp=%s lr=%s pc=%s psr=%s@," (Word32.to_hex t.msp)
    (Word32.to_hex t.psp) (Word32.to_hex t.lr) (Word32.to_hex t.pc) (Word32.to_hex t.psr);
  List.iteri
    (fun i v -> if i mod 4 = 0 then Format.fprintf ppf "  r%d..: " i;
      Format.fprintf ppf "%s " (Word32.to_hex v);
      if i mod 4 = 3 then Format.fprintf ppf "@,")
    (Array.to_list t.regs);
  Format.fprintf ppf "@]"
