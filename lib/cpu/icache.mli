(** Decoded-instruction cache and basic-block cache for the {!Mc} engine.

    App and kernel flash are immutable once the loader has placed them, so
    re-decoding the same Thumb-2 halfwords on every simulated instruction
    is pure host-side waste. Two caches remove it:

    - a direct-mapped {e decode cache} mapping halfword-aligned PC to the
      decoded [{instr; size}], and
    - a {e basic-block cache} holding straight-line runs of decoded
      instructions up to the next control transfer, dispatched with one
      probe and one execute-permission stamp check per run.

    Soundness rests on two invalidation channels, both observable-behaviour
    preserving (see docs/VERIFICATION.md):

    - {e code changes}: every cached decode is keyed by
      {!Memory.code_generation}, which [Memory] bumps when any write lands
      in a page registered (via {!Memory.note_code_page}) as holding
      decoded code — loader placement, RAM zeroing on process restart and
      self-modifying stores all go through the same write paths;
    - {e permission changes}: each block carries a stamp of the (checker
      epoch, MPU generation, privilege) under which its halfwords were last
      execute-checked. MPU reprogramming or a privilege transition kills
      the stamp — the next dispatch re-checks before executing a single
      instruction — while the decoded bodies survive. *)

type entry = {
  eaddr : Word32.t;
  instr : Thumb.instr;
  isize : int;
  next_pc : Word32.t;  (** [eaddr + isize], precomputed for the dispatcher *)
}

type block = {
  start : Word32.t;
  entries : entry array;
  byte_len : int;
  built_gen : int;  (** {!Memory.code_generation} when decoded *)
  mutable stamp_epoch : int;
  mutable stamp_gen : int;
  mutable stamp_priv : int;
}

val no_stamp : int
(** Sentinel meaning "never execute-checked". *)

type t

val create : unit -> t

val set_enabled : t -> bool -> unit
(** Disabled: {!Mc.run} decodes every instruction from scratch (the
    pre-cache slow path). For differential tests and cold benchmarks. *)

val enabled : t -> bool

val reset : t -> unit
(** Drop every cached decode and block and zero the statistics. *)

type stats = {
  hits : int;  (** block dispatches served from the cache *)
  misses : int;  (** dispatches that had to (re)build a block *)
  cached : int;  (** instructions executed out of cached blocks *)
  total : int;  (** all instructions executed through {!Mc.run} *)
}

val stats : t -> stats
val hit_rate : t -> float

val record_hit : t -> int -> unit
(** A block dispatch served [n] instructions from the cache. *)

val record_miss : t -> unit
(** A dispatch found no valid block and fell back to building one. *)

val record_instrs : t -> int -> unit
(** [n] instructions executed outside cached blocks (cold path). *)

(** {1 Decode cache} *)

val probe_decode : t -> gen:int -> Word32.t -> (Thumb.instr * int) option
val insert_decode : t -> gen:int -> Word32.t -> Thumb.instr -> int -> unit

(** {1 Block cache} *)

val find_block : t -> gen:int -> Word32.t -> block option
(** The cached block starting exactly at [pc], if its decode generation is
    current. The permission stamp is the caller's problem. *)

val publish_block : t -> gen:int -> Word32.t -> entry list -> unit
(** Store a block decoded under generation [gen]; [entries] in reverse
    execution order (as accumulated). Empty lists are ignored. *)
