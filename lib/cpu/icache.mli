(** Decoded-instruction cache, basic-block cache and trace links for the
    {!Mc} engine.

    App and kernel flash are immutable once the loader has placed them, so
    re-decoding the same Thumb-2 halfwords on every simulated instruction
    is pure host-side waste. Three layers remove it:

    - a direct-mapped {e decode cache} mapping halfword-aligned PC to the
      decoded [{instr; size}];
    - a {e basic-block cache} holding straight-line runs of decoded
      instructions up to the next control transfer, dispatched with one
      probe and one execute-permission stamp check per run;
    - {e trace links} (QEMU-TB-chaining style): once a block's terminator
      resolves, the successor block is linked directly into the
      predecessor — separate fall-through and taken slots, plus a small
      inline cache for indirect (pop-pc) exits — so hot loops execute as
      chained superblocks with a single stamp check per {e trace entry}
      and per newly joined block, not per iteration.

    Soundness rests on two invalidation channels, both observable-behaviour
    preserving (see docs/VERIFICATION.md):

    - {e code changes}: every cached decode is keyed by
      {!Memory.code_generation}, which [Memory] bumps when any write lands
      in a page registered (via {!Memory.note_code_page}) as holding
      decoded code — loader placement, RAM zeroing on process restart,
      self-modifying stores and snapshot restore all go through the same
      counter;
    - {e permission changes}: each block carries a stamp of the (checker
      epoch, MPU generation, privilege) under which its halfwords were last
      execute-checked. MPU reprogramming or a privilege transition kills
      the stamp — the next dispatch re-checks before executing a single
      instruction — while the decoded bodies survive.

    Trace links add no third channel: a link is followed only if the
    successor's [built_gen] equals the trace's code generation {e and} its
    stamp triple equals the triple hoisted at trace entry, so anything
    that would have stopped the per-block dispatcher (store into a linked
    block, MPU reprogramming, privilege flip, snapshot restore) makes the
    link validation fail and drops execution back to the full dispatcher.
    Links are host-side cache state only: no trace event, metric
    ({!Obs.Metrics.model_only}), snapshot byte or fingerprint depends on
    them. *)

(** Why execution stopped — returned by compiled micro-ops and re-exported
    (with constructors) as {!Mc.stop}. Defined here so blocks can store
    compiled ops without an [Mc] ↔ [Cpu] dependency cycle. *)
type stop =
  | Svc_taken of int
  | Exc_return of Word32.t
  | Bx_reg of Word32.t
  | Decode_error of string
  | Out_of_fuel

type entry = {
  eaddr : Word32.t;
  instr : Thumb.instr;
  isize : int;
  next_pc : Word32.t;  (** [eaddr + isize], precomputed for the dispatcher *)
}

(** How a block hands control onward, decided at publish time from its
    final instruction. [Term_exit] blocks (isb/svc/bx) are never linked:
    svc/bx stop the engine, and isb is the commit point for pending
    CONTROL writes — the only place privilege can change inside a run —
    so the trace must re-enter the dispatcher and re-stamp. *)
type term = Term_fall | Term_cond | Term_indirect | Term_exit

type block = {
  start : Word32.t;
  entries : entry array;
  byte_len : int;
  built_gen : int;  (** {!Memory.code_generation} when decoded *)
  mutable stamp_epoch : int;
  mutable stamp_gen : int;
  mutable stamp_priv : int;
  ops : (unit -> stop option) array;
      (** compiled macro-ops ({!Cpu.compile_block}); the linking engine's
          execution form — the unlinked engine interprets [entries] *)
  wmask : bool array;  (** macro-op may write memory (re-check code gen after) *)
  mcount : int array;  (** instructions per macro-op *)
  term : term;
  fall_pc : Word32.t;
  taken_pc : Word32.t;  (** B_cond target; meaningful only for [Term_cond] *)
  mutable link_next : block option;  (** fall-through successor *)
  mutable link_taken : block option;  (** taken-branch successor *)
  ind : block option array;
      (** 4-entry direct-mapped indirect-target inline cache, indexed by
          [(pc lsr 1) land 3]; [[||]] unless [Term_indirect] *)
}

val no_stamp : int
(** Sentinel meaning "never execute-checked". *)

type t

val create : unit -> t

val set_enabled : t -> bool -> unit
(** Disabled: {!Mc.run} decodes every instruction from scratch (the
    pre-cache slow path). For differential tests and cold benchmarks. *)

val enabled : t -> bool

val set_linking : t -> bool -> unit
(** Linking off: {!Mc.run} uses the per-block interpreted engine (PR 2
    behaviour, byte-identical) — the A/B baseline for the superblock
    benchmarks and lockstep tests. Default comes from the
    [TICKTOCK_SUPERBLOCK] environment variable ([0]/[off]/[false]/[no]
    disable; anything else, including unset, enables). *)

val linking : t -> bool

val linking_default : unit -> bool
(** What {!create} would pick right now — the [TICKTOCK_SUPERBLOCK]
    environment default. The A/B benchmark uses it to restore the ambient
    engine after forcing each side. *)

(** {1 Coverage map}

    AFL-style (block-entry, edge) hit maps over the dispatch stream, for
    the coverage-guided fuzzer (see docs/FUZZING.md). Host-side cache
    observation only: maps are allocated lazily by {!set_coverage}, are
    never part of a snapshot or fingerprint, and surface in the unified
    metrics snapshot only as [host]-flagged entries — so model-visible
    behaviour is byte-identical with coverage on or off. *)

val cov_bits : int
(** Map size exponent: each of the two maps has [2^cov_bits] slots. *)

val cov_slots : int

val set_coverage : t -> bool -> unit
(** Enable (allocating the maps on first use) or disable (dropping them).
    Off by default; when off, {!cov_note} is a single [None] check. *)

val coverage : t -> bool

val cov_reset : t -> unit
(** Zero both maps, the edge-hash history and the hit totals — called at
    the top of every fuzz input so the per-input bitmap is a pure function
    of that input. Independent of {!reset}: dropping cached blocks does
    not lose coverage, and vice versa. *)

val cov_note : t -> Word32.t -> unit
(** Record one block dispatch at [pc]: bump the block slot
    [hash pc] and the edge slot [hash pc lxor (prev lsr 1)], AFL-style.
    Called by {!Mc.run} once per block entry, identically on the cold
    (build), warm (per-block) and linked (superblock) paths. *)

val cov_classified : t -> (int * int) array
(** The bucketed coverage bitmap, sparse: [(slot, class)] pairs in
    ascending slot order for every lit slot, where block slots occupy
    [0, cov_slots) and edge slots [cov_slots, 2*cov_slots), and [class]
    is the count bucket (a power of two in [1, 256]): AFL's ladder made
    strictly power-of-two above 3 — 1, 2, 3, 4–7, 8–15, 16–31, 32–63,
    64–127, 128+ hits — so a schedule running twice as long always
    crosses a class boundary (what the evolutionary loop climbs on).
    Empty when coverage is off. *)

type cov_counts = {
  cc_blocks_lit : int;  (** distinct block slots hit since {!cov_reset} *)
  cc_edges_lit : int;  (** distinct edge slots hit since {!cov_reset} *)
  cc_block_hits : int;  (** exact total block dispatches noted *)
  cc_edge_hits : int;  (** exact total edges noted *)
}

val cov_counts : t -> cov_counts
(** All zero when coverage is off. *)

val reset : t -> unit
(** Drop every cached decode and block, sever every trace link (including
    indirect inline-cache slots), and zero the statistics. *)

type stats = {
  hits : int;  (** block dispatches served from the cache *)
  misses : int;  (** dispatches that had to (re)build a block *)
  cached : int;  (** instructions executed out of cached blocks *)
  total : int;  (** all instructions executed through {!Mc.run} *)
  link_hits : int;  (** block boundaries crossed via a valid trace link *)
  link_misses : int;  (** boundaries where no valid link existed *)
  link_flushes : int;  (** stale links discarded during validation *)
  traces : int;  (** trace entries (full dispatches) completed *)
  trace_blocks : int;  (** blocks executed across all traces *)
}

val stats : t -> stats
val hit_rate : t -> float
val link_hit_rate : t -> float
val avg_trace_len : t -> float
(** Mean blocks per trace ([trace_blocks / traces]); 0 before any trace. *)

type trace_hist = {
  th_count : int;
  th_sum : int;
  th_min : int;
  th_max : int;
  th_buckets : (int * int) list;
      (** (inclusive upper bound, count) — log2 buckets, non-empty only,
          same convention as {!Obs.Metrics} histograms *)
}

val trace_len_summary : t -> trace_hist
(** Trace-length (blocks per trace) histogram for the metrics snapshot. *)

val record_hit : t -> int -> unit
(** A block dispatch served [n] instructions from the cache. *)

val record_miss : t -> unit
(** A dispatch found no valid block and fell back to building one. *)

val record_instrs : t -> int -> unit
(** [n] instructions executed outside cached blocks (cold path). *)

val record_link_hit : t -> unit
val record_link_miss : t -> unit
val record_link_flush : t -> unit

val record_trace : t -> blocks:int -> unit
(** A trace ended after executing [blocks] chained blocks. *)

(** {1 Decode cache} *)

val probe_decode : t -> gen:int -> Word32.t -> (Thumb.instr * int) option
val insert_decode : t -> gen:int -> Word32.t -> Thumb.instr -> int -> unit

(** {1 Block cache} *)

val find_block : t -> gen:int -> Word32.t -> block option
(** The cached block starting exactly at [pc], if its decode generation is
    current. The permission stamp is the caller's problem. *)

val publish_block :
  t ->
  gen:int ->
  Word32.t ->
  entry list ->
  compile:(entry array -> (unit -> stop option) array * bool array * int array) ->
  unit
(** Store a block decoded under generation [gen]; [entries] in reverse
    execution order (as accumulated). [compile] turns the (execution-order)
    entry array into macro-ops ({!Cpu.compile_block} partially applied).
    Empty lists are ignored. *)
