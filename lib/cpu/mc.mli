(** Machine-code execution: fetch–decode–execute over {!Thumb} encodings.

    This closes FluxArm's loop: handler code assembled into modeled flash
    (real halfwords, checked instruction fetches) executes through the same
    {!Cpu} instruction methods — and hence the same contracts — as the
    method-level model. {!Handlers_mc} uses it to run Tock's actual handler
    sequences from memory and differentially validate them against
    {!Handlers}.

    {2 Decode cache and basic-block dispatch}

    Flash is overwhelmingly immutable between reloads, so the engine keeps
    a decoded-instruction cache and a basic-block cache (see {!Icache}) on
    each {!Cpu.t}. [run] decodes straight-line runs once, then replays them
    with a single cache probe and a single MPU execute decision per block.
    With trace linking enabled (the default; see {!Icache.set_linking}),
    blocks additionally chain directly into their successors and execute
    as compiled superblocks — one permission stamp check per trace entry
    and per newly joined block, with the bus fast path hoisted across the
    trace ({!Memory.hoist}) and indirect (pop-pc) exits served by a small
    inline cache. All of it is {e semantically invisible}: cycle counts,
    fault ordering, fuel accounting and stop values are bit-identical to
    the uncached engine. Invalidation is automatic — stores and loader
    writes into pages that ever fed the decoder bump a code generation
    ({!Memory.code_generation}), and MPU reprogramming or privilege changes
    invalidate only the per-block permission stamp, not the decoded
    bodies; trace links revalidate both on every follow. *)

type stop = Icache.stop =
  | Svc_taken of int  (** an [svc #imm] was executed; PC points after it *)
  | Exc_return of Word32.t  (** [bx lr] with LR holding an EXC_RETURN value *)
  | Bx_reg of Word32.t  (** [bx] to an ordinary address *)
  | Decode_error of string  (** message includes the faulting PC in hex *)
  | Out_of_fuel

val step : Cpu.t -> stop option
(** Fetch at PC (a {e checked} execute access — fetching from memory the
    MPU denies faults like any other access), decode, advance PC, execute.
    [None] means normal fall-through to the next instruction. *)

val run : ?fuel:int -> Cpu.t -> stop
(** Step until something stops execution (default fuel 10_000). *)

val run_handler : Cpu.t -> entry:Word32.t -> Word32.t
(** Run a handler body at [entry] in handler mode until it executes
    [bx lr] with an EXC_RETURN value; returns that value. Raises
    [Failure] on any other stop — handlers are straight-line code ending
    in an exception return. *)
