(* The stop type is defined in Icache (compiled micro-ops return it) and
   re-exported here under its historical name and constructors. *)
type stop = Icache.stop =
  | Svc_taken of int
  | Exc_return of Word32.t
  | Bx_reg of Word32.t
  | Decode_error of string
  | Out_of_fuel

let fetch16 cpu addr =
  (* instruction fetch: checked with execute rights, halfword granularity;
     Memory.fetch16 consults the MPU decision cache and the last-page
     cache, so a straight-line fetch loop costs one probe + one 16-bit
     read per instruction *)
  Memory.fetch16 (Cpu.memory cpu) addr

let exec cpu instr =
  let module R = Regs in
  match (instr : Thumb.instr) with
  | Thumb.Nop -> None
  | Thumb.Mov_reg (rd, rm) ->
    Cpu.mov cpu ~dst:rd ~src:rm;
    None
  | Thumb.Movw (rd, v) ->
    Cpu.movw_imm cpu rd v;
    None
  | Thumb.Movt (rd, v) ->
    Cpu.movt_imm cpu rd v;
    None
  | Thumb.Addw (rd, rn, v) ->
    Cpu.set cpu rd (Word32.add (Cpu.get cpu rn) v);
    None
  | Thumb.Subw (rd, rn, v) ->
    Cpu.set cpu rd (Word32.sub (Cpu.get cpu rn) v);
    None
  | Thumb.Ldr_imm (rt, rn, off) ->
    Cpu.ldr cpu rt ~base:rn ~offset:off;
    None
  | Thumb.Str_imm (rt, rn, off) ->
    Cpu.str cpu rt ~base:rn ~offset:off;
    None
  | Thumb.Ldmia (rn, wb, regs) ->
    let base = Cpu.get cpu rn in
    Cpu.ldmia cpu ~base:rn regs;
    if wb && not (List.mem rn regs) then
      Cpu.set cpu rn (Word32.add base (4 * List.length regs));
    None
  | Thumb.Stmia (rn, wb, regs) ->
    let base = Cpu.get cpu rn in
    Cpu.stmia cpu ~base:rn regs;
    if wb then Cpu.set cpu rn (Word32.add base (4 * List.length regs));
    None
  | Thumb.Stmdb (rn, wb, regs) ->
    (* store multiple decrement-before relative to rn *)
    let base = Word32.sub (Cpu.get cpu rn) (4 * List.length regs) in
    let mem = Cpu.memory cpu in
    Cycles.charge_handle (Cpu.cycles cpu) (List.length regs * Cycles.mem);
    List.iteri (fun i r -> Memory.store32 mem (Word32.add base (4 * i)) (Cpu.get cpu r)) regs;
    if wb then Cpu.set cpu rn base;
    None
  | Thumb.Push (regs, with_lr) ->
    if with_lr then Cpu.push_special cpu R.Lr;
    Cpu.stmdb_sp cpu regs;
    None
  | Thumb.Pop (regs, with_pc) ->
    Cpu.ldmia_sp cpu regs;
    if with_pc then Cpu.pop_special cpu R.Pc;
    None
  | Thumb.Mrs (rd, spec) ->
    Cpu.mrs cpu rd spec;
    None
  | Thumb.Msr (spec, rn) ->
    Cpu.msr cpu spec rn;
    None
  | Thumb.Isb ->
    Cpu.isb cpu;
    None
  | Thumb.Dsb | Thumb.Dmb ->
    Cpu.dsb cpu;
    None
  | Thumb.Svc imm ->
    Some (Svc_taken imm)
  | Thumb.Bx `Lr ->
    let lr = Cpu.get_special cpu R.Lr in
    if Exn.is_exc_return lr then Some (Exc_return lr)
    else begin
      Cpu.set_special_raw cpu R.Pc lr;
      Some (Bx_reg lr)
    end
  | Thumb.Bx (`Reg rm) ->
    let target = Cpu.get cpu rm in
    if Exn.is_exc_return target then Some (Exc_return target)
    else begin
      Cpu.set_special_raw cpu R.Pc target;
      Some (Bx_reg target)
    end
  | Thumb.Cpsid | Thumb.Cpsie ->
    Cycles.charge_handle (Cpu.cycles cpu) Cycles.alu;
    None
  | Thumb.Cmp_lr rm ->
    Cpu.set_flags_sub cpu (Cpu.get_special cpu R.Lr) (Cpu.get cpu rm);
    None
  | Thumb.Mov_from_lr rd ->
    Cpu.set cpu rd (Cpu.get_special cpu R.Lr);
    None
  | Thumb.Mov_to_lr rm ->
    Cycles.charge_handle (Cpu.cycles cpu) Cycles.alu;
    Cpu.set_special_raw cpu R.Lr (Cpu.get cpu rm);
    None
  | Thumb.B_cond (cond, off) ->
    Cycles.charge_handle (Cpu.cycles cpu) Cycles.branch;
    let taken = match cond with `Eq -> Cpu.flag_z cpu | `Ne -> not (Cpu.flag_z cpu) in
    if taken then begin
      (* target = address of this instruction + 4 + offset*2; PC has
         already advanced past the 2-byte instruction. *)
      let pc = Cpu.get_special cpu R.Pc in
      Cpu.set_special_raw cpu R.Pc (Word32.add pc ((off * 2) + 2))
    end;
    None

(* A decode failure names the PC it happened at: fuzz-found hangs and
   stray jumps are untriageable without the address. *)
let decode_stop pc e = Decode_error (Printf.sprintf "%s at pc=%s" e (Word32.to_hex pc))

(* Decode the instruction at [pc], reproducing the slow path's execute
   checks exactly: check (and on a miss, fetch) the first halfword, then —
   only for a 32-bit encoding — the second. A cached decode skips the data
   reads and the decoder chain, never the MPU consultation. *)
let decode_at cpu pc =
  let mem = Cpu.memory cpu in
  let ic = Cpu.icache cpu in
  let gen = Memory.code_generation mem in
  match Icache.probe_decode ic ~gen pc with
  | Some (instr, size) ->
    Memory.check_fetch16 mem pc;
    if size = 4 then Memory.check_fetch16 mem (Word32.add pc 2);
    Ok (instr, size)
  | None ->
    let hw1 = Memory.fetch16 mem pc in
    (match Thumb.decode hw1 (fun () -> Memory.fetch16 mem (Word32.add pc 2)) with
    | Error e -> Error e
    | Ok instr ->
      let size = if Thumb.is_32bit hw1 then 4 else 2 in
      Memory.note_code_page mem pc;
      if size = 4 then Memory.note_code_page mem (Word32.add pc 2);
      Icache.insert_decode ic ~gen pc instr size;
      Ok (instr, size))

let step_uncached cpu =
  let pc = Cpu.get_special cpu Regs.Pc in
  let hw1 = fetch16 cpu pc in
  match Thumb.decode hw1 (fun () -> fetch16 cpu (Word32.add pc 2)) with
  | Error e -> Some (decode_stop pc e)
  | Ok instr ->
    let size = if Thumb.is_32bit hw1 then 4 else 2 in
    Cpu.set_special_raw cpu Regs.Pc (Word32.add pc size);
    exec cpu instr

let step cpu =
  if not (Icache.enabled (Cpu.icache cpu)) then step_uncached cpu
  else begin
    let pc = Cpu.get_special cpu Regs.Pc in
    match decode_at cpu pc with
    | Error e -> Some (decode_stop pc e)
    | Ok (instr, size) ->
      Cpu.set_special_raw cpu Regs.Pc (Word32.add pc size);
      exec cpu instr
  end

(* --- basic-block dispatch --- *)

let block_cap = 32

(* Superblock traces end at the cap even when every link keeps hitting: a
   hot loop that never triggers an exit condition would otherwise chain an
   entire measurement window into one unbounded trace, which both skews
   the trace-length statistics (BENCH_icache once reported avg_trace_len
   = the whole window) and starves the dispatcher's revalidation point.
   Exiting at the cap is semantically free — the trace exit re-enters the
   dispatcher at the current pc, exactly like a link miss — and costs one
   dispatch per [trace_cap] blocks. *)
let trace_cap = 256

(* Validate (or refresh) a block's execute-permission stamp. A valid stamp
   means every halfword of the block was allowed under the current
   (checker, MPU generation, privilege) — sound to reuse because none of
   those changed since, and the block never crosses a decision-granule
   boundary, so one allow covers it wholesale. The refresh walks the exact
   per-halfword checks the slow path would perform at each fetch, in fetch
   order, so a denial faults with the identical fault record — and before
   a single instruction of the block has executed, which is also identical:
   inside one granule, a denial anywhere is a denial at the first fetch. *)
let stamp_ok mem (b : Icache.block) =
  match Memory.get_checker mem with
  | None -> true
  | Some c ->
    let epoch = Memory.checker_epoch mem in
    let gen = c.Memory.generation () in
    let priv = c.Memory.privilege () in
    if b.Icache.stamp_epoch = epoch && b.Icache.stamp_gen = gen && b.Icache.stamp_priv = priv
    then true
    else begin
      let g = c.Memory.granule_bits () in
      if g < 1 then false (* byte-stateful checker: never block-checked *)
      else if b.Icache.start lsr g <> (b.Icache.start + b.Icache.byte_len - 1) lsr g then
        false (* granularity became finer than the block: step instead *)
      else begin
        Array.iter
          (fun (e : Icache.entry) ->
            Memory.check_fetch16 mem e.Icache.eaddr;
            if e.Icache.isize = 4 then Memory.check_fetch16 mem (Word32.add e.Icache.eaddr 2))
          b.Icache.entries;
        b.Icache.stamp_epoch <- epoch;
        b.Icache.stamp_gen <- gen;
        b.Icache.stamp_priv <- priv;
        true
      end
    end

(* Execute a stamped block's entries. Fuel is charged per instruction so
   [Out_of_fuel] lands on exactly the same instruction as single-stepping.
   Bails out (without a stop) if an executed store invalidated the code
   generation — the remaining decoded entries may be stale. Returns
   (instructions executed, stop). *)
let exec_block cpu mem (b : Icache.block) fuel =
  let gen0 = b.Icache.built_gen in
  let entries = b.Icache.entries in
  let n = Array.length entries in
  let rec go i used =
    if i >= n then (used, None)
    else if used >= fuel then (used, Some Out_of_fuel)
    else begin
      let e = Array.unsafe_get entries i (* i < n = length *) in
      Cpu.set_pc cpu e.Icache.next_pc;
      match exec cpu e.Icache.instr with
      | Some stop -> (used + 1, Some stop)
      | None ->
        if Memory.code_generation mem <> gen0 then (used + 1, None)
        else go (i + 1) (used + 1)
    end
  in
  go 0 0

(* Execute a stamped block's compiled macro-ops. The caller guarantees
   remaining fuel covers the whole block, so Out_of_fuel cannot land
   inside (fuel-short dispatches use the interpreted [exec_block]).
   Per-instruction accounting comes from the per-macro-op counts; the
   code-generation re-check runs only after macro-ops that can write
   memory — the only instructions that can move it. Returns
   (instructions executed, stop). *)
let exec_block_fast mem (b : Icache.block) =
  let gen0 = b.Icache.built_gen in
  let ops = b.Icache.ops in
  let wmask = b.Icache.wmask in
  let mcount = b.Icache.mcount in
  let nm = Array.length ops in
  let rec go i used =
    if i >= nm then (used, None)
    else begin
      let used = used + Array.unsafe_get mcount i in
      match (Array.unsafe_get ops i) () with
      | Some _ as stop -> (used, stop)
      | None ->
        if Array.unsafe_get wmask i && Memory.code_generation mem <> gen0 then (used, None)
        else go (i + 1) used
    end
  in
  go 0 0

let run ?(fuel = 10_000) cpu =
  let mem = Cpu.memory cpu in
  let ic = Cpu.icache cpu in
  if not (Icache.enabled ic) then begin
    (* the pre-cache engine: fetch and decode every instruction *)
    let rec slow n =
      if n <= 0 then Out_of_fuel
      else match step_uncached cpu with None -> slow (n - 1) | Some stop -> stop
    in
    slow fuel
  end
  else begin
    let linking = Icache.linking ic in
    let compile = Cpu.compile_block cpu ~fallback:(fun i -> exec cpu i) in
    let rec loop n =
      if n <= 0 then Out_of_fuel
      else begin
        let pc = Cpu.get_special cpu Regs.Pc in
        match Icache.find_block ic ~gen:(Memory.code_generation mem) pc with
        | Some b when stamp_ok mem b ->
          if linking then trace b n
          else begin
            Icache.cov_note ic pc;
            let used, stop = exec_block cpu mem b n in
            Icache.record_hit ic used;
            (match stop with Some s -> s | None -> loop (n - used))
          end
        | _ -> build pc n
      end
    (* Superblock trace: execute the dispatched block, then follow (or
       install) a link to its successor instead of re-entering the
       dispatcher — the QEMU-TB-chaining shape. The (checker epoch, MPU
       generation, privilege) triple is hoisted once per trace entry; a
       link is followed only while the successor's stamp equals that
       triple and its decode generation equals the trace's, so the chain's
       single entry check covers the union of the linked blocks exactly
       (every member was stamped under the same triple when it joined).
       Soundness of keeping the triple hoisted across the trace:
       - MPU generation and checker epoch cannot change inside [run] (MPU
         registers are not bus-mapped; checker swaps are host-side);
       - privilege can change only at an isb committing a pending CONTROL
         write, and isb terminates its block with [Term_exit], which ends
         the trace before the next dispatch;
       - code changes (stores/loader/blit/restore) bump the code
         generation, which is re-checked after every potentially-writing
         macro-op and ends the trace.
       Links themselves are host cache state: following one produces the
       same architectural steps the dispatcher would. *)
    and trace b0 n0 =
      Memory.hoist mem;
      let gen0 = Memory.code_generation mem in
      let chk, ep, gv, pv =
        match Memory.get_checker mem with
        | None -> (false, 0, 0, 0)
        | Some c ->
          (true, Memory.checker_epoch mem, c.Memory.generation (), c.Memory.privilege ())
      in
      let valid (s : Icache.block) pc' =
        s.Icache.start = pc' && s.Icache.built_gen = gen0
        && ((not chk)
           || (s.Icache.stamp_epoch = ep && s.Icache.stamp_gen = gv
              && s.Icache.stamp_priv = pv))
      in
      (* install: the dispatcher's own dispatch condition (find + stamp),
         so a freshly linked successor was checked exactly as an unlinked
         dispatch would have checked it *)
      let install pc' =
        match Icache.find_block ic ~gen:gen0 pc' with
        | Some s when stamp_ok mem s && valid s pc' -> Some s
        | _ -> None
      in
      (* coverage sees one note per block entry here, exactly as the
         unlinked dispatcher would have produced — the fuzzer's bitmap is
         superblock-invariant *)
      let rec chain b n blocks =
        Icache.cov_note ic b.Icache.start;
        let used, stop =
          if n >= Array.length b.Icache.entries then exec_block_fast mem b
          else exec_block cpu mem b n
        in
        Icache.record_hit ic used;
        let n = n - used in
        match stop with
        | Some s ->
          Icache.record_trace ic ~blocks;
          s
        | None ->
          if Memory.code_generation mem <> gen0 then exit_trace n blocks
          else if n <= 0 then begin
            Icache.record_trace ic ~blocks;
            Out_of_fuel
          end
          else if blocks >= trace_cap then exit_trace n blocks
          else begin
            let pc' = Cpu.pc cpu in
            match b.Icache.term with
            | Icache.Term_exit -> exit_trace n blocks
            | Icache.Term_fall | Icache.Term_cond -> (
              let taken = pc' <> b.Icache.fall_pc in
              let slot = if taken then b.Icache.link_taken else b.Icache.link_next in
              match slot with
              | Some s when valid s pc' ->
                Icache.record_link_hit ic;
                chain s n (blocks + 1)
              | stale -> (
                Icache.record_link_miss ic;
                (match stale with
                | Some _ -> Icache.record_link_flush ic
                | None -> ());
                match install pc' with
                | Some s ->
                  if taken then b.Icache.link_taken <- Some s
                  else b.Icache.link_next <- Some s;
                  chain s n (blocks + 1)
                | None -> exit_trace n blocks))
            | Icache.Term_indirect -> (
              let ind = b.Icache.ind in
              let idx = (pc' lsr 1) land 3 in
              match Array.unsafe_get ind idx with
              | Some s when valid s pc' ->
                Icache.record_link_hit ic;
                chain s n (blocks + 1)
              | stale -> (
                Icache.record_link_miss ic;
                (match stale with
                | Some _ -> Icache.record_link_flush ic
                | None -> ());
                match install pc' with
                | Some s ->
                  Array.unsafe_set ind idx (Some s);
                  chain s n (blocks + 1)
                | None -> exit_trace n blocks))
          end
      and exit_trace n blocks =
        Icache.record_trace ic ~blocks;
        loop n
      in
      chain b0 n0 1
    (* Cold path: single-step (through the decode cache) while recording
       decoded entries, ending the block at a control transfer, the length
       cap, a decision-granule edge, a decode error, or fuel exhaustion;
       then publish it for the next visit. Execution is the slow path
       verbatim — the recording is invisible. *)
    and build pc0 n0 =
      Icache.cov_note ic pc0;
      Icache.record_miss ic;
      let gen0 = Memory.code_generation mem in
      let g =
        match Memory.get_checker mem with
        | None -> -1 (* no execute checks: no granule constraint *)
        | Some c -> c.Memory.granule_bits ()
      in
      if g = 0 then begin
        (* byte-stateful checker: blocks could never be stamped — step
           until something stops us, without recording *)
        let rec slow n =
          if n <= 0 then Out_of_fuel
          else begin
            Icache.record_instrs ic 1;
            match step cpu with None -> slow (n - 1) | Some stop -> stop
          end
        in
        slow n0
      end
      else begin
        let fits bytes = g < 0 || pc0 lsr g = (pc0 + bytes - 1) lsr g in
        let publish acc = Icache.publish_block ic ~gen:gen0 pc0 acc ~compile in
        let rec go acc count bytes n =
          if n <= 0 then begin
            publish acc;
            Out_of_fuel
          end
          else begin
            let pc = Cpu.get_special cpu Regs.Pc in
            match decode_at cpu pc with
            | Error e ->
              publish acc;
              decode_stop pc e
            | Ok (instr, size) ->
              if count > 0 && (count >= block_cap || not (fits (bytes + size))) then begin
                publish acc;
                loop n (* start a fresh block at this pc *)
              end
              else if count = 0 && not (fits (bytes + size)) then begin
                (* a single instruction spanning a granule edge (e.g. a
                   32-bit encoding under PMP NA4): execute uncached *)
                Icache.record_instrs ic 1;
                Cpu.set_special_raw cpu Regs.Pc (Word32.add pc size);
                match exec cpu instr with Some stop -> stop | None -> loop (n - 1)
              end
              else begin
                Icache.record_instrs ic 1;
                let npc = Word32.add pc size in
                Cpu.set_special_raw cpu Regs.Pc npc;
                match exec cpu instr with
                | Some stop ->
                  publish ({ Icache.eaddr = pc; instr; isize = size; next_pc = npc } :: acc);
                  stop
                | None ->
                  let acc = { Icache.eaddr = pc; instr; isize = size; next_pc = npc } :: acc in
                  if Memory.code_generation mem <> gen0 then
                    (* self-modifying store: the recorded decodes are
                       suspect — drop them and start over *)
                    loop (n - 1)
                  else if Thumb.terminates_block instr then begin
                    publish acc;
                    loop (n - 1)
                  end
                  else go acc (count + 1) (bytes + size) (n - 1)
              end
          end
        in
        go [] 0 0 n0
      end
    in
    loop fuel
  end

let run_handler cpu ~entry =
  Verify.Violation.require "mc.run_handler: handler mode" (Cpu.mode cpu = Cpu.Handler);
  Cpu.set_special_raw cpu Regs.Pc entry;
  match run cpu with
  | Exc_return v -> v
  | Svc_taken _ -> failwith "mc.run_handler: handler executed svc"
  | Bx_reg a -> failwith (Printf.sprintf "mc.run_handler: stray bx to %s" (Word32.to_hex a))
  | Decode_error e -> failwith ("mc.run_handler: " ^ e)
  | Out_of_fuel ->
    failwith
      (Printf.sprintf "mc.run_handler: out of fuel at pc=%s"
         (Word32.to_hex (Cpu.get_special cpu Regs.Pc)))
