type stop =
  | Svc_taken of int
  | Exc_return of Word32.t
  | Bx_reg of Word32.t
  | Decode_error of string
  | Out_of_fuel

let fetch16 cpu addr =
  (* instruction fetch: checked with execute rights, halfword granularity;
     Memory.fetch16 consults the MPU decision cache and the last-page
     cache, so a straight-line fetch loop costs one probe + one 16-bit
     read per instruction *)
  Memory.fetch16 (Cpu.memory cpu) addr

let exec cpu instr =
  let module R = Regs in
  match (instr : Thumb.instr) with
  | Thumb.Nop -> None
  | Thumb.Mov_reg (rd, rm) ->
    Cpu.mov cpu ~dst:rd ~src:rm;
    None
  | Thumb.Movw (rd, v) ->
    Cpu.movw_imm cpu rd v;
    None
  | Thumb.Movt (rd, v) ->
    Cpu.movt_imm cpu rd v;
    None
  | Thumb.Addw (rd, rn, v) ->
    Cpu.set cpu rd (Word32.add (Cpu.get cpu rn) v);
    None
  | Thumb.Subw (rd, rn, v) ->
    Cpu.set cpu rd (Word32.sub (Cpu.get cpu rn) v);
    None
  | Thumb.Ldr_imm (rt, rn, off) ->
    Cpu.ldr cpu rt ~base:rn ~offset:off;
    None
  | Thumb.Str_imm (rt, rn, off) ->
    Cpu.str cpu rt ~base:rn ~offset:off;
    None
  | Thumb.Ldmia (rn, wb, regs) ->
    let base = Cpu.get cpu rn in
    Cpu.ldmia cpu ~base:rn regs;
    if wb && not (List.mem rn regs) then
      Cpu.set cpu rn (Word32.add base (4 * List.length regs));
    None
  | Thumb.Stmia (rn, wb, regs) ->
    let base = Cpu.get cpu rn in
    Cpu.stmia cpu ~base:rn regs;
    if wb then Cpu.set cpu rn (Word32.add base (4 * List.length regs));
    None
  | Thumb.Stmdb (rn, wb, regs) ->
    (* store multiple decrement-before relative to rn *)
    let base = Word32.sub (Cpu.get cpu rn) (4 * List.length regs) in
    let mem = Cpu.memory cpu in
    Cycles.tick ~n:(List.length regs * Cycles.mem) Cycles.global;
    List.iteri (fun i r -> Memory.store32 mem (Word32.add base (4 * i)) (Cpu.get cpu r)) regs;
    if wb then Cpu.set cpu rn base;
    None
  | Thumb.Push (regs, with_lr) ->
    if with_lr then Cpu.push_special cpu R.Lr;
    Cpu.stmdb_sp cpu regs;
    None
  | Thumb.Pop (regs, with_pc) ->
    Cpu.ldmia_sp cpu regs;
    if with_pc then Cpu.pop_special cpu R.Pc;
    None
  | Thumb.Mrs (rd, spec) ->
    Cpu.mrs cpu rd spec;
    None
  | Thumb.Msr (spec, rn) ->
    Cpu.msr cpu spec rn;
    None
  | Thumb.Isb ->
    Cpu.isb cpu;
    None
  | Thumb.Dsb | Thumb.Dmb ->
    Cpu.dsb cpu;
    None
  | Thumb.Svc imm ->
    Some (Svc_taken imm)
  | Thumb.Bx `Lr ->
    let lr = Cpu.get_special cpu R.Lr in
    if Exn.is_exc_return lr then Some (Exc_return lr)
    else begin
      Cpu.set_special_raw cpu R.Pc lr;
      Some (Bx_reg lr)
    end
  | Thumb.Bx (`Reg rm) ->
    let target = Cpu.get cpu rm in
    if Exn.is_exc_return target then Some (Exc_return target)
    else begin
      Cpu.set_special_raw cpu R.Pc target;
      Some (Bx_reg target)
    end
  | Thumb.Cpsid | Thumb.Cpsie ->
    Cycles.tick ~n:Cycles.alu Cycles.global;
    None
  | Thumb.Cmp_lr rm ->
    Cpu.set_flags_sub cpu (Cpu.get_special cpu R.Lr) (Cpu.get cpu rm);
    None
  | Thumb.Mov_from_lr rd ->
    Cpu.set cpu rd (Cpu.get_special cpu R.Lr);
    None
  | Thumb.Mov_to_lr rm ->
    Cycles.tick ~n:Cycles.alu Cycles.global;
    Cpu.set_special_raw cpu R.Lr (Cpu.get cpu rm);
    None
  | Thumb.B_cond (cond, off) ->
    Cycles.tick ~n:Cycles.branch Cycles.global;
    let taken = match cond with `Eq -> Cpu.flag_z cpu | `Ne -> not (Cpu.flag_z cpu) in
    if taken then begin
      (* target = address of this instruction + 4 + offset*2; PC has
         already advanced past the 2-byte instruction. *)
      let pc = Cpu.get_special cpu R.Pc in
      Cpu.set_special_raw cpu R.Pc (Word32.add pc ((off * 2) + 2))
    end;
    None

let step cpu =
  let pc = Cpu.get_special cpu Regs.Pc in
  let hw1 = fetch16 cpu pc in
  let second = ref false in
  let fetch_next () =
    second := true;
    fetch16 cpu (Word32.add pc 2)
  in
  match Thumb.decode hw1 fetch_next with
  | Error e -> Some (Decode_error e)
  | Ok instr ->
    let size = if Thumb.is_32bit hw1 then 4 else 2 in
    Cpu.set_special_raw cpu Regs.Pc (Word32.add pc size);
    exec cpu instr

let run ?(fuel = 10_000) cpu =
  let rec loop n =
    if n <= 0 then Out_of_fuel
    else
      match step cpu with
      | None -> loop (n - 1)
      | Some stop -> stop
  in
  loop fuel

let run_handler cpu ~entry =
  Verify.Violation.require "mc.run_handler: handler mode" (Cpu.mode cpu = Cpu.Handler);
  Cpu.set_special_raw cpu Regs.Pc entry;
  match run cpu with
  | Exc_return v -> v
  | Svc_taken _ -> failwith "mc.run_handler: handler executed svc"
  | Bx_reg a -> failwith (Printf.sprintf "mc.run_handler: stray bx to %s" (Word32.to_hex a))
  | Decode_error e -> failwith ("mc.run_handler: " ^ e)
  | Out_of_fuel -> failwith "mc.run_handler: out of fuel"
