(** Thumb-2 instruction encodings for the Tock-relevant ARMv7-M subset.

    FluxArm is an {e executable} semantics: besides the instruction-method
    model in {!Cpu}, this module gives the concrete Thumb-2 machine
    encodings (ARMv7-M ARM, chapter A7) for every instruction the Tock
    handlers use, so handler code can live in modeled flash as real
    halfword sequences and be executed by {!Engine} through
    fetch–decode–execute. The encoder/decoder pair is round-trip tested,
    and the machine-code handlers are differentially tested against the
    method-level model — our version of validating the ASL lift.

    Encodings implemented (T = Thumb encoding index in the manual):

    - 16-bit: MOV register (T1), BX (T1), SVC (T1), NOP (T1),
      PUSH/POP (T1), CPSID/CPSIE (T1)
    - 32-bit: MOVW (T3), MOVT (T1), ADDW/SUBW (T4), LDR/STR immediate (T3),
      LDMIA (T2), STMIA (T2), STMDB (T1), MRS (T1), MSR (T1),
      ISB/DSB/DMB (T1) *)

type instr =
  | Nop
  | Mov_reg of Regs.gpr * Regs.gpr  (** [mov rd, rm] *)
  | Movw of Regs.gpr * int  (** [movw rd, #imm16] *)
  | Movt of Regs.gpr * int  (** [movt rd, #imm16] *)
  | Addw of Regs.gpr * Regs.gpr * int  (** [addw rd, rn, #imm12] *)
  | Subw of Regs.gpr * Regs.gpr * int  (** [subw rd, rn, #imm12] *)
  | Ldr_imm of Regs.gpr * Regs.gpr * int  (** [ldr rt, \[rn, #imm12\]] *)
  | Str_imm of Regs.gpr * Regs.gpr * int  (** [str rt, \[rn, #imm12\]] *)
  | Ldmia of Regs.gpr * bool * Regs.gpr list  (** rn, writeback, ascending list *)
  | Stmia of Regs.gpr * bool * Regs.gpr list
  | Stmdb of Regs.gpr * bool * Regs.gpr list
  | Push of Regs.gpr list * bool  (** registers, and LR *)
  | Pop of Regs.gpr list * bool  (** registers, and PC *)
  | Mrs of Regs.gpr * Regs.special
  | Msr of Regs.special * Regs.gpr
  | Isb
  | Dsb
  | Dmb
  | Svc of int
  | Bx of [ `Lr | `Reg of Regs.gpr ]
  | Cpsid
  | Cpsie
  | Cmp_lr of Regs.gpr  (** [cmp lr, rm] (T2, high-register form) *)
  | B_cond of [ `Eq | `Ne ] * int  (** [beq/bne #imm8] — signed halfword offset *)
  | Mov_from_lr of Regs.gpr  (** [mov rd, lr] *)
  | Mov_to_lr of Regs.gpr  (** [mov lr, rm] *)

val sysm : Regs.special -> int
(** The SYSm field encoding special registers in MRS/MSR (B5.4.2):
    XPSR = 3, IPSR = 5, MSP = 8, PSP = 9, CONTROL = 20. *)

val special_of_sysm : int -> Regs.special option

val is_32bit : int -> bool
(** Does this first halfword start a 32-bit encoding? *)

val terminates_block : instr -> bool
(** Whether the instruction ends a straight-line run for the block cache:
    control transfers ([svc]/[bx]/[b<cond>]/[pop {... pc}]) and [isb] (the
    commit point for CONTROL writes, i.e. a possible privilege change). *)

val encode : instr -> int list
(** Halfwords, one or two, each in [0, 0xFFFF]. Raises [Invalid_argument]
    on out-of-range immediates or unencodable register lists. *)

val decode : int -> (unit -> int) -> (instr, string) result
(** [decode hw1 fetch_next] decodes an instruction whose first halfword is
    [hw1], pulling a second halfword through [fetch_next] when the first
    identifies a 32-bit encoding. *)

val size_bytes : instr -> int
(** 2 or 4. *)

val assemble : Memory.t -> Word32.t -> instr list -> int
(** Write the encoded program at the given address (little-endian
    halfwords); returns its size in bytes. *)

val pp : Format.formatter -> instr -> unit
(** Disassembly-style rendering, e.g. [msr control, r0]. *)

val equal : instr -> instr -> bool
