(** Tock's handlers and context switch as {e machine code}.

    The same sequences as {!Handlers}, but assembled into kernel flash as
    real Thumb-2 halfwords and executed through the {!Mc} fetch–decode–
    execute engine. This is the strongest form of FluxArm's claim: the
    encodings, the decoder, the instruction semantics and the handler logic
    all have to agree for the §4.5 properties to hold — and the test suite
    checks the machine-code path {e differentially} against the
    method-level model.

    Two Tock-specific wrinkles faithfully reproduced:
    - handlers load EXC_RETURN constants with [movw]/[movt] and leave
      through [bx], as the real inline assembly does;
    - [switch_to_user] brackets an [svc #255] whose exception return
      transfers to the process, and whose eventual re-entry (after the
      process is preempted) resumes at the instruction after the [svc] —
      the stacked PC makes the two halves one function.

    These bodies are also why the superblock engine may treat privilege
    as constant within a trace: every CONTROL write below ([msr
    control, rN]) is followed by an [isb] before any further code runs,
    exactly as the architecture requires — and [isb] publishes as a
    {!Icache.Term_exit} block, ending the trace. A privilege flip can
    therefore never happen {e mid}-trace; the next trace entry re-hoists
    the (epoch, generation, privilege) stamp under the new privilege. *)

module T = Thumb
module R = Regs

type t = {
  mem : Memory.t;
  systick_entry : Word32.t;
  svc_entry : Word32.t;
  irq_entry : Word32.t;
  switch_entry : Word32.t;
  part2_entry : Word32.t;  (** address just after the [svc #255] *)
}

(* Return-to-kernel epilogue: movw/movt EXC_RETURN into a register, bx. *)
let return_through reg value =
  [ T.Movw (reg, value land 0xffff); T.Movt (reg, value lsr 16); T.Bx (`Reg reg) ]

let systick_body =
  (* movw r0, #0; msr control, r0; isb; ldr lr, =0xFFFF_FFF9; bx lr *)
  [ T.Movw (R.R0, 0); T.Msr (R.Control, R.R0); T.Isb ]
  @ return_through R.R1 Exn.exc_return_thread_msp

let irq_body = systick_body

let svc_body ~(faults : Handlers.faults) =
  (* Did we come from the kernel?  cmp lr against 0xFFFF_FFF9. *)
  let to_process =
    (if faults.Handlers.skip_mode_switch then []
     else [ T.Movw (R.R0, 1); T.Msr (R.Control, R.R0); T.Isb ])
    @ return_through R.R1 Exn.exc_return_thread_psp
  in
  let to_kernel =
    [ T.Movw (R.R0, 0); T.Msr (R.Control, R.R0); T.Isb ]
    @ return_through R.R1 Exn.exc_return_thread_msp
  in
  let skip_bytes = List.fold_left (fun acc i -> acc + T.size_bytes i) 0 to_process in
  [
    T.Movw (R.R2, Exn.exc_return_thread_msp land 0xffff);
    T.Movt (R.R2, Exn.exc_return_thread_msp lsr 16);
    T.Cmp_lr R.R2;
    (* branch over the to-process block when lr <> thread_msp *)
    T.B_cond (`Ne, (skip_bytes - 2) / 2);
  ]
  @ to_process @ to_kernel

let switch_part1_body =
  (* r0 = process stack pointer, r1 = stored-state base (kernel calling
     convention).  Save kernel state, install PSP, load process registers,
     take the switch svc. *)
  [
    T.Mov_from_lr R.R3;
    T.Push ([ R.R3 ], false);
    T.Mrs (R.R2, R.Msp);
    T.Stmdb (R.R2, true, R.callee_saved);
    T.Msr (R.Msp, R.R2);
    T.Msr (R.Psp, R.R0);
    T.Ldmia (R.R1, false, R.callee_saved);
    T.Svc 0xff;
  ]

let switch_part2_body =
  (* resumed here after the process was preempted: save process registers,
     restore kernel state, return to the (OCaml-modeled) caller via bx lr *)
  [
    T.Stmia (R.R1, false, R.callee_saved);
    T.Mrs (R.R2, R.Msp);
    T.Ldmia (R.R2, true, R.callee_saved);
    T.Msr (R.Msp, R.R2);
    T.Pop ([ R.R3 ], false);
    T.Mov_to_lr R.R3;
    T.Bx `Lr;
  ]

(* Handler code lives in kernel flash, after the vector-table area. *)
let code_base = 0x0000_1000

let install ?(faults = Handlers.no_faults) mem =
  let cursor = ref code_base in
  let place body =
    let entry = !cursor in
    let size = T.assemble mem !cursor body in
    cursor := Math32.align_up (!cursor + size + 4) ~align:16;
    entry
  in
  let systick_entry = place systick_body in
  let svc_entry = place (svc_body ~faults) in
  let irq_entry = place irq_body in
  let switch_entry = place switch_part1_body in
  (* part2 begins right after the svc at the end of part1; recompute its
     address from the part1 layout *)
  let part1_size = List.fold_left (fun acc i -> acc + T.size_bytes i) 0 switch_part1_body in
  let part2_entry = switch_entry + part1_size in
  let part2_size = T.assemble mem part2_entry switch_part2_body in
  cursor := Math32.align_up (part2_entry + part2_size + 4) ~align:16;
  { mem; systick_entry; svc_entry; irq_entry; switch_entry; part2_entry }

let isr_entry t ~exc_num =
  if exc_num = Exn.exc_svc then t.svc_entry
  else if exc_num = Exn.exc_systick then t.systick_entry
  else t.irq_entry

(* A non-EXC_RETURN sentinel the glue puts in LR before jumping to the
   switch code; part2's final [bx lr] surfaces it as the stop address. *)
let return_sentinel = 0x0000_0F01

let run_isr t cpu ~exc_num = Mc.run_handler cpu ~entry:(isr_entry t ~exc_num)

let preempt_process t cpu ~exc_num =
  Exn.preempt cpu ~exc_num ~isr:(fun cpu -> run_isr t cpu ~exc_num)

(** The machine-code [switch_to_user] up to and including the world swap:
    ends with the CPU executing the process (thread mode on PSP). *)
let switch_to_user_part1 t cpu ~process_sp ~regs_base =
  Verify.Violation.require "mc switch_to_user_part1: thread privileged"
    (Cpu.mode cpu = Cpu.Thread && Cpu.privileged cpu);
  Cpu.set cpu R.R0 process_sp;
  Cpu.set cpu R.R1 regs_base;
  Cpu.pseudo_ldr_special cpu R.Lr return_sentinel;
  Cpu.set_special_raw cpu R.Pc t.switch_entry;
  (match Mc.run cpu with
  | Mc.Svc_taken 0xff -> ()
  | stop ->
    failwith
      (Printf.sprintf "mc switch part1: unexpected stop (%s)"
         (match stop with
         | Mc.Svc_taken n -> Printf.sprintf "svc %d" n
         | Mc.Exc_return _ -> "exc return"
         | Mc.Bx_reg _ -> "bx"
         | Mc.Decode_error e -> e
         | Mc.Out_of_fuel -> "fuel")));
  (* hardware takes the svc: stacks the kernel frame (with PC = part2) *)
  Exn.entry cpu ~exc_num:Exn.exc_svc;
  let exc_return = run_isr t cpu ~exc_num:Exn.exc_svc in
  Exn.return cpu exc_return;
  Verify.Violation.ensure "mc switch_to_user_part1: thread mode on psp"
    (Cpu.mode cpu = Cpu.Thread && Word32.bit (Cpu.control_committed cpu) 1);
  Verify.Violation.ensure "mc switch_to_user_part1: process runs unprivileged"
    (not (Cpu.privileged cpu))

(** Resume the kernel after a preemption popped the kernel frame: the
    stacked PC points at part2; execute it to completion. *)
let switch_to_user_part2 _t cpu =
  Verify.Violation.require "mc switch_to_user_part2: thread privileged"
    (Cpu.mode cpu = Cpu.Thread && Cpu.privileged cpu);
  match Mc.run cpu with
  | Mc.Bx_reg addr when addr = return_sentinel -> ()
  | Mc.Bx_reg addr -> failwith (Printf.sprintf "mc switch part2: bx to %s" (Word32.to_hex addr))
  | Mc.Svc_taken _ | Mc.Exc_return _ | Mc.Decode_error _ | Mc.Out_of_fuel ->
    failwith "mc switch part2: unexpected stop"

(** Full §4.5 round trip through machine code. *)
let control_flow_kernel_to_kernel t cpu ~exc_num ~process_sp ~regs_base ~process_accessible
    ~seed =
  Verify.Violation.requiref "mc control_flow: 15 <= exception_num" (exc_num >= 15) "exc_num=%d"
    exc_num;
  let old = Cpu.snapshot cpu in
  switch_to_user_part1 t cpu ~process_sp ~regs_base;
  Handlers.process cpu ~seed ~steps:32 ~accessible:process_accessible;
  preempt_process t cpu ~exc_num;
  switch_to_user_part2 t cpu;
  Cpu.cpu_state_correct ~old cpu
