(** Executable ARMv7-M CPU model (the FluxArm analog).

    FluxArm lifts the Tock-relevant subset of the ARMv7-M Architecture
    Specification Language to Rust and attaches Flux contracts to each
    instruction method (Figure 7). This module is the same artifact in
    OCaml: the CPU state of Figure 7 (left) and one method per instruction,
    each carrying its architectural contract as runtime-checked
    pre/postconditions.

    Privilege and stack selection follow the architecture: in handler mode
    the CPU is always privileged and uses MSP; in thread mode CONTROL.nPRIV
    selects privilege and CONTROL.SPSEL selects MSP/PSP. Unprivileged loads
    and stores are routed through the memory's access checker (i.e. the MPU
    model); privileged accesses use the default map, matching
    CTRL.PRIVDEFENA = 1. *)

type t

type mode = Thread | Handler

val create : Memory.t -> t
val memory : t -> Memory.t

val icache : t -> Icache.t
(** This CPU's decoded-instruction/basic-block cache, used by {!Mc}. *)

val cycles : t -> Cycles.handle
(** The global cycle counter as resolved at {!create} — {!Mc} charges
    through this instead of re-resolving the domain-local counter per
    instruction. *)

val set_obs : t -> Obs.Event.sink option -> unit
(** Attach an observability sink. The instruction methods never consult
    it; only {!Exn} entry/return — the context-switch edges — emit. *)

val obs : t -> Obs.Event.sink option

(** {1 State observation} *)

val get : t -> Regs.gpr -> Word32.t
val set : t -> Regs.gpr -> Word32.t -> unit
val get_special : t -> Regs.special -> Word32.t
val mode : t -> mode
val privileged : t -> bool
(** Handler mode, or thread mode with CONTROL.nPRIV = 0. *)

val sp : t -> Word32.t
(** The active stack pointer under the current mode/CONTROL. *)

val set_sp : t -> Word32.t -> unit

val exception_number : t -> int
(** IPSR\[8:0\]; 0 in thread mode. *)

(** {1 Instruction semantics}

    Each method implements one instruction the Tock handlers use, charges
    its cycle cost, and checks its FluxArm contract. Contract violations
    raise {!Verify.Violation.Violation}. *)

val mov : t -> dst:Regs.gpr -> src:Regs.gpr -> unit
val movw_imm : t -> Regs.gpr -> int -> unit
(** Write a 16-bit immediate, clearing the upper half. Requires the
    immediate to fit in 16 bits. *)

val movt_imm : t -> Regs.gpr -> int -> unit
(** Write the upper 16 bits, preserving the lower half. *)

val add_imm : t -> Regs.gpr -> int -> unit
val sub_imm : t -> Regs.gpr -> int -> unit

val msr : t -> Regs.special -> Regs.gpr -> unit
(** Move GPR to special register (manual A7-301/B5-677). Contract from
    Figure 7: IPSR is not writable; writes to MSP/PSP require a valid RAM
    address. Writes to CONTROL take effect only when privileged (the
    architecture silently ignores unprivileged writes — the model treats an
    unprivileged CONTROL write as a contract violation instead, since the
    handlers must never attempt one). *)

val mrs : t -> Regs.gpr -> Regs.special -> unit
val isb : t -> unit
(** Instruction synchronization barrier — required after CONTROL writes;
    the model tracks a pending CONTROL write and {!privileged} consults the
    committed value, so omitting the ISB is observable, as on hardware. *)

val dsb : t -> unit

val ldr : t -> Regs.gpr -> base:Regs.gpr -> offset:int -> unit
val str : t -> Regs.gpr -> base:Regs.gpr -> offset:int -> unit
val ldr_sp : t -> Regs.gpr -> offset:int -> unit
val str_sp : t -> Regs.gpr -> offset:int -> unit

val stmdb_sp : t -> Regs.gpr list -> unit
(** [stmdb sp!, {regs}] — push multiple, used to save kernel state on
    context switch. *)

val ldmia_sp : t -> Regs.gpr list -> unit
(** [ldmia sp!, {regs}] — pop multiple. *)

val stmia : t -> base:Regs.gpr -> Regs.gpr list -> unit
val ldmia : t -> base:Regs.gpr -> Regs.gpr list -> unit

val pseudo_ldr_special : t -> Regs.special -> Word32.t -> unit
(** [ldr <special>, =imm] — the pseudo-instruction FluxArm uses to load
    EXC_RETURN constants into LR (Figure 8). *)

val set_flags_sub : t -> Word32.t -> Word32.t -> unit
(** Set APSR.{N,Z,C,V} from [a - b] — the effect of [cmp a, b]. *)

val flag_z : t -> bool
val flag_n : t -> bool
val flag_c : t -> bool
val flag_v : t -> bool

val push_special : t -> Regs.special -> unit
(** Push a special register on the active stack (the [lr] slot of Tock's
    [stmdb sp!, {r4-r11, lr}]). *)

val pop_special : t -> Regs.special -> unit

(** {1 Whole-state capture}

    The snapshot subsystem's view: {e every} architectural register,
    including the pending (pre-ISB) CONTROL write — unlike {!snapshot}
    below, which keeps only the callee-saved context the switch contract
    compares. The decoded-instruction cache is deliberately not captured:
    it is host-side state validated against the memory's code generation,
    which a restore always advances. *)

type state

val capture_state : t -> state
val restore_state : t -> state -> unit

val fingerprint : t -> int64
(** FNV-1a over the architectural register file (not the icache, not the
    cycle handle — nothing host-side). *)

(** {1 Snapshots and contracts} *)

type snapshot

val snapshot : t -> snapshot
val callee_saved_of : snapshot -> Word32.t list
val msp_of : snapshot -> Word32.t

val cpu_state_correct : old:snapshot -> t -> (unit, string) result
(** The paper's [cpu_state_correct(new, old)] postcondition (§4.5): all
    callee-saved registers and the kernel stack pointer (MSP) are equal to
    their values at [old], and the CPU is back in privileged thread mode. *)

val pp : Format.formatter -> t -> unit

(** {1 Internal — used by the exception machinery} *)

val set_mode : t -> mode -> unit
val set_special_raw : t -> Regs.special -> Word32.t -> unit

val set_pc : t -> Word32.t -> unit
(** [set_special_raw t Pc] minus the register match and masking, for the
    block dispatcher's per-instruction PC update; the value must already
    be a well-formed {!Word32.t}. *)

val pc : t -> Word32.t
(** [get_special t Pc] minus the register match — the superblock
    dispatcher reads the PC once per block boundary to pick a link. *)

val compile_block :
  t ->
  fallback:(Thumb.instr -> Icache.stop option) ->
  Icache.entry array ->
  (unit -> Icache.stop option) array * bool array * int array
(** Compile a decoded block (execution order) into macro-ops for the
    superblock engine: [(ops, wmask, mcount)] — per macro-op closure,
    may-write-memory flag, and instruction count. Runs of pure ALU
    instructions are fused into single closures; rare/contract-bearing
    instructions defer to [fallback] (the {!Mc} interpreter case).
    Semantics, cycle charges and fault points are bit-identical to
    interpreting [entries], provided the caller only invokes the ops when
    remaining fuel covers the whole block and re-validates
    {!Memory.code_generation} after every op whose [wmask] is set. *)

val control_committed : t -> Word32.t
(** The CONTROL value that privilege checks actually see (post-ISB). *)
