type instr =
  | Nop
  | Mov_reg of Regs.gpr * Regs.gpr
  | Movw of Regs.gpr * int
  | Movt of Regs.gpr * int
  | Addw of Regs.gpr * Regs.gpr * int
  | Subw of Regs.gpr * Regs.gpr * int
  | Ldr_imm of Regs.gpr * Regs.gpr * int
  | Str_imm of Regs.gpr * Regs.gpr * int
  | Ldmia of Regs.gpr * bool * Regs.gpr list
  | Stmia of Regs.gpr * bool * Regs.gpr list
  | Stmdb of Regs.gpr * bool * Regs.gpr list
  | Push of Regs.gpr list * bool
  | Pop of Regs.gpr list * bool
  | Mrs of Regs.gpr * Regs.special
  | Msr of Regs.special * Regs.gpr
  | Isb
  | Dsb
  | Dmb
  | Svc of int
  | Bx of [ `Lr | `Reg of Regs.gpr ]
  | Cpsid
  | Cpsie
  | Cmp_lr of Regs.gpr
  | B_cond of [ `Eq | `Ne ] * int
  | Mov_from_lr of Regs.gpr
  | Mov_to_lr of Regs.gpr

(* SYSm encodings, ARMv7-M ARM B5.4.2. *)
let sysm = function
  | Regs.Psr -> 3 (* XPSR *)
  | Regs.Ipsr -> 5
  | Regs.Msp -> 8
  | Regs.Psp -> 9
  | Regs.Control -> 20
  | Regs.Lr | Regs.Pc -> invalid_arg "sysm: lr/pc are not system registers"

let special_of_sysm = function
  | 3 -> Some Regs.Psr
  | 5 -> Some Regs.Ipsr
  | 8 -> Some Regs.Msp
  | 9 -> Some Regs.Psp
  | 20 -> Some Regs.Control
  | _ -> None

let reglist regs =
  List.fold_left (fun acc r -> acc lor (1 lsl Regs.gpr_index r)) 0 regs

let gprs_of_reglist bits =
  List.filter_map
    (fun i -> if bits land (1 lsl i) <> 0 then Some (Regs.gpr_of_index i) else None)
    (List.init 13 Fun.id)

let check_imm name v bits =
  if v < 0 || v >= 1 lsl bits then invalid_arg (Printf.sprintf "thumb: %s out of range" name)

(* Split a 16-bit immediate into the i:imm4:imm3:imm8 fields of the
   MOVW/MOVT/ADDW/SUBW encodings. *)
let split16 imm16 =
  let imm8 = imm16 land 0xff in
  let imm3 = (imm16 lsr 8) land 0x7 in
  let i = (imm16 lsr 11) land 0x1 in
  let imm4 = (imm16 lsr 12) land 0xf in
  (i, imm4, imm3, imm8)

let split12 imm12 =
  let imm8 = imm12 land 0xff in
  let imm3 = (imm12 lsr 8) land 0x7 in
  let i = (imm12 lsr 11) land 0x1 in
  (i, imm3, imm8)

let encode = function
  | Nop -> [ 0xBF00 ]
  | Mov_reg (rd, rm) ->
    let d = Regs.gpr_index rd and m = Regs.gpr_index rm in
    [ 0x4600 lor ((d lsr 3) lsl 7) lor (m lsl 3) lor (d land 0x7) ]
  | Movw (rd, imm16) ->
    check_imm "movw imm16" imm16 16;
    let i, imm4, imm3, imm8 = split16 imm16 in
    [ 0xF240 lor (i lsl 10) lor imm4;
      (imm3 lsl 12) lor (Regs.gpr_index rd lsl 8) lor imm8 ]
  | Movt (rd, imm16) ->
    check_imm "movt imm16" imm16 16;
    let i, imm4, imm3, imm8 = split16 imm16 in
    [ 0xF2C0 lor (i lsl 10) lor imm4;
      (imm3 lsl 12) lor (Regs.gpr_index rd lsl 8) lor imm8 ]
  | Addw (rd, rn, imm12) ->
    check_imm "addw imm12" imm12 12;
    let i, imm3, imm8 = split12 imm12 in
    [ 0xF200 lor (i lsl 10) lor Regs.gpr_index rn;
      (imm3 lsl 12) lor (Regs.gpr_index rd lsl 8) lor imm8 ]
  | Subw (rd, rn, imm12) ->
    check_imm "subw imm12" imm12 12;
    let i, imm3, imm8 = split12 imm12 in
    [ 0xF2A0 lor (i lsl 10) lor Regs.gpr_index rn;
      (imm3 lsl 12) lor (Regs.gpr_index rd lsl 8) lor imm8 ]
  | Ldr_imm (rt, rn, imm12) ->
    check_imm "ldr imm12" imm12 12;
    [ 0xF8D0 lor Regs.gpr_index rn; (Regs.gpr_index rt lsl 12) lor imm12 ]
  | Str_imm (rt, rn, imm12) ->
    check_imm "str imm12" imm12 12;
    [ 0xF8C0 lor Regs.gpr_index rn; (Regs.gpr_index rt lsl 12) lor imm12 ]
  | Ldmia (rn, wb, regs) ->
    [ 0xE890 lor (if wb then 0x20 else 0) lor Regs.gpr_index rn; reglist regs ]
  | Stmia (rn, wb, regs) ->
    [ 0xE880 lor (if wb then 0x20 else 0) lor Regs.gpr_index rn; reglist regs ]
  | Stmdb (rn, wb, regs) ->
    [ 0xE900 lor (if wb then 0x20 else 0) lor Regs.gpr_index rn; reglist regs ]
  | Push (regs, with_lr) ->
    let bits = reglist regs in
    if bits land lnot 0xff <> 0 then invalid_arg "thumb: push T1 takes r0-r7";
    [ 0xB400 lor (if with_lr then 0x100 else 0) lor bits ]
  | Pop (regs, with_pc) ->
    let bits = reglist regs in
    if bits land lnot 0xff <> 0 then invalid_arg "thumb: pop T1 takes r0-r7";
    [ 0xBC00 lor (if with_pc then 0x100 else 0) lor bits ]
  | Mrs (rd, spec) -> [ 0xF3EF; 0x8000 lor (Regs.gpr_index rd lsl 8) lor sysm spec ]
  | Msr (spec, rn) -> [ 0xF380 lor Regs.gpr_index rn; 0x8800 lor sysm spec ]
  | Isb -> [ 0xF3BF; 0x8F6F ]
  | Dsb -> [ 0xF3BF; 0x8F4F ]
  | Dmb -> [ 0xF3BF; 0x8F5F ]
  | Svc imm8 ->
    check_imm "svc imm8" imm8 8;
    [ 0xDF00 lor imm8 ]
  | Bx `Lr -> [ 0x4700 lor (14 lsl 3) ]
  | Bx (`Reg rm) -> [ 0x4700 lor (Regs.gpr_index rm lsl 3) ]
  | Cpsid -> [ 0xB672 ]
  | Cpsie -> [ 0xB662 ]
  | Cmp_lr rm ->
    (* CMP (register) T2 with Rn = lr: 0100 0101 N mmmm nnn *)
    [ 0x4500 lor 0x80 lor (Regs.gpr_index rm lsl 3) lor 0b110 ]
  | B_cond (cond, off) ->
    if off < -128 || off > 127 then invalid_arg "thumb: branch offset";
    let c = match cond with `Eq -> 0x0 | `Ne -> 0x1 in
    [ 0xD000 lor (c lsl 8) lor (off land 0xff) ]
  | Mov_from_lr rd ->
    let d = Regs.gpr_index rd in
    [ 0x4600 lor ((d lsr 3) lsl 7) lor (14 lsl 3) lor (d land 0x7) ]
  | Mov_to_lr rm ->
    (* rd = 14: D = 1, low bits = 110 *)
    [ 0x4600 lor 0x80 lor (Regs.gpr_index rm lsl 3) lor 0b110 ]

(* Instructions that end a straight-line run for the basic-block cache:
   control transfers (taken or not), plus [isb], the commit point for
   pending CONTROL writes — the execute-permission environment of the
   instructions after an isb can differ from those before it, and a block
   is permission-checked as a unit. *)
let terminates_block = function
  | Svc _ | Bx _ | B_cond _ | Isb -> true
  | Pop (_, with_pc) -> with_pc
  | Nop | Mov_reg _ | Movw _ | Movt _ | Addw _ | Subw _ | Ldr_imm _ | Str_imm _ | Ldmia _
  | Stmia _ | Stmdb _ | Push _ | Mrs _ | Msr _ | Dsb | Dmb | Cpsid | Cpsie | Cmp_lr _
  | Mov_from_lr _ | Mov_to_lr _ ->
    false

let is_32bit hw1 =
  let top5 = hw1 lsr 11 in
  top5 = 0b11101 || top5 = 0b11110 || top5 = 0b11111

let decode_gpr i = if i <= 12 then Ok (Regs.gpr_of_index i) else Error "high register operand"

let ( let* ) = Result.bind

let decode16 hw1 =
  if hw1 = 0xBF00 then Ok Nop
  else if hw1 = 0xB672 then Ok Cpsid
  else if hw1 = 0xB662 then Ok Cpsie
  else if hw1 land 0xFF00 = 0x4600 then begin
    let d = ((hw1 lsr 7) land 1) lsl 3 lor (hw1 land 0x7) in
    let m = (hw1 lsr 3) land 0xf in
    if m = 14 then
      let* rd = decode_gpr d in
      Ok (Mov_from_lr rd)
    else if d = 14 then
      let* rm = decode_gpr m in
      Ok (Mov_to_lr rm)
    else
      let* rd = decode_gpr d in
      let* rm = decode_gpr m in
      Ok (Mov_reg (rd, rm))
  end
  else if hw1 land 0xFF87 = 0x4700 then begin
    let m = (hw1 lsr 3) land 0xf in
    if m = 14 then Ok (Bx `Lr)
    else
      let* rm = decode_gpr m in
      Ok (Bx (`Reg rm))
  end
  else if hw1 land 0xFF00 = 0xDF00 then Ok (Svc (hw1 land 0xff))
  else if hw1 land 0xFE00 = 0xB400 then
    Ok (Push (gprs_of_reglist (hw1 land 0xff), hw1 land 0x100 <> 0))
  else if hw1 land 0xFE00 = 0xBC00 then
    Ok (Pop (gprs_of_reglist (hw1 land 0xff), hw1 land 0x100 <> 0))
  else if hw1 land 0xFF87 = 0x4586 then begin
    let* rm = decode_gpr ((hw1 lsr 3) land 0xf) in
    Ok (Cmp_lr rm)
  end
  else if hw1 land 0xF000 = 0xD000 then begin
    let c = (hw1 lsr 8) land 0xf in
    let off = hw1 land 0xff in
    let off = if off >= 128 then off - 256 else off in
    match c with
    | 0x0 -> Ok (B_cond (`Eq, off))
    | 0x1 -> Ok (B_cond (`Ne, off))
    | _ -> Error "unsupported condition code"
  end
  else Error (Printf.sprintf "unknown 16-bit encoding 0x%04x" hw1)

let decode32 hw1 hw2 =
  let rd_hi () = decode_gpr ((hw2 lsr 8) land 0xf) in
  (* imm16 = imm4:i:imm3:imm8 *)
  let imm16 () =
    ((hw1 land 0xf) lsl 12)
    lor (((hw1 lsr 10) land 1) lsl 11)
    lor (((hw2 lsr 12) land 0x7) lsl 8)
    lor (hw2 land 0xff)
  in
  let imm12 () =
    (((hw1 lsr 10) land 1) lsl 11) lor (((hw2 lsr 12) land 0x7) lsl 8) lor (hw2 land 0xff)
  in
  if hw1 land 0xFBF0 = 0xF240 && hw2 land 0x8000 = 0 then
    let* rd = rd_hi () in
    Ok (Movw (rd, imm16 ()))
  else if hw1 land 0xFBF0 = 0xF2C0 && hw2 land 0x8000 = 0 then
    let* rd = rd_hi () in
    Ok (Movt (rd, imm16 ()))
  else if hw1 land 0xFBF0 = 0xF200 && hw2 land 0x8000 = 0 then
    let* rd = rd_hi () in
    let* rn = decode_gpr (hw1 land 0xf) in
    Ok (Addw (rd, rn, imm12 ()))
  else if hw1 land 0xFBF0 = 0xF2A0 && hw2 land 0x8000 = 0 then
    let* rd = rd_hi () in
    let* rn = decode_gpr (hw1 land 0xf) in
    Ok (Subw (rd, rn, imm12 ()))
  else if hw1 land 0xFFF0 = 0xF8D0 then
    let* rt = decode_gpr ((hw2 lsr 12) land 0xf) in
    let* rn = decode_gpr (hw1 land 0xf) in
    Ok (Ldr_imm (rt, rn, hw2 land 0xfff))
  else if hw1 land 0xFFF0 = 0xF8C0 then
    let* rt = decode_gpr ((hw2 lsr 12) land 0xf) in
    let* rn = decode_gpr (hw1 land 0xf) in
    Ok (Str_imm (rt, rn, hw2 land 0xfff))
  else if hw1 land 0xFFD0 = 0xE890 then
    let* rn = decode_gpr (hw1 land 0xf) in
    Ok (Ldmia (rn, hw1 land 0x20 <> 0, gprs_of_reglist hw2))
  else if hw1 land 0xFFD0 = 0xE880 then
    let* rn = decode_gpr (hw1 land 0xf) in
    Ok (Stmia (rn, hw1 land 0x20 <> 0, gprs_of_reglist hw2))
  else if hw1 land 0xFFD0 = 0xE900 then
    let* rn = decode_gpr (hw1 land 0xf) in
    Ok (Stmdb (rn, hw1 land 0x20 <> 0, gprs_of_reglist hw2))
  else if hw1 = 0xF3EF && hw2 land 0xF000 = 0x8000 then begin
    let* rd = rd_hi () in
    match special_of_sysm (hw2 land 0xff) with
    | Some spec -> Ok (Mrs (rd, spec))
    | None -> Error "mrs: unknown SYSm"
  end
  else if hw1 land 0xFFF0 = 0xF380 && hw2 land 0xFF00 = 0x8800 then begin
    let* rn = decode_gpr (hw1 land 0xf) in
    match special_of_sysm (hw2 land 0xff) with
    | Some spec -> Ok (Msr (spec, rn))
    | None -> Error "msr: unknown SYSm"
  end
  else if hw1 = 0xF3BF && hw2 = 0x8F6F then Ok Isb
  else if hw1 = 0xF3BF && hw2 = 0x8F4F then Ok Dsb
  else if hw1 = 0xF3BF && hw2 = 0x8F5F then Ok Dmb
  else Error (Printf.sprintf "unknown 32-bit encoding 0x%04x 0x%04x" hw1 hw2)

let decode hw1 fetch_next =
  if is_32bit hw1 then decode32 hw1 (fetch_next ()) else decode16 hw1

let size_bytes i = 2 * List.length (encode i)

let assemble mem addr instrs =
  let cursor = ref addr in
  List.iter
    (fun i ->
      List.iter
        (fun hw ->
          Memory.write8 mem !cursor (hw land 0xff);
          Memory.write8 mem (!cursor + 1) (hw lsr 8);
          cursor := !cursor + 2)
        (encode i))
    instrs;
  !cursor - addr

let pp_reglist ppf regs =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Regs.pp_gpr)
    regs

let pp ppf = function
  | Nop -> Format.fprintf ppf "nop"
  | Mov_reg (rd, rm) -> Format.fprintf ppf "mov %a, %a" Regs.pp_gpr rd Regs.pp_gpr rm
  | Movw (rd, v) -> Format.fprintf ppf "movw %a, #0x%x" Regs.pp_gpr rd v
  | Movt (rd, v) -> Format.fprintf ppf "movt %a, #0x%x" Regs.pp_gpr rd v
  | Addw (rd, rn, v) -> Format.fprintf ppf "addw %a, %a, #%d" Regs.pp_gpr rd Regs.pp_gpr rn v
  | Subw (rd, rn, v) -> Format.fprintf ppf "subw %a, %a, #%d" Regs.pp_gpr rd Regs.pp_gpr rn v
  | Ldr_imm (rt, rn, v) ->
    Format.fprintf ppf "ldr %a, [%a, #%d]" Regs.pp_gpr rt Regs.pp_gpr rn v
  | Str_imm (rt, rn, v) ->
    Format.fprintf ppf "str %a, [%a, #%d]" Regs.pp_gpr rt Regs.pp_gpr rn v
  | Ldmia (rn, wb, regs) ->
    Format.fprintf ppf "ldmia %a%s, %a" Regs.pp_gpr rn (if wb then "!" else "") pp_reglist regs
  | Stmia (rn, wb, regs) ->
    Format.fprintf ppf "stmia %a%s, %a" Regs.pp_gpr rn (if wb then "!" else "") pp_reglist regs
  | Stmdb (rn, wb, regs) ->
    Format.fprintf ppf "stmdb %a%s, %a" Regs.pp_gpr rn (if wb then "!" else "") pp_reglist regs
  | Push (regs, lr) -> Format.fprintf ppf "push %a%s" pp_reglist regs (if lr then " +lr" else "")
  | Pop (regs, pc) -> Format.fprintf ppf "pop %a%s" pp_reglist regs (if pc then " +pc" else "")
  | Mrs (rd, s) -> Format.fprintf ppf "mrs %a, %a" Regs.pp_gpr rd Regs.pp_special s
  | Msr (s, rn) -> Format.fprintf ppf "msr %a, %a" Regs.pp_special s Regs.pp_gpr rn
  | Isb -> Format.fprintf ppf "isb sy"
  | Dsb -> Format.fprintf ppf "dsb sy"
  | Dmb -> Format.fprintf ppf "dmb sy"
  | Svc n -> Format.fprintf ppf "svc #%d" n
  | Bx `Lr -> Format.fprintf ppf "bx lr"
  | Bx (`Reg rm) -> Format.fprintf ppf "bx %a" Regs.pp_gpr rm
  | Cpsid -> Format.fprintf ppf "cpsid i"
  | Cpsie -> Format.fprintf ppf "cpsie i"
  | Cmp_lr rm -> Format.fprintf ppf "cmp lr, %a" Regs.pp_gpr rm
  | B_cond (`Eq, off) -> Format.fprintf ppf "beq #%d" off
  | B_cond (`Ne, off) -> Format.fprintf ppf "bne #%d" off
  | Mov_from_lr rd -> Format.fprintf ppf "mov %a, lr" Regs.pp_gpr rd
  | Mov_to_lr rm -> Format.fprintf ppf "mov lr, %a" Regs.pp_gpr rm

let equal (a : instr) (b : instr) = a = b
