(** Differential-testing harness (§6.1): run the release suite on a kernel
    instance, collect each app's output and final state, and line up two
    kernels' results the way the paper compares Tock and TickTock. *)

open Ticktock

type app_result = {
  app : Suite.app;
  load_error : Kerror.t option;
  output : string;
  state : string;
  faulted : bool;
  exit_code : int option;
}

val run_suite :
  ?apps:Suite.app list ->
  ?max_ticks:int ->
  ?exec:Replayable.Exec.spec ->
  Instance.t ->
  app_result list
(** With [~exec:Fork] the suite runs on a restored fork of the pristine
    post-boot snapshot instead of the boot itself (requires
    [Instance.snap_target]); results must be byte-identical either way.
    [~exec:(Snapshot_file p)] overlays the on-disk pristine image [p]
    before running. *)

type comparison = {
  test_name : string;
  differs : bool;  (** output text differs between the two kernels *)
  layout_sensitive : bool;
  both_completed : bool;
}

val compare_suites : left:app_result list -> right:app_result list -> comparison list
val pp_comparison : Format.formatter -> comparison list -> unit
