(** Randomized hostile-app fuzzing.

    Deterministic (seeded) streams of adversarial syscalls — wild brk/sbrk,
    allow() of unowned buffers, random commands — mixed with in-bounds
    memory traffic and occasional out-of-sandbox accesses. The harness
    loads several fuzzers next to one honest witness and reports the
    system-level outcome; run with contracts enabled on the verified
    kernels, surviving means no contract fired anywhere. *)

open Ticktock

val hostile_addresses : ms:int -> ab:int -> int list
(** The out-of-sandbox probe targets, parameterized by the app's memory
    window [\[ms, ab)]: null, kernel SRAM/flash, just-outside-the-window,
    the SCS page and the address-space ceiling. Shared with the
    coverage-guided fuzzer ({!Fuzzcov}) so both input spaces probe the
    same boundaries. *)

val random_script : seed:int -> steps:int -> int App_dsl.t

val witness_script : int App_dsl.t
(** The honest witness loaded next to every hostile complement: sentinel
    write, console driver exercise, yield, sentinel check. Shared by the
    random fuzzer, the coverage-guided fuzzer and the replay recorder. *)

type outcome = {
  fuzz_seed : int;
  witness_ok : bool;
  isolation_ok : bool;
  kernel_panic : string option;
  fuzzers_faulted : int;
  fuzzers_exited : int;
}

val round_on :
  ?max_ticks:int -> Instance.t -> fuzzers:int -> steps:int -> seed:int -> outcome
(** One round against an already-booted (or just-restored) instance:
    [fuzzers] hostile apps next to one honest witness. The entry point
    fleet campaigns drive against snapshot-forked boards; [max_ticks]
    (default 3000) bounds the scheduler run for light cells.

    Fork-mode contract: [round_on] {e consumes} the instance — it loads
    the witness and fuzzer processes and runs the scheduler, so the board
    is no longer pristine when it returns. A caller reusing one board
    across rounds must restore the pristine post-boot image
    ({!Ticktock.Snapshot.restore}, or {!Ticktock.Snapshot.Registry.fork})
    before {e every} call; given that restore, a forked round is
    byte-identical to one on a freshly booted board. The only exception
    caught is [Tock_cortexm_mpu.Kernel_panic] (reported in
    [kernel_panic]); contract {!Verify.Violation.Violation}s propagate to
    the caller. *)

val run_round : ?fuzzers:int -> ?steps:int -> seed:int -> (unit -> Instance.t) -> outcome

val campaign :
  ?exec:Replayable.Exec.spec ->
  ?seeds:int ->
  ?fuzzers:int ->
  ?steps:int ->
  (unit -> Instance.t) ->
  outcome list * outcome list
(** (all rounds, the rounds that panicked the kernel). Seed [i+1] is cell
    [i] of the shared campaign protocol: cells fan out across
    [TICKTOCK_JOBS] worker domains (parsed once, by {!Ticktock.Jobs} —
    there is no per-campaign parsing) on {!Ticktock.Pool}, and results
    merge in cell-index order, so the outcome list is byte-identical at
    any job count. [exec] (default [Boot]) is the shared execution spec:
    [Boot] builds a fresh board per seed; [Fork] boots one board per
    worker through {!Ticktock.Replayable.Runner}, captures the pristine
    post-boot snapshot and restores it before every round (see the
    fork-mode contract on {!round_on}) — same outcomes, a fraction of the
    wall-clock; [Snapshot_file] forks from an on-disk pristine image.
    Forked execution requires instances with [Instance.snap_target]
    (anything {!Ticktock.Boards} builds). *)
