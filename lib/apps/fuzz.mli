(** Randomized hostile-app fuzzing.

    Deterministic (seeded) streams of adversarial syscalls — wild brk/sbrk,
    allow() of unowned buffers, random commands — mixed with in-bounds
    memory traffic and occasional out-of-sandbox accesses. The harness
    loads several fuzzers next to one honest witness and reports the
    system-level outcome; run with contracts enabled on the verified
    kernels, surviving means no contract fired anywhere. *)

open Ticktock

val random_script : seed:int -> steps:int -> int App_dsl.t

type outcome = {
  fuzz_seed : int;
  witness_ok : bool;
  isolation_ok : bool;
  kernel_panic : string option;
  fuzzers_faulted : int;
  fuzzers_exited : int;
}

val round_on :
  ?max_ticks:int -> Instance.t -> fuzzers:int -> steps:int -> seed:int -> outcome
(** One round against an already-booted (or just-restored) instance:
    [fuzzers] hostile apps next to one honest witness. The entry point
    fleet campaigns drive against snapshot-forked boards; [max_ticks]
    (default 3000) bounds the scheduler run for light cells. *)

val run_round : ?fuzzers:int -> ?steps:int -> seed:int -> (unit -> Instance.t) -> outcome

val campaign :
  ?mode:[ `Boot | `Fork ] ->
  ?seeds:int ->
  ?fuzzers:int ->
  ?steps:int ->
  (unit -> Instance.t) ->
  outcome list * outcome list
(** (all rounds, the rounds that panicked the kernel). [`Boot] (default)
    builds a fresh board per seed; [`Fork] boots one board per worker,
    captures the pristine post-boot snapshot and restores it before every
    round — same outcomes, a fraction of the wall-clock. [`Fork] requires
    instances with [Instance.snap_target] (anything {!Ticktock.Boards}
    builds). *)
