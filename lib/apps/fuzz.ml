(** Randomized hostile-app fuzzing.

    Each fuzz app is a deterministic (seeded) stream of syscalls with
    adversarial arguments — wild [brk]/[sbrk] values, allow() of buffers it
    does not own, commands to random drivers with random arguments — mixed
    with in-bounds memory traffic and the occasional deliberately-hostile
    memory access. The harness loads several fuzzers next to one honest
    witness process and asserts the system-level properties the paper
    verifies:

    - the kernel survives (no exception escapes the scheduler) and, with
      contracts enabled, {e no contract fires} on the TickTock kernels;
    - the witness process is unaffected;
    - the hardware-enforced view stays inside the kernel's logical view
      for every live process.

    Running the same streams against the {e upstream} monolithic kernel
    reproduces the §2.2 denial of service: some seed's wild [brk] panics
    the kernel. *)

open Ticktock
open App_dsl

let hostile_addresses ~ms ~ab =
  [
    0;
    Range.start Layout.kernel_sram + 128;
    Range.start Layout.kernel_flash + 64;
    ms - 1024;
    ms - 1;
    ab;
    ab + 512;
    0xE000_0000;
    Word32.max_value;
  ]

let random_script ~seed ~steps : int App_dsl.t =
  let rng = Random.State.make [| seed; 0xF12 |] in
  let pick xs = List.nth xs (Random.State.int rng (List.length xs)) in
  let* ms = memory_start in
  let* ab = memory_end in
  let in_bounds () = ms + Random.State.int rng (max (ab - ms - 4) 4) in
  let wild_word () =
    pick
      [
        0;
        Random.State.int rng 0x1000;
        ms - Random.State.int rng 4096;
        ms + Random.State.int rng 16384;
        ab + Random.State.int rng 8192;
        Word32.max_value - Random.State.int rng 64;
      ]
  in
  let rec go n =
    if n = 0 then return 0
    else
      let step =
        match Random.State.int rng 100 with
        | c when c < 15 ->
          (* wild brk/sbrk: the §2.2 attack surface *)
          let* _ =
            if Random.State.bool rng then brk (wild_word ())
            else sbrk (Random.State.int rng 8192 - 4096)
          in
          return ()
        | c when c < 30 ->
          (* allow() of buffers we may not own *)
          let addr = if Random.State.bool rng then in_bounds () else wild_word () in
          let len = Random.State.int rng 512 in
          let* _ =
            if Random.State.bool rng then allow_rw ~driver:(Random.State.int rng 12) ~addr ~len
            else allow_ro ~driver:(Random.State.int rng 12) ~addr ~len
          in
          return ()
        | c when c < 55 ->
          (* random commands to random drivers *)
          let* _ =
            command
              ~driver:(Random.State.int rng 12)
              ~cmd:(Random.State.int rng 6)
              ~arg1:(Random.State.int rng 0x10000)
              ~arg2:(Random.State.int rng 0x10000)
              ()
          in
          return ()
        | c when c < 65 ->
          let* _ = subscribe ~driver:(Random.State.int rng 12) ~upcall_id:(Random.State.int rng 4) in
          return ()
        | c when c < 72 ->
          (* memop queries are always safe *)
          let* _ = memop ~op:(Random.State.int rng 8) ~arg:(wild_word ()) () in
          return ()
        | c when c < 97 ->
          (* in-bounds memory traffic *)
          let a = in_bounds () in
          if Random.State.bool rng then
            let* _ = store8 a (Random.State.int rng 256) in
            return ()
          else
            let* _ = load8 a in
            return ()
        | _ ->
          (* hostile access: will fault and kill this fuzzer — that is an
             acceptable outcome the harness accounts for *)
          let a = pick (hostile_addresses ~ms ~ab) in
          let* _ = load8 a in
          return ()
      in
      let* () = step in
      go (n - 1)
  in
  go steps

type outcome = {
  fuzz_seed : int;
  witness_ok : bool;
  isolation_ok : bool;
  kernel_panic : string option;
  fuzzers_faulted : int;
  fuzzers_exited : int;
}

(** The honest witness every hostile round runs next to: write a sentinel,
    exercise the console driver, yield, and report whether the sentinel
    survived. Shared with the coverage-guided fuzzer and the replay
    recorder so "witness" means the same program everywhere. *)
let witness_script =
  let* ms = memory_start in
  let* _ = store32 (ms + 64) 0x5AFE_5AFE in
  let* _ = subscribe ~driver:0 ~upcall_id:0 in
  let* _ = command ~driver:0 ~cmd:1 ~arg1:8 () in
  let* _ = yield in
  let* v = load32 (ms + 64) in
  let* () = printf "%b" (v = 0x5AFE_5AFE) in
  return 0

(** One fuzzing round against an already-booted (or just-restored) kernel
    instance: [fuzzers] hostile apps + one honest witness. [max_ticks]
    bounds the round's scheduler run — fleet campaigns shorten it for
    light cells. *)
let round_on ?(max_ticks = 3000) (k : Instance.t) ~fuzzers ~steps ~seed =
  let witness =
    k.Instance.load ~name:"witness" ~payload:"w" ~program:(to_program witness_script)
      ~min_ram:2048 ~grant_reserve:1024 ~heap_headroom:2048
    |> Result.get_ok
  in
  let fuzz_pids =
    List.init fuzzers (fun i ->
        k.Instance.load
          ~name:(Printf.sprintf "fuzz%d" i)
          ~payload:"f"
          ~program:(to_program (random_script ~seed:(seed + (1000 * i)) ~steps))
          ~min_ram:2048 ~grant_reserve:1024 ~heap_headroom:2048
        |> Result.get_ok)
  in
  let kernel_panic =
    match k.Instance.run ~max_ticks with
    | () -> None
    | exception Tock_cortexm_mpu.Kernel_panic msg -> Some msg
  in
  {
    fuzz_seed = seed;
    witness_ok =
      kernel_panic <> None
      (* a panicked kernel gets no blame for the witness *)
      || (k.Instance.proc_exit witness = Some 0
         && k.Instance.proc_output witness = Some "true");
    isolation_ok =
      kernel_panic <> None
      || List.for_all (fun pid -> k.Instance.proc_isolation_ok pid) (witness :: fuzz_pids);
    kernel_panic;
    fuzzers_faulted = List.length (List.filter k.Instance.proc_faulted fuzz_pids);
    fuzzers_exited =
      List.length (List.filter (fun p -> k.Instance.proc_exit p <> None) fuzz_pids);
  }

(** Run one fuzzing round on a fresh kernel instance. *)
let run_round ?(fuzzers = 3) ?(steps = 60) ~seed (make : unit -> Instance.t) =
  round_on (make ()) ~fuzzers ~steps ~seed

(** Fuzz many seeds; returns (rounds, panics).

    Rounds are independent — each builds its own kernel instance and a
    deterministic per-seed RNG, and the cycle counter is domain-local —
    so they ride the shared campaign protocol ({!Ticktock.Pool}): seed
    [i+1] is cell [i], cells fan out across [TICKTOCK_JOBS] worker
    domains (parsed once, in {!Ticktock.Jobs}), and the pool merges
    results in cell-index order, so the outcome list is byte-identical
    to a sequential run regardless of job count or scheduling.

    [exec] picks the per-round board strategy through the shared
    {!Ticktock.Replayable.Runner}: [Boot] (the default) pays a full board
    construction per seed; [Fork] boots {e one} board per worker domain,
    captures the pristine post-boot image through the board's
    {!Ticktock.Snapshot.target}, and restores it before every round — the
    boards a fresh boot and a fork produce are byte-identical (the
    snapshot roundtrip tests pin this down), so the outcomes are too;
    [Snapshot_file] forks from an on-disk pristine image instead. Forked
    execution requires instances built by {!Ticktock.Boards} (or anything
    else that fills [Instance.snap_target]). *)
let campaign ?(exec = Replayable.Exec.Boot) ?(seeds = 20) ?(fuzzers = 3) ?(steps = 60)
    (make : unit -> Instance.t) =
  let init _w =
    (* One runner per worker: its pristine-image registry is worker-local. *)
    let runner = Replayable.Runner.create ~exec () in
    fun ~seed ->
      Replayable.Runner.cell runner ~key:"fuzz"
        ~boot:(fun () ->
          let k = make () in
          (k, k.Instance.snap_target))
        (fun k -> round_on k ~fuzzers ~steps ~seed)
  in
  let results, _stats =
    Pool.run ~batch:1 ~cells:seeds ~init ~cell:(fun round i -> round ~seed:(i + 1)) ()
  in
  let rounds = Array.to_list results |> List.filter_map Fun.id in
  (rounds, List.filter (fun r -> r.kernel_panic <> None) rounds)
