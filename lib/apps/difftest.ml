(** Differential-testing harness (§6.1).

    Loads the full release-test suite onto a kernel instance, runs the
    system to quiescence, and collects each app's console output and final
    state. [compare] lines up two kernels' results the way the paper
    compares Tock and TickTock on hardware: a test "differs" when its
    output text differs. *)

open Ticktock

type app_result = {
  app : Suite.app;
  load_error : Kerror.t option;
  output : string;
  state : string;
  faulted : bool;
  exit_code : int option;
}

let run_suite ?(apps = Suite.all) ?(max_ticks = 5_000) ?(exec = Replayable.Exec.Boot)
    (k : Instance.t) =
  (* The shared execution spec, applied to an already-booted instance:
     [Fork] captures the pristine post-boot image and runs the suite on a
     restored fork of it rather than on the boot itself — the harness-level
     witness that a forked board is indistinguishable from a booted one
     (the ci gate diffs this run against a plain one byte-for-byte) —
     and [Snapshot_file] overlays an on-disk pristine image instead. *)
  let target what =
    match k.Instance.snap_target with
    | Some tgt -> tgt
    | None ->
      invalid_arg
        (Printf.sprintf "Difftest.run_suite: %s needs an instance with a snapshot target" what)
  in
  (match exec with
  | Replayable.Exec.Boot -> ()
  | Replayable.Exec.Fork ->
    let tgt = target "--exec fork" in
    Ticktock.Snapshot.restore tgt (Ticktock.Snapshot.capture tgt)
  | Replayable.Exec.Snapshot_file path -> Ticktock.Snapshot.load (target "--exec snapshot:") path);
  let loaded =
    List.map
      (fun (app : Suite.app) ->
        let program = App_dsl.to_program (app.Suite.script ()) in
        let result =
          k.Instance.load ~name:app.Suite.app_name ~payload:(Suite.payload_of app) ~program
            ~min_ram:app.Suite.min_ram ~grant_reserve:app.Suite.grant_reserve
            ~heap_headroom:2048
        in
        (app, result))
      apps
  in
  k.Instance.run ~max_ticks;
  List.map
    (fun ((app : Suite.app), result) ->
      match result with
      | Error e ->
        { app; load_error = Some e; output = ""; state = "not loaded"; faulted = false;
          exit_code = None }
      | Ok pid ->
        {
          app;
          load_error = None;
          output = Option.value ~default:"" (k.Instance.proc_output pid);
          state = Option.value ~default:"?" (k.Instance.proc_state pid);
          faulted = k.Instance.proc_faulted pid;
          exit_code = k.Instance.proc_exit pid;
        })
    loaded

type comparison = {
  test_name : string;
  differs : bool;
  layout_sensitive : bool;
  both_completed : bool;
}

let compare_suites ~(left : app_result list) ~(right : app_result list) =
  List.map2
    (fun l r ->
      assert (l.app.Suite.app_name = r.app.Suite.app_name);
      let completed (x : app_result) =
        x.load_error = None
        && (x.exit_code <> None || (x.faulted && x.app.Suite.expect_fault))
      in
      {
        test_name = l.app.Suite.app_name;
        differs = not (String.equal l.output r.output);
        layout_sensitive = l.app.Suite.layout_sensitive;
        both_completed = completed l && completed r;
      })
    left right

let pp_comparison ppf rows =
  Format.fprintf ppf "@[<v>%-22s %-10s %-18s %s@," "Test" "Output" "Layout-sensitive" "Completed";
  List.iter
    (fun c ->
      Format.fprintf ppf "%-22s %-10s %-18b %b@," c.test_name
        (if c.differs then "DIFFERS" else "same")
        c.layout_sensitive c.both_completed)
    rows;
  let differing = List.filter (fun c -> c.differs) rows in
  Format.fprintf ppf "%d of %d tests differ@]" (List.length differing) (List.length rows)
