(* Chrome trace_event JSON export (the "JSON Array Format" both
   about://tracing and Perfetto load). One Chrome "process" represents the
   board; each simulated process gets its own lane (thread), alongside
   fixed kernel / mpu / bus / contracts lanes. Timestamps are kernel ticks
   reported in the "ts" microsecond field — model time, so exports are
   deterministic and zooming in Perfetto shows ticks directly. *)

let board_pid = 1

(* Lane (Chrome tid) layout: fixed lanes first, then one per simulated pid. *)
let tid_of_lane = function
  | Event.Kernel -> 0
  | Event.Mpu -> 1
  | Event.Bus -> 2
  | Event.Contracts -> 3
  | Event.Chaos -> 4
  | Event.Process p -> 10 + p

let escape = Metrics.json_escape

let add_args b args =
  Buffer.add_string b "\"args\": {";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "\"%s\": \"%s\"" (escape k) (escape v)))
    args;
  Buffer.add_char b '}'

let add_meta b ~name ~tid ~value =
  Buffer.add_string b
    (Printf.sprintf "    {\"name\": \"%s\", \"ph\": \"M\", \"pid\": %d, \"tid\": %d, " name board_pid tid);
  add_args b [ ("name", value) ];
  Buffer.add_string b "},\n"

let add_sort_index b ~tid ~index =
  Buffer.add_string b
    (Printf.sprintf
       "    {\"name\": \"thread_sort_index\", \"ph\": \"M\", \"pid\": %d, \"tid\": %d, \"args\": {\"sort_index\": %d}},\n"
       board_pid tid index)

(* [name] labels the board (Chrome process_name); [window] keeps only the
   events whose tick falls in the inclusive [(lo, hi)] range — the replay
   navigator's arbitrary-window export. *)
let to_json ?(name = "ticktock") ?window recorder =
  let entries = Recorder.entries recorder in
  let entries =
    match window with
    | None -> entries
    | Some (lo, hi) ->
      List.filter (fun (e : Recorder.entry) -> e.Recorder.at >= lo && e.Recorder.at <= hi) entries
  in
  (* Collect the lanes actually used, fixed lanes always present. *)
  let module IS = Set.Make (Int) in
  let pids =
    List.fold_left
      (fun acc (e : Recorder.entry) ->
        match Event.lane e.event with Event.Process p -> IS.add p acc | _ -> acc)
      IS.empty entries
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  add_meta b ~name:"process_name" ~tid:0 ~value:name;
  add_meta b ~name:"thread_name" ~tid:(tid_of_lane Event.Kernel) ~value:"kernel";
  add_meta b ~name:"thread_name" ~tid:(tid_of_lane Event.Mpu) ~value:"mpu";
  add_meta b ~name:"thread_name" ~tid:(tid_of_lane Event.Bus) ~value:"bus/icache";
  add_meta b ~name:"thread_name" ~tid:(tid_of_lane Event.Contracts) ~value:"contracts";
  add_meta b ~name:"thread_name" ~tid:(tid_of_lane Event.Chaos) ~value:"chaos";
  IS.iter
    (fun p ->
      add_meta b ~name:"thread_name" ~tid:(tid_of_lane (Event.Process p)) ~value:(Printf.sprintf "pid %d" p))
    pids;
  List.iter (fun lane -> add_sort_index b ~tid:(tid_of_lane lane) ~index:(tid_of_lane lane))
    [ Event.Kernel; Event.Mpu; Event.Bus; Event.Contracts; Event.Chaos ];
  IS.iter (fun p -> add_sort_index b ~tid:(10 + p) ~index:(10 + p)) pids;
  List.iteri
    (fun i (e : Recorder.entry) ->
      if i > 0 then Buffer.add_string b ",\n";
      let ev = e.event in
      Buffer.add_string b
        (Printf.sprintf "    {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"i\", \"s\": \"t\", \"ts\": %d, \"pid\": %d, \"tid\": %d, "
           (escape (Event.name ev))
           (Event.lane_name (Event.lane ev))
           e.at board_pid
           (tid_of_lane (Event.lane ev)));
      add_args b (Event.args ev);
      Buffer.add_char b '}')
    entries;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b
