(* The cross-layer event vocabulary. Payloads are deliberately primitive
   (ints and strings): this library sits *below* Mach, so layers as deep as
   the memory bus can emit events without creating a dependency cycle, and
   an event can never capture live kernel state that a later consumer could
   mutate. Addresses are plain ints (the Word32 representation). *)

type t =
  (* scheduler / kernel *)
  | Proc_created of { pid : int; name : string }
  | Scheduled of { pid : int }
  | Syscall of { pid : int; call : string; result : int }
  | Upcall of { pid : int; upcall_id : int; arg : int }
  | Faulted of { pid : int; reason : string }
  | Exited of { pid : int; code : int }
  | Restarted of { pid : int }
  (* context switches *)
  | Switch_to_user of { pid : int }
  | Exc_entry of { exc : int }
  | Exc_return of { to_handler : bool }
  (* MPU reconfiguration *)
  | Mpu_region_write of { arch : string; index : int; generation : int }
  | Mpu_enable of { arch : string; on : bool; generation : int }
  (* allocator decisions *)
  | Region_update of { start : int; size : int; app_break : int; kernel_break : int }
  | Grant_placed of { addr : int; size : int }
  | Brk of { pid : int; app_break : int; ok : bool }
  | Grant of { pid : int; driver : int; addr : int; ok : bool }
  (* bus / instruction-cache invalidation *)
  | Buscache_flush of { reason : string }
  | Icache_invalidated of { generation : int; addr : int }
  (* contract checking *)
  | Contract_failed of { site : string }
  (* fault injection and self-healing *)
  | Chaos_injected of { kind : string; target : int; info : int }
      (** one injected fault; [target] is a pid, register slot or address
          depending on [kind], [info] a kind-specific detail (bit index,
          stall length, ...) *)
  | Mpu_scrub of { pid : int; mismatched : int; repaired : bool; latency : int }
      (** the scrubber found [mismatched] live register words disagreeing
          with the configuration derived from the allocator; [latency] is
          model cycles since the corrupting write when known (else 0) *)
  | Watchdog_fired of { pid : int; ran : int }
      (** the software watchdog faulted a process after [ran] syscall-less
          model cycles *)

(* A sink is just a closure; hook sites hold it as [(t -> unit) option] and
   construct the event only inside [Some] branches, so a disabled hook costs
   one pattern match and allocates nothing. *)
type sink = t -> unit

let pid = function
  | Proc_created { pid; _ }
  | Scheduled { pid }
  | Syscall { pid; _ }
  | Upcall { pid; _ }
  | Faulted { pid; _ }
  | Exited { pid; _ }
  | Restarted { pid }
  | Switch_to_user { pid }
  | Brk { pid; _ }
  | Grant { pid; _ }
  | Mpu_scrub { pid; _ }
  | Watchdog_fired { pid; _ } ->
      Some pid
  | Exc_entry _ | Exc_return _ | Mpu_region_write _ | Mpu_enable _ | Region_update _
  | Grant_placed _ | Buscache_flush _ | Icache_invalidated _ | Contract_failed _
  | Chaos_injected _ ->
      None

let name = function
  | Proc_created _ -> "proc_created"
  | Scheduled _ -> "scheduled"
  | Syscall { call; _ } -> "syscall " ^ call
  | Upcall _ -> "upcall"
  | Faulted _ -> "faulted"
  | Exited _ -> "exited"
  | Restarted _ -> "restarted"
  | Switch_to_user _ -> "switch_to_user"
  | Exc_entry { exc } -> Printf.sprintf "exc_entry %d" exc
  | Exc_return _ -> "exc_return"
  | Mpu_region_write { arch; index; _ } -> Printf.sprintf "%s region[%d] write" arch index
  | Mpu_enable { arch; on; _ } -> Printf.sprintf "%s %s" arch (if on then "enable" else "disable")
  | Region_update _ -> "region_update"
  | Grant_placed _ -> "grant_placed"
  | Brk _ -> "brk"
  | Grant _ -> "grant"
  | Buscache_flush _ -> "buscache_flush"
  | Icache_invalidated _ -> "icache_invalidated"
  | Contract_failed { site } -> "contract_failed " ^ site
  | Chaos_injected { kind; _ } -> "chaos_injected " ^ kind
  | Mpu_scrub _ -> "mpu_scrub"
  | Watchdog_fired _ -> "watchdog_fired"

(* The Chrome-trace lane (and textual layer tag) an event belongs to. *)
type lane = Kernel | Mpu | Bus | Contracts | Chaos | Process of int

let lane ev =
  match ev with
  | Mpu_region_write _ | Mpu_enable _ -> Mpu
  | Buscache_flush _ | Icache_invalidated _ -> Bus
  | Contract_failed _ -> Contracts
  | Chaos_injected _ -> Chaos
  | Mpu_scrub _ -> Mpu
  | Exc_entry _ | Exc_return _ | Region_update _ | Grant_placed _ -> Kernel
  | _ -> ( match pid ev with Some p -> Process p | None -> Kernel)

let args = function
  | Proc_created { pid; name } -> [ ("pid", string_of_int pid); ("name", name) ]
  | Scheduled { pid } -> [ ("pid", string_of_int pid) ]
  | Syscall { pid; call; result } ->
      [ ("pid", string_of_int pid); ("call", call); ("result", string_of_int result) ]
  | Upcall { pid; upcall_id; arg } ->
      [ ("pid", string_of_int pid); ("upcall_id", string_of_int upcall_id); ("arg", string_of_int arg) ]
  | Faulted { pid; reason } -> [ ("pid", string_of_int pid); ("reason", reason) ]
  | Exited { pid; code } -> [ ("pid", string_of_int pid); ("code", string_of_int code) ]
  | Restarted { pid } -> [ ("pid", string_of_int pid) ]
  | Switch_to_user { pid } -> [ ("pid", string_of_int pid) ]
  | Exc_entry { exc } -> [ ("exc", string_of_int exc) ]
  | Exc_return { to_handler } -> [ ("to_handler", string_of_bool to_handler) ]
  | Mpu_region_write { arch; index; generation } ->
      [ ("arch", arch); ("index", string_of_int index); ("generation", string_of_int generation) ]
  | Mpu_enable { arch; on; generation } ->
      [ ("arch", arch); ("on", string_of_bool on); ("generation", string_of_int generation) ]
  | Region_update { start; size; app_break; kernel_break } ->
      [
        ("start", Printf.sprintf "0x%x" start);
        ("size", string_of_int size);
        ("app_break", Printf.sprintf "0x%x" app_break);
        ("kernel_break", Printf.sprintf "0x%x" kernel_break);
      ]
  | Grant_placed { addr; size } ->
      [ ("addr", Printf.sprintf "0x%x" addr); ("size", string_of_int size) ]
  | Brk { pid; app_break; ok } ->
      [ ("pid", string_of_int pid); ("app_break", Printf.sprintf "0x%x" app_break); ("ok", string_of_bool ok) ]
  | Grant { pid; driver; addr; ok } ->
      [
        ("pid", string_of_int pid);
        ("driver", string_of_int driver);
        ("addr", Printf.sprintf "0x%x" addr);
        ("ok", string_of_bool ok);
      ]
  | Buscache_flush { reason } -> [ ("reason", reason) ]
  | Icache_invalidated { generation; addr } ->
      [ ("generation", string_of_int generation); ("addr", Printf.sprintf "0x%x" addr) ]
  | Contract_failed { site } -> [ ("site", site) ]
  | Chaos_injected { kind; target; info } ->
      [ ("kind", kind); ("target", string_of_int target); ("info", string_of_int info) ]
  | Mpu_scrub { pid; mismatched; repaired; latency } ->
      [
        ("pid", string_of_int pid);
        ("mismatched", string_of_int mismatched);
        ("repaired", string_of_bool repaired);
        ("latency", string_of_int latency);
      ]
  | Watchdog_fired { pid; ran } ->
      [ ("pid", string_of_int pid); ("ran", string_of_int ran) ]

let lane_name = function
  | Kernel -> "kernel"
  | Mpu -> "mpu"
  | Bus -> "bus"
  | Contracts -> "contracts"
  | Chaos -> "chaos"
  | Process p -> Printf.sprintf "pid %d" p

let pp ppf ev =
  Format.fprintf ppf "[%s] %s" (lane_name (lane ev)) (name ev);
  match args ev with
  | [] -> ()
  | args ->
      Format.fprintf ppf " {%s}"
        (String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) args))
