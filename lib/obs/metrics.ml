(* Named counters, gauges and histograms, plus the snapshot type that
   unifies them with values *polled* from elsewhere (per-method cycle
   hooks, cache hit rates, per-process gauges). A snapshot entry carries a
   [host] flag: host-observational values (bus/icache hit counters — facts
   about the simulator, not the simulated machine) are excluded by
   {!model_only}, which is what determinism comparisons use.

   Histograms are fixed log2 buckets over non-negative ints: bucket [i]
   holds values whose bit length is [i] (0 -> bucket 0, 1 -> 1, 2..3 -> 2,
   4..7 -> 3, ...). Deterministic, allocation-free to update, and wide
   enough for model-cycle latencies. *)

let nbuckets = 63

type hist = {
  buckets : int array;  (* length [nbuckets] *)
  mutable count : int;
  mutable sum : int;
  mutable vmin : int;
  mutable vmax : int;
}

let bucket_of v =
  let v = if v < 0 then 0 else v in
  let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
  bits v 0

let observe h v =
  let v = if v < 0 then 0 else v in
  h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
  h.count <- h.count + 1;
  h.sum <- h.sum + v;
  if h.count = 1 then begin
    h.vmin <- v;
    h.vmax <- v
  end
  else begin
    if v < h.vmin then h.vmin <- v;
    if v > h.vmax then h.vmax <- v
  end

type value =
  | Counter of int
  | Gauge of int
  | Histogram of {
      count : int;
      sum : int;
      vmin : int;
      vmax : int;
      buckets : (int * int) list;  (* (inclusive upper bound, count), non-empty buckets only *)
    }

type entry = { name : string; host : bool; value : value }
type snapshot = entry list

(* The live registry. *)
type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, int ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 16; gauges = Hashtbl.create 16; hists = Hashtbl.create 16 }

let incr ?(by = 1) t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add t.counters name (ref by)

let set_gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.add t.gauges name (ref v)

let hist t name =
  match Hashtbl.find_opt t.hists name with
  | Some h -> h
  | None ->
      let h = { buckets = Array.make nbuckets 0; count = 0; sum = 0; vmin = 0; vmax = 0 } in
      Hashtbl.add t.hists name h;
      h

(* Registry capture/restore for the board snapshot subsystem. Restore
   mutates through existing refs and hist records wherever possible: the
   kernel retains direct references to its syscall-latency hists, and those
   must keep observing the restored state. *)
type captured = {
  cap_counters : (string * int) list;
  cap_gauges : (string * int) list;
  cap_hists : (string * hist) list;  (* private copies of each hist *)
}

let capture t =
  {
    cap_counters = Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters [];
    cap_gauges = Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.gauges [];
    cap_hists =
      Hashtbl.fold
        (fun k h acc -> (k, { h with buckets = Array.copy h.buckets }) :: acc)
        t.hists [];
  }

let restore t c =
  let prune tbl keep =
    Hashtbl.fold (fun k _ acc -> if List.mem_assoc k keep then acc else k :: acc) tbl []
    |> List.iter (Hashtbl.remove tbl)
  in
  prune t.counters c.cap_counters;
  prune t.gauges c.cap_gauges;
  prune t.hists c.cap_hists;
  let put tbl (k, v) =
    match Hashtbl.find_opt tbl k with Some r -> r := v | None -> Hashtbl.add tbl k (ref v)
  in
  List.iter (put t.counters) c.cap_counters;
  List.iter (put t.gauges) c.cap_gauges;
  List.iter
    (fun (k, hs) ->
      let h = hist t k in
      Array.blit hs.buckets 0 h.buckets 0 nbuckets;
      h.count <- hs.count;
      h.sum <- hs.sum;
      h.vmin <- hs.vmin;
      h.vmax <- hs.vmax)
    c.cap_hists

(* Polled-entry constructors, for values owned by other modules. *)
let c ?(host = false) name v = { name; host; value = Counter v }
let g ?(host = false) name v = { name; host; value = Gauge v }

let h ?(host = false) name ~count ~sum ~vmin ~vmax ~buckets =
  { name; host; value = Histogram { count; sum; vmin; vmax; buckets } }

let hist_value h =
  let buckets = ref [] in
  for i = nbuckets - 1 downto 0 do
    if h.buckets.(i) > 0 then
      (* Upper bound of bucket i is 2^i - 1 (bit length <= i). *)
      buckets := ((1 lsl i) - 1, h.buckets.(i)) :: !buckets
  done;
  Histogram { count = h.count; sum = h.sum; vmin = h.vmin; vmax = h.vmax; buckets = !buckets }

(* --- process-global host counters ---

   Campaign-level facts about the simulator itself — boards forked, fleet
   cells run, work-steals between worker domains — that no single kernel
   instance owns. They live in one process-global registry of [Atomic]s
   (workers on other domains bump them concurrently) and surface in every
   unified snapshot as [host]-flagged entries, so [model_only] — and with
   it every determinism comparison — never sees them. *)

let host_mu = Mutex.create ()
let host_tbl : (string, int Atomic.t) Hashtbl.t = Hashtbl.create 8

let host_counter name =
  Mutex.lock host_mu;
  let a =
    match Hashtbl.find_opt host_tbl name with
    | Some a -> a
    | None ->
      let a = Atomic.make 0 in
      Hashtbl.add host_tbl name a;
      a
  in
  Mutex.unlock host_mu;
  a

let host_incr ?(by = 1) name = ignore (Atomic.fetch_and_add (host_counter name) by)
let host_read name = Atomic.get (host_counter name)

let host_reset () =
  Mutex.lock host_mu;
  Hashtbl.iter (fun _ a -> Atomic.set a 0) host_tbl;
  Mutex.unlock host_mu

let compare_entries a b = compare a.name b.name

let host_entries () =
  Mutex.lock host_mu;
  let acc =
    Hashtbl.fold
      (fun name a acc -> { name; host = true; value = Counter (Atomic.get a) } :: acc)
      host_tbl []
  in
  Mutex.unlock host_mu;
  List.sort compare_entries acc

let snapshot t =
  let acc = ref [] in
  Hashtbl.iter (fun name r -> acc := { name; host = false; value = Counter !r } :: !acc) t.counters;
  Hashtbl.iter (fun name r -> acc := { name; host = false; value = Gauge !r } :: !acc) t.gauges;
  Hashtbl.iter (fun name h -> acc := { name; host = false; value = hist_value h } :: !acc) t.hists;
  List.sort compare_entries !acc

let sorted s = List.sort compare_entries s
let model_only s = List.filter (fun e -> not e.host) s
let find s name = List.find_map (fun e -> if e.name = name then Some e.value else None) s

let pp_value ppf = function
  | Counter v -> Format.fprintf ppf "%d" v
  | Gauge v -> Format.fprintf ppf "%d" v
  | Histogram { count; sum; vmin; vmax; buckets } ->
      if count = 0 then Format.fprintf ppf "count=0"
      else begin
        Format.fprintf ppf "count=%d sum=%d min=%d max=%d mean=%d" count sum vmin vmax (sum / count);
        List.iter (fun (le, n) -> Format.fprintf ppf " le(%d)=%d" le n) buckets
      end

let pp ppf s =
  let s = sorted s in
  let width = List.fold_left (fun w e -> max w (String.length e.name)) 0 s in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun e ->
      Format.fprintf ppf "%-*s  %a%s@," width e.name pp_value e.value (if e.host then "  [host]" else ""))
    s;
  Format.fprintf ppf "@]"

let to_text s = Format.asprintf "%a" pp s

(* Stable JSON dump: one object per entry, sorted by name, ints only. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | ch when Char.code ch < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char b ch)
    s;
  Buffer.contents b

let to_json s =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"metrics\": [";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n    {";
      Buffer.add_string b (Printf.sprintf "\"name\": \"%s\", \"host\": %b, " (json_escape e.name) e.host);
      (match e.value with
      | Counter v -> Buffer.add_string b (Printf.sprintf "\"type\": \"counter\", \"value\": %d" v)
      | Gauge v -> Buffer.add_string b (Printf.sprintf "\"type\": \"gauge\", \"value\": %d" v)
      | Histogram { count; sum; vmin; vmax; buckets } ->
          Buffer.add_string b
            (Printf.sprintf "\"type\": \"histogram\", \"count\": %d, \"sum\": %d, \"min\": %d, \"max\": %d, \"buckets\": [" count sum vmin
               vmax);
          List.iteri
            (fun j (le, n) ->
              if j > 0 then Buffer.add_string b ", ";
              Buffer.add_string b (Printf.sprintf "{\"le\": %d, \"count\": %d}" le n))
            buckets;
          Buffer.add_char b ']');
      Buffer.add_char b '}')
    (sorted s);
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b
