(* Ambient observability mode, consulted by board constructors when the
   caller did not attach a recorder explicitly. Lets harnesses that build
   instances through opaque closures (difftest, fuzz) run with tracing
   attached — the determinism CI exercises exactly this: outputs must be
   byte-identical across all three modes.

   [Off]      — no recorder attached, hook sites hold [None]: zero cost.
   [Disabled] — a recorder is attached but disabled: events are built and
                immediately dropped (measures the hook-call overhead).
   [On]       — a recorder is attached and recording.

   Set once before any instance is created (the bench/CLI entry points read
   TICKTOCK_OBS); never mutated mid-run, so reads from fuzz worker domains
   are safe. *)

type mode = Off | Disabled | On

let auto = ref Off
let set_auto m = auto := m
let auto_mode () = !auto

let of_string = function
  | "1" | "on" | "enabled" -> On
  | "0" | "off" | "" -> Off
  | "disabled" -> Disabled
  | s -> invalid_arg ("TICKTOCK_OBS: unknown mode " ^ s)
