(* Bounded ring of timestamped events — the cross-layer analog of the
   scheduler-only [Core.Trace]. Timestamps are kernel ticks (model time),
   never host time, so a recording is a pure function of the program run
   and two runs of the same seed export byte-identical traces. *)

type entry = { at : int; event : Event.t }

(* The ring stores events *unboxed*: each record writes the constructor
   tag and up to four int fields into a flat int array (plus one slot in a
   string array for the constructors that carry one). The [Event.t] built
   at the hook site dies in the next minor collection, recorded or not, so
   tracing adds no GC retention — without this, a few thousand live event
   blocks get promoted out of the minor heap and the "enabled" overhead is
   dominated by collector work rather than by the hooks.

   The arrays start empty and double geometrically up to [capacity]:
   a recorder that records little (or nothing — the "disabled" determinism
   mode attaches one per instance) never pays for the full ring. Capacity
   is rounded up to a power of two so the ring index is a mask, not a
   division; the ring can only wrap once the arrays have reached full
   capacity, so [next land mask] indexes correctly in both the growing and
   the wrapped regime. *)

let stride = 6 (* tick, tag, a, b, c, d *)

type t = {
  capacity : int;
  mask : int;  (* capacity - 1 *)
  mutable ints : int array;  (* stride-sized slots, [||] until first record *)
  mutable strs : string array;
  mutable next : int;  (* total events offered while enabled *)
  mutable enabled : bool;
}

let rec pow2_above n acc = if acc >= n then acc else pow2_above n (acc * 2)

let create ?(capacity = 8192) () =
  if capacity <= 0 then invalid_arg "Recorder.create: capacity must be positive";
  let capacity = pow2_above capacity 1 in
  { capacity; mask = capacity - 1; ints = [||]; strs = [||]; next = 0; enabled = true }

let capacity t = t.capacity
let enabled t = t.enabled
let set_enabled t on = t.enabled <- on

let grow t =
  let size = Array.length t.strs in
  let size' = min t.capacity (max 256 (2 * size)) in
  let ints' = Array.make (size' * stride) 0 and strs' = Array.make size' "" in
  Array.blit t.ints 0 ints' 0 (size * stride);
  Array.blit t.strs 0 strs' 0 size;
  t.ints <- ints';
  t.strs <- strs'

(* Provision the full ring up front. Recording grows the ring on demand,
   but each doubling is a fresh (major-heap) array plus a copy; a harness
   that wants the steady-state recording cost — the overhead bench — can
   pay for the whole ring before the timed region instead. *)
let reserve t =
  while Array.length t.strs < t.capacity do
    grow t
  done

let int_of_bool b = if b then 1 else 0

let record t ~tick event =
  if t.enabled then begin
    if t.next >= Array.length t.strs && Array.length t.strs < t.capacity then grow t;
    let i = t.next land t.mask in
    let base = i * stride in
    let tag, a, b, c, d, s =
      match event with
      | Event.Proc_created { pid; name } -> (0, pid, 0, 0, 0, name)
      | Event.Scheduled { pid } -> (1, pid, 0, 0, 0, "")
      | Event.Syscall { pid; call; result } -> (2, pid, result, 0, 0, call)
      | Event.Upcall { pid; upcall_id; arg } -> (3, pid, upcall_id, arg, 0, "")
      | Event.Faulted { pid; reason } -> (4, pid, 0, 0, 0, reason)
      | Event.Exited { pid; code } -> (5, pid, code, 0, 0, "")
      | Event.Restarted { pid } -> (6, pid, 0, 0, 0, "")
      | Event.Switch_to_user { pid } -> (7, pid, 0, 0, 0, "")
      | Event.Exc_entry { exc } -> (8, exc, 0, 0, 0, "")
      | Event.Exc_return { to_handler } -> (9, int_of_bool to_handler, 0, 0, 0, "")
      | Event.Mpu_region_write { arch; index; generation } -> (10, index, generation, 0, 0, arch)
      | Event.Mpu_enable { arch; on; generation } ->
          (11, int_of_bool on, generation, 0, 0, arch)
      | Event.Region_update { start; size; app_break; kernel_break } ->
          (12, start, size, app_break, kernel_break, "")
      | Event.Grant_placed { addr; size } -> (13, addr, size, 0, 0, "")
      | Event.Brk { pid; app_break; ok } -> (14, pid, app_break, int_of_bool ok, 0, "")
      | Event.Grant { pid; driver; addr; ok } -> (15, pid, driver, addr, int_of_bool ok, "")
      | Event.Buscache_flush { reason } -> (16, 0, 0, 0, 0, reason)
      | Event.Icache_invalidated { generation; addr } -> (17, generation, addr, 0, 0, "")
      | Event.Contract_failed { site } -> (18, 0, 0, 0, 0, site)
      | Event.Chaos_injected { kind; target; info } -> (19, target, info, 0, 0, kind)
      | Event.Mpu_scrub { pid; mismatched; repaired; latency } ->
          (20, pid, mismatched, int_of_bool repaired, latency, "")
      | Event.Watchdog_fired { pid; ran } -> (21, pid, ran, 0, 0, "")
    in
    let ints = t.ints in
    ints.(base) <- tick;
    ints.(base + 1) <- tag;
    ints.(base + 2) <- a;
    ints.(base + 3) <- b;
    ints.(base + 4) <- c;
    ints.(base + 5) <- d;
    t.strs.(i) <- s;
    t.next <- t.next + 1
  end

let event_at t i =
  let base = i * stride in
  let ints = t.ints in
  let a = ints.(base + 2)
  and b = ints.(base + 3)
  and c = ints.(base + 4)
  and d = ints.(base + 5)
  and s = t.strs.(i) in
  match ints.(base + 1) with
  | 0 -> Event.Proc_created { pid = a; name = s }
  | 1 -> Event.Scheduled { pid = a }
  | 2 -> Event.Syscall { pid = a; call = s; result = b }
  | 3 -> Event.Upcall { pid = a; upcall_id = b; arg = c }
  | 4 -> Event.Faulted { pid = a; reason = s }
  | 5 -> Event.Exited { pid = a; code = b }
  | 6 -> Event.Restarted { pid = a }
  | 7 -> Event.Switch_to_user { pid = a }
  | 8 -> Event.Exc_entry { exc = a }
  | 9 -> Event.Exc_return { to_handler = a <> 0 }
  | 10 -> Event.Mpu_region_write { arch = s; index = a; generation = b }
  | 11 -> Event.Mpu_enable { arch = s; on = a <> 0; generation = b }
  | 12 -> Event.Region_update { start = a; size = b; app_break = c; kernel_break = d }
  | 13 -> Event.Grant_placed { addr = a; size = b }
  | 14 -> Event.Brk { pid = a; app_break = b; ok = c <> 0 }
  | 15 -> Event.Grant { pid = a; driver = b; addr = c; ok = d <> 0 }
  | 16 -> Event.Buscache_flush { reason = s }
  | 17 -> Event.Icache_invalidated { generation = a; addr = b }
  | 18 -> Event.Contract_failed { site = s }
  | 19 -> Event.Chaos_injected { kind = s; target = a; info = b }
  | 20 -> Event.Mpu_scrub { pid = a; mismatched = b; repaired = c <> 0; latency = d }
  | 21 -> Event.Watchdog_fired { pid = a; ran = b }
  | _ -> assert false

(* Ring capture/restore for the board snapshot subsystem: whole-array
   copies (the ring is bounded) written back through the same [t], so the
   sinks the layers were wired with keep recording into the restored ring. *)
type captured = {
  cap_ints : int array;
  cap_strs : string array;
  cap_next : int;
  cap_enabled : bool;
}

let capture t =
  {
    cap_ints = Array.copy t.ints;
    cap_strs = Array.copy t.strs;
    cap_next = t.next;
    cap_enabled = t.enabled;
  }

let restore t c =
  t.ints <- Array.copy c.cap_ints;
  t.strs <- Array.copy c.cap_strs;
  t.next <- c.cap_next;
  t.enabled <- c.cap_enabled

let recorded t = min t.next t.capacity
let dropped t = max 0 (t.next - t.capacity)

let clear t =
  let size = Array.length t.strs in
  if size > 0 then begin
    Array.fill t.ints 0 (size * stride) 0;
    Array.fill t.strs 0 size ""
  end;
  t.next <- 0

(* Oldest-first. *)
let entries t =
  let n = recorded t in
  let first = if t.next > t.capacity then t.next land t.mask else 0 in
  List.init n (fun i ->
      let j = (first + i) land t.mask in
      { at = t.ints.(j * stride); event = event_at t j })

let events t = List.map (fun e -> e.event) (entries t)

(* Build the sink closure the layers are wired with. [now] reads the
   owning kernel's tick counter at emission time. *)
let sink t ~now = fun event -> record t ~tick:(now ()) event

let pp ppf t =
  let es = entries t in
  Format.fprintf ppf "@[<v>obs trace: %d recorded, %d dropped@," (recorded t) (dropped t);
  List.iter (fun e -> Format.fprintf ppf "%6d  %a@," e.at Event.pp e.event) es;
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t
