(** The inter-board link: a modeled lossy radio/serial channel.

    Boards exchange {e framed} messages through one shared link object.
    Every frame carries a CRC (FNV-1a over src/dst/port/payload) computed
    at send; delivery verifies it, so wire corruption is {e detected} and
    the frame dropped — exactly what a radio's FCS does. To {e prove}
    detection rather than assume it, each frame also carries a shadow copy
    of its payload taken at send: a frame whose payload differs from its
    shadow yet passes the CRC at delivery would be {e silent} cross-board
    corruption, counted in [st_silent] — the classifier the fabric
    campaign gates on staying zero.

    Faults are deterministic: one xorshift32 stream, seeded per cell,
    drives drop/corrupt/duplicate/reorder decisions in send order at each
    [deliver]. Partitions hold frames between a node pair for a tick
    window and release them when it closes (counted healed). Dead nodes
    (power-cut boards) refuse new sends with {!peer_died} — the
    [Ipc.peer_died] error lifted to fabric scope — and lose both their
    queued inbox and any frames in flight toward them.

    Per-destination inboxes are bounded ([capacity]): a full inbox makes
    [send] return [`Busy], the backpressure the gateway workload leans
    on. All state snapshots ({!capture}/{!restore}/{!fingerprint}), so a
    whole topology forks like any single board. *)

(* The fabric-scope peer-death error: same value, same semantics as the
   IPC capsule's — a sender learns its peer died instead of wedging. *)
let peer_died = Ticktock.Userland.failure

type frame = {
  fr_seq : int;
  fr_src : int;
  fr_dst : int;
  fr_port : int;  (** 0 = application radio, 1 = OTA transfer *)
  fr_payload : string;  (** what travels (faults mutate this) *)
  fr_shadow : string;  (** send-time copy (faults never touch it) *)
  fr_crc : int;  (** computed at send over the un-corrupted frame *)
}

(** Link-fault plan: per-mille rates applied per frame at delivery, plus
    an optional node-pair partition window [(a, b, from, until)]. *)
type faults = {
  fa_drop : int;
  fa_corrupt : int;
  fa_duplicate : int;
  fa_reorder : int;
  fa_partition : (int * int * int * int) option;
}

let no_faults =
  { fa_drop = 0; fa_corrupt = 0; fa_duplicate = 0; fa_reorder = 0; fa_partition = None }

type stats = {
  st_sent : int;
  st_delivered : int;
  st_dropped : int;
  st_corrupted : int;  (** corrupted on the wire, caught by the CRC *)
  st_duplicated : int;
  st_reordered : int;
  st_healed : int;  (** partition windows that closed and released frames *)
  st_silent : int;  (** corrupted frames the CRC missed — must stay zero *)
}

type t = {
  nodes : int;
  capacity : int;  (** per-destination inbox bound (backpressure) *)
  mutable faults : faults;
  mutable rng : int;
  mutable seq : int;
  mutable flight : frame list;  (** in send order *)
  mutable held : frame list;  (** partition-held, in send order *)
  inbox : frame Queue.t array;  (** delivered, per destination *)
  mutable dead : bool array;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable corrupted : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable healed : int;
  mutable silent : int;
  mutable healed_mark : bool;  (** current partition window already counted *)
}

let create ~nodes ?(capacity = 8) ?(faults = no_faults) ~seed () =
  {
    nodes;
    capacity;
    faults;
    rng = (if seed land 0x7FFF_FFFF = 0 then 0x5EED_F0F0 else seed land 0x7FFF_FFFF);
    seq = 0;
    flight = [];
    held = [];
    inbox = Array.init nodes (fun _ -> Queue.create ());
    dead = Array.make nodes false;
    sent = 0;
    delivered = 0;
    dropped = 0;
    corrupted = 0;
    duplicated = 0;
    reordered = 0;
    healed = 0;
    silent = 0;
    healed_mark = false;
  }

(** Re-arm a (typically just-restored) link for one campaign cell: its
    fault plan and deterministic stream are a pure function of the cell. *)
let configure t ~faults ~seed =
  t.faults <- faults;
  t.rng <- (if seed land 0x7FFF_FFFF = 0 then 0x5EED_F0F0 else seed land 0x7FFF_FFFF)

let stats t =
  {
    st_sent = t.sent;
    st_delivered = t.delivered;
    st_dropped = t.dropped;
    st_corrupted = t.corrupted;
    st_duplicated = t.duplicated;
    st_reordered = t.reordered;
    st_healed = t.healed;
    st_silent = t.silent;
  }

(* xorshift32: the same deterministic stream on every host *)
let rand t bound =
  let x = t.rng in
  let x = x lxor (x lsl 13) land 0x7FFF_FFFF in
  let x = x lxor (x lsr 17) in
  let x = x lxor (x lsl 5) land 0x7FFF_FFFF in
  t.rng <- x;
  if bound <= 0 then 0 else x mod bound

let crc ~src ~dst ~port payload =
  let h = ref 0x811C_9DC5 in
  let feed b = h := Word32.mul (!h lxor (b land 0xff)) 0x0100_0193 in
  feed src;
  feed dst;
  feed port;
  String.iter (fun c -> feed (Char.code c)) payload;
  !h

let alive t n = n >= 0 && n < t.nodes && not t.dead.(n)

(** No traffic pending toward [dst]: inbox drained and nothing in flight
    or partition-held. The graceful moment for a planned reboot — nothing
    gets lost when the node's RAM dies. *)
let quiescent t ~dst =
  Queue.is_empty t.inbox.(dst)
  && (not (List.exists (fun f -> f.fr_dst = dst) t.flight))
  && not (List.exists (fun f -> f.fr_dst = dst) t.held)
let pending t ~dst ~port = Queue.fold (fun a f -> if f.fr_port = port then a + 1 else a) 0 t.inbox.(dst)
let inbox_depth t ~dst = Queue.length t.inbox.(dst)

let in_flight_to t dst =
  List.length (List.filter (fun f -> f.fr_dst = dst) t.flight)
  + List.length (List.filter (fun f -> f.fr_dst = dst) t.held)

(** Send a frame. [`Busy] is backpressure (destination window full);
    [`Peer_dead] is the fabric-scope peer-death signal. *)
let send t ~src ~dst ~port payload =
  if not (alive t dst) then `Peer_dead
  else if not (alive t src) then `Peer_dead
  else if inbox_depth t ~dst + in_flight_to t dst >= t.capacity then `Busy
  else begin
    let f =
      {
        fr_seq = t.seq;
        fr_src = src;
        fr_dst = dst;
        fr_port = port;
        fr_payload = payload;
        fr_shadow = payload;
        fr_crc = crc ~src ~dst ~port payload;
      }
    in
    t.seq <- t.seq + 1;
    t.sent <- t.sent + 1;
    Obs.Metrics.host_incr "fabric/frames_sent";
    t.flight <- t.flight @ [ f ];
    `Ok
  end

let partitioned t ~now f =
  match t.faults.fa_partition with
  | Some (a, b, from_, until) when now >= from_ && now < until ->
    (f.fr_src = a && f.fr_dst = b) || (f.fr_src = b && f.fr_dst = a)
  | Some _ | None -> false

let corrupt_payload t payload =
  if String.length payload = 0 then payload
  else begin
    let i = rand t (String.length payload) in
    let b = Bytes.of_string payload in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 + rand t 255)));
    Bytes.to_string b
  end

(* Deliver one frame into its destination inbox, CRC-checked. *)
let accept t f =
  if f.fr_crc <> crc ~src:f.fr_src ~dst:f.fr_dst ~port:f.fr_port f.fr_payload then begin
    (* wire corruption caught by the CRC: detected, dropped, counted *)
    t.corrupted <- t.corrupted + 1;
    Obs.Metrics.host_incr "fabric/frames_corrupted"
  end
  else begin
    (* the CRC passed: any divergence from the send-time shadow would be
       silent corruption crossing the board boundary *)
    if not (String.equal f.fr_payload f.fr_shadow) then begin
      t.silent <- t.silent + 1;
      Obs.Metrics.host_incr "fabric/silent_corruptions"
    end;
    t.delivered <- t.delivered + 1;
    Obs.Metrics.host_incr "fabric/frames_delivered";
    Queue.push f t.inbox.(f.fr_dst)
  end

(** Move in-flight frames to inboxes, applying the fault plan in send
    order under the seeded stream. Called once per global tick. *)
let deliver t ~now =
  (* partition heal: release held frames (in order) when the window ends *)
  (match t.faults.fa_partition with
  | Some (_, _, _, until) when now >= until && t.held <> [] ->
    t.flight <- t.held @ t.flight;
    t.held <- [];
    if not t.healed_mark then begin
      t.healed <- t.healed + 1;
      t.healed_mark <- true;
      Obs.Metrics.host_incr "fabric/partitions_healed"
    end
  | Some _ | None -> ());
  let rec go = function
    | [] -> []
    | f :: rest when t.dead.(f.fr_dst) || t.dead.(f.fr_src) ->
      (* power lost at an endpoint: the frame is gone *)
      t.dropped <- t.dropped + 1;
      Obs.Metrics.host_incr "fabric/frames_dropped";
      go rest
    | f :: rest when partitioned t ~now f ->
      t.held <- t.held @ [ f ];
      go rest
    | f :: rest ->
      let fa = t.faults in
      if fa.fa_drop > 0 && rand t 1000 < fa.fa_drop then begin
        t.dropped <- t.dropped + 1;
        Obs.Metrics.host_incr "fabric/frames_dropped";
        go rest
      end
      else begin
        let f =
          if fa.fa_corrupt > 0 && rand t 1000 < fa.fa_corrupt then
            { f with fr_payload = corrupt_payload t f.fr_payload }
          else f
        in
        let dup = fa.fa_duplicate > 0 && rand t 1000 < fa.fa_duplicate in
        if dup then begin
          t.duplicated <- t.duplicated + 1;
          Obs.Metrics.host_incr "fabric/frames_duplicated"
        end;
        match rest with
        | next :: rest' when fa.fa_reorder > 0 && rand t 1000 < fa.fa_reorder ->
          (* swap with the next frame: the pair arrives transposed *)
          t.reordered <- t.reordered + 1;
          Obs.Metrics.host_incr "fabric/frames_reordered";
          accept t next;
          accept t f;
          if dup then accept t f;
          go rest'
        | _ ->
          accept t f;
          if dup then accept t f;
          go rest
      end
  in
  let fl = t.flight in
  t.flight <- [];
  ignore (go fl)

(** Pop the oldest delivered frame for [dst] on [port]. *)
let pop t ~dst ~port =
  let rec drain acc =
    match Queue.take_opt t.inbox.(dst) with
    | None -> (None, List.rev acc)
    | Some f when f.fr_port = port -> (Some f, List.rev acc)
    | Some f -> drain (f :: acc)
  in
  let hit, skipped = drain [] in
  (* put non-matching frames back in order, behind nothing (queue was
     drained up to the hit): rebuild front portion *)
  let rest = Queue.create () in
  List.iter (fun f -> Queue.push f rest) skipped;
  Queue.transfer t.inbox.(dst) rest;
  Queue.clear t.inbox.(dst);
  Queue.transfer rest t.inbox.(dst);
  hit

(** Mark a node dead (power cut) or alive again. Cutting a node clears
    its inbox — queued frames lived in its RAM. *)
let set_dead t n dead =
  if n >= 0 && n < t.nodes then begin
    t.dead.(n) <- dead;
    if dead then begin
      let lost = Queue.length t.inbox.(n) in
      if lost > 0 then begin
        t.dropped <- t.dropped + lost;
        Obs.Metrics.host_incr ~by:lost "fabric/frames_dropped"
      end;
      Queue.clear t.inbox.(n)
    end
  end

(* --- snapshot --- *)

type state = {
  sn_faults : faults;
  sn_rng : int;
  sn_seq : int;
  sn_flight : frame list;
  sn_held : frame list;
  sn_inbox : frame list array;
  sn_dead : bool array;
  sn_counts : int array;
  sn_healed_mark : bool;
}

let capture t =
  {
    sn_faults = t.faults;
    sn_rng = t.rng;
    sn_seq = t.seq;
    sn_flight = t.flight;
    sn_held = t.held;
    sn_inbox = Array.map (fun q -> List.of_seq (Queue.to_seq q)) t.inbox;
    sn_dead = Array.copy t.dead;
    sn_counts =
      [|
        t.sent; t.delivered; t.dropped; t.corrupted; t.duplicated; t.reordered; t.healed;
        t.silent;
      |];
    sn_healed_mark = t.healed_mark;
  }

let restore t s =
  t.faults <- s.sn_faults;
  t.rng <- s.sn_rng;
  t.seq <- s.sn_seq;
  t.flight <- s.sn_flight;
  t.held <- s.sn_held;
  Array.iteri
    (fun i frames ->
      Queue.clear t.inbox.(i);
      List.iter (fun f -> Queue.push f t.inbox.(i)) frames)
    s.sn_inbox;
  t.dead <- Array.copy s.sn_dead;
  t.sent <- s.sn_counts.(0);
  t.delivered <- s.sn_counts.(1);
  t.dropped <- s.sn_counts.(2);
  t.corrupted <- s.sn_counts.(3);
  t.duplicated <- s.sn_counts.(4);
  t.reordered <- s.sn_counts.(5);
  t.healed <- s.sn_counts.(6);
  t.silent <- s.sn_counts.(7);
  t.healed_mark <- s.sn_healed_mark

let fingerprint t =
  let h = Fp.seed in
  let h = Fp.ints h [ t.rng; t.seq; t.sent; t.delivered; t.dropped; t.corrupted ] in
  let h = Fp.ints h [ t.duplicated; t.reordered; t.healed; t.silent ] in
  let frame h f =
    Fp.int (Fp.string (Fp.ints h [ f.fr_seq; f.fr_src; f.fr_dst; f.fr_port ]) f.fr_payload)
      f.fr_crc
  in
  let h = List.fold_left frame (Fp.int h (List.length t.flight)) t.flight in
  let h = List.fold_left frame (Fp.int h (List.length t.held)) t.held in
  let h =
    Array.fold_left (fun h q -> Queue.fold frame (Fp.int h (Queue.length q)) q) h t.inbox
  in
  Array.fold_left (fun h d -> Fp.int h (if d then 1 else 0)) h t.dead
