(** The radio capsule: a board's endpoint on the inter-board {!Link}.

    One capsule instance per board, all sharing one link object — the
    modeled radio pair. Driver number 12. Commands:

    - 0: this board's node id
    - 1 (arg1 = dst, arg2 = len): transmit the first [len] bytes of the
         allowed-ro buffer to node [dst]; returns 0 on success, {!busy}
         under backpressure (destination window full), {!peer_died} when
         the destination board is dead — the [Ipc.peer_died] error at
         fabric scope
    - 2: receive — copy the oldest pending frame's payload into the
         allowed-rw buffer; returns its length, or failure when empty
    - 3: pending frame count for this board
    - 4 (arg1 = node): liveness probe — 1 if [node] is alive
    - 5 (arg1 = node): watch [node]: if it dies, the subscribed upcall
         fires with {!peer_died} instead of leaving the waiter wedged —
         exactly the IPC capsule's proc-death contract, lifted to boards

    Subscribe upcall 1 is rx-ready: scheduled (edge-triggered, re-armed
    when the inbox drains) whenever frames are pending. The capsule's
    queue/watch state snapshots with the kernel like every capsule. *)

open Ticktock

let driver_num = 12
let peer_died = Link.peer_died

(* Backpressure return value: distinct from both success and failure. *)
let busy = Userland.failure - 1

type state = {
  mutable subscribed : int list;  (** pids with the rx-ready upcall *)
  mutable notified : int list;  (** pids with an un-drained rx notice *)
  mutable watches : (int * int) list;  (** (pid, watched node) *)
  mutable death_told : (int * int) list;  (** watches already fired *)
  mutable svc : Capsule_intf.services option;
}

let capsule ~(link : Link.t) ~node () =
  let st = { subscribed = []; notified = []; watches = []; death_told = []; svc = None } in
  let handle pid =
    match st.svc with
    | None -> None
    | Some svc -> svc.Capsule_intf.svc_handle ~pid ~driver:driver_num
  in
  let read_payload (ph : Capsule_intf.process_handle) len =
    match ph.Capsule_intf.ph_allowed_ro () with
    | None -> None
    | Some buf ->
      let len = min len (Range.size buf) in
      let rec go i acc =
        if i >= len then Some acc
        else
          match ph.Capsule_intf.ph_read_byte (Range.start buf + i) with
          | Ok b -> go (i + 1) (acc ^ String.make 1 (Char.chr (b land 0xff)))
          | Error _ -> None
      in
      go 0 ""
  in
  let write_payload (ph : Capsule_intf.process_handle) payload =
    match ph.Capsule_intf.ph_allowed_rw () with
    | None -> None
    | Some buf ->
      let len = min (String.length payload) (Range.size buf) in
      let rec go i =
        if i >= len then Some len
        else
          match ph.Capsule_intf.ph_write_byte (Range.start buf + i) (Char.code payload.[i]) with
          | Ok () -> go (i + 1)
          | Error _ -> None
      in
      go 0
  in
  let command (ph : Capsule_intf.process_handle) ~cmd ~arg1 ~arg2 =
    if cmd = 0 then node
    else if cmd = 1 then begin
      match read_payload ph arg2 with
      | None -> Userland.failure
      | Some payload -> (
        match Link.send link ~src:node ~dst:arg1 ~port:0 payload with
        | `Ok -> Userland.success
        | `Busy -> busy
        | `Peer_dead -> peer_died)
    end
    else if cmd = 2 then begin
      match Link.pop link ~dst:node ~port:0 with
      | None ->
        st.notified <- List.filter (fun p -> p <> ph.Capsule_intf.ph_pid) st.notified;
        Userland.failure
      | Some f -> (
        if Link.pending link ~dst:node ~port:0 = 0 then
          st.notified <- List.filter (fun p -> p <> ph.Capsule_intf.ph_pid) st.notified;
        match write_payload ph f.Link.fr_payload with
        | Some len -> len
        | None -> Userland.failure)
    end
    else if cmd = 3 then begin
      let n = Link.pending link ~dst:node ~port:0 in
      if n = 0 then st.notified <- List.filter (fun p -> p <> ph.Capsule_intf.ph_pid) st.notified;
      n
    end
    else if cmd = 4 then (if Link.alive link arg1 then 1 else 0)
    else if cmd = 5 then begin
      let w = (ph.Capsule_intf.ph_pid, arg1) in
      if not (List.mem w st.watches) then st.watches <- st.watches @ [ w ];
      Userland.success
    end
    else Userland.failure
  in
  let subscribed (ph : Capsule_intf.process_handle) ~upcall_id =
    if upcall_id = 1 && not (List.mem ph.Capsule_intf.ph_pid st.subscribed) then
      st.subscribed <- st.subscribed @ [ ph.Capsule_intf.ph_pid ]
  in
  let tick ~now:_ =
    (* rx-ready: edge-triggered per subscriber, re-armed on drain *)
    if Link.pending link ~dst:node ~port:0 > 0 then
      List.iter
        (fun pid ->
          if not (List.mem pid st.notified) then
            match handle pid with
            | None -> ()
            | Some peer ->
              st.notified <- pid :: st.notified;
              peer.Capsule_intf.ph_schedule_upcall ~upcall_id:1
                ~arg:(Link.pending link ~dst:node ~port:0))
        st.subscribed;
    (* peer-death notices for watched nodes *)
    List.iter
      (fun ((pid, watched) as w) ->
        if not (Link.alive link watched) then begin
          if not (List.mem w st.death_told) then
            match handle pid with
            | None -> ()
            | Some peer ->
              st.death_told <- w :: st.death_told;
              peer.Capsule_intf.ph_schedule_upcall ~upcall_id:1 ~arg:peer_died
        end
        else st.death_told <- List.filter (fun w' -> w' <> w) st.death_told)
      st.watches
  in
  let proc_died ~pid =
    st.subscribed <- List.filter (fun p -> p <> pid) st.subscribed;
    st.notified <- List.filter (fun p -> p <> pid) st.notified;
    st.watches <- List.filter (fun (p, _) -> p <> pid) st.watches;
    st.death_told <- List.filter (fun (p, _) -> p <> pid) st.death_told
  in
  let snapshotter =
    {
      Capsule_intf.sn_name = "radio";
      sn_capture =
        (fun () ->
          let subscribed = st.subscribed
          and notified = st.notified
          and watches = st.watches
          and death_told = st.death_told in
          fun () ->
            st.subscribed <- subscribed;
            st.notified <- notified;
            st.watches <- watches;
            st.death_told <- death_told);
      sn_fingerprint =
        (fun () ->
          let ints h xs = List.fold_left Fp.int (Fp.int h (List.length xs)) xs in
          let pairs h xs =
            List.fold_left (fun h (a, b) -> Fp.int (Fp.int h a) b)
              (Fp.int h (List.length xs))
              xs
          in
          pairs (pairs (ints (ints (Fp.int Fp.seed node) st.subscribed) st.notified) st.watches)
            st.death_told);
    }
  in
  { (Capsule_intf.stub ~driver_num ~name:"radio") with
    Capsule_intf.cap_init = (fun svc -> st.svc <- Some svc);
    cap_command = command;
    cap_subscribed = subscribed;
    cap_tick = tick;
    cap_has_work = (fun () -> Link.pending link ~dst:node ~port:0 > 0);
    cap_proc_died = proc_died;
    cap_snapshot = Some snapshotter;
  }
