(** Multi-board topologies under one deterministic global scheduler.

    A topology is N boards (each a full {!Ticktock.Instance.t} with the
    standard capsule set plus a {!Radio} endpoint on one shared {!Link})
    interleaved under a single virtual clock: each global tick steps every
    board exactly one kernel tick in node order, runs its host agents
    (modeled deployment daemons — the OTA streamer/flasher), then delivers
    the link's in-flight frames. Everything is a pure function of the
    topology spec and the seed, so two runs — or a run forked from a
    snapshot — are byte-identical.

    Power loss is first-class: {!cut} kills a board for an outage window
    (its RAM, radio queues and host agents die with it; its {e flash}
    survives), and the reboot path is the real deployment path — restore
    the pristine post-boot image, put the surviving flash back, run the
    node's flash fsck (the OTA bootloader step), and Tock-style
    [boot_load] the process set back out of flash. Whole topologies
    snapshot and fork like single boards: {!capture}/{!restore} compose
    the per-board snapshot targets with the link state. *)

open Ticktock

(** One application a node boots with. [ap_payload] is the TBF payload
    written to flash (fabric workloads slot-pad it so every image lands in
    one fixed-size flash slot — see {!Ota.slot_size}); [ap_factory] builds
    the program fresh, so processes snapshot exactly and reboots reload
    deterministically. *)
type app = {
  ap_name : string;
  ap_payload : string;
  ap_min_ram : int;
  ap_factory : unit -> Userland.program;
}

(** A host-side deployment daemon attached to a node (OTA streamer, OTA
    flasher). Dies with the node's power and restarts fresh at reboot —
    the factory in [ns_agents] is handed the topology and the node id, so
    an agent can reach the link, its board's memory and the reboot
    request. *)
type agent = { ag_name : string; ag_tick : now:int -> unit }

type node_spec = {
  ns_name : string;
  ns_board : string;  (** a {!Fleet.Campaign.builders} board name *)
  ns_apps : app list;
  ns_registry : string -> Userland.program option;
      (** boot-loading registry: must resolve every app name that may ever
          sit in this node's flash (including OTA'd images) *)
  ns_agents : (t -> int -> agent) list;
  ns_fsck : Memory.t -> string;
      (** flash fsck run at reboot, before boot loading — the OTA
          bootloader step; returns a classification label recorded on the
          node ("clean" when there is nothing to repair) *)
}

and node = {
  nd_id : int;
  nd_spec : node_spec;
  nd_k : Instance.t;
  nd_target : Snapshot.target;
  nd_pristine : Snapshot.t;  (** post-boot, pre-load image *)
  mutable nd_agents : agent list;
  mutable nd_outage : int;  (** ticks of power outage left; 0 = alive *)
  mutable nd_reboots : int;
  mutable nd_last_fsck : string;  (** fsck label of the latest reboot *)
  mutable nd_lost_console : string;
      (** transcript (process outputs + kernel console) of incarnations
          lost to power cuts *)
}

and t = {
  link : Link.t;
  nodes : node array;
  mutable vclock : int;
  mutable panic : string option;  (** first kernel panic, if any board hit one *)
}

let plain_spec ~name ~board ?(apps = []) ?(agents = []) () =
  {
    ns_name = name;
    ns_board = board;
    ns_apps = apps;
    ns_registry =
      (fun n ->
        List.find_map (fun a -> if a.ap_name = n then Some (a.ap_factory ()) else None) apps);
    ns_agents = agents;
    ns_fsck = (fun _ -> "clean");
  }

(* Board builders come from the fleet's verified list; the radio endpoint
   and the standard device complement ride the snapshot like any capsule
   devices. *)
let make_node ~link ~id (spec : node_spec) =
  if not (List.mem spec.ns_board Fleet.Campaign.board_names) then
    invalid_arg
      (Printf.sprintf "Fabric: unknown board %S (one of: %s)" spec.ns_board
         (String.concat ", " Fleet.Campaign.board_names));
  let radio = Radio.capsule ~link ~node:id () in
  let k = Capsules.Std_board.make ~what:"Fabric" ~extra:[ radio ] spec.ns_board in
  let target = Option.get k.Instance.snap_target in
  {
    nd_id = id;
    nd_spec = spec;
    nd_k = k;
    nd_target = target;
    nd_pristine = Snapshot.capture target;
    nd_agents = [];
    nd_outage = 0;
    nd_reboots = 0;
    nd_last_fsck = "clean";
    nd_lost_console = "";
  }

(* Everything this incarnation ever said: per-process print output in pid
   order, then the kernel console. Process outputs die with the process
   table at reboot, so power cuts bank this into [nd_lost_console]. *)
let incarnation_transcript (n : node) =
  String.concat ""
    (List.map
       (fun (pid, _) -> Option.value ~default:"" (n.nd_k.Instance.proc_output pid))
       (n.nd_k.Instance.procs ())
    @ [ n.nd_k.Instance.console () ])

(** The node's full life transcript: all lost incarnations, then the
    current one. Deterministic (pid-ordered) but not chronologically
    interleaved across processes. *)
let transcript (n : node) = n.nd_lost_console ^ incarnation_transcript n

let fresh_agents (t : t) (n : node) =
  n.nd_agents <- List.map (fun mk -> mk t n.nd_id) n.nd_spec.ns_agents

let load_apps (n : node) =
  List.iter
    (fun a ->
      match
        n.nd_k.Instance.load_factory ~name:a.ap_name ~payload:a.ap_payload
          ~factory:a.ap_factory ~min_ram:a.ap_min_ram
      with
      | Ok _ -> ()
      | Error e ->
        invalid_arg
          (Printf.sprintf "Fabric: loading %s on node %s: %s" a.ap_name n.nd_spec.ns_name
             (Kerror.to_string e)))
    n.nd_spec.ns_apps

(** Build a topology: boot every board, load its apps, start its agents.
    The returned topology is at virtual tick 0, ready to run or capture. *)
let create (specs : node_spec list) ?(capacity = 8) ?(faults = Link.no_faults) ~seed () =
  let link = Link.create ~nodes:(List.length specs) ~capacity ~faults ~seed () in
  let nodes = Array.of_list (List.mapi (fun id s -> make_node ~link ~id s) specs) in
  let t = { link; nodes; vclock = 0; panic = None } in
  Array.iter
    (fun n ->
      load_apps n;
      fresh_agents t n)
    nodes;
  t

let alive (t : t) id = Link.alive t.link id

(** Power-cut a node for [outage] global ticks: its RAM and queues die,
    its flash survives, peers see it dead ({!Radio} watch upcalls fire
    with [peer_died], sends to it are refused). *)
let cut (t : t) id ~outage =
  let n = t.nodes.(id) in
  if n.nd_outage = 0 then begin
    n.nd_outage <- max 1 outage;
    n.nd_lost_console <- n.nd_lost_console ^ incarnation_transcript n;
    Link.set_dead t.link id true;
    Obs.Metrics.host_incr "fabric/power_cuts"
  end

(* The reboot path: pristine image + surviving flash + fsck + boot load.
   This is the same sequence a real board walks after power returns, and
   the only way OTA activations take effect. *)
let reboot (t : t) (n : node) ~reseed =
  let mem = n.nd_target.Snapshot.tg_mem in
  let flash_base = Range.start Layout.app_flash in
  let flash = Memory.read_bytes mem flash_base (Range.size Layout.app_flash) in
  Snapshot.restore n.nd_target n.nd_pristine;
  Memory.blit_string mem flash_base flash;
  n.nd_last_fsck <- n.nd_spec.ns_fsck mem;
  let loaded =
    n.nd_k.Instance.boot_load ~registry:n.nd_spec.ns_registry ~require_credentials:true
  in
  ignore loaded;
  n.nd_k.Instance.reseed reseed;
  n.nd_reboots <- n.nd_reboots + 1;
  fresh_agents t n;
  Link.set_dead t.link n.nd_id false;
  Obs.Metrics.host_incr "fabric/reboots"

(** Ask for a planned reboot (OTA activation): modeled as a one-tick
    power cycle through the very same path as a real cut. *)
let request_reboot (t : t) id =
  let n = t.nodes.(id) in
  if n.nd_outage = 0 then begin
    n.nd_outage <- 1;
    n.nd_lost_console <- n.nd_lost_console ^ incarnation_transcript n;
    Link.set_dead t.link id true
  end

(** One global tick: step each live board one kernel tick (in node
    order), run its agents, then deliver the link. Dead boards count
    their outage down and walk the reboot path when it ends. *)
let step (t : t) ~reseed_of =
  Array.iter
    (fun n ->
      if n.nd_outage > 0 then begin
        n.nd_outage <- n.nd_outage - 1;
        if n.nd_outage = 0 then reboot t n ~reseed:(reseed_of n.nd_id)
      end
      else begin
        (try n.nd_k.Instance.run ~max_ticks:1
         with Tock_cortexm_mpu.Kernel_panic msg -> if t.panic = None then t.panic <- Some msg);
        List.iter (fun a -> a.ag_tick ~now:t.vclock) n.nd_agents
      end)
    t.nodes;
  Link.deliver t.link ~now:t.vclock;
  t.vclock <- t.vclock + 1

let run (t : t) ~ticks ~reseed_of =
  for _ = 1 to ticks do
    step t ~reseed_of
  done

(* --- whole-topology snapshot --- *)

type snapshot = {
  ts_boards : Snapshot.t array;
  ts_link : Link.state;
  ts_vclock : int;
}

(** Capture the whole topology. Host agents are not captured — they are
    rebuilt fresh from their factories on restore, so capture at points
    where agents hold no in-flight state (topology build time, the
    campaign fork point) is exact. *)
let capture (t : t) =
  {
    ts_boards = Array.map (fun n -> Snapshot.capture n.nd_target) t.nodes;
    ts_link = Link.capture t.link;
    ts_vclock = t.vclock;
  }

let restore (t : t) s =
  Array.iteri (fun i n -> Snapshot.restore n.nd_target s.ts_boards.(i)) t.nodes;
  Link.restore t.link s.ts_link;
  t.vclock <- s.ts_vclock;
  t.panic <- None;
  Array.iter
    (fun n ->
      n.nd_outage <- 0;
      n.nd_last_fsck <- "clean";
      n.nd_reboots <- 0;
      n.nd_lost_console <- "";
      fresh_agents t n)
    t.nodes

let fingerprint (t : t) =
  let h =
    Array.fold_left
      (fun h n -> Fp.int64 h (Snapshot.fingerprint n.nd_target))
      (Fp.int Fp.seed t.vclock) t.nodes
  in
  Fp.int64 h (Link.fingerprint t.link)

(* --- the replayable session view --- *)

(** [replayable ?node ~name ~reseed_of t] is the whole topology as one
    {!Ticktock.Replayable} session: a step is one {e global} tick (every
    live board one kernel tick, agents, link delivery), capture/restore
    and the fingerprint are whole-topology, and the register/memory/MPU
    inspectors look at node [node] (default 0). This is what lets the
    replay navigator time-travel a multi-board failure cell exactly like
    a single board. *)
let replayable ?(node = 0) ~name ~reseed_of (t : t) : Replayable.t =
  let n = t.nodes.(node) in
  let crash = ref None in
  let sync_panic () =
    match (!crash, t.panic) with
    | None, Some msg ->
      crash := Some { Replayable.cr_tick = t.vclock; cr_reason = "panic: " ^ msg }
    | _ -> ()
  in
  sync_panic ();
  {
    Replayable.rp_kind = "fabric";
    rp_name = name;
    rp_arch = n.nd_target.Snapshot.tg_arch;
    rp_tick = (fun () -> t.vclock);
    rp_step =
      (fun ~ticks ->
        if !crash = None then begin
          (try
             for _ = 1 to ticks do
               step t ~reseed_of
             done
           with Verify.Violation.Violation v ->
             crash :=
               Some
                 {
                   Replayable.cr_tick = t.vclock;
                   cr_reason = "violation: " ^ v.Verify.Violation.site;
                 });
          sync_panic ()
        end);
    rp_crash = (fun () -> !crash);
    rp_capture =
      (fun () ->
        let s = capture t in
        let crash_at = !crash in
        fun () ->
          restore t s;
          crash := crash_at);
    rp_fingerprint = (fun () -> fingerprint t);
    rp_reseed = (fun _ -> ());
    rp_regs = (fun () -> n.nd_k.Instance.regs ());
    rp_mem_read =
      (fun ~addr ~len -> n.nd_k.Instance.mem_read ~addr:(Word32.of_int addr) ~len);
    rp_mpu = (fun () -> n.nd_k.Instance.mpu_describe ());
    rp_events = (fun () -> n.nd_k.Instance.obs ());
  }
