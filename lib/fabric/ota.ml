(** Over-the-air process updates across the fabric.

    A TBF image is serialized to its exact flash byte layout, chunked, and
    streamed over the link (port 1) by a sender agent on the updater
    board; a receiver agent on the target board writes chunks — by
    explicit offset, so duplicates and reorderings are idempotent —
    straight into a {e staging flash slot}. Flash is the only thing that
    survives power loss, so the protocol's atomicity story is entirely a
    flash-state story:

    - the {e commit point} is the last chunk landing: only then can the
      staged image's credentials verify;
    - commit = erase the old image's home slot, copy the staged image
      into it, erase staging, then a planned reboot activates it through
      the normal boot-loading walk;
    - power cut {e before} the commit point leaves torn staging that
      {!fsck} (the modeled bootloader step, run on every reboot) erases:
      rollback, the old image still boots;
    - power cut {e inside} the commit sequence leaves a verified staged
      image: {!fsck} rolls the commit forward. Either way the board never
      boots a half-written image — completes atomically or rolls back.

    Transport is go-back-N: cumulative acks, sender rewind on stall, and
    a receiver-side reset request ("R") that restarts announcement after
    the receiver's board lost its session state to a power cut.

    All flash images used by fabric workloads are padded to one fixed
    {!slot_size}, giving flash a slot-array shape that [fsck] can scan
    without any RAM-held bookkeeping. *)

open Ticktock

let slot_size = 2048
let port = 1

let slot_base i = Range.start Layout.app_flash + (i * slot_size)

(** Pad a payload so its image occupies exactly one flash slot (for any
    app name up to 32 bytes). The tag prefix keeps versions
    distinguishable byte-wise. *)
let slotted_payload tag =
  let pad = 1700 - String.length tag in
  if pad < 0 then invalid_arg "Ota.slotted_payload: tag too long";
  tag ^ String.make pad '.'

(** Serialize an image to its exact flash byte layout (what
    {!Ticktock.Loader.write_image} would write): 6-word header, name,
    payload, credentials footer. *)
let image_blob (img : Loader.image) =
  let b = Buffer.create (Loader.image_bytes img) in
  let u32 v =
    Buffer.add_char b (Char.chr (v land 0xff));
    Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
    Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
    Buffer.add_char b (Char.chr ((v lsr 24) land 0xff))
  in
  u32 Loader.magic;
  u32 2;
  u32 (Loader.image_bytes img);
  u32 img.Loader.min_ram;
  u32 (String.length img.Loader.app_name);
  u32 (String.length img.Loader.payload);
  Buffer.add_string b img.Loader.app_name;
  Buffer.add_string b img.Loader.payload;
  u32 (Loader.checksum img);
  Buffer.contents b

(* --- deterministic per-cell OTA bookkeeping (survives reboots: the
   record outlives agent incarnations) --- *)

type stats = {
  mutable ot_attempts : int;  (** sessions started at the receiver *)
  mutable ot_commits : int;  (** commits completed (incl. fsck roll-forward) *)
  mutable ot_rollbacks : int;  (** torn stagings erased *)
  mutable ot_rejected : int;  (** announcements/images refused up front *)
  mutable ot_last_reject : string;  (** typed reason of the last refusal *)
}

let stats () =
  { ot_attempts = 0; ot_commits = 0; ot_rollbacks = 0; ot_rejected = 0; ot_last_reject = "" }

(** Zero a stats record in place — campaign cells fork one topology (and
    the closures holding its stats record) per worker, so each cell
    starts by resetting it. *)
let reset s =
  s.ot_attempts <- 0;
  s.ot_commits <- 0;
  s.ot_rollbacks <- 0;
  s.ot_rejected <- 0;
  s.ot_last_reject <- ""

(* --- wire encoding (port-1 payloads) --- *)

let u32 v =
  let c i = Char.chr ((v lsr (8 * i)) land 0xff) in
  Printf.sprintf "%c%c%c%c" (c 0) (c 1) (c 2) (c 3)

let read_u32 s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let announce ~total ~name = "A" ^ u32 total ^ name
let data ~off bytes = "D" ^ u32 off ^ bytes
let ack n = "K" ^ u32 n
let reset_req = "R"

(* --- flash slot scanning (shared by fsck and the receiver) --- *)

type slot = Valid of Loader.image | Torn | Empty

let scan_slot mem i =
  let base = slot_base i in
  match Loader.read_image mem ~base with
  | Ok img when Loader.verify_credentials mem ~base -> Valid img
  | Ok _ | Error _ ->
    let bytes = Memory.read_bytes mem base slot_size in
    if String.exists (fun c -> c <> '\000') bytes then Torn else Empty

let erase_slot mem i =
  let base = slot_base i in
  for w = 0 to (slot_size / 4) - 1 do
    Memory.write32 mem (base + (4 * w)) 0
  done

let copy_slot mem ~src ~dst =
  let bytes = Memory.read_bytes mem (slot_base src) slot_size in
  Memory.blit_string mem (slot_base dst) bytes

(** The bootloader fsck, run on every reboot before boot loading: erase
    torn staging (rollback), finish interrupted commits (roll-forward).
    [home] is the managed app's home slot, [staging] its staging slot.
    Returns "completed" | "rolled-back" | "clean". *)
let fsck ~(stats : stats) ~home ~staging mem =
  match (scan_slot mem home, scan_slot mem staging) with
  | _, Empty -> "clean"
  | _, Torn ->
    (* transfer torn by the power cut: roll back to the home image *)
    erase_slot mem staging;
    stats.ot_rollbacks <- stats.ot_rollbacks + 1;
    Obs.Metrics.host_incr "fabric/ota_rollbacks";
    "rolled-back"
  | Valid old_img, Valid staged when String.equal (image_blob old_img) (image_blob staged) ->
    (* cut between copy-to-home and erase-staging: just finish the erase *)
    erase_slot mem staging;
    stats.ot_commits <- stats.ot_commits + 1;
    Obs.Metrics.host_incr "fabric/ota_commits";
    "completed"
  | Valid _, Valid _ ->
    (* staged image verified but the old one not yet replaced: the commit
       point was reached, so roll the commit forward *)
    erase_slot mem home;
    copy_slot mem ~src:staging ~dst:home;
    erase_slot mem staging;
    stats.ot_commits <- stats.ot_commits + 1;
    Obs.Metrics.host_incr "fabric/ota_commits";
    "completed"
  | (Empty | Torn), Valid _ ->
    (* cut between erase-home and copy: finish the move *)
    erase_slot mem home;
    copy_slot mem ~src:staging ~dst:home;
    erase_slot mem staging;
    stats.ot_commits <- stats.ot_commits + 1;
    Obs.Metrics.host_incr "fabric/ota_commits";
    "completed"

(* --- the sender agent (updater daemon on the gateway board) --- *)

let sender ~dst ~(img : Loader.image) ?(chunk = 128) ?(window = 4) ?(stall_after = 8) () =
  let blob = image_blob img in
  let total = String.length blob in
  let nchunks = (total + chunk - 1) / chunk in
  fun (tp : Topology.t) node ->
    let link = tp.Topology.link in
    let base = ref 0 (* cumulative acked chunks *) in
    let next = ref 0 in
    let announced = ref false in
    let stall = ref 0 in
    let done_ = ref false in
    let tick ~now:_ =
      (* drain acks / reset requests *)
      let rec drain () =
        match Link.pop link ~dst:node ~port with
        | None -> ()
        | Some f ->
          let p = f.Link.fr_payload in
          (if String.length p >= 5 && p.[0] = 'K' then begin
             let n = read_u32 p 1 in
             if n > !base then begin
               base := n;
               if !next < n then next := n;
               stall := 0
             end;
             if n >= nchunks then done_ := true
           end
           else if String.length p >= 1 && p.[0] = 'R' then begin
             base := 0;
             next := 0;
             announced := false;
             stall := 0
           end);
          drain ()
      in
      drain ();
      if not !done_ then begin
        if not !announced then begin
          match Link.send link ~src:node ~dst ~port (announce ~total ~name:img.Loader.app_name) with
          | `Ok ->
            announced := true;
            Obs.Metrics.host_incr "fabric/ota_announces"
          | `Busy | `Peer_dead -> ()
        end
        else if !next < nchunks && !next < !base + window then begin
          let off = !next * chunk in
          let len = min chunk (total - off) in
          match Link.send link ~src:node ~dst ~port (data ~off (String.sub blob off len)) with
          | `Ok -> incr next
          | `Busy | `Peer_dead -> ()
        end
        else begin
          (* window full or everything sent: wait for acks, rewind on stall
             (go-back-N; a receiver that lost its session will also ask for
             a reset explicitly) *)
          incr stall;
          if !stall > stall_after then begin
            next := !base;
            stall := 0;
            if !base = 0 then announced := false
          end
        end
      end
    in
    { Topology.ag_name = "ota-sender"; ag_tick = tick }

(* --- the receiver agent (flash daemon on the target board) --- *)

type session = { ss_total : int; ss_name : string; ss_nchunks : int; ss_got : bool array }

let receiver ~home ~staging ~(stats : stats) ?(chunk = 128) () =
  fun (tp : Topology.t) node ->
    let link = tp.Topology.link in
    let mem = tp.Topology.nodes.(node).Topology.nd_target.Snapshot.tg_mem in
    let request_reboot () = Topology.request_reboot tp node in
    let session = ref None in
    (* commit done, activation reboot still owed: wait for the link to
       stay quiescent toward us for two consecutive ticks — one to see no
       traffic pending or in flight, one more so apps get a full kernel
       tick to finish digesting whatever they popped last (a frame already
       pulled into process RAM dies with the power cycle too). Bounded by
       [patience]: hostile neighbors that never stop transmitting can't
       starve the activation forever, they just pay detected frame
       drops. *)
    let activation_owed = ref false in
    let calm = ref 0 in
    let patience = ref 0 in
    let contiguous got =
      let n = Array.length got in
      let rec go i = if i < n && got.(i) then go (i + 1) else i in
      go 0
    in
    let installed name =
      match scan_slot mem home with
      | Valid img -> img.Loader.app_name = name
      | Torn | Empty -> false
    in
    (* The commit sequence — erase home, copy staging into it, erase
       staging — runs one flash operation per tick, like a real flash
       driver would: a power cut can land between any two steps. Every
       intermediate flash state is one {!fsck} repairs (the staged image
       is already verified, so fsck rolls the commit forward); the commit
       is counted when its last step lands, or by the fsck that finishes
       it. 0 = idle, 1..3 = next step. *)
    let commit_stage = ref 0 in
    let commit_step () =
      match !commit_stage with
      | 1 ->
        erase_slot mem home;
        commit_stage := 2
      | 2 ->
        copy_slot mem ~src:staging ~dst:home;
        commit_stage := 3
      | 3 ->
        erase_slot mem staging;
        commit_stage := 0;
        stats.ot_commits <- stats.ot_commits + 1;
        Obs.Metrics.host_incr "fabric/ota_commits";
        activation_owed := true;
        calm := 0;
        patience := 30
      | _ -> ()
    in
    let reject reason =
      stats.ot_rejected <- stats.ot_rejected + 1;
      stats.ot_last_reject <- reason;
      Obs.Metrics.host_incr "fabric/ota_rejected";
      session := None
    in
    let tick ~now:_ =
      let rec drain () =
        match Link.pop link ~dst:node ~port with
        | None -> ()
        | Some f ->
          let p = f.Link.fr_payload in
          (if !commit_stage > 0 then
             (* mid-commit: the flash daemon is busy; frames are ignored
                (the sender's go-back-N re-covers anything that mattered) *)
             ()
           else if String.length p >= 5 && p.[0] = 'A' then begin
             let total = read_u32 p 1 in
             let name = String.sub p 5 (String.length p - 5) in
             if installed name then
               (* already active (e.g. the updater rebooted after commit):
                  ack everything so the sender completes *)
               ignore (Link.send link ~src:node ~dst:f.Link.fr_src ~port (ack max_int))
             else if total > slot_size || total < 4 * (Loader.header_words + 1) then
               (* typed up-front refusal: this layout can never fit the
                  staging slot ([Kerror.Image_oversized] territory) *)
               reject (Kerror.to_string Kerror.Image_oversized)
             else begin
               (match !session with
               | Some s when s.ss_total = total && s.ss_name = name -> ()
               | _ ->
                 erase_slot mem staging;
                 session :=
                   Some
                     {
                       ss_total = total;
                       ss_name = name;
                       ss_nchunks = (total + chunk - 1) / chunk;
                       ss_got = Array.make ((total + chunk - 1) / chunk) false;
                     };
                 stats.ot_attempts <- stats.ot_attempts + 1;
                 Obs.Metrics.host_incr "fabric/ota_attempts")
             end
           end
           else if String.length p >= 5 && p.[0] = 'D' then begin
             match !session with
             | None ->
               (* no session (this incarnation never saw the announce —
                  e.g. we just rebooted out of a power cut): ask the
                  sender to start over *)
               ignore (Link.send link ~src:node ~dst:f.Link.fr_src ~port reset_req)
             | Some s ->
               let off = read_u32 p 1 in
               let bytes = String.sub p 5 (String.length p - 5) in
               let len = String.length bytes in
               if off >= 0 && off + len <= s.ss_total && off mod chunk = 0 then begin
                 let idx = off / chunk in
                 let expected = min chunk (s.ss_total - off) in
                 if len = expected && idx < s.ss_nchunks then begin
                   (* flash write happens now, at arrival order: a power
                      cut at any tick tears the staging image exactly
                      where the stream stood *)
                   Memory.blit_string mem (slot_base staging + off) bytes;
                   s.ss_got.(idx) <- true;
                   let c = contiguous s.ss_got in
                   ignore (Link.send link ~src:node ~dst:f.Link.fr_src ~port (ack c));
                   if c = s.ss_nchunks then begin
                     match Loader.read_image mem ~base:(slot_base staging) with
                     | Ok img
                       when Loader.verify_credentials mem ~base:(slot_base staging)
                            && Loader.fits img
                            && Loader.padded_size img <= slot_size ->
                       (* verified: start the staged commit sequence *)
                       session := None;
                       commit_stage := 1
                     | Ok img when not (Loader.fits img && Loader.padded_size img <= slot_size)
                       ->
                       erase_slot mem staging;
                       stats.ot_rollbacks <- stats.ot_rollbacks + 1;
                       Obs.Metrics.host_incr "fabric/ota_rollbacks";
                       reject (Kerror.to_string Kerror.Image_oversized)
                     | Ok _ | Error _ ->
                       (* header/credentials bad end-to-end: roll back *)
                       erase_slot mem staging;
                       stats.ot_rollbacks <- stats.ot_rollbacks + 1;
                       Obs.Metrics.host_incr "fabric/ota_rollbacks";
                       reject "invalid credentials"
                   end
                 end
               end
           end);
          drain ()
      in
      drain ();
      commit_step ();
      if !activation_owed then begin
        decr patience;
        if Link.quiescent link ~dst:node then incr calm else calm := 0;
        if !calm >= 2 || !patience <= 0 then begin
          activation_owed := false;
          request_reboot ()
        end
      end
    in
    { Topology.ag_name = "ota-receiver"; ag_tick = tick }
