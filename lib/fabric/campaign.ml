(** The fabric campaign: every plan × every cut point, on the shared pool.

    The cell lattice is {!Powerloss.plans} × cut ticks [1..cuts]: each
    cell forks the per-worker deployment back to its fork point and runs
    one classified power-loss experiment ({!Powerloss.run_cell}). Cells
    are pure functions of their index, so the report is byte-identical
    across [TICKTOCK_JOBS] settings and kill/resume splits — the same
    contract as the fleet, chaos, and fuzzcov campaigns, on the same
    {!Pool} and {!Fleet.Store} machinery.

    The report leads with the {e golden} run (clean link, no cut): the
    classifier's baseline, and a self-check that the deployment itself
    delivers everything and commits the OTA when nothing goes wrong. The
    verdict line the CI gates on is the silent-corruption count summed
    over every injected cell: the link's shadow-payload oracle must have
    caught zero CRC-passing corrupted frames anywhere in the lattice. *)

open Ticktock

type spec = {
  fb_plans : string list;  (** {!Powerloss.plans} names, in report order *)
  fb_cuts : int;  (** cut ticks swept per plan: 1..fb_cuts *)
  fb_horizon : int;  (** global ticks per cell (plus outage drain) *)
  fb_outage : int;  (** power outage length per cut *)
  fb_seed : int;
}

let default_spec =
  { fb_plans = [ "clean"; "lossy"; "storm"; "chaos" ]; fb_cuts = 36; fb_horizon = 64;
    fb_outage = 2; fb_seed = 42 }

let no_spaces what s =
  if String.contains s ' ' || String.contains s '\n' then
    invalid_arg (Printf.sprintf "Fabric: %s %S must not contain whitespace" what s)

(** The canonical spec key — written to the store and refused on mismatch
    at resume, because records from a different lattice must not merge. *)
let spec_key s =
  List.iter (no_spaces "plan name") s.fb_plans;
  List.iter (fun p -> ignore (Powerloss.plan_named p)) s.fb_plans;
  if s.fb_cuts < 1 then invalid_arg "Fabric: a spec needs at least one cut point";
  if s.fb_horizon <= s.fb_cuts then
    invalid_arg "Fabric: the horizon must reach past the last cut point";
  Printf.sprintf "fabric-v1 plans=%s cuts=%d horizon=%d outage=%d seed=%d"
    (String.concat "," s.fb_plans)
    s.fb_cuts s.fb_horizon s.fb_outage s.fb_seed

(** One completed cell — exactly what the store serializes. *)
type cell = {
  fc_index : int;
  fc_plan : string;
  fc_cut : int;
  fc_board : int;  (** the board that lost power *)
  fc_class : string;  (** "completed" | "rolled-back" | "recovered" *)
  fc_fsck : string;
  fc_ok : bool;
  fc_why : string;  (** "" when ok; spaces encoded as [_] in the store *)
  fc_silent : int;
  fc_commits : int;
  fc_rollbacks : int;
  fc_readings : int;
  fc_fp : int64;
}

let mangle s =
  if s = "" then "-" else String.map (fun c -> if c = ' ' then '_' else c) s

let demangle s = if s = "-" then "" else String.map (fun c -> if c = '_' then ' ' else c) s

(* Stable one-line record encoding, hand-rolled like every store's so a
   store written by one build reads back under another. *)
let encode_cell c =
  Printf.sprintf "%d %s %d %d %s %s %b %s %d %d %d %d %Ld" c.fc_index c.fc_plan c.fc_cut
    c.fc_board c.fc_class c.fc_fsck c.fc_ok (mangle c.fc_why) c.fc_silent c.fc_commits
    c.fc_rollbacks c.fc_readings c.fc_fp

let decode_cell s =
  try
    Scanf.sscanf s "%d %s %d %d %s %s %B %s %d %d %d %d %Ld"
      (fun fc_index fc_plan fc_cut fc_board fc_class fc_fsck fc_ok why fc_silent fc_commits
           fc_rollbacks fc_readings fc_fp ->
        Some
          {
            fc_index;
            fc_plan;
            fc_cut;
            fc_board;
            fc_class;
            fc_fsck;
            fc_ok;
            fc_why = demangle why;
            fc_silent;
            fc_commits;
            fc_rollbacks;
            fc_readings;
            fc_fp;
          })
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

(* --- the cell lattice --- *)

let cell_count s = List.length s.fb_plans * s.fb_cuts

let cell_coords s =
  let plans = Array.of_list s.fb_plans in
  fun i -> (plans.(i / s.fb_cuts), 1 + (i mod s.fb_cuts))

(* --- the deterministic report --- *)

let render spec (golden : Deploy.outcome) (gstats : Ota.stats) (cells : cell array) =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "# ticktock fabric campaign\n";
  pf "# %s\n\n" (spec_key spec);
  let greadings =
    List.fold_left
      (fun a (_, got) ->
        a + List.length (List.sort_uniq compare got))
      0 golden.Deploy.oc_got
  in
  let gfull = 2 * List.length Deploy.readings in
  pf "golden: readings %d/%d  ota %s  isolation %s  silent %d\n\n" greadings gfull
    (if gstats.Ota.ot_commits > 0 then "committed" else "NOT-COMMITTED")
    (if golden.Deploy.oc_isolation_ok then "ok" else "VIOLATED")
    golden.Deploy.oc_silent;
  let sum f sel = Array.fold_left (fun a c -> if sel c then a + f c else a) 0 cells in
  let count p sel = sum (fun c -> if p c then 1 else 0) sel in
  pf "%-8s %6s %10s %12s %10s %6s %7s %8s %10s\n" "plan" "cuts" "completed" "rolled-back"
    "recovered" "ok" "silent" "commits" "rollbacks";
  List.iter
    (fun pl ->
      let sel c = c.fc_plan = pl in
      pf "%-8s %6d %10d %12d %10d %6d %7d %8d %10d\n" pl
        (count (fun _ -> true) sel)
        (count (fun c -> c.fc_class = "completed") sel)
        (count (fun c -> c.fc_class = "rolled-back") sel)
        (count (fun c -> c.fc_class = "recovered") sel)
        (count (fun c -> c.fc_ok) sel)
        (sum (fun c -> c.fc_silent) sel)
        (sum (fun c -> c.fc_commits) sel)
        (sum (fun c -> c.fc_rollbacks) sel))
    spec.fb_plans;
  let all _ = true in
  let total = Array.length cells in
  let classified =
    count (fun c -> List.mem c.fc_class [ "completed"; "rolled-back"; "recovered" ]) all
  in
  let ok = count (fun c -> c.fc_ok) all in
  let silent = sum (fun c -> c.fc_silent) all in
  pf "\n== totals ==\n";
  pf "cut points %d  classified %d  containment ok %d\n" total classified ok;
  (let failures = Array.to_list cells |> List.filter (fun c -> not c.fc_ok) in
   List.iter
     (fun c -> pf "FAILED %s cut=%d board=%d: %s\n" c.fc_plan c.fc_cut c.fc_board c.fc_why)
     failures);
  pf "silent cross-board corruption: %d%s\n" silent
    (if silent = 0 then " (zero — every corrupted frame was caught)" else " (VIOLATION)");
  let golden_ok =
    greadings = gfull && gstats.Ota.ot_commits > 0 && golden.Deploy.oc_isolation_ok
    && golden.Deploy.oc_silent = 0
  in
  pf "campaign: %s\n"
    (if classified = total && ok = total && silent = 0 && golden_ok then "ok" else "FAILED");
  Buffer.contents b

(* --- the campaign --- *)

type result = {
  fb_spec : spec;
  fb_cells : cell option array;  (** index-ordered; [None] = not run *)
  fb_complete : bool;
  fb_report : string;  (** deterministic; rendered only when complete *)
  fb_ok : bool;
  fb_ran : int;  (** cells executed by {e this} run *)
  fb_resumed : int;  (** cells recovered from the store *)
  fb_steals : int;
}

(** Run (or resume) the campaign. Same contract as the fleet campaign:
    [store] + [resume] make it resumable; [stop_after] is the
    deterministic kill for CI resumability checks; the report is rendered
    only when every cell is accounted for. *)
let run ?jobs ?(batch = 4) ?store ?(resume = false) ?stop_after (spec : spec) =
  let key = spec_key spec in
  let coords = cell_coords spec in
  let total = cell_count spec in
  let st, recovered =
    match store with
    | None -> (None, [])
    | Some path ->
      if resume then
        let t, recs = Fleet.Store.resume ~path ~spec:key in
        (Some t, recs)
      else (Some (Fleet.Store.create ~path ~spec:key), [])
  in
  let cells : cell option array = Array.make total None in
  List.iter
    (fun (r : Fleet.Store.record) ->
      if r.Fleet.Store.rc_index >= 0 && r.Fleet.Store.rc_index < total then
        match decode_cell r.Fleet.Store.rc_data with
        | Some c when c.fc_index = r.Fleet.Store.rc_index -> cells.(r.Fleet.Store.rc_index) <- Some c
        | _ -> ())
    recovered;
  let resumed = Array.fold_left (fun a -> function Some _ -> a + 1 | None -> a) 0 cells in
  if resumed > 0 then Obs.Metrics.host_incr ~by:resumed "fabric/resume_cells";
  let ran = Atomic.make 0 in
  let stop () = match stop_after with Some n -> Atomic.get ran >= n | None -> false in
  (* per-worker state: one deployment environment per plan, built on first
     use on that worker's own domain and forked for every later cell *)
  let init _w : (string, Powerloss.env) Hashtbl.t = Hashtbl.create 4 in
  let cell envs i =
    let plan_name, cut = coords i in
    let env =
      match Hashtbl.find_opt envs plan_name with
      | Some env -> env
      | None ->
        let env =
          Powerloss.make_env ~plan:(Powerloss.plan_named plan_name) ~seed:spec.fb_seed ()
        in
        Obs.Metrics.host_incr "fabric/topologies_booted";
        Hashtbl.add envs plan_name env;
        env
    in
    let c =
      Powerloss.run_cell env ~sweep_seed:spec.fb_seed ~cut ~outage:spec.fb_outage
        ~horizon:spec.fb_horizon
    in
    Obs.Metrics.host_incr "fabric/cells_run";
    Obs.Metrics.host_incr "fabric/topologies_forked";
    Atomic.incr ran;
    {
      fc_index = i;
      fc_plan = c.Powerloss.pc_plan;
      fc_cut = c.Powerloss.pc_cut;
      fc_board = c.Powerloss.pc_board;
      fc_class = c.Powerloss.pc_class;
      fc_fsck = c.Powerloss.pc_fsck;
      fc_ok = c.Powerloss.pc_ok;
      fc_why = c.Powerloss.pc_why;
      fc_silent = c.Powerloss.pc_silent;
      fc_commits = c.Powerloss.pc_commits;
      fc_rollbacks = c.Powerloss.pc_rollbacks;
      fc_readings = c.Powerloss.pc_readings;
      fc_fp = c.Powerloss.pc_fp;
    }
  in
  let commit i (c : cell) =
    match st with
    | None -> ()
    | Some t -> Fleet.Store.append t ~index:i ~data:(encode_cell c)
  in
  let results, pstats =
    Pool.run ?jobs ~batch ~cells:total
      ~skip:(fun i -> cells.(i) <> None || stop ())
      ~commit ~init ~cell ()
  in
  Array.iteri (fun i r -> match r with Some c -> cells.(i) <- Some c | None -> ()) results;
  (match st with Some t -> Fleet.Store.close t | None -> ());
  if pstats.Pool.ps_steals > 0 then
    Obs.Metrics.host_incr ~by:pstats.Pool.ps_steals "fabric/steals";
  let complete = Array.for_all Option.is_some cells in
  let report =
    if complete then begin
      let golden, gstats = Powerloss.golden ~seed:spec.fb_seed ~horizon:spec.fb_horizon in
      render spec golden gstats (Array.map (function Some c -> c | None -> assert false) cells)
    end
    else ""
  in
  let ok =
    complete
    && Array.for_all (function Some c -> c.fc_ok && c.fc_silent = 0 | None -> false) cells
    && String.length report > 0
    &&
    (* the verdict line is the single source of truth *)
    let rec contains i =
      i + 12 <= String.length report && (String.sub report i 12 = "campaign: ok" || contains (i + 1))
    in
    contains 0
  in
  {
    fb_spec = spec;
    fb_cells = cells;
    fb_complete = complete;
    fb_report = report;
    fb_ok = ok;
    fb_ran = Atomic.get ran;
    fb_resumed = resumed;
    fb_steals = pstats.Pool.ps_steals;
  }
