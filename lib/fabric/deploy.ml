(** The reference fabric deployment: gateway → followers, with OTA.

    Three boards on one link:

    - node 0 {e gateway} (ticktock-arm): runs [gw], which fans a fixed set
      of sensor readings out to both followers over the radio (driver 12),
      riding the link's backpressure ([busy] → bounded retry) and printing
      a line when a peer dies instead of wedging. When OTA is on, the
      gateway also hosts the {!Ota.sender} agent streaming the [app-v2]
      image at the target.
    - node 1 {e target} (ticktock-arm-v8): runs [fol] (a follower) plus
      the OTA-managed heartbeat app [app-v1]; hosts the {!Ota.receiver}
      flash daemon and the OTA {!Ota.fsck} as its reboot fsck. Chaos plans
      add hostile fuzz apps next to them.
    - node 2 {e follower} (ticktock-e310): runs [fol] alone — the witness
      that cross-board faults aimed at node 1 stay contained.

    Everything a verification needs afterwards — which readings arrived,
    what image sits in the managed flash slot, whether every process kept
    its isolation invariants — is extracted by {!check} into a flat record
    the power-loss sweep and the campaign classify from. *)

open Ticktock
open Apps.App_dsl

let gateway = 0
let target = 1
let follower = 2
let node_count = 3

let rounds = 10
let drv = Radio.driver_num

(** The readings the gateway fans out — the ground truth that received
    readings are compared against (subset, in order). *)
let readings = List.init rounds (fun i -> Printf.sprintf "r%02d" i)

(* --- userland scripts --- *)

(* The gateway app: fan each reading to every follower, treating [busy]
   (backpressure) and [peer_died] (a peer mid-reboot) as transient —
   bounded retry with compute between attempts, which the quantum spreads
   across ticks. Only a peer that stays dead through the whole retry
   budget gets reported, and never wedges the gateway. *)
let gw_script () =
  let* base = memory_start in
  let send dst msg =
    let* () = write_string base msg in
    let* _ = allow_ro ~driver:drv ~addr:base ~len:(String.length msg) in
    let rec go tries last =
      if tries = 0 then return last
      else
        let* r = command ~driver:drv ~cmd:1 ~arg1:dst ~arg2:(String.length msg) () in
        if r = Radio.busy || r = Radio.peer_died then
          let* _ = compute 4 in
          go (tries - 1) r
        else return r
    in
    let* r = go 48 Radio.busy in
    if r = Radio.peer_died then printf "gw: peer %d died\r\n" dst
    else if r = Radio.busy then printf "gw: peer %d backpressured\r\n" dst
    else return ()
  in
  let rec fan = function
    | [] ->
      let* () = print "gw: done\r\n" in
      return 0
    | msg :: rest ->
      let* () = send target msg in
      let* () = send follower msg in
      let* _ = compute 8 in
      fan rest
  in
  fan readings

(* The follower app: subscribe to rx-ready, watch the gateway, drain the
   inbox on every wake. Exits when the full round set arrived or the
   gateway died; parks (harmlessly) when frames were lost. *)
let fol_script () =
  let* base = memory_start in
  let* _ = allow_rw ~driver:drv ~addr:base ~len:64 in
  let* _ = subscribe ~driver:drv ~upcall_id:1 in
  let* _ = command ~driver:drv ~cmd:5 ~arg1:gateway () in
  let rec drain got =
    let* n = command ~driver:drv ~cmd:3 () in
    if n = 0 || n = Userland.failure then return got
    else
      let* len = command ~driver:drv ~cmd:2 () in
      if len = Userland.failure || len = 0 then return got
      else
        let* msg = read_string base len in
        let* () = printf "got %s\r\n" msg in
        drain (got + 1)
  in
  let rec live got =
    if got >= rounds then
      let* () = print "fol: done\r\n" in
      return 0
    else
      let* ev = yield in
      if ev = Radio.peer_died then
        let* () = print "fol: gateway died\r\n" in
        return 1
      else
        let* got = drain got in
        live got
  in
  live 0

(* The OTA-managed heartbeat app, in two versions: the flashed-at-build
   [app-v1] and the [app-v2] the OTA stream replaces it with. Which one
   printed is the activation witness. *)
let heartbeat tag () =
  let rec beat i =
    if i = 0 then
      let* () = printf "%s: steady\r\n" tag in
      return 0
    else
      let* () = printf "%s alive\r\n" tag in
      let* _ = compute 16 in
      beat (i - 1)
  in
  beat 4

let v1_name = "app-v1"
let v2_name = "app-v2"
let app_min_ram = 3072

let v2_image =
  { Loader.app_name = v2_name; min_ram = app_min_ram; payload = Ota.slotted_payload "v2" }

(* --- node specs --- *)

let slotted_app name tag script =
  {
    Topology.ap_name = name;
    ap_payload = Ota.slotted_payload tag;
    ap_min_ram = app_min_ram;
    ap_factory = (fun () -> to_program (script ()));
  }

(** A hostile fuzz app for chaos plans: the seeded random syscall storm
    from the fuzzing harness, slot-padded like every fabric image. *)
let fuzz_app i ~seed =
  {
    Topology.ap_name = Printf.sprintf "fz%d" i;
    ap_payload = Ota.slotted_payload (Printf.sprintf "fz%d" i);
    ap_min_ram = app_min_ram;
    ap_factory = (fun () -> to_program (Apps.Fuzz.random_script ~seed ~steps:48));
  }

type spec = {
  sp_ota : bool;  (** stream app-v2 at the target *)
  sp_hostile : int;  (** hostile fuzz apps loaded next to the target's *)
  sp_seed : int;  (** seeds the hostile apps (the link has its own) *)
}

let default_spec = { sp_ota = true; sp_hostile = 0; sp_seed = 1 }

(** Build the three node specs. [stats] is the OTA bookkeeping record the
    receiver and fsck share; the caller owns it (and resets it per cell).
    The target's staging slot sits after all its loaded apps, its home
    slot is wherever [app-v1] lands in load order. *)
let specs ?(spec = default_spec) ~(stats : Ota.stats) () =
  let gw = slotted_app "gw" "gw" gw_script in
  let fol = slotted_app "fol" "fol" fol_script in
  let v1 = slotted_app v1_name "v1" (heartbeat v1_name) in
  let hostile = List.init spec.sp_hostile (fun i -> fuzz_app i ~seed:(spec.sp_seed + (31 * i))) in
  let target_apps = (fol :: v1 :: hostile : Topology.app list) in
  let home = 1 (* app-v1's slot in load order *) in
  let staging = List.length target_apps in
  let registry apps name =
    if name = v2_name then Some (to_program (heartbeat v2_name ()))
    else
      List.find_map
        (fun (a : Topology.app) -> if a.Topology.ap_name = name then Some (a.ap_factory ()) else None)
        apps
  in
  let gateway_spec =
    {
      Topology.ns_name = "gateway";
      ns_board = "ticktock-arm";
      ns_apps = [ gw ];
      ns_registry = registry [ gw ];
      ns_agents = (if spec.sp_ota then [ Ota.sender ~dst:target ~img:v2_image () ] else []);
      ns_fsck = (fun _ -> "clean");
    }
  in
  let target_spec =
    {
      Topology.ns_name = "target";
      ns_board = "ticktock-arm-v8";
      ns_apps = target_apps;
      ns_registry = registry target_apps;
      ns_agents = (if spec.sp_ota then [ Ota.receiver ~home ~staging ~stats () ] else []);
      ns_fsck = Ota.fsck ~stats ~home ~staging;
    }
  in
  let follower_spec =
    {
      Topology.ns_name = "follower";
      ns_board = "ticktock-e310";
      ns_apps = [ fol ];
      ns_registry = registry [ fol ];
      ns_agents = [];
      ns_fsck = (fun _ -> "clean");
    }
  in
  [ gateway_spec; target_spec; follower_spec ]

(** Build the deployment topology outright (tests and the CLI demo; the
    campaign goes through {!specs} so it can fork). *)
let create ?(spec = default_spec) ?(faults = Link.no_faults) ~seed () =
  let stats = Ota.stats () in
  let topo = Topology.create (specs ~spec ~stats ()) ~faults ~seed () in
  (topo, stats)

(* --- end-state extraction --- *)

(** What one finished run looks like, flattened for classification. *)
type outcome = {
  oc_panic : string option;
  oc_isolation_ok : bool;  (** every process on every board, all invariants *)
  oc_silent : int;  (** link-level silent corruptions — must be 0 *)
  oc_got : (int * string list) list;  (** per follower node: readings received, in order *)
  oc_spurious : bool;  (** a follower printed a reading the gateway never sent *)
  oc_home_app : string;  (** image name in the target's managed home slot *)
  oc_home_intact : bool;  (** home slot holds a byte-exact v1 or v2 image *)
  oc_staging_empty : bool;  (** no torn bytes left staged after fsck *)
  oc_fsck : string;  (** target's latest reboot fsck label *)
  oc_reboots : int;  (** target reboots (planned activation counts) *)
  oc_consoles : string array;  (** full per-node console, lost incarnations included *)
}

let got_of_console console =
  List.filter_map
    (fun line ->
      if String.length line > 4 && String.sub line 0 4 = "got " then
        Some (String.sub line 4 (String.length line - 4))
      else None)
    (String.split_on_char '\n' (String.concat "" (String.split_on_char '\r' console)))

let node_console = Topology.transcript

let isolation_ok (n : Topology.node) =
  List.for_all (fun (pid, _) -> n.Topology.nd_k.Instance.proc_isolation_ok pid)
    (n.Topology.nd_k.Instance.procs ())

(** Extract the outcome of a finished run. [stats] is consulted by
    callers separately; this record is pure board/link end-state. *)
let check (topo : Topology.t) =
  let tn = topo.Topology.nodes.(target) in
  let mem = tn.Topology.nd_target.Snapshot.tg_mem in
  let home = 1 in
  let staging =
    List.length tn.Topology.nd_spec.Topology.ns_apps
  in
  let home_app, home_intact =
    match Ota.scan_slot mem home with
    | Ota.Valid img ->
      let intact =
        (img.Loader.app_name = v1_name
        && String.equal img.Loader.payload (Ota.slotted_payload "v1"))
        || String.equal (Ota.image_blob img) (Ota.image_blob v2_image)
      in
      (img.Loader.app_name, intact)
    | Ota.Torn -> ("<torn>", false)
    | Ota.Empty -> ("<empty>", false)
  in
  let staging_empty =
    match Ota.scan_slot mem staging with Ota.Empty -> true | Ota.Valid _ | Ota.Torn -> false
  in
  let got =
    List.map
      (fun id -> (id, got_of_console (node_console topo.Topology.nodes.(id))))
      [ target; follower ]
  in
  let spurious =
    List.exists (fun (_, gs) -> List.exists (fun g -> not (List.mem g readings)) gs) got
  in
  {
    oc_panic = topo.Topology.panic;
    oc_isolation_ok = Array.for_all isolation_ok topo.Topology.nodes;
    oc_silent = (Link.stats topo.Topology.link).Link.st_silent;
    oc_got = got;
    oc_spurious = spurious;
    oc_home_app = home_app;
    oc_home_intact = home_intact;
    oc_staging_empty = staging_empty;
    oc_fsck = tn.Topology.nd_last_fsck;
    oc_reboots = tn.Topology.nd_reboots;
    oc_consoles = Array.map node_console topo.Topology.nodes;
  }
