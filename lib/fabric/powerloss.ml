(** Power-failure-at-every-tick sweeps over the fabric deployment.

    One sweep cell = one {e plan} (a link-fault/hostile-app recipe) × one
    {e cut tick}: restore the deployment from its fork point, arm the
    plan's link faults under a cell-derived seed, run to the cut tick,
    power-cut the board the tick selects ([tick mod 3] — every board gets
    swept), let the outage end and the reboot path (fsck + boot load) do
    its work, then run out the horizon and classify the end state.

    Classification is total — every cut point lands in exactly one OTA
    progress class:

    - ["completed"]: the v2 image owns the target's home slot byte-exact
      (the transfer and its commit survived, possibly finished by fsck
      rolling a half-done commit forward);
    - ["rolled-back"]: a torn staging image was erased by fsck and v1
      still owns the home slot byte-exact — the board never saw a
      half-written image;
    - ["recovered"]: the cut missed the transfer's critical window (or hit
      another board); the home slot is intact and the deployment simply
      carried on.

    Independent of the class, every cell must pass the {e containment}
    checks: no kernel panic on any board, per-process isolation invariants
    intact everywhere, zero silent cross-board corruption (the link's
    shadow-payload oracle), no spurious readings (nothing a follower
    printed that the gateway never sent), and the managed flash slot valid
    — torn state may only ever exist in staging, and only until the next
    fsck. *)

open Ticktock

(** A fault recipe: link faults (per-mille) plus hostile fuzz apps loaded
    next to the target's real apps. *)
type plan = { pl_name : string; pl_faults : Link.faults; pl_hostile : int }

let plans =
  [
    { pl_name = "clean"; pl_faults = Link.no_faults; pl_hostile = 0 };
    {
      pl_name = "lossy";
      pl_faults =
        {
          Link.fa_drop = 60;
          fa_corrupt = 40;
          fa_duplicate = 30;
          fa_reorder = 40;
          fa_partition = None;
        };
      pl_hostile = 0;
    };
    {
      pl_name = "storm";
      pl_faults =
        {
          Link.fa_drop = 30;
          fa_corrupt = 20;
          fa_duplicate = 0;
          fa_reorder = 0;
          fa_partition = Some (0, 1, 8, 20);
        };
      pl_hostile = 0;
    };
    {
      pl_name = "chaos";
      pl_faults =
        {
          Link.fa_drop = 50;
          fa_corrupt = 30;
          fa_duplicate = 20;
          fa_reorder = 30;
          fa_partition = None;
        };
      pl_hostile = 2;
    };
  ]

let plan_named name =
  match List.find_opt (fun p -> p.pl_name = name) plans with
  | Some p -> p
  | None ->
    invalid_arg
      (Printf.sprintf "Fabric: unknown plan %S (one of: %s)" name
         (String.concat ", " (List.map (fun p -> p.pl_name) plans)))

(* Cell-seed mixing: deterministic ints only (splitmix-style avalanche). *)
let mix a b =
  let x = (a * 0x9E3779B1) lxor (b * 0x85EBCA77) in
  let x = (x lxor (x lsr 15)) * 0x2C1B3C6D land 0x3FFF_FFFF_FFFF in
  (x lxor (x lsr 13)) land 0x3FFF_FFFF

(** One deployment held at its fork point, reusable across cells — the
    per-worker environment. Building a topology (three board boots) is the
    expensive part; forking it back to tick 0 is cheap. *)
type env = {
  ev_plan : plan;
  ev_topo : Topology.t;
  ev_stats : Ota.stats;
  ev_base : Topology.snapshot;
}

let make_env ~(plan : plan) ~seed () =
  let stats = Ota.stats () in
  let spec = { Deploy.sp_ota = true; sp_hostile = plan.pl_hostile; sp_seed = mix seed 17 } in
  let topo = Topology.create (Deploy.specs ~spec ~stats ()) ~seed:1 () in
  { ev_plan = plan; ev_topo = topo; ev_stats = stats; ev_base = Topology.capture topo }

(** What one classified cut point reports. *)
type cell = {
  pc_plan : string;
  pc_cut : int;  (** global tick the power failed at *)
  pc_board : int;  (** which board lost power ([cut mod 3]) *)
  pc_class : string;  (** "completed" | "rolled-back" | "recovered" *)
  pc_fsck : string;  (** the target's last fsck label *)
  pc_silent : int;  (** silent cross-board corruptions (must be 0) *)
  pc_ok : bool;  (** all containment checks passed *)
  pc_why : string;  (** first failed check, "" when ok *)
  pc_commits : int;
  pc_rollbacks : int;
  pc_readings : int;  (** distinct readings that reached followers (of 2×N) *)
  pc_fp : int64;  (** end-state fingerprint (campaign determinism oracle) *)
}

let distinct_readings got =
  List.length (List.sort_uniq compare (List.filter (fun g -> List.mem g Deploy.readings) got))

(* Containment: the checks every cell must pass no matter where the cut
   landed. Returns "" or the first violated check's name. Staging may
   hold bytes at the end of the observation window only while a transfer
   is still in flight (an announce accepted but neither committed nor
   rolled back — e.g. the retry stream after a mid-transfer cut); torn
   staging with no session open means fsck failed to reclaim it. *)
let containment_why (oc : Deploy.outcome) (stats : Ota.stats) =
  let session_open = stats.Ota.ot_attempts > stats.Ota.ot_commits + stats.Ota.ot_rollbacks in
  if oc.Deploy.oc_panic <> None then
    Printf.sprintf "kernel panic: %s" (Option.value ~default:"" oc.Deploy.oc_panic)
  else if not oc.Deploy.oc_isolation_ok then "isolation violated"
  else if oc.Deploy.oc_silent > 0 then "silent cross-board corruption"
  else if oc.Deploy.oc_spurious then "spurious reading"
  else if not oc.Deploy.oc_home_intact then "managed slot not intact"
  else if not (oc.Deploy.oc_staging_empty || session_open) then "staging not reclaimed"
  else ""

let classify (oc : Deploy.outcome) (stats : Ota.stats) =
  if oc.Deploy.oc_home_app = Deploy.v2_name && oc.Deploy.oc_home_intact then "completed"
  else if stats.Ota.ot_rollbacks > 0 then "rolled-back"
  else "recovered"

(** Run one cell: fork the environment back to tick 0, arm the plan's
    faults under the cell seed, cut [board (cut mod 3)] at tick [cut] for
    [outage] ticks, run the horizon out (extending past any outage still
    open so fsck always gets to run), classify. *)
let run_cell (env : env) ~sweep_seed ~cut ~outage ~horizon =
  let topo = env.ev_topo in
  let cell_seed = mix (mix sweep_seed cut) (Hashtbl.hash env.ev_plan.pl_name) in
  Topology.restore topo env.ev_base;
  Link.configure topo.Topology.link ~faults:env.ev_plan.pl_faults ~seed:cell_seed;
  Ota.reset env.ev_stats;
  let reseed_of id = mix cell_seed (id + 101) in
  Array.iter (fun (n : Topology.node) -> n.Topology.nd_k.Instance.reseed (reseed_of n.nd_id))
    topo.Topology.nodes;
  let board = cut mod Deploy.node_count in
  for t = 0 to horizon - 1 do
    if t = cut then Topology.cut topo board ~outage;
    Topology.step topo ~reseed_of
  done;
  (* power restored and settled: finish any open outage so every cell ends
     with fsck run and boards back up, then let the dust settle *)
  let extra = ref (outage + 3) in
  while
    !extra > 0
    || Array.exists (fun (n : Topology.node) -> n.Topology.nd_outage > 0) topo.Topology.nodes
  do
    if !extra > 0 then decr extra;
    Topology.step topo ~reseed_of
  done;
  let oc = Deploy.check topo in
  let why = containment_why oc env.ev_stats in
  {
    pc_plan = env.ev_plan.pl_name;
    pc_cut = cut;
    pc_board = board;
    pc_class = classify oc env.ev_stats;
    pc_fsck = oc.Deploy.oc_fsck;
    pc_silent = oc.Deploy.oc_silent;
    pc_ok = why = "";
    pc_why = why;
    pc_commits = env.ev_stats.Ota.ot_commits;
    pc_rollbacks = env.ev_stats.Ota.ot_rollbacks;
    pc_readings =
      List.fold_left (fun a (_, got) -> a + distinct_readings got) 0 oc.Deploy.oc_got;
    pc_fp = Topology.fingerprint topo;
  }

(** The golden run: same deployment, clean link, no cut. The baseline the
    campaign prints next to injected cells — and a self-check: a golden
    run must complete the OTA, deliver every reading and pass every
    containment check, or the deployment itself is broken. *)
let golden ~seed ~horizon =
  let env = make_env ~plan:(plan_named "clean") ~seed () in
  let reseed_of id = mix seed (id + 101) in
  for _ = 1 to horizon do
    Topology.step env.ev_topo ~reseed_of
  done;
  let oc = Deploy.check env.ev_topo in
  (oc, env.ev_stats)
