(** The fleet campaign's persistent corpus/results store: versioned,
    append-only, crash-resumable.

    A campaign writes one record per completed cell, flushed as it lands;
    a killed campaign reopens the store with {!resume} and restarts from
    its last committed record, running only the cells the store does not
    already hold. Because cells are pure functions of their index and the
    merged report is rendered from the index-ordered cell array, a
    kill/resume sequence produces a report byte-identical to an
    uninterrupted run at any [TICKTOCK_JOBS] setting.

    On-disk format (["TICKFLT\n"], version 1):

    {v
    bytes 0..7   magic "TICKFLT\n"
    byte  8      version (one byte)
    frame 0      the campaign spec key (refused on mismatch at resume)
    frame 1..    one frame per committed cell
    v}

    Every frame is [u32 length | payload | u64 FNV-1a checksum], all
    big-endian; a cell frame's payload is [u32 cell-index | data]. Appends
    are flushed record-at-a-time, so the only damage a kill can inflict is
    a {e short trailing frame}. The two read paths split exactly there:

    - {!load} is strict — any anomaly (bad magic, unsupported version,
      checksum mismatch, short tail) raises {!Refused};
    - {!resume} tolerates {e only} a short trailing frame (the kill
      point): it keeps every complete record and rewrites the store
      without the torn tail. A checksum mismatch on a {e complete} frame
      is corruption, not a kill artifact, and is refused in both modes. *)

exception Refused of string

let refuse fmt = Printf.ksprintf (fun m -> raise (Refused ("Fleet.Store: " ^ m))) fmt
let magic = "TICKFLT\n"
let version = 1

type record = { rc_index : int; rc_data : string }

type t = {
  st_path : string;
  st_spec : string;
  mutable st_oc : out_channel option;
  mutable st_records : int;
}

(* --- frame primitives --- *)

let u32_to_string n =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.to_string b

let u32_of_string s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let checksum payload = Fp.string Fp.seed payload

let u64_to_string v =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 v;
  Bytes.to_string b

let write_frame oc payload =
  output_string oc (u32_to_string (String.length payload));
  output_string oc payload;
  output_string oc (u64_to_string (checksum payload));
  flush oc

(* [read_frame ic] distinguishes a clean end-of-file at a frame boundary
   ([`End]), a short trailing frame ([`Torn] — what a kill leaves), and a
   complete frame whose checksum disagrees ([`Corrupt]). *)
let read_frame ic =
  let len = in_channel_length ic in
  let remaining = len - pos_in ic in
  if remaining = 0 then `End
  else if remaining < 4 then `Torn
  else begin
    let n = u32_of_string (really_input_string ic 4) 0 in
    if n < 0 || len - pos_in ic < n + 8 then `Torn
    else begin
      let payload = really_input_string ic n in
      let sum = Bytes.get_int64_be (Bytes.of_string (really_input_string ic 8)) 0 in
      if sum <> checksum payload then `Corrupt else `Frame payload
    end
  end

let record_of_payload payload =
  if String.length payload < 4 then refuse "%s: cell frame shorter than its index" "read";
  { rc_index = u32_of_string payload 0;
    rc_data = String.sub payload 4 (String.length payload - 4) }

let payload_of_record r = u32_to_string r.rc_index ^ r.rc_data

(* --- the read path ---

   [scan] parses everything after the version byte and reports how the
   file ends; both [load] and [resume] are thin wrappers over it. *)

let scan_channel ic path =
  let m =
    try really_input_string ic (String.length magic) with End_of_file -> ""
  in
  if m <> magic then refuse "%s: not a fleet store" path;
  let v = try Char.code (input_char ic) with End_of_file -> refuse "%s: truncated header" path in
  if v <> version then refuse "%s: unsupported version %d (supported: %d)" path v version;
  let spec =
    match read_frame ic with
    | `Frame s -> s
    | `End | `Torn -> refuse "%s: truncated spec frame" path
    | `Corrupt -> refuse "%s: spec frame checksum mismatch" path
  in
  let rec records acc =
    match read_frame ic with
    | `Frame p -> records (record_of_payload p :: acc)
    | `End -> (List.rev acc, `Clean)
    | `Torn -> (List.rev acc, `Torn)
    | `Corrupt -> refuse "%s: record checksum mismatch (corrupt store)" path
  in
  let recs, ending = records [] in
  (spec, recs, ending)

let scan path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> scan_channel ic path)

(** Strict read of a complete store: [(spec, records)]. Refuses any
    truncation — inspect an interrupted campaign through {!resume}. *)
let load path =
  let spec, recs, ending = scan path in
  (match ending with
  | `Clean -> ()
  | `Torn -> refuse "%s: truncated trailing record (killed campaign? resume it)" path);
  (spec, recs)

(* --- the write path --- *)

let open_fresh path spec =
  let oc = open_out_bin path in
  output_string oc magic;
  output_char oc (Char.chr version);
  write_frame oc spec;
  { st_path = path; st_spec = spec; st_oc = Some oc; st_records = 0 }

(** Create (or overwrite) a store for a campaign with the given spec key. *)
let create ~path ~spec = open_fresh path spec

(** Append one committed cell. Flushed before returning: after a kill, at
    worst the record being written is torn — never an earlier one. *)
let append t ~index ~data =
  match t.st_oc with
  | None -> refuse "%s: store is closed" t.st_path
  | Some oc ->
    write_frame oc (payload_of_record { rc_index = index; rc_data = data });
    t.st_records <- t.st_records + 1

(** Reopen a store after a kill (or open a fresh one if [path] does not
    exist): returns the store, positioned for appends, plus every
    committed record. Refuses a spec-key mismatch — resuming a campaign
    with different boards/plans/cell count would merge incompatible
    cells. A short trailing frame (the kill point) is dropped by
    rewriting the store from its committed records. *)
let resume ~path ~spec =
  if not (Sys.file_exists path) then (create ~path ~spec, [])
  else begin
    let file_spec, recs, _ending = scan path in
    if file_spec <> spec then
      refuse "%s: spec mismatch (store %S, campaign %S)" path file_spec spec;
    (* Drop the torn tail by rewriting: stdlib has no ftruncate, and a
       full rewrite of committed records is cheap next to the campaign. *)
    let t = open_fresh path spec in
    List.iter (fun r -> append t ~index:r.rc_index ~data:r.rc_data) recs;
    (t, recs)
  end

let records t = t.st_records
let spec t = t.st_spec

let close t =
  match t.st_oc with
  | None -> ()
  | Some oc ->
    close_out oc;
    t.st_oc <- None
