(** The fleet-scale campaign orchestrator.

    One machine stands in for a fleet: the orchestrator boots {e one}
    pristine image per (arch, board) combination on each worker domain,
    snapshot-forks thousands of board-instances from those images, and
    schedules (seed, workload, fault-plan) cells across the shared
    work-stealing pool ({!Ticktock.Pool}). Cell [i] is a pure function of
    its index — board [i mod boards], plan [(i / boards) mod plans], seed
    [i + 1] — so the merged report is byte-identical at any
    [TICKTOCK_JOBS] setting and across a kill/resume through the
    append-only {!Store}.

    A cell is one hostile round: the board is restored to its pristine
    post-boot image, its RNG capsule is reseeded from the cell index
    (cheap per-fork reseeding through [Instance.reseed]), and the plan's
    fuzzer complement runs next to the honest witness
    ({!Apps.Fuzz.round_on}). The plan list is the fault dimension — each
    plan picks how many hostile apps, how long their syscall streams run,
    and how many scheduler ticks the round gets.

    Host-side throughput counters (boards forked, cells run, steals,
    resume recoveries) land in the process-global host metrics
    ({!Obs.Metrics.host_incr}), so they surface — host-flagged — in every
    unified snapshot and stay invisible to determinism comparisons. *)

open Ticktock

(** One workload/fault-plan: how hostile a cell is. *)
type plan = {
  pl_name : string;
  pl_fuzzers : int;  (** hostile apps next to the witness *)
  pl_steps : int;  (** syscalls per hostile stream *)
}

let default_plans =
  [
    { pl_name = "light"; pl_fuzzers = 2; pl_steps = 30 };
    { pl_name = "hostile"; pl_fuzzers = 3; pl_steps = 60 };
    { pl_name = "burst"; pl_fuzzers = 4; pl_steps = 20 };
  ]

(** The verified boards a fleet can schedule — one per (arch, board)
    combo. Assembly (standard capsule set, device splicing, RNG reseed
    wiring) lives in {!Capsules.Std_board}; this list is the fleet's
    verified subset of it, in scheduling order. *)
let fleet_boards =
  [
    "ticktock-arm"; "ticktock-arm-mc"; "ticktock-arm-v8";
    "ticktock-e310"; "ticktock-earlgrey"; "ticktock-qemu";
  ]

let builders : (string * (capsules:Capsule_intf.t list -> unit -> Instance.t)) list =
  List.map
    (fun n -> (n, List.assoc n Capsules.Std_board.builders))
    fleet_boards

let board_names = fleet_boards

let make_board name =
  if not (List.mem name board_names) then
    invalid_arg
      (Printf.sprintf "Fleet: unknown board %S (one of: %s)" name
         (String.concat ", " board_names));
  Capsules.Std_board.make ~what:"Fleet" name

(** What a campaign runs: the cell lattice. *)
type spec = {
  sp_boards : string list;
  sp_plans : plan list;
  sp_cells : int;  (** total board-instances to fork *)
  sp_max_ticks : int;  (** scheduler budget per cell *)
}

let default_spec =
  {
    sp_boards = [ "ticktock-arm"; "ticktock-arm-v8"; "ticktock-e310" ];
    sp_plans = default_plans;
    sp_cells = 120;
    sp_max_ticks = 1500;
  }

let no_spaces what s =
  if String.contains s ' ' || String.contains s '\n' then
    invalid_arg (Printf.sprintf "Fleet: %s %S must not contain whitespace" what s)

(** The canonical spec key — written to the store and refused on mismatch
    at resume, because records from a different lattice must not merge. *)
let spec_key s =
  List.iter (no_spaces "board name") s.sp_boards;
  List.iter (fun p -> no_spaces "plan name" p.pl_name) s.sp_plans;
  Printf.sprintf "fleet-v1 boards=%s plans=%s cells=%d max_ticks=%d"
    (String.concat "," s.sp_boards)
    (String.concat ","
       (List.map (fun p -> Printf.sprintf "%s:%d:%d" p.pl_name p.pl_fuzzers p.pl_steps)
          s.sp_plans))
    s.sp_cells s.sp_max_ticks

(** One completed cell — everything the report needs, and exactly what the
    store serializes. *)
type cell = {
  cl_index : int;
  cl_board : string;
  cl_plan : string;
  cl_seed : int;
  cl_witness_ok : bool;
  cl_isolation_ok : bool;
  cl_panic : bool;
  cl_faulted : int;  (** hostile apps the kernel killed for a violation *)
  cl_exited : int;  (** hostile apps that ran their stream to completion *)
}

(* Stable, versionless-within-v1 record encoding: one line of
   space-separated fields. Hand-rolled rather than [Marshal] so a store
   written by one build reads back under another. *)
let encode_cell c =
  Printf.sprintf "%d %s %s %d %b %b %b %d %d" c.cl_index c.cl_board c.cl_plan c.cl_seed
    c.cl_witness_ok c.cl_isolation_ok c.cl_panic c.cl_faulted c.cl_exited

let decode_cell s =
  try
    Scanf.sscanf s "%d %s %s %d %B %B %B %d %d"
      (fun cl_index cl_board cl_plan cl_seed cl_witness_ok cl_isolation_ok cl_panic
           cl_faulted cl_exited ->
        Some
          {
            cl_index;
            cl_board;
            cl_plan;
            cl_seed;
            cl_witness_ok;
            cl_isolation_ok;
            cl_panic;
            cl_faulted;
            cl_exited;
          })
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

(* --- the cell lattice --- *)

let cell_coords spec =
  let boards = Array.of_list spec.sp_boards in
  let plans = Array.of_list spec.sp_plans in
  let nb = Array.length boards and np = Array.length plans in
  if nb = 0 || np = 0 then invalid_arg "Fleet: a spec needs at least one board and one plan";
  fun i -> (boards.(i mod nb), plans.(i / nb mod np), i + 1)

(* --- the deterministic report ---

   Rendered only from the index-ordered cell array: no wall-clock, no
   job count, no scheduling artifact can reach it. *)

let render spec (cells : cell array) =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "# ticktock fleet campaign\n";
  pf "# %s\n\n" (spec_key spec);
  let groups =
    (* (board, plan) rows in spec order *)
    List.concat_map
      (fun bd -> List.map (fun p -> (bd, p.pl_name)) spec.sp_plans)
      spec.sp_boards
  in
  let sum f sel = Array.fold_left (fun a c -> if sel c then a + f c else a) 0 cells in
  let count p sel = sum (fun c -> if p c then 1 else 0) sel in
  pf "%-18s %-8s %7s %8s %10s %7s %8s %7s\n" "board" "plan" "cells" "witness" "isolation"
    "panics" "faulted" "exited";
  List.iter
    (fun (bd, pl) ->
      let sel c = c.cl_board = bd && c.cl_plan = pl in
      pf "%-18s %-8s %7d %8d %10d %7d %8d %7d\n" bd pl
        (count (fun _ -> true) sel)
        (count (fun c -> c.cl_witness_ok) sel)
        (count (fun c -> c.cl_isolation_ok) sel)
        (count (fun c -> c.cl_panic) sel)
        (sum (fun c -> c.cl_faulted) sel)
        (sum (fun c -> c.cl_exited) sel))
    groups;
  let all _ = true in
  let total = Array.length cells in
  let witness = count (fun c -> c.cl_witness_ok) all in
  let isolation = count (fun c -> c.cl_isolation_ok) all in
  let panics = count (fun c -> c.cl_panic) all in
  pf "\n== totals ==\n";
  pf "cells %d  witness ok %d  isolation ok %d  panics %d\n" total witness isolation panics;
  pf "hostile apps faulted %d  exited %d\n" (sum (fun c -> c.cl_faulted) all)
    (sum (fun c -> c.cl_exited) all);
  pf "campaign: %s\n"
    (if witness = total && isolation = total && panics = 0 then "ok" else "FAILED");
  Buffer.contents b

(* --- the campaign --- *)

type result = {
  fl_spec : spec;
  fl_cells : cell option array;  (** index-ordered; [None] = not run (stopped early) *)
  fl_complete : bool;
  fl_report : string;  (** deterministic; rendered only when complete *)
  fl_ok : bool;
  fl_ran : int;  (** cells executed by {e this} run *)
  fl_resumed : int;  (** cells recovered from the store *)
  fl_booted : int;  (** pristine images booted (per worker per board) *)
  fl_forked : int;  (** board-instances forked from pristine images *)
  fl_steals : int;  (** batches stolen between workers *)
}

(** Run (or resume) a campaign.

    - [jobs] overrides [TICKTOCK_JOBS]; [batch] is the cell-dispatch
      batch (amortizes pool dispatch over the ~µs fork cost).
    - [store] makes the run resumable: completed cells append there, and
      [resume = true] first recovers every committed cell and runs only
      the rest.
    - [stop_after n] stops dispatching after roughly [n] new cells — the
      deterministic kill: the store is left exactly as a SIGKILL mid-run
      would leave it (minus a torn tail), for resumability tests and CI.

    The report is rendered only when every cell is accounted for, and is
    byte-identical across jobs settings and kill/resume splits. *)
let run ?jobs ?(batch = 32) ?store ?(resume = false) ?stop_after (spec : spec) =
  let coords = cell_coords spec in
  let key = spec_key spec in
  let st, recovered =
    match store with
    | None -> (None, [])
    | Some path ->
      if resume then
        let t, recs = Store.resume ~path ~spec:key in
        (Some t, recs)
      else (Some (Store.create ~path ~spec:key), [])
  in
  let cells : cell option array = Array.make spec.sp_cells None in
  List.iter
    (fun (r : Store.record) ->
      if r.Store.rc_index >= 0 && r.Store.rc_index < spec.sp_cells then
        match decode_cell r.Store.rc_data with
        | Some c when c.cl_index = r.Store.rc_index -> cells.(r.Store.rc_index) <- Some c
        | _ -> ())
    recovered;
  let resumed = Array.fold_left (fun a -> function Some _ -> a + 1 | None -> a) 0 cells in
  if resumed > 0 then Obs.Metrics.host_incr ~by:resumed "fleet/resume_rounds";
  let ran = Atomic.make 0 in
  let booted = Atomic.make 0 in
  let stop () = match stop_after with Some n -> Atomic.get ran >= n | None -> false in
  (* One shared runner per worker, always in forked execution: the fleet's
     whole point is boot-once-per-board, fork-per-cell. *)
  let init _w = Replayable.Runner.create ~exec:Replayable.Exec.Fork () in
  let cell runner i =
    let bname, plan, seed = coords i in
    let outcome =
      Replayable.Runner.cell runner ~key:bname
        ~boot:(fun () ->
          let k = make_board bname in
          Atomic.incr booted;
          (k, k.Instance.snap_target))
        (fun k ->
          k.Instance.reseed (seed * 0x9E3779B1);
          Apps.Fuzz.round_on k ~max_ticks:spec.sp_max_ticks ~fuzzers:plan.pl_fuzzers
            ~steps:plan.pl_steps ~seed)
    in
    Obs.Metrics.host_incr "fleet/boards_forked";
    Obs.Metrics.host_incr "fleet/cells_run";
    Atomic.incr ran;
    {
      cl_index = i;
      cl_board = bname;
      cl_plan = plan.pl_name;
      cl_seed = seed;
      cl_witness_ok = outcome.Apps.Fuzz.witness_ok;
      cl_isolation_ok = outcome.Apps.Fuzz.isolation_ok;
      cl_panic = outcome.Apps.Fuzz.kernel_panic <> None;
      cl_faulted = outcome.Apps.Fuzz.fuzzers_faulted;
      cl_exited = outcome.Apps.Fuzz.fuzzers_exited;
    }
  in
  let commit i (c : cell) =
    match st with None -> () | Some t -> Store.append t ~index:i ~data:(encode_cell c)
  in
  let results, pstats =
    Pool.run ?jobs ~batch ~cells:spec.sp_cells
      ~skip:(fun i -> cells.(i) <> None || stop ())
      ~commit ~init ~cell ()
  in
  Array.iteri (fun i r -> match r with Some c -> cells.(i) <- Some c | None -> ()) results;
  (match st with Some t -> Store.close t | None -> ());
  if pstats.Pool.ps_steals > 0 then
    Obs.Metrics.host_incr ~by:pstats.Pool.ps_steals "fleet/steals";
  let complete = Array.for_all Option.is_some cells in
  let done_cells = Array.map (function Some c -> c | None -> assert false) in
  let report = if complete then render spec (done_cells cells) else "" in
  let ok =
    complete
    && Array.for_all
         (function
           | Some c -> c.cl_witness_ok && c.cl_isolation_ok && not c.cl_panic
           | None -> false)
         cells
  in
  {
    fl_spec = spec;
    fl_cells = cells;
    fl_complete = complete;
    fl_report = report;
    fl_ok = ok;
    fl_ran = Atomic.get ran;
    fl_resumed = resumed;
    fl_booted = Atomic.get booted;
    fl_forked = Atomic.get ran;
    fl_steals = pstats.Pool.ps_steals;
  }
