type property = { name : string; run : unit -> int * (unit, string) result }

let property ~name body = { name; run = (fun () -> (1, body ())) }

let run_case ~show body x =
  match body x with
  | Ok () -> Ok ()
  | Error e -> Error (Printf.sprintf "counterexample %s: %s" (show x) e)
  | exception Violation.Violation v ->
    Error (Format.asprintf "counterexample %s: %a" (show x) Violation.pp v)

let forall ~name ?(show = fun _ -> "<input>") domain body =
  let run () =
    let cases = ref 0 in
    let rec loop seq =
      match Seq.uncons seq with
      | None -> Ok ()
      | Some (x, rest) -> (
        incr cases;
        match run_case ~show body x with Ok () -> loop rest | Error _ as e -> e)
    in
    let outcome = loop (Domain.to_seq domain) in
    (!cases, outcome)
  in
  { name; run }

let forall_violates ~name ?(show = fun _ -> "<input>") ~witnesses domain body =
  let run () =
    let cases = ref 0 in
    let caught = ref 0 in
    Seq.iter
      (fun x ->
        incr cases;
        match body x with
        | () -> ()
        | exception Violation.Violation _ -> incr caught)
      (Domain.to_seq domain);
    let outcome =
      if !caught >= witnesses then Ok ()
      else
        Error
          (Printf.sprintf "expected >= %d violating inputs, found %d (of %d)" witnesses !caught
             !cases)
    in
    ignore show;
    (!cases, outcome)
  in
  { name; run }

type fn_result = {
  fn_name : string;
  cases : int;
  seconds : float;
  outcome : (unit, string) result;
}

type component_report = { component : string; results : fn_result list }

(* CLOCK_MONOTONIC, not wall-clock: property timings must not go negative
   or jump when NTP steps the system time mid-run. *)
let now_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

let check_property p =
  let t0 = now_s () in
  let cases, outcome = p.run () in
  let t1 = now_s () in
  { fn_name = p.name; cases; seconds = t1 -. t0; outcome }

let check_component component props =
  let results = Violation.with_enabled true (fun () -> List.map check_property props) in
  { component; results }

let all_verified r = List.for_all (fun f -> f.outcome = Ok ()) r.results
let failures r = List.filter (fun f -> f.outcome <> Ok ()) r.results

let pp_report ppf r =
  Format.fprintf ppf "@[<v>component %s: %d properties@," r.component (List.length r.results);
  List.iter
    (fun f ->
      match f.outcome with
      | Ok () -> Format.fprintf ppf "  VERIFIED %-50s %6d cases %8.4fs@," f.fn_name f.cases f.seconds
      | Error e -> Format.fprintf ppf "  FAILED   %-50s %s@," f.fn_name e)
    r.results;
  Format.fprintf ppf "@]"
