(** Crash-class taxonomy over the contract-violation sites.

    Every contracted site in the kernel names itself when it raises
    {!Violation.Violation}; this module folds those free-form site names
    into the handful of isolation-property classes that separation-kernel
    verification surveys enumerate (Zhao, PAPERS.md) — spatial isolation,
    memory management, control transfer, DMA containment, proved
    arithmetic — plus the two fuzzer-observable failures that are not
    contract firings at all: a kernel panic (denial of service) and a
    corrupted witness (an isolation breach that no contract caught, the
    worst class). The coverage-guided fuzzer triages every crasher
    through {!class_of_site}; docs/FUZZING.md walks the workflow. *)

type cls =
  | Spatial_isolation
      (** MPU/PMP region geometry or programming: [CortexMRegion],
          [Armv8mRegion], [PmpRegion], [update_regions], [epmp], ... *)
  | Memory_management
      (** process memory allocator and break discipline:
          [AppMemoryAllocator], [process] *)
  | Context_switch
      (** exception entry/return, privilege transitions and the
          machine-code switch paths: [exn.*], [switch_to_user_*], [mc*],
          [msr], [preempt], ... *)
  | Dma_isolation  (** DMA engine/buffer containment: [Dma*] *)
  | Arithmetic_lemma  (** proved arithmetic lemmas: [lemma_*] *)
  | Kernel_panic
      (** the kernel died without a contract firing — denial of service,
          not (necessarily) an isolation failure *)
  | Witness_corruption
      (** the witness process observed corrupted state with no contract
          fired — an isolation breach escaping the checkers *)
  | Other  (** a contract site no class pattern recognises *)

val all : cls list
(** Every class, in declaration order — test harnesses iterate this to
    prove each class is reachable from a synthetic crasher. *)

val name : cls -> string
(** Stable kebab-case identifier, e.g. ["spatial-isolation"]; used in
    fuzzer reports and replay bundles. *)

val of_name : string -> cls option
(** Inverse of {!name}. *)

val class_of_site : string -> cls
(** Classify a {!Violation.t} site string (never returns {!Kernel_panic}
    or {!Witness_corruption} — those are not contract sites). *)
