(** Contract violations.

    Flux rejects Tock code that cannot be proved to satisfy its refinement
    contracts at {e compile} time. Our substitute enforces the same contracts
    at {e run} time: every contracted site in the kernel calls into this
    module, and a failure raises {!Violation} carrying the contract's name —
    the analog of a Flux error naming the failed pre/postcondition.

    Crucially, contract checking can be switched off globally. Benchmarks
    (Figure 11) run with checks disabled, matching the paper: Flux's checks
    cost nothing at run time, so neither should ours when measuring the
    kernels. Tests and the verification harness run with checks enabled. *)

type t = { site : string; detail : string }

exception Violation of t

val enabled : unit -> bool
val set_enabled : bool -> unit

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Run a thunk with checking forced on/off, restoring the previous state. *)

val set_obs : Obs.Event.sink option -> unit
(** Attach an observability sink for contract outcomes. Only {e failures}
    emit (as [Contract_failed], just before {!Violation} is raised):
    successful checks run at every contracted call site and tracing them
    would flood any bounded recording. Global, like the enable switch. *)

val require : string -> bool -> unit
(** Precondition: [require site ok] raises when checking is enabled and
    [ok] is false. *)

val ensure : string -> bool -> unit
(** Postcondition; same mechanics, named differently for readability. *)

val invariant : string -> bool -> unit
(** Data-structure invariant. *)

val requiref : string -> bool -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** As {!require} with a formatted detail message (evaluated lazily only on
    failure). *)

val ensuref : string -> bool -> ('a, Format.formatter, unit, unit) format4 -> 'a
val invariantf : string -> bool -> ('a, Format.formatter, unit, unit) format4 -> 'a

val pp : Format.formatter -> t -> unit
